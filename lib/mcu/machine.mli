(** The whole simulated MCU: CPU + memory + MPU + timer + debug ports.

    The machine implements the CPU bus: it dispatches MMIO in the
    peripheral region, performs MPU permission checks on FRAM/InfoMem
    accesses, raises {!Fault} on violations, and maintains access
    statistics.

    Debug "peripherals" (simulator devices, not real MSP430 hardware;
    they stand in for the JTAG/console facilities of the real bench):

    - [host_call_port] (0x01F0): writing a service number invokes the
      registered host-service callback — the OS model's system-call
      gate rear end;
    - [console_port] (0x01F4): writing a byte appends to the console;
    - [halt_port] (0x01F6): writing stops the machine;
    - [sw_fault_port] (0x01F8): compiler-inserted bounds checks write a
      fault code here (the paper's FAULT function). *)

type fault =
  | Mpu_violation of {
      access : Mpu.access;
      addr : int;
      pc : int;
      segment : Mpu.segment;
    }
  | Mpu_bad_password of { addr : int; pc : int }
  | Unmapped of { addr : int; pc : int; write : bool }
  | Illegal_instruction of { pc : int; word : int }

exception Fault of fault

val pp_fault : Format.formatter -> fault -> unit

type stop_reason =
  | Halted  (** the program wrote to the halt port *)
  | Faulted of fault
  | Sw_fault of int  (** a compiler-inserted check fired *)
  | Out_of_fuel

val pp_stop_reason : Format.formatter -> stop_reason -> unit

type t = {
  mem : Memory.t;
  mpu : Mpu.t;
  timer : Timer.t;
  cpu : Cpu.t;
  stats : Trace.stats;
  console : Buffer.t;
  mutable halted : bool;
  mutable sw_fault : int option;
  mutable host_call : t -> int -> unit;
  mutable on_event : (Trace.event -> unit) option;
  mutable on_step : (t -> unit) option;
      (** called before each instruction executes — the fault
          injector's hook.  Host-side only: charges no simulated
          cycles whether installed or not.  Prefer {!add_step_hook}
          over assigning this field directly. *)
  mutable emit_hook : (Trace.event -> unit) option;
      (** internal: the watcher chain snapshotted at step entry;
          {!step} maintains it — do not assign *)
  mutable in_step : bool;  (** internal: an instruction is in flight *)
  mutable extra_cycles : int;
      (** cycles charged by host services, included in {!cycles} *)
  blocks : (int, Predecode.block) Hashtbl.t;
      (** internal: predecoded basic-block cache, keyed by entry pc;
          {!run} maintains it — do not touch *)
  mutable code_drained : int;
      (** internal: the {!Memory.code_gen} up to which [blocks] has
          been invalidated against code writes *)
}

val host_call_port : int
val console_port : int
val halt_port : int
val sw_fault_port : int

val create : unit -> t

val cycles : t -> int
(** CPU cycles plus host-charged cycles. *)

val add_cycles : t -> int -> unit
(** Charge extra cycles (host services model their cost this way). *)

val regs : t -> Registers.t

val load_words : t -> addr:int -> int list -> unit
val load_bytes : t -> addr:int -> bytes -> unit

val set_reset_vector : t -> int -> unit
val reset : t -> unit
(** Load PC from the reset vector, SP from the top of SRAM, clear
    halt/fault state, the access statistics, host-charged cycles and
    the console buffer.  Does not clear memory or the CPU cycle
    counter. *)

val step : t -> (Opcode.t, fault) result
(** One instruction; faults are caught and returned (after emitting a
    {!Trace.Fault_event} to the event hook, so trace rings end with
    the fault they led up to). *)

val run : ?fuel:int -> t -> stop_reason
(** Run until halt, fault, software fault, or [fuel] instructions
    (default 10 million).

    Two-tier engine.  While no step hook and no event watcher is
    installed, instructions execute from a cache of predecoded basic
    blocks ({!Predecode}): decoded once, chained to the next control
    transfer, with per-word MPU execute checks elided while the MPU
    configuration generation is unchanged.  The moment any hook is
    armed — profiler, fault injector, watchpoint — dispatch falls
    back to {!step}, the reference per-instruction path, at the next
    instruction boundary.  Both tiers run the same {!Cpu} executors
    and charge the same {!Cycles.cycles}, so registers, memory,
    statistics, cycle counts and faults are identical instruction for
    instruction (asserted by the differential lockstep tests and the
    bench identity runs).

    The cache is invalidated by writes into predecoded code spans
    (tracked by {!Memory.code_gen}; self-modifying code re-decodes
    before its next instruction executes) and cleared by {!reset}. *)

val add_watch : t -> (Trace.event -> unit) -> unit
(** Install an event watcher, composing with (running after) any hook
    already present — the isolation oracle's watchpoint mechanism.
    Watchers are host-side observers: they charge no cycles and cannot
    alter the access they observe.

    Ordering contract: {!step} snapshots the watcher chain once per
    instruction, after the pre-instruction hook ({!add_step_hook})
    has run.  A watcher armed from a step hook therefore observes the
    imminent instruction from its very first event (pre-instruction
    state included); a watcher armed mid-instruction — from another
    watcher's callback — observes nothing until the next instruction
    boundary.  Either way a watcher sees whole instructions only,
    never a suffix of the one that installed it, so observation is
    deterministic regardless of where inside a step the arming
    happened. *)

val add_step_hook : t -> (t -> unit) -> unit
(** Install a pre-instruction hook, composing with (running after) any
    hook already present — the fault injector's entry point.  Runs
    before the instruction executes and before the watcher chain is
    snapshotted, so watchpoints it arms observe that instruction
    deterministically (see {!add_watch}). *)

val mem_checked_read : t -> Word.width -> int -> int
(** Read memory the way the CPU would (without MPU checks) — for host
    services and tests. *)

val mem_checked_write : t -> Word.width -> int -> int -> unit

val console_contents : t -> string
