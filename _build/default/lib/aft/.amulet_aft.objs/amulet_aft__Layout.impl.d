lib/aft/layout.ml: Amulet_mcu Format List Printf
