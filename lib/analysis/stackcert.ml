(* Binary-level worst-case stack bound.

   Works on the CFI-reconstructed CFG ({!Cfi}): an SP-displacement
   abstract interpretation gives each function its local high-water
   mark and the displacement at every call site; an interprocedural
   pass (with cycle detection and address-taken resolution of indirect
   calls) then bounds the deepest call chain from any event-handler
   root, including the trampoline's two pushes.  The bound is checked
   against the app's actual stack region from the link map —
   [data_lo, stack_top) — so a stack that can overflow into the app's
   globals (or out of its D_i region entirely) is rejected at lint
   time with the maximizing call chain as witness.

   This replaces *trust* in the compiler's source-level estimate
   ({!Amulet_cc.Stack_depth}): the two are computed from independent
   artifacts and cross-checked in the tests. *)

module I = Amulet_link.Image
module O = Amulet_mcu.Opcode
module Iso = Amulet_cc.Isolation

type verdict =
  | Certified of { bound : int; region : int; chain : string list }
      (** deepest chain (root first), bound includes the trampoline *)
  | Rejected of { bound : int; region : int; chain : string list }
  | Unbounded of { chain : string list; fenced : bool }
      (** recursive cycle; [fenced] when the MPU's segment-1 fence
          turns the overflow into a fault instead of a corruption *)
  | Unanalyzable of { addr : int; reason : string }
  | Not_applicable  (** shared-stack modes have no per-app region *)

type t = {
  sc_verdict : verdict;
  sc_fn_depth : (string * int) list;
      (** per-function worst-case stack use below its entry SP
          (absent for functions on a recursive cycle) *)
  sc_entry_max : (string * int) list;
      (** deepest possible entry depth below the dispatch-time stack
          top, including the trampoline's pushes and the call's return
          address — the quantity that bounds FP from below *)
}

(* Trampoline cost on the app stack before the handler runs: it pushes
   the event argument's saved R12 and the exit-label return address. *)
let trampoline_bytes = 4

(* Stack bytes an external callee occupies below the caller's SP,
   including its own return address (and, for gates, the 8 saved
   registers pushed before the stack switch). *)
let extern_cost name =
  if String.length name >= 7 && String.sub name 0 7 = "__gate_" then 18
  else
    match name with
    | "__umodhi" -> 4
    | "__divhi" | "__modhi" -> 6
    | "__mulhi" | "__udivhi" | "__udivmod" | "__shlhi" | "__shrhi"
    | "__sarhi" | "__bounds_check" -> 2
    | _ -> 8 (* unknown external: conservative *)

exception Unanalyzable_sp of int * string

let signed16 k = if k land 0x8000 <> 0 then (k land 0xFFFF) - 0x10000 else k

(* ------------------------------------------------------------------ *)
(* Local pass: SP displacement per function *)

type local = {
  l_max : int;  (* high-water mark of sp below entry *)
  l_sites : (int * O.t) list;  (* (sp at site, CALL instruction) *)
}

(* Per-insn transfer on (sp, fp): sp = bytes below the entry SP
   (>= 0, entry has the return address at 0(SP)); fp = displacement
   recorded by the prologue's MOV SP, R4. *)
let step_insn addr (sp, fp) op =
  match op with
  | O.Fmt2 (O.PUSH, _, _) -> (sp + 2, fp)
  | O.Fmt2 (O.CALL, _, _) -> (sp, fp)
  | O.Fmt1 (O.MOV, _, O.S_reg 1, O.D_reg 4) -> (sp, Some sp)
  | O.Fmt1 (O.MOV, _, O.S_reg 4, O.D_reg 1) -> (
    match fp with
    | Some d -> (d, fp)
    | None ->
      raise (Unanalyzable_sp (addr, "SP restored from an untracked R4")))
  | O.Fmt1 (O.ADD, _, O.S_immediate k, O.D_reg 1) ->
    (max 0 (sp - signed16 k), fp)
  | O.Fmt1 (O.SUB, _, O.S_immediate k, O.D_reg 1) -> (sp + signed16 k, fp)
  | O.Fmt1 (O.MOV, _, O.S_indirect_inc 1, O.D_reg d) ->
    (* pop; popping the saved FP un-tracks R4 *)
    (max 0 (sp - 2), if d = 4 then None else fp)
  | O.Fmt1 (o, _, O.S_indirect_inc 1, _) when O.writes_back o ->
    (max 0 (sp - 2), fp)
  | O.Fmt1 (o, _, _, O.D_reg 1) when O.writes_back o ->
    raise (Unanalyzable_sp (addr, "unanalyzable SP write"))
  | O.Fmt2 ((O.RRC | O.SWPB | O.RRA | O.SXT), _, O.S_reg 1) ->
    raise (Unanalyzable_sp (addr, "unanalyzable SP write"))
  | O.Fmt1 (o, _, _, O.D_reg 4) when O.writes_back o -> (sp, None)
  | O.Fmt2 ((O.RRC | O.SWPB | O.RRA | O.SXT), _, O.S_reg 4) -> (sp, None)
  | _ -> (sp, fp)

let join (sp1, fp1) (sp2, fp2) =
  ( max sp1 sp2,
    match (fp1, fp2) with
    | Some a, Some b when a = b -> Some a
    | _ -> None )

(* A net-growth loop makes sp diverge; cap the joins per block. *)
let widen_limit = 32

let analyze_function (f : Cfi.func) : local =
  let states : (int, int * (int option)) Hashtbl.t = Hashtbl.create 16 in
  let counts : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let work = Queue.create () in
  let block_of = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace block_of b.Cfi.b_addr b) f.Cfi.f_blocks;
  let schedule a st =
    match Hashtbl.find_opt states a with
    | None ->
      Hashtbl.replace states a st;
      Queue.push a work
    | Some old ->
      let j = join old st in
      if j <> old then begin
        let c = Option.value ~default:0 (Hashtbl.find_opt counts a) + 1 in
        Hashtbl.replace counts a c;
        if c > widen_limit then
          raise
            (Unanalyzable_sp
               (a, "stack depth does not converge (net growth in a loop)"));
        Hashtbl.replace states a j;
        Queue.push a work
      end
  in
  let maxd = ref 0 and sites = ref [] in
  schedule f.Cfi.f_entry (0, None);
  while not (Queue.is_empty work) do
    let a = Queue.pop work in
    match Hashtbl.find_opt block_of a with
    | None -> ()
    | Some b ->
      let st = Hashtbl.find states a in
      let final =
        List.fold_left
          (fun st (i : Cfi.insn) ->
            (match i.Cfi.i_op with
            | O.Fmt2 (O.CALL, _, _) ->
              sites := (fst st, i.Cfi.i_op) :: !sites
            | _ -> ());
            let st' = step_insn i.Cfi.i_addr st i.Cfi.i_op in
            if fst st' > !maxd then maxd := fst st';
            st')
          st b.Cfi.b_insns
      in
      List.iter (fun (t, _) -> schedule t final) b.Cfi.b_succs
  done;
  { l_max = !maxd; l_sites = List.rev !sites }

(* ------------------------------------------------------------------ *)
(* Interprocedural bound *)

exception Cycle of string list

let analyze ~(cfg : Cfi.t) ~(image : I.t) =
  let prefix = cfg.Cfi.cf_prefix in
  let funcs = Cfi.functions cfg in
  let unmangled name =
    let pl = String.length prefix + 1 in
    if prefix <> "" && String.length name > pl then
      String.sub name pl (String.length name - pl)
    else name
  in
  let roots =
    List.filter
      (fun (f : Cfi.func) ->
        let n = unmangled f.Cfi.f_name in
        n = "main"
        || (String.length n >= 7 && String.sub n 0 7 = "handle_"))
      funcs
  in
  let locals = Hashtbl.create 16 in
  let first_error = ref None in
  List.iter
    (fun (f : Cfi.func) ->
      match analyze_function f with
      | l -> Hashtbl.replace locals f.Cfi.f_name l
      | exception Unanalyzable_sp (addr, reason) ->
        if !first_error = None then first_error := Some (addr, reason))
    funcs;
  (* indirect calls can reach any address-taken function; if none is
     visible, assume the worst: any function *)
  let indirect_targets =
    match cfg.Cfi.cf_addr_taken with
    | [] -> List.map (fun (f : Cfi.func) -> f.Cfi.f_name) funcs
    | l -> l
  in
  (* wcs f = deepest stack use below f's entry SP, with the maximizing
     chain (f first) as witness *)
  let memo : (string, int * string list) Hashtbl.t = Hashtbl.create 16 in
  let rec wcs path name =
    if List.mem name path then
      raise
        (Cycle
           (let rec cut acc = function
              | [] -> acc
              | x :: rest ->
                if x = name then x :: acc else cut (x :: acc) rest
            in
            cut [] path))
    else
      match Hashtbl.find_opt memo name with
      | Some r -> r
      | None ->
        let l =
          match Hashtbl.find_opt locals name with
          | Some l -> l
          | None -> { l_max = 0; l_sites = [] }
        in
        let best = ref (l.l_max, [ name ]) in
        let consider sp cost chain =
          if sp + cost > fst !best then best := (sp + cost, name :: chain)
        in
        List.iter
          (fun (sp, op) ->
            match Cfi.call_target cfg op with
            | Some (Cfi.C_local g) ->
              let d, chain = wcs (name :: path) g in
              consider sp (2 + d) chain
            | Some (Cfi.C_helper h) -> consider sp (extern_cost h) [ h ]
            | Some (Cfi.C_gate s) ->
              consider sp (extern_cost ("__gate_" ^ s)) [ "__gate_" ^ s ]
            | Some Cfi.C_indirect ->
              List.iter
                (fun g ->
                  let d, chain = wcs (name :: path) g in
                  consider sp (2 + d) chain)
                indirect_targets
            | None -> ())
          l.l_sites;
        Hashtbl.replace memo name !best;
        !best
  in
  let compute () =
    List.fold_left
      (fun acc (f : Cfi.func) ->
        let d, chain = wcs [] f.Cfi.f_name in
        match acc with
        | Some (best, _) when best >= trampoline_bytes + d -> acc
        | _ -> Some (trampoline_bytes + d, chain))
      None roots
  in
  (* deepest possible entry depth per function (below the dispatch
     stack top): longest path over the (acyclic, once wcs succeeded)
     call graph *)
  let entry_max () =
    let tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let bump name d =
      match Hashtbl.find_opt tbl name with
      | Some d' when d' >= d -> false
      | _ ->
        Hashtbl.replace tbl name d;
        true
    in
    let rec push name d =
      if bump name d then
        match Hashtbl.find_opt locals name with
        | None -> ()
        | Some l ->
          List.iter
            (fun (sp, op) ->
              match Cfi.call_target cfg op with
              | Some (Cfi.C_local g) -> push g (d + sp + 2)
              | Some Cfi.C_indirect ->
                List.iter (fun g -> push g (d + sp + 2)) indirect_targets
              | _ -> ())
            l.l_sites
    in
    List.iter
      (fun (f : Cfi.func) -> push f.Cfi.f_name trampoline_bytes)
      roots;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort compare
  in
  let fn_depths () =
    Hashtbl.fold (fun k (d, _) acc -> (k, d) :: acc) memo []
    |> List.sort compare
  in
  match !first_error with
  | Some (addr, reason) ->
    { sc_verdict = Unanalyzable { addr; reason };
      sc_fn_depth = []; sc_entry_max = [] }
  | None -> (
    match compute () with
    | exception Cycle chain ->
      {
        sc_verdict =
          Unbounded
            { chain; fenced = Iso.uses_mpu cfg.Cfi.cf_mode };
        sc_fn_depth = [];
        sc_entry_max = [];
      }
    | None ->
      (* no roots: nothing dispatches into this app *)
      {
        sc_verdict =
          (if Iso.separate_stacks cfg.Cfi.cf_mode then
             Certified { bound = 0; region = 0; chain = [] }
           else Not_applicable);
        sc_fn_depth = fn_depths ();
        sc_entry_max = [];
      }
    | Some (bound, chain) ->
      let em = entry_max () and fd = fn_depths () in
      if not (Iso.separate_stacks cfg.Cfi.cf_mode) then
        { sc_verdict = Not_applicable; sc_fn_depth = fd; sc_entry_max = em }
      else
        let stack_top =
          try I.symbol image (Iso.stack_top_sym ~prefix) land lnot 1
          with Not_found ->
            invalid_arg
              (Printf.sprintf "stackcert: image has no %s"
                 (Iso.stack_top_sym ~prefix))
        in
        let data_lo = I.symbol image (Iso.data_lo_sym ~prefix) in
        let region = stack_top - data_lo in
        let verdict =
          if bound <= region then Certified { bound; region; chain }
          else Rejected { bound; region; chain }
        in
        { sc_verdict = verdict; sc_fn_depth = fd; sc_entry_max = em })

let entry_max_of t name = List.assoc_opt name t.sc_entry_max

let pp_verdict ppf = function
  | Certified { bound; region; chain } ->
    Format.fprintf ppf "certified: %d of %d bytes (deepest: %s)" bound region
      (String.concat " -> " chain)
  | Rejected { bound; region; chain } ->
    Format.fprintf ppf
      "stack bound %d exceeds the %d-byte region (deepest: %s)" bound region
      (String.concat " -> " chain)
  | Unbounded { chain; fenced } ->
    Format.fprintf ppf "unbounded (cycle: %s)%s"
      (String.concat " -> " chain)
      (if fenced then " — MPU fence catches the overflow" else "")
  | Unanalyzable { addr; reason } ->
    Format.fprintf ppf "unanalyzable at %04X: %s" addr reason
  | Not_applicable -> Format.fprintf ppf "not applicable (shared stack)"
