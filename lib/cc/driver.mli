(** Compiler driver: source text to assembly sections plus the
    analysis facts the AFT and profiler need. *)

type compiled = {
  prefix : string;
  mode : Isolation.mode;
  code : Amulet_link.Asm.item list;
  data : Amulet_link.Asm.item list;
  infos : Codegen.fn_info list;
  handlers : string list;  (** [handle_*] event entry points *)
  api_gates : string list;  (** distinct API gates referenced *)
  stack_bytes : int;  (** worst-case stack for any handler *)
  recursive : bool;  (** stack bound came from the recursion default *)
  loops : (string * int) list;
      (** [(header label, max body executions)] from the loop-bound
          oracle — see {!Codegen.output.loops} *)
}

val default_stack_bytes : int
(** Fallback stack reservation when recursion defeats the analysis. *)

val compile :
  prefix:string ->
  mode:Isolation.mode ->
  ?shadow:bool ->
  ?analyze:(Tast.program -> Codegen.classifier) ->
  ?loop_bounds:(Tast.program -> Srcloc.t -> int option) ->
  ?extra_externals:(string * Ctype.t) list ->
  string ->
  compiled
(** Full pipeline: lex, parse, phase-1 feature check, type check,
    code generation with isolation checks, stack-depth analysis.
    [analyze] (typically {!Amulet_analysis.Range.analyze}) runs after
    type checking and classifies dereference sites so codegen can
    elide guards proven redundant; it may raise {!Srcloc.Error} for
    accesses proven out of bounds.  [loop_bounds] (typically
    {!Amulet_analysis.Range.loop_bounds}) supplies per-loop iteration
    bounds recorded into [compiled.loops] for the WCET certifier; it
    never changes the generated code.
    @raise Srcloc.Error on any source-level problem. *)
