(** The AmuletOS system API, as seen by application code.

    Applications call these as ordinary C functions (up to three
    scalar/pointer arguments); the compiler routes each call through
    the AFT-generated context-switch gate ([__gate_<name>]).  The OS
    model in [amulet_os] implements the matching services and
    validates every application-supplied pointer against the calling
    app's data bounds before touching memory — the paper's "carefully
    handle application-provided pointers passed through API calls". *)

val signatures : (string * Ctype.t) list
(** [(name, function type)] for every API entry point. *)

val names : string list

val exists : string -> bool

val gate_label : string -> string
(** Linker symbol of the gate stub for an API name. *)

val arg_count : string -> int
(** Number of declared parameters.
    @raise Not_found for unknown names. *)
