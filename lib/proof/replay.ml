(* Counterexample replay: turn an abstract refutation trace into a
   bare-metal payload, run it on the real [Machine] under the mode's
   MPU configuration, and check that the concrete machine exhibits the
   same containment failure the abstract engine predicted.

   The replay is deliberately *bare*: no compiler, no AFT, no OS — the
   payload is hand-encoded at the attacker's code region and observed
   by the same sanction rules the campaign oracle uses.  Guard stucks
   ([S_guard]) and gate stucks ([S_gate]) are therefore out of scope
   here (they live in toolchain-emitted code and the kernel; the
   attack campaign exercises them end-to-end) — what replay validates
   is the part the abstract MPU/memory model claims: where raw
   accesses land, what the MPU blocks, and that predicted breaches
   really happen. *)

module M = Amulet_mcu.Machine
module R = Amulet_mcu.Registers
module O = Amulet_mcu.Opcode
module W = Amulet_mcu.Word
module T = Amulet_mcu.Trace
module Mpu = Amulet_mcu.Mpu
module Map = Amulet_mcu.Memory_map
module Encode = Amulet_mcu.Encode
module Iso = Amulet_cc.Isolation
module A = Absmachine
module I = Interval

let attack_value = 0x3039

type report = {
  rp_stop : string;
  rp_breaches : (A.kind * int) list;  (** sanction violations observed *)
  rp_ok : bool;  (** the concrete run matches the abstract verdict *)
  rp_detail : string;
}

let mov_imm_abs v a = O.Fmt1 (O.MOV, W.W16, O.S_immediate v, O.D_absolute a)
let mov_abs_reg a r = O.Fmt1 (O.MOV, W.W16, O.S_absolute a, O.D_reg r)
let br_imm a = O.Fmt1 (O.MOV, W.W16, O.S_immediate a, O.D_reg 0)

(* PUSH-loop walking the stack down far enough to leave the app
   window: MOV #n, R5; l: PUSH R4; SUB #1, R5; JNE l. *)
let push_loop n =
  [
    O.Fmt1 (O.MOV, W.W16, O.S_immediate n, O.D_reg 5);
    O.Fmt2 (O.PUSH, W.W16, O.S_reg 4);
    O.Fmt1 (O.SUB, W.W16, O.S_immediate 1, O.D_reg 5);
    O.Jump (O.JNE, -3);
  ]

exception Unsupported of string

let ops_of_action g (a : A.action) =
  let rep r = A.rep g r in
  match a with
  | A.A_compute | A.A_push_bounded -> [ O.Fmt2 (O.PUSH, W.W16, O.S_reg 4) ]
  | A.A_store A.R_mpu_regs | A.A_guarded_store A.R_mpu_regs ->
    (* the abstract step assumes the worst case — a correctly
       passworded write — so the concrete payload must use one too *)
    [ mov_imm_abs 0xA500 Mpu.ctl0_addr ]
  | A.A_store r | A.A_guarded_store r -> [ mov_imm_abs attack_value (rep r) ]
  | A.A_load r | A.A_guarded_load r -> [ mov_abs_reg (rep r) 12 ]
  | A.A_jump r | A.A_guarded_call r -> [ br_imm (rep r) ]
  | A.A_mpu_store A.M_disable -> [ mov_imm_abs 0xA500 Mpu.ctl0_addr ]
  | A.A_mpu_store A.M_widen ->
    [ mov_imm_abs (I.hi g.A.g_victim lsr 4) Mpu.segb2_addr ]
  | A.A_mpu_store A.M_badpw -> [ mov_imm_abs 0x0000 Mpu.ctl0_addr ]
  | A.A_push_wild ->
    (* enough pushes to walk from the stack top out of its region,
       whatever the mode: the whole window plus a margin *)
    push_loop ((I.width (A.window g) / 2) + 8)
  | A.A_gate_enter | A.A_gate_exit | A.A_gate_ptr _ ->
    raise (Unsupported (A.action_to_string a))

(* Seed plausible landing pads at jump targets so a breaching branch
   produces an [Exec] event (and then halts) instead of decoding
   zeroed FRAM. *)
let seed_landing m g =
  let halt = List.concat_map Encode.encode [ mov_imm_abs 1 M.halt_port ] in
  List.iter
    (fun r -> M.load_words m ~addr:(A.rep g r) halt)
    [
      A.R_os; A.R_victim; A.R_fram_high; A.R_vectors; A.R_sram; A.R_info;
      A.R_own_data; A.R_own_slack;
    ]

let arm_oracle ~mode g m =
  let breaches = ref [] in
  let shared = not (Iso.separate_stacks mode) in
  let sanction_w a =
    I.mem a (A.window g) || (shared && I.mem a g.A.g_sram)
  in
  let sanction_r a = sanction_w a || I.mem a g.A.g_own_code in
  M.add_watch m (function
    | T.Mem_write { addr; _ } when not (sanction_w addr) ->
      breaches := (A.K_write, addr) :: !breaches
    | T.Mem_read { addr; _ } when not (sanction_r addr) ->
      breaches := (A.K_read, addr) :: !breaches
    | T.Exec { pc; _ } when not (I.mem pc g.A.g_own_code) ->
      breaches := (A.K_exec, pc) :: !breaches
    | T.Io_write { addr; _ } when Mpu.handles addr ->
      breaches := (A.K_mpu, addr) :: !breaches
    | _ -> ());
  breaches

let app_sam = Mpu.sam_bits ~seg1:"x" ~seg2:"rw" ~seg3:"" ()

let setup ~mode g payload =
  let m = M.create () in
  seed_landing m g;
  let code = A.rep g A.R_own_code in
  M.load_words m ~addr:code
    (List.concat_map Encode.encode
       (payload @ [ mov_imm_abs 1 M.halt_port ]));
  M.set_reset_vector m code;
  M.reset m;
  if Iso.separate_stacks mode then R.set_sp (M.regs m) (A.data_hi g);
  if Iso.uses_mpu mode then
    Mpu.configure m.M.mpu ~b1:(A.data_lo g) ~b2:(A.data_hi g) ~sam:app_sam
      ~enable:true;
  m

let stop_name = Format.asprintf "%a" M.pp_stop_reason

let replay ~mode ?(geom = A.default) ~trace ~(final : A.state) () :
    (report, string) result =
  match List.concat_map (fun (_, a) -> ops_of_action geom a) trace with
  | exception Unsupported what ->
    Error (Printf.sprintf "action %s needs the full AFT/OS (campaign scope)" what)
  | payload -> (
    let m = setup ~mode geom payload in
    let breaches = arm_oracle ~mode geom m in
    let stop = M.run ~fuel:100_000 m in
    let bs = List.rev !breaches in
    let report ok detail =
      Ok { rp_stop = stop_name stop; rp_breaches = bs; rp_ok = ok; rp_detail = detail }
    in
    match final.A.dead with
    | Some (A.D_breach b) ->
      let iv = A.interval_of geom b.A.br_region in
      let hit =
        List.exists (fun (k, a) -> k = b.A.br_kind && I.mem a iv) bs
      in
      report hit
        (if hit then
           Printf.sprintf "predicted %s breach in %s observed concretely"
             (A.kind_name b.A.br_kind)
             (A.region_name b.A.br_region)
         else
           Printf.sprintf "predicted %s breach in %s NOT observed (stop: %s)"
             (A.kind_name b.A.br_kind)
             (A.region_name b.A.br_region)
             (stop_name stop))
    | Some (A.D_stuck A.S_mpu) ->
      let ok =
        bs = []
        && (match stop with M.Faulted (M.Mpu_violation _) -> true | _ -> false)
      in
      report ok "predicted MPU fault"
    | Some (A.D_stuck A.S_badpw) ->
      let ok =
        match stop with M.Faulted (M.Mpu_bad_password _) -> true | _ -> false
      in
      report ok "predicted MPU password fault"
    | Some (A.D_stuck A.S_kernel) ->
      let ok =
        bs = []
        && (match stop with
           | M.Faulted (M.Unmapped _) | M.Out_of_fuel -> true
           | _ -> false)
      in
      report ok "predicted kernel-recoverable bus fault"
    | Some (A.D_stuck (A.S_guard | A.S_gate)) ->
      Error "guard/gate stucks live in toolchain code (campaign scope)"
    | None ->
      report (bs = [] && stop = M.Halted) "predicted clean run")
