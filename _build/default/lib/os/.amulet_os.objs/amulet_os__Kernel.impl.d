lib/os/kernel.ml: Amulet_aft Amulet_cc Amulet_link Amulet_mcu Api Array Buffer Event Event_queue Format Hashtbl List Option Printf Sensors
