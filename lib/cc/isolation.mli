(** The four memory-isolation methods compared in the paper. *)

type mode =
  | No_isolation
      (** baseline: full C, no checks, MPU off *)
  | Feature_limited
      (** the original Amulet approach: no pointers, no recursion;
          run-time array-index bounds checks through a runtime helper *)
  | Software_only
      (** full C; compiler inserts lower {e and} upper bound checks on
          every pointer dereference; MPU off *)
  | Mpu_assisted
      (** the paper's contribution: full C; compiler inserts only the
          lower bound check, the MPU enforces the upper bound; MPU
          reconfigured on context switches *)

val name : mode -> string
val of_string : string -> mode option
val all : mode list

val allows_pointers : mode -> bool
val allows_recursion : mode -> bool

val checks_lower_bound : mode -> bool
(** Compiler inserts an [addr >= region_lo] check on dereferences. *)

val checks_upper_bound : mode -> bool
(** Compiler inserts an [addr < region_hi] check on dereferences. *)

val uses_mpu : mode -> bool
val separate_stacks : mode -> bool
(** Software-only and MPU modes give each app its own stack segment;
    No-isolation and Feature-limited share the single Amulet stack. *)

(* Symbol-naming conventions shared by the compiler, the AFT and the
   linker.  The bounds constants are the linker-generated
   [<section>__start] / [<section>__end] symbols of the app's code and
   data sections: AFT phase 2 emits checks against these symbols
   ("placeholder values"), and link-time resolution is phase 4's
   "patch with the correct app boundaries". *)

val mangle : prefix:string -> string -> string
val code_section : prefix:string -> string
val data_section : prefix:string -> string
val code_lo_sym : prefix:string -> string
val code_hi_sym : prefix:string -> string
val data_lo_sym : prefix:string -> string
val data_hi_sym : prefix:string -> string

val stack_top_sym : prefix:string -> string
(** Zero-size label at the top of the app's stack area (the base of
    its globals, rounded down to even).  Emitted by the AFT layout and
    the test harness so binary-level analyses can recover the stack
    region [\[data_lo, stack_top)] from the link map alone. *)

(** Software-fault reason codes written to the fault port. *)

val fault_data_lo : int
val fault_data_hi : int
val fault_code_ptr : int
val fault_ret_addr : int
val fault_array_bounds : int
val fault_shadow_stack : int

(** Shadow return-address stack support (the paper's "future
    revisions" use of the InfoMem, implemented here as an optional
    hardening that any isolation mode can enable).  The shadow stack
    pointer lives at {!shadow_sp_addr}; entries grow upward from
    {!shadow_base}.  Stray data pointers cannot reach it: InfoMem lies
    below every app's data segment, so the lower-bound check rejects
    it, and stack overflows cannot walk into it either. *)

val shadow_sp_addr : int
val shadow_base : int

val guard_start_suffix : string
val guard_end_suffix : string
(** Every compiler-inserted guard sequence (bounds checks, return
    checks, shadow-stack pushes) is bracketed by a label pair whose
    names end in these suffixes.  The labels are zero-size, so they
    change no addresses or cycle counts; profilers recover the guard
    address ranges from the image symbol table by pairing
    [<x>$gs]/[<x>$ge]. *)

val fault_stub_label : prefix:string -> int -> string
(** Label of the per-app fault stub for a reason code. *)
