lib/mcu/opcode.ml: Format Word
