(* arpview: the resource-profiler report — per-handler measured costs,
   static check-site counts, weekly extrapolation and battery impact,
   per isolation mode. *)

module Iso = Amulet_cc.Isolation
module Arp = Amulet_arp.Arp
module Energy = Amulet_arp.Energy
module Apps = Amulet_apps.Suite
module Obs = Amulet_obs.Obs
module Summary = Amulet_obs.Summary

(* Profile one mode while streaming the kernel's dispatch spans to a
   JSONL buffer, then hand back both the ARP aggregate and the parsed
   trace records. *)
let profile_with_trace ~warmup ~mode app =
  let obs = Obs.create () in
  let buf = Buffer.create 4096 in
  Obs.add_sink obs (Obs.jsonl_buffer_sink buf);
  let p = Arp.profile_app ~warmup_ms:warmup ~obs ~mode app in
  Obs.close obs;
  (p, Summary.of_string (Buffer.contents buf))

(* ARP-view per-state accounting, recovered from the trace: each
   dispatch span is attributed to the value of the app's [state]
   global when the event arrived. *)
let per_state_accounting records =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match r with
      | Obs.Span { name = handler; cat = "dispatch"; dur; _ } -> (
        match Obs.int_arg r "state" with
        | None -> ()
        | Some state ->
          let count, cycles, accesses =
            Option.value
              (Hashtbl.find_opt tbl (state, handler))
              ~default:(0, 0, 0)
          in
          let reads = Option.value (Obs.int_arg r "reads") ~default:0 in
          let writes = Option.value (Obs.int_arg r "writes") ~default:0 in
          Hashtbl.replace tbl (state, handler)
            (count + 1, cycles + dur, accesses + reads + writes))
      | _ -> ())
    records;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let profile_cmd app_name warmup =
  match List.find_opt (fun a -> a.Apps.name = app_name) Apps.all with
  | None ->
    Format.eprintf "unknown app %s; known: %s@." app_name
      (String.concat ", " (List.map (fun a -> a.Apps.name) Apps.all));
    1
  | Some app ->
    let baseline, baseline_records =
      profile_with_trace ~warmup ~mode:Iso.No_isolation app
    in
    Format.printf "ARP report for %s (%d ms warm-up)@." app.Apps.display_name
      warmup;
    List.iter
      (fun mode ->
        let p, records =
          if mode = Iso.No_isolation then (baseline, baseline_records)
          else profile_with_trace ~warmup ~mode app
        in
        Format.printf "@.[%s]@." (Iso.name mode);
        List.iter
          (fun h ->
            Format.printf
              "  %-20s %10.0f ev/week  %7.1f cyc/ev  %6.1f accesses  %4.1f \
               API calls@."
              h.Arp.hp_handler h.Arp.hp_events_per_week h.Arp.hp_cycles_per_event
              h.Arp.hp_accesses_per_event h.Arp.hp_api_calls_per_event)
          p.Arp.ap_handlers;
        let overhead = Arp.overhead_cycles_per_week ~baseline p in
        Format.printf
          "  weekly: %.3f Gcycles total, %.3f Gcycles isolation overhead, \
           %.4f %% battery@."
          (p.Arp.ap_cycles_per_week /. 1e9)
          (overhead /. 1e9)
          (Energy.battery_impact_percent ~overhead_cycles_per_week:overhead);
        (* ARP-view per-state accounting, when the app has a state
           machine — read back from the same run's trace records *)
        (match per_state_accounting records with
        | [] -> ()
        | states ->
          Format.printf "  per-state accounting (ARP-view):@.";
          List.iter
            (fun ((state, handler), (count, cycles, accesses)) ->
              Format.printf
                "    state %d / %-16s %5d events, avg %5d cycles, %4d accesses@."
                state handler count
                (cycles / max 1 count)
                (accesses / max 1 count))
            states);
        Format.printf "  static check sites (AFT phase 1):@.";
        List.iter
          (fun s ->
            Format.printf "    %-24s %3d checked, %3d elided, %3d static, %2d API@."
              s.Arp.ss_function s.Arp.ss_checked s.Arp.ss_elided
              s.Arp.ss_static s.Arp.ss_api_calls)
          (Arp.static_view ~mode app))
      Iso.all;
    0

open Cmdliner

let app_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"APP" ~doc:"Suite app name (e.g. $(b,pedometer)).")

let warmup_arg =
  Arg.(
    value & opt int 90_000
    & info [ "warmup" ] ~docv:"MS" ~doc:"Profiling warm-up in virtual ms.")

let cmd =
  let doc = "Amulet Resource Profiler report for one application" in
  Cmd.v (Cmd.info "arpview" ~doc) Term.(const profile_cmd $ app_arg $ warmup_arg)

let () = exit (Cmd.eval' cmd)
