(** Disassembler: decode memory ranges back into readable listings,
    with optional symbol annotation. *)

type line = {
  addr : int;
  words : int list;  (** raw machine words of the instruction *)
  text : string;  (** mnemonic rendering, or [.word] for data *)
}

val range :
  ?symbols:(string * int) list ->
  fetch:(int -> int) ->
  lo:int ->
  hi:int ->
  unit ->
  line list
(** Linear sweep over [lo, hi).  Undecodable words render as [.word
    0x....] and decoding resumes at the next word.  When [symbols] is
    given, lines at symbol addresses are prefixed with the label and
    jump/call targets are annotated. *)

val pp_line : Format.formatter -> line -> unit

val pp_listing : Format.formatter -> line list -> unit
