(** Predecoded micro-ops and basic blocks for the fast interpreter.

    Tier 1 of the two-tier engine (see {!Machine.run}): each
    instruction is decoded once into a {!uop} with operand forms,
    extension-word addresses, fetch-word count and cycle cost
    precomputed; {!build} chains uops from an entry pc up to the next
    control transfer into a {!block}.

    The builder reads raw memory words only — no MPU checks, no
    statistics, no bus traffic — so building a block is free of
    observable effects.  Execute-permission validation and fetch
    accounting are replayed at run time by the machine, preserving the
    per-instruction path's fault ordering exactly. *)

type uop = {
  u_pc : int;  (** address of the first instruction word *)
  u_len : int;  (** encoded size in bytes (2, 4 or 6) *)
  u_words : int;  (** [u_len / 2]: fetch words the slow path counts *)
  u_cost : int;  (** {!Cycles.cycles}, precomputed *)
  u_instr : Opcode.t;
  u_src_ext : int;  (** address fetch used for the src extension word *)
  u_dst_ext : int;  (** likewise for the dst extension word *)
  u_target : int;  (** jump target (masked); 0 for non-jumps *)
}

type tail =
  | T_fallthrough of int
      (** [max_uops] stopped the block; execution continues at this pc *)
  | T_control  (** ended on an instruction that may rewrite PC *)
  | T_unhandled of int
      (** the next pc is not predecodable (MMIO fetch, illegal word,
          wrap mid-instruction); the machine single-steps it *)

type block = {
  b_pc : int;  (** entry pc (the cache key) *)
  b_uops : uop array;
  b_lo : int;
  b_hi : int;
      (** decoded byte span [\[b_lo, b_hi)]; a write overlapping it
          invalidates the block.  Empty blocks still span their first
          word so a write can flush a cached "unhandled" verdict. *)
  b_tail : tail;
  mutable b_mpu_gen : int;
      (** {!Mpu.gen} under which every instruction word passed the
          Exec permission check, or [-1] before the first full pass.
          While it matches the live MPU generation the machine skips
          per-word checks and bulk-counts fetch words. *)
}

val max_uops : int
(** Upper bound on instructions per block. *)

val build : read_word:(int -> int) -> pc:int -> block
(** [build ~read_word ~pc] decodes a basic block starting at [pc] from
    raw memory words.  Never raises: undecodable or unfetchable bytes
    end the block with {!T_unhandled} (possibly with zero uops). *)
