(** Robust statistics for noisy host-time measurements.

    Throughput trials on a shared machine are contaminated by
    scheduler noise with a heavy right tail, so central tendency uses
    the median and dispersion the median absolute deviation (MAD) —
    both insensitive to a minority of outliers — rather than
    mean/stddev.  The confidence interval is the usual normal
    approximation of the median's sampling error with the MAD-derived
    robust sigma ([1.4826 * mad]). *)

type summary = {
  n : int;
  median : float;
  mad : float;  (** median absolute deviation from the median *)
  mean : float;
  ci_lo : float;  (** approximate 95 % CI on the median *)
  ci_hi : float;
}

val median : float array -> float
(** 0 on the empty array; the midpoint average on even sizes.
    Does not mutate its argument. *)

val mad : float array -> float

val robust_sigma : float array -> float
(** [1.4826 * mad] — consistent with the standard deviation under
    normality. *)

val summarize : float array -> summary
