lib/aft/stubs.mli: Amulet_cc Amulet_link Layout
