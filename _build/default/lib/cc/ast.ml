(* Untyped abstract syntax of WearC, produced by the parser.  Types in
   declarations are already resolved to Ctype.t (the grammar needs no
   context to parse declarators). *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Gt | Le | Ge | Eq | Ne
  | Land | Lor

type unop = Neg | Lnot | Bnot

type expr = { e : expr_node; eloc : Srcloc.t }

and expr_node =
  | Num of int
  | Str of string
  | Var of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Assign of expr * expr
  | Op_assign of binop * expr * expr
  | Cond of expr * expr * expr
  | Call of expr * expr list
  | Index of expr * expr
  | Deref of expr
  | Addr of expr
  | Member of expr * string
  | Arrow of expr * string
  | Pre_incr of expr
  | Pre_decr of expr
  | Post_incr of expr
  | Post_decr of expr
  | Sizeof_type of Ctype.t
  | Sizeof_expr of expr
  | Cast of Ctype.t * expr

type stmt = { s : stmt_node; sloc : Srcloc.t }

and stmt_node =
  | Sexpr of expr
  | Sdecl of Ctype.t * string * init option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo_while of stmt list * expr
  | Sfor of stmt option * expr option * expr option * stmt list
      (* init (expr or decl), condition, step, body *)
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sswitch of expr * (int * stmt list) list * stmt list option
      (* cases, default *)
  | Sblock of stmt list

and init = Iexpr of expr | Ilist of expr list | Istr of string

type func = {
  fname : string;
  fret : Ctype.t;
  fparams : (string * Ctype.t) list;
  fbody : stmt list;
  floc : Srcloc.t;
}

type global = {
  gname : string;
  gtype : Ctype.t;
  ginit : init option;
  gconst : bool;
  gloc : Srcloc.t;
}

type decl =
  | Dglobal of global
  | Dfunc of func
  | Dstruct of string * (string * Ctype.t) list * Srcloc.t

type program = decl list

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | Land -> "&&" | Lor -> "||"
