type summary = {
  n : int;
  median : float;
  mad : float;
  mean : float;
  ci_lo : float;
  ci_hi : float;
}

let median xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let s = Array.copy xs in
    Array.sort compare s;
    if n mod 2 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0
  end

let mad xs =
  if Array.length xs = 0 then 0.0
  else
    let m = median xs in
    median (Array.map (fun x -> Float.abs (x -. m)) xs)

let robust_sigma xs = 1.4826 *. mad xs

let summarize xs =
  let n = Array.length xs in
  let m = median xs in
  let d = mad xs in
  let mean =
    if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n
  in
  let half =
    if n <= 1 then 0.0
    else 1.96 *. 1.4826 *. d /. sqrt (float_of_int n)
  in
  { n; median = m; mad = d; mean; ci_lo = m -. half; ci_hi = m +. half }
