(** Campaign driver: every attack in {!Attacks.corpus} crossed with
    all four isolation modes, each cell run under a per-run isolation
    oracle, in parallel OCaml domains.

    The oracle watches the machine's event stream while the attacker
    is the current app and records breaches the moment they happen:

    - a write landing outside the attacker's data segment (and outside
      the shared SRAM stack in the shared-stack modes),
    - a read returned from foreign memory,
    - control leaving the attacker's code section for anything but a
      sanctioned entry (API gates, runtime helpers, [__osreturn]),
    - a store reaching the MPU's configuration registers from app
      code.

    After the run it additionally checks the victim's canary, the OS
    code checksum ({!Amulet_os.Kernel.os_intact}), and that the
    kernel can still dispatch to the victim
    ({!Amulet_os.Kernel.liveness_probe}). *)

(** What the cell actually did, classified from the oracle record and
    the attacker's dispatch outcome. *)
type observed =
  | O_build_rejected
  | O_guard of int  (** software check fault, reason code *)
  | O_hw_fault  (** MPU violation *)
  | O_gate_rejected  (** kernel pointer validation refused the arg *)
  | O_kernel  (** unmapped access / runaway contained by the machine *)
  | O_breach  (** oracle recorded an isolation breach *)
  | O_leak  (** no breach, but the write landed in over-permitted
                memory (slack bytes, shared stack) *)
  | O_silent  (** nothing observable happened *)

val observed_name : observed -> string

type cell = {
  cl_attack : string;
  cl_mode : Amulet_cc.Isolation.mode;
  cl_expected : Attacks.layer;
  cl_observed : observed;
  cl_match : bool;  (** observed is what the expectation table says *)
  cl_oracle_ok : bool;
      (** hard isolation invariants hold for this cell's expectation
          class (no breach when containment is promised) *)
  cl_breaches : string list;  (** first few oracle breach records *)
  cl_breach_count : int;
  cl_canary_intact : bool;
  cl_os_intact : bool;
  cl_victim_alive : bool;
  cl_lint_rejected : bool option;
      (** static certifier verdict ([None] when the cell never built) *)
  cl_lint_ok : bool;
  cl_wcet_checked : int;
      (** dispatches compared against a static WCET bound: every
          dispatch of a CFI-certified app whose handler the
          {!Amulet_analysis.Wcet} pass bounded.  0 when the oracle saw
          a breach — a run that escaped the certified CFG voids the
          premise the bound is conditional on *)
  cl_wcet_violations : int;
      (** of those, dispatches whose observed cycles exceeded the
          bound; any non-zero value means the static analysis is
          unsound and fails the campaign *)
  cl_note : string;
  cl_dispatch : Amulet_obs.Hist.t;
      (** per-dispatch cycle costs observed during the cell's run
          (every app, every handler) — empty when the build was
          rejected *)
}

(** One fault-injection run (informational rows of the campaign). *)
type injection = {
  in_mode : Amulet_cc.Isolation.mode;
  in_target : string;
  in_flips : int;
  in_log : string list;
  in_faults : (string * string) list;  (** disabled app, fault text *)
  in_canary_intact : bool;
  in_os_intact : bool;
  in_deterministic : bool;
      (** an identical re-run with the same seed reproduced the same
          flips, faults and memory outcome *)
}

type summary = {
  s_cells : cell list;
  s_injections : injection list;
  s_mismatches : int;
  s_oracle_failures : int;
  s_lint_failures : int;
  s_nondeterministic : int;
  s_wcet_checked : int;  (** total bound-checked dispatches *)
  s_wcet_violations : int;  (** total above-bound dispatches (0 = sound) *)
  s_dispatch : (Amulet_cc.Isolation.mode * Amulet_obs.Hist.t) list;
      (** per-mode dispatch-cycle distribution, the cells' histograms
          merged losslessly across the parallel domains — identical
          whatever [jobs] was *)
}

val run_cell :
  attack:Attacks.t -> mode:Amulet_cc.Isolation.mode -> seed:int -> cell

val run_injection :
  mode:Amulet_cc.Isolation.mode ->
  target:[ `Regs | `Fram | `Mpu ] ->
  seed:int ->
  injection
(** Run the benign victim+carrier pair with seeded bit flips aimed at
    the register file, the victim's FRAM data segment, or the MPU
    configuration — twice, asserting the outcome reproduces. *)

val quick_names : string list
(** The CI smoke subset: one attack per defence class. *)

val run :
  ?quick:bool ->
  ?jobs:int ->
  ?only:string list ->
  ?modes:Amulet_cc.Isolation.mode list ->
  seed:int ->
  unit ->
  summary
(** Run the (filtered) matrix on the fleet scheduler's worker domains
    ({!Amulet_fleet_core.Sched.map} — results in item order, so the summary
    is byte-identical whatever the job count).  [jobs <= 0] means
    {!Amulet_fleet_core.Sched.default_jobs}, the one jobs policy shared by
    every parallel driver; [only] filters attacks by name; [quick]
    restricts to {!quick_names} and skips the injection rows. *)

val ok : summary -> bool

val emit_jsonl : summary -> out_channel -> unit
(** One {!Amulet_obs.Obs} record per cell/injection, through a JSONL
    sink. *)

val pp_matrix : Format.formatter -> summary -> unit
(** Console expected-vs-observed matrix plus totals. *)
