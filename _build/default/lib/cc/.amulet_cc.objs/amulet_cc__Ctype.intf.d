lib/cc/ctype.mli: Format
