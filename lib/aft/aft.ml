module A = Amulet_link.Asm
module Iso = Amulet_cc.Isolation
module Driver = Amulet_cc.Driver

type app_spec = { name : string; source : string }

type app_build = {
  ab_name : string;
  ab_compiled : Driver.compiled;
  ab_layout : Layout.app_layout;
  ab_handlers : (string * int) list;
  ab_tramp : int;
}

type firmware = {
  fw_mode : Iso.mode;
  fw_image : Amulet_link.Image.t;
  fw_layout : Layout.t;
  fw_apps : app_build list;
}

exception Build_error of string

let errf fmt = Format.kasprintf (fun s -> raise (Build_error s)) fmt

let valid_name name =
  name <> "" && name <> "os"
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
       name

(* Extra stack slack per app: gate register saves (8 words), the
   trampoline's exit-stub push, the gate return address, plus margin. *)
let stack_margin = 64

let build ~mode ?(shadow = false) ?(elide = true) ?(certify = true) specs =
  let analyze = if elide then Some Amulet_analysis.Range.analyze else None in
  let loop_bounds =
    if elide then Some Amulet_analysis.Range.loop_bounds else None
  in
  (* phase 0: validate *)
  let names = List.map (fun s -> s.name) specs in
  if List.length (List.sort_uniq compare names) <> List.length names then
    errf "duplicate app names";
  List.iter
    (fun n -> if not (valid_name n) then errf "invalid app name '%s'" n)
    names;
  (* phases 1-2: compile each app (feature check, analysis, checked
     code generation against placeholder bound symbols) *)
  let compiled =
    List.map
      (fun s ->
        ( s,
          Driver.compile ~prefix:s.name ~mode ~shadow ?analyze ?loop_bounds
            s.source ))
      specs
  in
  (* phase 3: sections and stub generation (sizing pass) *)
  let app_code_items cu spec =
    cu.Driver.code @ Stubs.exit_stub ~name:spec.name
  in
  let os_code_items ~os_cfg ~tramps =
    Amulet_cc.Runtime.items @ Stubs.startup
    @ Stubs.osreturn ~mode ~os_cfg
    @ Stubs.gates ~mode ~os_cfg
    @ tramps
  in
  let sizing_tramps =
    List.concat_map
      (fun (spec, _) ->
        Stubs.trampoline ~mode ~shadow ~name:spec.name
          ~cfg:Stubs.placeholder_cfg ~stack_top:0x7EAC ())
      compiled
  in
  let os_code_size =
    Amulet_link.Assembler.size
      (os_code_items ~os_cfg:Stubs.placeholder_cfg ~tramps:sizing_tramps)
  in
  let os_data_size = Amulet_link.Assembler.size Stubs.os_globals in
  (* phase 4: layout *)
  let app_inputs =
    List.map
      (fun (spec, cu) ->
        let code_size = Amulet_link.Assembler.size (app_code_items cu spec) in
        let gsize = (Amulet_link.Assembler.size cu.Driver.data + 1) land lnot 1 in
        let stack =
          if Iso.separate_stacks mode then cu.Driver.stack_bytes + stack_margin
          else 0
        in
        (spec.name, code_size, gsize, stack))
      compiled
  in
  let layout =
    try Layout.compute ~os_code_size ~os_data_size ~apps:app_inputs
    with Layout.Does_not_fit m -> errf "%s" m
  in
  let os_cfg = Stubs.os_mpu_cfg ~shadow ~layout () in
  let final_tramps =
    List.map2
      (fun (spec, _) lay ->
        Stubs.trampoline ~mode ~shadow ~name:spec.name
          ~cfg:(Stubs.app_mpu_cfg ~shadow lay)
          ~stack_top:lay.Layout.stack_top ())
      compiled layout.Layout.apps
    |> List.concat
  in
  let os_code = os_code_items ~os_cfg ~tramps:final_tramps in
  let final_size = Amulet_link.Assembler.size os_code in
  if final_size <> os_code_size then
    errf "internal: stub sizing drifted (%d vs %d)" final_size os_code_size;
  let sections =
    [
      { Amulet_link.Linker.name = "os_code"; base = layout.Layout.os_code_base;
        items = os_code };
      { Amulet_link.Linker.name = "os_data"; base = layout.Layout.os_data_base;
        items = Stubs.os_globals };
    ]
    @ List.concat
        (List.map2
           (fun (spec, cu) lay ->
             [
               { Amulet_link.Linker.name = Iso.code_section ~prefix:spec.name;
                 base = lay.Layout.code_base;
                 items = app_code_items cu spec };
               { Amulet_link.Linker.name = Iso.data_section ~prefix:spec.name;
                 base = lay.Layout.data_base;
                 items =
                   A.Space lay.Layout.stack_bytes
                   :: A.label (Iso.stack_top_sym ~prefix:spec.name)
                   :: cu.Driver.data };
             ])
           compiled layout.Layout.apps)
  in
  let image =
    try Amulet_link.Linker.link ~entry:"__os_start" sections
    with Amulet_link.Linker.Error m -> errf "link: %s" m
  in
  (* post-link certification: stamp the services whose gate-pointer
     validation is statically redundant into the image, where the
     kernel's gate table picks them up *)
  let image =
    if not certify then image
    else
      Amulet_link.Image.with_notes image
        (List.filter_map
           (fun spec ->
             match
               Amulet_analysis.Lint.certified_gates ~image ~mode
                 ~prefix:spec.name
             with
             | [] -> None
             | svcs ->
               Some ("cert.gates." ^ spec.name, String.concat "," svcs))
           specs
        @ image.Amulet_link.Image.notes)
  in
  (* stamp loop iteration bounds (app loops from the range analysis,
     runtime-helper loops from their fixed structure) so the binary
     WCET pass can bound back-edges without re-running the source
     analysis.  Keys are [wcet.loop.<header label>]; header labels
     are mangled per app, so they never collide. *)
  let image =
    Amulet_link.Image.with_notes image
      (image.Amulet_link.Image.notes
      @ List.concat_map
          (fun (_, cu) ->
            List.map
              (fun (label, b) -> ("wcet.loop." ^ label, string_of_int b))
              cu.Driver.loops)
          compiled
      @ List.map
          (fun (label, b) -> ("wcet.loop." ^ label, string_of_int b))
          Amulet_cc.Runtime.loop_bounds)
  in
  let apps =
    List.map2
      (fun (spec, cu) lay ->
        let handlers =
          List.map
            (fun h ->
              (h, Amulet_link.Image.symbol image (Iso.mangle ~prefix:spec.name h)))
            cu.Driver.handlers
        in
        {
          ab_name = spec.name;
          ab_compiled = cu;
          ab_layout = lay;
          ab_handlers = handlers;
          ab_tramp = Amulet_link.Image.symbol image (Stubs.tramp_label spec.name);
        })
      compiled layout.Layout.apps
  in
  { fw_mode = mode; fw_image = image; fw_layout = layout; fw_apps = apps }

let find_app fw name = List.find (fun a -> a.ab_name = name) fw.fw_apps
let handler_addr ab h = List.assoc_opt h ab.ab_handlers
