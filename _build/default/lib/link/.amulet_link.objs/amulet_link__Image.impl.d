lib/link/image.ml: Amulet_mcu Bytes Format List
