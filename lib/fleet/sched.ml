let default_jobs () = min 8 (Domain.recommended_domain_count ())

type progress = done_:int -> total:int -> unit

let resolve_jobs jobs n =
  let j = if jobs > 0 then jobs else default_jobs () in
  max 1 (min j n)

(* Shared-cursor batch loop: [work lo hi] processes items [lo, hi).
   The cursor hand-out is the only cross-domain communication; every
   index is claimed by exactly one worker. *)
let steal_loop ~n ~batch ~next ~tick work =
  let rec loop () =
    let lo = Atomic.fetch_and_add next batch in
    if lo < n then begin
      let hi = min n (lo + batch) in
      work lo hi;
      tick (hi - lo);
      loop ()
    end
  in
  loop ()

let make_tick ?progress ~total () =
  match progress with
  | None -> fun _ -> ()
  | Some p ->
    let finished = Atomic.make 0 in
    let lock = Mutex.create () in
    fun k ->
      let done_ = Atomic.fetch_and_add finished k + k in
      Mutex.lock lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock lock)
        (fun () -> p ~done_ ~total)

let map ?(jobs = 0) ?(batch = 1) ?progress f items =
  let items = Array.of_list items in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let jobs = resolve_jobs jobs n in
    let batch = max 1 batch in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let tick = make_tick ?progress ~total:n () in
    let worker () =
      steal_loop ~n ~batch ~next ~tick (fun lo hi ->
          for i = lo to hi - 1 do
            results.(i) <- Some (f items.(i))
          done)
    in
    if jobs = 1 then worker ()
    else begin
      let others = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join others
    end;
    Array.to_list (Array.map Option.get results)
  end

let fold_shards ?(jobs = 0) ?(batch = 1) ?progress ~init ~fold items =
  let items = Array.of_list items in
  let n = Array.length items in
  let jobs = resolve_jobs jobs n in
  let batch = max 1 batch in
  let next = Atomic.make 0 in
  let tick = make_tick ?progress ~total:n () in
  let worker () =
    let acc = ref (init ()) in
    steal_loop ~n ~batch ~next ~tick (fun lo hi ->
        for i = lo to hi - 1 do
          acc := fold !acc items.(i)
        done);
    !acc
  in
  if jobs = 1 then [ worker () ]
  else begin
    let others = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    let mine = worker () in
    mine :: List.map Domain.join others
  end
