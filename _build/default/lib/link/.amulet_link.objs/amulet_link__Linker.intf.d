lib/link/linker.mli: Asm Image
