(* Raw byte store plus code-write tracking for the predecode cache.

   The machine registers "watched" pages (256 B each) covering every
   byte span it has predecoded.  Writes that land in a watched page
   bump [code_gen] and record a dirty span; the block-dispatch loop
   drains those spans and flushes overlapping cache lines before the
   next block runs.  Unwatched writes cost one byte load and a
   compare — the data path stays flat. *)

type t = {
  data : Bytes.t;
  watched : Bytes.t; (* one flag byte per 256 B page *)
  mutable code_gen : int;
  mutable dirty : (int * int) list; (* (addr, len) spans hitting watched pages *)
}

let pages = Memory_map.address_space lsr 8

let create () =
  {
    data = Bytes.make Memory_map.address_space '\000';
    watched = Bytes.make pages '\000';
    code_gen = 0;
    dirty = [];
  }

(* [addr] must already be masked; a word write is aligned down so both
   its bytes share a page and one flag probe covers them. *)
let note t addr len =
  if Bytes.unsafe_get t.watched (addr lsr 8) <> '\000' then begin
    t.code_gen <- t.code_gen + 1;
    t.dirty <- (addr, len) :: t.dirty
  end

let note_span t ~addr ~len =
  if len > 0 then begin
    let p1 = min ((addr + len - 1) lsr 8) (pages - 1) in
    let hit = ref false in
    for p = addr lsr 8 to p1 do
      if Bytes.unsafe_get t.watched p <> '\000' then hit := true
    done;
    if !hit then begin
      t.code_gen <- t.code_gen + 1;
      t.dirty <- (addr, len) :: t.dirty
    end
  end

let read_byte t addr = Char.code (Bytes.get t.data (addr land 0xFFFF))

let write_byte t addr v =
  let addr = addr land 0xFFFF in
  note t addr 1;
  Bytes.set t.data addr (Char.chr (v land 0xFF))

let read_word t addr =
  let addr = addr land 0xFFFE in
  Char.code (Bytes.get t.data addr)
  lor (Char.code (Bytes.get t.data (addr + 1)) lsl 8)

let write_word t addr v =
  let addr = addr land 0xFFFE in
  note t addr 2;
  Bytes.set t.data addr (Char.chr (v land 0xFF));
  Bytes.set t.data (addr + 1) (Char.chr ((v lsr 8) land 0xFF))

let read t width addr =
  match width with Word.W8 -> read_byte t addr | Word.W16 -> read_word t addr

let write t width addr v =
  match width with
  | Word.W8 -> write_byte t addr v
  | Word.W16 -> write_word t addr v

let blit t ~addr src =
  note_span t ~addr ~len:(Bytes.length src);
  Bytes.blit src 0 t.data addr (Bytes.length src)

let blit_words t ~addr words =
  List.iteri (fun i w -> write_word t (addr + (2 * i)) w) words

let fill t ~addr ~len ~value =
  note_span t ~addr ~len;
  Bytes.fill t.data addr len (Char.chr (value land 0xFF))

let copy t =
  {
    data = Bytes.copy t.data;
    watched = Bytes.make pages '\000';
    code_gen = 0;
    dirty = [];
  }

let equal a b = Bytes.equal a.data b.data

let code_gen t = t.code_gen

let watch_code_span t ~lo ~hi =
  if hi > lo then
    for p = lo lsr 8 to min ((hi - 1) lsr 8) (pages - 1) do
      Bytes.unsafe_set t.watched p '\001'
    done

let take_dirty_code t =
  let d = t.dirty in
  t.dirty <- [];
  d

let clear_code_watches t =
  Bytes.fill t.watched 0 pages '\000';
  t.dirty <- []
