(** Fetch-decode-execute engine.

    The CPU owns the register file and an instruction/cycle budget; it
    talks to the rest of the machine through a {!bus}, which is where
    MPU checks, MMIO dispatch and tracing are implemented (see
    {!Machine}).  Bus functions may raise; the exception aborts the
    current instruction and propagates out of {!step}. *)

(** Why the CPU is touching memory. *)
type access = Afetch | Aread

type bus = {
  read : access -> Word.width -> int -> int;
  write : Word.width -> int -> int -> unit;
}

type t = {
  regs : Registers.t;
  bus : bus;
  mutable cycles : int;  (** total cycles executed *)
  mutable insns : int;  (** total instructions retired *)
}

val create : bus -> t

val step : t -> Opcode.t
(** Execute one instruction; returns it (for tracing).  Raises
    whatever the bus raises on a faulting access, and
    {!Decode.Illegal} on an undecodable word. *)

(** {2 Execution primitives}

    The per-form executors behind {!step}, exposed so the machine's
    predecoded-block engine can run instructions it has already
    decoded without re-entering fetch/decode.  Both engines share this
    exact code, so their semantics cannot drift.  Callers must have
    advanced PC past the instruction first (as {!step} does) and pass
    the extension-word addresses that fetch would have used. *)

val exec_fmt1 :
  t ->
  Opcode.op2 ->
  Word.width ->
  Opcode.src ->
  Opcode.dst ->
  src_ext_addr:int ->
  dst_ext_addr:int ->
  unit

val exec_fmt2 :
  t -> Opcode.op1 -> Word.width -> Opcode.src -> src_ext_addr:int -> unit

val exec_reti : t -> unit

val cond_true : Registers.t -> Opcode.cond -> bool

val call_depth_hint : t -> int
(** Stack pointer value, useful to assert stack discipline in tests. *)
