(* Observability subsystem tests: JSON round-trips, trace sinks,
   profiler cycle-exactness, and fault forensics. *)

module Aft = Amulet_aft.Aft
module Os = Amulet_os
module Iso = Amulet_cc.Isolation
module M = Amulet_mcu.Machine
module Obs = Amulet_obs.Obs
module Json = Amulet_obs.Json
module Profile = Amulet_obs.Profile
module Summary = Amulet_obs.Summary
module Forensics = Amulet_obs.Forensics

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_contains what sub s =
  if not (contains ~sub s) then
    Alcotest.failf "%s: expected %S in:\n%s" what sub s

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("name", Json.Str "say \"hi\"\n\t\\done");
        ("n", Json.Int (-42));
        ("x", Json.Float 1.5);
        ("flags", Json.Arr [ Json.Bool true; Json.Bool false; Json.Null ]);
        ("nested", Json.Obj [ ("empty", Json.Arr []) ]);
      ]
  in
  Alcotest.(check bool)
    "parse inverts print" true
    (Json.parse (Json.to_string v) = v);
  check_int "int member" (-42)
    (match Json.member "n" (Json.parse (Json.to_string v)) with
    | Some j -> Option.value ~default:0 (Json.to_int j)
    | None -> Alcotest.fail "missing n");
  (match Json.parse "{\"a\": 1} trailing" with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "trailing garbage accepted")

let sample_records =
  [
    Obs.Span
      {
        name = "handle_accel";
        cat = "dispatch";
        ts = 100;
        dur = 250;
        tid = 0;
        args = [ ("outcome", Obs.Vstr "ok"); ("reads", Obs.Vint 12) ];
      };
    Obs.Instant
      { name = "api_read_accel"; cat = "api"; ts = 180; tid = 0; args = [] };
    Obs.Counter { name = "queue_depth"; ts = 200; value = 3 };
  ]

let test_record_roundtrip () =
  List.iter
    (fun r ->
      match Obs.record_of_json (Obs.json_of_record r) with
      | Some r' when r' = r -> ()
      | Some _ -> Alcotest.fail "record changed through json"
      | None -> Alcotest.fail "record dropped through json")
    sample_records

(* The same records must survive a full write-to-sink / parse-back trip
   in both trace formats. *)
let test_sink_roundtrip () =
  let via make_sink =
    let buf = Buffer.create 256 in
    let sink = make_sink buf in
    List.iter sink.Obs.output sample_records;
    sink.Obs.close ();
    Summary.of_string (Buffer.contents buf)
  in
  Alcotest.(check bool)
    "chrome round-trip" true
    (via Obs.chrome_buffer_sink = sample_records);
  Alcotest.(check bool)
    "jsonl round-trip" true
    (via Obs.jsonl_buffer_sink = sample_records)

(* ------------------------------------------------------------------ *)
(* Profiler *)

let counter_app =
  "int count = 0;\n\
   void handle_init(int arg) { api_subscribe(0, 10); }\n\
   void handle_accel(int arg) {\n\
  \  int buf[4];\n\
  \  int n = api_read_accel(buf, 4);\n\
  \  count += n;\n\
   }\n"

let run_profiled ~mode =
  let fw = Aft.build ~mode [ { Aft.name = "counter"; source = counter_app } ] in
  let obs = Obs.create () in
  Obs.enable_profile obs fw;
  let k = Os.Kernel.create ~scenario:Os.Sensors.Walking ~obs fw in
  let _ = Os.Kernel.run_for_ms k 1_000 in
  let p = match Obs.profile obs with Some p -> p | None -> assert false in
  (Profile.report p ~machine:k.Os.Kernel.machine, k)

let cat r c = try List.assoc c r.Profile.r_cats with Not_found -> 0

let test_profiler_exact_mpu () =
  let r, k = run_profiled ~mode:Iso.Mpu_assisted in
  check_int "classified = machine cycles" (M.cycles k.Os.Kernel.machine)
    r.Profile.r_total;
  check_int "report agrees with itself" r.Profile.r_machine r.Profile.r_total;
  check_bool "app code ran" true (cat r Profile.App_code > 0);
  check_bool "MPU reconfig cycles present" true (cat r Profile.Mpu_config > 0);
  check_bool "OS gate cycles present" true (cat r Profile.Os_gate > 0);
  let app = List.assoc "counter" (List.map (fun a -> (a.Profile.ar_app, a)) r.Profile.r_apps) in
  check_bool "per-handler cycles attributed" true
    (List.mem_assoc "handle_accel" app.Profile.ar_handlers)

let test_profiler_no_isolation_has_no_guards () =
  let r, k = run_profiled ~mode:Iso.No_isolation in
  check_int "classified = machine cycles" (M.cycles k.Os.Kernel.machine)
    r.Profile.r_total;
  check_int "no bounds guards" 0 (cat r Profile.Guard);
  check_int "no MPU reconfig" 0 (cat r Profile.Mpu_config)

(* ------------------------------------------------------------------ *)
(* Aggregation: sharding a record stream over k aggregates and merging
   must reproduce the single-aggregate result exactly *)

module Agg = Amulet_obs.Agg
module Hist = Amulet_obs.Hist

let collect_records ~mode =
  let fw = Aft.build ~mode [ { Aft.name = "counter"; source = counter_app } ] in
  let obs = Obs.create () in
  let acc = ref [] in
  Obs.add_sink obs { Obs.output = (fun r -> acc := r :: !acc); close = ignore };
  Obs.enable_profile obs fw;
  let k = Os.Kernel.create ~scenario:Os.Sensors.Walking ~obs fw in
  let _ = Os.Kernel.run_for_ms k 1_000 in
  Obs.close obs;
  List.rev !acc

let test_agg_partition_merge () =
  let records = collect_records ~mode:Iso.Mpu_assisted in
  check_bool "run produced records" true (List.length records > 50);
  let whole = Summary.aggregate records in
  let shards = Array.init 3 (fun _ -> Agg.create ()) in
  List.iteri (fun i r -> Agg.add shards.(i mod 3) r) records;
  let merged =
    Array.fold_left (fun acc a -> Agg.merge acc a) (Agg.create ()) shards
  in
  check_int "record count" (Agg.records whole) (Agg.records merged);
  Alcotest.(check (option (pair int int)))
    "time range" (Agg.time_range whole) (Agg.time_range merged);
  let keys a = List.map fst (Agg.spans a) in
  Alcotest.(check (list (pair string string)))
    "span keys" (keys whole) (keys merged);
  List.iter2
    (fun (k, hw) (_, hm) ->
      if not (Hist.equal hw hm) then
        Alcotest.failf "span %s/%s histogram differs after merge" (fst k)
          (snd k))
    (Agg.spans whole) (Agg.spans merged);
  List.iter2
    (fun (n, (cw : Agg.counter)) (_, (cm : Agg.counter)) ->
      check_bool (n ^ " counter hist") true (Hist.equal cw.Agg.c_hist cm.Agg.c_hist);
      check_int (n ^ " last value") cw.Agg.c_last cm.Agg.c_last;
      check_int (n ^ " max value") cw.Agg.c_max cm.Agg.c_max)
    (Agg.counters whole) (Agg.counters merged);
  Alcotest.(check (list (pair (pair string string) int)))
    "instants" (Agg.instants whole) (Agg.instants merged)

(* the percentile a merged aggregate reports must equal the
   single-aggregate ground truth for the same underlying records *)
let test_agg_percentiles_survive_merge () =
  let records = collect_records ~mode:Iso.Software_only in
  let whole = Summary.aggregate records in
  let a = Agg.create () and b = Agg.create () in
  List.iteri (fun i r -> Agg.add (if i mod 2 = 0 then a else b) r) records;
  let merged = Agg.merge a b in
  List.iter
    (fun ((cat, name), h) ->
      let h' =
        match Agg.span_hist merged ~cat ~name with
        | Some h' -> h'
        | None -> Alcotest.failf "span %s/%s lost in merge" cat name
      in
      List.iter
        (fun q ->
          check_int
            (Printf.sprintf "%s/%s p%.0f" cat name (q *. 100.0))
            (Hist.quantile h q) (Hist.quantile h' q))
        [ 0.5; 0.9; 0.99 ])
    (Agg.spans whole)

(* profile counters emitted at dispatch boundaries reach the sink and
   their final values match the profiler's own totals *)
let test_agg_profile_counters () =
  let fw =
    Aft.build ~mode:Iso.Mpu_assisted
      [ { Aft.name = "counter"; source = counter_app } ]
  in
  let obs = Obs.create () in
  let agg = Agg.create () in
  Obs.add_sink obs (Agg.sink agg);
  Obs.enable_profile obs fw;
  let k = Os.Kernel.create ~scenario:Os.Sensors.Walking ~obs fw in
  let _ = Os.Kernel.run_for_ms k 1_000 in
  Obs.close obs;
  let p = match Obs.profile obs with Some p -> p | None -> assert false in
  List.iter
    (fun (c, total) ->
      match Agg.counter agg (Profile.counter_name c) with
      | Some st ->
        check_int (Profile.category_slug c ^ " final counter") total
          st.Agg.c_last
      | None ->
        Alcotest.failf "no %s counter in trace" (Profile.category_slug c))
    (Profile.totals p)

(* ------------------------------------------------------------------ *)
(* Forensics *)

let victim_app =
  "int secret = 12345;\n\
   void handle_init(int arg) { api_subscribe(1, 5); }\n\
   void handle_ppg(int arg) { secret += 1; }\n"

let evil_src target_addr =
  Printf.sprintf
    "void handle_init(int arg) { api_set_timer(100); }\n\
     void handle_timer(int arg) {\n\
    \  int *p = (int*)0x%04X;\n\
    \  *p = 666;\n\
     }\n"
    target_addr

let test_forensics_on_fault () =
  (* evil writes into the victim's data region; under MPU-assisted
     isolation the dispatch faults and the kernel snapshots forensics *)
  let specs target =
    [ { Aft.name = "victim"; source = victim_app };
      { Aft.name = "evil"; source = evil_src target } ]
  in
  let probe = Aft.build ~mode:Iso.Mpu_assisted (specs 0xBEEE) in
  let secret_addr =
    Amulet_link.Image.symbol probe.Aft.fw_image "victim$secret"
  in
  let fw = Aft.build ~mode:Iso.Mpu_assisted (specs secret_addr) in
  let obs = Obs.create () in
  let k = Os.Kernel.create ~scenario:Os.Sensors.Walking ~obs fw in
  let _ = Os.Kernel.run_for_ms k 1_000 in
  let evil = Os.Kernel.app_by_name k "evil" in
  check_bool "evil faulted" true (evil.Os.Kernel.fault_count > 0);
  match evil.Os.Kernel.last_forensics with
  | None -> Alcotest.fail "no forensics captured"
  | Some dump ->
    check_contains "header" "=== fault forensics ===" dump;
    check_contains "registers" "registers:" dump;
    check_contains "mpu state" "mpu:" dump;
    check_contains "ring" "trace events (oldest first):" dump;
    (* the victim keeps incrementing its secret; what matters is that
       evil's 666 never landed *)
    check_bool "victim's secret intact" true
      (M.mem_checked_read k.Os.Kernel.machine Amulet_mcu.Word.W16 secret_addr
       >= 12345)

(* The owner annotation, on a synthetic MPU violation aimed at a known
   region. *)
let test_forensics_owner () =
  let fw =
    Aft.build ~mode:Iso.Mpu_assisted
      [ { Aft.name = "victim"; source = victim_app } ]
  in
  let obs = Obs.create () in
  let k = Os.Kernel.create ~scenario:Os.Sensors.Walking ~obs fw in
  let secret_addr = Amulet_link.Image.symbol fw.Aft.fw_image "victim$secret" in
  let stop =
    M.Faulted
      (M.Mpu_violation
         {
           access = Amulet_mcu.Mpu.Dwrite;
           addr = secret_addr;
           pc = 0x4400;
           segment = Amulet_mcu.Mpu.Seg2;
         })
  in
  let dump =
    Forensics.report ~fw ~ring:(Obs.ring obs) ~stop k.Os.Kernel.machine
  in
  check_contains "owner" "owned by app 'victim' data/stack" dump;
  check_contains "address" (Printf.sprintf "%04X" secret_addr) dump

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "value round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "record round-trip" `Quick test_record_roundtrip;
          Alcotest.test_case "sink round-trip" `Quick test_sink_roundtrip;
        ] );
      ( "profile",
        [
          Alcotest.test_case "mpu mode exact" `Quick test_profiler_exact_mpu;
          Alcotest.test_case "no-isolation has no guards" `Quick
            test_profiler_no_isolation_has_no_guards;
        ] );
      ( "agg",
        [
          Alcotest.test_case "partition+merge = whole" `Quick
            test_agg_partition_merge;
          Alcotest.test_case "percentiles survive merge" `Quick
            test_agg_percentiles_survive_merge;
          Alcotest.test_case "profile counters in trace" `Quick
            test_agg_profile_counters;
        ] );
      ( "forensics",
        [
          Alcotest.test_case "captured on fault" `Quick test_forensics_on_fault;
          Alcotest.test_case "owner annotation" `Quick test_forensics_owner;
        ] );
    ]
