module M = Amulet_mcu.Machine
module R = Amulet_mcu.Registers
module Mpu = Amulet_mcu.Mpu
module Map = Amulet_mcu.Memory_map
module Trace = Amulet_mcu.Trace
module Word = Amulet_mcu.Word
module Iso = Amulet_cc.Isolation
module Aft = Amulet_aft.Aft
module Layout = Amulet_aft.Layout
module Image = Amulet_link.Image
module Kernel = Amulet_os.Kernel
module Event = Amulet_os.Event
module Lint = Amulet_analysis.Lint
module Verifier = Amulet_analysis.Verifier
module Obs = Amulet_obs.Obs
module Hist = Amulet_obs.Hist
module Sched = Amulet_fleet_core.Sched

type observed =
  | O_build_rejected
  | O_guard of int
  | O_hw_fault
  | O_gate_rejected
  | O_kernel
  | O_breach
  | O_leak
  | O_silent

let observed_name = function
  | O_build_rejected -> "build-rej"
  | O_guard c -> Printf.sprintf "guard(%d)" c
  | O_hw_fault -> "hw-fault"
  | O_gate_rejected -> "gate-rej"
  | O_kernel -> "kernel"
  | O_breach -> "BREACH"
  | O_leak -> "leak"
  | O_silent -> "silent"

type cell = {
  cl_attack : string;
  cl_mode : Iso.mode;
  cl_expected : Attacks.layer;
  cl_observed : observed;
  cl_match : bool;
  cl_oracle_ok : bool;
  cl_breaches : string list;
  cl_breach_count : int;
  cl_canary_intact : bool;
  cl_os_intact : bool;
  cl_victim_alive : bool;
  cl_lint_rejected : bool option;
  cl_lint_ok : bool;
  cl_wcet_checked : int;
  cl_wcet_violations : int;
  cl_note : string;
  cl_dispatch : Hist.t;
}

type injection = {
  in_mode : Iso.mode;
  in_target : string;
  in_flips : int;
  in_log : string list;
  in_faults : (string * string) list;
  in_canary_intact : bool;
  in_os_intact : bool;
  in_deterministic : bool;
}

type summary = {
  s_cells : cell list;
  s_injections : injection list;
  s_mismatches : int;
  s_oracle_failures : int;
  s_lint_failures : int;
  s_nondeterministic : int;
  s_wcet_checked : int;
  s_wcet_violations : int;
  s_dispatch : (Iso.mode * Hist.t) list;
}

(* ------------------------------------------------------------------ *)
(* The isolation oracle                                                *)

type oracle = {
  mutable breaches : string list; (* reversed, capped at [breach_cap] *)
  mutable breach_count : int;
  mutable prev_in_app : bool;
}

let breach_cap = 8

(* Entries control may legitimately reach when leaving app code: the
   API gates, the sanctioned runtime helpers, and the OS return path.
   Everything else — OS internals, another app's code — is a breach. *)
let sanctioned_entries image ~in_app_code =
  List.filter_map
    (fun (name, addr) ->
      if in_app_code addr then None
      else if
        String.length name > 7 && String.sub name 0 7 = "__gate_"
        || List.mem name Verifier.helper_names
        || name = "__osreturn"
      then Some addr
      else None)
    image.Image.symbols

let install_oracle k ~attacker_idx ~image =
  let m = k.Kernel.machine in
  let lay = k.Kernel.apps.(attacker_idx).Kernel.build.Aft.ab_layout in
  let code_lo = lay.Layout.code_base in
  let code_hi = code_lo + lay.Layout.code_size in
  let data_lo = lay.Layout.data_base and data_hi = lay.Layout.data_limit in
  let shared = not (Iso.separate_stacks k.Kernel.fw.Aft.fw_mode) in
  let in_app_code a = a >= code_lo && a < code_hi in
  let ok_data a =
    (a >= data_lo && a < data_hi)
    || (shared && a >= Map.sram_start && a < Map.sram_limit)
  in
  let sanctioned = sanctioned_entries image ~in_app_code in
  let o = { breaches = []; breach_count = 0; prev_in_app = false } in
  let note fmt =
    Printf.ksprintf
      (fun msg ->
        if o.breach_count < breach_cap then o.breaches <- msg :: o.breaches;
        o.breach_count <- o.breach_count + 1)
      fmt
  in
  M.add_watch m (fun ev ->
      if k.Kernel.current_app = attacker_idx then
        match ev with
        | Trace.Mem_write { addr; pc; value; _ }
          when in_app_code pc && not (ok_data addr) ->
          note "write %04X<-%04X from pc=%04X" addr value pc
        | Trace.Mem_read { addr; pc; _ }
          when in_app_code pc && not (ok_data addr || in_app_code addr) ->
          note "read %04X from pc=%04X" addr pc
        | Trace.Exec { pc; _ } ->
          let now_in = in_app_code pc in
          if o.prev_in_app && (not now_in) && not (List.mem pc sanctioned)
          then note "exec %04X (unsanctioned exit from app code)" pc;
          o.prev_in_app <- now_in
        | Trace.Io_write { addr; _ } when Mpu.handles addr ->
          (* Io_write carries no pc: consult the machine registers —
             mid-instruction the PC already points past the store, but
             still inside (or just after) the offending code span. *)
          let pc = R.get_pc (M.regs m) in
          if in_app_code pc then
            note "MPU register %04X written from app code (pc~%04X)" addr pc
        | _ -> ());
  o

(* ------------------------------------------------------------------ *)
(* One campaign cell                                                   *)

let canary_words = 8
let canary_value = 49374 (* 0xC0DE, see Sec_sources.victim *)

let canary_intact m ~addr =
  let ok = ref true in
  for i = 0 to canary_words - 1 do
    if M.mem_checked_read m Word.W16 (addr + (2 * i)) <> canary_value then
      ok := false
  done;
  !ok

let app_index fw name =
  let rec go i = function
    | [] -> raise Not_found
    | b :: _ when b.Aft.ab_name = name -> i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 fw.Aft.fw_apps

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let matches expected observed =
  match (expected, observed) with
  | Attacks.L_build, O_build_rejected -> true
  | Attacks.L_guard, O_guard _ -> true
  | Attacks.L_mpu, O_hw_fault -> true
  | Attacks.L_gate, O_gate_rejected -> true
  | Attacks.L_kernel, O_kernel -> true
  | Attacks.L_none, O_breach -> true
  | Attacks.L_harmless, (O_leak | O_silent) -> true
  | _ -> false

let lint_rejects report = report.Lint.l_errors > 0

let run_cell ~attack ~mode ~seed =
  let expected = attack.Attacks.atk_expect mode in
  let finish ?(lint = None) ?(note = "") ?(wcet = (0, 0))
      ?(dispatch = Hist.create ()) ~observed ~breaches ~breach_count
      ~canary ~os ~alive () =
    let oracle_ok =
      match expected with
      | Attacks.L_build | Attacks.L_guard | Attacks.L_mpu | Attacks.L_gate
      | Attacks.L_kernel ->
        breach_count = 0 && canary && os && alive
      | Attacks.L_harmless -> breach_count = 0 && os && alive
      | Attacks.L_none -> true
    in
    let lint_ok =
      match (attack.Attacks.atk_lint mode, lint) with
      | _, None -> true
      | Attacks.Must_reject, Some r -> r
      | Attacks.Must_accept, Some r -> not r
      | Attacks.Either, Some _ -> true
    in
    {
      cl_attack = attack.Attacks.atk_name;
      cl_mode = mode;
      cl_expected = expected;
      cl_observed = observed;
      cl_match = matches expected observed;
      cl_oracle_ok = oracle_ok;
      cl_breaches = List.rev breaches;
      cl_breach_count = breach_count;
      cl_canary_intact = canary;
      cl_os_intact = os;
      cl_victim_alive = alive;
      cl_lint_rejected = lint;
      cl_lint_ok = lint_ok;
      cl_wcet_checked = fst wcet;
      cl_wcet_violations = snd wcet;
      cl_note = note;
      cl_dispatch = dispatch;
    }
  in
  match Attacks.build_cell ~attack ~mode with
  | Attacks.Rejected msg ->
    finish ~observed:O_build_rejected ~breaches:[] ~breach_count:0
      ~canary:true ~os:true ~alive:true ~note:msg ()
  | Attacks.Built { fw; attacker; victim; targets } ->
    let image = fw.Aft.fw_image in
    let lint =
      Some (lint_rejects (Lint.run ~image ~mode ~apps:[ attacker ]))
    in
    let k = Kernel.create ~policy:Kernel.Disable ~seed fw in
    let ai = app_index fw attacker and vi = app_index fw victim in
    let oracle = install_oracle k ~attacker_idx:ai ~image in
    let records = Kernel.run_for_ms k 60 in
    let dispatch = Hist.create () in
    List.iter
      (fun (r : Kernel.dispatch_record) ->
        Hist.record dispatch r.Kernel.dr_cycles)
      records;
    let attack_record =
      List.find_opt
        (fun (r : Kernel.dispatch_record) ->
          r.Kernel.dr_app = ai
          &&
          match r.Kernel.dr_kind with
          | Event.Timer_fired _ -> true
          | _ -> false)
        records
    in
    let m = k.Kernel.machine in
    let canary = canary_intact m ~addr:targets.Attacks.t_victim_canary in
    let os = Kernel.os_intact k in
    let alive = Kernel.liveness_probe k ~app:vi in
    let target_hit =
      match attack.Attacks.atk_target targets with
      | None -> false
      | Some a -> M.mem_checked_read m Word.W16 a = Attacks.attack_value
    in
    let breach = oracle.breach_count > 0 || (not canary) || not os in
    (* WCET soundness gate: every dispatch of a CFI-certified app whose
       handler carries a static bound must finish within it.  A cell
       where the oracle saw a breach is excluded — a run that escaped
       the certified control-flow graph voids the premise the static
       bound is conditional on (same layering as the paper: timing
       guarantees ride on the isolation guarantees). *)
    let wcet =
      if breach then (0, 0)
      else begin
        let reports =
          List.map
            (fun (b : Aft.app_build) ->
              let prefix = b.Aft.ab_name in
              match Amulet_analysis.Cfi.reconstruct ~image ~mode ~prefix with
              | Ok cfg ->
                (prefix, Some (Amulet_analysis.Wcet.analyze ~image ~cfg))
              | Error _ | (exception Invalid_argument _) -> (prefix, None))
            fw.Aft.fw_apps
        in
        List.fold_left
          (fun (checked, bad) (r : Kernel.dispatch_record) ->
            match r.Kernel.dr_outcome with
            | Kernel.No_handler -> (checked, bad)
            | Kernel.Ok | Kernel.App_fault _ -> (
              let name =
                (List.nth fw.Aft.fw_apps r.Kernel.dr_app).Aft.ab_name
              in
              match List.assoc name reports with
              | None -> (checked, bad)
              | Some w -> (
                match
                  Amulet_analysis.Wcet.handler_bound w
                    (Event.handler_name r.Kernel.dr_kind)
                with
                | Some (Amulet_analysis.Wcet.Bounded b) ->
                  ( checked + 1,
                    if r.Kernel.dr_cycles > b then bad + 1 else bad )
                | Some (Amulet_analysis.Wcet.Unbounded _) | None ->
                  (checked, bad))))
          (0, 0) records
      end
    in
    let gate_rejected =
      match k.Kernel.apps.(ai).Kernel.last_fault with
      | Some msg -> contains ~sub:"rejected by" msg
      | None -> false
    in
    let observed, note =
      match attack_record with
      | None -> (O_silent, "attack handler never dispatched")
      | Some r ->
        if breach then (O_breach, "")
        else (
          match r.Kernel.dr_outcome with
          | Kernel.App_fault msg
            when starts_with ~prefix:"software check fault " msg -> (
            match
              int_of_string_opt
                (String.sub msg 21 (String.length msg - 21))
            with
            | Some c -> (O_guard c, "")
            | None -> (O_guard (-1), msg))
          | Kernel.App_fault msg when contains ~sub:"MPU" msg ->
            (O_hw_fault, msg)
          | Kernel.App_fault msg -> (O_kernel, msg)
          | Kernel.Ok | Kernel.No_handler ->
            if gate_rejected then
              ( O_gate_rejected,
                Option.value ~default:"" k.Kernel.apps.(ai).Kernel.last_fault
              )
            else if target_hit then (O_leak, "write landed in permitted memory")
            else (O_silent, ""))
    in
    finish ~lint ~wcet ~dispatch ~observed ~breaches:oracle.breaches
      ~breach_count:oracle.breach_count ~canary ~os ~alive ~note ()

(* ------------------------------------------------------------------ *)
(* Fault-injection rows                                                *)

let injection_flips = 8
(* The benign pair executes a few thousand instructions over the run's
   500 virtual ms; spreading flips over the first 4000 keeps them
   inside the executed prefix while still straddling many dispatches. *)
let injection_window = (100, 4_000)

let injection_once ~mode ~target ~seed =
  let fw =
    Aft.build ~mode
      [
        Amulet_apps.Suite.spec_for mode Amulet_apps.Suite.security_victim;
        Amulet_apps.Suite.spec_for mode Amulet_apps.Suite.security_carrier;
      ]
  in
  let canary_addr =
    Image.symbol fw.Aft.fw_image (Iso.mangle ~prefix:"victim" "canary")
  in
  let inj_target =
    match target with
    | `Regs -> Inject.Regs
    | `Mpu -> Inject.Mpu_config
    | `Fram ->
      let lay = (Aft.find_app fw "victim").Aft.ab_layout in
      Inject.Fram { lo = lay.Layout.data_base; hi = lay.Layout.data_limit }
  in
  let k = Kernel.create ~policy:Kernel.Disable ~seed fw in
  let plan =
    Inject.plan ~seed ~flips:injection_flips ~window:injection_window
      inj_target
  in
  let inj = Inject.arm plan k.Kernel.machine in
  ignore (Kernel.run_for_ms k 500);
  let faults = Kernel.unrecovered_faults k in
  ( Inject.log inj,
    Inject.flips_done inj,
    faults,
    canary_intact k.Kernel.machine ~addr:canary_addr,
    Kernel.os_intact k )

let run_injection ~mode ~target ~seed =
  let log1, flips, faults1, canary1, os1 =
    injection_once ~mode ~target ~seed
  in
  let log2, _, faults2, canary2, os2 = injection_once ~mode ~target ~seed in
  {
    in_mode = mode;
    in_target =
      (match target with `Regs -> "regs" | `Fram -> "fram" | `Mpu -> "mpu");
    in_flips = flips;
    in_log = log1;
    in_faults = faults1;
    in_canary_intact = canary1;
    in_os_intact = os1;
    in_deterministic =
      log1 = log2 && faults1 = faults2 && canary1 = canary2 && os1 = os2;
  }

(* ------------------------------------------------------------------ *)
(* Parallel driver                                                     *)

let quick_names =
  [
    "src_wild_write_os";
    "src_wild_write_victim";
    "src_stack_smash";
    "src_gate_deputy_write";
    "src_probe_slack";
    "bin_wild_write_os";
    "bin_mpu_disable";
    "bin_jump_victim_code";
  ]

let run ?(quick = false) ?(jobs = 0) ?(only = []) ?(modes = Iso.all) ~seed ()
    =
  let attacks =
    Attacks.corpus
    |> List.filter (fun (a : Attacks.t) ->
           (not quick) || List.mem a.Attacks.atk_name quick_names)
    |> List.filter (fun (a : Attacks.t) ->
           only = [] || List.mem a.Attacks.atk_name only)
  in
  let cells =
    List.concat_map
      (fun a -> List.map (fun m -> (a, m)) modes)
      attacks
  in
  (* cells are independent (each builds its own firmware and machine)
     and none of the toolchain libraries keeps module-level mutable
     state, so the fleet scheduler can hand them to any domain;
     Sched.map returns results in item order, so the summary is
     byte-identical whatever [jobs] was *)
  let s_cells =
    Sched.map ~jobs
      (fun (attack, mode) -> run_cell ~attack ~mode ~seed)
      cells
  in
  let s_injections =
    if quick then []
    else
      Sched.map ~jobs
        (fun (mode, target) -> run_injection ~mode ~target ~seed)
        (List.concat_map
           (fun m -> [ (m, `Regs); (m, `Fram); (m, `Mpu) ])
           modes)
  in
  (* merge the per-cell histograms into one distribution per mode:
     [Hist.merge] is associative and commutative, so the result is
     independent of how the cells were spread over the domains *)
  let s_dispatch =
    List.filter_map
      (fun m ->
        let h =
          List.fold_left
            (fun acc c ->
              if c.cl_mode = m then Hist.merge acc c.cl_dispatch else acc)
            (Hist.create ()) s_cells
        in
        if Hist.is_empty h then None else Some (m, h))
      modes
  in
  {
    s_cells;
    s_injections;
    s_dispatch;
    s_wcet_checked =
      List.fold_left (fun a c -> a + c.cl_wcet_checked) 0 s_cells;
    s_wcet_violations =
      List.fold_left (fun a c -> a + c.cl_wcet_violations) 0 s_cells;
    s_mismatches =
      List.length (List.filter (fun c -> not c.cl_match) s_cells);
    s_oracle_failures =
      List.length (List.filter (fun c -> not c.cl_oracle_ok) s_cells);
    s_lint_failures =
      List.length (List.filter (fun c -> not c.cl_lint_ok) s_cells);
    s_nondeterministic =
      List.length
        (List.filter (fun i -> not i.in_deterministic) s_injections);
  }

let ok s =
  s.s_mismatches = 0 && s.s_oracle_failures = 0 && s.s_lint_failures = 0
  && s.s_nondeterministic = 0 && s.s_wcet_violations = 0

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let emit_jsonl s oc =
  let sink = Obs.jsonl_sink oc in
  List.iteri
    (fun i c ->
      sink.Obs.output
        (Obs.Instant
           {
             name = c.cl_attack;
             cat = "campaign";
             ts = i;
             tid = 0;
             args =
               [
                 ("mode", Obs.Vstr (Iso.name c.cl_mode));
                 ("expected", Obs.Vstr (Attacks.layer_name c.cl_expected));
                 ("observed", Obs.Vstr (observed_name c.cl_observed));
                 ("match", Obs.Vint (if c.cl_match then 1 else 0));
                 ("oracle_ok", Obs.Vint (if c.cl_oracle_ok then 1 else 0));
                 ("breaches", Obs.Vint c.cl_breach_count);
                 ("canary_intact", Obs.Vint (if c.cl_canary_intact then 1 else 0));
                 ("os_intact", Obs.Vint (if c.cl_os_intact then 1 else 0));
                 ("victim_alive", Obs.Vint (if c.cl_victim_alive then 1 else 0));
                 ( "lint",
                   Obs.Vstr
                     (match c.cl_lint_rejected with
                     | None -> "n/a"
                     | Some true -> "rejected"
                     | Some false -> "accepted") );
                 ("lint_ok", Obs.Vint (if c.cl_lint_ok then 1 else 0));
                 ("wcet_checked", Obs.Vint c.cl_wcet_checked);
                 ("wcet_violations", Obs.Vint c.cl_wcet_violations);
                 ("note", Obs.Vstr c.cl_note);
               ];
           }))
    s.s_cells;
  List.iteri
    (fun i inj ->
      sink.Obs.output
        (Obs.Instant
           {
             name = "inject_" ^ inj.in_target;
             cat = "injection";
             ts = i;
             tid = 1;
             args =
               [
                 ("mode", Obs.Vstr (Iso.name inj.in_mode));
                 ("flips", Obs.Vint inj.in_flips);
                 ("faults", Obs.Vint (List.length inj.in_faults));
                 ("canary_intact", Obs.Vint (if inj.in_canary_intact then 1 else 0));
                 ("os_intact", Obs.Vint (if inj.in_os_intact then 1 else 0));
                 ( "deterministic",
                   Obs.Vint (if inj.in_deterministic then 1 else 0) );
                 ("log", Obs.Vstr (String.concat "; " inj.in_log));
               ];
           }))
    s.s_injections;
  sink.Obs.close ()

let pp_matrix ppf s =
  let attacks =
    List.sort_uniq compare (List.map (fun c -> c.cl_attack) s.s_cells)
  in
  (* preserve corpus order *)
  let attacks =
    List.filter
      (fun (a : Attacks.t) -> List.mem a.Attacks.atk_name attacks)
      Attacks.corpus
    |> List.map (fun (a : Attacks.t) -> a.Attacks.atk_name)
  in
  let modes =
    List.filter
      (fun m -> List.exists (fun c -> c.cl_mode = m) s.s_cells)
      Iso.all
  in
  let cell name mode =
    List.find_opt
      (fun c -> c.cl_attack = name && c.cl_mode = mode)
      s.s_cells
  in
  Format.fprintf ppf "%-24s" "attack";
  List.iter (fun m -> Format.fprintf ppf " %-14s" (Iso.name m)) modes;
  Format.fprintf ppf "@.";
  List.iter
    (fun name ->
      Format.fprintf ppf "%-24s" name;
      List.iter
        (fun m ->
          match cell name m with
          | None -> Format.fprintf ppf " %-14s" "-"
          | Some c ->
            let mark =
              if c.cl_match && c.cl_oracle_ok && c.cl_lint_ok then ' '
              else '!'
            in
            Format.fprintf ppf " %c%-13s" mark (observed_name c.cl_observed))
        modes;
      Format.fprintf ppf "@.")
    attacks;
  if s.s_dispatch <> [] then begin
    Format.fprintf ppf
      "@.dispatch cycles across all cells (merged histograms):@.";
    Format.fprintf ppf "  %-16s %8s %8s %8s %8s %8s@." "mode" "dispatches"
      "p50" "p90" "p99" "max";
    List.iter
      (fun (m, h) ->
        Format.fprintf ppf "  %-16s %8d %8d %8d %8d %8d@." (Iso.name m)
          (Hist.count h) (Hist.quantile h 0.5) (Hist.quantile h 0.9)
          (Hist.quantile h 0.99) (Hist.max_value h))
      s.s_dispatch
  end;
  if s.s_injections <> [] then begin
    Format.fprintf ppf "@.fault injection (seeded, informational):@.";
    List.iter
      (fun i ->
        Format.fprintf ppf
          "  %-10s %-5s %d flips, %d app faults, canary %s, OS %s%s@."
          (Iso.name i.in_mode) i.in_target i.in_flips
          (List.length i.in_faults)
          (if i.in_canary_intact then "intact" else "CORRUPTED")
          (if i.in_os_intact then "intact" else "CORRUPTED")
          (if i.in_deterministic then "" else "  NON-DETERMINISTIC"))
      s.s_injections
  end;
  List.iter
    (fun c ->
      if c.cl_wcet_violations > 0 then
        Format.fprintf ppf
          "@.UNSOUND %s under %s: %d of %d dispatches exceeded their static \
           WCET bound@."
          c.cl_attack (Iso.name c.cl_mode) c.cl_wcet_violations
          c.cl_wcet_checked;
      if not (c.cl_match && c.cl_oracle_ok && c.cl_lint_ok) then begin
        Format.fprintf ppf "@.FAIL %s under %s: expected %s, observed %s@."
          c.cl_attack (Iso.name c.cl_mode)
          (Attacks.layer_name c.cl_expected)
          (observed_name c.cl_observed);
        if not c.cl_oracle_ok then
          Format.fprintf ppf
            "  oracle: %d breaches, canary %b, os %b, victim alive %b@."
            c.cl_breach_count c.cl_canary_intact c.cl_os_intact
            c.cl_victim_alive;
        List.iter (fun b -> Format.fprintf ppf "    %s@." b) c.cl_breaches;
        if not c.cl_lint_ok then
          Format.fprintf ppf "  lint: %s@."
            (match c.cl_lint_rejected with
            | Some true -> "rejected (expected accepted)"
            | Some false -> "accepted (expected rejected)"
            | None -> "n/a");
        if c.cl_note <> "" then Format.fprintf ppf "  note: %s@." c.cl_note
      end)
    s.s_cells;
  Format.fprintf ppf
    "@.%d cells: %d mismatches, %d oracle failures, %d lint failures; WCET \
     soundness %d/%d dispatches within bound; %d injection rows (%d \
     non-deterministic)@."
    (List.length s.s_cells) s.s_mismatches s.s_oracle_failures
    s.s_lint_failures
    (s.s_wcet_checked - s.s_wcet_violations)
    s.s_wcet_checked
    (List.length s.s_injections)
    s.s_nondeterministic
