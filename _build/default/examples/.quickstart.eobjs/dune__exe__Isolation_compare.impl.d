examples/isolation_compare.ml: Amulet_aft Amulet_apps Amulet_arp Amulet_cc Array Format List Sys
