open Ctype

let fn ret args = Func (ret, args)

let signatures =
  [
    (* benchmarking no-op: measures pure context-switch cost *)
    ("api_null", fn Void []);
    (* time and power *)
    ("api_get_time", fn Uint []);
    ("api_get_battery", fn Int []);
    (* sensors *)
    ("api_read_accel", fn Int [ Ptr Int; Int ]);
    ("api_read_accel_xyz", fn Int [ Ptr Int ]);
    ("api_read_heart_rate", fn Int []);
    ("api_read_ppg", fn Int [ Ptr Int; Int ]);
    ("api_read_temperature", fn Int []);
    ("api_read_light", fn Int []);
    (* display and UI *)
    ("api_display_write", fn Void [ Ptr Char; Int ]);
    ("api_display_clear", fn Void []);
    ("api_button_state", fn Int []);
    ("api_led", fn Void [ Int ]);
    ("api_buzz", fn Void [ Int ]);
    (* storage and radio *)
    ("api_log_append", fn Int [ Ptr Char; Int ]);
    ("api_send_ble", fn Int [ Ptr Char; Int ]);
    (* timers and subscriptions *)
    ("api_set_timer", fn Int [ Int ]);
    ("api_cancel_timer", fn Void [ Int ]);
    ("api_subscribe", fn Int [ Int; Int ]);
    ("api_unsubscribe", fn Void [ Int ]);
    (* misc *)
    ("api_rand", fn Uint []);
  ]

let names = List.map fst signatures
let exists name = List.mem_assoc name signatures
let gate_label name = "__gate_" ^ name

let arg_count name =
  match List.assoc name signatures with
  | Func (_, args) -> List.length args
  | _ -> assert false
