(** AFT phase-1 stack-depth analysis.

    From the call graph and each function's frame size, compute the
    worst-case stack bytes needed below an entry point.  In the
    presence of recursion the maximum is statically unknowable (the
    paper: "the AFT cannot guarantee a large enough stack"); callers
    then fall back to a configured default and rely on the MPU to
    catch overflow at run time. *)

type result =
  | Finite of int  (** worst-case bytes, including call overhead *)
  | Recursive of string list  (** a call cycle reachable from the root *)

val frame_cost : Codegen.fn_info -> int
(** Bytes one activation of the function consumes: return address,
    saved frame pointer, callee-saved registers, locals, plus the
    codegen-measured spill high-water mark and deepest
    runtime-helper/gate stack use ([fi_spill_bytes] and
    [fi_runtime_bytes]). *)

val analyze : Codegen.fn_info list -> root:string -> result

val worst_case :
  Codegen.fn_info list -> roots:string list -> default:int -> int
(** Max over entry points, substituting [default] for recursive ones. *)
