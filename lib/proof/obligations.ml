(* The proof obligations: one write-containment claim per isolation
   mode and attacker model, each proved by k-induction or refuted with
   a shortest counterexample trace.

   The obligation matrix states each mode's *honest* contract:

   - every mode contains a benign app (baseline sanity);
   - Feature-Limited contains anything its compiler accepts, because
     the accepted language cannot name foreign addresses;
   - Software-only contains compiled code whose stack is bounded
     (discharged statically by the stack certifier); it is refuted for
     unbounded recursion — the pushes themselves are unguarded — and
     for binary payloads;
   - Mpu-assisted contains compiled code over all MPU-covered memory
     (k-induction with a window-integrity strengthening), but the
     unconditional claim is *refutable*: the mode's lower-bound-only
     guard is an unsigned compare and the vector page above
     fram_limit is mapped, writable and never MPU-covered, so a wild
     pointer ≥ 0xFF80 slips both layers.  That hole is stated as an
     explicit refutable obligation instead of being papered over.
     Binary payloads defeat the MPU via its password-published
     registers. *)

module Iso = Amulet_cc.Isolation
module A = Absmachine

type prop =
  | P_no_breach  (** no app action ever lands outside its sanction *)
  | P_no_breach_covered
      (** no breach in MPU-coverable memory (the vector page exempt) *)
  | P_window_integrity
      (** the MPU stays enabled, and the app window is programmed
          whenever the app side runs *)

let prop_name = function
  | P_no_breach -> "no-breach"
  | P_no_breach_covered -> "no-breach-covered"
  | P_window_integrity -> "window-integrity"

type expect = Theorem | Refutable

type obligation = {
  ob_name : string;
  ob_mode : Iso.mode;
  ob_attacker : A.attacker;
  ob_prop : prop;
  ob_aux : bool;  (** conjoin the window-integrity strengthening *)
  ob_expect : expect;
  ob_descr : string;
}

let window_ok (s : A.state) =
  s.A.mpu_en && (s.A.priv <> A.P_app || s.A.win = A.W_app)

let prop_fn = function
  | P_no_breach -> (
    fun (s : A.state) ->
      match s.A.dead with Some (A.D_breach _) -> false | _ -> true)
  | P_no_breach_covered -> (
    fun (s : A.state) ->
      match s.A.dead with
      | Some (A.D_breach b) -> b.A.br_region = A.R_vectors
      | _ -> true)
  | P_window_integrity -> window_ok

let ob ~name ~mode ~attacker ?(prop = P_no_breach) ?(aux = false) ~expect descr
    =
  {
    ob_name = name;
    ob_mode = mode;
    ob_attacker = attacker;
    ob_prop = prop;
    ob_aux = aux;
    ob_expect = expect;
    ob_descr = descr;
  }

let bounded = A.Compiled { stack_bounded = true }
let unbounded = A.Compiled { stack_bounded = false }

let all =
  [
    (* --- baseline: every mode contains a benign app ---------------- *)
    ob ~name:"none-benign" ~mode:Iso.No_isolation ~attacker:A.Benign
      ~expect:Theorem "a well-behaved app stays inside its region";
    ob ~name:"fl-benign" ~mode:Iso.Feature_limited ~attacker:A.Benign
      ~expect:Theorem "a well-behaved app stays inside its region";
    ob ~name:"sw-benign" ~mode:Iso.Software_only ~attacker:A.Benign
      ~expect:Theorem "a well-behaved app stays inside its region";
    ob ~name:"mpu-benign" ~mode:Iso.Mpu_assisted ~attacker:A.Benign
      ~expect:Theorem "a well-behaved app stays inside its region";
    (* --- No_isolation: no adversarial containment ------------------ *)
    ob ~name:"none-compiled" ~mode:Iso.No_isolation ~attacker:bounded
      ~expect:Refutable "a wild pointer store lands anywhere";
    ob ~name:"none-binary" ~mode:Iso.No_isolation ~attacker:A.Binary
      ~expect:Refutable "binary payloads land anywhere";
    (* --- Feature_limited: containment by language subset ----------- *)
    ob ~name:"fl-compiled" ~mode:Iso.Feature_limited ~attacker:bounded
      ~expect:Theorem
      "no pointers, no recursion: accepted programs cannot name foreign \
       addresses";
    ob ~name:"fl-binary" ~mode:Iso.Feature_limited ~attacker:A.Binary
      ~expect:Refutable
      "the language subset is a build-time defence only; smuggled binary \
       escapes (the SFI verifier is the static recourse)";
    (* --- Software_only: two-sided deref guards --------------------- *)
    ob ~name:"sw-compiled" ~mode:Iso.Software_only ~attacker:bounded
      ~expect:Theorem
      "lower+upper guards confine every pointer deref to the app window; \
       bounded stack discharged by the stack certifier";
    ob ~name:"sw-compiled-wild-stack" ~mode:Iso.Software_only
      ~attacker:unbounded ~expect:Refutable
      "stack pushes are unguarded: unbounded recursion walks below the app \
       window into the neighbour's memory";
    ob ~name:"sw-binary" ~mode:Iso.Software_only ~attacker:A.Binary
      ~expect:Refutable
      "guards live in the emitted code; payloads that skip them are \
       unconfined";
    (* --- Mpu_assisted: lower guard + MPU upper bound --------------- *)
    ob ~name:"mpu-window-integrity" ~mode:Iso.Mpu_assisted ~attacker:unbounded
      ~prop:P_window_integrity ~expect:Theorem
      "compiled code cannot reach the password-protected MPU registers \
       (the guard blocks the pointer first), and the gates restore the app \
       window on every return";
    ob ~name:"mpu-compiled-covered" ~mode:Iso.Mpu_assisted ~attacker:unbounded
      ~prop:P_no_breach_covered ~aux:true ~expect:Theorem
      "over MPU-coverable memory the lower guard and segment-3 no-access \
       window contain every compiled access, including stack overflow";
    ob ~name:"mpu-compiled-vectors" ~mode:Iso.Mpu_assisted ~attacker:bounded
      ~expect:Refutable
      "the vector page above fram_limit is writable, never MPU-covered, \
       and above the unsigned lower-bound guard: a wild pointer >= 0xFF80 \
       slips both layers";
    ob ~name:"mpu-binary" ~mode:Iso.Mpu_assisted ~attacker:A.Binary
      ~expect:Refutable
      "the MPU password is an architectural constant: a payload disables \
       or rebounds the unit, and SRAM is never covered";
  ]

let find name = List.find (fun o -> o.ob_name = name) all

(* ------------------------------------------------------------------ *)

let system (o : obligation) : (A.state, A.action) Engine.system =
  {
    Engine.universe = A.universe;
    inits = [ A.init ~mode:o.ob_mode ];
    actions = A.repertoire ~mode:o.ob_mode ~attacker:o.ob_attacker;
    step = (fun s a -> A.step ~mode:o.ob_mode s a);
    prop = prop_fn o.ob_prop;
    equal = A.state_equal;
    pp_state = A.pp_state;
    pp_action = A.pp_action;
  }

type result = {
  res_ob : obligation;
  res_verdict : (A.state, A.action) Engine.verdict;
  res_ok : bool;  (** the verdict matches the obligation's expectation *)
}

let check ?(k_max = 8) (o : obligation) =
  let sys = system o in
  let aux = if o.ob_aux then Some window_ok else None in
  let verdict = Engine.k_induction ~k_max ?aux sys in
  let ok =
    match (o.ob_expect, verdict) with
    | Theorem, Engine.Proved _ -> true
    | Refutable, Engine.Refuted _ -> true
    | _ -> false
  in
  { res_ob = o; res_verdict = verdict; res_ok = ok }

let run ?k_max () = List.map (check ?k_max) all

let run_mode ?k_max mode =
  List.filter (fun o -> o.ob_mode = mode) all |> List.map (check ?k_max)

let refuted_trace r =
  match r.res_verdict with
  | Engine.Refuted { trace; final } -> Some (trace, final)
  | _ -> None
