(* Security subsystem tests: MPU granularity slack, oracle behaviour,
   injector determinism, and the kernel integrity probes the campaign
   relies on. *)

module Iso = Amulet_cc.Isolation
module Aft = Amulet_aft.Aft
module Layout = Amulet_aft.Layout
module Kernel = Amulet_os.Kernel
module Attacks = Amulet_sec.Attacks
module Campaign = Amulet_sec.Campaign
module Inject = Amulet_sec.Inject
module Proofcheck = Amulet_sec.Proofcheck

let seed = 1234

let build_exn ~attack ~mode =
  match Attacks.build_cell ~attack ~mode with
  | Attacks.Built { fw; attacker; targets; _ } -> (fw, attacker, targets)
  | Attacks.Rejected msg ->
    Alcotest.failf "%s rejected under %s: %s" attack.Attacks.atk_name
      (Iso.name mode) msg

(* ------------------------------------------------------------------ *)
(* MPU 1 KiB granularity: the slack bytes of a granule-rounded data
   segment are writable even though the app never declared them. *)

let test_slack_geometry () =
  let attack = Attacks.find "src_probe_slack" in
  let fw, attacker, targets = build_exn ~attack ~mode:Iso.Mpu_assisted in
  let lay = (Aft.find_app fw attacker).Aft.ab_layout in
  let tgt = targets.Attacks.t_self_slack in
  Alcotest.(check bool) "data region is granule-rounded" true
    ((lay.Layout.data_limit - lay.Layout.data_base) mod 0x400 = 0);
  Alcotest.(check bool) "attacker declares globals" true
    (lay.Layout.globals_size > 0);
  Alcotest.(check bool) "target is above the declared globals" true
    (tgt >= lay.Layout.data_base + lay.Layout.globals_size);
  Alcotest.(check bool) "target is below the segment limit" true
    (tgt < lay.Layout.data_limit)

let test_mpu_slack_leak () =
  (* The write lands: no fault, no breach — the documented granularity
     over-permission.  Contrast with test_mpu_probe_below. *)
  List.iter
    (fun name ->
      let cell =
        Campaign.run_cell ~attack:(Attacks.find name) ~mode:Iso.Mpu_assisted
          ~seed
      in
      Alcotest.(check bool)
        (name ^ " slack write is tolerated") true cell.Campaign.cl_match;
      Alcotest.(check int)
        (name ^ " no oracle breach") 0 cell.Campaign.cl_breach_count;
      Alcotest.(check bool)
        (name ^ " victim canary intact") true cell.Campaign.cl_canary_intact;
      match cell.Campaign.cl_observed with
      | Campaign.O_leak | Campaign.O_silent -> ()
      | o ->
        Alcotest.failf "%s: expected leak/silent, observed %s" name
          (Campaign.observed_name o))
    [ "src_probe_slack"; "bin_probe_slack" ]

let test_mpu_probe_below () =
  (* Two bytes below the segment base is outside the granule: the MPU
     faults the very store that the slack probe got away with. *)
  let cell =
    Campaign.run_cell
      ~attack:(Attacks.find "bin_probe_below")
      ~mode:Iso.Mpu_assisted ~seed
  in
  Alcotest.(check bool) "below-base store matches" true cell.Campaign.cl_match;
  (match cell.Campaign.cl_observed with
  | Campaign.O_hw_fault -> ()
  | o ->
    Alcotest.failf "expected hw-fault below base, observed %s"
      (Campaign.observed_name o));
  Alcotest.(check bool) "oracle holds" true cell.Campaign.cl_oracle_ok

(* ------------------------------------------------------------------ *)
(* Oracle: catches a real cross-app breach, stays quiet on a contained
   one. *)

let test_oracle_breach_detection () =
  let cell =
    Campaign.run_cell
      ~attack:(Attacks.find "bin_wild_write_victim")
      ~mode:Iso.Software_only ~seed
  in
  Alcotest.(check bool) "binary attack defeats software-only" true
    cell.Campaign.cl_match;
  Alcotest.(check bool) "oracle recorded the breach" true
    (cell.Campaign.cl_breach_count > 0);
  Alcotest.(check bool) "victim canary was clobbered" false
    cell.Campaign.cl_canary_intact

let test_oracle_contained () =
  let cell =
    Campaign.run_cell
      ~attack:(Attacks.find "src_wild_write_victim")
      ~mode:Iso.Mpu_assisted ~seed
  in
  Alcotest.(check bool) "MPU contains the wild write" true
    cell.Campaign.cl_match;
  Alcotest.(check int) "no breach recorded" 0 cell.Campaign.cl_breach_count;
  Alcotest.(check bool) "canary intact" true cell.Campaign.cl_canary_intact;
  Alcotest.(check bool) "victim still schedulable" true
    cell.Campaign.cl_victim_alive

(* ------------------------------------------------------------------ *)
(* Quick corpus smoke: the CI subset matches expectations under the
   two extreme modes. *)

let test_quick_corpus () =
  List.iter
    (fun name ->
      List.iter
        (fun mode ->
          let cell =
            Campaign.run_cell ~attack:(Attacks.find name) ~mode ~seed
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s under %s matches" name (Iso.name mode))
            true cell.Campaign.cl_match;
          Alcotest.(check bool)
            (Printf.sprintf "%s under %s oracle ok" name (Iso.name mode))
            true cell.Campaign.cl_oracle_ok;
          Alcotest.(check bool)
            (Printf.sprintf "%s under %s lint ok" name (Iso.name mode))
            true cell.Campaign.cl_lint_ok)
        [ Iso.No_isolation; Iso.Mpu_assisted ])
    Campaign.quick_names

(* ------------------------------------------------------------------ *)
(* Corpus ⇔ proof crosscheck: every expectation in the attack corpus
   falls out of the abstract machine as a theorem or as a concretely
   replayed counterexample — zero mismatches tolerated. *)

let test_crosscheck_total () =
  List.iter
    (fun (a : Attacks.t) ->
      if Proofcheck.scenario_of a = None then
        Alcotest.failf "%s has no abstract restatement" a.Attacks.atk_name)
    Attacks.corpus

let test_crosscheck_matrix () =
  let rows = Proofcheck.run () in
  Alcotest.(check int) "one row per attack x mode"
    (4 * List.length Attacks.corpus)
    (List.length rows);
  List.iter
    (fun r ->
      if not (Proofcheck.row_ok r) then
        Alcotest.failf "%s" (Format.asprintf "%a" Proofcheck.pp_row r))
    rows;
  (* the negative cells really are backed by concrete replays *)
  let replayed =
    List.length
      (List.filter
         (fun r -> r.Proofcheck.cc_verdict = Proofcheck.V_counterexample)
         rows)
  in
  Alcotest.(check bool) "some counterexamples were replayed" true (replayed > 0)

(* The vector-page hole end-to-end: the Mpu_assisted guard is
   lower-bound-only and the MPU stops at fram_limit, so a compiled
   wild write at 0xFF80+ lands — the campaign cell must observe the
   breach the proof layer predicts (and software-only must guard it). *)
let test_vector_hole_campaign () =
  let attack = Attacks.find "src_wild_write_vectors" in
  let mpu = Campaign.run_cell ~attack ~mode:Iso.Mpu_assisted ~seed in
  Alcotest.(check bool) "mpu-assisted cell matches (breach expected)" true
    mpu.Campaign.cl_match;
  Alcotest.(check bool) "breach recorded above fram_limit" true
    (mpu.Campaign.cl_breach_count > 0);
  let sw = Campaign.run_cell ~attack ~mode:Iso.Software_only ~seed in
  Alcotest.(check bool) "software-only guard catches it" true
    sw.Campaign.cl_match;
  match sw.Campaign.cl_observed with
  | Campaign.O_guard _ -> ()
  | o ->
    Alcotest.failf "expected guard under software-only, observed %s"
      (Campaign.observed_name o)

(* ------------------------------------------------------------------ *)
(* Injector: seeded schedules reproduce exactly. *)

let test_injector_determinism () =
  let inj =
    Campaign.run_injection ~mode:Iso.Mpu_assisted ~target:`Regs ~seed:5
  in
  Alcotest.(check bool) "flips were applied" true (inj.Campaign.in_flips > 0);
  Alcotest.(check bool) "identical re-run reproduces" true
    inj.Campaign.in_deterministic

let test_injector_plan_reproducible () =
  let mk () =
    let m = Amulet_mcu.Machine.create () in
    let words =
      List.concat_map Amulet_mcu.Encode.encode
        [
          Amulet_mcu.Opcode.Fmt1
            ( Amulet_mcu.Opcode.MOV,
              Amulet_mcu.Word.W16,
              Amulet_mcu.Opcode.S_immediate 2000,
              Amulet_mcu.Opcode.D_reg 5 );
          Amulet_mcu.Opcode.Fmt1
            ( Amulet_mcu.Opcode.SUB,
              Amulet_mcu.Word.W16,
              Amulet_mcu.Opcode.S_immediate 1,
              Amulet_mcu.Opcode.D_reg 5 );
          Amulet_mcu.Opcode.Jump (Amulet_mcu.Opcode.JNE, -2);
          Amulet_mcu.Opcode.Fmt1
            ( Amulet_mcu.Opcode.MOV,
              Amulet_mcu.Word.W16,
              Amulet_mcu.Opcode.S_immediate 1,
              Amulet_mcu.Opcode.D_absolute Amulet_mcu.Machine.halt_port );
        ]
    in
    Amulet_mcu.Machine.load_words m ~addr:0x4400 words;
    Amulet_mcu.Machine.set_reset_vector m 0x4400;
    Amulet_mcu.Machine.reset m;
    m
  in
  let run s =
    let m = mk () in
    let inj = Inject.arm (Inject.plan ~seed:s ~flips:4 ~window:(10, 2_000) Inject.Regs) m in
    ignore (Amulet_mcu.Machine.run m);
    (Inject.flips_done inj, Inject.log inj)
  in
  let f1, l1 = run 11 in
  let f2, l2 = run 11 in
  let _, l3 = run 12 in
  Alcotest.(check int) "all scheduled flips applied" 4 f1;
  Alcotest.(check int) "same seed, same flip count" f1 f2;
  Alcotest.(check (list string)) "same seed, same flip log" l1 l2;
  Alcotest.(check bool) "different seed, different schedule" true (l1 <> l3)

let test_injector_mpu_raw_replay () =
  (* Mpu_config flips go through [Mpu.raw_set] (the password/lock
     bypass): the same seed must leave the raw register file in the
     same final state, and the flips must land even when the unit is
     locked against MMIO writes. *)
  let module M = Amulet_mcu.Machine in
  let module Mpu = Amulet_mcu.Mpu in
  let mk () =
    let m = M.create () in
    let words =
      List.concat_map Amulet_mcu.Encode.encode
        [
          (* lock the MPU through the front door, then spin *)
          Amulet_mcu.Opcode.Fmt1
            ( Amulet_mcu.Opcode.MOV,
              Amulet_mcu.Word.W16,
              Amulet_mcu.Opcode.S_immediate 0xA502,
              Amulet_mcu.Opcode.D_absolute Mpu.ctl0_addr );
          Amulet_mcu.Opcode.Fmt1
            ( Amulet_mcu.Opcode.MOV,
              Amulet_mcu.Word.W16,
              Amulet_mcu.Opcode.S_immediate 500,
              Amulet_mcu.Opcode.D_reg 5 );
          Amulet_mcu.Opcode.Fmt1
            ( Amulet_mcu.Opcode.SUB,
              Amulet_mcu.Word.W16,
              Amulet_mcu.Opcode.S_immediate 1,
              Amulet_mcu.Opcode.D_reg 5 );
          Amulet_mcu.Opcode.Jump (Amulet_mcu.Opcode.JNE, -2);
          Amulet_mcu.Opcode.Fmt1
            ( Amulet_mcu.Opcode.MOV,
              Amulet_mcu.Word.W16,
              Amulet_mcu.Opcode.S_immediate 1,
              Amulet_mcu.Opcode.D_absolute M.halt_port );
        ]
    in
    M.load_words m ~addr:0x4400 words;
    M.set_reset_vector m 0x4400;
    M.reset m;
    m
  in
  let dump m =
    List.map
      (fun r -> Mpu.raw_get m.M.mpu r)
      [ Mpu.Raw_ctl0; Mpu.Raw_ctl1; Mpu.Raw_segb1; Mpu.Raw_segb2; Mpu.Raw_sam ]
  in
  (* control run, no injector: the firmware locks the unit via MMIO *)
  let clean =
    let m = mk () in
    ignore (M.run m);
    Alcotest.(check bool) "MPU locked by the firmware" true
      (Mpu.locked m.M.mpu);
    dump m
  in
  let run s =
    let m = mk () in
    let inj =
      Inject.arm (Inject.plan ~seed:s ~flips:6 ~window:(10, 1_000) Inject.Mpu_config) m
    in
    ignore (M.run m);
    (Inject.log inj, dump m)
  in
  let l1, d1 = run 77 in
  let l2, d2 = run 77 in
  let _, d3 = run 78 in
  Alcotest.(check bool) "flips were applied" true (l1 <> []);
  Alcotest.(check bool) "flips landed despite the lock" true (d1 <> clean);
  Alcotest.(check (list string)) "same seed, same flip log" l1 l2;
  Alcotest.(check (list int)) "same seed, same raw register file" d1 d2;
  Alcotest.(check bool) "different seed, different register file" true
    (d1 <> d3)

(* ------------------------------------------------------------------ *)
(* Kernel integrity probes used by the campaign and amulet_sim. *)

let benign_fw mode =
  let module Apps = Amulet_apps.Suite in
  Aft.build ~mode
    (List.map (Apps.spec_for mode) [ Apps.security_victim; Apps.security_carrier ])

let test_kernel_probes_clean () =
  let fw = benign_fw Iso.Mpu_assisted in
  let k = Kernel.create ~policy:Kernel.Disable ~seed fw in
  let _ = Kernel.run_for_ms k 2_000 in
  Alcotest.(check bool) "OS code checksum holds" true (Kernel.os_intact k);
  Alcotest.(check bool) "victim answers a liveness probe" true
    (Kernel.liveness_probe k ~app:0);
  Alcotest.(check (list (pair string string))) "no unrecovered faults" []
    (Kernel.unrecovered_faults k)

let test_kernel_probes_faulty () =
  let faulty =
    {|
void handle_init(int arg) { api_set_timer(100); }
void handle_timer(int arg) {
  int *p = (int*)0x4400;
  *p = 1;
}
|}
  in
  let fw =
    Aft.build ~mode:Iso.Mpu_assisted
      [
        { Aft.name = "victim"; source = Amulet_apps.Sec_sources.victim };
        { Aft.name = "faulty"; source = faulty };
      ]
  in
  let k = Kernel.create ~policy:Kernel.Disable ~seed fw in
  let _ = Kernel.run_for_ms k 2_000 in
  Alcotest.(check bool) "OS survives" true (Kernel.os_intact k);
  match Kernel.unrecovered_faults k with
  | [ (name, _) ] -> Alcotest.(check string) "faulty app disabled" "faulty" name
  | l -> Alcotest.failf "expected one unrecovered fault, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Campaign telemetry: the per-mode dispatch-cycle histograms are
   merged from per-cell shards computed on parallel domains; the merge
   is associative/commutative, so the result must not depend on the
   number of domains. *)

let test_campaign_hist_jobs_invariant () =
  let module Hist = Amulet_obs.Hist in
  let only = [ "src_probe_slack"; "src_gate_deputy_write" ] in
  let modes = [ Iso.Software_only; Iso.Mpu_assisted ] in
  let s1 = Campaign.run ~quick:true ~jobs:1 ~only ~modes ~seed () in
  let s2 = Campaign.run ~quick:true ~jobs:2 ~only ~modes ~seed () in
  Alcotest.(check int)
    "same mode count"
    (List.length s1.Campaign.s_dispatch)
    (List.length s2.Campaign.s_dispatch);
  Alcotest.(check bool)
    "histograms present" true
    (s1.Campaign.s_dispatch <> []);
  List.iter2
    (fun (m1, h1) (m2, h2) ->
      Alcotest.(check string) "mode order" (Iso.name m1) (Iso.name m2);
      Alcotest.(check bool)
        (Iso.name m1 ^ " histogram non-empty")
        true
        (Hist.count h1 > 0);
      Alcotest.(check bool)
        (Iso.name m1 ^ " merged hist independent of jobs")
        true (Hist.equal h1 h2))
    s1.Campaign.s_dispatch s2.Campaign.s_dispatch

let () =
  Alcotest.run "sec"
    [
      ( "mpu-granularity",
        [
          Alcotest.test_case "slack geometry" `Quick test_slack_geometry;
          Alcotest.test_case "slack write tolerated" `Quick test_mpu_slack_leak;
          Alcotest.test_case "below-base store faults" `Quick
            test_mpu_probe_below;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "detects a real breach" `Quick
            test_oracle_breach_detection;
          Alcotest.test_case "quiet when contained" `Quick test_oracle_contained;
        ] );
      ( "corpus",
        [ Alcotest.test_case "quick subset matches" `Slow test_quick_corpus ] );
      ( "telemetry",
        [
          Alcotest.test_case "merged hists independent of jobs" `Slow
            test_campaign_hist_jobs_invariant;
        ] );
      ( "proof-crosscheck",
        [
          Alcotest.test_case "every attack modelled" `Quick
            test_crosscheck_total;
          Alcotest.test_case "zero mismatches" `Quick test_crosscheck_matrix;
          Alcotest.test_case "vector hole end-to-end" `Slow
            test_vector_hole_campaign;
        ] );
      ( "injector",
        [
          Alcotest.test_case "campaign row deterministic" `Quick
            test_injector_determinism;
          Alcotest.test_case "plan reproducible" `Quick
            test_injector_plan_reproducible;
          Alcotest.test_case "mpu raw flips replay" `Quick
            test_injector_mpu_raw_replay;
        ] );
      ( "kernel-probes",
        [
          Alcotest.test_case "clean run" `Quick test_kernel_probes_clean;
          Alcotest.test_case "faulty app surfaces" `Quick
            test_kernel_probes_faulty;
        ] );
    ]
