lib/apps/extra_sources.ml:
