(* Half-open address intervals [lo, hi) — the abstract domain the
   proof engine reasons in.  The machine's guards and the MPU both act
   on contiguous address ranges, so an interval that lies entirely on
   one side of every boundary behaves uniformly: one abstract step
   covers every concrete address the interval denotes. *)

type t = { lo : int; hi : int }

let make lo hi =
  if lo < 0 || hi > 0x10000 || lo >= hi then
    invalid_arg (Printf.sprintf "Interval.make: [%04X,%04X)" lo hi);
  { lo; hi }

let lo t = t.lo
let hi t = t.hi
let mem a t = a >= t.lo && a < t.hi
let subset a b = a.lo >= b.lo && a.hi <= b.hi
let disjoint a b = a.hi <= b.lo || b.hi <= a.lo

let inter a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo < hi then Some { lo; hi } else None

(* Entirely below / at-or-above a cut point: the shape of both deref
   guards (lower bound [data_lo], upper bound [data_hi]) and of the
   MPU segment boundaries.  An interval straddling the cut satisfies
   neither — callers must split first. *)
let below cut t = t.hi <= cut
let above cut t = t.lo >= cut

let width t = t.hi - t.lo
let pp ppf t = Format.fprintf ppf "[%04X,%04X)" t.lo t.hi
let to_string t = Format.asprintf "%a" pp t
