module M = Amulet_mcu.Machine
module R = Amulet_mcu.Registers
module Mpu = Amulet_mcu.Mpu
module Word = Amulet_mcu.Word

type target = Regs | Fram of { lo : int; hi : int } | Mpu_config

let target_name = function
  | Regs -> "regs"
  | Fram _ -> "fram"
  | Mpu_config -> "mpu"

(* splitmix64: one multiply-shift-xor chain per draw.  Deliberately
   not [Random]: the schedule must be identical across OCaml versions
   and across domains running cells in parallel. *)
let mix (s : int64) =
  let open Int64 in
  let z = add s 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

type rng = { mutable state : int64 }

let rng_create seed = { state = Int64.of_int seed }

let draw rng bound =
  rng.state <- Int64.add rng.state 0x9E3779B97F4A7C15L;
  let z = mix rng.state in
  Int64.to_int (Int64.shift_right_logical z 2) mod bound

(* One scheduled upset, fully determined at planning time. *)
type flip =
  | F_reg of { reg : int; bit : int }
  | F_byte of { addr : int; bit : int }
  | F_mpu of { reg : Mpu.raw_reg; bit : int }

type plan = { schedule : (int * flip) list (* sorted by step *) }

let mpu_regs =
  [| Mpu.Raw_ctl0; Mpu.Raw_ctl1; Mpu.Raw_segb1; Mpu.Raw_segb2; Mpu.Raw_sam |]

let plan ~seed ~flips ~window:(lo, hi) target =
  let rng = rng_create seed in
  let span = max 1 (hi - lo) in
  let one () =
    let step = lo + draw rng span in
    let f =
      match target with
      | Regs -> F_reg { reg = 4 + draw rng 12; bit = draw rng 16 }
      | Fram { lo; hi } ->
        F_byte { addr = lo + draw rng (max 1 (hi - lo)); bit = draw rng 8 }
      | Mpu_config ->
        F_mpu { reg = mpu_regs.(draw rng 5); bit = draw rng 16 }
    in
    (step, f)
  in
  let schedule = List.init flips (fun _ -> one ()) in
  { schedule = List.sort (fun (a, _) (b, _) -> compare a b) schedule }

type t = {
  mutable steps : int;
  mutable pending : (int * flip) list;
  mutable applied : string list; (* reversed *)
}

let describe step = function
  | F_reg { reg; bit } -> Printf.sprintf "step %d: flip R%d bit %d" step reg bit
  | F_byte { addr; bit } ->
    Printf.sprintf "step %d: flip [%04X] bit %d" step addr bit
  | F_mpu { reg; bit } ->
    Printf.sprintf "step %d: flip %s bit %d" step (Mpu.raw_reg_name reg) bit

let apply m f =
  match f with
  | F_reg { reg; bit } ->
    let regs = M.regs m in
    R.set regs reg (R.get regs reg lxor (1 lsl bit))
  | F_byte { addr; bit } ->
    let b = M.mem_checked_read m Word.W8 addr in
    M.mem_checked_write m Word.W8 addr (b lxor (1 lsl bit))
  | F_mpu { reg; bit } ->
    Mpu.raw_set m.M.mpu reg (Mpu.raw_get m.M.mpu reg lxor (1 lsl bit))

let arm plan m =
  let t = { steps = 0; pending = plan.schedule; applied = [] } in
  let tick machine =
    t.steps <- t.steps + 1;
    match t.pending with
    | (step, f) :: rest when step <= t.steps ->
      t.pending <- rest;
      apply machine f;
      t.applied <- describe t.steps f :: t.applied
    | _ -> ()
  in
  M.add_step_hook m tick;
  t

let steps t = t.steps
let flips_done t = List.length t.applied
let log t = List.rev t.applied
