(** Trace-file reader and aggregator for [amulet_prof].

    Accepts both trace formats the sinks write: Chrome
    [{"traceEvents":[...]}] (or a bare JSON array) and JSONL (one
    record per line).  Aggregation is built on {!Agg}/{!Hist}: span
    statistics carry p50/p99 latency percentiles and memory stays
    O(distinct keys × buckets) however long the trace is — no code
    path retains per-sample state. *)

val of_string : string -> Obs.record list
(** Parse a trace; unknown records are skipped.
    @raise Json.Parse_error on malformed JSON input. *)

val aggregate : Obs.record list -> Agg.t
(** Fold a parsed trace into a streaming aggregate. *)

val agg_of_channel : in_channel -> Agg.t
(** Stream a trace from a channel directly into an aggregate.  JSONL
    input is folded line by line — a week-long trace is aggregated in
    constant memory, never materialising the record list — while
    Chrome-format documents fall back to a whole-document parse.
    @raise Json.Parse_error on malformed JSON input. *)

val pp_agg : Format.formatter -> Agg.t -> unit
(** Span statistics (count/total/avg/p50/p99/max per name), counter
    maxima and finals, instant counts, and every retained fault
    instant with its message. *)

val pp_report : Format.formatter -> Obs.record list -> unit
(** [aggregate] then [pp_agg]. *)
