lib/cc/lexer.mli: Token
