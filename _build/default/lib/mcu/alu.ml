type flags = { c : bool; z : bool; n : bool; v : bool }

let logic_flags width ?(v = false) value =
  {
    c = Word.norm width value <> 0;
    z = Word.norm width value = 0;
    n = Word.is_negative width value;
    v;
  }

let arith_flags width (r : Word.flags) =
  {
    c = r.Word.carry;
    z = Word.norm width r.Word.value = 0;
    n = Word.is_negative width r.Word.value;
    v = r.Word.overflow;
  }

let fmt1 op width ~carry_in ~src ~dst =
  let src = Word.norm width src and dst = Word.norm width dst in
  match op with
  | Opcode.MOV -> (src, None)
  | Opcode.ADD ->
    let r = Word.add width dst src in
    (r.Word.value, Some (arith_flags width r))
  | Opcode.ADDC ->
    let r = Word.add width ~carry_in dst src in
    (r.Word.value, Some (arith_flags width r))
  | Opcode.SUB ->
    let r = Word.sub width dst src in
    (r.Word.value, Some (arith_flags width r))
  | Opcode.SUBC ->
    let r = Word.sub width ~borrow_in:(not carry_in) dst src in
    (r.Word.value, Some (arith_flags width r))
  | Opcode.CMP ->
    let r = Word.sub width dst src in
    (r.Word.value, Some (arith_flags width r))
  | Opcode.DADD ->
    let r = Word.dadd width ~carry_in dst src in
    (r.Word.value, Some (arith_flags width r))
  | Opcode.BIT ->
    let v = src land dst in
    (v, Some (logic_flags width v))
  | Opcode.AND ->
    let v = src land dst in
    (v, Some (logic_flags width v))
  | Opcode.XOR ->
    let v = src lxor dst in
    let overflow = Word.is_negative width src && Word.is_negative width dst in
    (v, Some (logic_flags width ~v:overflow v))
  | Opcode.BIC -> (dst land lnot src land Word.mask width, None)
  | Opcode.BIS -> (dst lor src, None)

let rrc width ~carry_in v =
  let v = Word.norm width v in
  let out_carry = v land 1 <> 0 in
  let value = (v lsr 1) lor (if carry_in then Word.sign_bit width else 0) in
  ( value,
    {
      c = out_carry;
      z = value = 0;
      n = Word.is_negative width value;
      v = false;
    } )

let rra width v =
  let v = Word.norm width v in
  let out_carry = v land 1 <> 0 in
  let value = (v lsr 1) lor (v land Word.sign_bit width) in
  ( value,
    {
      c = out_carry;
      z = value = 0;
      n = Word.is_negative width value;
      v = false;
    } )

let sxt v =
  let value = Word.sign_extend_byte v in
  (value, { c = value <> 0; z = value = 0; n = value land 0x8000 <> 0; v = false })
