(** Deterministic runtime fault injector.

    Models transient hardware upsets — bit flips in the register file,
    in FRAM cells, or in the MPU's own configuration registers — by
    flipping bits from the machine's pre-instruction hook
    ({!Amulet_mcu.Machine.t.on_step}).  The flip schedule is computed
    up front from a seed, so a campaign run is exactly reproducible:
    the same seed yields the same flips at the same instruction
    indices, regardless of host parallelism.

    The injector is host-side: arming it charges no simulated cycles,
    and an armed injector with zero scheduled flips leaves cycle
    counts and profiler output byte-identical to an unarmed run (the
    bench suite asserts this). *)

type target =
  | Regs  (** flip a bit in one of R4..R15 *)
  | Fram of { lo : int; hi : int }
      (** flip a bit in one byte of the span [\[lo, hi)] *)
  | Mpu_config  (** flip a bit in an MPU register cell, bypassing the
                    password (a physical upset, not a bus write) *)

val target_name : target -> string

type plan

val plan : seed:int -> flips:int -> window:int * int -> target -> plan
(** Schedule [flips] bit flips at instruction indices drawn uniformly
    from [window] (half-open, in executed-instruction counts), each
    with a seed-derived location. *)

type t

val arm : plan -> Amulet_mcu.Machine.t -> t
(** Install the injector on the machine's pre-instruction hook,
    composing with any hook already present. *)

val steps : t -> int
(** Instructions observed since arming. *)

val flips_done : t -> int

val log : t -> string list
(** Human-readable record of every flip applied, in order. *)
