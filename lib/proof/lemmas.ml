(* Translation validation: per-opcode abstraction lemmas, checked by
   differential execution.

   The abstract machine collapses an instruction to its *memory
   footprint* — which addresses it loads, which it stores, where
   control goes next.  That collapse is only sound if the footprint
   predicted from the opcode's addressing shape matches what the
   concrete decoder/ALU pipeline actually does on the bus.  For every
   opcode in [lib/mcu/decode.ml]/[alu.ml] this module states the
   footprint as a function of the pre-instruction register file
   (the lemma), executes one real [Machine] step, and compares the
   observed [Trace] events and next PC against the prediction.

   Scope (stated, not hidden): data values and arithmetic flags are
   not abstracted — the isolation argument never depends on *what* is
   written, only *where*.  Conditional-jump direction is predicted
   from the pre-state status register, and branch targets through
   memory are predicted by peeking the pre-state, so the lemmas pin
   down the full control-flow surface the proof relies on. *)

module M = Amulet_mcu.Machine
module R = Amulet_mcu.Registers
module O = Amulet_mcu.Opcode
module W = Amulet_mcu.Word
module T = Amulet_mcu.Trace
module Encode = Amulet_mcu.Encode

let code_base = 0x4400
let scratch = [ 0x9000; 0x9010; 0x9020; 0x9030; 0x9040; 0x9050; 0x9060 ]

(* ------------------------------------------------------------------ *)
(* Predicted footprint                                                 *)

type footprint = {
  fp_loads : (int * W.width) list;
  fp_stores : (int * W.width) list;
  fp_next_pc : int;
}

exception Unsupported of string

(* Mirror of [Cpu.cond_true], restated independently: the lemma must
   not be checked against itself. *)
let cond_true regs = function
  | O.JNE -> not (R.zero regs)
  | O.JEQ -> R.zero regs
  | O.JNC -> not (R.carry regs)
  | O.JC -> R.carry regs
  | O.JN -> R.negative regs
  | O.JGE -> R.negative regs = R.overflow regs
  | O.JL -> R.negative regs <> R.overflow regs
  | O.JMP -> true

(* Address denoted by an operand, given the pre-instruction register
   file.  [ext_addr] is where this operand's extension word lives
   (PC-relative indexed mode resolves against it).  [None] when the
   operand touches no memory. *)
let src_addr regs ~ext_addr = function
  | O.S_reg _ | O.S_immediate _ -> None
  | O.S_indexed (r, x) ->
    let base = if r = R.pc then ext_addr else R.get regs r in
    Some ((base + x) land 0xFFFF)
  | O.S_absolute a -> Some a
  | O.S_indirect r | O.S_indirect_inc r -> Some (R.get regs r)

let dst_addr regs ~ext_addr = function
  | O.D_reg _ -> None
  | O.D_indexed (r, x) ->
    let base = if r = R.pc then ext_addr else R.get regs r in
    Some ((base + x) land 0xFFFF)
  | O.D_absolute a -> Some a

(* Value an operand denotes in the pre-state (for branch targets). *)
let peek m regs ~ext_addr src =
  match src with
  | O.S_reg r -> R.get regs r
  | O.S_immediate n -> W.norm W.W16 n
  | _ -> (
    match src_addr regs ~ext_addr src with
    | Some a -> M.mem_checked_read m W.W16 a
    | None -> assert false)

let predict m (i : O.t) ~pc0 =
  let regs = M.regs m in
  let len = Encode.length_bytes i in
  let fall = pc0 + len in
  match i with
  | O.Fmt1 (op, w, src, dst) ->
    let src_ext = pc0 + 2 in
    let dst_ext = pc0 + 2 + (if Encode.src_needs_ext w src then 2 else 0) in
    let sload =
      match src_addr regs ~ext_addr:src_ext src with
      | Some a -> [ (a, w) ]
      | None -> []
    in
    let daddr = dst_addr regs ~ext_addr:dst_ext dst in
    let dload =
      (* every op but MOV reads the destination before writing it *)
      match daddr with
      | Some a when op <> O.MOV -> [ (a, w) ]
      | _ -> []
    in
    let dstore =
      match daddr with
      | Some a when O.writes_back op -> [ (a, w) ]
      | _ -> []
    in
    let next_pc =
      match dst with
      | O.D_reg 0 when op = O.MOV ->
        (* MOV →PC is the branch idiom (BR / RET) *)
        W.norm W.W16 (peek m regs ~ext_addr:src_ext src)
      | O.D_reg 0 -> raise (Unsupported "arithmetic on PC")
      | _ -> fall
    in
    { fp_loads = sload @ dload; fp_stores = dstore; fp_next_pc = next_pc }
  | O.Fmt2 (op, w, src) -> (
    let ext = pc0 + 2 in
    let saddr = src_addr regs ~ext_addr:ext src in
    let sload = match saddr with Some a -> [ (a, w) ] | None -> [] in
    let sp' = R.get_sp regs - 2 in
    match op with
    | O.RRC | O.RRA | O.SWPB | O.SXT ->
      (* read-modify-write in place *)
      {
        fp_loads = sload;
        fp_stores = (match saddr with Some a -> [ (a, w) ] | None -> []);
        fp_next_pc = fall;
      }
    | O.PUSH ->
      { fp_loads = sload; fp_stores = [ (sp', w) ]; fp_next_pc = fall }
    | O.CALL ->
      {
        fp_loads = sload;
        fp_stores = [ (sp', W.W16) ];
        fp_next_pc = W.norm W.W16 (peek m regs ~ext_addr:ext src);
      })
  | O.Jump (c, off) ->
    {
      fp_loads = [];
      fp_stores = [];
      fp_next_pc = (if cond_true regs c then pc0 + 2 + (2 * off) else fall);
    }
  | O.Reti ->
    let sp = R.get_sp regs in
    {
      fp_loads = [ (sp, W.W16); (sp + 2, W.W16) ];
      fp_stores = [];
      fp_next_pc = M.mem_checked_read m W.W16 (sp + 2);
    }

(* ------------------------------------------------------------------ *)
(* Differential harness                                                *)

type failure = { f_case : string; f_reason : string }
type outcome = { lv_cases : int; lv_failures : failure list }

let width_name = function W.W8 -> "b" | W.W16 -> "w"

let pp_accs accs =
  String.concat ","
    (List.map (fun (a, w) -> Printf.sprintf "%04X.%s" a (width_name w)) accs)

let sort_accs = List.sort compare

(* One machine per case: seeded registers pointing into FRAM scratch,
   SP in SRAM, MPU disabled (lemmas are about the CPU core; MPU
   semantics are proved at the abstract level and replayed by
   [Replay]). *)
let setup ~flags =
  let m = M.create () in
  let regs = M.regs m in
  List.iteri
    (fun idx a ->
      M.mem_checked_write m W.W16 a (0x9500 + (idx * 2));
      R.set regs (4 + idx) a)
    scratch;
  R.set regs 9 0x1234 (* plain data register *);
  R.set regs 12 0x0042;
  R.set_sp regs 0x2000;
  M.mem_checked_write m W.W16 0x2000 0x4600 (* return address for RET/RETI *);
  M.mem_checked_write m W.W16 0x2002 0x4602;
  M.mem_checked_write m W.W16 0x9100 0x4610 (* branch target via memory *);
  M.mem_checked_write m W.W16 0x9200 0x5678;
  R.set_carry regs flags;
  R.set_zero regs flags;
  R.set_negative regs flags;
  R.set_overflow regs flags;
  R.set_pc regs code_base;
  m

let run_case ?(flags = false) (i : O.t) : failure option =
  let name =
    Printf.sprintf "%s%s" (O.to_string i)
      (if flags then " [flags set]" else " [flags clear]")
  in
  match Encode.encode i with
  | exception Invalid_argument msg -> Some { f_case = name; f_reason = msg }
  | words -> (
    let m = setup ~flags in
    M.load_words m ~addr:code_base words;
    match predict m i ~pc0:code_base with
    | exception Unsupported msg -> Some { f_case = name; f_reason = msg }
    | fp -> (
      let loads = ref [] and stores = ref [] in
      M.add_watch m (function
        | T.Mem_read { addr; width; _ } -> loads := (addr, width) :: !loads
        | T.Mem_write { addr; width; _ } -> stores := (addr, width) :: !stores
        | _ -> ());
      match M.step m with
      | Error f ->
        Some { f_case = name; f_reason = Format.asprintf "%a" M.pp_fault f }
      | Ok decoded ->
        let fail reason = Some { f_case = name; f_reason = reason } in
        if sort_accs !loads <> sort_accs fp.fp_loads then
          fail
            (Printf.sprintf "loads: predicted {%s} observed {%s}"
               (pp_accs (sort_accs fp.fp_loads))
               (pp_accs (sort_accs !loads)))
        else if sort_accs !stores <> sort_accs fp.fp_stores then
          fail
            (Printf.sprintf "stores: predicted {%s} observed {%s}"
               (pp_accs (sort_accs fp.fp_stores))
               (pp_accs (sort_accs !stores)))
        else if R.get_pc (M.regs m) <> fp.fp_next_pc then
          fail
            (Printf.sprintf "next pc: predicted %04X observed %04X (%s)"
               fp.fp_next_pc
               (R.get_pc (M.regs m))
               (O.to_string decoded))
        else None))

(* ------------------------------------------------------------------ *)
(* The corpus: every opcode × every addressing shape                   *)

let all_op2 =
  [
    O.MOV; O.ADD; O.ADDC; O.SUBC; O.SUB; O.CMP; O.DADD; O.BIT; O.BIC; O.BIS;
    O.XOR; O.AND;
  ]

let srcs =
  [
    O.S_reg 9;
    O.S_indexed (4, 6);
    O.S_indexed (5, -2);
    O.S_absolute 0x9100;
    O.S_indirect 6;
    O.S_indirect_inc 7;
    O.S_immediate 0x77;
    O.S_immediate 1 (* constant generator *);
    O.S_immediate 8 (* constant generator *);
  ]

let dsts = [ O.D_reg 11; O.D_indexed (8, 4); O.D_absolute 0x9200 ]

let mem_srcs =
  List.filter (function O.S_immediate _ -> false | _ -> true) srcs

let cases () =
  let fmt1 =
    List.concat_map
      (fun op ->
        List.concat_map
          (fun w ->
            List.concat_map
              (fun s -> List.map (fun d -> O.Fmt1 (op, w, s, d)) dsts)
              srcs)
          [ W.W16; W.W8 ])
      all_op2
  in
  let branches =
    (* MOV →PC: BR #imm, BR Rn, BR &abs, and RET (MOV @SP+, PC) *)
    [
      O.Fmt1 (O.MOV, W.W16, O.S_immediate 0x4800, O.D_reg 0);
      O.Fmt1 (O.MOV, W.W16, O.S_reg 8, O.D_reg 0);
      O.Fmt1 (O.MOV, W.W16, O.S_absolute 0x9100, O.D_reg 0);
      O.Fmt1 (O.MOV, W.W16, O.S_indirect_inc 1, O.D_reg 0);
    ]
  in
  let fmt2 =
    List.concat_map
      (fun s ->
        List.concat_map
          (fun w -> [ O.Fmt2 (O.RRC, w, s); O.Fmt2 (O.RRA, w, s) ])
          [ W.W16; W.W8 ]
        @ [ O.Fmt2 (O.SWPB, W.W16, s); O.Fmt2 (O.SXT, W.W16, s) ])
      mem_srcs
    @ List.concat_map
        (fun s ->
          List.map (fun w -> O.Fmt2 (O.PUSH, w, s)) [ W.W16; W.W8 ])
        srcs
    @ List.map
        (fun s -> O.Fmt2 (O.CALL, W.W16, s))
        [ O.S_reg 8; O.S_immediate 0x4800; O.S_absolute 0x9100; O.S_indirect 6 ]
  in
  let jumps =
    List.concat_map
      (fun c -> [ O.Jump (c, 5); O.Jump (c, -3) ])
      [ O.JNE; O.JEQ; O.JNC; O.JC; O.JN; O.JGE; O.JL; O.JMP ]
  in
  (fmt1 @ branches @ fmt2 @ [ O.Reti ], jumps)

let validate () =
  let plain, jumps = cases () in
  let failures =
    List.filter_map run_case plain
    @ List.filter_map (run_case ~flags:false) jumps
    @ List.filter_map (run_case ~flags:true) jumps
  in
  {
    lv_cases = List.length plain + (2 * List.length jumps);
    lv_failures = failures;
  }
