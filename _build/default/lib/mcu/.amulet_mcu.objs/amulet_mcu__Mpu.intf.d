lib/mcu/mpu.mli: Format
