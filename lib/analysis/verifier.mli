(** Independent SFI verifier for linked application images.

    The compiler inserts bounds checks ({!Amulet_cc.Codegen}) and the
    range analysis ({!Range}) elides the provably redundant ones; both
    live inside the toolchain's trusted computing base.  This module
    shrinks that TCB: it disassembles an application's linked code
    section with the simulator's own {!Amulet_mcu.Decode} and checks
    the isolation invariant directly on the machine code, with no
    knowledge of how the image was produced.  A firmware passes only
    if every memory access and control transfer in app code is either

    - statically inside the app's own region (frame/stack-relative, or
      an absolute address inside the linker-resolved data section),
    - dominated by the mode-required guard sequence against the
      section-bound symbols (the [CMP]/[Jcc] pair the compiler emits,
      or a [__bounds_check] helper call in Feature-Limited mode), or
    - an access the platform explicitly sanctions (debug ports, the
      InfoMem shadow stack maintained with the trusted pattern).

    The analysis is a standard abstract interpretation over unsigned
    16-bit intervals: conditional branches refine the compared
    register (or the return-address word at [0(SP)]), so the
    compiler's guard instructions — and nothing else — establish the
    facts that let a dynamic store through.  Elided guards verify
    because the address computation itself (masked index plus a linked
    global base) already confines the interval to the data section.

    Assumptions that remain in the TCB are listed in DESIGN.md:
    control only enters app code at symbol-named function entries, and
    frame discipline for R4/SP-relative accesses. *)

type violation = {
  vaddr : int;  (** address of the offending instruction *)
  vtext : string;  (** disassembled instruction *)
  vreason : string;
}

type stats = {
  v_insns : int;  (** distinct instructions verified *)
  v_blocks : int;  (** basic-block entry states explored *)
  v_stores : int;  (** dynamic stores proven in-region *)
  v_loads : int;  (** dynamic loads proven in-region *)
  v_branches : int;  (** indirect calls/branches proven in-section *)
  v_rets : int;  (** returns covered by a return-address guard *)
}

val verify_app :
  image:Amulet_link.Image.t ->
  mode:Amulet_cc.Isolation.mode ->
  prefix:string ->
  (stats, violation list) result
(** Verify the app code section of [prefix] (between the linker's
    [<prefix>_code__start]/[__end] symbols) against [mode]'s
    isolation policy.  Under [No_isolation] every image is accepted.
    @raise Invalid_argument when the image lacks the section-bound
    symbols for [prefix]. *)

val pp_violation : Format.formatter -> violation -> unit
val pp_stats : Format.formatter -> stats -> unit

val helper_names : string list
(** Runtime helpers apps may call or branch to ([__mulhi],
    [__bounds_check], [__osreturn], ...).  Shared with the CFI pass so
    both analyses agree on the sanctioned externals. *)

val make_fetch : Amulet_link.Image.t -> int -> int
(** Word fetch over the image's chunks (0 outside any chunk). *)
