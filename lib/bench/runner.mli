(** The statistical gateheavy benchmark: the measurement core behind
    [bin/amulet_bench] and [bench/main.exe]'s snapshot mode.

    Per isolation mode it drives the gateheavy app's button handler
    back-to-back under the full kernel with an {!Amulet_obs.Agg} sink
    and the cycle profiler armed, measuring host throughput over N
    independent trials after a warmup, and collecting dispatch-latency
    and handler-duration histograms plus the per-PC-class cycle split
    that yields cycle-exact energy attribution. *)

module Iso := Amulet_cc.Isolation
module Hist := Amulet_obs.Hist

type mode_run = {
  mr_mode : Iso.mode;
  mr_rates : float array;  (** cycles/sec, one per trial *)
  mr_trial_cycles : int array;  (** simulated cycles per trial *)
  mr_latency : Hist.t;  (** dispatch-latency cycles *)
  mr_handler : Hist.t;  (** handler span durations *)
  mr_class_cycles : (string * int) list;
      (** profiler-class slug (plus [host_services]) -> cycles over
          the measured window *)
  mr_measured_dispatches : int;  (** trials × dispatches *)
}

val run_mode :
  ?warmup:int -> trials:int -> dispatches:int -> Iso.mode -> mode_run

val run_mode_hooks_off :
  ?warmup:int -> trials:int -> dispatches:int -> Iso.mode -> mode_run
(** Same workload with no observability attached, so the machine runs
    on the predecoded-block fast path.  Simulated cycles are
    byte-identical to {!run_mode} (asserted by {!run}); only the host
    throughput differs.  Latency/handler histograms are empty and the
    class breakdown absent — there is no profiler to fill them. *)

val hooks_off_suffix : string
(** ["+hooks-off"], appended to the mode name in snapshot rows. *)

val host_meta : unit -> (string * string) list
(** OCaml version, OS, word size, hostname when known. *)

val run :
  ?modes:Iso.mode list ->
  ?trials:int ->
  ?dispatches:int ->
  ?warmup:int ->
  ?gate_runs:int ->
  quick:bool ->
  unit ->
  Schema.doc * mode_run list
(** Full run: every mode armed, every mode hooks-off (with the
    simulated-cycle identity between the two asserted), plus the
    deterministic gate costs (context-switch cycles and the
    gate-certification ablation).  Unspecified parameters default per
    [quick]: quick = 3 trials × 300 dispatches, full = 5 × 1500. *)

val run_speedup :
  ?modes:Iso.mode list ->
  ?trials:int ->
  ?dispatches:int ->
  ?warmup:int ->
  quick:bool ->
  unit ->
  Schema.doc * mode_run list
(** Hooks-off rows only (default: no-isolation), for the CI speedup
    floor — no profiler, no gate ablations, so it is cheap enough to
    run on every push. *)

val pp_doc : Format.formatter -> Schema.doc -> unit
(** Human-readable per-mode table (throughput median ± MAD,
    cycles/dispatch, latency p50/p99, energy per dispatch) and the
    gate costs. *)
