(* amulet_verify: build a firmware from WearC sources (or suite app
   names) and run the independent SFI verifier over every app code
   section.  Exit status 1 when any app is rejected — the verifier is
   the final gate a firmware passes before it is trusted to run
   alongside the OS. *)

module Iso = Amulet_cc.Isolation
module Aft = Amulet_aft.Aft
module Apps = Amulet_apps.Suite
module V = Amulet_analysis.Verifier

let mode_conv =
  let parse s =
    match Iso.of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg "expected one of: none, amuletc, software, mpu")
  in
  Cmdliner.Arg.conv (parse, fun ppf m -> Format.fprintf ppf "%s" (Iso.name m))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let spec_of mode arg =
  match List.find_opt (fun (a : Apps.app) -> a.Apps.name = arg) Apps.all with
  | Some app -> Apps.spec_for mode app
  | None ->
    {
      Aft.name = Filename.remove_extension (Filename.basename arg);
      source = read_file arg;
    }

(* Demonstration mutant: zero the immediate of the first lower-bound
   guard comparison in the app's code section, the binary equivalent
   of a compiler that forgot (or was tricked out of) a bounds check. *)
let corrupt_guard image ~prefix =
  let module I = Amulet_link.Image in
  let module O = Amulet_mcu.Opcode in
  let code_lo = I.symbol image (Iso.code_lo_sym ~prefix) in
  let code_hi = I.symbol image (Iso.code_hi_sym ~prefix) in
  let data_lo = I.symbol image (Iso.data_lo_sym ~prefix) in
  let fetch a =
    let rec go = function
      | [] -> 0
      | (base, b) :: rest ->
        if a >= base && a + 1 < base + Bytes.length b then
          Char.code (Bytes.get b (a - base))
          lor (Char.code (Bytes.get b (a - base + 1)) lsl 8)
        else go rest
    in
    go image.I.chunks
  in
  let poke a v =
    List.iter
      (fun (base, b) ->
        if a >= base && a + 1 < base + Bytes.length b then begin
          Bytes.set b (a - base) (Char.chr (v land 0xFF));
          Bytes.set b (a - base + 1) (Char.chr ((v lsr 8) land 0xFF))
        end)
      image.I.chunks
  in
  let rec scan a =
    if a >= code_hi then None
    else
      match Amulet_mcu.Decode.decode ~fetch ~addr:a with
      | exception Amulet_mcu.Decode.Illegal _ -> scan (a + 2)
      | O.Fmt1 (O.CMP, _, O.S_immediate k, O.D_reg r), _
        when k land 0xFFFF = data_lo && r >= 4 ->
        poke (a + 2) 0;
        Some a
      | _, size -> scan (a + size)
  in
  scan code_lo

let verify_cmd mode no_elide shadow corrupt apps =
  try
    let specs = List.map (spec_of mode) apps in
    let fw = Aft.build ~mode ~shadow ~elide:(not no_elide) specs in
    Format.printf "isolation mode: %s%s%s@." (Iso.name mode)
      (if shadow then " + shadow stack" else "")
      (if no_elide then "" else " (elision on)");
    (if corrupt then
       match fw.Aft.fw_apps with
       | ab :: _ -> (
         match corrupt_guard fw.Aft.fw_image ~prefix:ab.Aft.ab_name with
         | Some a ->
           Format.printf "corrupted guard immediate at %04X in app %s@." a
             ab.Aft.ab_name
         | None -> Format.printf "no guard found to corrupt@.")
       | [] -> ());
    if fw.Aft.fw_apps = [] then begin
      (* a firmware with nothing to check must not pass vacuously *)
      Format.printf "0 apps: no app code sections to verify@.";
      1
    end
    else begin
      let bad = ref 0 in
      List.iter
        (fun ab ->
          let name = ab.Aft.ab_name in
          match V.verify_app ~image:fw.Aft.fw_image ~mode ~prefix:name with
          | Ok st -> Format.printf "%-12s OK   %a@." name V.pp_stats st
          | Error vs ->
            incr bad;
            Format.printf "%-12s REJECTED (%d violations)@." name
              (List.length vs);
            List.iter (fun v -> Format.printf "  %a@." V.pp_violation v) vs)
        fw.Aft.fw_apps;
      Format.printf "%d of %d app(s) verified@."
        (List.length fw.Aft.fw_apps - !bad)
        (List.length fw.Aft.fw_apps);
      if !bad = 0 then 0 else 1
    end
  with
  | Amulet_cc.Srcloc.Error (loc, msg) ->
    Format.eprintf "error at %a: %s@." Amulet_cc.Srcloc.pp loc msg;
    2
  | Aft.Build_error msg ->
    Format.eprintf "build error: %s@." msg;
    2
  | Sys_error msg ->
    Format.eprintf "%s@." msg;
    2

open Cmdliner

let mode_arg =
  Arg.(
    value
    & opt mode_conv Iso.Mpu_assisted
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:
          "Isolation mode: $(b,none), $(b,amuletc) (feature-limited), \
           $(b,software), or $(b,mpu).")

let no_elide_arg =
  Arg.(
    value & flag
    & info [ "no-elide" ]
        ~doc:"Compile with every guard emitted (skip the range analysis).")

let shadow_arg =
  Arg.(
    value & flag
    & info [ "shadow" ] ~doc:"Arm the InfoMem shadow return-address stack.")

let corrupt_arg =
  Arg.(
    value & flag
    & info [ "corrupt" ]
        ~doc:
          "Zero the first lower-bound guard immediate before verifying — \
           demonstrates rejection of a tampered image.")

let apps_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"APP" ~doc:"Suite app name or WearC source path.")

let cmd =
  let doc = "verify the SFI invariant of a built firmware image" in
  Cmd.v
    (Cmd.info "amulet_verify" ~doc)
    Term.(
      const verify_cmd $ mode_arg $ no_elide_arg $ shadow_arg $ corrupt_arg
      $ apps_arg)

let () = exit (Cmd.eval' cmd)
