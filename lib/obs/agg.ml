type counter_state = {
  cs_hist : Hist.t;
  mutable cs_last : int;
  mutable cs_last_ts : int;
  mutable cs_max : int;
}

type t = {
  span_tbl : (string * string, Hist.t) Hashtbl.t;
  counter_tbl : (string, counter_state) Hashtbl.t;
  instant_tbl : (string * string, int ref) Hashtbl.t;
  mutable fault_list : (int * string) list; (* reversed, capped *)
  mutable fault_total : int;
  mutable nrecords : int;
  mutable t_min : int;
  mutable t_max : int;
}

let fault_cap = 32

let create () =
  {
    span_tbl = Hashtbl.create 16;
    counter_tbl = Hashtbl.create 8;
    instant_tbl = Hashtbl.create 8;
    fault_list = [];
    fault_total = 0;
    nrecords = 0;
    t_min = max_int;
    t_max = min_int;
  }

let span_state t key =
  match Hashtbl.find_opt t.span_tbl key with
  | Some h -> h
  | None ->
    let h = Hist.create () in
    Hashtbl.add t.span_tbl key h;
    h

let counter_state t name =
  match Hashtbl.find_opt t.counter_tbl name with
  | Some c -> c
  | None ->
    let c =
      { cs_hist = Hist.create (); cs_last = 0; cs_last_ts = min_int; cs_max = min_int }
    in
    Hashtbl.add t.counter_tbl name c;
    c

let see_ts t ts =
  if ts < t.t_min then t.t_min <- ts;
  if ts > t.t_max then t.t_max <- ts

let add t r =
  t.nrecords <- t.nrecords + 1;
  see_ts t (Obs.record_ts r);
  match r with
  | Obs.Span { name; cat; ts; dur; _ } ->
    see_ts t (ts + dur);
    Hist.record (span_state t (cat, name)) dur
  | Obs.Counter { name; ts; value } ->
    let c = counter_state t name in
    Hist.record c.cs_hist value;
    if value > c.cs_max then c.cs_max <- value;
    if ts >= c.cs_last_ts then begin
      c.cs_last <- value;
      c.cs_last_ts <- ts
    end
  | Obs.Instant { name; cat; ts; _ } ->
    let key = (cat, name) in
    (match Hashtbl.find_opt t.instant_tbl key with
    | Some n -> incr n
    | None -> Hashtbl.add t.instant_tbl key (ref 1));
    if name = "fault" then begin
      t.fault_total <- t.fault_total + 1;
      if t.fault_total <= fault_cap then
        t.fault_list <-
          (ts, Option.value ~default:"(no message)" (Obs.str_arg r "message"))
          :: t.fault_list
    end

let sink t = { Obs.output = add t; close = (fun () -> ()) }

let merge a b =
  let t = create () in
  let fold_spans src =
    Hashtbl.iter
      (fun key h ->
        match Hashtbl.find_opt t.span_tbl key with
        | Some h0 -> Hashtbl.replace t.span_tbl key (Hist.merge h0 h)
        (* merge with an empty histogram to copy: the result must not
           alias (and later mutate) either argument's state *)
        | None -> Hashtbl.add t.span_tbl key (Hist.merge (Hist.create ()) h))
      src.span_tbl
  in
  let fold_counters src =
    Hashtbl.iter
      (fun name c ->
        match Hashtbl.find_opt t.counter_tbl name with
        | Some c0 ->
          Hashtbl.replace t.counter_tbl name
            {
              cs_hist = Hist.merge c0.cs_hist c.cs_hist;
              cs_last = (if c.cs_last_ts >= c0.cs_last_ts then c.cs_last else c0.cs_last);
              cs_last_ts = max c0.cs_last_ts c.cs_last_ts;
              cs_max = max c0.cs_max c.cs_max;
            }
        | None ->
          Hashtbl.add t.counter_tbl name
            { c with cs_hist = Hist.merge (Hist.create ()) c.cs_hist })
      src.counter_tbl
  in
  let fold_instants src =
    Hashtbl.iter
      (fun key n ->
        match Hashtbl.find_opt t.instant_tbl key with
        | Some n0 -> n0 := !n0 + !n
        | None -> Hashtbl.add t.instant_tbl key (ref !n))
      src.instant_tbl
  in
  fold_spans a;
  fold_spans b;
  fold_counters a;
  fold_counters b;
  fold_instants a;
  fold_instants b;
  let faults =
    List.sort compare (List.rev_append a.fault_list b.fault_list)
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  t.fault_list <- List.rev (take fault_cap faults);
  t.fault_total <- a.fault_total + b.fault_total;
  t.nrecords <- a.nrecords + b.nrecords;
  t.t_min <- min a.t_min b.t_min;
  t.t_max <- max a.t_max b.t_max;
  t

let records t = t.nrecords
let time_range t = if t.nrecords = 0 then None else Some (t.t_min, t.t_max)

let span_hist t ~cat ~name = Hashtbl.find_opt t.span_tbl (cat, name)

let spans t =
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.span_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

type counter = { c_hist : Hist.t; c_last : int; c_last_ts : int; c_max : int }

let snapshot c =
  { c_hist = c.cs_hist; c_last = c.cs_last; c_last_ts = c.cs_last_ts; c_max = c.cs_max }

let counter t name = Option.map snapshot (Hashtbl.find_opt t.counter_tbl name)

let counters t =
  Hashtbl.fold (fun name c acc -> (name, snapshot c) :: acc) t.counter_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let instants t =
  Hashtbl.fold (fun k n acc -> (k, !n) :: acc) t.instant_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let faults t = List.rev t.fault_list
let fault_count t = t.fault_total
