lib/mcu/memory_map.ml:
