module M = Amulet_mcu.Machine
module R = Amulet_mcu.Registers
module W = Amulet_mcu.Word

type effect =
  | Set_timer of { id : int; period_ms : int }
  | Cancel_timer of int
  | Subscribe of { sensor : Event.sensor; rate_hz : int }
  | Unsubscribe of Event.sensor
  | Pointer_fault of { service : string; addr : int; len : int }

type t = {
  sensors : Sensors.t;
  display : string array;
  log : Buffer.t;
  ble : Buffer.t;
  mutable rand_state : int;
  mutable next_timer : int;
  mutable calls : int;
  mutable charged_cycles : int;
}

let create sensors =
  {
    sensors;
    display = Array.make 4 "";
    log = Buffer.create 256;
    ble = Buffer.create 256;
    rand_state = 0xACE1;
    next_timer = 1;
    calls = 0;
    charged_cycles = 0;
  }

let names = Array.of_list Amulet_cc.Apis.names
let service_count = Array.length names
let service_name svc = if svc >= 0 && svc < service_count then Some names.(svc) else None

(* Service costs are shared with the static WCET certifier: the table
   lives in {!Amulet_cc.Apis} so the dynamic charges here and the
   static per-call upper bounds are views of the same constants. *)
let base_charge = Amulet_cc.Apis.base_charge
let per_word_charge = Amulet_cc.Apis.per_word_charge

(* Cycles the kernel spends validating one app-supplied pointer range
   (two bound compares plus the range walk).  Charged at [with_range];
   statically certified call sites ({!Amulet_analysis.Gate_taint})
   skip both the walk and the charge. *)
let validate_charge = Amulet_cc.Apis.validate_charge

let xorshift16 s =
  let s = s lxor (s lsl 7) land 0xFFFF in
  let s = s lxor (s lsr 9) in
  s lxor (s lsl 8) land 0xFFFF

let dispatch t ?(certified = fun _ -> false) machine ~valid ~now_ms ~svc =
  let regs = M.regs machine in
  let arg n = R.get regs (12 + n) in
  let set_result v = R.set regs 12 (v land 0xFFFF) in
  let effects = ref [] in
  let effect e = effects := e :: !effects in
  let charge c =
    M.add_cycles machine c;
    t.charged_cycles <- t.charged_cycles + c
  in
  let name = match service_name svc with Some n -> n | None -> "api_unknown" in
  t.calls <- t.calls + 1;
  charge (base_charge name);
  (* Validated app-memory access.  [f] runs only when the whole range
     [addr, addr+len) lies inside the app's writable region.  When the
     static certifier proved every pointer reaching this service's
     call sites in-region, the walk (and its charge) is skipped. *)
  let with_range addr len f =
    if certified name then f ()
    else begin
      charge validate_charge;
      let inside (lo, hi) = addr >= lo && addr + len <= hi in
      if len >= 0 && List.exists inside valid then f ()
      else begin
        effect (Pointer_fault { service = name; addr; len });
        set_result 0xFFFF
      end
    end
  in
  (* writable span ending at the first range boundary above addr *)
  let span_above addr =
    List.fold_left
      (fun acc (lo, hi) -> if addr >= lo && addr < hi then hi - addr else acc)
      0 valid
  in
  let write_words addr values =
    List.iteri
      (fun i v -> M.mem_checked_write machine W.W16 (addr + (2 * i)) v)
      values;
    charge (per_word_charge * List.length values)
  in
  let read_string addr maxlen =
    let buf = Buffer.create 16 in
    let rec go i =
      if i < maxlen then begin
        let b = M.mem_checked_read machine W.W8 (addr + i) in
        if b <> 0 then begin
          Buffer.add_char buf (Char.chr b);
          go (i + 1)
        end
      end
    in
    go 0;
    Buffer.contents buf
  in
  (match name with
  | "api_null" -> set_result 0
  | "api_get_time" -> set_result (now_ms / 1000)
  | "api_get_battery" ->
    set_result (Sensors.battery_percent t.sensors ~time_ms:now_ms)
  | "api_read_accel" ->
    let buf = arg 0 and n = max 1 (min 64 (W.to_signed W.W16 (arg 1))) in
    with_range buf (2 * n) (fun () ->
        let samples =
          List.init n (fun i ->
              let tm = now_ms - ((n - 1 - i) * 20) in
              Sensors.accel_magnitude t.sensors ~time_ms:(max 0 tm) land 0xFFFF)
        in
        write_words buf samples;
        set_result n)
  | "api_read_accel_xyz" ->
    let buf = arg 0 in
    with_range buf 6 (fun () ->
        let x, y, z = Sensors.accel_sample t.sensors ~time_ms:now_ms in
        write_words buf [ x land 0xFFFF; y land 0xFFFF; z land 0xFFFF ];
        set_result 3)
  | "api_read_heart_rate" ->
    set_result (Sensors.heart_rate t.sensors ~time_ms:now_ms)
  | "api_read_ppg" ->
    let buf = arg 0 and n = max 1 (min 64 (W.to_signed W.W16 (arg 1))) in
    with_range buf (2 * n) (fun () ->
        let samples =
          List.init n (fun i ->
              let tm = now_ms - ((n - 1 - i) * 10) in
              Sensors.ppg_sample t.sensors ~time_ms:(max 0 tm) land 0xFFFF)
        in
        write_words buf samples;
        set_result n)
  | "api_read_temperature" ->
    set_result (Sensors.temperature t.sensors ~time_ms:now_ms)
  | "api_read_light" -> set_result (Sensors.light t.sensors ~time_ms:now_ms)
  | "api_display_write" ->
    let s = arg 0 and line = arg 1 land 3 in
    with_range s 1 (fun () ->
        let maxlen = min 32 (span_above s) in
        t.display.(line) <- read_string s maxlen;
        charge (String.length t.display.(line));
        set_result 0)
  | "api_display_clear" ->
    Array.fill t.display 0 4 "";
    set_result 0
  | "api_button_state" ->
    set_result (Sensors.button_state t.sensors ~time_ms:now_ms)
  | "api_led" | "api_buzz" -> set_result 0
  | "api_log_append" ->
    let buf = arg 0 and n = max 0 (min 128 (W.to_signed W.W16 (arg 1))) in
    with_range buf n (fun () ->
        for i = 0 to n - 1 do
          Buffer.add_char t.log
            (Char.chr (M.mem_checked_read machine W.W8 (buf + i)))
        done;
        charge (3 * n);
        set_result n)
  | "api_send_ble" ->
    let buf = arg 0 and n = max 0 (min 128 (W.to_signed W.W16 (arg 1))) in
    with_range buf n (fun () ->
        for i = 0 to n - 1 do
          Buffer.add_char t.ble
            (Char.chr (M.mem_checked_read machine W.W8 (buf + i)))
        done;
        charge (4 * n);
        set_result n)
  | "api_set_timer" ->
    (* the period is an unsigned 16-bit millisecond count (1..65535) *)
    let period = max 1 (arg 0) in
    let id = t.next_timer in
    t.next_timer <- t.next_timer + 1;
    effect (Set_timer { id; period_ms = period });
    set_result id
  | "api_cancel_timer" ->
    effect (Cancel_timer (arg 0));
    set_result 0
  | "api_subscribe" -> (
    match Event.sensor_of_int (arg 0) with
    | Some sensor ->
      let rate_hz = max 1 (min 100 (W.to_signed W.W16 (arg 1))) in
      effect (Subscribe { sensor; rate_hz });
      set_result 0
    | None -> set_result 0xFFFF)
  | "api_unsubscribe" -> (
    match Event.sensor_of_int (arg 0) with
    | Some sensor ->
      effect (Unsubscribe sensor);
      set_result 0
    | None -> set_result 0xFFFF)
  | "api_rand" ->
    t.rand_state <- xorshift16 t.rand_state;
    set_result t.rand_state
  | _ -> set_result 0xFFFF);
  List.rev !effects
