lib/mcu/disasm.mli: Format
