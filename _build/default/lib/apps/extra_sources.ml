(* Extension applications beyond the paper's nine: the two deployed
   studies its introduction cites — StressAware (Boateng & Kotz, URTC
   2017) and ActivityAware (Boateng, TR2017-824) — plus a medication
   reminder in the EMA style such wearables run.  They exercise the
   same API surface and compile under every isolation mode. *)

let stress_aware =
  {|
/* StressAware: heart-rate-variability based stress score, sampled
   every 2 seconds over a 16-entry inter-beat window. */
int rr[16];
int widx = 0;
int stress = 0;
char disp[12];

void handle_init(int arg) { api_set_timer(2000); }

void handle_timer(int arg) {
  int hr = api_read_heart_rate();
  if (hr < 30) hr = 30;
  /* approximate inter-beat interval in centi-units */
  rr[widx & 15] = 6000 / hr;
  widx += 1;
  if (widx >= 16) {
    /* HRV: mean absolute successive difference (RMSSD-like) */
    int i;
    int hrv = 0;
    for (i = 1; i < 16; i++) {
      int d = rr[i] - rr[i - 1];
      if (d < 0) d = -d;
      hrv += d;
    }
    hrv = hrv / 15;
    /* elevated heart rate and suppressed variability read as stress */
    int s = (hr - 60) + (12 - hrv) * 2;
    if (s < 0) s = 0;
    if (s > 100) s = 100;
    stress = s;
    disp[0] = 'S'; disp[1] = 't'; disp[2] = 'r'; disp[3] = ' ';
    disp[4] = '0' + (stress / 100) % 10;
    disp[5] = '0' + (stress / 10) % 10;
    disp[6] = '0' + stress % 10;
    disp[7] = 0;
    api_display_write(disp, 1);
  }
}
|}

let activity_aware =
  {|
/* ActivityAware: classify rest / walking / running from mean
   accelerometer deviation over 4-second windows. */
int energy = 0;
int samples = 0;
int cls = 0;
int hist[3];
char lbl_rest[6];
char lbl_walk[6];
char lbl_run[5];

void handle_init(int arg) {
  api_subscribe(0, 10);
  api_set_timer(4000);
  lbl_rest[0]='r'; lbl_rest[1]='e'; lbl_rest[2]='s'; lbl_rest[3]='t'; lbl_rest[4]=0;
  lbl_walk[0]='w'; lbl_walk[1]='a'; lbl_walk[2]='l'; lbl_walk[3]='k'; lbl_walk[4]=0;
  lbl_run[0]='r'; lbl_run[1]='u'; lbl_run[2]='n'; lbl_run[3]=0;
}

void handle_accel(int arg) {
  int m[1];
  api_read_accel(m, 1);
  int d = m[0] - 1000;
  if (d < 0) d = -d;
  energy += d >> 4;
  samples += 1;
}

void handle_timer(int arg) {
  if (samples > 0) {
    int e = energy / samples;
    cls = 0;
    if (e > 5) cls = 1;
    if (e > 22) cls = 2;
    hist[cls] += 1;
    if (cls == 0) api_display_write(lbl_rest, 3);
    if (cls == 1) api_display_write(lbl_walk, 3);
    if (cls == 2) api_display_write(lbl_run, 3);
  }
  energy = 0;
  samples = 0;
}
|}

let med_reminder =
  {|
/* Medication reminder (EMA style): buzz on a schedule; a button press
   within the acknowledgement window counts as taken, otherwise the
   dose is logged as missed. */
int pending = 0;
int taken = 0;
int missed = 0;
int window_left = 0;
char rec[2];

void handle_init(int arg) { api_set_timer(30000); }

void handle_timer(int arg) {
  if (pending) {
    window_left -= 1;
    if (window_left <= 0) {
      missed += 1;
      pending = 0;
      rec[0] = 'M';
      rec[1] = 0;
      api_log_append(rec, 1);
    }
  }
  if (!pending) {
    /* next reminder cycle */
    pending = 1;
    window_left = 2; /* two timer periods to acknowledge */
    api_buzz(300);
    api_display_write("take meds", 0);
  }
}

void handle_button(int arg) {
  if (pending) {
    taken += 1;
    pending = 0;
    rec[0] = 'T';
    rec[1] = 0;
    api_log_append(rec, 1);
    api_display_write("thanks", 0);
  }
}
|}
