lib/mcu/timer.mli:
