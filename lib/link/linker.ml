exception Error of string

let errf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type placed_section = { name : string; base : int; items : Asm.item list }

let check_no_overlap sections =
  let ranges =
    List.map (fun s -> (s.name, s.base, s.base + Assembler.size s.items)) sections
    |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)
  in
  let rec check = function
    | (n1, _, e1) :: ((n2, b2, _) :: _ as rest) ->
      if e1 > b2 then errf "sections %s and %s overlap" n1 n2;
      check rest
    | _ -> ()
  in
  check ranges

let build_symbols ~extra_symbols sections =
  let table = Hashtbl.create 256 in
  let define name addr =
    if Hashtbl.mem table name then errf "duplicate symbol %s" name;
    Hashtbl.add table name addr
  in
  List.iter (fun (name, addr) -> define name addr) extra_symbols;
  List.iter
    (fun s ->
      define (s.name ^ "__start") s.base;
      define (s.name ^ "__end") (s.base + Assembler.size s.items);
      List.iter
        (fun (l, off) -> define l (s.base + off))
        (Assembler.local_labels s.items))
    sections;
  table

let link ?(extra_symbols = []) ~entry sections =
  check_no_overlap sections;
  let table = build_symbols ~extra_symbols sections in
  let resolve name =
    match Hashtbl.find_opt table name with
    | Some v -> v
    | None -> errf "undefined symbol %s" name
  in
  let chunks =
    List.filter_map
      (fun s ->
        try
          let data = Assembler.emit ~base:s.base ~resolve s.items in
          if Bytes.length data = 0 then None else Some (s.base, data)
        with Assembler.Error e -> errf "section %s: %s" s.name e)
      sections
  in
  let symbols = Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] in
  { Image.chunks; symbols; entry = resolve entry; notes = [] }
