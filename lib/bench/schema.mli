(** The [BENCH_*.json] perf-trajectory snapshot: schema v2 writer,
    v1+v2 reader, and the noise-aware regression comparator that
    gates PR-over-PR performance.

    Schema v2 records, per isolation mode: host throughput over N
    trials (median/MAD/CI and the raw trials), deterministic
    simulated cycles per dispatch, dispatch-latency and
    handler-duration histograms ({!Amulet_obs.Hist} sparse encoding,
    so later tooling can merge snapshots losslessly), and cycle-exact
    energy attribution per PC class; plus the deterministic gate
    costs (context switch, gate certification) and host metadata.

    The v1 reader accepts the single-trial snapshots earlier PRs
    committed, so [--compare] works across the schema migration. *)

module Hist := Amulet_obs.Hist
module Json := Amulet_obs.Json

type rate = {
  r_summary : Stats.summary;  (** cycles/sec across trials *)
  r_trials : float list;
}

type mode_row = {
  m_mode : string;  (** isolation-mode name *)
  m_rate : rate;  (** host-dependent throughput *)
  m_cycles_per_dispatch : float;  (** deterministic simulated cost *)
  m_latency : Hist.t option;  (** dispatch-latency cycles *)
  m_handler : Hist.t option;  (** handler-duration cycles *)
  m_class_cycles : (string * int) list;
      (** profiler-class slug -> cycles over the measured window *)
  m_energy_per_dispatch_j : float option;  (** deterministic *)
}

type cert_row = {
  c_mode : string;
  c_dynamic : float;
  c_certified : float;
  c_per_gate : float;
  c_services : string list;
}

type gate_costs = {
  g_ctx_switch : (string * float) list;  (** mode -> cycles, one way *)
  g_cert : cert_row list;
}

type doc = {
  d_schema : int;
  d_bench : string;
  d_quick : bool;
  d_trials : int;
  d_dispatches : int;  (** per trial *)
  d_warmup : int;
  d_host : (string * string) list;
  d_modes : mode_row list;
  d_gate : gate_costs;
}

val to_json : doc -> Json.t
(** Always schema v2. *)

val of_json : Json.t -> (doc, string) result
(** Reads schema 1 (mapped into the v2 shape: one trial, no
    histograms, no energy) and schema 2. *)

val write_file : string -> doc -> unit
val read_file : string -> (doc, string) result

(** {1 Regression comparison} *)

type verdict = {
  v_metric : string;
  v_mode : string;
  v_old : float;
  v_new : float;
  v_change_pct : float;  (** positive = worse *)
  v_gating : bool;  (** false = informational only *)
  v_regressed : bool;
}

val compare_docs :
  current:doc ->
  baseline:doc ->
  det_threshold_pct:float ->
  rate_threshold_pct:float option ->
  verdict list
(** Deterministic simulated metrics (cycles/dispatch, context-switch
    and gate-certification cycles, latency p99, energy/dispatch) gate
    at [det_threshold_pct].  Host throughput is compared only when
    [rate_threshold_pct] is given — and then a drop must {e also}
    exceed three robust sigmas of the combined trial noise to count,
    so a noisy host cannot fail the gate on its own; without a
    threshold the rate rows are informational.  Modes missing from
    either side are skipped. *)

val regressed : verdict list -> bool
val pp_verdicts : Format.formatter -> verdict list -> unit

val missing_in_baseline : current:doc -> baseline:doc -> string list
(** Human-readable list of metrics the current snapshot carries that
    the baseline lacks — what {!compare_docs} silently skipped.
    Typical for a schema-1 baseline, which predates histograms, energy
    accounting and multi-trial throughput.  Empty when every current
    metric found a baseline counterpart. *)
