(* Shared test harness: compile a standalone WearC program, link it
   with the compiler runtime, place it in the paper's memory layout,
   and run it on the simulated MCU.

   Layout (mirroring Fig. 1 for a single "app"):
     0x4400  os_code    runtime helpers + startup stub
     0x8000  prog_code  the compiled program (+ exit stub)
     0xA000  prog_data  stack space (grows down) then globals
   In the separate-stack modes (software-only, MPU) the stack lives at
   the bottom of prog_data, exactly as the AFT arranges for apps. *)

module A = Amulet_link.Asm
module M = Amulet_mcu.Machine
module Mpu = Amulet_mcu.Mpu
module Cc = Amulet_cc

let code_base = 0x8000
let stack_bytes = 0x400

let align_1k a = (a + 0x3FF) land lnot 0x3FF

type run = {
  machine : M.t;
  stop : M.stop_reason;
  image : Amulet_link.Image.t;
}

let return_value r = Amulet_mcu.Registers.get (M.regs r.machine) 12

let build ?(mode = Cc.Isolation.No_isolation) ?(shadow = false) src =
  let cu =
    Cc.Driver.compile ~prefix:"prog" ~mode ~shadow
      ~analyze:Amulet_analysis.Range.analyze src
  in
  let exit_stub =
    [
      A.label "prog$$exit";
      A.mov (A.imm 1) (A.Dabs (A.Num M.halt_port));
      A.jmp "prog$$exit";
    ]
  in
  let uses_own_stack = Cc.Isolation.separate_stacks mode in
  let startup data_base data_limit =
    [ A.label "_start" ]
    @ (if shadow then
         [
           A.mov
             (A.imm Cc.Isolation.shadow_base)
             (A.Dabs (A.Num Cc.Isolation.shadow_sp_addr));
         ]
       else [])
    @ (if uses_own_stack then
         [
           A.mov
             (A.Simm (A.Sym (Cc.Isolation.stack_top_sym ~prefix:"prog")))
             (A.Dreg A.r_sp);
         ]
       else [])
    @ (if Cc.Isolation.uses_mpu mode then
         (* seg1 = everything below the program's data (x-only),
            seg2 = program data/stack (rw), seg3 = above (no access) *)
         [
           A.mov (A.imm (data_base lsr 4)) (A.Dabs (A.Num Mpu.segb1_addr));
           A.mov (A.imm (data_limit lsr 4)) (A.Dabs (A.Num Mpu.segb2_addr));
           A.mov
             (A.imm
                (Mpu.sam_bits ~seg1:"x" ~seg2:"rw" ~seg3:""
                   ~info:(if shadow then "rw" else "")
                   ()))
             (A.Dabs (A.Num Mpu.sam_addr));
           A.mov (A.imm 0xA501) (A.Dabs (A.Num Mpu.ctl0_addr));
         ]
       else [])
    @ [ A.push (A.sym "prog$$exit"); A.br (A.Sym "prog$main") ]
  in
  let data_items =
    if uses_own_stack then
      (A.Space stack_bytes
      :: A.label (Cc.Isolation.stack_top_sym ~prefix:"prog")
      :: cu.Cc.Driver.data)
    else cu.Cc.Driver.data
  in
  let code_items = cu.Cc.Driver.code @ exit_stub in
  (* size-driven layout, 1 KiB-aligned like the AFT's *)
  let data_base =
    align_1k (code_base + Amulet_link.Assembler.size code_items)
  in
  let data_limit =
    align_1k (data_base + Amulet_link.Assembler.size data_items)
  in
  if data_limit >= Amulet_mcu.Memory_map.fram_limit then
    failwith
      (Printf.sprintf "harness: program does not fit in FRAM (needs 0x%04X)"
         data_limit);
  let sections =
    [
      { Amulet_link.Linker.name = "os_code"; base = 0x4400;
        items = Cc.Runtime.items @ startup data_base data_limit };
      { Amulet_link.Linker.name = "prog_code"; base = code_base;
        items = code_items };
      { Amulet_link.Linker.name = "prog_data"; base = data_base;
        items = data_items };
    ]
  in
  (cu, Amulet_link.Linker.link ~entry:"_start" sections)

let run ?mode ?shadow ?(fuel = 2_000_000) src =
  let _cu, image = build ?mode ?shadow src in
  let machine = M.create () in
  Amulet_link.Image.load image machine;
  M.reset machine;
  let stop = M.run ~fuel machine in
  { machine; stop; image }

(* Run and insist the program halted normally; return main's result. *)
let run_ok ?mode ?shadow ?fuel src =
  let r = run ?mode ?shadow ?fuel src in
  (match r.stop with
  | M.Halted -> ()
  | other ->
    Alcotest.failf "program did not halt cleanly: %a@.console: %s"
      M.pp_stop_reason other
      (M.console_contents r.machine));
  r

let check_main ?mode ?shadow ?fuel ~expect src =
  let r = run_ok ?mode ?shadow ?fuel src in
  Alcotest.(check int)
    "main() result" (expect land 0xFFFF)
    (return_value r)
