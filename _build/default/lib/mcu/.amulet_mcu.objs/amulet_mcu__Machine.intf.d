lib/mcu/machine.mli: Buffer Cpu Format Memory Mpu Opcode Registers Timer Trace Word
