type mode = No_isolation | Feature_limited | Software_only | Mpu_assisted

let name = function
  | No_isolation -> "no-isolation"
  | Feature_limited -> "feature-limited"
  | Software_only -> "software-only"
  | Mpu_assisted -> "mpu"

let of_string = function
  | "no-isolation" | "none" -> Some No_isolation
  | "feature-limited" | "amuletc" -> Some Feature_limited
  | "software-only" | "software" -> Some Software_only
  | "mpu" | "mpu-assisted" -> Some Mpu_assisted
  | _ -> None

let all = [ No_isolation; Feature_limited; Software_only; Mpu_assisted ]
let allows_pointers = function Feature_limited -> false | _ -> true
let allows_recursion = function Feature_limited -> false | _ -> true

let checks_lower_bound = function
  | Software_only | Mpu_assisted -> true
  | No_isolation | Feature_limited -> false

let checks_upper_bound = function
  | Software_only -> true
  | No_isolation | Feature_limited | Mpu_assisted -> false

let uses_mpu = function Mpu_assisted -> true | _ -> false

let separate_stacks = function
  | Software_only | Mpu_assisted -> true
  | No_isolation | Feature_limited -> false

let mangle ~prefix name = if prefix = "" then name else prefix ^ "$" ^ name
let code_section ~prefix = if prefix = "" then "os_code" else prefix ^ "_code"
let data_section ~prefix = if prefix = "" then "os_data" else prefix ^ "_data"
let code_lo_sym ~prefix = code_section ~prefix ^ "__start"
let code_hi_sym ~prefix = code_section ~prefix ^ "__end"
let data_lo_sym ~prefix = data_section ~prefix ^ "__start"
let data_hi_sym ~prefix = data_section ~prefix ^ "__end"

(* Label placed at the top of each app's stack area (= base of its
   globals, rounded down to even).  The AFT layout and the standalone
   test harness both emit it, so binary-level analyses can recover the
   stack region [data_lo, stack_top) from the link map alone. *)
let stack_top_sym ~prefix =
  (if prefix = "" then "os" else prefix) ^ "$$stack_top"

let fault_data_lo = 1
let fault_data_hi = 2
let fault_code_ptr = 3
let fault_ret_addr = 4
let fault_array_bounds = 5
let fault_shadow_stack = 6

(* Shadow return-address stack (the paper's envisioned use of the
   InfoMem): the stack pointer cell sits at the bottom of InfoMem and
   entries grow upward behind it. *)
let shadow_sp_addr = 0x1800
let shadow_base = 0x1802

let guard_start_suffix = "$gs"
let guard_end_suffix = "$ge"

let fault_stub_label ~prefix reason =
  Printf.sprintf "%s$$fault%d" (if prefix = "" then "os" else prefix) reason
