(** Binary encoding of instructions into MSP430 machine words.

    Produces the instruction word followed by any extension words
    (source first, then destination).  The constant generators are
    used automatically: immediates 0, 1, 2, 4, 8 and -1 (all-ones for
    the operation width) encode without an extension word, exactly as
    a real MSP430 assembler does.

    @raise Invalid_argument on operands that have no encoding (e.g.
    [R3] used as a plain register, or a jump offset outside
    [-512, 511]). *)

val encode : ?no_cg_imm:bool -> Opcode.t -> int list
(** Machine words for one instruction (1 to 3 words).  With
    [~no_cg_imm:true], immediates are always emitted as extension
    words even when a constant generator exists — the assembler uses
    this for immediates whose value is a link-time symbol, so that
    instruction sizes are known before symbol resolution. *)

val length_bytes : ?no_cg_imm:bool -> Opcode.t -> int
(** Encoded size in bytes without materializing the words. *)

val src_needs_ext : Word.width -> Opcode.src -> bool
val dst_needs_ext : Opcode.dst -> bool
