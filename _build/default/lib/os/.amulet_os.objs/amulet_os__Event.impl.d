lib/os/event.ml: Format Printf
