(** The paper's evaluation, reproduced end-to-end on the simulated
    platform.  Each function regenerates one table or figure; the
    bench harness prints them next to the paper's numbers. *)

module Iso := Amulet_cc.Isolation

(** {1 Table 1 — basic isolation operation costs} *)

type table1_row = {
  t1_mode : Iso.mode;
  t1_mem_access : float;  (** avg cycles per guarded memory access *)
  t1_ctx_switch : float;  (** avg cycles per context switch (one way) *)
}

val table1 : ?runs:int -> ?elide:bool -> unit -> table1_row list
(** Runs the synthetic app [runs] times (default 200, as in the paper)
    per operation per mode.  Per-operation cost is the difference
    against an empty handler of the same shape, divided by the number
    of operations.  [elide] defaults to [false] here: the paper's
    compiler has no check elision, and the synthetic accesses are
    exactly the kind the range analysis removes. *)

(** {1 Figure 2 — weekly overhead and battery impact for nine apps} *)

type figure2_row = {
  f2_app : string;  (** display name, as in the paper *)
  f2_mode : Iso.mode;
  f2_overhead_cycles : float;  (** per week *)
  f2_battery_percent : float;
}

val figure2 :
  ?scenario:Amulet_os.Sensors.scenario ->
  ?warmup_ms:int ->
  unit ->
  figure2_row list
(** Profiles each of the nine platform apps under Feature-Limited,
    MPU and Software-Only, against the No-Isolation baseline. *)

(** {1 Figure 3 — benchmark slowdown} *)

type figure3_row = {
  f3_case : string;
  f3_mode : Iso.mode;
  f3_cycles : float;  (** avg cycles per run *)
  f3_slowdown_percent : float;  (** vs. the no-isolation baseline *)
}

val figure3 : ?runs:int -> unit -> figure3_row list
(** Activity Case 1, Activity Case 2 and Quicksort, each run [runs]
    times (default 200) per isolation method. *)

(** {1 Shared measurement helper} *)

val measure_handler :
  ?shadow:bool ->
  ?elide:bool ->
  ?certify:bool ->
  mode:Iso.mode ->
  app:Amulet_apps.Suite.app ->
  arg:int ->
  runs:int ->
  unit ->
  float
(** Average cycles per dispatch of the app's [handle_button] with the
    given argument; [shadow] arms the InfoMem shadow stack, [elide]
    (default true) lets the range analysis drop proven guards,
    [certify] (default true) lets the static certifier elide dynamic
    gate-pointer validation. *)

(** {1 Ablations beyond the paper} *)

type shadow_row = {
  sh_mode : Iso.mode;
  sh_plain : float;
  sh_hardened : float;
  sh_per_call : float;
}

val ablation_shadow : ?runs:int -> unit -> shadow_row list
(** Cost of the shadow return-address stack (paper section 5's
    proposed hardening) per function call, under every mode. *)

type advanced_mpu_row = {
  am_mem_access : float;
  am_ctx_switch : float;
  am_mem_saving_percent : float;
}

val ablation_advanced_mpu : ?runs:int -> unit -> advanced_mpu_row
(** Projection for the paper's envisioned "advanced MPU" that covers
    all memory with 4+ regions: per-access cost falls to the
    no-isolation figure, context switches keep the MPU price. *)

type elision_row = {
  el_mode : Iso.mode;
  el_full : float;  (** cycles per run with every guard emitted *)
  el_elided : float;  (** cycles per run with proven guards dropped *)
  el_sites : int;  (** dereference sites whose guard was elided *)
  el_saving_percent : float;
}

val ablation_elision : ?runs:int -> unit -> elision_row list
(** Cost recovered by range-analysis bounds-check elision on the
    synthetic memory benchmark, for the guard-inserting modes
    (Software-Only and MPU). *)

type gate_cert_row = {
  gc_mode : Iso.mode;
  gc_dynamic : float;  (** cycles per run, every gate pointer validated *)
  gc_certified : float;  (** cycles per run, certified services elided *)
  gc_per_gate : float;  (** marginal cycles per pointer-carrying call *)
  gc_services : string list;  (** services certified for the app *)
}

val ablation_gate_cert : ?runs:int -> unit -> gate_cert_row list
(** Cost recovered by gate-argument provenance certification
    ({!Amulet_analysis.Gate_taint}) on the gate-dense benchmark: the
    kernel skips its dynamic pointer-range validation for certified
    services. *)
