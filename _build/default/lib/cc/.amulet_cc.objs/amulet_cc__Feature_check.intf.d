lib/cc/feature_check.mli: Ast Isolation
