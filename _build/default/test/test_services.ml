(* Coverage of every OS API service: each is invoked from WearC app
   code through its real gate, and its observable effect is checked.
   Also exercises the disassembler over a whole firmware image. *)

module Aft = Amulet_aft.Aft
module Os = Amulet_os
module Iso = Amulet_cc.Isolation
module M = Amulet_mcu.Machine
module W = Amulet_mcu.Word

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Build a one-shot app whose handle_button body is [body]; run it and
   return the kernel plus the value of its global "r". *)
let run_body ?(mode = Iso.Mpu_assisted) ?(scenario = Os.Sensors.Walking)
    ?(pre = "") body =
  let source =
    Printf.sprintf
      "int r = 0;\n%s\nvoid handle_init(int arg) { }\n\
       void handle_button(int arg) {\n%s\n}\n"
      pre body
  in
  let fw = Aft.build ~mode [ { Aft.name = "svc"; source } ] in
  let k = Os.Kernel.create ~scenario fw in
  let _ = Os.Kernel.run_for_ms k 2 in
  Os.Kernel.post k ~delay_ms:1 ~app:0 (Os.Event.Button 1) ~arg:1;
  let _ = Os.Kernel.run_for_ms k 50 in
  let st = Os.Kernel.app_by_name k "svc" in
  (match st.Os.Kernel.last_fault with
  | Some f -> Alcotest.failf "service app faulted: %s" f
  | None -> ());
  let r =
    W.to_signed W.W16
      (M.mem_checked_read k.Os.Kernel.machine W.W16
         (Amulet_link.Image.symbol k.Os.Kernel.fw.Aft.fw_image "svc$r"))
  in
  (k, r)

let test_get_time () =
  (* at ~3ms of virtual time, seconds = 0 *)
  let _, r = run_body "r = api_get_time() + 1;" in
  check_int "time+1" 1 r

let test_get_battery () =
  let _, r = run_body "r = api_get_battery();" in
  check_int "fresh battery" 100 r

let test_read_temperature () =
  let _, r = run_body "r = api_read_temperature();" in
  check_bool "tenths of C plausible" true (r > 250 && r < 420)

let test_read_light () =
  let _, r = run_body "r = api_read_light();" in
  check_bool "non-negative" true (r >= 0)

let test_read_heart_rate () =
  let _, r = run_body ~scenario:Os.Sensors.Running "r = api_read_heart_rate();" in
  check_bool "elevated when running" true (r > 120 && r < 200)

let test_read_accel_buffer () =
  let _, r =
    run_body ~pre:"int buf[8];"
      "int n = api_read_accel(buf, 8);\n\
       int i; int nz = 0;\n\
       for (i = 0; i < 8; i++) if (buf[i] != 0) nz += 1;\n\
       r = n * 100 + nz;"
  in
  check_bool "8 samples, mostly nonzero" true (r / 100 = 8 && r mod 100 >= 6)

let test_read_accel_xyz () =
  let _, r =
    run_body ~pre:"int v[3];" ~scenario:Os.Sensors.Resting
      "api_read_accel_xyz(v);\nr = v[2];"
  in
  (* gravity on z while resting: ~1000 milli-g *)
  check_bool "gravity on z" true (r > 900 && r < 1100)

let test_read_ppg () =
  let _, r =
    run_body ~pre:"int buf[4];"
      "int n = api_read_ppg(buf, 4);\nr = n * 1000 + (buf[0] > 1000);"
  in
  check_int "4 samples around midscale" 4001 r

let test_display_write_and_clear () =
  let k, _ = run_body "api_display_write(\"abc\", 2); r = 1;" in
  Alcotest.(check string) "line 2" "abc" (Os.Kernel.display_line k 2);
  let k2, _ = run_body "api_display_write(\"x\", 0); api_display_clear(); r = 1;" in
  Alcotest.(check string) "cleared" "" (Os.Kernel.display_line k2 0)

let test_log_append () =
  let k, r =
    run_body ~pre:"char rec[4];"
      "rec[0] = 'l'; rec[1] = 'o'; rec[2] = 'g'; rec[3] = '!';\n\
       r = api_log_append(rec, 4);"
  in
  check_int "bytes accepted" 4 r;
  Alcotest.(check string) "stored" "log!" (Os.Kernel.log_contents k)

let test_send_ble () =
  let k, r =
    run_body ~pre:"char pkt[3];"
      "pkt[0] = 'b'; pkt[1] = 'l'; pkt[2] = 'e';\nr = api_send_ble(pkt, 3);"
  in
  check_int "bytes sent" 3 r;
  Alcotest.(check string)
    "radio buffer" "ble"
    (Buffer.contents k.Os.Kernel.api.Os.Api.ble)

let test_rand_changes () =
  let _, r = run_body "int a = api_rand(); int b = api_rand(); r = (a != b);" in
  check_int "two draws differ" 1 r

let test_led_buzz_button () =
  let _, r =
    run_body "api_led(1); api_buzz(100); r = api_button_state() + 10;"
  in
  check_bool "button state is 0/1" true (r = 10 || r = 11)

let test_cancel_timer () =
  let source =
    "int fired = 0;\nint id = 0;\n\
     void handle_init(int arg) { id = api_set_timer(50); }\n\
     void handle_timer(int arg) { fired += 1; api_cancel_timer(id); }\n"
  in
  let fw = Aft.build ~mode:Iso.Mpu_assisted [ { Aft.name = "tmr"; source } ] in
  let k = Os.Kernel.create fw in
  let _ = Os.Kernel.run_for_ms k 500 in
  let fired =
    M.mem_checked_read k.Os.Kernel.machine W.W16
      (Amulet_link.Image.symbol k.Os.Kernel.fw.Aft.fw_image "tmr$fired")
  in
  check_int "fired exactly once" 1 fired

let test_unsubscribe () =
  let source =
    "int events = 0;\n\
     void handle_init(int arg) { api_subscribe(0, 20); }\n\
     void handle_accel(int arg) {\n\
    \  events += 1;\n\
    \  if (events >= 3) api_unsubscribe(0);\n\
     }\n"
  in
  let fw = Aft.build ~mode:Iso.Mpu_assisted [ { Aft.name = "sub"; source } ] in
  let k = Os.Kernel.create fw in
  let _ = Os.Kernel.run_for_ms k 1_000 in
  let events =
    M.mem_checked_read k.Os.Kernel.machine W.W16
      (Amulet_link.Image.symbol k.Os.Kernel.fw.Aft.fw_image "sub$events")
  in
  check_int "stopped after three" 3 events

let test_null_service () =
  let _, r = run_body "api_null(); r = 7;" in
  check_int "null is a no-op" 7 r

(* ------------------------------------------------------------------ *)
(* Disassembler over a real firmware image *)

let test_disasm_roundtrip () =
  let fw =
    Aft.build ~mode:Iso.Mpu_assisted
      [ { Aft.name = "svc";
          source = "int r; void handle_init(int a) { r = a + 1; }" } ]
  in
  let m = M.create () in
  Amulet_link.Image.load fw.Aft.fw_image m;
  let fetch a = M.mem_checked_read m W.W16 a in
  let lay = List.hd fw.Aft.fw_layout.Amulet_aft.Layout.apps in
  let lines =
    Amulet_mcu.Disasm.range
      ~symbols:fw.Aft.fw_image.Amulet_link.Image.symbols ~fetch
      ~lo:lay.Amulet_aft.Layout.code_base
      ~hi:(lay.Amulet_aft.Layout.code_base + lay.Amulet_aft.Layout.code_size)
      ()
  in
  check_bool "produced lines" true (List.length lines > 10);
  let text =
    String.concat "\n" (List.map (fun l -> l.Amulet_mcu.Disasm.text) lines)
  in
  let contains sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length text && (String.sub text i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "has label" true (contains "handle_init");
  check_bool "has MOV" true (contains "MOV");
  check_bool "has RET (MOV @SP+, PC)" true (contains "@R1+, R0")

let quick name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "services"
    [
      ( "api",
        [
          quick "null" test_null_service;
          quick "get_time" test_get_time;
          quick "get_battery" test_get_battery;
          quick "read_temperature" test_read_temperature;
          quick "read_light" test_read_light;
          quick "read_heart_rate" test_read_heart_rate;
          quick "read_accel buffer" test_read_accel_buffer;
          quick "read_accel_xyz" test_read_accel_xyz;
          quick "read_ppg" test_read_ppg;
          quick "display write/clear" test_display_write_and_clear;
          quick "log_append" test_log_append;
          quick "send_ble" test_send_ble;
          quick "rand" test_rand_changes;
          quick "led/buzz/button" test_led_buzz_button;
          quick "cancel_timer" test_cancel_timer;
          quick "unsubscribe" test_unsubscribe;
        ] );
      ("disasm", [ quick "firmware listing" test_disasm_roundtrip ]);
    ]
