type t = int array

let pc = 0
let sp = 1
let sr = 2
let cg2 = 3

let create () = Array.make 16 0
let get t n = t.(n)
let set t n v = t.(n) <- v land 0xFFFF
let get_pc t = t.(pc)
let set_pc t v = set t pc v
let get_sp t = t.(sp)
let set_sp t v = set t sp v

let bit_c = 0x0001
let bit_z = 0x0002
let bit_n = 0x0004
let bit_gie = 0x0008
let bit_v = 0x0100

let flag t bit = t.(sr) land bit <> 0

let set_flag t bit b =
  t.(sr) <- (if b then t.(sr) lor bit else t.(sr) land lnot bit) land 0xFFFF

let carry t = flag t bit_c
let zero t = flag t bit_z
let negative t = flag t bit_n
let overflow t = flag t bit_v
let gie t = flag t bit_gie
let set_carry t b = set_flag t bit_c b
let set_zero t b = set_flag t bit_z b
let set_negative t b = set_flag t bit_n b
let set_overflow t b = set_flag t bit_v b
let set_gie t b = set_flag t bit_gie b

let set_nz t width v =
  set_zero t (Word.norm width v = 0);
  set_negative t (Word.is_negative width v)

let copy = Array.copy

let pp ppf t =
  for i = 0 to 15 do
    Format.fprintf ppf "R%-2d=%04X%s" i t.(i) (if i = 7 then "\n" else " ")
  done
