lib/cc/typecheck.ml: Ast Ctype Hashtbl List Option Printf Srcloc String Tast
