(* amulet_fleet: fleet-scale simulation service.  Parses a scenario
   file, instantiates N independent Machine+Kernel devices across
   worker domains, drives each with deterministic seeded event
   traffic, and merges the per-domain shards into one aggregate
   summary (per-mode p50/p99 dispatch + latency cycles, faults/sec,
   cycles/sec, energy).  Exits 1 on any isolation-oracle violation
   anywhere in the fleet. *)

module Fleet = Amulet_fleet_core.Fleet
module Scenario = Amulet_fleet_core.Scenario
module Json = Amulet_obs.Json

let override scenario devices duration seed =
  let s = scenario in
  let s =
    match devices with Some d -> { s with Scenario.sc_devices = d } | None -> s
  in
  let s =
    match duration with
    | Some d -> { s with Scenario.sc_duration_ms = d }
    | None -> s
  in
  match seed with Some v -> { s with Scenario.sc_seed = v } | None -> s

let progress_bar () =
  let last = ref (-1) in
  fun ~done_ ~total ->
    (* redraw at most once per percent: the callback runs under the
       scheduler's lock on the worker that finished the batch *)
    let pct = done_ * 100 / max 1 total in
    if pct <> !last then begin
      last := pct;
      Printf.eprintf "\rfleet: %d/%d devices (%d%%)%!" done_ total pct;
      if done_ = total then prerr_newline ()
    end

let run_one ~jobs ~progress scenario =
  Fleet.run ~jobs
    ?progress:(if progress then Some (progress_bar ()) else None)
    scenario

let run_cmd file devices duration seed jobs out progress scaling =
  match Scenario.of_file file with
  | Error e ->
    Printf.eprintf "amulet_fleet: %s: %s\n" file e;
    2
  | Ok scenario -> (
    let scenario = override scenario devices duration seed in
    Format.printf "%a@." Scenario.pp scenario;
    match scaling with
    | [] ->
      let s = run_one ~jobs ~progress scenario in
      Format.printf "%a" Fleet.pp s;
      (match out with
      | Some path ->
        Out_channel.with_open_text path (fun oc ->
            output_string oc (Json.to_string (Fleet.summary_json s));
            output_char oc '\n');
        Format.printf "aggregate summary written to %s@." path
      | None -> ());
      if Fleet.ok s then 0 else 1
    | counts ->
      (* domain-scaling sweep: same scenario+seed at each job count;
         the aggregates must be bit-identical, only wall time moves *)
      let runs =
        List.map (fun j -> (j, run_one ~jobs:j ~progress scenario)) counts
      in
      let reference = Json.to_string (Fleet.summary_json (snd (List.hd runs))) in
      let identical =
        List.for_all
          (fun (_, s) -> Json.to_string (Fleet.summary_json s) = reference)
          runs
      in
      let base_elapsed = (snd (List.hd runs)).Fleet.fs_elapsed_s in
      Format.printf "@.domain scaling (%s, %d devices):@."
        scenario.Scenario.sc_name scenario.Scenario.sc_devices;
      Format.printf "  %8s %10s %14s %9s@." "jobs" "wall s" "devices/sec"
        "speedup";
      List.iter
        (fun (j, s) ->
          Format.printf "  %8d %10.2f %14.1f %8.2fx@." j s.Fleet.fs_elapsed_s
            (float s.Fleet.fs_devices /. max 1e-9 s.Fleet.fs_elapsed_s)
            (base_elapsed /. max 1e-9 s.Fleet.fs_elapsed_s))
        runs;
      Format.printf "  aggregates %s across job counts@."
        (if identical then "bit-identical" else "DIFFER");
      if (not identical) || not (List.for_all (fun (_, s) -> Fleet.ok s) runs)
      then 1
      else 0)

open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"SCENARIO" ~doc:"Scenario file (see examples/scenarios/).")

let devices_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "devices" ] ~docv:"N" ~doc:"Override the scenario's fleet size.")

let duration_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "duration-ms" ] ~docv:"MS"
        ~doc:"Override the scenario's per-device virtual duration.")

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"SEED" ~doc:"Override the scenario's base seed.")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains (0 = Fleet.Sched.default_jobs, the shared \
           policy).")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:
          "Write the deterministic aggregate-summary JSON to $(docv) \
           (bit-identical for a fixed scenario+seed).")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ] ~doc:"Report device completion on stderr.")

let scaling_arg =
  Arg.(
    value
    & opt (list int) []
    & info [ "scaling" ] ~docv:"J1,J2,.."
        ~doc:
          "Run the same scenario at each domain count, print the \
           devices/sec scaling table, and verify the aggregates are \
           bit-identical.")

let cmd =
  let doc = "fleet-scale wearable simulation service" in
  Cmd.v
    (Cmd.info "amulet_fleet" ~doc)
    Term.(
      const run_cmd $ file_arg $ devices_arg $ duration_arg $ seed_arg
      $ jobs_arg $ out_arg $ progress_arg $ scaling_arg)

let () = exit (Cmd.eval' cmd)
