type reg = int

type src =
  | S_reg of reg
  | S_indexed of reg * int
  | S_absolute of int
  | S_indirect of reg
  | S_indirect_inc of reg
  | S_immediate of int

type dst = D_reg of reg | D_indexed of reg * int | D_absolute of int

type op2 =
  | MOV | ADD | ADDC | SUBC | SUB | CMP | DADD | BIT | BIC | BIS | XOR | AND

type op1 = RRC | SWPB | RRA | SXT | PUSH | CALL
type cond = JNE | JEQ | JNC | JC | JN | JGE | JL | JMP

type t =
  | Fmt1 of op2 * Word.width * src * dst
  | Fmt2 of op1 * Word.width * src
  | Jump of cond * int
  | Reti

let op2_name = function
  | MOV -> "MOV" | ADD -> "ADD" | ADDC -> "ADDC" | SUBC -> "SUBC"
  | SUB -> "SUB" | CMP -> "CMP" | DADD -> "DADD" | BIT -> "BIT"
  | BIC -> "BIC" | BIS -> "BIS" | XOR -> "XOR" | AND -> "AND"

let op1_name = function
  | RRC -> "RRC" | SWPB -> "SWPB" | RRA -> "RRA" | SXT -> "SXT"
  | PUSH -> "PUSH" | CALL -> "CALL"

let cond_name = function
  | JNE -> "JNE" | JEQ -> "JEQ" | JNC -> "JNC" | JC -> "JC"
  | JN -> "JN" | JGE -> "JGE" | JL -> "JL" | JMP -> "JMP"

let writes_back = function CMP | BIT -> false | _ -> true
let sets_flags = function MOV | BIC | BIS -> false | _ -> true

let pp_src ppf = function
  | S_reg r -> Format.fprintf ppf "R%d" r
  | S_indexed (r, x) -> Format.fprintf ppf "%d(R%d)" x r
  | S_absolute a -> Format.fprintf ppf "&0x%04X" a
  | S_indirect r -> Format.fprintf ppf "@R%d" r
  | S_indirect_inc r -> Format.fprintf ppf "@R%d+" r
  | S_immediate n -> Format.fprintf ppf "#%d" n

let pp_dst ppf = function
  | D_reg r -> Format.fprintf ppf "R%d" r
  | D_indexed (r, x) -> Format.fprintf ppf "%d(R%d)" x r
  | D_absolute a -> Format.fprintf ppf "&0x%04X" a

let suffix = function Word.W8 -> ".B" | Word.W16 -> ""

let pp ppf = function
  | Fmt1 (op, w, s, d) ->
    Format.fprintf ppf "%s%s %a, %a" (op2_name op) (suffix w) pp_src s pp_dst d
  | Fmt2 (op, w, s) ->
    Format.fprintf ppf "%s%s %a" (op1_name op) (suffix w) pp_src s
  | Jump (c, off) -> Format.fprintf ppf "%s %+d" (cond_name c) off
  | Reti -> Format.fprintf ppf "RETI"

let to_string i = Format.asprintf "%a" pp i
