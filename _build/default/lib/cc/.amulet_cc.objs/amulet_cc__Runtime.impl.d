lib/cc/runtime.ml: Amulet_link Amulet_mcu Ctype Isolation
