(** The MSP430 register file and status-register flags.

    R0 = program counter, R1 = stack pointer, R2 = status register /
    constant generator 1, R3 = constant generator 2, R4..R15 general
    purpose. *)

type t

val pc : int
val sp : int
val sr : int
val cg2 : int

val create : unit -> t
val get : t -> int -> int
val set : t -> int -> int -> unit

val get_pc : t -> int
val set_pc : t -> int -> unit
val get_sp : t -> int
val set_sp : t -> int -> unit

(** Status-register flag accessors (bit positions follow the MSP430:
    C=0, Z=1, N=2, GIE=3, V=8). *)

val carry : t -> bool
val zero : t -> bool
val negative : t -> bool
val overflow : t -> bool
val gie : t -> bool

val set_carry : t -> bool -> unit
val set_zero : t -> bool -> unit
val set_negative : t -> bool -> unit
val set_overflow : t -> bool -> unit
val set_gie : t -> bool -> unit

val set_nz : t -> Word.width -> int -> unit
(** Set N and Z from a result value of the given width. *)

val copy : t -> t
val pp : Format.formatter -> t -> unit
