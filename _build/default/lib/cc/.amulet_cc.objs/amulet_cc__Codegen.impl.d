lib/cc/codegen.ml: Amulet_link Amulet_mcu Ast Char Ctype Hashtbl Isolation List Option Printf Srcloc String Tast
