open Opcode

let op2_code = function
  | MOV -> 0x4 | ADD -> 0x5 | ADDC -> 0x6 | SUBC -> 0x7 | SUB -> 0x8
  | CMP -> 0x9 | DADD -> 0xA | BIT -> 0xB | BIC -> 0xC | BIS -> 0xD
  | XOR -> 0xE | AND -> 0xF

let op1_code = function
  | RRC -> 0 | SWPB -> 1 | RRA -> 2 | SXT -> 3 | PUSH -> 4 | CALL -> 5

let cond_code = function
  | JNE -> 0 | JEQ -> 1 | JNC -> 2 | JC -> 3 | JN -> 4 | JGE -> 5
  | JL -> 6 | JMP -> 7

let check_reg r =
  if r < 0 || r > 15 then invalid_arg "Encode: register out of range"

(* Constant-generator encoding for an immediate, if one exists:
   (reg, as_bits).  R3: As=0 -> 0, As=1 -> 1, As=2 -> 2, As=3 -> -1;
   R2: As=2 -> 4, As=3 -> 8. *)
let cg_for_imm width n =
  let n = n land Word.mask width in
  if n = 0 then Some (3, 0)
  else if n = 1 then Some (3, 1)
  else if n = 2 then Some (3, 2)
  else if n = Word.mask width then Some (3, 3)
  else if n = 4 then Some (2, 2)
  else if n = 8 then Some (2, 3)
  else None

(* (reg, as_bits, extension word option) *)
let encode_src width = function
  | S_reg r ->
    check_reg r;
    if r = 3 then invalid_arg "Encode: R3 is not addressable as a register";
    (r, 0, None)
  | S_indexed (r, x) ->
    check_reg r;
    if r = 2 || r = 3 then
      invalid_arg "Encode: indexed mode on R2/R3 is a constant generator";
    (r, 1, Some (x land 0xFFFF))
  | S_absolute a -> (2, 1, Some (a land 0xFFFF))
  | S_indirect r ->
    check_reg r;
    if r = 2 || r = 3 then
      invalid_arg "Encode: indirect mode on R2/R3 is a constant generator";
    (r, 2, None)
  | S_indirect_inc r ->
    check_reg r;
    if r = 0 || r = 2 || r = 3 then
      invalid_arg "Encode: @R+ on R0/R2/R3 is immediate/constant mode";
    (r, 3, None)
  | S_immediate n -> (
    match cg_for_imm width n with
    | Some (r, a) -> (r, a, None)
    | None -> (0, 3, Some (n land 0xFFFF)))

let encode_src_no_cg width = function
  | S_immediate n -> (0, 3, Some (n land 0xFFFF))
  | other -> encode_src width other

let encode_dst = function
  | D_reg r ->
    (* writes to R3/CG2 are legal (a bit bucket); only reads alias the
       constant generator *)
    check_reg r;
    (r, 0, None)
  | D_indexed (r, x) ->
    check_reg r;
    if r = 2 || r = 3 then
      invalid_arg "Encode: indexed destination on R2/R3";
    (r, 1, Some (x land 0xFFFF))
  | D_absolute a -> (2, 1, Some (a land 0xFFFF))

let src_needs_ext width s =
  let _, _, ext = encode_src width s in
  ext <> None

let dst_needs_ext d =
  let _, _, ext = encode_dst d in
  ext <> None

let bw_bit = function Word.W8 -> 1 | Word.W16 -> 0

let encode ?(no_cg_imm = false) instr =
  let encode_src = if no_cg_imm then encode_src_no_cg else encode_src in
  match instr with
  | Fmt1 (op, w, src, dst) ->
    let sreg, abits, sext = encode_src w src in
    let dreg, adbit, dext = encode_dst dst in
    let word =
      (op2_code op lsl 12) lor (sreg lsl 8) lor (adbit lsl 7)
      lor (bw_bit w lsl 6) lor (abits lsl 4) lor dreg
    in
    (word :: Option.to_list sext) @ Option.to_list dext
  | Fmt2 (op, w, src) ->
    let sreg, abits, sext = encode_src w src in
    (match (op, src) with
    | (SWPB | SXT | CALL), _ when w = Word.W8 ->
      invalid_arg "Encode: byte mode invalid for SWPB/SXT/CALL"
    | (RRC | RRA | SWPB | SXT), S_immediate _ ->
      invalid_arg "Encode: immediate operand for a read-modify-write op"
    | _ -> ());
    let word =
      0x1000 lor (op1_code op lsl 7) lor (bw_bit w lsl 6) lor (abits lsl 4)
      lor sreg
    in
    word :: Option.to_list sext
  | Jump (c, off) ->
    if off < -512 || off > 511 then invalid_arg "Encode: jump offset range";
    0x2000 lor (cond_code c lsl 10) lor (off land 0x3FF) |> fun w -> [ w ]
  | Reti -> [ 0x1300 ]

let length_bytes ?no_cg_imm i = 2 * List.length (encode ?no_cg_imm i)
