(** The AmuletOS kernel model: event-driven scheduler driving app
    state machines on the simulated MCU.

    The kernel is the host side of the hybrid OS design (DESIGN.md):
    dispatching an event means loading the handler address into R15,
    the argument into R12, and starting the machine at the app's
    AFT-generated trampoline; everything from there to the halt in
    [__osreturn] — MPU reconfiguration, stack switch, the handler, API
    gates — is simulated machine code whose cycles are measured.

    Virtual time is counted in CPU cycles (16 MHz); events carry cycle
    timestamps and the clock advances to [max now event.at] before a
    dispatch, then by however long the handler ran. *)

type fault_policy =
  | Disable  (** a faulting app is switched off (default) *)
  | Restart of int  (** re-deliver [handle_init] up to N times *)

type outcome =
  | Ok
  | No_handler
  | App_fault of string  (** MPU violation / check fault / runaway *)

(** Measured cost of one handler dispatch. *)
type dispatch_record = {
  dr_app : int;
  dr_kind : Event.kind;
  dr_cycles : int;  (** trampoline + handler + gates + services *)
  dr_latency : int;
      (** queue latency: virtual cycles the event waited past its
          scheduled delivery time before this dispatch started (the
          same value the [dispatch_latency_cycles] Obs counter
          records, but available hooks-off — the fleet service's
          per-mode latency histograms are built from it) *)
  dr_reads : int;
  dr_writes : int;
  dr_api_calls : int;
  dr_outcome : outcome;
}

(** Accumulated per-(app, handler) profile snapshot — the input ARP
    needs.  Backed by {!Amulet_obs.Obs.Metrics} cells. *)
type handler_stats = {
  hs_count : int;
  hs_cycles : int;
  hs_reads : int;
  hs_writes : int;
  hs_api_calls : int;
}

type app_state = {
  build : Amulet_aft.Aft.app_build;
  mutable enabled : bool;
  mutable fault_count : int;
  mutable restarts : int;
  mutable last_fault : string option;
  mutable last_forensics : string option;
      (** full {!Amulet_obs.Forensics} dump of the app's most recent
          fault (only when an observability context is attached) *)
  mutable subscriptions : (Event.sensor * int) list;  (** sensor, rate Hz *)
  mutable timers : (int * int) list;  (** id, period ms *)
  certified_gates : string list;
      (** services whose gate-pointer validation the static certifier
          proved redundant for this app (from the image's
          [cert.gates.<app>] note); {!Api.dispatch} skips the dynamic
          range walk for them *)
  metrics : Amulet_obs.Obs.Metrics.t;
      (** keyed [\["handler"; h\]] and [\["state"; st; h\]] *)
  state_addr : int option;
      (** address of the app's [state] global, when it declares one —
          enables the ARP-view per-state accounting *)
}

type t = {
  fw : Amulet_aft.Aft.firmware;
  machine : Amulet_mcu.Machine.t;
  api : Api.t;
  queue : Event_queue.t;
  apps : app_state array;
  policy : fault_policy;
  obs : Amulet_obs.Obs.t option;
  mutable now : int;  (** virtual time, cycles *)
  mutable vbase : int;
      (** virtual-time offset of the machine cycle counter, so trace
          records emitted mid-dispatch land on the virtual timeline *)
  mutable dispatches : int;
  mutable current_app : int;
  os_code_sum : int;
      (** checksum of the OS code region taken right after boot; the
          attack campaign's kernel-integrity reference *)
}

val create :
  ?policy:fault_policy ->
  ?scenario:Sensors.scenario ->
  ?seed:int ->
  ?obs:Amulet_obs.Obs.t ->
  Amulet_aft.Aft.firmware ->
  t
(** Loads the image, resets the machine, runs the boot stub, and
    queues [handle_init] for every app at t=0.  (Does not dispatch.)
    With [obs], the context is attached to the machine {e before}
    boot (so profiler totals equal [Machine.cycles] exactly) and the
    kernel emits dispatch spans, API instants, queue-depth /
    dispatch-latency counters and fault instants into it. *)

val now_ms : t -> int

val post :
  t -> delay_ms:int -> app:int -> Event.kind -> arg:int -> unit

val dispatch_next : t -> dispatch_record option
(** Pop and run the earliest event.  [None] when the queue is empty. *)

val run_for_ms : t -> int -> dispatch_record list
(** Dispatch everything scheduled in the next virtual interval
    (newly-posted periodic events included); returns the records in
    dispatch order. *)

val app_by_name : t -> string -> app_state

val handler_profile : app_state -> string -> handler_stats option

val handler_profiles : app_state -> (string * handler_stats) list
(** All handlers with at least one dispatch, sorted by name. *)

val state_profile : app_state -> ((int * string) * handler_stats) list
(** ARP-view accounting: dispatch statistics keyed by (value of the
    app's [state] global when the event arrived, handler name) —
    the paper's "memory accesses and context switches per state and
    transition".  Empty for apps without a [state] global. *)

val display_line : t -> int -> string
val log_contents : t -> string

(* Post-incident oracles used by the attack campaign (lib/sec). *)

val os_intact : t -> bool
(** Recompute the OS code region checksum and compare it with the
    value captured at boot — [false] means some attack (or injected
    fault) corrupted kernel code. *)

val liveness_probe : ?max_dispatches:int -> t -> app:int -> bool
(** Post a [Button] event to [app] and dispatch until it is delivered
    (bounded by [max_dispatches], default 64).  [true] when the kernel
    delivered it and the app survived — the campaign's
    "kernel still live / victim still schedulable" check. *)

val unrecovered_faults : t -> (string * string) list
(** Apps left disabled by a fault under the [Disable] policy (or after
    exhausting [Restart]): [(app name, last fault message)].  Drives
    {b amulet_sim}'s failure exit code. *)
