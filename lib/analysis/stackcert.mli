(** Binary-level worst-case stack bound over the CFI-reconstructed
    CFG, checked against the app's actual stack region from the link
    map ([data_lo, stack_top)).  Replaces trust in the compiler's
    source-level estimate; the two bounds are cross-checked in tests. *)

type verdict =
  | Certified of { bound : int; region : int; chain : string list }
      (** [bound] includes the trampoline's pushes; [chain] is the
          maximizing call chain, root first *)
  | Rejected of { bound : int; region : int; chain : string list }
  | Unbounded of { chain : string list; fenced : bool }
      (** recursive cycle; [fenced] when the MPU's segment-1 fence
          turns the overflow into a fault instead of a corruption *)
  | Unanalyzable of { addr : int; reason : string }
  | Not_applicable  (** shared-stack modes have no per-app region *)

type t = {
  sc_verdict : verdict;
  sc_fn_depth : (string * int) list;
      (** per-function worst-case stack use below its entry SP *)
  sc_entry_max : (string * int) list;
      (** deepest possible entry depth below the dispatch stack top
          (trampoline included) — bounds each function's FP from
          below; used by the gate-provenance pass *)
}

val trampoline_bytes : int

val analyze : cfg:Cfi.t -> image:Amulet_link.Image.t -> t
(** @raise Invalid_argument when a separate-stack image lacks the
    [stack_top] symbol for the app. *)

val entry_max_of : t -> string -> int option
val pp_verdict : Format.formatter -> verdict -> unit
