lib/cc/parser.ml: Array Ast Ctype Lexer List Srcloc String Token
