open Token

type state = { toks : Token.spanned array; mutable pos : int }

let cur st = st.toks.(st.pos)
let cur_tok st = (cur st).tok
let cur_loc st = (cur st).loc

let peek_tok st n =
  if st.pos + n < Array.length st.toks then st.toks.(st.pos + n).tok else EOF

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let errf st fmt = Srcloc.errf (cur_loc st) fmt

let expect st tok =
  if cur_tok st = tok then advance st
  else
    errf st "expected '%s' but found '%s'" (Token.to_string tok)
      (Token.to_string (cur_tok st))

let accept st tok =
  if cur_tok st = tok then begin
    advance st;
    true
  end
  else false

let expect_ident st =
  match cur_tok st with
  | IDENT s ->
    advance st;
    s
  | t -> errf st "expected identifier, found '%s'" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Types and declarators *)

let starts_type st =
  match cur_tok st with
  | KW_int | KW_uint | KW_char | KW_void | KW_struct | KW_const -> true
  | _ -> false

let parse_base_type st =
  let rec go () =
    match cur_tok st with
    | KW_const ->
      advance st;
      go ()
    | KW_int ->
      advance st;
      Ctype.Int
    | KW_uint ->
      advance st;
      Ctype.Uint
    | KW_char ->
      advance st;
      Ctype.Char
    | KW_void ->
      advance st;
      Ctype.Void
    | KW_struct ->
      advance st;
      let name = expect_ident st in
      Ctype.Struct name
    | t -> errf st "expected a type, found '%s'" (Token.to_string t)
  in
  go ()

(* A parsed declarator: the introduced name, a function from the base
   type to the declared type, and — when the declarator is directly a
   function (the [f(a, b)] form) — the named parameter list. *)
type declarator = {
  dname : string;
  dwrap : Ctype.t -> Ctype.t;
  dparams : (string * Ctype.t) list option;
}

let rec parse_declarator st =
  if accept st STAR then
    let d = parse_declarator st in
    { d with dwrap = (fun t -> d.dwrap (Ctype.Ptr t)); dparams = None }
  else parse_direct st

and parse_direct st =
  let inner =
    match cur_tok st with
    | IDENT name ->
      advance st;
      { dname = name; dwrap = (fun t -> t); dparams = None }
    | LPAREN when (match peek_tok st 1 with STAR | IDENT _ -> true | _ -> false) ->
      advance st;
      let d = parse_declarator st in
      expect st RPAREN;
      d
    | _ ->
      (* abstract declarator (unnamed parameter) *)
      { dname = ""; dwrap = (fun t -> t); dparams = None }
  in
  parse_suffixes st inner

and parse_suffixes st inner =
  match cur_tok st with
  | LBRACKET ->
    advance st;
    let n =
      match cur_tok st with
      | INT_LIT n ->
        advance st;
        n
      | t -> errf st "array size must be an integer literal, found '%s'"
               (Token.to_string t)
    in
    expect st RBRACKET;
    (* remaining suffixes bind inside this one *)
    let rest = parse_suffixes st { inner with dwrap = (fun t -> t) } in
    {
      dname = inner.dname;
      dwrap = (fun t -> inner.dwrap (Ctype.Array (rest.dwrap t, n)));
      dparams = None;
    }
  | LPAREN ->
    advance st;
    let params = parse_params st in
    expect st RPAREN;
    let ptypes = List.map snd params in
    {
      dname = inner.dname;
      dwrap = (fun t -> inner.dwrap (Ctype.Func (t, ptypes)));
      dparams = Some params;
    }
  | _ -> inner

and parse_params st =
  if cur_tok st = RPAREN then []
  else if cur_tok st = KW_void && peek_tok st 1 = RPAREN then begin
    advance st;
    []
  end
  else
    let rec go acc =
      let base = parse_base_type st in
      let d = parse_declarator st in
      let ty = Ctype.decays_to (d.dwrap base) in
      let acc = (d.dname, ty) :: acc in
      if accept st COMMA then go acc else List.rev acc
    in
    go []

(* ------------------------------------------------------------------ *)
(* Expressions *)

let rec parse_expr st = parse_assign st

and parse_assign st =
  let loc = cur_loc st in
  let lhs = parse_cond st in
  let mk op =
    advance st;
    let rhs = parse_assign st in
    { Ast.e = op lhs rhs; eloc = loc }
  in
  match cur_tok st with
  | ASSIGN -> mk (fun a b -> Ast.Assign (a, b))
  | PLUS_ASSIGN -> mk (fun a b -> Ast.Op_assign (Ast.Add, a, b))
  | MINUS_ASSIGN -> mk (fun a b -> Ast.Op_assign (Ast.Sub, a, b))
  | STAR_ASSIGN -> mk (fun a b -> Ast.Op_assign (Ast.Mul, a, b))
  | SLASH_ASSIGN -> mk (fun a b -> Ast.Op_assign (Ast.Div, a, b))
  | PERCENT_ASSIGN -> mk (fun a b -> Ast.Op_assign (Ast.Mod, a, b))
  | AMP_ASSIGN -> mk (fun a b -> Ast.Op_assign (Ast.Band, a, b))
  | PIPE_ASSIGN -> mk (fun a b -> Ast.Op_assign (Ast.Bor, a, b))
  | CARET_ASSIGN -> mk (fun a b -> Ast.Op_assign (Ast.Bxor, a, b))
  | LSHIFT_ASSIGN -> mk (fun a b -> Ast.Op_assign (Ast.Shl, a, b))
  | RSHIFT_ASSIGN -> mk (fun a b -> Ast.Op_assign (Ast.Shr, a, b))
  | _ -> lhs

and parse_cond st =
  let loc = cur_loc st in
  let c = parse_binary st 0 in
  if accept st QUESTION then begin
    let t = parse_expr st in
    expect st COLON;
    let f = parse_cond st in
    { Ast.e = Ast.Cond (c, t, f); eloc = loc }
  end
  else c

(* Binary operator precedence, loosest first. *)
and binop_levels =
  [|
    [ (OROR, Ast.Lor) ];
    [ (ANDAND, Ast.Land) ];
    [ (PIPE, Ast.Bor) ];
    [ (CARET, Ast.Bxor) ];
    [ (AMP, Ast.Band) ];
    [ (EQEQ, Ast.Eq); (NEQ, Ast.Ne) ];
    [ (LT, Ast.Lt); (GT, Ast.Gt); (LE, Ast.Le); (GE, Ast.Ge) ];
    [ (LSHIFT, Ast.Shl); (RSHIFT, Ast.Shr) ];
    [ (PLUS, Ast.Add); (MINUS, Ast.Sub) ];
    [ (STAR, Ast.Mul); (SLASH, Ast.Div); (PERCENT, Ast.Mod) ];
  |]

and parse_binary st level =
  if level >= Array.length binop_levels then parse_unary st
  else begin
    let loc = cur_loc st in
    let lhs = ref (parse_binary st (level + 1)) in
    let continue = ref true in
    while !continue do
      match List.assoc_opt (cur_tok st) binop_levels.(level) with
      | Some op ->
        advance st;
        let rhs = parse_binary st (level + 1) in
        lhs := { Ast.e = Ast.Bin (op, !lhs, rhs); eloc = loc }
      | None -> continue := false
    done;
    !lhs
  end

and parse_unary st =
  let loc = cur_loc st in
  let mk node = { Ast.e = node; eloc = loc } in
  match cur_tok st with
  | MINUS ->
    advance st;
    mk (Ast.Un (Ast.Neg, parse_unary st))
  | PLUS ->
    advance st;
    parse_unary st
  | BANG ->
    advance st;
    mk (Ast.Un (Ast.Lnot, parse_unary st))
  | TILDE ->
    advance st;
    mk (Ast.Un (Ast.Bnot, parse_unary st))
  | STAR ->
    advance st;
    mk (Ast.Deref (parse_unary st))
  | AMP ->
    advance st;
    mk (Ast.Addr (parse_unary st))
  | PLUSPLUS ->
    advance st;
    mk (Ast.Pre_incr (parse_unary st))
  | MINUSMINUS ->
    advance st;
    mk (Ast.Pre_decr (parse_unary st))
  | KW_sizeof ->
    advance st;
    if cur_tok st = LPAREN && starts_type { st with pos = st.pos + 1 } then begin
      expect st LPAREN;
      let ty = parse_type_name st in
      expect st RPAREN;
      mk (Ast.Sizeof_type ty)
    end
    else mk (Ast.Sizeof_expr (parse_unary st))
  | LPAREN when starts_type { st with pos = st.pos + 1 } ->
    advance st;
    let ty = parse_type_name st in
    expect st RPAREN;
    mk (Ast.Cast (ty, parse_unary st))
  | _ -> parse_postfix st

(* Abstract declarator for casts/sizeof: full declarator syntax with
   an optional (absent) identifier — plain pointers, arrays, and
   function-pointer types alike. *)
and parse_type_name st =
  let base = parse_base_type st in
  let d = parse_declarator st in
  if d.dname <> "" then
    errf st "type name must not declare an identifier";
  d.dwrap base

and parse_postfix st =
  let loc = cur_loc st in
  let mk node = { Ast.e = node; eloc = loc } in
  let rec suffix e =
    match cur_tok st with
    | LPAREN ->
      advance st;
      let args =
        if cur_tok st = RPAREN then []
        else
          let rec go acc =
            let a = parse_assign st in
            if accept st COMMA then go (a :: acc) else List.rev (a :: acc)
          in
          go []
      in
      expect st RPAREN;
      suffix (mk (Ast.Call (e, args)))
    | LBRACKET ->
      advance st;
      let i = parse_expr st in
      expect st RBRACKET;
      suffix (mk (Ast.Index (e, i)))
    | DOT ->
      advance st;
      suffix (mk (Ast.Member (e, expect_ident st)))
    | ARROW ->
      advance st;
      suffix (mk (Ast.Arrow (e, expect_ident st)))
    | PLUSPLUS ->
      advance st;
      suffix (mk (Ast.Post_incr e))
    | MINUSMINUS ->
      advance st;
      suffix (mk (Ast.Post_decr e))
    | _ -> e
  in
  suffix (parse_primary st)

and parse_primary st =
  let loc = cur_loc st in
  let mk node = { Ast.e = node; eloc = loc } in
  match cur_tok st with
  | INT_LIT n ->
    advance st;
    mk (Ast.Num n)
  | CHAR_LIT c ->
    advance st;
    mk (Ast.Num c)
  | STRING_LIT s ->
    advance st;
    mk (Ast.Str s)
  | IDENT name ->
    advance st;
    mk (Ast.Var name)
  | LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st RPAREN;
    e
  | t -> errf st "expected expression, found '%s'" (Token.to_string t)

(* Constant expression for case labels and sizes. *)
let parse_const_int st =
  let neg = accept st MINUS in
  match cur_tok st with
  | INT_LIT n ->
    advance st;
    if neg then -n else n
  | CHAR_LIT c ->
    advance st;
    if neg then -c else c
  | t -> errf st "expected integer constant, found '%s'" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Statements *)

let parse_init st =
  if accept st LBRACE then begin
    let rec go acc =
      let e = parse_assign st in
      if accept st COMMA then
        if cur_tok st = RBRACE then List.rev (e :: acc) else go (e :: acc)
      else List.rev (e :: acc)
    in
    let es = go [] in
    expect st RBRACE;
    Ast.Ilist es
  end
  else
    match cur_tok st with
    | STRING_LIT s ->
      advance st;
      Ast.Istr s
    | _ -> Ast.Iexpr (parse_expr st)

let rec parse_stmt st =
  let loc = cur_loc st in
  let mk s = { Ast.s; sloc = loc } in
  match cur_tok st with
  | KW_goto -> errf st "'goto' is not supported on this platform"
  | KW_asm -> errf st "inline assembly is not supported on this platform"
  | LBRACE ->
    advance st;
    let body = parse_stmts_until st RBRACE in
    expect st RBRACE;
    mk (Ast.Sblock body)
  | KW_if ->
    advance st;
    expect st LPAREN;
    let c = parse_expr st in
    expect st RPAREN;
    let then_ = block_of st in
    let else_ = if accept st KW_else then block_of st else [] in
    mk (Ast.Sif (c, then_, else_))
  | KW_while ->
    advance st;
    expect st LPAREN;
    let c = parse_expr st in
    expect st RPAREN;
    mk (Ast.Swhile (c, block_of st))
  | KW_do ->
    advance st;
    let body = block_of st in
    expect st KW_while;
    expect st LPAREN;
    let c = parse_expr st in
    expect st RPAREN;
    expect st SEMI;
    mk (Ast.Sdo_while (body, c))
  | KW_for ->
    advance st;
    expect st LPAREN;
    let init =
      if cur_tok st = SEMI then None
      else if starts_type st then Some (parse_local_decl st)
      else
        Some { Ast.s = Ast.Sexpr (parse_expr st); sloc = loc }
    in
    if (match init with Some { Ast.s = Ast.Sdecl _; _ } -> false | _ -> true)
    then expect st SEMI;
    let cond = if cur_tok st = SEMI then None else Some (parse_expr st) in
    expect st SEMI;
    let step = if cur_tok st = RPAREN then None else Some (parse_expr st) in
    expect st RPAREN;
    mk (Ast.Sfor (init, cond, step, block_of st))
  | KW_return ->
    advance st;
    let e = if cur_tok st = SEMI then None else Some (parse_expr st) in
    expect st SEMI;
    mk (Ast.Sreturn e)
  | KW_break ->
    advance st;
    expect st SEMI;
    mk Ast.Sbreak
  | KW_continue ->
    advance st;
    expect st SEMI;
    mk Ast.Scontinue
  | KW_switch ->
    advance st;
    expect st LPAREN;
    let e = parse_expr st in
    expect st RPAREN;
    expect st LBRACE;
    let cases = ref [] and default = ref None in
    while cur_tok st <> RBRACE do
      if accept st KW_case then begin
        let v = parse_const_int st in
        expect st COLON;
        let body = parse_stmts_until_case st in
        cases := (v, body) :: !cases
      end
      else if accept st KW_default then begin
        expect st COLON;
        let body = parse_stmts_until_case st in
        if !default <> None then errf st "duplicate default";
        default := Some body
      end
      else errf st "expected 'case' or 'default'"
    done;
    expect st RBRACE;
    mk (Ast.Sswitch (e, List.rev !cases, !default))
  | _ when starts_type st ->
    let d = parse_local_decl st in
    d
  | _ ->
    let e = parse_expr st in
    expect st SEMI;
    mk (Ast.Sexpr e)

and parse_local_decl st =
  let loc = cur_loc st in
  let base = parse_base_type st in
  let d = parse_declarator st in
  let ty = d.dwrap base in
  let init = if accept st ASSIGN then Some (parse_init st) else None in
  expect st SEMI;
  { Ast.s = Ast.Sdecl (ty, d.dname, init); sloc = loc }

and block_of st =
  if cur_tok st = LBRACE then begin
    advance st;
    let body = parse_stmts_until st RBRACE in
    expect st RBRACE;
    body
  end
  else [ parse_stmt st ]

and parse_stmts_until st closer =
  let rec go acc =
    if cur_tok st = closer || cur_tok st = EOF then List.rev acc
    else go (parse_stmt st :: acc)
  in
  go []

and parse_stmts_until_case st =
  let rec go acc =
    match cur_tok st with
    | KW_case | KW_default | RBRACE -> List.rev acc
    | _ -> go (parse_stmt st :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Top level *)

let parse_top st =
  let loc = cur_loc st in
  if
    cur_tok st = KW_struct
    && (match peek_tok st 2 with LBRACE -> true | _ -> false)
  then begin
    advance st;
    let name = expect_ident st in
    expect st LBRACE;
    let fields = ref [] in
    while cur_tok st <> RBRACE do
      let base = parse_base_type st in
      let d = parse_declarator st in
      expect st SEMI;
      fields := (d.dname, d.dwrap base) :: !fields
    done;
    expect st RBRACE;
    expect st SEMI;
    Ast.Dstruct (name, List.rev !fields, loc)
  end
  else begin
    let const = cur_tok st = KW_const in
    let base = parse_base_type st in
    let d = parse_declarator st in
    let ty = d.dwrap base in
    match (ty, d.dparams) with
    | Ctype.Func (ret, _), Some params when cur_tok st = LBRACE ->
      advance st;
      let body = parse_stmts_until st RBRACE in
      expect st RBRACE;
      Ast.Dfunc
        { fname = d.dname; fret = ret; fparams = params; fbody = body;
          floc = loc }
    | Ctype.Func _, _ ->
      (* prototype: accepted and ignored *)
      expect st SEMI;
      Ast.Dstruct ("__proto_" ^ d.dname, [], loc)
    | _ ->
      let init = if accept st ASSIGN then Some (parse_init st) else None in
      expect st SEMI;
      Ast.Dglobal { gname = d.dname; gtype = ty; ginit = init; gconst = const;
                    gloc = loc }
  end

let parse src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0 } in
  let rec go acc =
    if cur_tok st = EOF then List.rev acc else go (parse_top st :: acc)
  in
  (* drop ignored prototype markers *)
  List.filter
    (function Ast.Dstruct (n, [], _) -> not (String.length n > 8 && String.sub n 0 8 = "__proto_") | _ -> true)
    (go [])

let parse_expression src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0 } in
  parse_expr st
