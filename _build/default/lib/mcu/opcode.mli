(** Instruction set of the simulated core — the three real MSP430
    instruction formats.

    Registers are integers 0..15 (see {!Registers} for the roles of
    R0..R3).  Source and destination operands carry the seven MSP430
    addressing modes; the constant generators (R2/R3 special
    encodings) are handled by {!Encode} and {!Decode}, so immediates
    0, 1, 2, 4, 8 and -1 round-trip as immediates. *)

type reg = int

(** Source addressing modes (register field + As bits). *)
type src =
  | S_reg of reg  (** [Rn] *)
  | S_indexed of reg * int  (** [x(Rn)] *)
  | S_absolute of int  (** [&ADDR] *)
  | S_indirect of reg  (** [@Rn] *)
  | S_indirect_inc of reg  (** [@Rn+] *)
  | S_immediate of int  (** [#N] *)

(** Destination addressing modes (register field + Ad bit). *)
type dst =
  | D_reg of reg  (** [Rn] *)
  | D_indexed of reg * int  (** [x(Rn)] *)
  | D_absolute of int  (** [&ADDR] *)

(** Two-operand (format I) operations. *)
type op2 =
  | MOV | ADD | ADDC | SUBC | SUB | CMP | DADD | BIT | BIC | BIS | XOR | AND

(** Single-operand (format II) operations; RETI is separate. *)
type op1 = RRC | SWPB | RRA | SXT | PUSH | CALL

(** Jump conditions (format III). *)
type cond = JNE | JEQ | JNC | JC | JN | JGE | JL | JMP

type t =
  | Fmt1 of op2 * Word.width * src * dst
  | Fmt2 of op1 * Word.width * src
  | Jump of cond * int  (** signed word offset, -512..511 *)
  | Reti

val op2_name : op2 -> string
val op1_name : op1 -> string
val cond_name : cond -> string

val writes_back : op2 -> bool
(** CMP and BIT compute flags only. *)

val sets_flags : op2 -> bool
(** MOV, BIC and BIS leave the status flags untouched. *)

val pp_src : Format.formatter -> src -> unit
val pp_dst : Format.formatter -> dst -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
