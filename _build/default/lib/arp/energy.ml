let clock_hz = 16.0e6

(* MSP430FR5969: ~100 uA/MHz at 3.0 V -> 1.6 mA at 16 MHz. *)
let active_watts = 1.6e-3 *. 3.0
let joules_per_cycle = active_watts /. clock_hz

(* 110 mAh lithium coin cell at 3.0 V. *)
let battery_joules = 0.110 *. 3.0 *. 3600.0
let baseline_lifetime_weeks = 2.0
let weekly_energy_budget_joules = battery_joules /. baseline_lifetime_weeks
let overhead_joules ~cycles = cycles *. joules_per_cycle

let battery_impact_percent ~overhead_cycles_per_week =
  overhead_joules ~cycles:overhead_cycles_per_week
  /. weekly_energy_budget_joules *. 100.0
