lib/os/event_queue.ml: Event List
