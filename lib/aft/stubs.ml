module A = Amulet_link.Asm
module M = Amulet_mcu.Machine
module Map = Amulet_mcu.Memory_map
module Mpu = Amulet_mcu.Mpu
module Iso = Amulet_cc.Isolation

type mpu_cfg = { b1 : int; b2 : int; sam : int }

let os_mpu_cfg ?(shadow = false) ~layout () =
  {
    b1 = layout.Layout.os_data_base lsr 4;
    b2 = layout.Layout.apps_base lsr 4;
    sam =
      Mpu.sam_bits ~seg1:"x" ~seg2:"rw" ~seg3:"rw"
        ~info:(if shadow then "rw" else "")
        ();
  }

let app_mpu_cfg ?(shadow = false) (a : Layout.app_layout) =
  {
    b1 = a.Layout.data_base lsr 4;
    b2 = a.Layout.data_limit lsr 4;
    (* the InfoMem segment opens up when it hosts the shadow stack *)
    sam =
      Mpu.sam_bits ~seg1:"x" ~seg2:"rw" ~seg3:""
        ~info:(if shadow then "rw" else "")
        ();
  }

(* Values that are never constant-generator encodable, so the sizing
   pass and the final pass produce identical instruction sizes. *)
let placeholder_cfg = { b1 = 0x7EA; b2 = 0x7EB; sam = 0x777 }

let mpu_unlock = 0xA501 (* password | MPUENA *)

let slot_os_sp = "__os_sp_save"
let slot_app_sp = "__cur_app_sp"
let slot_b1 = "__cur_mpu_b1"
let slot_b2 = "__cur_mpu_b2"
let slot_sam = "__cur_mpu_sam"

let os_globals =
  List.concat_map
    (fun name -> [ A.label name; A.Dword (A.Num 0) ])
    [ slot_os_sp; slot_app_sp; slot_b1; slot_b2; slot_sam ]

let startup =
  [
    A.label "__os_start";
    A.mov (A.imm 1) (A.Dabs (A.Num M.halt_port));
    A.jmp "__os_start";
  ]

let saved_regs = [ 4; 5; 6; 7; 8; 9; 10; 11 ]

let mpu_disable = 0xA500 (* password, MPUENA clear *)

(* Zero-size markers bracketing each MPU-reconfiguration sequence so
   profilers can attribute its cycles.  [tag] must be unique per
   emission site (labels become global linker symbols). *)
let mpu_marker tag part = Printf.sprintf "__mpu$%s$%s" tag part

(* Reconfiguration must disable the MPU first: updating the boundary
   registers one at a time would otherwise leave a transiently
   inconsistent segment map that faults the very code (or slot reads)
   performing the switch. *)
let write_mpu_imm ~tag cfg =
  [
    A.label (mpu_marker tag "b");
    A.mov (A.imm mpu_disable) (A.Dabs (A.Num Mpu.ctl0_addr));
    A.mov (A.imm cfg.b1) (A.Dabs (A.Num Mpu.segb1_addr));
    A.mov (A.imm cfg.b2) (A.Dabs (A.Num Mpu.segb2_addr));
    A.mov (A.imm cfg.sam) (A.Dabs (A.Num Mpu.sam_addr));
    A.mov (A.imm mpu_unlock) (A.Dabs (A.Num Mpu.ctl0_addr));
    A.label (mpu_marker tag "e");
  ]

let write_mpu_from_slots ~tag =
  [
    A.label (mpu_marker tag "b");
    A.mov (A.imm mpu_disable) (A.Dabs (A.Num Mpu.ctl0_addr));
    A.mov (A.Sabs (A.Sym slot_b1)) (A.Dabs (A.Num Mpu.segb1_addr));
    A.mov (A.Sabs (A.Sym slot_b2)) (A.Dabs (A.Num Mpu.segb2_addr));
    A.mov (A.Sabs (A.Sym slot_sam)) (A.Dabs (A.Num Mpu.sam_addr));
    A.mov (A.imm mpu_unlock) (A.Dabs (A.Num Mpu.ctl0_addr));
    A.label (mpu_marker tag "e");
  ]

let osreturn ~mode ~os_cfg =
  [ A.label "__osreturn" ]
  @ (if Iso.uses_mpu mode then write_mpu_imm ~tag:"osret" os_cfg else [])
  @ (if Iso.separate_stacks mode then
       [ A.mov (A.Sabs (A.Sym slot_os_sp)) (A.Dreg A.r_sp) ]
     else [])
  @ [ A.mov (A.imm 1) (A.Dabs (A.Num M.halt_port)) ]

let gate ~mode ~os_cfg ~svc name =
  [ A.label (Amulet_cc.Apis.gate_label name) ]
  @ List.map (fun r -> A.push (A.Sreg r)) saved_regs
  @ (if Iso.uses_mpu mode then write_mpu_imm ~tag:("g_" ^ name) os_cfg
     else [])
  @ (if Iso.separate_stacks mode then
       [
         A.mov (A.Sreg A.r_sp) (A.Dabs (A.Sym slot_app_sp));
         A.mov (A.Sabs (A.Sym slot_os_sp)) (A.Dreg A.r_sp);
       ]
     else [])
  @ [ A.mov (A.imm svc) (A.Dabs (A.Num M.host_call_port)) ]
  @ (if Iso.separate_stacks mode then
       [ A.mov (A.Sabs (A.Sym slot_app_sp)) (A.Dreg A.r_sp) ]
     else [])
  @ (if Iso.uses_mpu mode then write_mpu_from_slots ~tag:("gx_" ^ name)
     else [])
  @ List.map (fun r -> A.pop r) (List.rev saved_regs)
  @ [ A.ret ]

let gates ~mode ~os_cfg =
  List.concat
    (List.mapi
       (fun svc (name, _) -> gate ~mode ~os_cfg ~svc name)
       Amulet_cc.Apis.signatures)

let tramp_label name = "__tramp_" ^ name
let exit_label name = "__exit_" ^ name

let trampoline ~mode ?(shadow = false) ~name ~cfg ~stack_top () =
  [
    A.label (tramp_label name);
    (* fresh OS stack for this dispatch *)
    A.mov (A.imm Map.sram_limit) (A.Dreg A.r_sp);
  ]
  @ (if shadow then
       (* reset the InfoMem shadow stack for the new activation *)
       [
         A.mov
           (A.imm Amulet_cc.Isolation.shadow_base)
           (A.Dabs (A.Num Amulet_cc.Isolation.shadow_sp_addr));
       ]
     else [])
  @ (if Iso.separate_stacks mode then
       [ A.mov (A.Sreg A.r_sp) (A.Dabs (A.Sym slot_os_sp)) ]
     else [])
  @ (if Iso.uses_mpu mode then
       [
         A.mov (A.imm cfg.b1) (A.Dabs (A.Sym slot_b1));
         A.mov (A.imm cfg.b2) (A.Dabs (A.Sym slot_b2));
         A.mov (A.imm cfg.sam) (A.Dabs (A.Sym slot_sam));
       ]
       @ write_mpu_imm ~tag:("t_" ^ name) cfg
     else [])
  @ (if Iso.separate_stacks mode then
       [ A.mov (A.imm stack_top) (A.Dreg A.r_sp) ]
     else [])
  @ [
      (* the event argument (R12) becomes the handler's stack argument *)
      A.push (A.Sreg 12);
      A.push (A.sym (exit_label name));
      (* branch to the handler whose address the dispatcher put in R15 *)
      A.mov (A.Sreg 15) (A.Dreg A.r_pc);
    ]

let exit_stub ~name =
  [ A.label (exit_label name); A.br (A.Sym "__osreturn") ]
