lib/mcu/registers.mli: Format Word
