(** Priority queue of pending events, ordered by virtual time with
    FIFO tie-breaking (a leftist heap). *)

type t

val create : unit -> t
val is_empty : t -> bool
val size : t -> int

val push : t -> at:int -> app:int -> Event.kind -> arg:int -> unit
(** Enqueue; assigns the FIFO sequence number. *)

val pop : t -> Event.t option
val peek : t -> Event.t option

val clear_app : t -> int -> unit
(** Drop every pending event destined for one app (used when an app is
    disabled after a fault). *)
