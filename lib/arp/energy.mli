(** Energy and battery model used to convert isolation-overhead cycles
    into battery-lifetime impact (paper Fig. 2, right axis).

    Parameters follow the MSP430FR5969 datasheet and the Amulet
    hardware: ~100 uA/MHz active current at 3.0 V and 16 MHz gives
    about 0.9 mW, i.e. ~56 pJ per cycle; the Amulet battery is a
    110 mAh lithium cell (~1188 J) and the platform targets a
    two-week lifetime. *)

val clock_hz : float
val active_watts : float
val joules_per_cycle : float
val battery_joules : float
val baseline_lifetime_weeks : float

val weekly_energy_budget_joules : float
(** Energy spent per week at the baseline lifetime. *)

val overhead_joules : cycles:float -> float

val battery_impact_percent : overhead_cycles_per_week:float -> float
(** Share of the weekly energy budget consumed by isolation overhead,
    as a percentage (the paper reports < 0.5 % for all apps). *)

(** {1 Cycle-exact per-class attribution}

    Built on the {!Amulet_obs.Profile} PC classification: each
    executed cycle belongs to exactly one class, so converting the
    class cycle split with the platform's per-cycle active energy
    attributes every joule to app code, bounds guards, OS gates, MPU
    reconfiguration or the kernel. *)

val joules_of_cycles : int -> float

val per_category :
  (Amulet_obs.Profile.category * int) list ->
  (Amulet_obs.Profile.category * float) list
(** Map a profiler cycle breakdown to joules per class. *)

val overhead_categories : Amulet_obs.Profile.category list
(** The classes that exist only because of isolation: bounds guards,
    OS gate crossings and MPU reconfiguration. *)

val isolation_overhead_joules :
  (Amulet_obs.Profile.category * int) list -> float
(** Energy spent in {!overhead_categories}. *)

val cycles_per_week : float
(** Cycles executed in one week at {!clock_hz} — the extrapolation
    factor for battery-impact projections from finite traces. *)

val battery_impact_of_run : cycles:int -> duration_ms:int -> float
(** Share of the weekly energy budget a device would consume if it
    kept executing [cycles] per [duration_ms] of virtual time all week
    — the fleet service's per-mode battery projection.  0 when
    [duration_ms <= 0]. *)

val pp_joules : Format.formatter -> float -> unit
(** Engineering notation: J / mJ / uJ / nJ / pJ. *)
