open Opcode

type src_class = C_reg | C_indirect | C_indirect_inc | C_imm | C_indexed

let classify_src width = function
  | S_reg _ -> C_reg
  | S_indirect _ -> C_indirect
  | S_indirect_inc _ -> C_indirect_inc
  | S_immediate n ->
    (* Constant-generator immediates behave like register sources. *)
    let n = n land Word.mask width in
    if n = 0 || n = 1 || n = 2 || n = 4 || n = 8 || n = Word.mask width then
      C_reg
    else C_imm
  | S_indexed _ | S_absolute _ -> C_indexed

type dst_class = D_r | D_pc | D_mem

let classify_dst = function
  | D_reg 0 -> D_pc
  | D_reg _ -> D_r
  | D_indexed _ | D_absolute _ -> D_mem

let fmt1_table src dst =
  match (src, dst) with
  | C_reg, D_r -> 1
  | C_reg, D_pc -> 2
  | C_reg, D_mem -> 4
  | C_indirect, D_r -> 2
  | C_indirect, D_pc -> 2
  | C_indirect, D_mem -> 5
  | C_indirect_inc, D_r -> 2
  | C_indirect_inc, D_pc -> 3
  | C_indirect_inc, D_mem -> 5
  | C_imm, D_r -> 2
  | C_imm, D_pc -> 3
  | C_imm, D_mem -> 5
  | C_indexed, D_r -> 3
  | C_indexed, D_pc -> 3
  | C_indexed, D_mem -> 6

let fmt2_table op src =
  match op with
  | RRC | RRA | SWPB | SXT -> (
    match src with
    | C_reg -> 1
    | C_indirect | C_indirect_inc -> 3
    | C_imm -> 3 (* unreachable: rejected by the encoder *)
    | C_indexed -> 4)
  | PUSH -> (
    match src with
    | C_reg -> 3
    | C_indirect -> 4
    | C_indirect_inc -> 4
    | C_imm -> 4
    | C_indexed -> 5)
  | CALL -> (
    match src with
    | C_reg -> 4
    | C_indirect -> 4
    | C_indirect_inc -> 5
    | C_imm -> 5
    | C_indexed -> 5)

let cycles = function
  | Fmt1 (_, w, src, dst) ->
    fmt1_table (classify_src w src) (classify_dst dst)
  | Fmt2 (op, w, src) -> fmt2_table op (classify_src w src)
  | Jump _ -> 2
  | Reti -> 5

let interrupt_latency = 6
