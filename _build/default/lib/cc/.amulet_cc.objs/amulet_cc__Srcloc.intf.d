lib/cc/srcloc.mli: Format
