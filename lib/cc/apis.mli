(** The AmuletOS system API, as seen by application code.

    Applications call these as ordinary C functions (up to three
    scalar/pointer arguments); the compiler routes each call through
    the AFT-generated context-switch gate ([__gate_<name>]).  The OS
    model in [amulet_os] implements the matching services and
    validates every application-supplied pointer against the calling
    app's data bounds before touching memory — the paper's "carefully
    handle application-provided pointers passed through API calls". *)

val signatures : (string * Ctype.t) list
(** [(name, function type)] for every API entry point. *)

val names : string list

val exists : string -> bool

val gate_label : string -> string
(** Linker symbol of the gate stub for an API name. *)

val arg_count : string -> int
(** Number of declared parameters.
    @raise Not_found for unknown names. *)

(** {1 Service cost model}

    The single source of truth for service dispatch costs: the kernel
    ([Amulet_os.Api]) charges exactly these cycles at run time, and
    the static WCET certifier ([Amulet_analysis.Wcet]) sums the same
    constants for its per-call upper bound, so the two cannot drift
    apart. *)

val base_charge : string -> int
(** Fixed cycles charged to every dispatch of a service. *)

val per_word_charge : int
(** Cycles per 16-bit word the kernel copies into app memory. *)

val validate_charge : int
(** Cycles for validating one app-supplied pointer range; skipped for
    statically certified call sites. *)

val range_services : string list
(** Services that take an app pointer and therefore pay
    {!validate_charge} when uncertified. *)

val max_variable_charge : string -> int
(** Upper bound of the data-dependent charge (the kernel clamps all
    app-supplied lengths, so this is finite for every service). *)

val worst_case_charge : certified:bool -> string -> int
(** [base + validate (if applicable and uncertified) + max variable] —
    an upper bound on what any single dispatch of the service can
    charge. *)
