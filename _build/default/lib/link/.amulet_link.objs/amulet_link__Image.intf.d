lib/link/image.mli: Amulet_mcu Bytes Format
