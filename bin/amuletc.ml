(* amuletc: compile WearC sources into a firmware image and report the
   AFT analysis (layout, stack bounds, check counts). *)

module Iso = Amulet_cc.Isolation
module Aft = Amulet_aft.Aft

let mode_conv =
  let parse s =
    match Iso.of_string s with
    | Some m -> Ok m
    | None ->
      Error (`Msg "expected one of: none, amuletc, software, mpu")
  in
  Cmdliner.Arg.conv (parse, fun ppf m -> Format.fprintf ppf "%s" (Iso.name m))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let app_name_of_path path =
  let base = Filename.remove_extension (Filename.basename path) in
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then c
      else if c >= 'A' && c <= 'Z' then Char.lowercase_ascii c
      else '_')
    base

let compile_cmd mode paths symbols =
  try
    let specs =
      List.map
        (fun p -> { Aft.name = app_name_of_path p; source = read_file p })
        paths
    in
    let fw = Aft.build ~mode specs in
    Format.printf "isolation mode: %s@." (Iso.name mode);
    Format.printf "@.memory layout:@.%a" Amulet_aft.Layout.pp fw.Aft.fw_layout;
    List.iter
      (fun ab ->
        let cu = ab.Aft.ab_compiled in
        Format.printf "@.app %s:@." ab.Aft.ab_name;
        Format.printf "  handlers: %s@."
          (String.concat ", " cu.Amulet_cc.Driver.handlers);
        Format.printf "  stack bound: %d bytes%s@."
          cu.Amulet_cc.Driver.stack_bytes
          (if cu.Amulet_cc.Driver.recursive then
             " (recursion: using the default reservation)"
           else "");
        List.iter
          (fun fi ->
            let s = fi.Amulet_cc.Codegen.fi_sites in
            Format.printf
              "  %-24s frame %3dB, %d checked / %d elided / %d static accesses@."
              fi.Amulet_cc.Codegen.fi_name fi.Amulet_cc.Codegen.fi_frame_bytes
              s.Amulet_cc.Codegen.checked s.Amulet_cc.Codegen.elided
              fi.Amulet_cc.Codegen.fi_static_sites)
          cu.Amulet_cc.Driver.infos)
      fw.Aft.fw_apps;
    Format.printf "@.image: %d bytes in %d chunks@."
      (Amulet_link.Image.total_bytes fw.Aft.fw_image)
      (List.length fw.Aft.fw_image.Amulet_link.Image.chunks);
    if symbols then begin
      Format.printf "@.symbols:@.";
      Amulet_link.Image.pp_symbols Format.std_formatter fw.Aft.fw_image
    end;
    0
  with
  | Amulet_cc.Srcloc.Error (loc, msg) ->
    Format.eprintf "error at %a: %s@." Amulet_cc.Srcloc.pp loc msg;
    1
  | Aft.Build_error msg ->
    Format.eprintf "build error: %s@." msg;
    1
  | Sys_error msg ->
    Format.eprintf "%s@." msg;
    1

open Cmdliner

let mode_arg =
  Arg.(
    value
    & opt mode_conv Iso.Mpu_assisted
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:
          "Isolation mode: $(b,none), $(b,amuletc) (feature-limited), \
           $(b,software), or $(b,mpu).")

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.c")

let symbols_arg =
  Arg.(value & flag & info [ "s"; "symbols" ] ~doc:"Dump the symbol table.")

let cmd =
  let doc = "compile WearC applications into an Amulet firmware image" in
  Cmd.v
    (Cmd.info "amuletc" ~doc)
    Term.(const compile_cmd $ mode_arg $ files_arg $ symbols_arg)

let () = exit (Cmd.eval' cmd)
