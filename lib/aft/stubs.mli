(** AFT phases 2-3: generated context-switch machinery.

    All stubs are real assembly executed by the simulator, so every
    cycle of context-switch cost is measured rather than assumed:

    - {b API gates} ([__gate_api_*], shared by all apps): save the
      callee-saved registers on the app's stack, switch to the OS
      stack (separate-stack modes), flip the MPU to the OS
      configuration (MPU mode), invoke the host service through the
      host-call port, then undo everything in the safe order (the
      app's MPU configuration is restored {e after} the last OS-data
      access, from the [__cur_mpu_*] slots the trampoline filled in).
    - {b trampolines} ([__tramp_<app>], one per app): reset the OS
      stack, record the app's MPU configuration, point SP at the app's
      own stack, push the app's exit stub as return address, and
      branch to the handler (address in R15, argument in R12).
    - {b exit stubs} ([__exit_<app>], injected {e inside} the app's
      code section so the return-address bounds check accepts them):
      branch to [__osreturn].
    - [__osreturn]: restore the OS MPU configuration and stack, then
      halt the machine to yield back to the host kernel. *)

module A := Amulet_link.Asm

(** MPU register values for one configuration (boundary registers hold
    address/16). *)
type mpu_cfg = { b1 : int; b2 : int; sam : int }

val os_mpu_cfg : ?shadow:bool -> layout:Layout.t -> unit -> mpu_cfg
(** OS-running configuration: seg1 = OS code (x), seg2 = OS data (rw),
    seg3 = apps (rw); with [shadow], InfoMem read-write. *)

val app_mpu_cfg : ?shadow:bool -> Layout.app_layout -> mpu_cfg
(** App-running configuration: seg1 = below app data (x-only),
    seg2 = app data/stack (rw), seg3 = above (no access); with
    [shadow], InfoMem (seg0) becomes read-write so the generated
    shadow-stack pushes can land there. *)

val placeholder_cfg : mpu_cfg
(** Non-constant-generator dummy values for the sizing pass. *)

val os_globals : A.item list
(** OS data slots: [__os_sp_save], [__cur_app_sp], [__cur_mpu_b1/b2/sam]. *)

val startup : A.item list
(** [__os_start]: halts immediately; the host kernel drives dispatch. *)

val osreturn : mode:Amulet_cc.Isolation.mode -> os_cfg:mpu_cfg -> A.item list

val gates : mode:Amulet_cc.Isolation.mode -> os_cfg:mpu_cfg -> A.item list
(** One gate per OS API entry point (service number = position in
    {!Amulet_cc.Apis.signatures}). *)

val trampoline :
  mode:Amulet_cc.Isolation.mode ->
  ?shadow:bool ->
  name:string ->
  cfg:mpu_cfg ->
  stack_top:int ->
  unit ->
  A.item list

val exit_stub : name:string -> A.item list
(** Appended to the app's own code section. *)

val tramp_label : string -> string
val exit_label : string -> string

val mpu_marker : string -> string -> string
(** [mpu_marker tag part] is the zero-size symbol
    [__mpu$<tag>$<part>] ([part] is ["b"] or ["e"]) bracketing each
    MPU-reconfiguration sequence for cycle attribution. *)
