lib/core/paper.ml: Amulet_cc
