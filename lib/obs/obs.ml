module M = Amulet_mcu.Machine
module Trace = Amulet_mcu.Trace

type value = Vint of int | Vstr of string

type record =
  | Span of {
      name : string;
      cat : string;
      ts : int;
      dur : int;
      tid : int;
      args : (string * value) list;
    }
  | Instant of {
      name : string;
      cat : string;
      ts : int;
      tid : int;
      args : (string * value) list;
    }
  | Counter of { name : string; ts : int; value : int }

let record_ts = function
  | Span { ts; _ } | Instant { ts; _ } | Counter { ts; _ } -> ts

let arg r key =
  match r with
  | Span { args; _ } | Instant { args; _ } -> List.assoc_opt key args
  | Counter { name; value; _ } -> if key = name then Some (Vint value) else None

let int_arg r key =
  match arg r key with Some (Vint n) -> Some n | _ -> None

let str_arg r key =
  match arg r key with Some (Vstr s) -> Some s | _ -> None

(* ------------------------------------------------------------------ *)
(* Chrome trace_event encoding.  ts/dur are raw cycle integers:
   1 trace-µs ≡ 1 cycle, so the round-trip is exact. *)

let json_of_value = function Vint n -> Json.Int n | Vstr s -> Json.Str s

let json_of_args args =
  Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) args)

let json_of_record = function
  | Span { name; cat; ts; dur; tid; args } ->
    Json.Obj
      [
        ("name", Json.Str name);
        ("cat", Json.Str cat);
        ("ph", Json.Str "X");
        ("ts", Json.Int ts);
        ("dur", Json.Int dur);
        ("pid", Json.Int 1);
        ("tid", Json.Int tid);
        ("args", json_of_args args);
      ]
  | Instant { name; cat; ts; tid; args } ->
    Json.Obj
      [
        ("name", Json.Str name);
        ("cat", Json.Str cat);
        ("ph", Json.Str "i");
        ("ts", Json.Int ts);
        ("s", Json.Str "t");
        ("pid", Json.Int 1);
        ("tid", Json.Int tid);
        ("args", json_of_args args);
      ]
  | Counter { name; ts; value } ->
    Json.Obj
      [
        ("name", Json.Str name);
        ("ph", Json.Str "C");
        ("ts", Json.Int ts);
        ("pid", Json.Int 1);
        ("args", Json.Obj [ ("value", Json.Int value) ]);
      ]

let args_of_json j =
  match Json.member "args" j with
  | Some (Json.Obj fields) ->
    List.filter_map
      (fun (k, v) ->
        match v with
        | Json.Int n -> Some (k, Vint n)
        | Json.Float f -> Some (k, Vint (int_of_float f))
        | Json.Str s -> Some (k, Vstr s)
        | _ -> None)
      fields
  | _ -> []

let record_of_json j =
  let str key = Option.bind (Json.member key j) Json.to_str in
  let num key = Option.bind (Json.member key j) Json.to_int in
  let name = Option.value ~default:"" (str "name") in
  let cat = Option.value ~default:"" (str "cat") in
  let ts = Option.value ~default:0 (num "ts") in
  let tid = Option.value ~default:0 (num "tid") in
  match str "ph" with
  | Some "X" ->
    Some
      (Span
         {
           name;
           cat;
           ts;
           dur = Option.value ~default:0 (num "dur");
           tid;
           args = args_of_json j;
         })
  | Some "i" | Some "I" -> Some (Instant { name; cat; ts; tid; args = args_of_json j })
  | Some "C" ->
    let value =
      match args_of_json j with
      | (_, Vint n) :: _ -> n
      | _ -> 0
    in
    Some (Counter { name; ts; value })
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Sinks *)

type sink = { output : record -> unit; close : unit -> unit }

(* Both channel- and buffer-backed variants share a writer pair. *)
type writer = { put : string -> unit; finish : unit -> unit }

let channel_writer oc =
  { put = (fun s -> output_string oc s); finish = (fun () -> close_out oc) }

let buffer_writer buf =
  { put = Buffer.add_string buf; finish = (fun () -> ()) }

let chrome_of_writer w =
  let first = ref true in
  w.put "{\"traceEvents\":[";
  {
    output =
      (fun r ->
        if !first then first := false else w.put ",\n";
        w.put (Json.to_string (json_of_record r)));
    close =
      (fun () ->
        w.put "]}\n";
        w.finish ());
  }

let jsonl_of_writer w =
  {
    output =
      (fun r ->
        w.put (Json.to_string (json_of_record r));
        w.put "\n");
    close = w.finish;
  }

let chrome_sink oc = chrome_of_writer (channel_writer oc)
let jsonl_sink oc = jsonl_of_writer (channel_writer oc)
let chrome_buffer_sink buf = chrome_of_writer (buffer_writer buf)
let jsonl_buffer_sink buf = jsonl_of_writer (buffer_writer buf)

let pp_args ppf args =
  List.iter
    (fun (k, v) ->
      match v with
      | Vint n -> Format.fprintf ppf " %s=%d" k n
      | Vstr s -> Format.fprintf ppf " %s=%s" k s)
    args

let console_sink ppf =
  {
    output =
      (fun r ->
        (match r with
        | Span { name; cat; ts; dur; tid; args } ->
          Format.fprintf ppf "[%10d] span    %-20s %s tid=%d dur=%d%a@." ts
            name cat tid dur pp_args args
        | Instant { name; cat; ts; tid; args } ->
          Format.fprintf ppf "[%10d] instant %-20s %s tid=%d%a@." ts name cat
            tid pp_args args
        | Counter { name; ts; value } ->
          Format.fprintf ppf "[%10d] counter %-20s = %d@." ts name value));
    close = (fun () -> Format.pp_print_flush ppf ());
  }

(* ------------------------------------------------------------------ *)
(* Context *)

type t = {
  mutable sinks : sink list;
  ring : Trace.ring;
  mutable prof : Profile.t option;
}

let create ?(ring_capacity = 64) () =
  { sinks = []; ring = Trace.create_ring ~capacity:ring_capacity; prof = None }

let add_sink t sink = t.sinks <- t.sinks @ [ sink ]
let enable_profile t fw = t.prof <- Some (Profile.create fw)
let profile t = t.prof
let ring t = t.ring

let emit t r = List.iter (fun s -> s.output r) t.sinks

let span t ?(cat = "") ?(tid = 0) ?(args = []) ~name ~ts ~dur () =
  emit t (Span { name; cat; ts; dur; tid; args })

let instant t ?(cat = "") ?(tid = 0) ?(args = []) ~name ~ts () =
  emit t (Instant { name; cat; ts; tid; args })

let counter t ~name ~ts value = emit t (Counter { name; ts; value })

(* Publish the profiler's cumulative per-category cycle totals as
   counters, so energy attribution can be recovered from any trace.
   A no-op without a profiler, and sinkless emission costs nothing —
   the zero-overhead-when-off bench assertions cover both. *)
let emit_profile_counters t ~ts =
  match t.prof with
  | None -> ()
  | Some p ->
    if t.sinks <> [] then
      List.iter
        (fun (c, cycles) ->
          counter t ~name:(Profile.counter_name c) ~ts cycles)
        (Profile.totals p)

let attach t machine =
  let prev = machine.M.on_event in
  machine.M.on_event <-
    Some
      (fun e ->
        (match prev with Some f -> f e | None -> ());
        Trace.record t.ring e;
        match (t.prof, e) with
        | Some p, Trace.Exec { pc; instr } ->
          Profile.step p ~pc ~cycles:(Amulet_mcu.Cycles.cycles instr)
        | _ -> ())

let close t =
  List.iter (fun s -> s.close ()) t.sinks;
  t.sinks <- []

(* ------------------------------------------------------------------ *)
(* Aggregated counters *)

module Metrics = struct
  type cell = {
    mutable count : int;
    mutable cycles : int;
    mutable reads : int;
    mutable writes : int;
    mutable api_calls : int;
  }

  type t = (string list, cell) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let bump t key ~count ~cycles ~reads ~writes ~api_calls =
    let cell =
      match Hashtbl.find_opt t key with
      | Some c -> c
      | None ->
        let c = { count = 0; cycles = 0; reads = 0; writes = 0; api_calls = 0 } in
        Hashtbl.add t key c;
        c
    in
    cell.count <- cell.count + count;
    cell.cycles <- cell.cycles + cycles;
    cell.reads <- cell.reads + reads;
    cell.writes <- cell.writes + writes;
    cell.api_calls <- cell.api_calls + api_calls

  let find t key = Hashtbl.find_opt t key
  let fold f (t : t) acc = Hashtbl.fold f t acc
end
