(** TA0-like hardware timer used by the benchmarks.

    The timer counts machine cycles divided by a configurable divider.
    The paper measures with "a precision of 16 cycles": benchmark code
    configures ID = /8 and IDEX = /2 for a /16 divider, then reads
    TA0R around the measured section.

    MMIO registers: TA0CTL 0x0340 (bit2 = TACLR, bits 4-5 = MC where
    nonzero means running, bits 6-7 = ID divider 1/2/4/8), TA0R 0x0350
    (current count, read-only), TA0EX0 0x0360 (extra divider 1..8). *)

type t

val ctl_addr : int
val counter_addr : int
val ex0_addr : int

val create : unit -> t
val handles : int -> bool

val mmio_write : t -> now:int -> int -> int -> unit
(** [mmio_write t ~now addr v]: [now] is the machine cycle count. *)

val mmio_read : t -> now:int -> int -> int

val divider : t -> int
(** Effective divider (ID * IDEX). *)

val running : t -> bool
