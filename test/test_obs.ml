(* Observability subsystem tests: JSON round-trips, trace sinks,
   profiler cycle-exactness, and fault forensics. *)

module Aft = Amulet_aft.Aft
module Os = Amulet_os
module Iso = Amulet_cc.Isolation
module M = Amulet_mcu.Machine
module Obs = Amulet_obs.Obs
module Json = Amulet_obs.Json
module Profile = Amulet_obs.Profile
module Summary = Amulet_obs.Summary
module Forensics = Amulet_obs.Forensics

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_contains what sub s =
  if not (contains ~sub s) then
    Alcotest.failf "%s: expected %S in:\n%s" what sub s

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("name", Json.Str "say \"hi\"\n\t\\done");
        ("n", Json.Int (-42));
        ("x", Json.Float 1.5);
        ("flags", Json.Arr [ Json.Bool true; Json.Bool false; Json.Null ]);
        ("nested", Json.Obj [ ("empty", Json.Arr []) ]);
      ]
  in
  Alcotest.(check bool)
    "parse inverts print" true
    (Json.parse (Json.to_string v) = v);
  check_int "int member" (-42)
    (match Json.member "n" (Json.parse (Json.to_string v)) with
    | Some j -> Option.value ~default:0 (Json.to_int j)
    | None -> Alcotest.fail "missing n");
  (match Json.parse "{\"a\": 1} trailing" with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "trailing garbage accepted")

let sample_records =
  [
    Obs.Span
      {
        name = "handle_accel";
        cat = "dispatch";
        ts = 100;
        dur = 250;
        tid = 0;
        args = [ ("outcome", Obs.Vstr "ok"); ("reads", Obs.Vint 12) ];
      };
    Obs.Instant
      { name = "api_read_accel"; cat = "api"; ts = 180; tid = 0; args = [] };
    Obs.Counter { name = "queue_depth"; ts = 200; value = 3 };
  ]

let test_record_roundtrip () =
  List.iter
    (fun r ->
      match Obs.record_of_json (Obs.json_of_record r) with
      | Some r' when r' = r -> ()
      | Some _ -> Alcotest.fail "record changed through json"
      | None -> Alcotest.fail "record dropped through json")
    sample_records

(* The same records must survive a full write-to-sink / parse-back trip
   in both trace formats. *)
let test_sink_roundtrip () =
  let via make_sink =
    let buf = Buffer.create 256 in
    let sink = make_sink buf in
    List.iter sink.Obs.output sample_records;
    sink.Obs.close ();
    Summary.of_string (Buffer.contents buf)
  in
  Alcotest.(check bool)
    "chrome round-trip" true
    (via Obs.chrome_buffer_sink = sample_records);
  Alcotest.(check bool)
    "jsonl round-trip" true
    (via Obs.jsonl_buffer_sink = sample_records)

(* ------------------------------------------------------------------ *)
(* Profiler *)

let counter_app =
  "int count = 0;\n\
   void handle_init(int arg) { api_subscribe(0, 10); }\n\
   void handle_accel(int arg) {\n\
  \  int buf[4];\n\
  \  int n = api_read_accel(buf, 4);\n\
  \  count += n;\n\
   }\n"

let run_profiled ~mode =
  let fw = Aft.build ~mode [ { Aft.name = "counter"; source = counter_app } ] in
  let obs = Obs.create () in
  Obs.enable_profile obs fw;
  let k = Os.Kernel.create ~scenario:Os.Sensors.Walking ~obs fw in
  let _ = Os.Kernel.run_for_ms k 1_000 in
  let p = match Obs.profile obs with Some p -> p | None -> assert false in
  (Profile.report p ~machine:k.Os.Kernel.machine, k)

let cat r c = try List.assoc c r.Profile.r_cats with Not_found -> 0

let test_profiler_exact_mpu () =
  let r, k = run_profiled ~mode:Iso.Mpu_assisted in
  check_int "classified = machine cycles" (M.cycles k.Os.Kernel.machine)
    r.Profile.r_total;
  check_int "report agrees with itself" r.Profile.r_machine r.Profile.r_total;
  check_bool "app code ran" true (cat r Profile.App_code > 0);
  check_bool "MPU reconfig cycles present" true (cat r Profile.Mpu_config > 0);
  check_bool "OS gate cycles present" true (cat r Profile.Os_gate > 0);
  let app = List.assoc "counter" (List.map (fun a -> (a.Profile.ar_app, a)) r.Profile.r_apps) in
  check_bool "per-handler cycles attributed" true
    (List.mem_assoc "handle_accel" app.Profile.ar_handlers)

let test_profiler_no_isolation_has_no_guards () =
  let r, k = run_profiled ~mode:Iso.No_isolation in
  check_int "classified = machine cycles" (M.cycles k.Os.Kernel.machine)
    r.Profile.r_total;
  check_int "no bounds guards" 0 (cat r Profile.Guard);
  check_int "no MPU reconfig" 0 (cat r Profile.Mpu_config)

(* ------------------------------------------------------------------ *)
(* Forensics *)

let victim_app =
  "int secret = 12345;\n\
   void handle_init(int arg) { api_subscribe(1, 5); }\n\
   void handle_ppg(int arg) { secret += 1; }\n"

let evil_src target_addr =
  Printf.sprintf
    "void handle_init(int arg) { api_set_timer(100); }\n\
     void handle_timer(int arg) {\n\
    \  int *p = (int*)0x%04X;\n\
    \  *p = 666;\n\
     }\n"
    target_addr

let test_forensics_on_fault () =
  (* evil writes into the victim's data region; under MPU-assisted
     isolation the dispatch faults and the kernel snapshots forensics *)
  let specs target =
    [ { Aft.name = "victim"; source = victim_app };
      { Aft.name = "evil"; source = evil_src target } ]
  in
  let probe = Aft.build ~mode:Iso.Mpu_assisted (specs 0xBEEE) in
  let secret_addr =
    Amulet_link.Image.symbol probe.Aft.fw_image "victim$secret"
  in
  let fw = Aft.build ~mode:Iso.Mpu_assisted (specs secret_addr) in
  let obs = Obs.create () in
  let k = Os.Kernel.create ~scenario:Os.Sensors.Walking ~obs fw in
  let _ = Os.Kernel.run_for_ms k 1_000 in
  let evil = Os.Kernel.app_by_name k "evil" in
  check_bool "evil faulted" true (evil.Os.Kernel.fault_count > 0);
  match evil.Os.Kernel.last_forensics with
  | None -> Alcotest.fail "no forensics captured"
  | Some dump ->
    check_contains "header" "=== fault forensics ===" dump;
    check_contains "registers" "registers:" dump;
    check_contains "mpu state" "mpu:" dump;
    check_contains "ring" "trace events (oldest first):" dump;
    (* the victim keeps incrementing its secret; what matters is that
       evil's 666 never landed *)
    check_bool "victim's secret intact" true
      (M.mem_checked_read k.Os.Kernel.machine Amulet_mcu.Word.W16 secret_addr
       >= 12345)

(* The owner annotation, on a synthetic MPU violation aimed at a known
   region. *)
let test_forensics_owner () =
  let fw =
    Aft.build ~mode:Iso.Mpu_assisted
      [ { Aft.name = "victim"; source = victim_app } ]
  in
  let obs = Obs.create () in
  let k = Os.Kernel.create ~scenario:Os.Sensors.Walking ~obs fw in
  let secret_addr = Amulet_link.Image.symbol fw.Aft.fw_image "victim$secret" in
  let stop =
    M.Faulted
      (M.Mpu_violation
         {
           access = Amulet_mcu.Mpu.Dwrite;
           addr = secret_addr;
           pc = 0x4400;
           segment = Amulet_mcu.Mpu.Seg2;
         })
  in
  let dump =
    Forensics.report ~fw ~ring:(Obs.ring obs) ~stop k.Os.Kernel.machine
  in
  check_contains "owner" "owned by app 'victim' data/stack" dump;
  check_contains "address" (Printf.sprintf "%04X" secret_addr) dump

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "value round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "record round-trip" `Quick test_record_roundtrip;
          Alcotest.test_case "sink round-trip" `Quick test_sink_roundtrip;
        ] );
      ( "profile",
        [
          Alcotest.test_case "mpu mode exact" `Quick test_profiler_exact_mpu;
          Alcotest.test_case "no-isolation has no guards" `Quick
            test_profiler_no_isolation_has_no_guards;
        ] );
      ( "forensics",
        [
          Alcotest.test_case "captured on fault" `Quick test_forensics_on_fault;
          Alcotest.test_case "owner annotation" `Quick test_forensics_owner;
        ] );
    ]
