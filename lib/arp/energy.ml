let clock_hz = 16.0e6

(* MSP430FR5969: ~100 uA/MHz at 3.0 V -> 1.6 mA at 16 MHz. *)
let active_watts = 1.6e-3 *. 3.0
let joules_per_cycle = active_watts /. clock_hz

(* 110 mAh lithium coin cell at 3.0 V. *)
let battery_joules = 0.110 *. 3.0 *. 3600.0
let baseline_lifetime_weeks = 2.0
let weekly_energy_budget_joules = battery_joules /. baseline_lifetime_weeks
let overhead_joules ~cycles = cycles *. joules_per_cycle

let battery_impact_percent ~overhead_cycles_per_week =
  overhead_joules ~cycles:overhead_cycles_per_week
  /. weekly_energy_budget_joules *. 100.0

(* ------------------------------------------------------------------ *)
(* Cycle-exact attribution: every simulated cycle the profiler
   assigns to a PC class carries the same per-cycle active energy, so
   the class split of cycles IS the class split of energy. *)

module Profile = Amulet_obs.Profile

let joules_of_cycles cycles = float_of_int cycles *. joules_per_cycle

let per_category cats =
  List.map (fun (c, cycles) -> (c, joules_of_cycles cycles)) cats

(* The classes that exist only because of isolation; app code and the
   kernel dispatch machinery run under every mode including
   no-isolation. *)
let overhead_categories = [ Profile.Guard; Profile.Os_gate; Profile.Mpu_config ]

let isolation_overhead_joules cats =
  List.fold_left
    (fun acc (c, cycles) ->
      if List.mem c overhead_categories then acc +. joules_of_cycles cycles
      else acc)
    0.0 cats

let cycles_per_week = clock_hz *. 3600.0 *. 24.0 *. 7.0

(* Extrapolate a finite run to a week of the same activity level —
   the fleet service's per-mode battery projection. *)
let battery_impact_of_run ~cycles ~duration_ms =
  if duration_ms <= 0 then 0.0
  else
    let week_ms = 7.0 *. 24.0 *. 3600.0 *. 1000.0 in
    battery_impact_percent
      ~overhead_cycles_per_week:
        (float_of_int cycles *. week_ms /. float_of_int duration_ms)

let pp_joules ppf j =
  let a = Float.abs j in
  if a >= 1.0 then Format.fprintf ppf "%.3f J" j
  else if a >= 1e-3 then Format.fprintf ppf "%.3f mJ" (j *. 1e3)
  else if a >= 1e-6 then Format.fprintf ppf "%.3f uJ" (j *. 1e6)
  else if a >= 1e-9 then Format.fprintf ppf "%.3f nJ" (j *. 1e9)
  else Format.fprintf ppf "%.3f pJ" (j *. 1e12)
