lib/link/assembler.ml: Amulet_mcu Array Asm Bytes Char Format Hashtbl List Printf String
