examples/wearable_suite.ml: Amulet_aft Amulet_apps Amulet_cc Amulet_link Amulet_mcu Amulet_os Array Buffer Format List Printf String
