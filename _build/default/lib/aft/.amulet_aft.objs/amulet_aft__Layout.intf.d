lib/aft/layout.mli: Format
