(* The paper's Section-4.2 benchmark applications.

   Each exposes [handle_button(arg)] so the experiment harness can
   trigger a measured run directly (the paper ran each 200 times and
   timed with the hardware timer; our harness reads the dispatch cycle
   counts, which come from the same simulated clock).

   - synthetic: arg 0 = empty baseline, arg 1 = memory-access loop,
     arg 2 = context-switch (api_null) loop;
   - activity: arg 1 = Activity Case 1 (window statistics),
     arg 2 = Activity Case 2 (FIR filter + energy classification);
   - quicksort: recursion and heavy memory traffic, no API calls.
     The feature-limited variant replaces recursion with an explicit
     segment stack, as AmuletC programmers must. *)

(* Memory-access iterations; 2 guarded accesses each. *)
let synthetic_mem_iters = 128
let synthetic_mem_accesses = 2 * synthetic_mem_iters
let synthetic_api_calls = 32

let synthetic =
  {|
int sink[32];
int result = 0;

void handle_init(int arg) { result = 0; }

void handle_button(int arg) {
  int i;
  int acc = 0;
  if (arg == 1) {
    for (i = 0; i < 128; i++) {
      sink[i & 31] = i;
      acc += sink[(i + 7) & 31];
    }
    result = acc;
  }
  if (arg == 2) {
    for (i = 0; i < 32; i++) api_null();
    result = i;
  }
}
|}

let window_size = 64

(* Call-dense microbenchmark for the shadow-stack ablation: 64 leaf
   calls per button event, no other work. *)
let call_count = 64

let callheavy =
  {|
int sink = 0;

int leaf(int x) { return x + 1; }

void handle_init(int arg) { sink = 0; }

void handle_button(int arg) {
  int i;
  int s = 0;
  for (i = 0; i < 64; i++) s = leaf(s);
  sink = s;
}
|}

(* Gate-dense microbenchmark for the gate-certification ablation:
   every iteration crosses the OS gate twice with a pointer argument
   the static certifier can prove in-region, so the kernel's dynamic
   range validation is pure overhead here. *)
let gate_ptr_calls = 16

let gateheavy =
  {|
int buf[16];
char msg[8];
int acc = 0;

void handle_init(int arg) { acc = 0; }

void handle_button(int arg) {
  int i;
  for (i = 0; i < 8; i++) {
    api_read_accel(buf, 8);
    acc += buf[0];
    msg[0] = 103;
    api_log_append(msg, 8);
  }
}
|}

let activity =
  {|
int win[64];
int filt[64];
int features[8];
int cls = 0;

void handle_init(int arg) { cls = 0; }

void load_window() { api_read_accel(win, 64); }

void case1() {
  int i;
  int mean = 0;
  int vmin = 32767;
  int vmax = -32768;
  for (i = 0; i < 64; i++) {
    int v = win[i];
    mean += v >> 6;
    if (v < vmin) vmin = v;
    if (v > vmax) vmax = v;
  }
  int var = 0;
  for (i = 0; i < 64; i++) {
    int d = (win[i] - mean) >> 3;
    var += (d * d) >> 6;
  }
  features[0] = mean;
  features[1] = var;
  features[2] = vmin;
  features[3] = vmax;
}

void case2() {
  int i;
  int j;
  for (i = 0; i < 64; i++) {
    int acc = 0;
    for (j = 0; j < 8; j++) {
      int k = i - j;
      if (k < 0) k = 0;
      acc += win[k] >> 3;
    }
    filt[i] = acc;
  }
  int energy = 0;
  for (i = 0; i < 64; i++) {
    int d = (filt[i] - 1000) >> 4;
    energy += (d * d) >> 6;
  }
  features[4] = energy;
  cls = energy > 50;
}

void handle_button(int arg) {
  if (arg == 1) { load_window(); case1(); }
  if (arg == 2) { load_window(); case2(); }
}
|}

let quicksort_elems = 64

(* Shared scaffolding for both quicksort variants. *)
let quicksort_common =
  {|
int data[64];
int sorted_ok = 0;
int seed = 12345;

int next_rand() {
  seed = seed * 25173 + 13849;
  return seed & 0x7FFF;
}

void fill() {
  int i;
  for (i = 0; i < 64; i++) data[i] = next_rand();
}

void verify() {
  int i;
  sorted_ok = 1;
  for (i = 1; i < 64; i++)
    if (data[i - 1] > data[i]) sorted_ok = 0;
}

void handle_init(int arg) { sorted_ok = 0; }
|}

let quicksort =
  quicksort_common
  ^ {|
void qsort_range(int lo, int hi) {
  if (lo >= hi) return;
  int pivot = data[(lo + hi) / 2];
  int i = lo;
  int j = hi;
  while (i <= j) {
    while (data[i] < pivot) i += 1;
    while (data[j] > pivot) j -= 1;
    if (i <= j) {
      int tmp = data[i];
      data[i] = data[j];
      data[j] = tmp;
      i += 1;
      j -= 1;
    }
  }
  qsort_range(lo, j);
  qsort_range(i, hi);
}

void handle_button(int arg) {
  seed = 12345;
  fill();
  qsort_range(0, 63);
  verify();
}
|}

(* Recursion-free version for the feature-limited (AmuletC) mode:
   explicit stack of pending (lo, hi) segments. *)
let quicksort_feature_limited =
  quicksort_common
  ^ {|
int seg_lo[32];
int seg_hi[32];

void qsort_iter() {
  int sp = 1;
  seg_lo[0] = 0;
  seg_hi[0] = 63;
  while (sp > 0) {
    sp -= 1;
    int lo = seg_lo[sp];
    int hi = seg_hi[sp];
    if (lo >= hi) continue;
    int pivot = data[(lo + hi) / 2];
    int i = lo;
    int j = hi;
    while (i <= j) {
      while (data[i] < pivot) i += 1;
      while (data[j] > pivot) j -= 1;
      if (i <= j) {
        int tmp = data[i];
        data[i] = data[j];
        data[j] = tmp;
        i += 1;
        j -= 1;
      }
    }
    if (sp < 31) { seg_lo[sp] = lo; seg_hi[sp] = j; sp += 1; }
    if (sp < 31) { seg_lo[sp] = i; seg_hi[sp] = hi; sp += 1; }
  }
}

void handle_button(int arg) {
  seed = 12345;
  fill();
  qsort_iter();
  verify();
}
|}
