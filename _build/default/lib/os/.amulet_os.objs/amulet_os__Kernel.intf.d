lib/os/kernel.mli: Amulet_aft Amulet_mcu Api Event Event_queue Hashtbl Sensors
