type result = Finite of int | Recursive of string list

(* Per-activation cost: frame plus the function's *measured* spill
   high-water mark and deepest runtime-helper/gate stack use, as
   recorded by codegen — no fixed worst-case slack. *)
let frame_cost (fi : Codegen.fn_info) =
  2 (* return address *) + 2 (* saved FP *)
  + (2 * fi.Codegen.fi_saved_regs)
  + fi.Codegen.fi_frame_bytes + fi.Codegen.fi_spill_bytes
  + fi.Codegen.fi_runtime_bytes

let analyze infos ~root =
  let by_name = Hashtbl.create 16 in
  List.iter (fun fi -> Hashtbl.replace by_name fi.Codegen.fi_name fi) infos;
  let memo = Hashtbl.create 16 in
  let exception Cycle of string list in
  let rec depth path name =
    if List.mem name path then begin
      (* report exactly the members of the cycle (not the lead-in from
         the root), sorted so the diagnostic is independent of
         traversal order *)
      let rec members acc = function
        | [] -> acc
        | x :: rest -> if x = name then x :: acc else members (x :: acc) rest
      in
      raise (Cycle (List.sort_uniq compare (members [] path)))
    end;
    match Hashtbl.find_opt memo name with
    | Some d -> d
    | None ->
      let d =
        match Hashtbl.find_opt by_name name with
        | None -> 0 (* external: gates account for their own stack *)
        | Some fi ->
          let children =
            List.fold_left
              (fun acc callee -> max acc (depth (name :: path) callee))
              0 fi.Codegen.fi_calls
          in
          frame_cost fi + children
      in
      Hashtbl.replace memo name d;
      d
  in
  try Finite (depth [] root) with Cycle c -> Recursive c

let worst_case infos ~roots ~default =
  List.fold_left
    (fun acc root ->
      match analyze infos ~root with
      | Finite d -> max acc d
      | Recursive _ -> max acc default)
    0 roots
