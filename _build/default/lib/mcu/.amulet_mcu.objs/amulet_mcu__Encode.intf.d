lib/mcu/encode.mli: Opcode Word
