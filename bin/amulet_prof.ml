(* amulet_prof: read a trace written by `amulet_sim --trace` (Chrome
   trace_event JSON or JSONL) and print reports:

     report  — span statistics (count/total/avg/p50/p99/max), counter
               maxima/percentiles, instant counts, faults
     energy  — cycle-exact energy attribution per PC class, recovered
               from the profile.<class>.cycles counters the kernel
               publishes at every dispatch boundary, with a weekly
               battery-impact extrapolation

   JSONL traces stream through the aggregator line by line, so
   arbitrarily long runs are summarised in constant memory. *)

module Summary = Amulet_obs.Summary
module Agg = Amulet_obs.Agg
module Profile = Amulet_obs.Profile
module Energy = Amulet_arp.Energy

let with_trace file f =
  try
    let ic = open_in_bin file in
    let agg =
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          Summary.agg_of_channel ic)
    in
    if Agg.records agg = 0 then begin
      Format.eprintf "%s: no trace records found@." file;
      1
    end
    else f agg
  with
  | Sys_error msg ->
    Format.eprintf "%s@." msg;
    1
  | Amulet_obs.Json.Parse_error msg ->
    Format.eprintf "%s: malformed trace: %s@." file msg;
    1

let report_cmd file =
  with_trace file (fun agg ->
      Format.printf "%a" Summary.pp_agg agg;
      0)

(* Final value of each profile.<class>.cycles counter = the class's
   cumulative cycle total at the last dispatch of the trace.  Classes
   whose counter the trace never carried (older recordings predate
   some categories) come back in [missing] so the report can say the
   attribution is partial instead of silently attributing 0. *)
let class_cycles agg =
  List.partition_map
    (fun c ->
      match Agg.counter agg (Profile.counter_name c) with
      | Some cnt -> Left (c, cnt.Agg.c_last)
      | None -> Right c)
    Profile.categories

let energy_cmd file =
  with_trace file (fun agg ->
      match class_cycles agg with
      | [], _ ->
        Format.eprintf
          "%s: no profile.<class>.cycles counters — record the trace with \
           `amulet_sim --profile --trace ...`@."
          file;
        1
      | cats, missing ->
        let total_cycles = List.fold_left (fun a (_, c) -> a + c) 0 cats in
        let energies = Energy.per_category cats in
        Format.printf "energy attribution (%d attributed cycles, %.1f ms at \
                       %.0f MHz):@."
          total_cycles
          (float_of_int total_cycles /. Energy.clock_hz *. 1e3)
          (Energy.clock_hz /. 1e6);
        let joules_str j = Format.asprintf "%a" Energy.pp_joules j in
        List.iter
          (fun ((cat, cycles), (_, joules)) ->
            Format.printf "  %-14s %12d cycles  %12s  (%5.1f %%)@."
              (Profile.category_name cat)
              cycles (joules_str joules)
              (if total_cycles = 0 then 0.0
               else 100.0 *. float_of_int cycles /. float_of_int total_cycles))
          (List.combine cats energies);
        let overhead_j = Energy.isolation_overhead_joules cats in
        let overhead_cycles =
          List.fold_left
            (fun acc (c, cycles) ->
              if List.mem c Energy.overhead_categories then acc + cycles
              else acc)
            0 cats
        in
        Format.printf "  %-14s %12d cycles  %12s  (isolation overhead)@."
          "guards+gates+MPU" overhead_cycles (joules_str overhead_j);
        if missing <> [] then
          Format.printf
            "warning: trace carries no counter for: %s — attribution is \
             partial (older trace format?)@."
            (String.concat ", " (List.map Profile.category_name missing));
        (* extrapolate the overhead share to a week of wall time *)
        (match Agg.time_range agg with
        | Some (lo, hi) when hi > lo ->
          let elapsed = float_of_int (hi - lo) in
          let per_week =
            float_of_int overhead_cycles *. Energy.cycles_per_week /. elapsed
          in
          Format.printf
            "projected isolation overhead: %.3f Gcycles/week, battery impact \
             %.4f %% (paper bound: < 0.5 %%)@."
            (per_week /. 1e9)
            (Energy.battery_impact_percent ~overhead_cycles_per_week:per_week)
        | _ -> ());
        0)

open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"TRACE" ~doc:"Trace file (Chrome JSON or JSONL).")

let report =
  let doc = "aggregate a trace into per-span/counter statistics" in
  Cmd.v (Cmd.info "report" ~doc) Term.(const report_cmd $ file_arg)

let energy =
  let doc = "attribute energy to PC classes from a profiled trace" in
  Cmd.v (Cmd.info "energy" ~doc) Term.(const energy_cmd $ file_arg)

let cmd =
  let doc = "inspect amulet_sim execution traces" in
  Cmd.group (Cmd.info "amulet_prof" ~doc) [ report; energy ]

let () = exit (Cmd.eval' cmd)
