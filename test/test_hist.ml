(* Histogram properties: quantiles against an exact-sort oracle,
   lossless associative/commutative merge, JSON round-trip, and exact
   bookkeeping of count/sum/min/max. *)

module Hist = Amulet_obs.Hist

let of_list xs =
  let h = Hist.create () in
  List.iter (Hist.record h) xs;
  h

(* Mixed magnitudes: unit buckets (< 64), mid-range, and large values
   where the log-bucket approximation actually kicks in. *)
let gen_value =
  QCheck.Gen.(
    oneof
      [
        int_bound 63;
        int_bound 10_000;
        map (fun x -> x * 1_000) (int_bound 1_000_000);
      ])

let arb_values =
  QCheck.make
    ~print:(fun xs -> String.concat ";" (List.map string_of_int xs))
    QCheck.Gen.(list_size (1 -- 300) gen_value)

let quantile_points = [ 0.0; 0.01; 0.25; 0.5; 0.9; 0.99; 1.0 ]

(* The histogram answers with a bucket midpoint; buckets above the
   linear range are at most 1/32 of their lower bound wide, so the
   answer is within value/32 of the exact order statistic (and exact
   below 64).  Assert the looser value/8 + 1. *)
let prop_quantile_oracle =
  QCheck.Test.make ~count:300 ~name:"quantile matches exact-sort oracle"
    arb_values (fun xs ->
      let h = of_list xs in
      let arr = Array.of_list (List.sort compare xs) in
      let n = Array.length arr in
      List.for_all
        (fun q ->
          let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
          let exact = arr.(rank - 1) in
          let got = Hist.quantile h q in
          abs (got - exact) <= (exact / 8) + 1)
        quantile_points)

let prop_merge_commutative =
  QCheck.Test.make ~count:200 ~name:"merge is commutative"
    (QCheck.pair arb_values arb_values) (fun (xs, ys) ->
      let a = of_list xs and b = of_list ys in
      Hist.equal (Hist.merge a b) (Hist.merge b a))

let prop_merge_associative =
  QCheck.Test.make ~count:200 ~name:"merge is associative"
    (QCheck.triple arb_values arb_values arb_values) (fun (xs, ys, zs) ->
      let a = of_list xs and b = of_list ys and c = of_list zs in
      Hist.equal
        (Hist.merge (Hist.merge a b) c)
        (Hist.merge a (Hist.merge b c)))

(* Lossless: merging two shards is indistinguishable from having
   recorded the combined stream into one histogram. *)
let prop_merge_lossless =
  QCheck.Test.make ~count:200 ~name:"merge = histogram of concatenation"
    (QCheck.pair arb_values arb_values) (fun (xs, ys) ->
      Hist.equal (of_list (xs @ ys)) (Hist.merge (of_list xs) (of_list ys)))

let prop_json_roundtrip =
  QCheck.Test.make ~count:200 ~name:"of_json inverts to_json" arb_values
    (fun xs ->
      let h = of_list xs in
      match Hist.of_json (Hist.to_json h) with
      | Some h' -> Hist.equal h h'
      | None -> QCheck.Test.fail_report "round-trip failed")

let prop_exact_stats =
  QCheck.Test.make ~count:200 ~name:"count/sum/min/max are exact" arb_values
    (fun xs ->
      let h = of_list xs in
      Hist.count h = List.length xs
      && Hist.sum h = List.fold_left ( + ) 0 xs
      && Hist.min_value h = List.fold_left min max_int xs
      && Hist.max_value h = List.fold_left max 0 xs)

let test_empty () =
  let h = Hist.create () in
  Alcotest.(check bool) "fresh is empty" true (Hist.is_empty h);
  Alcotest.(check int) "quantile of empty" 0 (Hist.quantile h 0.5);
  Alcotest.(check bool)
    "merging empties stays empty" true
    (Hist.is_empty (Hist.merge h (Hist.create ())))

let test_record_n () =
  let a = Hist.create () and b = Hist.create () in
  Hist.record_n a 1000 ~n:5;
  for _ = 1 to 5 do
    Hist.record b 1000
  done;
  Alcotest.(check bool) "record_n = repeated record" true (Hist.equal a b)

let test_small_values_exact () =
  (* below the linear limit every value has its own bucket *)
  let h = of_list [ 3; 3; 7; 12; 60 ] in
  Alcotest.(check int) "p50 exact" 7 (Hist.quantile h 0.5);
  Alcotest.(check int) "p100 exact" 60 (Hist.quantile h 1.0);
  Alcotest.(check int) "p1 exact" 3 (Hist.quantile h 0.01)

(* q = 0.0 and q = 1.0 must pin to the extreme samples, including for
   large values where bucketing is lossy: the histogram keeps exact
   min/max alongside the buckets, so the endpoints must not drift to a
   bucket midpoint. *)
let test_quantile_endpoints () =
  let h = of_list [ 5; 123_456; 999_999_937 ] in
  Alcotest.(check int) "q=0.0 is the minimum" (Hist.min_value h)
    (Hist.quantile h 0.0);
  Alcotest.(check int) "q=1.0 is the maximum" (Hist.max_value h)
    (Hist.quantile h 1.0);
  Alcotest.(check int) "q=0.0 exact" 5 (Hist.quantile h 0.0);
  Alcotest.(check int) "q=1.0 exact" 999_999_937 (Hist.quantile h 1.0)

let test_merge_with_empty () =
  let h = of_list [ 42; 7; 100_000 ] in
  let e = Hist.create () in
  Alcotest.(check bool) "h ∪ ∅ = h" true (Hist.equal h (Hist.merge h e));
  Alcotest.(check bool) "∅ ∪ h = h" true (Hist.equal h (Hist.merge e h));
  (* merge must not mutate its arguments *)
  Alcotest.(check bool) "∅ untouched by merge" true (Hist.is_empty e);
  Alcotest.(check int) "h untouched by merge" 3 (Hist.count h)

let test_single_sample () =
  let h = of_list [ 77_000 ] in
  Alcotest.(check int) "count" 1 (Hist.count h);
  Alcotest.(check int) "sum" 77_000 (Hist.sum h);
  Alcotest.(check int) "min = the sample" 77_000 (Hist.min_value h);
  Alcotest.(check int) "max = the sample" 77_000 (Hist.max_value h);
  (* every quantile of a one-sample distribution is that sample up to
     bucket resolution; the endpoints are exact *)
  Alcotest.(check int) "q=0.0" 77_000 (Hist.quantile h 0.0);
  Alcotest.(check int) "q=1.0" 77_000 (Hist.quantile h 1.0);
  let p50 = Hist.quantile h 0.5 in
  Alcotest.(check bool) "p50 within bucket width" true
    (abs (p50 - 77_000) <= (77_000 / 8) + 1);
  let a = of_list [ 9 ] and b = of_list [ 9 ] in
  Alcotest.(check bool) "two singletons merge losslessly" true
    (Hist.equal (of_list [ 9; 9 ]) (Hist.merge a b))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "hist"
    [
      ( "properties",
        [
          q prop_quantile_oracle;
          q prop_merge_commutative;
          q prop_merge_associative;
          q prop_merge_lossless;
          q prop_json_roundtrip;
          q prop_exact_stats;
        ] );
      ( "units",
        [
          Alcotest.test_case "empty histogram" `Quick test_empty;
          Alcotest.test_case "record_n" `Quick test_record_n;
          Alcotest.test_case "small values exact" `Quick
            test_small_values_exact;
          Alcotest.test_case "quantile endpoints" `Quick
            test_quantile_endpoints;
          Alcotest.test_case "merge with empty" `Quick test_merge_with_empty;
          Alcotest.test_case "single sample" `Quick test_single_sample;
        ] );
    ]
