lib/cc/apis.ml: Ctype List
