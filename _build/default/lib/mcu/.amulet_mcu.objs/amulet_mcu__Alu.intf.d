lib/mcu/alu.mli: Opcode Word
