(** Static worst-case execution time over the certified binary.

    Computes, per app function and per event handler, an upper bound
    on the cycles one dispatch can consume — including every isolation
    artifact the binary actually contains: guard sequences and fault
    stubs, the mode's trampoline and exit/[__osreturn] stubs, gate
    stubs plus the kernel's worst-case service charge, and runtime
    helper calls.

    The machinery is longest-path over the CFI-reconstructed CFG after
    collapsing natural loops innermost-first ({!Loopbound}).  A loop
    whose header carries a stamped iteration bound (a
    [wcet.loop.<label>] image note, produced by the source-level
    range analysis through codegen and the AFT) is replaced by a
    single node costing [(B + 1) * P] where [B] is the maximum number
    of body executions per entry and [P] the longest acyclic path
    through the body — the [+ 1] covers the final failing condition
    test of while-style loops (and over-approximates do-while loops by
    one test, which is sound).  A loop with no stamped bound, an
    irreducible region, or a recursive call cycle yields
    {!verdict.Unbounded} with a call-chain witness instead of a
    number; the analysis never rejects an image.

    Soundness contract (asserted by [test_wcet] and CI): for every
    dispatch the kernel records, [dr_cycles <= bound] whenever the
    handler's verdict is [Bounded].  The dynamic count includes the
    kernel's per-service charge cycles, which the static side covers
    with {!Amulet_cc.Apis.worst_case_charge}. *)

type verdict =
  | Bounded of int  (** cycles, kernel service charges included *)
  | Unbounded of { reason : string; chain : string list }
      (** [chain] is the call path from the analysed root down to the
          defeating construct, root first *)

type func_bound = {
  fb_name : string;  (** mangled symbol, as in {!Cfi.func.f_name} *)
  fb_verdict : verdict;
  fb_loops : int;  (** natural loops in this function's CFG *)
  fb_bounded_loops : int;  (** of which carry a stamped bound *)
}

type handler_bound = {
  hb_handler : string;  (** unmangled entry point, e.g. [handle_timer] *)
  hb_fn : verdict;  (** the handler function body alone *)
  hb_dispatch : verdict;
      (** mode overhead outside the function: trampoline span plus
          exit-stub/[__osreturn] span through the final halt write *)
  hb_total : verdict;
      (** what [dr_cycles] is bounded by: function plus dispatch *)
}

type t = {
  w_prefix : string;
  w_mode : Amulet_cc.Isolation.mode;
  w_funcs : func_bound list;
  w_handlers : handler_bound list;
  w_loops : int;  (** loops across all app functions *)
  w_bounded_loops : int;
}

val loop_bounds : Amulet_link.Image.t -> (int, int) Hashtbl.t
(** The [wcet.loop.<label>] notes of an image, keyed by the header
    label's resolved address: max body executions per loop entry.
    Notes whose label no longer resolves are dropped. *)

val analyze : image:Amulet_link.Image.t -> cfg:Cfi.t -> t
(** [cfg] is a successful {!Cfi.reconstruct} result for the same
    image; the WCET pass is only meaningful on CFI-certified code. *)

val handler_bound : t -> string -> verdict option
(** Total-dispatch verdict for an unmangled handler name. *)

val pp_verdict : Format.formatter -> verdict -> unit
