lib/apps/suite.ml: Amulet_aft Amulet_cc App_sources Bench_sources Extra_sources List
