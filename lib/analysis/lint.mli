(** Whole-image static certifier: runs the SFI verifier, CFI
    reconstruction, the binary stack bound ({!Stackcert}) and
    gate-argument provenance ({!Gate_taint}) over every app section of
    a linked firmware and folds the outcomes into one diagnostic
    report.  [bin/amulet_lint] renders it; the AFT consumes
    {!certified_gates} to stamp certification notes into the image. *)

type severity = Note | Warn | Error

type diag = {
  d_app : string;  (** "" for image-level diagnostics *)
  d_pass : string;
      (** "image" | "sfi" | "cfi" | "stackcert" | "gates" | "wcet"
          | "proof" *)
  d_severity : severity;
  d_addr : int option;
  d_message : string;
}

type app_report = {
  r_app : string;
  r_sfi : (Verifier.stats, Verifier.violation list) result;
  r_cfi : (Cfi.t, Cfi.violation list) result;
  r_stack : Stackcert.verdict option;  (** [None] when CFI failed *)
  r_gates : Gate_taint.t option;
  r_certified : string list;
      (** services whose dynamic gate-pointer validation is provably
          redundant for this app (requires the CFI proof and a mode
          that keeps app code immutable) *)
  r_wcet : Wcet.t option;  (** [None] when CFI failed *)
}

type report = {
  l_mode : Amulet_cc.Isolation.mode;
  l_apps : app_report list;
  l_diags : diag list;
  l_errors : int;
  l_warnings : int;
}

val apps_of : Amulet_link.Image.t -> string list
(** App prefixes in the image, in address order, from the linker's
    [<prefix>_code__start] symbols (the OS section excluded). *)

val run :
  image:Amulet_link.Image.t ->
  mode:Amulet_cc.Isolation.mode ->
  apps:string list ->
  report
(** An empty [apps] list yields a single image-level error diagnostic
    (a firmware with nothing to certify must not pass vacuously). *)

val certified_gates :
  image:Amulet_link.Image.t ->
  mode:Amulet_cc.Isolation.mode ->
  prefix:string ->
  string list

val severity_name : severity -> string
val pp_diag : Format.formatter -> diag -> unit
