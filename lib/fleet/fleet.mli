(** The fleet service: N independent devices scheduled over domains
    with {!Sched}, folded into per-domain shard accumulators and
    merged losslessly into one aggregate summary.

    Determinism contract: the aggregate ({!summary_json}) is a pure
    function of (scenario, seed) — device results are schedule-
    independent ({!Device}), shards combine with associative and
    commutative merges ({!Amulet_obs.Hist.merge} plus exact integer
    sums), and {!run} asserts the merge is order-independent by
    folding the shards in both directions and comparing.  Host wall
    time and the jobs count are reported separately and never enter
    the aggregate. *)

type mode_agg = {
  ma_mode : Amulet_cc.Isolation.mode;
  ma_devices : int;
  ma_dispatches : int;
  ma_no_handler : int;
  ma_faults : int;
  ma_unrecovered : int;
  ma_api_calls : int;
  ma_cycles : int;  (** simulated cycles, summed exactly *)
  ma_dispatch : Amulet_obs.Hist.t;  (** cycles per dispatch *)
  ma_latency : Amulet_obs.Hist.t;  (** queue latency per dispatch *)
  ma_oracle_failures : int;  (** devices with a non-empty oracle verdict *)
}

(** One worker domain's accumulator. *)
type shard

val shard_empty : unit -> shard

val shard_record : shard -> Device.result -> unit
(** Fold one device in (mutates the shard; worker-local). *)

val shard_merge : shard -> shard -> shard
(** Pure, associative, commutative and lossless — bucket-for-bucket
    the shard of the concatenated device streams. *)

val shard_equal : shard -> shard -> bool
val shard_modes : shard -> mode_agg list
(** In {!Amulet_cc.Isolation.all} order; empty modes omitted. *)

val shard_violations : shard -> string list
(** Sorted; complete (each device contributes at most two entries). *)

type summary = {
  fs_scenario : Scenario.t;
  fs_seed : int;
  fs_jobs : int;
  fs_modes : mode_agg list;
  fs_devices : int;
  fs_dispatches : int;
  fs_oracle_failures : int;
  fs_violations : string list;
  fs_elapsed_s : float;  (** host wall clock; excluded from the JSON *)
}

val run :
  ?jobs:int ->
  ?progress:Sched.progress ->
  ?seed:int ->
  Scenario.t ->
  summary
(** Build one firmware per mode of the mix (shared read-only across
    domains), run every device through {!Sched.fold_shards}, merge
    and cross-check the shards.  [seed] defaults to the scenario's.
    [jobs <= 0] means {!Sched.default_jobs}. *)

val ok : summary -> bool
(** Zero isolation-oracle violations. *)

val summary_json : summary -> Amulet_obs.Json.t
(** Deterministic aggregate: bit-identical across two runs of the
    same scenario+seed, whatever [jobs] was.  Includes per-mode
    p50/p99 dispatch and latency cycles, faults and cycles per
    device-second, and energy via {!Amulet_arp.Energy}. *)

val pp : Format.formatter -> summary -> unit
(** Console table plus host throughput (devices/sec, simulated
    cycles/sec) and the oracle verdict. *)
