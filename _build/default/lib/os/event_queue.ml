type heap = Leaf | Node of int * Event.t * heap * heap (* rank, min at root *)

type t = { mutable heap : heap; mutable seq : int; mutable count : int }

let create () = { heap = Leaf; seq = 0; count = 0 }
let is_empty t = t.heap = Leaf
let size t = t.count

let before (a : Event.t) (b : Event.t) =
  a.Event.at < b.Event.at || (a.Event.at = b.Event.at && a.Event.seq < b.Event.seq)

let rank = function Leaf -> 0 | Node (r, _, _, _) -> r

let make v l r =
  if rank l >= rank r then Node (rank r + 1, v, l, r) else Node (rank l + 1, v, r, l)

let rec merge a b =
  match (a, b) with
  | Leaf, h | h, Leaf -> h
  | Node (_, va, la, ra), Node (_, vb, lb, rb) ->
    if before va vb then make va la (merge ra b)
    else make vb lb (merge rb a)

let push t ~at ~app kind ~arg =
  let e = { Event.at; seq = t.seq; app; kind; arg } in
  t.seq <- t.seq + 1;
  t.count <- t.count + 1;
  t.heap <- merge t.heap (Node (1, e, Leaf, Leaf))

let pop t =
  match t.heap with
  | Leaf -> None
  | Node (_, v, l, r) ->
    t.heap <- merge l r;
    t.count <- t.count - 1;
    Some v

let peek t = match t.heap with Leaf -> None | Node (_, v, _, _) -> Some v

let clear_app t app =
  let rec collect acc = function
    | Leaf -> acc
    | Node (_, v, l, r) -> collect (collect (v :: acc) l) r
  in
  let all = collect [] t.heap in
  let keep = List.filter (fun e -> e.Event.app <> app) all in
  t.heap <- Leaf;
  t.count <- 0;
  List.iter
    (fun (e : Event.t) ->
      t.count <- t.count + 1;
      t.heap <- merge t.heap (Node (1, e, Leaf, Leaf)))
    keep
