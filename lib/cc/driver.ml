type compiled = {
  prefix : string;
  mode : Isolation.mode;
  code : Amulet_link.Asm.item list;
  data : Amulet_link.Asm.item list;
  infos : Codegen.fn_info list;
  handlers : string list;
  api_gates : string list;
  stack_bytes : int;
  recursive : bool;
  loops : (string * int) list;
}

let default_stack_bytes = 512

let compile ~prefix ~mode ?(shadow = false) ?analyze ?loop_bounds
    ?(extra_externals = []) source =
  let ast = Parser.parse source in
  Feature_check.check ~mode ast;
  let externals =
    Runtime.builtin_externals @ Apis.signatures @ extra_externals
  in
  let tast = Typecheck.check ~externals ast in
  (* the range analysis runs between type checking and code generation
     and may itself reject proven-out-of-bounds accesses *)
  let classify = Option.map (fun f -> f tast) analyze in
  let loop_bound = Option.map (fun f -> f tast) loop_bounds in
  let out = Codegen.gen_program ~prefix ~mode ~shadow ?classify ?loop_bound tast in
  let roots =
    let mains =
      List.filter_map
        (fun fi ->
          if fi.Codegen.fi_name = "main" then Some fi.Codegen.fi_name
          else None)
        out.Codegen.infos
    in
    out.Codegen.handlers @ mains
  in
  let recursive =
    List.exists
      (fun root ->
        match Stack_depth.analyze out.Codegen.infos ~root with
        | Stack_depth.Recursive _ -> true
        | Stack_depth.Finite _ -> false)
      roots
  in
  let stack_bytes =
    max 64
      (Stack_depth.worst_case out.Codegen.infos ~roots
         ~default:default_stack_bytes)
  in
  let api_gates =
    List.sort_uniq compare
      (List.concat_map (fun fi -> fi.Codegen.fi_api_calls) out.Codegen.infos)
  in
  {
    prefix;
    mode;
    code = out.Codegen.code;
    data = out.Codegen.data;
    infos = out.Codegen.infos;
    handlers = out.Codegen.handlers;
    api_gates;
    stack_bytes;
    recursive;
    loops = out.Codegen.loops;
  }
