(* amulet_objdump: build a firmware from WearC sources and print the
   disassembly of its sections — handy for inspecting exactly which
   checks each isolation mode inserts. *)

module Iso = Amulet_cc.Isolation
module Aft = Amulet_aft.Aft
module Apps = Amulet_apps.Suite

let mode_conv =
  let parse s =
    match Iso.of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg "expected one of: none, amuletc, software, mpu")
  in
  Cmdliner.Arg.conv (parse, fun ppf m -> Format.fprintf ppf "%s" (Iso.name m))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let spec_of mode arg =
  match List.find_opt (fun (a : Apps.app) -> a.Apps.name = arg) Apps.all with
  | Some app -> Apps.spec_for mode app
  | None ->
    {
      Aft.name = Filename.remove_extension (Filename.basename arg);
      source = read_file arg;
    }

(* --cfg: print each app's reconstructed control-flow graph (basic
   blocks with cycle counts and successor edges) instead of the linear
   disassembly, reusing the CFI pass so what is shown is exactly what
   the certifier proved over. *)
let dump_cfg fw mode =
  List.fold_left
    (fun rc ab ->
      let prefix = ab.Aft.ab_name in
      Format.printf "@.; ==== %s control-flow graph ====@." prefix;
      match
        Amulet_analysis.Cfi.reconstruct ~image:fw.Aft.fw_image ~mode ~prefix
      with
      | Ok cfg ->
        Format.printf "%a" Amulet_analysis.Cfi.pp_cfg cfg;
        rc
      | Error vs ->
        List.iter
          (fun v ->
            Format.printf "; CFI violation: %a@."
              Amulet_analysis.Cfi.pp_violation v)
          vs;
        1)
    0 fw.Aft.fw_apps

let dump_cmd mode os_too cfg apps =
  try
    let specs = List.map (spec_of mode) apps in
    let fw = Aft.build ~mode specs in
    if cfg then dump_cfg fw mode
    else begin
    let machine = Amulet_mcu.Machine.create () in
    Amulet_link.Image.load fw.Aft.fw_image machine;
    let fetch a = Amulet_mcu.Machine.mem_checked_read machine Amulet_mcu.Word.W16 a in
    let symbols = fw.Aft.fw_image.Amulet_link.Image.symbols in
    (* per-function check statistics, shown next to the function label *)
    let fn_stats = Hashtbl.create 32 in
    List.iter
      (fun ab ->
        List.iter
          (fun fi ->
            let mangled =
              Iso.mangle ~prefix:ab.Aft.ab_name
                fi.Amulet_cc.Codegen.fi_name
            in
            match List.assoc_opt mangled symbols with
            | Some addr -> Hashtbl.replace fn_stats addr fi
            | None -> ())
          ab.Aft.ab_compiled.Amulet_cc.Driver.infos)
      fw.Aft.fw_apps;
    let dump title lo hi =
      Format.printf "@.; ---- %s (%04X..%04X) ----@." title lo hi;
      List.iter
        (fun (line : Amulet_mcu.Disasm.line) ->
          (match Hashtbl.find_opt fn_stats line.Amulet_mcu.Disasm.addr with
          | Some fi ->
            Hashtbl.remove fn_stats line.Amulet_mcu.Disasm.addr;
            let s = fi.Amulet_cc.Codegen.fi_sites in
            Format.printf "; %s: %d checked, %d elided, %d static sites@."
              fi.Amulet_cc.Codegen.fi_name s.Amulet_cc.Codegen.checked
              s.Amulet_cc.Codegen.elided fi.Amulet_cc.Codegen.fi_static_sites
          | None -> ());
          Format.printf "%a@." Amulet_mcu.Disasm.pp_line line)
        (Amulet_mcu.Disasm.range ~symbols ~fetch ~lo ~hi ())
    in
    if os_too then
      dump "os_code" fw.Aft.fw_layout.Amulet_aft.Layout.os_code_base
        (fw.Aft.fw_layout.Amulet_aft.Layout.os_code_base
        + fw.Aft.fw_layout.Amulet_aft.Layout.os_code_size);
    List.iter
      (fun (a : Amulet_aft.Layout.app_layout) ->
        dump (a.Amulet_aft.Layout.name ^ " code") a.Amulet_aft.Layout.code_base
          (a.Amulet_aft.Layout.code_base + a.Amulet_aft.Layout.code_size))
        fw.Aft.fw_layout.Amulet_aft.Layout.apps;
      0
    end
  with
  | Amulet_cc.Srcloc.Error (loc, msg) ->
    Format.eprintf "error at %a: %s@." Amulet_cc.Srcloc.pp loc msg;
    1
  | Aft.Build_error msg ->
    Format.eprintf "build error: %s@." msg;
    1
  | Sys_error msg ->
    Format.eprintf "%s@." msg;
    1

open Cmdliner

let mode_arg =
  Arg.(
    value
    & opt mode_conv Iso.Mpu_assisted
    & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"Isolation mode.")

let os_arg =
  Arg.(value & flag & info [ "os" ] ~doc:"Also disassemble the OS code section.")

let cfg_arg =
  Arg.(
    value & flag
    & info [ "cfg" ]
        ~doc:
          "Print each app's reconstructed control-flow graph (basic blocks \
           with cycle counts and successors) instead of the disassembly.")

let apps_arg =
  Arg.(
    non_empty & pos_all string []
    & info [] ~docv:"APP" ~doc:"Suite app name or WearC source path.")

let cmd =
  let doc = "disassemble a built firmware image" in
  Cmd.v
    (Cmd.info "amulet_objdump" ~doc)
    Term.(const dump_cmd $ mode_arg $ os_arg $ cfg_arg $ apps_arg)

let () = exit (Cmd.eval' cmd)
