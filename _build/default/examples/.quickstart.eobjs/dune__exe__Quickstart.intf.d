examples/quickstart.mli:
