(* OS/kernel integration tests: full firmware builds dispatched by the
   kernel model, including cross-app isolation attacks. *)

module Aft = Amulet_aft.Aft
module Layout = Amulet_aft.Layout
module Os = Amulet_os
module Iso = Amulet_cc.Isolation
module M = Amulet_mcu.Machine
module W = Amulet_mcu.Word

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let counter_app =
  "int count = 0;\n\
   int samples = 0;\n\
   void handle_init(int arg) { api_subscribe(0, 10); api_set_timer(500); }\n\
   void handle_accel(int arg) {\n\
  \  int buf[4];\n\
  \  int n = api_read_accel(buf, 4);\n\
  \  samples += n;\n\
  \  count += 1;\n\
   }\n\
   void handle_timer(int arg) { api_display_write(\"tick\", 0); }\n"

let read_global k app_name sym =
  let t = k in
  let addr =
    Amulet_link.Image.symbol t.Os.Kernel.fw.Aft.fw_image (app_name ^ "$" ^ sym)
  in
  M.mem_checked_read t.Os.Kernel.machine W.W16 addr

let build_one ?(mode = Iso.Mpu_assisted) source name =
  Aft.build ~mode [ { Aft.name; source } ]

let test_boot_and_init () =
  let fw = build_one counter_app "counter" in
  let k = Os.Kernel.create ~scenario:Os.Sensors.Walking fw in
  let records = Os.Kernel.run_for_ms k 10 in
  (* init must have run cleanly *)
  check_bool "has init dispatch" true
    (List.exists (fun r -> r.Os.Kernel.dr_kind = Os.Event.Init) records);
  List.iter
    (fun r ->
      match r.Os.Kernel.dr_outcome with
      | Os.Kernel.Ok -> ()
      | Os.Kernel.No_handler -> ()
      | Os.Kernel.App_fault m -> Alcotest.failf "fault: %s" m)
    records

let test_subscription_rate () =
  let fw = build_one counter_app "counter" in
  let k = Os.Kernel.create ~scenario:Os.Sensors.Walking fw in
  let _ = Os.Kernel.run_for_ms k 2_000 in
  let count = read_global k "counter" "count" in
  (* 10 Hz for 2 s: ~20 accel events (init at t=0, first sample 100ms) *)
  check_bool "accel events delivered" true (count >= 15 && count <= 21);
  let samples = read_global k "counter" "samples" in
  check_int "4 samples per event" (count * 4) samples

let test_timer_and_display () =
  let fw = build_one counter_app "counter" in
  let k = Os.Kernel.create ~scenario:Os.Sensors.Resting fw in
  let _ = Os.Kernel.run_for_ms k 1_200 in
  Alcotest.(check string) "display written" "tick" (Os.Kernel.display_line k 0)

let test_all_modes_dispatch () =
  List.iter
    (fun mode ->
      let fw = build_one ~mode counter_app "counter" in
      let k = Os.Kernel.create ~scenario:Os.Sensors.Walking fw in
      let _ = Os.Kernel.run_for_ms k 1_000 in
      let app = Os.Kernel.app_by_name k "counter" in
      check_bool
        (Iso.name mode ^ ": app still enabled")
        true app.Os.Kernel.enabled;
      let count = read_global k "counter" "count" in
      check_bool (Iso.name mode ^ ": events flowed") true (count >= 5))
    Iso.all

(* Two apps; the "evil" one tries to write into its neighbour's data. *)
let victim_app =
  "int secret = 12345;\n\
   int beats = 0;\n\
   void handle_init(int arg) { api_subscribe(1, 5); }\n\
   void handle_ppg(int arg) { beats += 1; }\n"

let evil_src ~target_addr =
  Printf.sprintf
    "int probes = 0;\n\
     void handle_init(int arg) { api_set_timer(100); }\n\
     void handle_timer(int arg) {\n\
    \  int *p = (int*)0x%04X;\n\
    \  *p = 666;\n\
    \  probes += 1;\n\
     }\n"
    target_addr

let build_pair ~mode ~evil_first =
  (* two-phase: placeholder build to learn the victim's secret address,
     then the real build with the attack aimed at it *)
  let probe =
    let specs =
      if evil_first then
        [ { Aft.name = "evil"; source = evil_src ~target_addr:0xBEEE };
          { Aft.name = "victim"; source = victim_app } ]
      else
        [ { Aft.name = "victim"; source = victim_app };
          { Aft.name = "evil"; source = evil_src ~target_addr:0xBEEE } ]
    in
    Aft.build ~mode specs
  in
  let secret_addr =
    Amulet_link.Image.symbol probe.Aft.fw_image "victim$secret"
  in
  let specs =
    if evil_first then
      [ { Aft.name = "evil"; source = evil_src ~target_addr:secret_addr };
        { Aft.name = "victim"; source = victim_app } ]
    else
      [ { Aft.name = "victim"; source = victim_app };
        { Aft.name = "evil"; source = evil_src ~target_addr:secret_addr } ]
  in
  let fw = Aft.build ~mode specs in
  (* the attack address must be identical in both builds *)
  let addr2 = Amulet_link.Image.symbol fw.Aft.fw_image "victim$secret" in
  assert (addr2 = secret_addr);
  (fw, secret_addr)

let run_attack ~mode ~evil_first =
  let fw, secret_addr = build_pair ~mode ~evil_first in
  let k = Os.Kernel.create ~scenario:Os.Sensors.Resting fw in
  let _ = Os.Kernel.run_for_ms k 500 in
  let evil = Os.Kernel.app_by_name k "evil" in
  let victim = Os.Kernel.app_by_name k "victim" in
  let secret = M.mem_checked_read k.Os.Kernel.machine W.W16 secret_addr in
  (evil, victim, secret)

let test_attack_blocked_mpu_above () =
  (* evil below victim: victim's region is above evil -> MPU seg3 *)
  let evil, victim, secret =
    run_attack ~mode:Iso.Mpu_assisted ~evil_first:true
  in
  check_int "secret intact" 12345 secret;
  check_bool "evil disabled" false evil.Os.Kernel.enabled;
  check_bool "victim alive" true victim.Os.Kernel.enabled;
  check_bool "fault recorded" true (evil.Os.Kernel.fault_count > 0)

let test_attack_blocked_mpu_below () =
  (* evil above victim: lower-bound compiler check must catch it *)
  let evil, _, secret =
    run_attack ~mode:Iso.Mpu_assisted ~evil_first:false
  in
  check_int "secret intact" 12345 secret;
  check_bool "evil disabled" false evil.Os.Kernel.enabled

let test_attack_blocked_sw () =
  let evil, _, secret =
    run_attack ~mode:Iso.Software_only ~evil_first:true
  in
  check_int "secret intact" 12345 secret;
  check_bool "evil disabled" false evil.Os.Kernel.enabled

let test_attack_succeeds_noiso () =
  (* the baseline has no protection: corruption must actually land *)
  let evil, _, secret = run_attack ~mode:Iso.No_isolation ~evil_first:true in
  check_int "secret corrupted" 666 secret;
  check_bool "evil still enabled" true evil.Os.Kernel.enabled

let test_victim_unaffected_after_attack () =
  let fw, _ = build_pair ~mode:Iso.Mpu_assisted ~evil_first:true in
  let k = Os.Kernel.create ~scenario:Os.Sensors.Resting fw in
  let _ = Os.Kernel.run_for_ms k 2_000 in
  let victim = Os.Kernel.app_by_name k "victim" in
  check_bool "victim kept running" true victim.Os.Kernel.enabled;
  let beats = read_global k "victim" "beats" in
  check_bool "victim still receiving events" true (beats >= 5)

let test_restart_policy () =
  let fw, _ = build_pair ~mode:Iso.Mpu_assisted ~evil_first:true in
  let k =
    Os.Kernel.create ~policy:(Os.Kernel.Restart 3) ~scenario:Os.Sensors.Resting
      fw
  in
  let _ = Os.Kernel.run_for_ms k 3_000 in
  let evil = Os.Kernel.app_by_name k "evil" in
  check_int "three restarts consumed" 3 evil.Os.Kernel.restarts;
  check_bool "finally disabled" false evil.Os.Kernel.enabled

(* An app passing an out-of-range pointer to the OS must be rejected
   ("carefully handle application-provided pointers"). *)
let test_api_pointer_validation () =
  let bad_app =
    "void handle_init(int arg) {\n\
    \  int *p = (int*)0x4400;\n\
    \  api_read_accel(p - 0, 4);\n\
     }\n"
  in
  (* no-isolation mode: the compiler inserts no checks, so the pointer
     reaches the OS, which must still reject it *)
  let fw = build_one ~mode:Iso.No_isolation bad_app "bad" in
  let k = Os.Kernel.create fw in
  let _ = Os.Kernel.run_for_ms k 10 in
  let os_code =
    M.mem_checked_read k.Os.Kernel.machine W.W16 0x4400
  in
  check_bool "OS code not clobbered by service" true (os_code <> 0);
  let app = Os.Kernel.app_by_name k "bad" in
  check_bool "pointer fault logged" true
    (app.Os.Kernel.last_fault <> None)

let test_handler_stats () =
  let fw = build_one counter_app "counter" in
  let k = Os.Kernel.create ~scenario:Os.Sensors.Walking fw in
  let _ = Os.Kernel.run_for_ms k 1_000 in
  let app = Os.Kernel.app_by_name k "counter" in
  match Os.Kernel.handler_profile app "handle_accel" with
  | None -> Alcotest.fail "no stats for handle_accel"
  | Some s ->
    check_bool "counted" true (s.Os.Kernel.hs_count >= 5);
    check_bool "cycles recorded" true (s.Os.Kernel.hs_cycles > 0);
    check_bool "api calls recorded" true
      (s.Os.Kernel.hs_api_calls >= s.Os.Kernel.hs_count)

(* ARP-view per-state accounting: a two-state app whose timer handler
   does markedly different work per state. *)
let test_state_profile () =
  let src =
    "int state = 0;\n\
     int sink[16];\n\
     void handle_init(int arg) { api_set_timer(100); }\n\
     void handle_timer(int arg) {\n\
    \  if (state == 0) { state = 1; }\n\
    \  else {\n\
    \    int i; for (i = 0; i < 16; i++) sink[i] = i;\n\
    \    state = 0;\n\
    \  }\n\
     }\n"
  in
  let fw = build_one src "twostate" in
  let k = Os.Kernel.create fw in
  let _ = Os.Kernel.run_for_ms k 2_000 in
  let app = Os.Kernel.app_by_name k "twostate" in
  let profile = Os.Kernel.state_profile app in
  let stats_of st =
    match List.assoc_opt (st, "handle_timer") profile with
    | Some s -> s
    | None -> Alcotest.failf "no stats for state %d" st
  in
  let s0 = stats_of 0 and s1 = stats_of 1 in
  check_bool "both states dispatched" true
    (s0.Os.Kernel.hs_count >= 5 && s1.Os.Kernel.hs_count >= 5);
  check_bool "state-1 handler does more work" true
    (s1.Os.Kernel.hs_cycles / s1.Os.Kernel.hs_count
    > s0.Os.Kernel.hs_cycles / s0.Os.Kernel.hs_count
      + 50)

let test_event_queue_order () =
  let q = Os.Event_queue.create () in
  Os.Event_queue.push q ~at:300 ~app:0 Os.Event.Tick ~arg:0;
  Os.Event_queue.push q ~at:100 ~app:1 Os.Event.Tick ~arg:1;
  Os.Event_queue.push q ~at:200 ~app:2 Os.Event.Tick ~arg:2;
  Os.Event_queue.push q ~at:100 ~app:3 Os.Event.Tick ~arg:3;
  let order =
    List.init 4 (fun _ ->
        match Os.Event_queue.pop q with
        | Some e -> e.Os.Event.app
        | None -> -1)
  in
  Alcotest.(check (list int)) "time order, FIFO ties" [ 1; 3; 2; 0 ] order

let test_sensors_deterministic () =
  let s1 = Os.Sensors.create ~seed:7 Os.Sensors.Walking in
  let s2 = Os.Sensors.create ~seed:7 Os.Sensors.Walking in
  for t = 0 to 50 do
    let a1 = Os.Sensors.accel_sample s1 ~time_ms:(t * 20) in
    let a2 = Os.Sensors.accel_sample s2 ~time_ms:(t * 20) in
    if a1 <> a2 then Alcotest.fail "sensors not deterministic"
  done

let test_fall_scenario_spike () =
  let s = Os.Sensors.create (Os.Sensors.Fall_at 5_000) in
  let before = Os.Sensors.accel_magnitude s ~time_ms:4_000 in
  let impact = Os.Sensors.accel_magnitude s ~time_ms:5_300 in
  check_bool "calm before" true (before < 1500);
  check_bool "impact spike" true (impact > 2500)

let () =
  Alcotest.run "os"
    [
      ( "kernel",
        [
          Alcotest.test_case "boot+init" `Quick test_boot_and_init;
          Alcotest.test_case "subscription rate" `Quick test_subscription_rate;
          Alcotest.test_case "timer+display" `Quick test_timer_and_display;
          Alcotest.test_case "all modes dispatch" `Quick test_all_modes_dispatch;
          Alcotest.test_case "handler stats" `Quick test_handler_stats;
          Alcotest.test_case "per-state profile (ARP-view)" `Quick
            test_state_profile;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "MPU blocks attack above" `Quick
            test_attack_blocked_mpu_above;
          Alcotest.test_case "MPU+check blocks attack below" `Quick
            test_attack_blocked_mpu_below;
          Alcotest.test_case "SW blocks attack" `Quick test_attack_blocked_sw;
          Alcotest.test_case "NoIso attack lands" `Quick
            test_attack_succeeds_noiso;
          Alcotest.test_case "victim survives" `Quick
            test_victim_unaffected_after_attack;
          Alcotest.test_case "restart policy" `Quick test_restart_policy;
          Alcotest.test_case "API pointer validation" `Quick
            test_api_pointer_validation;
        ] );
      ( "infra",
        [
          Alcotest.test_case "event queue order" `Quick test_event_queue_order;
          Alcotest.test_case "sensors deterministic" `Quick
            test_sensors_deterministic;
          Alcotest.test_case "fall spike" `Quick test_fall_scenario_spike;
        ] );
    ]
