module Aft = Amulet_aft.Aft
module Os = Amulet_os
module Apps = Amulet_apps.Suite
module Iso = Amulet_cc.Isolation

type handler_profile = {
  hp_handler : string;
  hp_events_per_week : float;
  hp_cycles_per_event : float;
  hp_accesses_per_event : float;
  hp_api_calls_per_event : float;
}

type app_profile = {
  ap_app : string;
  ap_mode : Iso.mode;
  ap_handlers : handler_profile list;
  ap_cycles_per_week : float;
}

let seconds_per_week = 7.0 *. 86_400.0

(* Events per week for each handler, from the app's live subscriptions
   and timers after its init handler ran. *)
let rates_of_app (app : Os.Kernel.app_state) =
  let sensor_rates =
    List.map
      (fun (sensor, hz) ->
        ( Os.Event.handler_name (Os.Event.Sensor_sample sensor),
          float_of_int hz *. seconds_per_week ))
      app.Os.Kernel.subscriptions
  in
  let timer_rate =
    match app.Os.Kernel.timers with
    | [] -> []
    | timers ->
      let per_week =
        List.fold_left
          (fun acc (_, period_ms) ->
            acc +. (seconds_per_week *. 1000.0 /. float_of_int period_ms))
          0.0 timers
      in
      [ ("handle_timer", per_week) ]
  in
  sensor_rates @ timer_rate

let profile_app ?(scenario = Os.Sensors.Walking) ?(warmup_ms = 90_000) ?obs
    ~mode (app : Apps.app) =
  let fw = Aft.build ~mode [ Apps.spec_for mode app ] in
  let k = Os.Kernel.create ~scenario ?obs fw in
  let _ = Os.Kernel.run_for_ms k warmup_ms in
  let st = Os.Kernel.app_by_name k app.Apps.name in
  (match st.Os.Kernel.last_fault with
  | Some f ->
    failwith (Printf.sprintf "ARP: %s faulted during profiling: %s" app.Apps.name f)
  | None -> ());
  let handlers =
    List.filter_map
      (fun (handler, events_per_week) ->
        match Os.Kernel.handler_profile st handler with
        | Some s when s.Os.Kernel.hs_count > 0 ->
          let n = float_of_int s.Os.Kernel.hs_count in
          Some
            {
              hp_handler = handler;
              hp_events_per_week = events_per_week;
              hp_cycles_per_event = float_of_int s.Os.Kernel.hs_cycles /. n;
              hp_accesses_per_event =
                float_of_int (s.Os.Kernel.hs_reads + s.Os.Kernel.hs_writes) /. n;
              hp_api_calls_per_event =
                float_of_int s.Os.Kernel.hs_api_calls /. n;
            }
        | _ -> None)
      (rates_of_app st)
  in
  let cycles_per_week =
    List.fold_left
      (fun acc h -> acc +. (h.hp_events_per_week *. h.hp_cycles_per_event))
      0.0 handlers
  in
  {
    ap_app = app.Apps.name;
    ap_mode = mode;
    ap_handlers = handlers;
    ap_cycles_per_week = cycles_per_week;
  }

let overhead_cycles_per_week ~baseline profiled =
  max 0.0 (profiled.ap_cycles_per_week -. baseline.ap_cycles_per_week)

type static_sites = {
  ss_function : string;
  ss_checked : int;
  ss_elided : int;
  ss_static : int;
  ss_api_calls : int;
}

let static_view ~mode (app : Apps.app) =
  let spec = Apps.spec_for mode app in
  let cu =
    Amulet_cc.Driver.compile ~prefix:spec.Aft.name ~mode
      ~analyze:Amulet_analysis.Range.analyze spec.Aft.source
  in
  List.map
    (fun fi ->
      let s = fi.Amulet_cc.Codegen.fi_sites in
      {
        ss_function = fi.Amulet_cc.Codegen.fi_name;
        ss_checked = s.Amulet_cc.Codegen.checked;
        ss_elided = s.Amulet_cc.Codegen.elided;
        ss_static = fi.Amulet_cc.Codegen.fi_static_sites;
        ss_api_calls = List.length fi.Amulet_cc.Codegen.fi_api_calls;
      })
    cu.Amulet_cc.Driver.infos
