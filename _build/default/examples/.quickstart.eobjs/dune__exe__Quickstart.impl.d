examples/quickstart.ml: Amulet_aft Amulet_cc Amulet_link Amulet_os Format List
