(* amulet_prove: discharge the write-containment proof obligations.

   Runs the k-induction engine over the abstract transition system for
   every obligation in the matrix (optionally restricted by mode),
   replays each refutation's counterexample trace on the concrete
   machine, and crosschecks the attack corpus expectations against the
   abstract model.  Exits non-zero when any obligation lands off its
   documented expectation, a counterexample fails to replay, or a
   corpus cell mismatches. *)

module Iso = Amulet_cc.Isolation
module A = Amulet_proof.Absmachine
module Engine = Amulet_proof.Engine
module Ob = Amulet_proof.Obligations
module Lemmas = Amulet_proof.Lemmas
module Replay = Amulet_proof.Replay
module Proofcheck = Amulet_sec.Proofcheck
module J = Amulet_obs.Json

let mode_conv =
  let parse s =
    match Iso.of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg "expected one of: none, amuletc, software, mpu")
  in
  Cmdliner.Arg.conv (parse, fun ppf m -> Format.fprintf ppf "%s" (Iso.name m))

(* ------------------------------------------------------------------ *)
(* Per-obligation record: verdict plus (for refutations) the replay.   *)

type checked = {
  ck_result : Ob.result;
  ck_replay : (Replay.report, string) result option;
      (** [Some] for refuted obligations when replay is enabled *)
}

let ck_ok c =
  c.ck_result.Ob.res_ok
  &&
  match c.ck_replay with
  | None | Some (Ok { Replay.rp_ok = true; _ }) -> true
  | Some (Ok _) | Some (Error _) -> false

let check_obligation ~k_max ~replay ob =
  let r = Ob.check ~k_max ob in
  let rep =
    if not replay then None
    else
      match Ob.refuted_trace r with
      | None -> None
      | Some (trace, final) ->
        Some (Replay.replay ~mode:ob.Ob.ob_mode ~trace ~final ())
  in
  { ck_result = r; ck_replay = rep }

(* ------------------------------------------------------------------ *)
(* Human report                                                        *)

let pp_verdict_line ppf (c : checked) =
  let r = c.ck_result in
  let ob = r.Ob.res_ob in
  let verdict =
    match r.Ob.res_verdict with
    | Engine.Proved { k; reachable; strengthened } ->
      Printf.sprintf "PROVED  k=%d, %d reachable%s" k reachable
        (if strengthened then ", strengthened" else "")
    | Engine.Refuted { trace; _ } ->
      Printf.sprintf "REFUTED %d-step counterexample" (List.length trace)
    | Engine.Unknown { k_max; reason } ->
      Printf.sprintf "UNKNOWN k_max=%d (%s)" k_max reason
  in
  let replay =
    match c.ck_replay with
    | None -> ""
    | Some (Ok rep) when rep.Replay.rp_ok -> "  [replayed]"
    | Some (Ok rep) -> "  [REPLAY FAILED: " ^ rep.Replay.rp_detail ^ "]"
    | Some (Error e) -> "  [replay skipped: " ^ e ^ "]"
  in
  Format.fprintf ppf "%c %-26s %-14s %-10s %s%s"
    (if ck_ok c then ' ' else '!')
    ob.Ob.ob_name (Iso.name ob.Ob.ob_mode)
    (A.attacker_name ob.Ob.ob_attacker)
    verdict replay

let pp_trace ppf (c : checked) =
  match Ob.refuted_trace c.ck_result with
  | None -> ()
  | Some (trace, final) ->
    Format.fprintf ppf "  counterexample for %s:@."
      c.ck_result.Ob.res_ob.Ob.ob_name;
    List.iter
      (fun (s, a) ->
        Format.fprintf ppf "    %a  --%a-->@." A.pp_state s A.pp_action a)
      trace;
    Format.fprintf ppf "    %a@." A.pp_state final

(* ------------------------------------------------------------------ *)
(* JSON report                                                         *)

let json_of_checked (c : checked) =
  let r = c.ck_result in
  let ob = r.Ob.res_ob in
  let verdict =
    match r.Ob.res_verdict with
    | Engine.Proved { k; reachable; strengthened } ->
      J.Obj
        [ ("result", J.Str "proved"); ("k", J.Int k);
          ("reachable", J.Int reachable); ("strengthened", J.Bool strengthened);
        ]
    | Engine.Refuted { trace; final } ->
      J.Obj
        [ ("result", J.Str "refuted");
          ("trace",
           J.Arr
             (List.map
                (fun (s, a) ->
                  J.Obj
                    [ ("state", J.Str (Format.asprintf "%a" A.pp_state s));
                      ("action", J.Str (A.action_to_string a));
                    ])
                trace));
          ("final", J.Str (Format.asprintf "%a" A.pp_state final));
        ]
    | Engine.Unknown { k_max; reason } ->
      J.Obj
        [ ("result", J.Str "unknown"); ("k_max", J.Int k_max);
          ("reason", J.Str reason);
        ]
  in
  let replay =
    match c.ck_replay with
    | None -> J.Null
    | Some (Error e) -> J.Obj [ ("skipped", J.Str e) ]
    | Some (Ok rep) ->
      J.Obj
        [ ("ok", J.Bool rep.Replay.rp_ok); ("stop", J.Str rep.Replay.rp_stop);
          ("detail", J.Str rep.Replay.rp_detail);
          ("breaches", J.Int (List.length rep.Replay.rp_breaches));
        ]
  in
  J.Obj
    [ ("name", J.Str ob.Ob.ob_name);
      ("mode", J.Str (Iso.name ob.Ob.ob_mode));
      ("attacker", J.Str (A.attacker_name ob.Ob.ob_attacker));
      ("property", J.Str (Ob.prop_name ob.Ob.ob_prop));
      ("expect",
       J.Str (match ob.Ob.ob_expect with
         | Ob.Theorem -> "theorem"
         | Ob.Refutable -> "refutable"));
      ("description", J.Str ob.Ob.ob_descr);
      ("verdict", verdict);
      ("replay", replay);
      ("ok", J.Bool (ck_ok c));
    ]

let json_of_crosscheck (r : Proofcheck.row) =
  J.Obj
    [ ("attack", J.Str r.Proofcheck.cc_attack);
      ("mode", J.Str (Iso.name r.Proofcheck.cc_mode));
      ("expected", J.Str (Amulet_sec.Attacks.layer_name r.Proofcheck.cc_expected));
      ("verdict",
       J.Str
         (match r.Proofcheck.cc_verdict with
         | Proofcheck.V_theorem -> "theorem"
         | Proofcheck.V_counterexample -> "counterexample-replayed"
         | Proofcheck.V_unmodelled -> "unmodelled"
         | Proofcheck.V_mismatch { derived; _ } ->
           "mismatch:" ^ Amulet_sec.Attacks.layer_name derived));
      ("ok", J.Bool (Proofcheck.row_ok r));
    ]

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let run_cmd modes k_max no_replay no_crosscheck lemmas traces json_out list =
  if list then begin
    List.iter
      (fun (ob : Ob.obligation) ->
        Format.printf "%-26s %-14s %-10s %-9s %s@." ob.Ob.ob_name
          (Iso.name ob.Ob.ob_mode)
          (A.attacker_name ob.Ob.ob_attacker)
          (match ob.Ob.ob_expect with
          | Ob.Theorem -> "theorem"
          | Ob.Refutable -> "refutable")
          ob.Ob.ob_descr)
      Ob.all;
    0
  end
  else begin
    let modes = if modes = [] then Iso.all else modes in
    let obligations =
      List.filter (fun ob -> List.mem ob.Ob.ob_mode modes) Ob.all
    in
    let checked =
      List.map (check_obligation ~k_max ~replay:(not no_replay)) obligations
    in
    Format.printf "write-containment obligations (k_max=%d):@." k_max;
    List.iter (fun c -> Format.printf "%a@." pp_verdict_line c) checked;
    if traces then
      List.iter (fun c -> Format.printf "%a" pp_trace c) checked;
    let lemma_outcome =
      if not lemmas then None
      else begin
        let o = Lemmas.validate () in
        Format.printf "opcode abstraction lemmas: %d cases, %d failures@."
          o.Lemmas.lv_cases
          (List.length o.Lemmas.lv_failures);
        List.iter
          (fun (f : Lemmas.failure) ->
            Format.printf "  ! %s: %s@." f.Lemmas.f_case f.Lemmas.f_reason)
          o.Lemmas.lv_failures;
        Some o
      end
    in
    let crosscheck =
      if no_crosscheck then None
      else begin
        let rows = Proofcheck.run ~modes () in
        let bad = List.filter (fun r -> not (Proofcheck.row_ok r)) rows in
        Format.printf
          "attack-corpus crosscheck: %d cells, %d mismatches@."
          (List.length rows) (List.length bad);
        List.iter
          (fun r -> Format.printf "  ! %a@." Proofcheck.pp_row r)
          bad;
        Some rows
      end
    in
    let ok =
      List.for_all ck_ok checked
      && (match lemma_outcome with
         | Some o -> o.Lemmas.lv_failures = []
         | None -> true)
      && match crosscheck with Some rows -> Proofcheck.ok rows | None -> true
    in
    (match json_out with
    | None -> ()
    | Some path ->
      let doc =
        J.Obj
          [ ("k_max", J.Int k_max);
            ("modes", J.Arr (List.map (fun m -> J.Str (Iso.name m)) modes));
            ("obligations", J.Arr (List.map json_of_checked checked));
            ("lemmas",
             match lemma_outcome with
             | None -> J.Null
             | Some o ->
               J.Obj
                 [ ("cases", J.Int o.Lemmas.lv_cases);
                   ("failures", J.Int (List.length o.Lemmas.lv_failures));
                 ]);
            ("crosscheck",
             match crosscheck with
             | None -> J.Null
             | Some rows -> J.Arr (List.map json_of_crosscheck rows));
            ("ok", J.Bool ok);
          ]
      in
      let oc = open_out path in
      output_string oc (J.to_string doc);
      output_char oc '\n';
      close_out oc;
      Format.printf "proof report written to %s@." path);
    Format.printf "%s@." (if ok then "all obligations discharged" else "FAILED");
    if ok then 0 else 1
  end

open Cmdliner

let modes_arg =
  Arg.(
    value & opt_all mode_conv []
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:"Restrict to one isolation mode (repeatable; default all four).")

let k_max_arg =
  Arg.(
    value & opt int 8
    & info [ "k-max" ] ~docv:"K"
        ~doc:"Deepest induction to attempt before reporting unknown.")

let no_replay_arg =
  Arg.(
    value & flag
    & info [ "no-replay" ]
        ~doc:"Skip replaying refutation traces on the concrete machine.")

let no_crosscheck_arg =
  Arg.(
    value & flag
    & info [ "no-crosscheck" ]
        ~doc:"Skip the attack-corpus expectation crosscheck.")

let lemmas_arg =
  Arg.(
    value & flag
    & info [ "lemmas" ]
        ~doc:
          "Also run the per-opcode abstraction lemmas (differential \
           execution over the full opcode corpus).")

let traces_arg =
  Arg.(
    value & flag
    & info [ "traces" ]
        ~doc:"Print each refuted obligation's counterexample trace.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the full machine-readable report to $(docv).")

let list_arg =
  Arg.(
    value & flag & info [ "list" ] ~doc:"List the obligation matrix and exit.")

let cmd =
  let doc = "discharge the write-containment proof obligations" in
  Cmd.v
    (Cmd.info "amulet_prove" ~doc)
    Term.(
      const run_cmd $ modes_arg $ k_max_arg $ no_replay_arg $ no_crosscheck_arg
      $ lemmas_arg $ traces_arg $ json_arg $ list_arg)

let () = exit (Cmd.eval' cmd)
