module Iso = Amulet_cc.Isolation
module Aft = Amulet_aft.Aft
module M = Amulet_mcu.Machine
module Os = Amulet_os
module Apps = Amulet_apps.Suite
module Obs = Amulet_obs.Obs
module Agg = Amulet_obs.Agg
module Hist = Amulet_obs.Hist
module Profile = Amulet_obs.Profile
module Energy = Amulet_arp.Energy
module Ex = Amulet_iso.Experiments

type mode_run = {
  mr_mode : Iso.mode;
  mr_rates : float array;
  mr_trial_cycles : int array;
  mr_latency : Hist.t;
  mr_handler : Hist.t;
  mr_class_cycles : (string * int) list;
  mr_measured_dispatches : int;
}

let host_services_slug = "host_services"
let hooks_off_suffix = "+hooks-off"

let run_mode ?(warmup = 100) ~trials ~dispatches mode =
  let fw = Aft.build ~mode [ Apps.spec_for mode Apps.gateheavy ] in
  let obs = Obs.create () in
  let agg = Agg.create () in
  Obs.add_sink obs (Agg.sink agg);
  Obs.enable_profile obs fw;
  let k = Os.Kernel.create ~scenario:Os.Sensors.Walking ~obs fw in
  let _ = Os.Kernel.run_for_ms k 5 in
  let m = k.Os.Kernel.machine in
  (* gateheavy is event-driven: run_for_ms alone would idle, so the
     dispatch loop is driven explicitly, as the schema-1 snapshot did *)
  let post_button () =
    Os.Kernel.post k ~delay_ms:0 ~app:0 (Os.Event.Button 1) ~arg:1
  in
  let dispatch_once () =
    post_button ();
    ignore (Os.Kernel.dispatch_next k)
  in
  (* keep a standing backlog so each event waits behind a few earlier
     handlers: dispatch latency is then the real (mode-dependent)
     queueing delay instead of the degenerate 0 of post-then-pop *)
  for _ = 1 to 4 do
    post_button ()
  done;
  for _ = 1 to warmup do
    dispatch_once ()
  done;
  let p =
    match Obs.profile obs with Some p -> p | None -> assert false
  in
  let cats0 = Profile.totals p in
  let host0 = m.M.extra_cycles in
  let rates = Array.make trials 0.0 in
  let trial_cycles = Array.make trials 0 in
  for t = 0 to trials - 1 do
    let c0 = M.cycles m in
    let t0 = Sys.time () in
    for _ = 1 to dispatches do
      dispatch_once ()
    done;
    let host_s = max (Sys.time () -. t0) 1e-9 in
    let cyc = M.cycles m - c0 in
    rates.(t) <- float_of_int cyc /. host_s;
    trial_cycles.(t) <- cyc
  done;
  let class_cycles =
    List.map2
      (fun (c, before) (c', after) ->
        assert (c = c');
        (Profile.category_slug c, after - before))
      cats0 (Profile.totals p)
    @ [ (host_services_slug, m.M.extra_cycles - host0) ]
  in
  Obs.close obs;
  {
    mr_mode = mode;
    mr_rates = rates;
    mr_trial_cycles = trial_cycles;
    mr_latency =
      (match Agg.counter agg "dispatch_latency_cycles" with
      | Some c -> c.Agg.c_hist
      | None -> Hist.create ());
    mr_handler =
      Option.value ~default:(Hist.create ())
        (Agg.span_hist agg ~cat:"dispatch" ~name:"handle_button");
    mr_class_cycles = class_cycles;
    mr_measured_dispatches = trials * dispatches;
  }

(* Same workload with no observability attached: the machine runs on
   the predecoded-block fast path.  Simulated cycles per trial must be
   byte-identical to the armed run — [run] asserts it — so the only
   thing these rows add is the host-side throughput of the fast
   engine. *)
let run_mode_hooks_off ?(warmup = 100) ~trials ~dispatches mode =
  let fw = Aft.build ~mode [ Apps.spec_for mode Apps.gateheavy ] in
  let k = Os.Kernel.create ~scenario:Os.Sensors.Walking fw in
  let _ = Os.Kernel.run_for_ms k 5 in
  let m = k.Os.Kernel.machine in
  let post_button () =
    Os.Kernel.post k ~delay_ms:0 ~app:0 (Os.Event.Button 1) ~arg:1
  in
  let dispatch_once () =
    post_button ();
    ignore (Os.Kernel.dispatch_next k)
  in
  for _ = 1 to 4 do
    post_button ()
  done;
  for _ = 1 to warmup do
    dispatch_once ()
  done;
  let rates = Array.make trials 0.0 in
  let trial_cycles = Array.make trials 0 in
  for t = 0 to trials - 1 do
    let c0 = M.cycles m in
    let t0 = Sys.time () in
    for _ = 1 to dispatches do
      dispatch_once ()
    done;
    let host_s = max (Sys.time () -. t0) 1e-9 in
    let cyc = M.cycles m - c0 in
    rates.(t) <- float_of_int cyc /. host_s;
    trial_cycles.(t) <- cyc
  done;
  {
    mr_mode = mode;
    mr_rates = rates;
    mr_trial_cycles = trial_cycles;
    mr_latency = Hist.create ();
    mr_handler = Hist.create ();
    mr_class_cycles = [];
    mr_measured_dispatches = trials * dispatches;
  }

let host_meta () =
  List.concat
    [
      [
        ("ocaml", Sys.ocaml_version);
        ("os", Sys.os_type);
        ("word_size", string_of_int Sys.word_size);
      ];
      (match Sys.getenv_opt "HOSTNAME" with
      | Some h -> [ ("hostname", h) ]
      | None -> []);
    ]

let cycles_per_dispatch (r : mode_run) =
  if r.mr_measured_dispatches = 0 then 0.0
  else
    Stats.median (Array.map float_of_int r.mr_trial_cycles)
    *. float_of_int (Array.length r.mr_trial_cycles)
    /. float_of_int r.mr_measured_dispatches

let mode_row (r : mode_run) =
  let total_cycles =
    List.fold_left (fun acc (_, c) -> acc + c) 0 r.mr_class_cycles
  in
  {
    Schema.m_mode = Iso.name r.mr_mode;
    m_rate =
      {
        Schema.r_summary = Stats.summarize r.mr_rates;
        r_trials = Array.to_list r.mr_rates;
      };
    m_cycles_per_dispatch = cycles_per_dispatch r;
    m_latency = Some r.mr_latency;
    m_handler = Some r.mr_handler;
    m_class_cycles = r.mr_class_cycles;
    m_energy_per_dispatch_j =
      (if r.mr_measured_dispatches = 0 then None
       else
         Some
           (Energy.joules_of_cycles total_cycles
            /. float_of_int r.mr_measured_dispatches));
  }

(* No profiler in a hooks-off run, so latency/handler histograms and
   the class breakdown are absent rather than empty-but-present. *)
let hooks_off_row (r : mode_run) =
  {
    Schema.m_mode = Iso.name r.mr_mode ^ hooks_off_suffix;
    m_rate =
      {
        Schema.r_summary = Stats.summarize r.mr_rates;
        r_trials = Array.to_list r.mr_rates;
      };
    m_cycles_per_dispatch = cycles_per_dispatch r;
    m_latency = None;
    m_handler = None;
    m_class_cycles = [];
    m_energy_per_dispatch_j = None;
  }

let gate_costs ~runs () =
  let t1 = Ex.table1 ~runs () in
  let cert = Ex.ablation_gate_cert ~runs () in
  {
    Schema.g_ctx_switch =
      List.map
        (fun (r : Ex.table1_row) -> (Iso.name r.Ex.t1_mode, r.Ex.t1_ctx_switch))
        t1;
    g_cert =
      List.map
        (fun (r : Ex.gate_cert_row) ->
          {
            Schema.c_mode = Iso.name r.Ex.gc_mode;
            c_dynamic = r.Ex.gc_dynamic;
            c_certified = r.Ex.gc_certified;
            c_per_gate = r.Ex.gc_per_gate;
            c_services = r.Ex.gc_services;
          })
        cert;
  }

(* The armed and hooks-off runs drive identical workloads, so their
   simulated cycle trajectories must agree exactly: the fast engine is
   not allowed to change what the machine computes, only how fast the
   host gets there. *)
let assert_identity (armed : mode_run) (fast : mode_run) =
  if armed.mr_trial_cycles <> fast.mr_trial_cycles then
    failwith
      (Format.asprintf
         "predecode identity violated (%s): armed trial cycles [%s] <> \
          hooks-off [%s]"
         (Iso.name armed.mr_mode)
         (String.concat ";"
            (List.map string_of_int (Array.to_list armed.mr_trial_cycles)))
         (String.concat ";"
            (List.map string_of_int (Array.to_list fast.mr_trial_cycles))))

let run ?(modes = Iso.all) ?trials ?dispatches ?warmup ?gate_runs ~quick () =
  let dflt q f = Option.value ~default:(if quick then q else f) in
  let trials = dflt 3 5 trials in
  let dispatches = dflt 300 1500 dispatches in
  let warmup = dflt 50 200 warmup in
  let gate_runs = dflt 10 50 gate_runs in
  let runs = List.map (run_mode ~warmup ~trials ~dispatches) modes in
  let fast = List.map (run_mode_hooks_off ~warmup ~trials ~dispatches) modes in
  List.iter2 assert_identity runs fast;
  let doc =
    {
      Schema.d_schema = 2;
      d_bench = "gateheavy";
      d_quick = quick;
      d_trials = trials;
      d_dispatches = dispatches;
      d_warmup = warmup;
      d_host = host_meta ();
      d_modes = List.map mode_row runs @ List.map hooks_off_row fast;
      d_gate = gate_costs ~runs:gate_runs ();
    }
  in
  (doc, runs)

(* Hooks-off only, for the CI speedup floor: cheap, no profiler, no
   gate-cost ablations. *)
let run_speedup ?(modes = [ Iso.No_isolation ]) ?trials ?dispatches ?warmup
    ~quick () =
  let dflt q f = Option.value ~default:(if quick then q else f) in
  let trials = dflt 3 5 trials in
  let dispatches = dflt 300 1500 dispatches in
  let warmup = dflt 50 200 warmup in
  let fast = List.map (run_mode_hooks_off ~warmup ~trials ~dispatches) modes in
  let doc =
    {
      Schema.d_schema = 2;
      d_bench = "gateheavy";
      d_quick = quick;
      d_trials = trials;
      d_dispatches = dispatches;
      d_warmup = warmup;
      d_host = host_meta ();
      d_modes = List.map hooks_off_row fast;
      d_gate = { Schema.g_ctx_switch = []; g_cert = [] };
    }
  in
  (doc, fast)

let pp_doc ppf (d : Schema.doc) =
  Format.fprintf ppf
    "%s: %d trials x %d dispatches per mode (warmup %d%s)@." d.d_bench
    d.d_trials d.d_dispatches d.d_warmup
    (if d.d_quick then ", quick" else "");
  Format.fprintf ppf "%-18s %16s %10s %12s %8s %8s %12s@." "Method"
    "cycles/sec" "+- MAD" "cyc/dispatch" "lat p50" "lat p99" "nJ/dispatch";
  List.iter
    (fun (m : Schema.mode_row) ->
      let q h f = match h with Some h -> Hist.quantile h f | None -> 0 in
      Format.fprintf ppf "%-18s %16.0f %10.0f %12.1f %8d %8d %12.1f@."
        m.Schema.m_mode m.Schema.m_rate.Schema.r_summary.Stats.median
        m.Schema.m_rate.Schema.r_summary.Stats.mad m.Schema.m_cycles_per_dispatch
        (q m.Schema.m_latency 0.5) (q m.Schema.m_latency 0.99)
        (match m.Schema.m_energy_per_dispatch_j with
        | Some j -> j *. 1e9
        | None -> 0.0))
    d.d_modes;
  if d.d_gate.Schema.g_ctx_switch <> [] then begin
    Format.fprintf ppf "context-switch cycles:";
    List.iter
      (fun (m, c) -> Format.fprintf ppf " %s=%.1f" m c)
      d.d_gate.Schema.g_ctx_switch;
    Format.fprintf ppf "@."
  end;
  List.iter
    (fun (c : Schema.cert_row) ->
      Format.fprintf ppf
        "%-18s gate handler %.0f cyc dynamic, %.0f certified (%.1f cyc/gate)@."
        c.Schema.c_mode c.Schema.c_dynamic c.Schema.c_certified
        c.Schema.c_per_gate)
    d.d_gate.Schema.g_cert
