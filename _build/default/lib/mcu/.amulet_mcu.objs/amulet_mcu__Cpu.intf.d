lib/mcu/cpu.mli: Opcode Registers Word
