(** Events delivered by the AmuletOS scheduler to application
    state-machine handlers.

    Each event kind maps to a conventionally-named handler function
    ([handle_init], [handle_accel], ...) that the AFT discovered at
    compile time.  The handler receives one integer argument in R12
    (timer id, button state, sensor id — kind-dependent). *)

type sensor = Accel | Ppg | Temperature | Light

val sensor_to_int : sensor -> int
val sensor_of_int : int -> sensor option
val all_sensors : sensor list

type kind =
  | Init  (** delivered once when the app starts *)
  | Timer_fired of int  (** argument: timer id *)
  | Sensor_sample of sensor
  | Button of int  (** argument: button state bitmap *)
  | Tick  (** coarse periodic system tick *)

type t = {
  at : int;  (** virtual time, in CPU cycles *)
  seq : int;  (** tie-breaker: FIFO among simultaneous events *)
  app : int;  (** destination app index *)
  kind : kind;
  arg : int;
}

val handler_name : kind -> string
val kind_name : kind -> string
val pp : Format.formatter -> t -> unit

val cycles_per_ms : int
(** 16 MHz core: 16000 cycles per millisecond. *)

val ms_to_cycles : int -> int
val cycles_to_ms : int -> int
