(** AFT phase-1 language-feature checks.

    All modes reject [goto] and inline assembly (already refused by
    the parser).  Feature-Limited additionally enforces the original
    AmuletC restrictions: no pointer or function-pointer types
    anywhere (declarations, parameters, struct fields, casts), no
    unary [*] or [&], no [->], and no recursion (direct or mutual).

    Arrays are allowed in Feature-Limited mode — including as OS API
    arguments, where the array name decays to a pointer under the
    compiler's control (as on the real Amulet). *)

val check : mode:Isolation.mode -> Ast.program -> unit
(** @raise Srcloc.Error describing the offending construct. *)

val call_edges : Ast.program -> (string * string list) list
(** Direct-call edges [(caller, callees)] from the untyped AST —
    shared with the recursion check and the call-graph analysis. *)

val find_recursion : (string * string list) list -> string list option
(** A call cycle if one exists (list of functions on the cycle). *)
