type access = Exec | Dread | Dwrite
type segment = Seg_info | Seg1 | Seg2 | Seg3
type check_result = Allowed | Violation of segment

type t = {
  mutable ctl0 : int; (* MPUENA / MPULOCK / MPUSEGIE bits *)
  mutable ctl1 : int; (* violation interrupt flags *)
  mutable segb1 : int; (* boundary register: address / 16 *)
  mutable segb2 : int;
  mutable sam : int; (* nibble per segment: RE/WE/XE/VS *)
  mutable gen : int; (* configuration generation, bumped on any change *)
}

let ctl0_addr = 0x05A0
let ctl1_addr = 0x05A2
let segb2_addr = 0x05A4
let segb1_addr = 0x05A6
let sam_addr = 0x05A8

let bit_ena = 0x0001
let bit_lock = 0x0002
let password = 0xA5
let granule = 0x400

let default_sam =
  (* Power-up: everything readable/writable/executable. *)
  0x7777

let create () =
  { ctl0 = 0; ctl1 = 0; segb1 = 0; segb2 = 0; sam = default_sam; gen = 0 }

let reset t =
  t.ctl0 <- 0;
  t.ctl1 <- 0;
  t.segb1 <- 0;
  t.segb2 <- 0;
  t.sam <- default_sam;
  t.gen <- t.gen + 1

let gen t = t.gen

let handles addr =
  addr >= ctl0_addr && addr <= sam_addr && addr land 1 = 0

let enabled t = t.ctl0 land bit_ena <> 0
let locked t = t.ctl0 land bit_lock <> 0

type write_result = Write_ok | Bad_password | Locked_ignored

let mmio_write t addr v =
  if addr = ctl0_addr || addr = ctl1_addr then
    (* Control registers demand the 0xA5 password in the high byte. *)
    if (v lsr 8) land 0xFF <> password then Bad_password
    else if locked t && addr = ctl0_addr then Locked_ignored
    else begin
      if addr = ctl0_addr then t.ctl0 <- v land 0xFF
      else t.ctl1 <- t.ctl1 land lnot (v land 0xFF);
      t.gen <- t.gen + 1;
      Write_ok
    end
  else if locked t then Locked_ignored
  else begin
    (if addr = segb2_addr then t.segb2 <- v land 0xFFF
     else if addr = segb1_addr then t.segb1 <- v land 0xFFF
     else if addr = sam_addr then t.sam <- v land 0xFFFF);
    t.gen <- t.gen + 1;
    Write_ok
  end

let mmio_read t addr =
  if addr = ctl0_addr then 0x9600 lor t.ctl0
  else if addr = ctl1_addr then t.ctl1
  else if addr = segb2_addr then t.segb2
  else if addr = segb1_addr then t.segb1
  else if addr = sam_addr then t.sam
  else 0

let align_boundary raw =
  let addr = (raw lsl 4) land 0xFFFF in
  let addr = addr land lnot (granule - 1) in
  (* Boundaries are meaningful only inside main FRAM. *)
  min (max addr Memory_map.fram_start) Memory_map.fram_limit

let boundary1 t = align_boundary t.segb1
let boundary2 t = align_boundary t.segb2

let segment_of_addr t addr =
  if addr >= Memory_map.info_mem_start && addr < Memory_map.info_mem_limit
  then Some Seg_info
  else if addr >= Memory_map.fram_start && addr < Memory_map.fram_limit then
    if addr < boundary1 t then Some Seg1
    else if addr < boundary2 t then Some Seg2
    else Some Seg3
  else None

let seg_nibble t = function
  | Seg1 -> t.sam land 0xF
  | Seg2 -> (t.sam lsr 4) land 0xF
  | Seg3 -> (t.sam lsr 8) land 0xF
  | Seg_info -> (t.sam lsr 12) land 0xF

let access_bit = function Dread -> 0x1 | Dwrite -> 0x2 | Exec -> 0x4

let flag_bit = function
  | Seg1 -> 0x0001
  | Seg2 -> 0x0002
  | Seg3 -> 0x0004
  | Seg_info -> 0x0008

let check t access addr =
  if not (enabled t) then Allowed
  else
    match segment_of_addr t addr with
    | None -> Allowed
    | Some seg ->
      if seg_nibble t seg land access_bit access <> 0 then Allowed
      else begin
        t.ctl1 <- t.ctl1 lor flag_bit seg;
        Violation seg
      end

let violation_flags t = t.ctl1

type raw_reg = Raw_ctl0 | Raw_ctl1 | Raw_segb1 | Raw_segb2 | Raw_sam

let raw_reg_name = function
  | Raw_ctl0 -> "MPUCTL0"
  | Raw_ctl1 -> "MPUCTL1"
  | Raw_segb1 -> "MPUSEGB1"
  | Raw_segb2 -> "MPUSEGB2"
  | Raw_sam -> "MPUSAM"

let raw_get t = function
  | Raw_ctl0 -> t.ctl0
  | Raw_ctl1 -> t.ctl1
  | Raw_segb1 -> t.segb1
  | Raw_segb2 -> t.segb2
  | Raw_sam -> t.sam

(* Fault-injection backdoor: models a physical upset of the register
   cell itself, so it bypasses the password and the lock on purpose. *)
let raw_set t reg v =
  (match reg with
  | Raw_ctl0 -> t.ctl0 <- v land 0xFF
  | Raw_ctl1 -> t.ctl1 <- v land 0xFF
  | Raw_segb1 -> t.segb1 <- v land 0xFFF
  | Raw_segb2 -> t.segb2 <- v land 0xFFF
  | Raw_sam -> t.sam <- v land 0xFFFF);
  t.gen <- t.gen + 1

let configure t ~b1 ~b2 ~sam ~enable =
  if not (locked t) then begin
    t.segb1 <- (b1 lsr 4) land 0xFFF;
    t.segb2 <- (b2 lsr 4) land 0xFFF;
    t.sam <- sam land 0xFFFF;
    t.ctl0 <- (if enable then bit_ena else 0);
    t.gen <- t.gen + 1
  end

let sam_bits ~seg1 ~seg2 ~seg3 ?(info = "") () =
  let nib s =
    let b = ref 0 in
    String.iter
      (fun c ->
        match c with
        | 'r' -> b := !b lor 0x1
        | 'w' -> b := !b lor 0x2
        | 'x' -> b := !b lor 0x4
        | _ -> invalid_arg "Mpu.sam_bits")
      s;
    !b
  in
  nib seg1 lor (nib seg2 lsl 4) lor (nib seg3 lsl 8) lor (nib info lsl 12)

let pp ppf t =
  Format.fprintf ppf
    "MPU{ena=%b lock=%b b1=%04X b2=%04X sam=%04X ifg=%X}" (enabled t)
    (locked t) (boundary1 t) (boundary2 t) t.sam t.ctl1
