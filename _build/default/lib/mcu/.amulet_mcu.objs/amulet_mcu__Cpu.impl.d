lib/mcu/cpu.ml: Alu Cycles Decode Encode Opcode Registers Word
