(* Isolation compare: take one app and show exactly what each
   isolation method costs it — generated code size, per-event cycles,
   checked-vs-static access sites, and weekly battery impact.

     dune exec examples/isolation_compare.exe [app-name] *)

module Aft = Amulet_aft.Aft
module Iso = Amulet_cc.Isolation
module Arp = Amulet_arp.Arp
module Energy = Amulet_arp.Energy
module Apps = Amulet_apps.Suite

let () =
  let app_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "fall_detection" in
  let app =
    match List.find_opt (fun a -> a.Apps.name = app_name) Apps.all with
    | Some a -> a
    | None ->
      Format.eprintf "unknown app %s@." app_name;
      exit 1
  in
  Format.printf "isolation cost breakdown for %s@.@." app.Apps.display_name;
  Format.printf "%-18s %10s %10s %10s %12s %12s@." "method" "code B"
    "checked" "static" "cyc/event" "battery %";
  let baseline = ref None in
  List.iter
    (fun mode ->
      let spec = Apps.spec_for mode app in
      let fw = Aft.build ~mode [ spec ] in
      let ab = List.hd fw.Aft.fw_apps in
      let cu = ab.Aft.ab_compiled in
      let checked, static =
        List.fold_left
          (fun (c, s) fi ->
            ( c + fi.Amulet_cc.Codegen.fi_sites.Amulet_cc.Codegen.checked,
              s + fi.Amulet_cc.Codegen.fi_static_sites ))
          (0, 0) cu.Amulet_cc.Driver.infos
      in
      let profile = Arp.profile_app ~mode app in
      if mode = Iso.No_isolation then baseline := Some profile;
      let cyc_per_event =
        match profile.Arp.ap_handlers with
        | [] -> 0.0
        | hs ->
          List.fold_left (fun acc h -> acc +. h.Arp.hp_cycles_per_event) 0.0 hs
          /. float_of_int (List.length hs)
      in
      let overhead =
        match !baseline with
        | Some b -> Arp.overhead_cycles_per_week ~baseline:b profile
        | None -> 0.0
      in
      Format.printf "%-18s %10d %10d %10d %12.1f %12.4f@." (Iso.name mode)
        ab.Aft.ab_layout.Amulet_aft.Layout.code_size checked static
        cyc_per_event
        (Energy.battery_impact_percent ~overhead_cycles_per_week:overhead))
    Iso.all;
  Format.printf
    "@.reading: 'checked' sites get run-time bounds tests; 'static' accesses@.\
     were proven safe at compile time and cost nothing at run time.@.\
     MPU halves the checks but pays for MPU reconfiguration on every@.\
     context switch — cheap for compute-heavy apps, costly for chatty ones.@."
