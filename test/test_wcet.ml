(* WCET certifier tests: loop detection on synthetic graphs, the
   Unbounded degradation path, and — the load-bearing property — the
   soundness cross-check: for every dispatch the kernel records under
   the cycle-exact simulator, the observed cycle count must not exceed
   the handler's static bound.  An observed dispatch above its bound
   means the static analysis lied, and the build must fail. *)

module Aft = Amulet_aft.Aft
module Os = Amulet_os
module Apps = Amulet_apps.Suite
module Iso = Amulet_cc.Isolation
module Cfi = Amulet_analysis.Cfi
module Wcet = Amulet_analysis.Wcet
module LB = Amulet_analysis.Loopbound

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Loopbound on synthetic graphs *)

let graph entry edges =
  let nodes = List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) edges) in
  {
    LB.g_entry = entry;
    g_nodes =
      List.map
        (fun n ->
          { LB.n_id = n;
            n_succs = List.filter_map (fun (a, b) -> if a = n then Some b else None) edges })
        nodes;
  }

let test_loop_simple () =
  (* 1 -> 2 -> 3 -> 2 (back edge), 3 -> 4 *)
  match LB.analyze (graph 1 [ (1, 2); (2, 3); (3, 2); (3, 4) ]) with
  | LB.Reducible [ l ] ->
    check_int "header" 2 l.LB.l_header;
    Alcotest.(check (list (pair int int))) "back edge" [ (3, 2) ] l.LB.l_back_edges;
    Alcotest.(check (list int)) "body" [ 2; 3 ] l.LB.l_body
  | _ -> Alcotest.fail "expected one loop"

let test_loop_nested () =
  (* outer 2..5, inner 3..4 *)
  let g = graph 1 [ (1, 2); (2, 3); (3, 4); (4, 3); (4, 5); (5, 2); (5, 6) ] in
  match LB.analyze g with
  | LB.Reducible [ inner; outer ] ->
    (* innermost first *)
    check_int "inner header" 3 inner.LB.l_header;
    Alcotest.(check (list int)) "inner body" [ 3; 4 ] inner.LB.l_body;
    check_int "outer header" 2 outer.LB.l_header;
    Alcotest.(check (list int)) "outer body" [ 2; 3; 4; 5 ] outer.LB.l_body
  | _ -> Alcotest.fail "expected two loops"

let test_loop_self () =
  match LB.analyze (graph 1 [ (1, 1) ]) with
  | LB.Reducible [ l ] ->
    check_int "self header" 1 l.LB.l_header;
    Alcotest.(check (list int)) "self body" [ 1 ] l.LB.l_body
  | _ -> Alcotest.fail "expected self loop"

let test_loop_irreducible () =
  (* the classic two-entry loop: 1->2, 1->3, 2->3, 3->2 — neither 2
     nor 3 dominates the other *)
  match LB.analyze (graph 1 [ (1, 2); (1, 3); (2, 3); (3, 2) ]) with
  | LB.Irreducible _ -> ()
  | LB.Reducible _ -> Alcotest.fail "two-entry loop must be irreducible"

let test_loop_merged_header () =
  (* two back edges into one header make one loop *)
  let g = graph 1 [ (1, 2); (2, 3); (3, 2); (2, 4); (4, 2); (2, 5) ] in
  match LB.analyze g with
  | LB.Reducible [ l ] ->
    check_int "merged header" 2 l.LB.l_header;
    check_int "two back edges" 2 (List.length l.LB.l_back_edges);
    Alcotest.(check (list int)) "merged body" [ 2; 3; 4 ] l.LB.l_body
  | _ -> Alcotest.fail "expected one merged loop"

(* ------------------------------------------------------------------ *)
(* Static analysis over real firmware *)

let wcet_of image mode prefix =
  match Cfi.reconstruct ~image ~mode ~prefix with
  | Error _ -> Alcotest.failf "CFI reconstruction failed for %s" prefix
  | Ok cfg -> Wcet.analyze ~image ~cfg

let build_one mode name =
  let app = Apps.find name in
  Aft.build ~mode [ Apps.spec_for mode app ]

let test_quicksort_unbounded_witness () =
  let fw = build_one Iso.Mpu_assisted "quicksort" in
  let w = wcet_of fw.Aft.fw_image Iso.Mpu_assisted "quicksort" in
  match Wcet.handler_bound w "handle_button" with
  | Some (Wcet.Unbounded { chain; _ }) ->
    let suffix = "$qsort_range" in
    let sn = String.length suffix in
    check_bool "witness names the recursive function" true
      (List.exists
         (fun s ->
           String.length s >= sn
           && String.sub s (String.length s - sn) sn = suffix)
         chain)
  | Some (Wcet.Bounded _) ->
    Alcotest.fail "recursive qsort must not get a bound"
  | None -> Alcotest.fail "handle_button missing from the report"

let test_helper_loops_bounded () =
  (* activity multiplies and divides: its bound must absorb the
     runtime helper loops, which only works if the stamped
     wcet.loop.<helper> notes resolve *)
  let fw = build_one Iso.Software_only "activity" in
  let w = wcet_of fw.Aft.fw_image Iso.Software_only "activity" in
  List.iter
    (fun (h : Wcet.handler_bound) ->
      match h.Wcet.hb_total with
      | Wcet.Bounded c -> check_bool (h.Wcet.hb_handler ^ " positive") true (c > 0)
      | Wcet.Unbounded _ ->
        Alcotest.failf "%s should be bounded" h.Wcet.hb_handler)
    w.Wcet.w_handlers

(* ------------------------------------------------------------------ *)
(* Soundness: static bound >= every observed dispatch *)

let soundness_apps =
  [ "pedometer"; "clock"; "fall_detection"; "heart_rate"; "activity";
    "gateheavy"; "callheavy" ]

let check_soundness mode name =
  match build_one mode name with
  | exception Amulet_cc.Srcloc.Error (_, _) ->
    (* the app genuinely does not exist in this mode (feature check) *)
    0
  | fw ->
    let w = wcet_of fw.Aft.fw_image mode name in
    List.iter
      (fun (h : Wcet.handler_bound) ->
        match h.Wcet.hb_total with
        | Wcet.Bounded _ -> ()
        | Wcet.Unbounded _ ->
          Alcotest.failf "%s/%s: %s unexpectedly unbounded" name
            (Iso.name mode) h.Wcet.hb_handler)
      w.Wcet.w_handlers;
    let k = Os.Kernel.create ~scenario:Os.Sensors.Walking ~seed:11 fw in
    let records = Os.Kernel.run_for_ms k 10_000 in
    let checked = ref 0 in
    List.iter
      (fun (r : Os.Kernel.dispatch_record) ->
        match r.Os.Kernel.dr_outcome with
        | Os.Kernel.No_handler -> ()
        | Os.Kernel.Ok | Os.Kernel.App_fault _ -> (
          let handler = Os.Event.handler_name r.Os.Kernel.dr_kind in
          match Wcet.handler_bound w handler with
          | Some (Wcet.Bounded b) ->
            incr checked;
            if r.Os.Kernel.dr_cycles > b then
              Alcotest.failf
                "UNSOUND: %s/%s %s observed %d cycles above static bound %d"
                name (Iso.name mode) handler r.Os.Kernel.dr_cycles b
          | Some (Wcet.Unbounded _) | None -> ()))
      records;
    !checked

let test_soundness () =
  let total = ref 0 in
  List.iter
    (fun mode ->
      List.iter
        (fun name -> total := !total + check_soundness mode name)
        soundness_apps)
    Iso.all;
  (* the property must not hold vacuously *)
  check_bool
    (Printf.sprintf "checked enough dispatches (%d)" !total)
    true (!total > 500)

let () =
  Alcotest.run "wcet"
    [
      ( "loopbound",
        [
          Alcotest.test_case "simple loop" `Quick test_loop_simple;
          Alcotest.test_case "nested loops" `Quick test_loop_nested;
          Alcotest.test_case "self loop" `Quick test_loop_self;
          Alcotest.test_case "irreducible" `Quick test_loop_irreducible;
          Alcotest.test_case "merged header" `Quick test_loop_merged_header;
        ] );
      ( "static",
        [
          Alcotest.test_case "recursion yields witness" `Quick
            test_quicksort_unbounded_witness;
          Alcotest.test_case "helper loops bounded" `Quick
            test_helper_loops_bounded;
        ] );
      ( "soundness",
        [ Alcotest.test_case "static >= dynamic" `Slow test_soundness ] );
    ]
