(* amulet_prof: read a trace written by `amulet_sim --trace` (Chrome
   trace_event JSON or JSONL) and print an aggregated report: span
   statistics, counter maxima, API instant counts and faults. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let report_cmd file =
  try
    let records = Amulet_obs.Summary.of_string (read_file file) in
    if records = [] then begin
      Format.eprintf "%s: no trace records found@." file;
      1
    end
    else begin
      Format.printf "%a" Amulet_obs.Summary.pp_report records;
      0
    end
  with
  | Sys_error msg ->
    Format.eprintf "%s@." msg;
    1
  | Amulet_obs.Json.Parse_error msg ->
    Format.eprintf "%s: malformed trace: %s@." file msg;
    1

open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"TRACE" ~doc:"Trace file (Chrome JSON or JSONL).")

let report =
  let doc = "aggregate a trace into per-span/counter statistics" in
  Cmd.v (Cmd.info "report" ~doc) Term.(const report_cmd $ file_arg)

let cmd =
  let doc = "inspect amulet_sim execution traces" in
  Cmd.group (Cmd.info "amulet_prof" ~doc) [ report ]

let () = exit (Cmd.eval' cmd)
