(** The fleet scenario DSL: a small line-oriented text format
    describing a population of simulated wearables and the event
    traffic that drives them.

    Grammar (one directive per line, [#] starts a comment, blank
    lines ignored):

    {v
    scenario <name>                      # identifier for reports
    devices  <int>                       # fleet size
    duration <int>[ms]                   # virtual run length per device
    seed     <int>                       # base seed (CLI may override)
    modes    <mode>=<weight> ...         # isolation-mode mix
    apps     <suite-app> ...             # loaded on every device
    sensors  resting|walking|running|daily_mix|fall@<ms>
    traffic  button|ble|tick rate=<ev/s> [burst=<n>]
    churn    <int>[ms]                   # re-deliver handle_init this often
    v}

    Every quantity is deterministic: device [i] of a scenario with
    base seed [s] derives its private seed with {!device_seed}
    (a splitmix64 finalizer over [s] and [i], the same generator the
    fault injector uses), picks its isolation mode by weighted
    round-robin over the [modes] mix ({!device_mode} — exact
    proportions, no sampling), and generates each [traffic] line's
    arrivals from its own rng stream.  Two runs of the same scenario
    and seed are therefore event-for-event identical, which is what
    lets the fleet service promise bit-identical aggregates. *)

type traffic_kind =
  | Button  (** user button presses, arg = button bitmap *)
  | Ble  (** BLE sync packets, delivered as [Button 2] with a
             packet-id argument (the closest host-visible event the
             kernel routes); [burst] models sync windows *)
  | Tick  (** coarse system ticks *)

type traffic = {
  tr_kind : traffic_kind;
  tr_rate : float;  (** mean arrivals per virtual second, > 0 *)
  tr_burst : int;  (** events delivered per arrival, >= 1 *)
}

type t = {
  sc_name : string;
  sc_devices : int;
  sc_duration_ms : int;
  sc_seed : int;
  sc_modes : (Amulet_cc.Isolation.mode * int) list;
      (** weighted mix, in the order declared; weights > 0 *)
  sc_apps : string list;  (** validated against {!Amulet_apps.Suite} *)
  sc_sensors : Amulet_os.Sensors.scenario;
  sc_traffic : traffic list;
  sc_churn_ms : int option;
}

val default : t
(** One device, 1000 ms, all four modes at weight 1, pedometer,
    [Daily_mix], no traffic, no churn. *)

val parse : string -> (t, string) result
(** Parse scenario text; errors carry the offending line number. *)

val of_file : string -> (t, string) result

val device_seed : seed:int -> index:int -> int
(** Per-device seed derivation: splitmix64 finalizer over
    [seed + (index+1) * golden], truncated to a non-negative OCaml
    int.  Documented so external tooling can reproduce any single
    device of a fleet run in isolation. *)

val device_mode : t -> index:int -> Amulet_cc.Isolation.mode
(** Weighted round-robin over [sc_modes]: with weights summing to
    [W], device [i] gets the mode owning slot [i mod W] — exact
    proportions for any fleet size that is a multiple of [W]. *)

val mode_devices : t -> (Amulet_cc.Isolation.mode * int) list
(** How many of [sc_devices] land on each mode of the mix. *)

val traffic_kind_name : traffic_kind -> string
val pp : Format.formatter -> t -> unit

(** Deterministic splitmix64 stream, shared by the traffic generator
    and the tests.  Deliberately not [Random]: schedules must be
    identical across OCaml versions and across domains. *)
module Rng : sig
  type rng

  val create : int -> rng
  val draw : rng -> int -> int
  (** [draw r bound] is uniform in [\[0, bound)]; [bound >= 1]. *)
end
