lib/os/sensors.mli:
