(** Value-range analysis over the typed AST.

    Classifies every computed-address dereference site for
    {!Amulet_cc.Codegen.gen_program}:

    - [Proven_safe]: the final access address is provably inside the
      accessed object for {e every} execution, by a derivation the
      binary verifier (lib/analysis/verifier.ml) can independently
      replay from the instruction stream.  Codegen elides the
      run-time guard at such sites.
    - [Proven_unsafe]: the access is out of bounds on every execution
      that reaches it; reported eagerly as a compile error.
    - [Needs_check]: everything else keeps the mode's run-time guard.

    Two abstract interpretations run over each function body:

    - a flow-sensitive pass tracking integer ranges and pointer
      provenance of scalar locals (used to prove sites {e unsafe});
    - a flow-insensitive "robust" evaluator that only accepts
      derivations visible in the generated code itself — global
      object bases, constants, [&]-masks, byte loads, power-of-two
      scaling — (used to prove sites {e safe}).

    The asymmetry is deliberate: an elided guard is only sound if the
    independent verifier, which sees registers rather than variables,
    can re-establish the bound.  See DESIGN.md. *)

val analyze : Amulet_cc.Tast.program -> Amulet_cc.Codegen.classifier
(** [analyze prog] inspects every function and returns the site
    classifier to pass to {!Amulet_cc.Codegen.gen_program} (via
    [Driver.compile ~analyze]).  Unknown locations map to
    [Needs_check].

    @raise Amulet_cc.Srcloc.Error for a proven-out-of-bounds access. *)

val loop_bounds :
  Amulet_cc.Tast.program -> Amulet_cc.Srcloc.t -> int option
(** [loop_bounds prog] runs the same flow-sensitive pass and returns,
    keyed by a loop condition's source location, the maximum number of
    {e body executions} the loop can perform per entry — defined only
    for plain counted loops (tracked scalar against a constant, a
    single unconditional constant-step update, no [continue], no
    possible 16-bit wraparound before the exit test).  Codegen
    attaches these to the loop's header label
    ({!Amulet_cc.Codegen.gen_program}'s [loop_bound] argument) and the
    AFT stamps them into the image as [wcet.loop.<label>] notes for
    the binary WCET pass ({!Wcet}).

    @raise Amulet_cc.Srcloc.Error for a proven-out-of-bounds access. *)
