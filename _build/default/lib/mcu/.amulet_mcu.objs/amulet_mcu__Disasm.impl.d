lib/mcu/disasm.ml: Decode Format List Opcode Printf String
