lib/aft/stubs.ml: Amulet_cc Amulet_link Amulet_mcu Layout List
