let records_of_json j =
  let arr =
    match Json.member "traceEvents" j with
    | Some (Json.Arr xs) -> xs
    | _ -> ( match j with Json.Arr xs -> xs | _ -> [ j ])
  in
  List.filter_map Obs.record_of_json arr

let of_string text =
  let trimmed = String.trim text in
  let jsonl () =
    (* JSONL: one record per non-empty line *)
    String.split_on_char '\n' text
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" then None
           else Obs.record_of_json (Json.parse line))
  in
  if trimmed = "" then []
  else if trimmed.[0] = '{' then
    (* either one Chrome trace document or a JSONL stream (which also
       starts with '{' but fails to parse as a single value) *)
    match Json.parse trimmed with
    | j -> records_of_json j
    | exception Json.Parse_error _ -> jsonl ()
  else if trimmed.[0] = '[' then records_of_json (Json.parse trimmed)
  else jsonl ()

(* ------------------------------------------------------------------ *)
(* Aggregation *)

type span_agg = {
  mutable s_count : int;
  mutable s_total : int;
  mutable s_max : int;
}

let pp_report ppf records =
  let spans : (string * string, span_agg) Hashtbl.t = Hashtbl.create 16 in
  let counters : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
  (* name -> (max, last) *)
  let instants : (string * string, int) Hashtbl.t = Hashtbl.create 8 in
  let faults = ref [] in
  let t_min = ref max_int and t_max = ref min_int in
  List.iter
    (fun r ->
      let ts = Obs.record_ts r in
      if ts < !t_min then t_min := ts;
      if ts > !t_max then t_max := ts;
      match r with
      | Obs.Span { name; cat; dur; ts; _ } ->
        if ts + dur > !t_max then t_max := ts + dur;
        let key = (cat, name) in
        let agg =
          match Hashtbl.find_opt spans key with
          | Some a -> a
          | None ->
            let a = { s_count = 0; s_total = 0; s_max = 0 } in
            Hashtbl.add spans key a;
            a
        in
        agg.s_count <- agg.s_count + 1;
        agg.s_total <- agg.s_total + dur;
        if dur > agg.s_max then agg.s_max <- dur
      | Obs.Counter { name; value; _ } ->
        let mx, _ =
          Option.value ~default:(min_int, 0) (Hashtbl.find_opt counters name)
        in
        Hashtbl.replace counters name (max mx value, value)
      | Obs.Instant { name; cat; args; _ } ->
        let key = (cat, name) in
        Hashtbl.replace instants key
          (1 + Option.value ~default:0 (Hashtbl.find_opt instants key));
        if name = "fault" then
          faults :=
            (ts,
             Option.value ~default:"(no message)"
               (Obs.str_arg r "message"))
            :: !faults;
        ignore args)
    records;
  Format.fprintf ppf "%d records" (List.length records);
  if records <> [] then
    Format.fprintf ppf ", cycles %d..%d (%d elapsed)" !t_min !t_max
      (!t_max - !t_min);
  Format.fprintf ppf "@.";
  let sorted_spans =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) spans []
    |> List.sort (fun (_, a) (_, b) -> compare b.s_total a.s_total)
  in
  if sorted_spans <> [] then begin
    Format.fprintf ppf "@.spans (by total cycles):@.";
    Format.fprintf ppf "  %-12s %-24s %8s %12s %10s %10s@." "category" "name"
      "count" "total" "avg" "max";
    List.iter
      (fun ((cat, name), a) ->
        Format.fprintf ppf "  %-12s %-24s %8d %12d %10.1f %10d@." cat name
          a.s_count a.s_total
          (float_of_int a.s_total /. float_of_int (max 1 a.s_count))
          a.s_max)
      sorted_spans
  end;
  let sorted_counters =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters []
    |> List.sort compare
  in
  if sorted_counters <> [] then begin
    Format.fprintf ppf "@.counters:@.";
    List.iter
      (fun (name, (mx, last)) ->
        Format.fprintf ppf "  %-24s max %d, final %d@." name mx last)
      sorted_counters
  end;
  let sorted_instants =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) instants [] |> List.sort compare
  in
  if sorted_instants <> [] then begin
    Format.fprintf ppf "@.instants:@.";
    List.iter
      (fun ((cat, name), count) ->
        Format.fprintf ppf "  %-12s %-24s %8d@." cat name count)
      sorted_instants
  end;
  List.iter
    (fun (ts, msg) -> Format.fprintf ppf "@.FAULT at cycle %d: %s@." ts msg)
    (List.sort compare !faults)
