(** Energy and battery model used to convert isolation-overhead cycles
    into battery-lifetime impact (paper Fig. 2, right axis).

    Parameters follow the MSP430FR5969 datasheet and the Amulet
    hardware: ~100 uA/MHz active current at 3.0 V and 16 MHz gives
    about 0.9 mW, i.e. ~56 pJ per cycle; the Amulet battery is a
    110 mAh lithium cell (~1188 J) and the platform targets a
    two-week lifetime. *)

val clock_hz : float
val active_watts : float
val joules_per_cycle : float
val battery_joules : float
val baseline_lifetime_weeks : float

val weekly_energy_budget_joules : float
(** Energy spent per week at the baseline lifetime. *)

val overhead_joules : cycles:float -> float

val battery_impact_percent : overhead_cycles_per_week:float -> float
(** Share of the weekly energy budget consumed by isolation overhead,
    as a percentage (the paper reports < 0.5 % for all apps). *)
