type event =
  | Exec of { pc : int; instr : Opcode.t }
  | Mem_read of { addr : int; width : Word.width; value : int; pc : int }
  | Mem_write of { addr : int; width : Word.width; value : int; pc : int }
  | Io_write of { addr : int; value : int }
  | Fault_event of string

type stats = {
  mutable fetch_words : int;
  mutable data_reads : int;
  mutable data_writes : int;
}

let create_stats () = { fetch_words = 0; data_reads = 0; data_writes = 0 }

let reset_stats s =
  s.fetch_words <- 0;
  s.data_reads <- 0;
  s.data_writes <- 0

let data_accesses s = s.data_reads + s.data_writes

type ring = { buf : event option array; mutable next : int; mutable count : int }

let create_ring ~capacity =
  { buf = Array.make (max 1 capacity) None; next = 0; count = 0 }

let record r e =
  r.buf.(r.next) <- Some e;
  r.next <- (r.next + 1) mod Array.length r.buf;
  r.count <- min (r.count + 1) (Array.length r.buf)

let events r =
  let cap = Array.length r.buf in
  let start = (r.next - r.count + cap) mod cap in
  List.init r.count (fun i ->
      match r.buf.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let width_tag = function Word.W8 -> "b" | Word.W16 -> "w"

let pp_event ppf = function
  | Exec { pc; instr } ->
    Format.fprintf ppf "%04X: %a" pc Opcode.pp instr
  | Mem_read { addr; width; value; pc } ->
    Format.fprintf ppf "%04X: read.%s  [%04X] -> %04X" pc (width_tag width)
      addr value
  | Mem_write { addr; width; value; pc } ->
    Format.fprintf ppf "%04X: write.%s [%04X] <- %04X" pc (width_tag width)
      addr value
  | Io_write { addr; value } ->
    Format.fprintf ppf "io [%04X] <- %04X" addr value
  | Fault_event s -> Format.fprintf ppf "fault: %s" s
