lib/mcu/cycles.ml: Opcode Word
