lib/os/api.ml: Amulet_cc Amulet_mcu Array Buffer Char Event List Sensors String
