lib/mcu/memory.ml: Bytes Char List Memory_map Word
