(* Shadow return-address stack tests (the paper's future-work
   hardening: a return-address stack in InfoMem).  It must be
   transparent to correct programs under every isolation mode, and it
   must catch return-address corruption even where the mode alone
   would not. *)

module H = Test_support.Harness
module Iso = Amulet_cc.Isolation
module M = Amulet_mcu.Machine
module Aft = Amulet_aft.Aft
module Os = Amulet_os

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Transparent for correct code: deep call chains and recursion give
   the same results with the shadow stack armed. *)
let test_transparent_all_modes () =
  let src =
    "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n\
     int main() { return fib(12); }"
  in
  List.iter
    (fun mode ->
      if Iso.allows_recursion mode then
        H.check_main ~mode ~shadow:true ~expect:144 src)
    Iso.all;
  (* and an iterative, array-flavoured program for feature-limited *)
  H.check_main ~mode:Iso.Feature_limited ~shadow:true ~expect:34
    "int tab[10];\n\
     int main() { int i; tab[0] = 0; tab[1] = 1;\n\
     for (i = 2; i < 10; i++) tab[i] = tab[i-1] + tab[i-2];\n\
     return tab[9]; }"

(* A return-address smash that no-isolation alone cannot see: the
   overwrite stays inside mapped memory (the shared SRAM stack), the
   function returns to attacker-chosen territory.  With the shadow
   stack the mismatch faults before the RET. *)
let smash_src =
  "int n = 6;\n\
   int smash() {\n\
   \  int a[2];\n\
   \  int i;\n\
   \  for (i = 0; i < n; i++) a[i] = 0x9000;\n\
   \  return a[0];\n\
   }\n\
   int main() { return smash(); }"

let test_catches_smash_noiso () =
  let r = H.run ~mode:Iso.No_isolation ~shadow:true smash_src in
  match r.H.stop with
  | M.Sw_fault c when c = Iso.fault_shadow_stack -> ()
  | other ->
    Alcotest.failf "expected shadow-stack fault, got %a" M.pp_stop_reason
      other

let test_noiso_alone_misses_smash () =
  (* sanity: without the shadow stack, no-isolation returns to 0x9000
     and executes whatever sits there (here: zeros -> illegal/unmapped
     behaviour, but no *detected isolation fault* at the RET) *)
  let r = H.run ~mode:Iso.No_isolation smash_src in
  match r.H.stop with
  | M.Sw_fault _ -> Alcotest.fail "no checks should exist here"
  | _ -> ()

let test_catches_smash_under_mpu () =
  let r = H.run ~mode:Iso.Mpu_assisted ~shadow:true smash_src in
  match r.H.stop with
  | M.Sw_fault c
    when c = Iso.fault_shadow_stack || c = Iso.fault_data_lo
         || c = Iso.fault_data_hi ->
    ()
  | M.Faulted (M.Mpu_violation _) -> ()
  | other -> Alcotest.failf "uncaught: %a" M.pp_stop_reason other

(* Under the kernel: firmware built with ~shadow:true runs apps
   normally and the InfoMem pointer cell is live. *)
let test_kernel_with_shadow () =
  let app =
    "int count = 0;\n\
     int helper(int x) { return x + 1; }\n\
     void handle_init(int arg) { api_set_timer(100); }\n\
     void handle_timer(int arg) { count = helper(count); }\n"
  in
  List.iter
    (fun mode ->
      let fw =
        Aft.build ~mode ~shadow:true [ { Aft.name = "app"; source = app } ]
      in
      let k = Os.Kernel.create fw in
      let _ = Os.Kernel.run_for_ms k 1_000 in
      let st = Os.Kernel.app_by_name k "app" in
      (match st.Os.Kernel.last_fault with
      | Some f -> Alcotest.failf "%s: faulted: %s" (Iso.name mode) f
      | None -> ());
      let count =
        M.mem_checked_read k.Os.Kernel.machine Amulet_mcu.Word.W16
          (Amulet_link.Image.symbol k.Os.Kernel.fw.Aft.fw_image "app$count")
      in
      check_bool (Iso.name mode ^ ": timer ran") true (count >= 8);
      (* the shadow pointer cell rests at its base between dispatches *)
      check_int
        (Iso.name mode ^ ": shadow sp balanced")
        Iso.shadow_base
        (M.mem_checked_read k.Os.Kernel.machine Amulet_mcu.Word.W16
           Iso.shadow_sp_addr))
    Iso.all

(* The cost: shadow push/check adds a fixed number of cycles per call.
   Measure it and insist it stays modest (the ablation bench reports
   the exact value). *)
let test_shadow_cost_bounded () =
  let src =
    "int leaf(int x) { return x + 1; }\n\
     int main() { int i; int s = 0; for (i = 0; i < 50; i++) s = leaf(s); \
     return s; }"
  in
  let cycles shadow =
    let r = H.run_ok ~mode:Iso.No_isolation ~shadow src in
    M.cycles r.H.machine
  in
  let plain = cycles false and hardened = cycles true in
  let per_call = float_of_int (hardened - plain) /. 51.0 in
  check_bool
    (Printf.sprintf "cost/call %.1f cycles in [10, 60]" per_call)
    true
    (per_call >= 10.0 && per_call <= 60.0)

let quick name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "shadow"
    [
      ( "shadow-stack",
        [
          quick "transparent" test_transparent_all_modes;
          quick "catches smash (no-isolation)" test_catches_smash_noiso;
          quick "baseline misses smash" test_noiso_alone_misses_smash;
          quick "catches smash (mpu)" test_catches_smash_under_mpu;
          quick "kernel integration" test_kernel_with_shadow;
          quick "bounded cost" test_shadow_cost_bounded;
        ] );
    ]
