(** Explicit-state bounded model checking with k-induction.

    BDD-free and SMT-free: the abstract systems proved here have a few
    hundred states, so the engine enumerates — but it reports [Proved]
    only for properties that are genuinely k-inductive (with optional
    invariant strengthening), and its counterexamples are shortest
    traces from a breadth-first search, replayable on the concrete
    machine. *)

type ('s, 'a) system = {
  universe : 's list;  (** finite superset of every reachable state *)
  inits : 's list;
  actions : 'a list;
  step : 's -> 'a -> 's option;  (** [None]: action disabled *)
  prop : 's -> bool;
  equal : 's -> 's -> bool;
  pp_state : Format.formatter -> 's -> unit;
  pp_action : Format.formatter -> 'a -> unit;
}

type ('s, 'a) verdict =
  | Proved of { k : int; reachable : int; strengthened : bool }
  | Refuted of { trace : ('s * 'a) list; final : 's }
      (** shortest path from an initial state to a property violation *)
  | Unknown of { k_max : int; reason : string }

val bmc : ('s, 'a) system -> (('s * 'a) list * 's) option
(** Shortest counterexample by breadth-first reachability, or [None]
    when the property holds on every reachable state. *)

val k_induction :
  ?k_max:int -> ?aux:('s -> bool) -> ('s, 'a) system -> ('s, 'a) verdict
(** Prove [prop] by k-induction, searching k = 1..[k_max] (default 8).
    [aux] conjoins an auxiliary strengthening predicate; it must hold
    on every reachable state or the verdict is [Unknown].  A reachable
    violation of [prop] yields [Refuted] with a shortest trace. *)

val pp_trace :
  pp_state:(Format.formatter -> 's -> unit) ->
  pp_action:(Format.formatter -> 'a -> unit) ->
  Format.formatter ->
  ('s * 'a) list * 's ->
  unit

val pp_verdict :
  ('s, 'a) system -> Format.formatter -> ('s, 'a) verdict -> unit
