(* Gate-argument provenance.

   The kernel's API dispatcher re-validates every pointer argument an
   app passes through an OS gate ([Api.dispatch]'s [with_range]): the
   whole range [addr, addr+len) must lie inside the app's writable
   region.  This pass proves, per call site, that the pointer can only
   ever point into the app's own D_i region — for any execution
   reaching the site — so the kernel may elide that dynamic check for
   the certified services of a certified image.

   The analysis is a per-function abstract interpretation over the
   CFI-reconstructed CFG with a three-point domain per register:

   - [Iv (l, h)]  — an unsigned 16-bit interval (link-time constants:
     global and string addresses, literal lengths);
   - [Fp (dl, dh)] — frame-relative: FP + a signed displacement
     interval (addresses of locals);
   - [Top]        — anything (loads, helper results, arguments).

   An [Iv] pointer certifies directly against the [data__start,
   data__end) symbols.  An [Fp] pointer needs a bound on FP itself:
   {!Stackcert}'s per-function entry-depth maximum pins FP between
   [stack_top - entry_max - 2] and [stack_top - trampoline - 2], which
   only exists in separate-stack modes — with a shared stack the
   frame's location is not statically boundable, and such sites stay
   uncertified (the dynamic check remains).

   The extent validated by the kernel is over-approximated from the
   service and the abstract length argument, mirroring the kernel's
   own clamps (e.g. [api_read_accel] validates at most 128 bytes). *)

module I = Amulet_link.Image
module O = Amulet_mcu.Opcode
module W = Amulet_mcu.Word
module Iso = Amulet_cc.Isolation
module Ct = Amulet_cc.Ctype

type value = Top | Iv of int * int | Fp of int * int

type site = {
  gs_fn : string;  (** mangled name of the enclosing function *)
  gs_addr : int;  (** address of the CALL #__gate_* instruction *)
  gs_service : string;
  gs_certified : bool;
  gs_reason : string;
}

type t = {
  gt_sites : site list;
  gt_certified : string list;
      (** services every one of whose pointer-carrying call sites is
          certified (and that have at least one such site) *)
}

let signed16 k = if k land 0x8000 <> 0 then (k land 0xFFFF) - 0x10000 else k

(* signed view of an unsigned interval; None when it spans the sign
   boundary *)
let signed_iv l h =
  let sl = signed16 l and sh = signed16 h in
  if sl <= sh then Some (sl, sh) else None

let join_value a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Iv (l1, h1), Iv (l2, h2) -> Iv (min l1 l2, max h1 h2)
  | Fp (l1, h1), Fp (l2, h2) -> Fp (min l1 l2, max h1 h2)
  | _ -> Top

let add_value a b =
  match (a, b) with
  | Iv (l1, h1), Iv (l2, h2) ->
    if h1 + h2 <= 0xFFFF then Iv (l1 + l2, h1 + h2) else Top
  | Fp (dl, dh), Iv (l, h) | Iv (l, h), Fp (dl, dh) -> (
    match signed_iv l h with
    | Some (sl, sh) -> Fp (dl + sl, dh + sh)
    | None -> Top)
  | _ -> Top

let sub_value a b =
  match (a, b) with
  | Iv (l1, h1), Iv (l2, h2) -> if l1 - h2 >= 0 then Iv (l1 - h2, h1 - l2) else Top
  | Fp (dl, dh), Iv (l, h) -> (
    match signed_iv l h with
    | Some (sl, sh) -> Fp (dl - sh, dh - sl)
    | None -> Top)
  | _ -> Top

let src_value regs width src =
  match src with
  | O.S_immediate k ->
    let m = match width with W.W8 -> k land 0xFF | W.W16 -> k land 0xFFFF in
    Iv (m, m)
  | O.S_reg s -> regs.(s)
  | _ -> Top (* memory loads *)

(* A byte-width write clears the register's high byte. *)
let byte_clamp width v =
  match width with
  | W.W16 -> v
  | W.W8 -> (
    match v with Iv (l, h) when 0 <= l && h <= 0xFF -> v | _ -> Iv (0, 0xFF))

let step regs (i : Cfi.insn) =
  match i.Cfi.i_op with
  | O.Fmt1 (op, w, src, O.D_reg d) when O.writes_back op ->
    let sv = src_value regs w src in
    let nv =
      match op with
      | O.MOV -> (
        match src with
        (* the prologue's MOV SP, R4 establishes the frame pointer —
           the reference point of every Fp value *)
        | O.S_reg 1 -> if d = 4 then Fp (0, 0) else Top
        | _ -> sv)
      | O.ADD -> add_value regs.(d) sv
      | O.SUB -> sub_value regs.(d) sv
      | O.AND -> (
        match src with O.S_immediate k -> Iv (0, k land 0xFFFF) | _ -> Top)
      | _ -> Top
    in
    regs.(d) <- byte_clamp w nv
  | O.Fmt1 _ -> () (* memory destinations, CMP, BIT *)
  | O.Fmt2 (O.CALL, _, _) ->
    (* caller-saved registers die across any call *)
    for r = 12 to 15 do
      regs.(r) <- Top
    done
  | O.Fmt2 ((O.RRC | O.SWPB | O.RRA | O.SXT), _, O.S_reg r) -> regs.(r) <- Top
  | O.Fmt2 _ | O.Jump _ | O.Reti -> ()

(* ------------------------------------------------------------------ *)
(* Per-function fixpoint *)

let widen_limit = 8

let fixpoint (f : Cfi.func) : (int, value array) Hashtbl.t =
  let states : (int, value array) Hashtbl.t = Hashtbl.create 16 in
  let counts : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let work = Queue.create () in
  let block_of = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace block_of b.Cfi.b_addr b) f.Cfi.f_blocks;
  let schedule a st =
    match Hashtbl.find_opt states a with
    | None ->
      Hashtbl.replace states a st;
      Queue.push a work
    | Some old ->
      let j = Array.init 16 (fun r -> join_value old.(r) st.(r)) in
      if j <> old then begin
        let c = Option.value ~default:0 (Hashtbl.find_opt counts a) + 1 in
        Hashtbl.replace counts a c;
        (* intervals can keep growing around a loop; past the limit,
           degrade every still-changing register to Top *)
        let j =
          if c > widen_limit then
            Array.init 16 (fun r -> if j.(r) = old.(r) then old.(r) else Top)
          else j
        in
        if j <> old then begin
          Hashtbl.replace states a j;
          Queue.push a work
        end
      end
  in
  schedule f.Cfi.f_entry (Array.make 16 Top);
  while not (Queue.is_empty work) do
    let a = Queue.pop work in
    match Hashtbl.find_opt block_of a with
    | None -> ()
    | Some b ->
      let regs = Array.copy (Hashtbl.find states a) in
      List.iter (fun i -> step regs i) b.Cfi.b_insns;
      List.iter (fun (t, _) -> schedule t regs) b.Cfi.b_succs
  done;
  states

(* ------------------------------------------------------------------ *)
(* Certification *)

(* Upper bound on the byte extent the kernel validates for [svc],
   given the abstract length argument in R13.  Mirrors the clamps in
   [Api.dispatch]; 128 is the universal worst case. *)
let extent svc regs =
  let n13 =
    match regs.(13) with Iv (_, h) when h <= 0x7FFF -> Some h | _ -> None
  in
  match svc with
  | "api_read_accel" | "api_read_ppg" -> (
    match n13 with Some h -> 2 * max 1 (min 64 h) | None -> 128)
  | "api_read_accel_xyz" -> 6
  | "api_display_write" -> 1
  | "api_log_append" | "api_send_ble" -> (
    match n13 with Some h -> max 0 (min 128 h) | None -> 128)
  | _ -> 128

(* Indices of the pointer parameters of a service (position i is
   passed in register 12+i). *)
let ptr_params svc =
  match List.assoc_opt svc Amulet_cc.Apis.signatures with
  | Some (Ct.Func (_, args)) ->
    List.mapi (fun i a -> (i, a)) args
    |> List.filter (fun (_, a) -> match a with Ct.Ptr _ -> true | _ -> false)
    |> List.map fst
  | _ -> []

type bounds = {
  data_lo : int;
  data_hi : int;
  stack_top : int option;
  sep : bool;  (** separate-stack mode *)
}

let certify_arg bounds stack fname svc regs idx =
  let ext = extent svc regs in
  match regs.(12 + idx) with
  | Top -> (false, Printf.sprintf "arg %d: provenance unknown" idx)
  | Iv (l, h) ->
    if l >= bounds.data_lo && h + ext <= bounds.data_hi then
      ( true,
        Printf.sprintf "arg %d: [%04X,%04X]+%d within the D region" idx l h ext
      )
    else
      (false, Printf.sprintf "arg %d: [%04X,%04X]+%d escapes the D region" idx l h ext)
  | Fp (dl, dh) -> (
    if not bounds.sep then
      (false, Printf.sprintf "arg %d: frame-relative with a shared stack" idx)
    else
      match (bounds.stack_top, Stackcert.entry_max_of stack fname) with
      | Some top, Some em ->
        (* FP = entry SP - 2 (saved FP), and the entry SP sits between
           [stack_top - entry_max] and [stack_top - trampoline] *)
        let fp_min = top - em - 2
        and fp_max = top - Stackcert.trampoline_bytes - 2 in
        if fp_min + dl >= bounds.data_lo && fp_max + dh + ext <= bounds.data_hi
        then
          ( true,
            Printf.sprintf "arg %d: FP%+d..FP%+d+%d within the D region" idx dl
              dh ext )
        else
          ( false,
            Printf.sprintf "arg %d: FP%+d..FP%+d+%d may escape the D region"
              idx dl dh ext )
      | _, None ->
        (false,
         Printf.sprintf "arg %d: no certified entry depth for %s" idx fname)
      | None, _ -> (false, Printf.sprintf "arg %d: no stack_top symbol" idx))

let analyze ~(cfg : Cfi.t) ~(stack : Stackcert.t) ~(image : I.t) =
  let prefix = cfg.Cfi.cf_prefix in
  let sym name =
    try I.symbol image name
    with Not_found ->
      invalid_arg (Printf.sprintf "gate_taint: image has no %s" name)
  in
  let bounds =
    {
      data_lo = sym (Iso.data_lo_sym ~prefix);
      data_hi = sym (Iso.data_hi_sym ~prefix);
      stack_top =
        (try Some (I.symbol image (Iso.stack_top_sym ~prefix) land lnot 1)
         with Not_found -> None);
      sep = Iso.separate_stacks cfg.Cfi.cf_mode;
    }
  in
  let sites = ref [] in
  List.iter
    (fun (f : Cfi.func) ->
      let states = fixpoint f in
      List.iter
        (fun (b : Cfi.block) ->
          match Hashtbl.find_opt states b.Cfi.b_addr with
          | None -> () (* unreachable *)
          | Some st ->
            let regs = Array.copy st in
            List.iter
              (fun (i : Cfi.insn) ->
                (match Cfi.call_target cfg i.Cfi.i_op with
                | Some (Cfi.C_gate svc) -> (
                  match ptr_params svc with
                  | [] -> () (* nothing for the kernel to validate *)
                  | idxs ->
                    let results =
                      List.map
                        (certify_arg bounds stack f.Cfi.f_name svc regs)
                        idxs
                    in
                    let certified = List.for_all fst results in
                    let reason =
                      String.concat "; "
                        (List.map snd
                           (if certified then results
                            else List.filter (fun (ok, _) -> not ok) results))
                    in
                    sites :=
                      {
                        gs_fn = f.Cfi.f_name;
                        gs_addr = i.Cfi.i_addr;
                        gs_service = svc;
                        gs_certified = certified;
                        gs_reason = reason;
                      }
                      :: !sites)
                | _ -> ());
                step regs i)
              b.Cfi.b_insns)
        f.Cfi.f_blocks)
    (Cfi.functions cfg);
  let sites = List.rev !sites in
  let by_svc : (string, bool) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let cur =
        Option.value ~default:true (Hashtbl.find_opt by_svc s.gs_service)
      in
      Hashtbl.replace by_svc s.gs_service (cur && s.gs_certified))
    sites;
  let certified =
    Hashtbl.fold (fun k ok acc -> if ok then k :: acc else acc) by_svc []
    |> List.sort compare
  in
  { gt_sites = sites; gt_certified = certified }

let pp_site ppf s =
  Format.fprintf ppf "%04X %s: %s %s — %s" s.gs_addr s.gs_fn s.gs_service
    (if s.gs_certified then "certified" else "not certified")
    s.gs_reason
