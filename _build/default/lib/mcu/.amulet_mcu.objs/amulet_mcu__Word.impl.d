lib/mcu/word.ml:
