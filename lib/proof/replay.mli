(** Counterexample replay on the concrete machine.

    An abstract refutation trace is hand-encoded as a bare-metal
    payload at the attacker's code region, run under the mode's MPU
    configuration, and observed by the campaign oracle's sanction
    rules.  Validates the abstract MPU/memory claims: where raw
    accesses land, what the MPU blocks, and that predicted breaches
    really happen.  Guard and gate stucks are out of scope (they live
    in toolchain-emitted code and the kernel — the attack campaign
    covers them end-to-end). *)

type report = {
  rp_stop : string;  (** concrete stop reason *)
  rp_breaches : (Absmachine.kind * int) list;
      (** sanction violations observed, in order *)
  rp_ok : bool;  (** the concrete run matches the abstract verdict *)
  rp_detail : string;
}

val replay :
  mode:Amulet_cc.Isolation.mode ->
  ?geom:Absmachine.geom ->
  trace:(Absmachine.state * Absmachine.action) list ->
  final:Absmachine.state ->
  unit ->
  (report, string) result
(** [Error] when the trace uses actions a bare machine cannot express
    (gates, toolchain guards). *)
