module ISet = Set.Make (Int)
module IMap = Map.Make (Int)

type node = { n_id : int; n_succs : int list }
type graph = { g_entry : int; g_nodes : node list }

type loop = {
  l_header : int;
  l_back_edges : (int * int) list;
  l_body : int list;
}

type verdict =
  | Reducible of loop list
  | Irreducible of { edge_src : int; edge_dst : int }

let analyze g =
  let succ_map =
    List.fold_left
      (fun m n -> IMap.add n.n_id n.n_succs m)
      IMap.empty g.g_nodes
  in
  let raw_succs id = try IMap.find id succ_map with Not_found -> [] in
  (* restrict to nodes reachable from the entry; edges out of the
     known node set are span exits and carry no loop structure *)
  let rec reach seen id =
    if ISet.mem id seen || not (IMap.mem id succ_map) then seen
    else List.fold_left reach (ISet.add id seen) (raw_succs id)
  in
  let nodes = reach ISet.empty g.g_entry in
  let succs id = List.filter (fun s -> ISet.mem s nodes) (raw_succs id) in
  let preds = Hashtbl.create 16 in
  ISet.iter
    (fun n ->
      List.iter
        (fun s ->
          Hashtbl.replace preds s
            (n :: Option.value ~default:[] (Hashtbl.find_opt preds s)))
        (succs n))
    nodes;
  (* iterative dominator sets; the graphs here are tens of nodes, so
     the quadratic dataflow is fine and hard to get wrong *)
  let doms = Hashtbl.create 16 in
  ISet.iter
    (fun n ->
      Hashtbl.replace doms n
        (if n = g.g_entry then ISet.singleton n else nodes))
    nodes;
  let changed = ref true in
  while !changed do
    changed := false;
    ISet.iter
      (fun n ->
        if n <> g.g_entry then begin
          let ps = Option.value ~default:[] (Hashtbl.find_opt preds n) in
          let inter =
            List.fold_left
              (fun acc p -> ISet.inter acc (Hashtbl.find doms p))
              nodes ps
          in
          let d = ISet.add n inter in
          if not (ISet.equal d (Hashtbl.find doms n)) then begin
            Hashtbl.replace doms n d;
            changed := true
          end
        end)
      nodes
  done;
  let dominates a b = ISet.mem a (Hashtbl.find doms b) in
  let back_edges =
    ISet.fold
      (fun u acc ->
        List.fold_left
          (fun acc v -> if dominates v u then (u, v) :: acc else acc)
          acc (succs u))
      nodes []
  in
  let is_back u v = List.mem (u, v) back_edges in
  (* reducibility: with the back edges removed the graph must be
     acyclic; a surviving retreating edge is a second entry into some
     loop and defeats per-header iteration bounds *)
  let color = Hashtbl.create 16 in
  let offending = ref None in
  let rec dfs u =
    match Hashtbl.find_opt color u with
    | Some `Done -> ()
    | Some `Active -> ()
    | None ->
      Hashtbl.replace color u `Active;
      List.iter
        (fun v ->
          if not (is_back u v) then
            match Hashtbl.find_opt color v with
            | Some `Active -> if !offending = None then offending := Some (u, v)
            | Some `Done -> ()
            | None -> dfs v)
        (succs u);
      Hashtbl.replace color u `Done
  in
  if ISet.mem g.g_entry nodes then dfs g.g_entry;
  match !offending with
  | Some (edge_src, edge_dst) -> Irreducible { edge_src; edge_dst }
  | None ->
    (* natural loop of a back edge (u, h): h plus everything that
       reaches u without passing through h *)
    let by_header = Hashtbl.create 8 in
    List.iter
      (fun (u, h) ->
        let body = ref (ISet.singleton h) in
        let rec pull n =
          if not (ISet.mem n !body) then begin
            body := ISet.add n !body;
            List.iter pull
              (Option.value ~default:[] (Hashtbl.find_opt preds n))
          end
        in
        pull u;
        let prev_edges, prev_body =
          Option.value ~default:([], ISet.empty)
            (Hashtbl.find_opt by_header h)
        in
        Hashtbl.replace by_header h
          ((u, h) :: prev_edges, ISet.union prev_body !body))
      back_edges;
    let loops =
      Hashtbl.fold
        (fun h (edges, body) acc ->
          { l_header = h;
            l_back_edges = List.rev edges;
            l_body = ISet.elements body }
          :: acc)
        by_header []
    in
    Reducible
      (List.sort
         (fun a b ->
           compare
             (List.length a.l_body, a.l_header)
             (List.length b.l_body, b.l_header))
         loops)

let of_func (f : Cfi.func) =
  {
    g_entry = f.Cfi.f_entry;
    g_nodes =
      List.map
        (fun (b : Cfi.block) ->
          { n_id = b.Cfi.b_addr;
            n_succs = List.map fst b.Cfi.b_succs })
        f.Cfi.f_blocks;
  }
