(** Code generator: typed AST to MSP430-like assembly, inserting the
    memory-isolation checks demanded by the selected mode.

    Check placement follows the paper exactly:

    - every dereference of a {e computed} address (pointer deref,
      dynamically-indexed array, [->], function-pointer call) is
      guarded; named variables, struct fields of named variables and
      constant-index array accesses are verified statically and get no
      run-time check;
    - [Software_only]: lower and upper bound compare-against-constant;
    - [Mpu_assisted]: lower bound only (the MPU catches the rest);
    - [Feature_limited]: array-index check via the [__bounds_check]
      runtime helper (the original Amulet scheme);
    - [Software_only] and [Mpu_assisted] also bounds-check the return
      address before every RET.

    The bound "constants" are the linker's section start/end symbols,
    resolved in AFT phase 4. *)

(** Verdict of the range analysis (lib/analysis) for one dereference
    site, identified by the source location of the access expression.
    Without an analysis every site is [Needs_check]. *)
type site_class =
  | Proven_safe  (** always in bounds: the run-time guard is elided *)
  | Needs_check  (** nothing proven: emit the mode's run-time guard *)
  | Proven_unsafe of string
      (** always out of bounds: compiling the site raises
          {!Srcloc.Error} with this message *)

type classifier = Srcloc.t -> site_class

(** Per-function dereference-site accounting. [proven_unsafe] is only
    ever non-zero in analysis results that are inspected without being
    compiled; compiling a proven-unsafe site is an error. *)
type site_stats = { checked : int; elided : int; proven_unsafe : int }

(** Per-function facts for the call-graph, stack-depth analysis and
    the resource profiler. *)
type fn_info = {
  fi_name : string;  (** unmangled *)
  fi_frame_bytes : int;  (** locals area *)
  fi_saved_regs : int;  (** callee-saved registers pushed *)
  fi_calls : string list;  (** direct in-unit callees *)
  fi_api_calls : string list;  (** OS API gates invoked *)
  fi_sites : site_stats;  (** run-time-guarded vs elided dereferences *)
  fi_static_sites : int;  (** accesses discharged at compile time *)
  fi_fnptr_calls : int;
  fi_spill_bytes : int;
      (** measured high-water mark of transient stack temporaries
          (expression spills + pushed call arguments) *)
  fi_runtime_bytes : int;
      (** deepest stack use of any runtime-helper or gate call made by
          this function, including its return address; 0 when none *)
}

type output = {
  code : Amulet_link.Asm.item list;
  data : Amulet_link.Asm.item list;
  infos : fn_info list;
  handlers : string list;  (** functions named [handle_*] (event entry points) *)
  loops : (string * int) list;
      (** [(header label, max body executions)] for every loop the
          [loop_bound] oracle bounded.  The header label is the loop's
          back-edge target and is emitted as an ordinary symbol, so
          the bound can be attached to the linked image (as a
          [wcet.loop.<label>] note) without changing any code byte. *)
}

val fold_const : Tast.texpr -> int option
(** Exact 16-bit constant folding, reproducing the machine's
    signedness rules; the range analysis must agree with codegen on
    which indices are compile-time constants. *)

val log2_exact : int -> int option
(** [log2_exact n] is [Some k] iff [n = 2^k], [n > 0].  Exported so
    the range analysis agrees with codegen on which multiplications
    compile to ADD-doubling (and are therefore visible to the binary
    verifier) rather than a [__mulhi] helper call. *)

val gen_program :
  prefix:string ->
  mode:Isolation.mode ->
  ?shadow:bool ->
  ?classify:classifier ->
  ?loop_bound:(Srcloc.t -> int option) ->
  Tast.program ->
  output
(** [classify] is consulted once per computed-address dereference site
    (pointer deref, [->], dynamically-indexed array) in the modes that
    insert guards; [Proven_safe] suppresses the guard.

    [loop_bound] is consulted once per loop statement with the
    condition's source location ({!Amulet_analysis.Range.loop_bounds}
    is the producer); a [Some b] is recorded against the loop's header
    label in [output.loops] and changes nothing about the emitted
    code.

    [shadow] enables the shadow return-address stack (an optional
    hardening on top of any mode): prologues copy the return address
    into the InfoMem shadow stack, epilogues compare and fault on
    mismatch, replacing the plain bounds check on the return slot.
    @raise Srcloc.Error on constructs the backend cannot compile
    (non-constant global initializers, struct assignment, ...). *)
