module M = Amulet_mcu.Machine
module Image = Amulet_link.Image
module Iso = Amulet_cc.Isolation
module Layout = Amulet_aft.Layout

type category = App_code | Guard | Os_gate | Mpu_config | Kernel

let categories = [ App_code; Guard; Os_gate; Mpu_config; Kernel ]

let category_name = function
  | App_code -> "app code"
  | Guard -> "bounds guards"
  | Os_gate -> "OS gate"
  | Mpu_config -> "MPU reconfig"
  | Kernel -> "kernel"

let category_slug = function
  | App_code -> "app_code"
  | Guard -> "guard"
  | Os_gate -> "os_gate"
  | Mpu_config -> "mpu_config"
  | Kernel -> "kernel"

let category_of_slug s =
  List.find_opt (fun c -> category_slug c = s) categories

let counter_name c = "profile." ^ category_slug c ^ ".cycles"

let cat_index = function
  | App_code -> 0
  | Guard -> 1
  | Os_gate -> 2
  | Mpu_config -> 3
  | Kernel -> 4

let ncats = 5

type app_prof = {
  ap_by_cat : int array;
  ap_handlers : (string, int) Hashtbl.t;
}

type t = {
  table : Bytes.t;  (* category index per address *)
  by_cat : int array;
  mutable insns : int;
  mutable exec_cycles : int;
  per_app : (string, app_prof) Hashtbl.t;
  mutable ctx : (app_prof * string) option;
}

let paint t lo hi cat =
  let c = Char.chr (cat_index cat) in
  for a = max 0 lo to min 0xFFFF (hi - 1) do
    Bytes.set t.table a c
  done

(* Guard and MPU-write sequences announce themselves with zero-size
   bracket symbols; recover the [lo, hi) pairs from the symbol table. *)
let bracket_ranges image ~is_start ~end_of =
  List.filter_map
    (fun (name, addr) ->
      if not (is_start name) then None
      else
        match List.assoc_opt (end_of name) image.Image.symbols with
        | Some e when e > addr -> Some (addr, e)
        | _ -> None)
    image.Image.symbols

let create (fw : Amulet_aft.Aft.firmware) =
  let image = fw.Amulet_aft.Aft.fw_image in
  let layout = fw.Amulet_aft.Aft.fw_layout in
  let t =
    {
      table = Bytes.make 0x10000 (Char.chr (cat_index Kernel));
      by_cat = Array.make ncats 0;
      insns = 0;
      exec_cycles = 0;
      per_app = Hashtbl.create 8;
      ctx = None;
    }
  in
  let sym name = List.assoc_opt name image.Image.symbols in
  (* OS code: gates, trampolines, osreturn — the context-switch cost *)
  paint t layout.Layout.os_code_base
    (layout.Layout.os_code_base + layout.Layout.os_code_size)
    Os_gate;
  (* runtime helpers do app arithmetic; __bounds_check is a guard *)
  (match (sym Amulet_cc.Runtime.rt_begin, sym Amulet_cc.Runtime.rt_end) with
  | Some b, Some e -> paint t b e App_code
  | _ -> ());
  (match (sym Amulet_cc.Runtime.bc_begin, sym Amulet_cc.Runtime.bc_end) with
  | Some b, Some e -> paint t b e Guard
  | _ -> ());
  (* the boot stub is kernel bookkeeping, not a gate crossing *)
  (match (sym "__os_start", sym "__osreturn") with
  | Some b, Some e when e > b -> paint t b e Kernel
  | _ -> ());
  (* each app: code, then its fault stubs (guard machinery) and exit
     stub (gate crossing) at the end of the code section *)
  List.iter
    (fun (a : Layout.app_layout) ->
      let code_end = a.Layout.code_base + a.Layout.code_size in
      paint t a.Layout.code_base code_end App_code;
      (match sym (Iso.fault_stub_label ~prefix:a.Layout.name Iso.fault_data_lo)
      with
      | Some stubs -> paint t stubs code_end Guard
      | None -> ());
      match sym (Amulet_aft.Stubs.exit_label a.Layout.name) with
      | Some ex -> paint t ex code_end Os_gate
      | None -> ())
    layout.Layout.apps;
  (* bracketed guard sites override whatever code contains them *)
  List.iter
    (fun (b, e) -> paint t b e Guard)
    (bracket_ranges image
       ~is_start:(fun n -> String.ends_with ~suffix:Iso.guard_start_suffix n)
       ~end_of:(fun n ->
         String.sub n 0 (String.length n - String.length Iso.guard_start_suffix)
         ^ Iso.guard_end_suffix));
  (* likewise the MPU-reconfiguration sequences *)
  List.iter
    (fun (b, e) -> paint t b e Mpu_config)
    (bracket_ranges image
       ~is_start:(fun n ->
         String.starts_with ~prefix:"__mpu$" n && String.ends_with ~suffix:"$b" n)
       ~end_of:(fun n -> String.sub n 0 (String.length n - 1) ^ "e"));
  t

let app_prof t name =
  match Hashtbl.find_opt t.per_app name with
  | Some ap -> ap
  | None ->
    let ap = { ap_by_cat = Array.make ncats 0; ap_handlers = Hashtbl.create 8 } in
    Hashtbl.add t.per_app name ap;
    ap

let set_context t ~app ~handler = t.ctx <- Some (app_prof t app, handler)
let clear_context t = t.ctx <- None

let step t ~pc ~cycles =
  let ci = Char.code (Bytes.get t.table (pc land 0xFFFF)) in
  t.by_cat.(ci) <- t.by_cat.(ci) + cycles;
  t.insns <- t.insns + 1;
  t.exec_cycles <- t.exec_cycles + cycles;
  match t.ctx with
  | None -> ()
  | Some (ap, handler) ->
    ap.ap_by_cat.(ci) <- ap.ap_by_cat.(ci) + cycles;
    let prev =
      Option.value ~default:0 (Hashtbl.find_opt ap.ap_handlers handler)
    in
    Hashtbl.replace ap.ap_handlers handler (prev + cycles)

type app_report = {
  ar_app : string;
  ar_cats : (category * int) list;
  ar_handlers : (string * int) list;
}

type report = {
  r_cats : (category * int) list;
  r_insns : int;
  r_exec_cycles : int;
  r_host_cycles : int;
  r_total : int;
  r_machine : int;
  r_apps : app_report list;
}

let cats_of arr = List.map (fun c -> (c, arr.(cat_index c))) categories

let totals t = cats_of t.by_cat

let report t ~machine =
  let apps =
    Hashtbl.fold
      (fun name ap acc ->
        {
          ar_app = name;
          ar_cats = cats_of ap.ap_by_cat;
          ar_handlers =
            List.sort compare
              (Hashtbl.fold (fun h c acc -> (h, c) :: acc) ap.ap_handlers []);
        }
        :: acc)
      t.per_app []
    |> List.sort (fun a b -> compare a.ar_app b.ar_app)
  in
  {
    r_cats = cats_of t.by_cat;
    r_insns = t.insns;
    r_exec_cycles = t.exec_cycles;
    r_host_cycles = machine.M.extra_cycles;
    r_total = t.exec_cycles + machine.M.extra_cycles;
    r_machine = M.cycles machine;
    r_apps = apps;
  }

let pp_cats ppf cats =
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 cats in
  List.iter
    (fun (cat, cyc) ->
      Format.fprintf ppf "    %-14s %10d cycles  (%5.1f %%)@."
        (category_name cat) cyc
        (if total = 0 then 0.0 else 100.0 *. float_of_int cyc /. float_of_int total))
    cats

let pp_report ppf r =
  Format.fprintf ppf "cycle breakdown (%d instructions):@." r.r_insns;
  pp_cats ppf r.r_cats;
  Format.fprintf ppf "    %-14s %10d cycles@." "host services" r.r_host_cycles;
  Format.fprintf ppf "  total %d cycles; machine reports %d (%s)@." r.r_total
    r.r_machine
    (if r.r_total = r.r_machine then "exact" else "MISMATCH");
  List.iter
    (fun a ->
      Format.fprintf ppf "  app %s:@." a.ar_app;
      pp_cats ppf a.ar_cats;
      List.iter
        (fun (h, c) -> Format.fprintf ppf "      %-20s %10d cycles@." h c)
        a.ar_handlers)
    r.r_apps
