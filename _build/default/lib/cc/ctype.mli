(** WearC types and layout.

    [int]/[uint] are 16-bit, [char] is an unsigned byte, pointers are
    16-bit.  Struct fields of word types are 2-aligned; struct sizes
    round up to 2. *)

type t =
  | Void
  | Int
  | Uint
  | Char
  | Ptr of t
  | Array of t * int
  | Struct of string
  | Func of t * t list  (** return type, parameter types *)

type field = { fname : string; ftype : t; foffset : int }

(** Struct layout environment. *)
type env

val create_env : unit -> env

val define_struct : env -> string -> (string * t) list -> unit
(** @raise Invalid_argument on redefinition. *)

val struct_fields : env -> string -> field list
val find_field : env -> string -> string -> field

val sizeof : env -> t -> int
(** @raise Invalid_argument for [Void] or [Func]. *)

val alignment : env -> t -> int
val is_integer : t -> bool
val is_pointer : t -> bool
val is_scalar : t -> bool

val decays_to : t -> t
(** Arrays decay to pointers, functions to function pointers. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
