open Tast
module A = Amulet_link.Asm
module O = Amulet_mcu.Opcode
module M = Amulet_mcu.Machine
module T = Amulet_mcu.Timer

(* Verdict of the (optional) range analysis for one dereference site,
   keyed by the source location of the access expression. *)
type site_class =
  | Proven_safe  (* always in bounds: the guard can be elided *)
  | Needs_check  (* unknown: emit the mode's run-time guard *)
  | Proven_unsafe of string  (* always out of bounds: compile error *)

type classifier = Srcloc.t -> site_class

type site_stats = { checked : int; elided : int; proven_unsafe : int }

type fn_info = {
  fi_name : string;
  fi_frame_bytes : int;
  fi_saved_regs : int;
  fi_calls : string list;
  fi_api_calls : string list;
  fi_sites : site_stats;
  fi_static_sites : int;
  fi_fnptr_calls : int;
  fi_spill_bytes : int;
      (* measured high-water mark of transient stack temporaries
         (expression spills + pushed call arguments) *)
  fi_runtime_bytes : int;
      (* deepest stack use of any runtime-helper or gate call made by
         this function (0 when it makes none) *)
}

type output = {
  code : A.item list;
  data : A.item list;
  infos : fn_info list;
  handlers : string list;
  loops : (string * int) list;
      (* (loop header label, max body executions) for every loop the
         range analysis bounded — the header label is the back-edge
         target, already present in the symbol table, so the AFT can
         stamp the bound into the image without changing a byte of
         code *)
}

let errf = Srcloc.errf

(* ------------------------------------------------------------------ *)
(* Program-wide generation context *)

type pctx = {
  prefix : string;
  mode : Isolation.mode;
  shadow : bool; (* shadow return-address stack *)
  classify : classifier;
  loop_bound : Srcloc.t -> int option; (* keyed by condition location *)
  env : Ctype.env;
  strings : (string, string) Hashtbl.t; (* contents -> label *)
  mutable string_counter : int;
  globals : (string, Ctype.t) Hashtbl.t;
  functions : (string, unit) Hashtbl.t; (* in-unit function names *)
  mutable loops : (string * int) list; (* header label -> bound *)
}

let intern_string p contents =
  match Hashtbl.find_opt p.strings contents with
  | Some label -> label
  | None ->
    p.string_counter <- p.string_counter + 1;
    let label =
      Printf.sprintf "%s$$str%d"
        (if p.prefix = "" then "os" else p.prefix)
        p.string_counter
    in
    Hashtbl.add p.strings contents label;
    label

(* ------------------------------------------------------------------ *)
(* Per-function context *)

type fctx = {
  p : pctx;
  fname : string;
  locals : (string, int * Ctype.t) Hashtbl.t; (* unique -> FP offset *)
  frame_bytes : int;
  buf : A.item list ref; (* reversed *)
  mutable labels : int;
  mutable used : int list; (* callee-saved scratch registers touched *)
  mutable free : int list; (* scratch register pool *)
  mutable breaks : string list;
  mutable continues : string list;
  mutable calls : string list;
  mutable api_calls : string list;
  mutable checked : int;
  mutable elided : int;
  mutable statics : int;
  mutable fnptr : int;
  mutable cur_push : int; (* bytes of live temporaries on the stack *)
  mutable max_push : int; (* high-water mark of cur_push *)
  mutable runtime_max : int; (* deepest runtime-helper/gate stack use *)
  epilogue : string;
}

let out c item = c.buf := item :: !(c.buf)

(* Track transient stack temporaries (expression spills, pushed call
   arguments) so the source-level stack bound can charge each function
   its measured spill high-water mark instead of a fixed slack. *)
let note_push c bytes =
  c.cur_push <- c.cur_push + bytes;
  if c.cur_push > c.max_push then c.max_push <- c.cur_push

let note_pop c bytes = c.cur_push <- c.cur_push - bytes

(* Total stack bytes a runtime-helper or gate call occupies below the
   caller's SP: its return address plus any pushes of its own (gates
   save 8 registers; __divhi/__modhi wrap __udivmod). *)
let note_runtime c callee =
  let bytes =
    match callee with
    | "__gate" -> 18
    | "__umodhi" -> 4
    | "__divhi" | "__modhi" -> 6
    | _ -> 2 (* __mulhi __udivhi __shlhi __shrhi __sarhi __bounds_check *)
  in
  if bytes > c.runtime_max then c.runtime_max <- bytes

let fresh c tag =
  c.labels <- c.labels + 1;
  Printf.sprintf "%s$L%d_%s"
    (Isolation.mangle ~prefix:c.p.prefix c.fname)
    c.labels tag

let alloc c =
  match c.free with
  | r :: rest ->
    c.free <- rest;
    if not (List.mem r c.used) then c.used <- r :: c.used;
    r
  | [] -> failwith "Codegen: register pool exhausted (internal error)"

let free_reg c r = c.free <- r :: c.free

(* Free a register only if it belongs to the scratch pool (the spill
   path in [eval_pair] can hand back the fixed register R13). *)
let free_scratch c r = if r >= 5 && r <= 11 then free_reg c r

let width_of env ty =
  match Ctype.sizeof env ty with 1 -> Amulet_mcu.Word.W8 | _ -> Amulet_mcu.Word.W16

let is_struct = function Ctype.Struct _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Places *)

type place =
  | Plocal of int * Ctype.t (* FP-relative offset *)
  | Pglobal of string * int * Ctype.t (* symbol + byte offset *)
  | Pdyn of int * Ctype.t * bool (* register holding address; needs check *)

let place_type = function
  | Plocal (_, t) | Pglobal (_, _, t) | Pdyn (_, t, _) -> t

let free_place c = function Pdyn (r, _, _) -> free_reg c r | _ -> ()

(* Inserted run-time checks.  Pattern: compare, skip-if-ok, long
   branch to the per-app fault stub (so stub distance never breaks the
   short-jump range).

   Every guard sequence is bracketed by a zero-size [$gs]/[$ge] label
   pair so profilers can attribute its cycles from the symbol table. *)

let guard_labels c =
  c.labels <- c.labels + 1;
  let base =
    Printf.sprintf "%s$L%d"
      (Isolation.mangle ~prefix:c.p.prefix c.fname)
      c.labels
  in
  (base ^ Isolation.guard_start_suffix, base ^ Isolation.guard_end_suffix)

let wrap_guard c items =
  if items = [] then []
  else begin
    let gs, ge = guard_labels c in
    (A.label gs :: items) @ [ A.label ge ]
  end

let emit_check c reg ~lo_sym ~hi_sym ~lo_reason ~hi_reason =
  let prefix = c.p.prefix in
  let mode = c.p.mode in
  if Isolation.checks_lower_bound mode then begin
    c.checked <- c.checked + 1;
    let gs, ge = guard_labels c in
    out c (A.label gs);
    let ok = fresh c "cklo" in
    out c (A.cmp (A.Simm (A.Sym lo_sym)) (A.Dreg reg));
    out c (A.jcc O.JC ok); (* unsigned >= lower bound: fine *)
    out c (A.br (A.Sym (Isolation.fault_stub_label ~prefix lo_reason)));
    out c (A.label ok);
    if Isolation.checks_upper_bound mode then begin
      let ok2 = fresh c "ckhi" in
      out c (A.cmp (A.Simm (A.Sym hi_sym)) (A.Dreg reg));
      out c (A.jcc O.JNC ok2); (* unsigned < upper bound: fine *)
      out c (A.br (A.Sym (Isolation.fault_stub_label ~prefix hi_reason)));
      out c (A.label ok2)
    end;
    out c (A.label ge)
  end

let emit_data_check c reg =
  emit_check c reg
    ~lo_sym:(Isolation.data_lo_sym ~prefix:c.p.prefix)
    ~hi_sym:(Isolation.data_hi_sym ~prefix:c.p.prefix)
    ~lo_reason:Isolation.fault_data_lo ~hi_reason:Isolation.fault_data_hi

let emit_code_check c reg =
  emit_check c reg
    ~lo_sym:(Isolation.code_lo_sym ~prefix:c.p.prefix)
    ~hi_sym:(Isolation.code_hi_sym ~prefix:c.p.prefix)
    ~lo_reason:Isolation.fault_code_ptr ~hi_reason:Isolation.fault_code_ptr

(* Decide whether a computed-address access still needs its run-time
   guard.  The range analysis (lib/analysis) classifies sites by
   source location; without it every site is checked, as before. *)
let dyn_needs_check c (loc : Srcloc.t) =
  Isolation.checks_lower_bound c.p.mode
  &&
  match c.p.classify loc with
  | Needs_check -> true
  | Proven_safe ->
    c.elided <- c.elided + 1;
    false
  | Proven_unsafe msg -> errf loc "%s" msg

(* Feature-limited array-index check through the runtime helper. *)
let emit_array_check c idx_reg len =
  c.checked <- c.checked + 1;
  let gs, ge = guard_labels c in
  out c (A.label gs);
  out c (A.mov (A.Sreg idx_reg) (A.Dreg 14));
  out c (A.mov (A.imm len) (A.Dreg 15));
  note_runtime c "__bounds_check";
  out c (A.call "__bounds_check");
  out c (A.label ge)

(* Discharge the pending check of a dynamic place (before its first
   access); returns a place that will not be checked again. *)
let discharge_check c = function
  | Pdyn (r, t, true) ->
    emit_data_check c r;
    Pdyn (r, t, false)
  | p -> p

let src_of_place c = function
  | Plocal (off, _) -> A.Sidx (A.r_fp, A.Num off)
  | Pglobal (sym, 0, _) -> A.Sabs (A.Sym sym)
  | Pglobal (sym, off, _) -> A.Sabs (A.Off (sym, off))
  | Pdyn (r, _, _) ->
    ignore c;
    A.Sind r

let dst_of_place = function
  | Plocal (off, _) -> A.Didx (A.r_fp, A.Num off)
  | Pglobal (sym, 0, _) -> A.Dabs (A.Sym sym)
  | Pglobal (sym, off, _) -> A.Dabs (A.Off (sym, off))
  | Pdyn (r, _, _) -> A.Didx (r, A.Num 0)

(* Load a scalar place into a register (allocating it). *)
let load c place =
  let place = discharge_check c place in
  (match place with Pdyn _ -> () | _ -> c.statics <- c.statics + 1);
  let ty = place_type place in
  let rd = alloc c in
  let w = width_of c.p.env ty in
  out c (A.Ins (A.I1 (O.MOV, w, src_of_place c place, A.Dreg rd)));
  (rd, place)

(* Store a register into a scalar place. *)
let store c rv place =
  let place = discharge_check c place in
  (match place with Pdyn _ -> () | _ -> c.statics <- c.statics + 1);
  let w = width_of c.p.env (place_type place) in
  out c (A.Ins (A.I1 (O.MOV, w, A.Sreg rv, dst_of_place place)));
  place

(* Materialize the address of a place into a register. *)
let lea c place =
  match place with
  | Plocal (off, _) ->
    let rd = alloc c in
    out c (A.mov (A.Sreg A.r_fp) (A.Dreg rd));
    if off <> 0 then out c (A.add (A.imm off) (A.Dreg rd));
    rd
  | Pglobal (sym, off, _) ->
    let rd = alloc c in
    let e = if off = 0 then A.Sym sym else A.Off (sym, off) in
    out c (A.mov (A.Simm e) (A.Dreg rd));
    rd
  | Pdyn (r, _, _) -> r

(* ------------------------------------------------------------------ *)
(* Constant folding (for global initializers, array scaling, shifts) *)

(* Folding must reproduce the machine's 16-bit semantics exactly,
   including the signedness rules the generated code would apply
   (division, modulo and right shift depend on the operand types).
   Results are normalized to the signed range -32768..32767. *)

let is_signed = function Ctype.Int -> true | _ -> false

let s16 v =
  let v = v land 0xFFFF in
  if v >= 0x8000 then v - 0x10000 else v

let u16 v = v land 0xFFFF

let rec fold_const (e : texpr) : int option =
  match e.te with
  | Tnum n -> Some (s16 n)
  | Tun (Ast.Neg, a) -> Option.map (fun v -> s16 (-v)) (fold_const a)
  | Tun (Ast.Bnot, a) -> Option.map (fun v -> s16 (lnot v)) (fold_const a)
  | Tbin (op, a, b) -> (
    match (fold_const a, fold_const b) with
    | Some x, Some y -> (
      let signed = is_signed a.ty && is_signed b.ty in
      match op with
      | Ast.Add -> Some (s16 (x + y))
      | Ast.Sub -> Some (s16 (x - y))
      | Ast.Mul -> Some (s16 (x * y))
      | Ast.Div when u16 y <> 0 ->
        Some (s16 (if signed then s16 x / s16 y else u16 x / u16 y))
      | Ast.Mod when u16 y <> 0 ->
        Some (s16 (if signed then s16 x mod s16 y else u16 x mod u16 y))
      | Ast.Band -> Some (s16 (x land y))
      | Ast.Bor -> Some (s16 (x lor y))
      | Ast.Bxor -> Some (s16 (x lxor y))
      | Ast.Shl -> Some (s16 (u16 x lsl (y land 15)))
      | Ast.Shr ->
        Some
          (s16
             (if is_signed a.ty then s16 x asr (y land 15)
              else u16 x lsr (y land 15)))
      | _ -> None)
    | _ -> None)
  | Tcast (ty, a) -> (
    match (ty, fold_const a) with
    | Ctype.Char, Some v -> Some (v land 0xFF)
    | _, v -> v)
  | _ -> None

let log2_exact n =
  let rec go k v = if v = n then Some k else if v > n then None else go (k + 1) (v * 2) in
  if n <= 0 then None else go 0 1

(* ------------------------------------------------------------------ *)
(* Helper calls (multiplication, division, shifts) *)

let helper_binop c name ra rb =
  out c (A.mov (A.Sreg ra) (A.Dreg 12));
  out c (A.mov (A.Sreg rb) (A.Dreg 13));
  note_runtime c name;
  out c (A.call name);
  out c (A.mov (A.Sreg 12) (A.Dreg ra))


(* Multiply register by a constant, in place. *)
let emit_scale c reg n =
  match n with
  | 1 -> ()
  | _ -> (
    match log2_exact n with
    | Some k ->
      for _ = 1 to k do
        out c (A.add (A.Sreg reg) (A.Dreg reg))
      done
    | None ->
      out c (A.mov (A.Sreg reg) (A.Dreg 12));
      out c (A.mov (A.imm n) (A.Dreg 13));
      note_runtime c "__mulhi";
      out c (A.call "__mulhi");
      out c (A.mov (A.Sreg 12) (A.Dreg reg)))

let emit_shift_const c reg k ~kind =
  for _ = 1 to min k 16 do
    match kind with
    | `Left -> out c (A.add (A.Sreg reg) (A.Dreg reg))
    | `Arith -> out c (A.Ins (A.I2 (O.RRA, Amulet_mcu.Word.W16, A.Sreg reg)))
    | `Logical ->
      (* clear carry, then rotate right through carry *)
      out c (A.bic (A.imm 1) (A.Dreg A.r_sr));
      out c (A.Ins (A.I2 (O.RRC, Amulet_mcu.Word.W16, A.Sreg reg)))
  done

(* ------------------------------------------------------------------ *)
(* Expression evaluation *)

let pointee_size c = function
  | Ctype.Ptr t when t <> Ctype.Void -> Ctype.sizeof c.p.env t
  | _ -> 1

let rec eval c (e : texpr) : int =
  match e.te with
  | Tnum n ->
    let rd = alloc c in
    out c (A.mov (A.imm (n land 0xFFFF)) (A.Dreg rd));
    rd
  | Tstr s ->
    let label = intern_string c.p s in
    let rd = alloc c in
    out c (A.mov (A.Simm (A.Sym label)) (A.Dreg rd));
    rd
  | Tfunc_name f ->
    let rd = alloc c in
    out c (A.mov (A.Simm (A.Sym (Isolation.mangle ~prefix:c.p.prefix f))) (A.Dreg rd));
    rd
  | Tlocal _ | Tglobal _ | Tderef _ | Tindex _ | Tmember _ | Tarrow _ ->
    if is_struct e.ty then
      errf e.tloc "struct values can only be accessed through their fields";
    let place = eval_place c e in
    let r, place = load c place in
    free_place c place;
    r
  | Taddr inner ->
    let place = eval_place c inner in
    let r = lea c place in
    (* lea may return the Pdyn register itself: ownership transfers *)
    (match place with Pdyn _ -> () | _ -> ());
    r
  | Tassign (lhs, rhs) ->
    let rv = eval c rhs in
    let place = eval_place c lhs in
    let place = store c rv place in
    free_place c place;
    rv
  | Top_assign (op, lhs, rhs) ->
    let place = eval_place c lhs in
    let place = discharge_check c place in
    let rl, place = load c place in
    let rv = eval c rhs in
    apply_binop c op ~ty_l:lhs.ty ~ty_r:rhs.ty rl rv e.tloc;
    free_reg c rv;
    let place = store c rl place in
    free_place c place;
    rl
  | Tbin (op, a, b) -> eval_bin c op a b e.tloc
  | Tun (Ast.Neg, a) ->
    let r = eval_spillsafe c a in
    out c (A.xor (A.imm 0xFFFF) (A.Dreg r));
    out c (A.inc (A.Dreg r));
    r
  | Tun (Ast.Bnot, a) ->
    let r = eval_spillsafe c a in
    out c (A.xor (A.imm 0xFFFF) (A.Dreg r));
    r
  | Tun (Ast.Lnot, a) -> eval_bool c e ~via:(fun tlabel flabel -> branch c a ~if_true:flabel ~if_false:tlabel)
  | Tcond (cond, t, f) ->
    let ltrue = fresh c "ct" and lfalse = fresh c "cf" and lend = fresh c "ce" in
    if List.length c.free > 2 then begin
      let rd = alloc c in
      branch c cond ~if_true:ltrue ~if_false:lfalse;
      out c (A.label ltrue);
      let rt = eval c t in
      out c (A.mov (A.Sreg rt) (A.Dreg rd));
      free_reg c rt;
      out c (A.jmp lend);
      out c (A.label lfalse);
      let rf = eval c f in
      out c (A.mov (A.Sreg rf) (A.Dreg rd));
      free_reg c rf;
      out c (A.label lend);
      rd
    end
    else begin
      (* register-starved: park the branch result on the stack so the
         arms evaluate with the full remaining pool *)
      branch c cond ~if_true:ltrue ~if_false:lfalse;
      (* the two arms are alternatives: each pushes once, the join
         pops once, so the depth accounting must not stack them *)
      let depth0 = c.cur_push in
      out c (A.label ltrue);
      let rt = eval c t in
      out c (A.push (A.Sreg rt));
      note_push c 2;
      free_reg c rt;
      out c (A.jmp lend);
      c.cur_push <- depth0;
      out c (A.label lfalse);
      let rf = eval c f in
      out c (A.push (A.Sreg rf));
      note_push c 2;
      free_reg c rf;
      out c (A.label lend);
      let rd = alloc c in
      out c (A.pop rd);
      note_pop c 2;
      rd
    end
  | Tcall (name, args) -> eval_call c name args
  | Tcall_ptr (callee, args) -> eval_call_ptr c callee args
  | Tpre_incr a -> incr_decr c a ~post:false ~sign:1
  | Tpre_decr a -> incr_decr c a ~post:false ~sign:(-1)
  | Tpost_incr a -> incr_decr c a ~post:true ~sign:1
  | Tpost_decr a -> incr_decr c a ~post:true ~sign:(-1)
  | Tcast (ty, a) ->
    let r = eval_spillsafe c a in
    (match (ty, a.ty) with
    | Ctype.Char, t when t <> Ctype.Char ->
      out c (A.and_ (A.imm 0xFF) (A.Dreg r))
    | _ -> ());
    r

and eval_spillsafe c e = eval c e

(* Evaluate two subexpressions into registers, spilling the first onto
   the stack when the pool runs dry.  Returns (ra, rb) where ra holds
   a's value; in the spill case b's value comes back in the fixed
   scratch register R13 (callers must free rb with [free_scratch]). *)
and eval_pair c a b =
  let ra = eval c a in
  if c.free = [] then begin
    out c (A.push (A.Sreg ra));
    note_push c 2;
    free_reg c ra;
    let rb = eval c b in
    (* move b aside, restore a into the pool register *)
    out c (A.mov (A.Sreg rb) (A.Dreg 13));
    out c (A.pop rb);
    note_pop c 2;
    (rb, 13)
  end
  else (ra, eval c b)

and eval_bin c op a b loc =
  match op with
  | Ast.Land | Ast.Lor | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge ->
    eval_bool c { te = Tbin (op, a, b); ty = Ctype.Int; tloc = loc }
      ~via:(fun tl fl -> branch c { te = Tbin (op, a, b); ty = Ctype.Int; tloc = loc } ~if_true:tl ~if_false:fl)
  | Ast.Shl | Ast.Shr when fold_const b <> None ->
    let k = Option.get (fold_const b) land 15 in
    let ra = eval c a in
    let kind =
      match op with
      | Ast.Shl -> `Left
      | _ -> if is_signed a.ty then `Arith else `Logical
    in
    emit_shift_const c ra k ~kind;
    ra
  | Ast.Mul when (match fold_const b with Some n -> log2_exact n <> None | None -> false) ->
    let ra = eval c a in
    emit_scale c ra (Option.get (fold_const b));
    ra
  | _ ->
    let ra, rb = eval_pair c a b in
    apply_binop c op ~ty_l:a.ty ~ty_r:b.ty ra rb loc;
    (* pointer difference: divide by element size *)
    (match op with
    | Ast.Sub when Ctype.is_pointer a.ty && Ctype.is_pointer b.ty ->
      let size = pointee_size c a.ty in
      (match log2_exact size with
      | Some k -> emit_shift_const c ra k ~kind:`Arith
      | None ->
        out c (A.mov (A.Sreg ra) (A.Dreg 12));
        out c (A.mov (A.imm size) (A.Dreg 13));
        note_runtime c "__divhi";
        out c (A.call "__divhi");
        out c (A.mov (A.Sreg 12) (A.Dreg ra)))
    | _ -> ());
    free_scratch c rb;
    ra

(* Apply a (non-comparison) binary operation: ra := ra op rb. *)
and apply_binop c op ~ty_l ~ty_r ra rb loc =
  let signed = is_signed ty_l && is_signed ty_r in
  match op with
  | Ast.Add ->
    if Ctype.is_pointer ty_l && Ctype.is_integer ty_r then
      emit_scale c rb (pointee_size c ty_l);
    out c (A.add (A.Sreg rb) (A.Dreg ra))
  | Ast.Sub ->
    if Ctype.is_pointer ty_l && Ctype.is_integer ty_r then
      emit_scale c rb (pointee_size c ty_l);
    out c (A.sub (A.Sreg rb) (A.Dreg ra))
  | Ast.Mul -> helper_binop c "__mulhi" ra rb
  | Ast.Div -> helper_binop c (if signed then "__divhi" else "__udivhi") ra rb
  | Ast.Mod -> helper_binop c (if signed then "__modhi" else "__umodhi") ra rb
  | Ast.Band -> out c (A.and_ (A.Sreg rb) (A.Dreg ra))
  | Ast.Bor -> out c (A.bis (A.Sreg rb) (A.Dreg ra))
  | Ast.Bxor -> out c (A.xor (A.Sreg rb) (A.Dreg ra))
  | Ast.Shl -> helper_binop c "__shlhi" ra rb
  | Ast.Shr ->
    helper_binop c (if is_signed ty_l then "__sarhi" else "__shrhi") ra rb
  | Ast.Land | Ast.Lor | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge ->
    errf loc "internal: comparison reached apply_binop"

(* Produce 0/1 from a branching condition. *)
and eval_bool c _e ~via =
  let ltrue = fresh c "bt" and lfalse = fresh c "bf" and lend = fresh c "be" in
  via ltrue lfalse;
  let rd = alloc c in
  out c (A.label ltrue);
  out c (A.mov (A.imm 1) (A.Dreg rd));
  out c (A.jmp lend);
  out c (A.label lfalse);
  out c (A.mov (A.imm 0) (A.Dreg rd));
  out c (A.label lend);
  rd

(* Conditional branch on a boolean expression. *)
and branch c (e : texpr) ~if_true ~if_false =
  match e.te with
  | Tnum 0 -> out c (A.jmp if_false)
  | Tnum _ -> out c (A.jmp if_true)
  | Tun (Ast.Lnot, a) -> branch c a ~if_true:if_false ~if_false:if_true
  | Tbin (Ast.Land, a, b) ->
    let mid = fresh c "and" in
    branch c a ~if_true:mid ~if_false;
    out c (A.label mid);
    branch c b ~if_true ~if_false
  | Tbin (Ast.Lor, a, b) ->
    let mid = fresh c "or" in
    branch c a ~if_true ~if_false:mid;
    out c (A.label mid);
    branch c b ~if_true ~if_false
  | Tbin (((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge) as op), a, b) ->
    let signed = is_signed a.ty && is_signed b.ty in
    let ra, rb = eval_pair c a b in
    (* CMP rb, ra computes ra - rb *)
    let jump_true =
      match op with
      | Ast.Eq -> out c (A.cmp (A.Sreg rb) (A.Dreg ra)); O.JEQ
      | Ast.Ne -> out c (A.cmp (A.Sreg rb) (A.Dreg ra)); O.JNE
      | Ast.Lt ->
        out c (A.cmp (A.Sreg rb) (A.Dreg ra));
        if signed then O.JL else O.JNC
      | Ast.Ge ->
        out c (A.cmp (A.Sreg rb) (A.Dreg ra));
        if signed then O.JGE else O.JC
      | Ast.Gt ->
        out c (A.cmp (A.Sreg ra) (A.Dreg rb));
        if signed then O.JL else O.JNC
      | Ast.Le ->
        out c (A.cmp (A.Sreg ra) (A.Dreg rb));
        if signed then O.JGE else O.JC
      | _ -> assert false
    in
    free_reg c ra;
    free_scratch c rb;
    out c (A.jcc jump_true if_true);
    out c (A.jmp if_false)
  | _ ->
    let r = eval c e in
    out c (A.tst (A.Dreg r));
    free_reg c r;
    out c (A.jcc O.JNE if_true);
    out c (A.jmp if_false)

(* ------------------------------------------------------------------ *)
(* Lvalue resolution *)

and eval_place c (e : texpr) : place =
  match e.te with
  | Tlocal name -> (
    match Hashtbl.find_opt c.locals name with
    | Some (off, ty) -> Plocal (off, ty)
    | None -> errf e.tloc "internal: unknown local %s" name)
  | Tglobal name ->
    Pglobal (Isolation.mangle ~prefix:c.p.prefix name, 0, e.ty)
  | Tderef p ->
    let r = eval c p in
    Pdyn (r, e.ty, dyn_needs_check c e.tloc)
  | Tindex (base, idx) -> eval_index_place c e base idx
  | Tmember (b, field) -> (
    let bp = eval_place c b in
    match bp with
    | Plocal (off, _) -> Plocal (off + field.Ctype.foffset, field.Ctype.ftype)
    | Pglobal (s, off, _) ->
      Pglobal (s, off + field.Ctype.foffset, field.Ctype.ftype)
    | Pdyn (r, _, chk) ->
      if field.Ctype.foffset <> 0 then
        out c (A.add (A.imm field.Ctype.foffset) (A.Dreg r));
      Pdyn (r, field.Ctype.ftype, chk))
  | Tarrow (p, field) ->
    let r = eval c p in
    if field.Ctype.foffset <> 0 then
      out c (A.add (A.imm field.Ctype.foffset) (A.Dreg r));
    Pdyn (r, field.Ctype.ftype, dyn_needs_check c e.tloc)
  | Tcast (_, inner) -> eval_place c inner
  | Tstr s ->
    let label = intern_string c.p s in
    Pglobal (label, 0, Ctype.Array (Ctype.Char, String.length s + 1))
  | _ -> errf e.tloc "expression is not an lvalue"

and eval_index_place c e base idx =
  let elem_ty = e.ty in
  let elem_size = Ctype.sizeof c.p.env elem_ty in
  let const_idx = fold_const idx in
  match (base.ty, const_idx) with
  | Ctype.Array (_, n), Some k ->
    (* constant index into a named array: statically verified *)
    if k < 0 || k >= n then errf e.tloc "constant index %d out of bounds" k;
    let bp = eval_place c base in
    (match bp with
    | Plocal (off, _) -> Plocal (off + (k * elem_size), elem_ty)
    | Pglobal (s, off, _) -> Pglobal (s, off + (k * elem_size), elem_ty)
    | Pdyn (r, _, chk) ->
      if k <> 0 then out c (A.add (A.imm (k * elem_size)) (A.Dreg r));
      Pdyn (r, elem_ty, chk))
  | Ctype.Array (_, n), None ->
    (* dynamic index into an array *)
    let ri = eval c idx in
    if c.p.mode = Isolation.Feature_limited then emit_array_check c ri n;
    emit_scale c ri elem_size;
    let bp = eval_place c base in
    let rb = lea c bp in
    out c (A.add (A.Sreg ri) (A.Dreg rb));
    (match bp with
    | Pdyn (_, _, chk) ->
      free_reg c ri;
      Pdyn (rb, elem_ty, chk)
    | _ ->
      free_reg c ri;
      (* base address is static; the scaled index makes it dynamic *)
      Pdyn (rb, elem_ty, dyn_needs_check c e.tloc))
  | _ ->
    (* pointer indexing: p[i] == *(p + i) *)
    let rp, ri = eval_pair c base idx in
    emit_scale c ri elem_size;
    out c (A.add (A.Sreg ri) (A.Dreg rp));
    free_scratch c ri;
    Pdyn (rp, elem_ty, dyn_needs_check c e.tloc)

(* ------------------------------------------------------------------ *)
(* Increment / decrement *)

and incr_decr c (a : texpr) ~post ~sign =
  let step =
    (if Ctype.is_pointer a.ty then pointee_size c a.ty else 1) * sign
  in
  let place = eval_place c a in
  let place = discharge_check c place in
  let r, place = load c place in
  let result =
    if post then begin
      let rold = alloc c in
      out c (A.mov (A.Sreg r) (A.Dreg rold));
      rold
    end
    else r
  in
  out c (A.add (A.imm (step land 0xFFFF)) (A.Dreg r));
  let place = store c r place in
  free_place c place;
  if post then free_reg c r;
  result

(* ------------------------------------------------------------------ *)
(* Calls *)

and push_args c args =
  List.iter
    (fun a ->
      let r = eval c a in
      out c (A.push (A.Sreg r));
      note_push c 2;
      free_reg c r)
    (List.rev args);
  2 * List.length args

and eval_call c name args =
  if String.length name >= 4 && String.sub name 0 4 = "api_" then
    eval_api_call c name args
  else if Hashtbl.mem c.p.functions name then begin
    let bytes = push_args c args in
    c.calls <- name :: c.calls;
    out c (A.call (Isolation.mangle ~prefix:c.p.prefix name));
    if bytes > 0 then begin
      out c (A.add (A.imm bytes) (A.Dreg A.r_sp));
      note_pop c bytes
    end;
    let rd = alloc c in
    out c (A.mov (A.Sreg 12) (A.Dreg rd));
    rd
  end
  else eval_builtin c name args

and eval_api_call c name args =
  (* API calls pass up to three arguments in R12-R14 and context-switch
     through the AFT-generated gate. *)
  if List.length args > 3 then
    failwith ("API call " ^ name ^ " has too many arguments");
  let regs = List.map (fun a -> eval c a) args in
  List.iteri
    (fun i r -> out c (A.mov (A.Sreg r) (A.Dreg (12 + i))))
    regs;
  List.iter (free_reg c) regs;
  c.api_calls <- name :: c.api_calls;
  note_runtime c "__gate";
  out c (A.call ("__gate_" ^ name));
  let rd = alloc c in
  out c (A.mov (A.Sreg 12) (A.Dreg rd));
  rd

and eval_builtin c name args =
  let unit_result () =
    let rd = alloc c in
    out c (A.mov (A.imm 0) (A.Dreg rd));
    rd
  in
  match (name, args) with
  | "__halt", [] ->
    out c (A.mov (A.imm 1) (A.Dabs (A.Num M.halt_port)));
    unit_result ()
  | "__putc", [ a ] ->
    let r = eval c a in
    out c (A.Ins (A.I1 (O.MOV, Amulet_mcu.Word.W8, A.Sreg r, A.Dabs (A.Num M.console_port))));
    free_reg c r;
    unit_result ()
  | "__timer_start", [] ->
    (* divider /16: ID=/8, IDEX=/2, continuous mode, clear *)
    out c (A.mov (A.imm 1) (A.Dabs (A.Num T.ex0_addr)));
    out c (A.mov (A.imm ((3 lsl 6) lor (2 lsl 4) lor 0x4)) (A.Dabs (A.Num T.ctl_addr)));
    unit_result ()
  | "__timer_read", [] ->
    let rd = alloc c in
    out c (A.mov (A.Sabs (A.Num T.counter_addr)) (A.Dreg rd));
    rd
  | _ ->
    failwith
      (Printf.sprintf "call to unknown external function %s (no gate/builtin)"
         name)

and eval_call_ptr c callee args =
  let rc = eval c callee in
  let bytes = push_args c args in
  c.fnptr <- c.fnptr + 1;
  emit_code_check c rc;
  out c (A.call_reg rc);
  free_reg c rc;
  if bytes > 0 then begin
    out c (A.add (A.imm bytes) (A.Dreg A.r_sp));
    note_pop c bytes
  end;
  let rd = alloc c in
  out c (A.mov (A.Sreg 12) (A.Dreg rd));
  rd

(* ------------------------------------------------------------------ *)
(* Statements *)

(* Attach the range analysis's iteration bound (if any) to the loop's
   header label — the back-edge target the binary loop detection will
   find.  The label is emitted as an ordinary symbol anyway, so this
   only adds metadata: generated code is unchanged byte for byte. *)
let note_loop_bound c (cond : texpr) header =
  match c.p.loop_bound cond.tloc with
  | Some b -> c.p.loops <- (header, b) :: c.p.loops
  | None -> ()

let rec gen_stmt c (s : tstmt) =
  match s with
  | Tsexpr e ->
    let r = eval c e in
    free_reg c r
  | Tsdecl (name, ty, init) -> gen_decl c name ty init
  | Tsif (cond, then_, else_) ->
    let lt = fresh c "it" and lf = fresh c "ie" and lend = fresh c "ix" in
    branch c cond ~if_true:lt ~if_false:lf;
    out c (A.label lt);
    List.iter (gen_stmt c) then_;
    out c (A.jmp lend);
    out c (A.label lf);
    List.iter (gen_stmt c) else_;
    out c (A.label lend)
  | Tswhile (cond, body) ->
    let lcond = fresh c "wc" and lbody = fresh c "wb" and lend = fresh c "wx" in
    note_loop_bound c cond lcond;
    out c (A.label lcond);
    branch c cond ~if_true:lbody ~if_false:lend;
    out c (A.label lbody);
    c.breaks <- lend :: c.breaks;
    c.continues <- lcond :: c.continues;
    List.iter (gen_stmt c) body;
    c.breaks <- List.tl c.breaks;
    c.continues <- List.tl c.continues;
    out c (A.jmp lcond);
    out c (A.label lend)
  | Tsdo_while (body, cond) ->
    let lbody = fresh c "db" and lcond = fresh c "dc" and lend = fresh c "dx" in
    note_loop_bound c cond lbody;
    out c (A.label lbody);
    c.breaks <- lend :: c.breaks;
    c.continues <- lcond :: c.continues;
    List.iter (gen_stmt c) body;
    c.breaks <- List.tl c.breaks;
    c.continues <- List.tl c.continues;
    out c (A.label lcond);
    branch c cond ~if_true:lbody ~if_false:lend;
    out c (A.label lend)
  | Tsfor (init, cond, step, body) ->
    Option.iter (gen_stmt c) init;
    let lcond = fresh c "fc" and lbody = fresh c "fb" in
    let lstep = fresh c "fs" and lend = fresh c "fx" in
    Option.iter (fun e -> note_loop_bound c e lcond) cond;
    out c (A.label lcond);
    (match cond with
    | Some e -> branch c e ~if_true:lbody ~if_false:lend
    | None -> ());
    out c (A.label lbody);
    c.breaks <- lend :: c.breaks;
    c.continues <- lstep :: c.continues;
    List.iter (gen_stmt c) body;
    c.breaks <- List.tl c.breaks;
    c.continues <- List.tl c.continues;
    out c (A.label lstep);
    (match step with
    | Some e ->
      let r = eval c e in
      free_reg c r
    | None -> ());
    out c (A.jmp lcond);
    out c (A.label lend)
  | Tsreturn e ->
    (match e with
    | Some e ->
      let r = eval c e in
      out c (A.mov (A.Sreg r) (A.Dreg 12));
      free_reg c r
    | None -> ());
    out c (A.jmp c.epilogue)
  | Tsbreak -> (
    match c.breaks with
    | l :: _ -> out c (A.jmp l)
    | [] -> failwith "break outside loop/switch")
  | Tscontinue -> (
    match c.continues with
    | l :: _ -> out c (A.jmp l)
    | [] -> failwith "continue outside loop")
  | Tsswitch (e, cases, default) ->
    let r = eval c e in
    let lend = fresh c "sx" in
    let case_labels = List.map (fun (v, _) -> (v, fresh c "sc")) cases in
    List.iter
      (fun (v, l) ->
        out c (A.cmp (A.imm (v land 0xFFFF)) (A.Dreg r));
        out c (A.jcc O.JEQ l))
      case_labels;
    free_reg c r;
    let ldefault = fresh c "sd" in
    out c (A.jmp (if default = None then lend else ldefault));
    c.breaks <- lend :: c.breaks;
    List.iter2
      (fun (_, body) (_, l) ->
        out c (A.label l);
        List.iter (gen_stmt c) body)
      cases case_labels;
    (match default with
    | Some body ->
      out c (A.label ldefault);
      List.iter (gen_stmt c) body
    | None -> ());
    c.breaks <- List.tl c.breaks;
    out c (A.label lend)
  | Tsblock body -> List.iter (gen_stmt c) body

and gen_decl c name ty init =
  let off, _ =
    match Hashtbl.find_opt c.locals name with
    | Some v -> v
    | None -> failwith ("internal: local without slot: " ^ name)
  in
  match init with
  | None -> ()
  | Some (Ti_expr e) ->
    let r = eval c e in
    let w = width_of c.p.env ty in
    out c (A.Ins (A.I1 (O.MOV, w, A.Sreg r, A.Didx (A.r_fp, A.Num off))));
    free_reg c r
  | Some (Ti_list es) ->
    let elem_ty = match ty with Ctype.Array (t, _) -> t | _ -> ty in
    let esize = Ctype.sizeof c.p.env elem_ty in
    let w = width_of c.p.env elem_ty in
    List.iteri
      (fun i e ->
        let r = eval c e in
        out c
          (A.Ins (A.I1 (O.MOV, w, A.Sreg r, A.Didx (A.r_fp, A.Num (off + (i * esize))))));
        free_reg c r)
      es
  | Some (Ti_str s) ->
    String.iteri
      (fun i ch ->
        out c
          (A.Ins
             (A.I1
                (O.MOV, Amulet_mcu.Word.W8, A.Simm (A.Num (Char.code ch)),
                 A.Didx (A.r_fp, A.Num (off + i))))))
      (s ^ "\000")

(* ------------------------------------------------------------------ *)
(* Locals layout *)

let rec collect_decls acc stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | Tsdecl (name, ty, _) -> (name, ty) :: acc
      | Tsif (_, a, b) -> collect_decls (collect_decls acc a) b
      | Tswhile (_, b) | Tsdo_while (b, _) | Tsblock b -> collect_decls acc b
      | Tsfor (init, _, _, b) ->
        let acc = match init with Some s -> collect_decls acc [ s ] | None -> acc in
        collect_decls acc b
      | Tsswitch (_, cases, default) ->
        let acc =
          List.fold_left (fun acc (_, b) -> collect_decls acc b) acc cases
        in
        (match default with Some b -> collect_decls acc b | None -> acc)
      | _ -> acc)
    acc stmts

(* ------------------------------------------------------------------ *)
(* Function generation *)

let gen_function (p : pctx) (f : tfunc) : A.item list * fn_info =
  let mangled = Isolation.mangle ~prefix:p.prefix f.tfname in
  let epilogue = mangled ^ "$$epi" in
  let locals = Hashtbl.create 16 in
  (* parameters: FP+4, FP+6, ... *)
  List.iteri
    (fun i (name, ty) -> Hashtbl.add locals name (4 + (2 * i), ty))
    f.tfparams;
  (* locals: growing down from FP *)
  let cursor = ref 0 in
  List.iter
    (fun (name, ty) ->
      let size = (Ctype.sizeof p.env ty + 1) land lnot 1 in
      cursor := !cursor + size;
      Hashtbl.add locals name (- !cursor, ty))
    (List.rev (collect_decls [] f.tfbody));
  let frame = !cursor in
  let c =
    {
      p; fname = f.tfname; locals; frame_bytes = frame;
      buf = ref []; labels = 0; used = []; free = [ 5; 6; 7; 8; 9; 10; 11 ];
      breaks = []; continues = []; calls = []; api_calls = [];
      checked = 0; elided = 0; statics = 0; fnptr = 0;
      cur_push = 0; max_push = 0; runtime_max = 0; epilogue;
    }
  in
  List.iter (gen_stmt c) f.tfbody;
  let body = List.rev !(c.buf) in
  let saved = List.sort compare c.used in
  let shadow_push =
    (* copy the return address (at 0(SP) on entry) to the InfoMem
       shadow stack; R15 is caller-save and dead at this point *)
    if p.shadow then
      wrap_guard c
        [
          A.mov (A.Sabs (A.Num Isolation.shadow_sp_addr)) (A.Dreg 15);
          A.mov (A.Sind A.r_sp) (A.Didx (15, A.Num 0));
          A.add (A.imm 2) (A.Dreg 15);
          A.mov (A.Sreg 15) (A.Dabs (A.Num Isolation.shadow_sp_addr));
        ]
    else []
  in
  let prologue =
    [ A.label mangled ]
    @ shadow_push
    @ [ A.push (A.Sreg A.r_fp); A.mov (A.Sreg A.r_sp) (A.Dreg A.r_fp) ]
    @ (if frame > 0 then [ A.sub (A.imm frame) (A.Dreg A.r_sp) ] else [])
    @ List.map (fun r -> A.push (A.Sreg r)) saved
  in
  let shadow_check =
    if p.shadow then
      let ok = mangled ^ "$$shok" in
      wrap_guard c
        [
          A.mov (A.Sabs (A.Num Isolation.shadow_sp_addr)) (A.Dreg 15);
          A.sub (A.imm 2) (A.Dreg 15);
          A.mov (A.Sreg 15) (A.Dabs (A.Num Isolation.shadow_sp_addr));
          A.cmp (A.Sind 15) (A.Didx (A.r_sp, A.Num 0));
          A.jcc O.JEQ ok;
          A.br (A.Sym (Isolation.fault_stub_label ~prefix:p.prefix
                         Isolation.fault_shadow_stack));
          A.label ok;
        ]
    else []
  in
  let ret_check =
    (* bounds-check the return address (now at 0(SP)) before RET;
       subsumed by the shadow-stack comparison when that is enabled *)
    let prefix = p.prefix in
    if p.shadow then shadow_check
    else if prefix <> "" && Isolation.checks_lower_bound p.mode then begin
      let items = ref [] in
      let outi i = items := i :: !items in
      let ok = mangled ^ "$$retok" in
      outi (A.cmp (A.Simm (A.Sym (Isolation.code_lo_sym ~prefix))) (A.Didx (A.r_sp, A.Num 0)));
      outi (A.jcc O.JC ok);
      outi (A.br (A.Sym (Isolation.fault_stub_label ~prefix Isolation.fault_ret_addr)));
      outi (A.label ok);
      if Isolation.checks_upper_bound p.mode then begin
        let ok2 = mangled ^ "$$retok2" in
        outi (A.cmp (A.Simm (A.Sym (Isolation.code_hi_sym ~prefix))) (A.Didx (A.r_sp, A.Num 0)));
        outi (A.jcc O.JNC ok2);
        outi (A.br (A.Sym (Isolation.fault_stub_label ~prefix Isolation.fault_ret_addr)));
        outi (A.label ok2)
      end;
      wrap_guard c (List.rev !items)
    end
    else []
  in
  let epilogue_items =
    [ A.label epilogue ]
    @ List.map (fun r -> A.pop r) (List.rev saved)
    @ [ A.mov (A.Sreg A.r_fp) (A.Dreg A.r_sp); A.pop A.r_fp ]
    @ ret_check
    @ [ A.ret ]
  in
  let info =
    {
      fi_name = f.tfname;
      fi_frame_bytes = frame;
      fi_saved_regs = List.length saved;
      fi_calls = List.sort_uniq compare c.calls;
      fi_api_calls = List.rev c.api_calls;
      fi_sites = { checked = c.checked; elided = c.elided; proven_unsafe = 0 };
      fi_static_sites = c.statics;
      fi_fnptr_calls = c.fnptr;
      fi_spill_bytes = c.max_push;
      fi_runtime_bytes = c.runtime_max;
    }
  in
  (prologue @ body @ epilogue_items, info)

(* ------------------------------------------------------------------ *)
(* Globals *)

(* A global initializer element: either a plain constant or the
   address of a string literal / function / global. *)
let init_expr_of p (e : texpr) loc : A.expr =
  match fold_const e with
  | Some v -> A.Num (v land 0xFFFF)
  | None -> (
    match e.te with
    | Tstr s -> A.Sym (intern_string p s)
    | Tfunc_name f -> A.Sym (Isolation.mangle ~prefix:p.prefix f)
    | Taddr { te = Tglobal g; _ } ->
      A.Sym (Isolation.mangle ~prefix:p.prefix g)
    | _ -> errf loc "global initializer must be a constant")

let gen_globals p (globals : tglobal list) =
  let items = ref [] in
  let outi i = items := i :: !items in
  let emit_scalar_init e ty =
    let ie = init_expr_of p e e.tloc in
    match (Ctype.sizeof p.env ty, ie) with
    | 1, A.Num v -> outi (A.Dbytes (String.make 1 (Char.chr (v land 0xFF))))
    | 1, _ -> errf e.tloc "char initializer must be a plain constant"
    | _, ie -> outi (A.Dword ie)
  in
  List.iter
    (fun g ->
      let size = Ctype.sizeof p.env g.tgtype in
      outi A.Align2;
      outi (A.label (Isolation.mangle ~prefix:p.prefix g.tgname));
      match (g.tginit, g.tgtype) with
      | None, _ -> outi (A.Space size)
      | Some (Ti_expr e), ty -> emit_scalar_init e ty
      | Some (Ti_list es), Ctype.Array (elem, n) ->
        List.iter (fun e -> emit_scalar_init e elem) es;
        let esize = Ctype.sizeof p.env elem in
        let remaining = (n - List.length es) * esize in
        if remaining > 0 then outi (A.Space remaining)
      | Some (Ti_list _), _ -> failwith "brace initializer on non-array"
      | Some (Ti_str s), Ctype.Array (Ctype.Char, n) ->
        outi (A.Dbytes (s ^ "\000"));
        let remaining = n - String.length s - 1 in
        if remaining > 0 then outi (A.Space remaining)
      | Some (Ti_str _), _ -> failwith "string initializer on non-char-array")
    globals;
  List.rev !items

(* ------------------------------------------------------------------ *)
(* Program *)

let fault_stubs prefix =
  List.concat_map
    (fun reason ->
      let l = Isolation.fault_stub_label ~prefix reason in
      [
        A.label l;
        A.mov (A.imm reason) (A.Dabs (A.Num M.sw_fault_port));
        A.jmp l;
      ])
    [
      Isolation.fault_data_lo; Isolation.fault_data_hi;
      Isolation.fault_code_ptr; Isolation.fault_ret_addr;
      Isolation.fault_shadow_stack;
    ]

let gen_program ~prefix ~mode ?(shadow = false)
    ?(classify = fun _ -> Needs_check) ?(loop_bound = fun _ -> None)
    (prog : Tast.program) : output =
  let p =
    {
      prefix; mode; shadow; classify; loop_bound; env = prog.struct_env;
      strings = Hashtbl.create 16; string_counter = 0;
      globals = Hashtbl.create 64; functions = Hashtbl.create 64;
      loops = [];
    }
  in
  List.iter (fun g -> Hashtbl.add p.globals g.tgname g.tgtype) prog.globals;
  List.iter (fun f -> Hashtbl.add p.functions f.tfname ()) prog.funcs;
  let code = ref [] and infos = ref [] in
  List.iter
    (fun f ->
      let items, info = gen_function p f in
      code := !code @ items;
      infos := info :: !infos)
    prog.funcs;
  let code = !code @ fault_stubs prefix in
  let globals_items = gen_globals p prog.globals in
  let string_items =
    Hashtbl.fold
      (fun contents label acc ->
        A.Align2 :: A.label label :: A.Dbytes (contents ^ "\000") :: acc)
      p.strings []
  in
  let handlers =
    List.filter_map
      (fun f ->
        if
          String.length f.tfname >= 7
          && String.sub f.tfname 0 7 = "handle_"
        then Some f.tfname
        else None)
      prog.funcs
  in
  {
    code;
    data = globals_items @ string_items;
    infos = List.rev !infos;
    handlers;
    loops = List.rev p.loops;
  }
