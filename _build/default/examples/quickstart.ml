(* Quickstart: compile a tiny wearable app with the AFT, boot it on
   the simulated MSP430 under MPU-assisted isolation, and watch it
   run.

     dune exec examples/quickstart.exe *)

module Aft = Amulet_aft.Aft
module Os = Amulet_os
module Iso = Amulet_cc.Isolation

(* A WearC application: ordinary C with pointers — which the original
   Amulet platform had to forbid, and this system makes safe. *)
let hello_app =
  {|
int ticks = 0;
int history[8];

void record(int *slot, int value) { *slot = value; }

void handle_init(int arg) {
  api_display_write("hello amulet", 0);
  api_set_timer(1000);
}

void handle_timer(int arg) {
  record(&history[ticks & 7], api_get_battery());
  ticks += 1;
}
|}

let () =
  (* 1. The AFT compiles the app, inserts the isolation checks, lays
     out memory per the paper's Fig. 1, and links a firmware image. *)
  let fw =
    Aft.build ~mode:Iso.Mpu_assisted [ { Aft.name = "hello"; source = hello_app } ]
  in
  Format.printf "firmware built: %d bytes@."
    (Amulet_link.Image.total_bytes fw.Aft.fw_image);
  Format.printf "%a@." Amulet_aft.Layout.pp fw.Aft.fw_layout;

  (* 2. Boot the kernel model and run five virtual seconds. *)
  let k = Os.Kernel.create ~scenario:Os.Sensors.Walking fw in
  let records = Os.Kernel.run_for_ms k 5_000 in
  Format.printf "dispatched %d events in 5 virtual seconds@."
    (List.length records);

  (* 3. Inspect the results. *)
  Format.printf "display line 0: %S@." (Os.Kernel.display_line k 0);
  let app = Os.Kernel.app_by_name k "hello" in
  (match Os.Kernel.handler_profile app "handle_timer" with
  | Some s ->
    Format.printf "handle_timer ran %d times, avg %d cycles per event@."
      s.Os.Kernel.hs_count
      (s.Os.Kernel.hs_cycles / max 1 s.Os.Kernel.hs_count)
  | None -> ());

  (* 4. The same pointers that make the app pleasant to write are
     confined: a stray write above the app's segment trips the MPU. *)
  let evil =
    {|
void handle_init(int arg) {
  int *p = (int*)0xF000;
  *p = 666;
}
|}
  in
  let fw2 =
    Aft.build ~mode:Iso.Mpu_assisted [ { Aft.name = "stray"; source = evil } ]
  in
  let k2 = Os.Kernel.create fw2 in
  let _ = Os.Kernel.run_for_ms k2 100 in
  let bad = Os.Kernel.app_by_name k2 "stray" in
  Format.printf "@.stray app enabled after its first event: %b@."
    bad.Os.Kernel.enabled;
  match bad.Os.Kernel.last_fault with
  | Some f -> Format.printf "caught: %s@." f
  | None -> Format.printf "(no fault?!)@."
