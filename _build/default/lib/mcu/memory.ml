type t = Bytes.t

let create () = Bytes.make Memory_map.address_space '\000'

let read_byte t addr = Char.code (Bytes.get t (addr land 0xFFFF))

let write_byte t addr v =
  Bytes.set t (addr land 0xFFFF) (Char.chr (v land 0xFF))

let read_word t addr =
  let addr = addr land 0xFFFE in
  read_byte t addr lor (read_byte t (addr + 1) lsl 8)

let write_word t addr v =
  let addr = addr land 0xFFFE in
  write_byte t addr (v land 0xFF);
  write_byte t (addr + 1) ((v lsr 8) land 0xFF)

let read t width addr =
  match width with Word.W8 -> read_byte t addr | Word.W16 -> read_word t addr

let write t width addr v =
  match width with
  | Word.W8 -> write_byte t addr v
  | Word.W16 -> write_word t addr v

let blit t ~addr src = Bytes.blit src 0 t addr (Bytes.length src)

let blit_words t ~addr words =
  List.iteri (fun i w -> write_word t (addr + (2 * i)) w) words

let fill t ~addr ~len ~value =
  Bytes.fill t addr len (Char.chr (value land 0xFF))

let copy = Bytes.copy
