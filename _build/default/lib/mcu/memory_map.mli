(** Address-space layout of the simulated MSP430FR5969-class MCU.

    The 64 KiB address space follows the real part (SLAS704 datasheet):

    {v
      0x0000 - 0x0FFF   peripheral registers (MMIO)
      0x1000 - 0x17FF   bootstrap loader ROM
      0x1800 - 0x19FF   information memory (InfoMem, 512 B FRAM)
      0x1C00 - 0x23FF   SRAM (2 KiB)
      0x4400 - 0xFF7F   main FRAM (code + data)
      0xFF80 - 0xFFFF   interrupt vector table
    v}

    Everything else is unmapped and faults on access. *)

type region =
  | Peripherals
  | Bootstrap
  | Info_mem
  | Sram
  | Fram
  | Vectors
  | Unmapped

val region_of_addr : int -> region
val region_name : region -> string

val peripherals_start : int
val peripherals_limit : int

val info_mem_start : int
val info_mem_limit : int

val sram_start : int
val sram_limit : int

val fram_start : int
val fram_limit : int
(** Main FRAM range checked by the MPU: [fram_start, fram_limit). *)

val vectors_start : int
val vectors_limit : int

val address_space : int
(** Total size of the address space (65536). *)

val reset_vector : int
(** Address holding the reset entry point (0xFFFE). *)

val mpu_fault_vector : int
(** Address holding the MPU-violation (system NMI) entry point. *)
