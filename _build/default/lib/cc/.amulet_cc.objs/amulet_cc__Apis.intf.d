lib/cc/apis.mli: Ctype
