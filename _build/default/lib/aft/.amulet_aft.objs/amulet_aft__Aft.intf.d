lib/aft/aft.mli: Amulet_cc Amulet_link Layout
