(** Model of the MSP430 FRAM memory protection unit (MPU).

    Faithful to the FR5969's unit and to the shortcomings the paper
    leans on:

    - only main FRAM ([0x4400, 0xFF80)) and InfoMem are covered; SRAM,
      peripherals, the bootstrap ROM and the interrupt vectors are
      {e never} protected;
    - three main segments with just two adjustable boundaries
      ([MPUSEGB1] between segments 1 and 2, [MPUSEGB2] between 2 and 3);
    - boundaries snap down to a 1 KiB granule (the "arcane protection
      boundary rules");
    - segment 0 is pinned to InfoMem;
    - configuration registers are password-protected ([0xA5] in the
      high byte of any register write) and can be locked until reset.

    Register addresses match the real part: MPUCTL0 0x05A0, MPUCTL1
    0x05A2, MPUSEGB2 0x05A4, MPUSEGB1 0x05A6, MPUSAM 0x05A8. *)

type t

type access = Exec | Dread | Dwrite

type segment = Seg_info | Seg1 | Seg2 | Seg3

type check_result =
  | Allowed
  | Violation of segment
      (** Access denied; the segment's interrupt flag has been set. *)

val create : unit -> t

val reset : t -> unit
(** Power-up-clear: MPU disabled, unlocked, boundaries and SAM reset. *)

(* Register-level interface (used by the machine's MMIO dispatch). *)

val ctl0_addr : int
val ctl1_addr : int
val segb2_addr : int
val segb1_addr : int
val sam_addr : int

val handles : int -> bool
(** [handles addr] is true when [addr] is an MPU register. *)

type write_result = Write_ok | Bad_password | Locked_ignored

val mmio_write : t -> int -> int -> write_result
(** Word write to an MPU register.  Writes to MPUCTL0/MPUCTL1 must
    carry [0xA5] in the high byte; [Bad_password] otherwise, which on
    real silicon triggers a PUC reset (the machine's responsibility).
    Boundary and SAM registers take plain 16-bit values but are
    ignored while the configuration is locked. *)

val mmio_read : t -> int -> int

(* Semantic interface. *)

val enabled : t -> bool
val locked : t -> bool

val segment_of_addr : t -> int -> segment option
(** Which segment covers an address, or [None] when the address is
    outside MPU-protected memory. *)

val boundary1 : t -> int
val boundary2 : t -> int
(** Effective (1 KiB-aligned) segment boundaries. *)

val check : t -> access -> int -> check_result
(** Permission check for one access.  Always [Allowed] when the MPU is
    disabled or the address is not covered. *)

val violation_flags : t -> int
(** Current MPUCTL1 interrupt-flag bits. *)

val gen : t -> int
(** Configuration generation: bumped by every accepted register write,
    {!configure}, {!raw_set} and {!reset}.  {!check} verdicts are a
    pure function of the configuration, so a cached "allowed" result
    stays valid exactly as long as [gen] is unchanged — the machine's
    predecoded-block cache uses this to skip per-word execute checks
    on revisited blocks. *)

(** Raw register cells, for the fault injector: a bit flip in the
    MPU's own configuration state models the paper's concern that a
    primitive MPU offers no protection for its own state.  [raw_set]
    deliberately bypasses the password and the lock — it is a physical
    upset, not a bus write. *)

type raw_reg = Raw_ctl0 | Raw_ctl1 | Raw_segb1 | Raw_segb2 | Raw_sam

val raw_reg_name : raw_reg -> string
val raw_get : t -> raw_reg -> int
val raw_set : t -> raw_reg -> int -> unit

(* Direct configuration helper used by host-side tests and the kernel
   model; performs the same password-checked writes as MMIO. *)

val configure :
  t -> b1:int -> b2:int -> sam:int -> enable:bool -> unit
(** Set boundaries (byte addresses), the segment access mask and the
    enable bit, as if written with the correct password. *)

val sam_bits : seg1:string -> seg2:string -> seg3:string -> ?info:string -> unit -> int
(** Build an MPUSAM value from permission strings over ['r' 'w' 'x'],
    e.g. [sam_bits ~seg1:"x" ~seg2:"rw" ~seg3:"" ()].  [info] defaults
    to no access. *)

val pp : Format.formatter -> t -> unit
