lib/arp/arp.mli: Amulet_apps Amulet_cc Amulet_os
