lib/cc/parser.mli: Ast
