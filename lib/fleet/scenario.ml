module Iso = Amulet_cc.Isolation
module Sensors = Amulet_os.Sensors
module Suite = Amulet_apps.Suite

type traffic_kind = Button | Ble | Tick

type traffic = { tr_kind : traffic_kind; tr_rate : float; tr_burst : int }

type t = {
  sc_name : string;
  sc_devices : int;
  sc_duration_ms : int;
  sc_seed : int;
  sc_modes : (Iso.mode * int) list;
  sc_apps : string list;
  sc_sensors : Sensors.scenario;
  sc_traffic : traffic list;
  sc_churn_ms : int option;
}

let default =
  {
    sc_name = "default";
    sc_devices = 1;
    sc_duration_ms = 1000;
    sc_seed = 1;
    sc_modes = List.map (fun m -> (m, 1)) Iso.all;
    sc_apps = [ "pedometer" ];
    sc_sensors = Sensors.Daily_mix;
    sc_traffic = [];
    sc_churn_ms = None;
  }

(* ------------------------------------------------------------------ *)
(* Deterministic randomness (same finalizer as lib/sec/inject.ml)      *)

module Rng = struct
  let mix (s : int64) =
    let open Int64 in
    let z = add s 0x9E3779B97F4A7C15L in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  type rng = { mutable state : int64 }

  let create seed = { state = Int64.of_int seed }

  let draw rng bound =
    rng.state <- Int64.add rng.state 0x9E3779B97F4A7C15L;
    let z = mix rng.state in
    Int64.to_int (Int64.shift_right_logical z 2) mod bound
end

let device_seed ~seed ~index =
  let open Int64 in
  let z =
    add (of_int seed) (mul (of_int (index + 1)) 0x9E3779B97F4A7C15L)
  in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (shift_right_logical z 2)

let mode_weight t = List.fold_left (fun a (_, w) -> a + w) 0 t.sc_modes

let device_mode t ~index =
  let r = index mod mode_weight t in
  let rec pick r = function
    | [] -> assert false (* weights sum to > r by construction *)
    | (m, w) :: tl -> if r < w then m else pick (r - w) tl
  in
  pick r t.sc_modes

let mode_devices t =
  let counts =
    List.map
      (fun (m, _) ->
        let c = ref 0 in
        for i = 0 to t.sc_devices - 1 do
          if device_mode t ~index:i = m then incr c
        done;
        (m, !c))
      t.sc_modes
  in
  List.filter (fun (_, c) -> c > 0) counts

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

let traffic_kind_name = function
  | Button -> "button"
  | Ble -> "ble"
  | Tick -> "tick"

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) line)
  |> List.filter (fun s -> s <> "")

let int_of ~what s =
  (* accept a trailing "ms" on durations *)
  let s =
    if String.length s > 2 && String.sub s (String.length s - 2) 2 = "ms"
    then String.sub s 0 (String.length s - 2)
    else s
  in
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" what s)

let split_eq s =
  match String.index_opt s '=' with
  | Some i ->
    Some
      ( String.sub s 0 i,
        String.sub s (i + 1) (String.length s - i - 1) )
  | None -> None

let parse_modes args =
  let rec go acc = function
    | [] -> if acc = [] then Error "modes: empty mix" else Ok (List.rev acc)
    | tok :: tl -> (
      match split_eq tok with
      | None -> Error (Printf.sprintf "modes: expected mode=weight, got %S" tok)
      | Some (name, w) -> (
        match Iso.of_string name with
        | None ->
          Error
            (Printf.sprintf
               "modes: unknown mode %S (expected none|amuletc|software|mpu)"
               name)
        | Some m -> (
          match int_of_string_opt w with
          | None -> Error (Printf.sprintf "modes: bad weight %S" w)
          | Some weight when weight <= 0 ->
            Error (Printf.sprintf "modes: weight for %s must be > 0" name)
          | Some weight ->
            if List.mem_assoc m acc then
              Error (Printf.sprintf "modes: %s listed twice" name)
            else go ((m, weight) :: acc) tl)))
  in
  go [] args

let parse_sensors = function
  | "resting" -> Ok Sensors.Resting
  | "walking" -> Ok Sensors.Walking
  | "running" -> Ok Sensors.Running
  | "daily_mix" -> Ok Sensors.Daily_mix
  | s when String.length s > 5 && String.sub s 0 5 = "fall@" -> (
    match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
    | Some ms when ms >= 0 -> Ok (Sensors.Fall_at ms)
    | _ -> Error (Printf.sprintf "sensors: bad fall time in %S" s))
  | s ->
    Error
      (Printf.sprintf
         "sensors: unknown backdrop %S (resting|walking|running|daily_mix|fall@<ms>)"
         s)

let parse_traffic args =
  match args with
  | [] -> Error "traffic: missing kind"
  | kind :: opts -> (
    let kind =
      match kind with
      | "button" -> Ok Button
      | "ble" -> Ok Ble
      | "tick" -> Ok Tick
      | s -> Error (Printf.sprintf "traffic: unknown kind %S (button|ble|tick)" s)
    in
    match kind with
    | Error e -> Error e
    | Ok tr_kind ->
      let rec go rate burst = function
        | [] -> (
          match rate with
          | None -> Error "traffic: missing rate=<events/sec>"
          | Some r -> Ok { tr_kind; tr_rate = r; tr_burst = burst })
        | tok :: tl -> (
          match split_eq tok with
          | Some ("rate", v) -> (
            match float_of_string_opt v with
            | Some r when r > 0.0 -> go (Some r) burst tl
            | _ -> Error (Printf.sprintf "traffic: rate must be > 0, got %S" v))
          | Some ("burst", v) -> (
            match int_of_string_opt v with
            | Some b when b >= 1 -> go rate b tl
            | _ -> Error (Printf.sprintf "traffic: burst must be >= 1, got %S" v))
          | _ -> Error (Printf.sprintf "traffic: unknown option %S" tok))
      in
      go None 1 opts)

let known_app name =
  match Suite.find name with _ -> true | exception Not_found -> false

let apply t key args =
  let ( let* ) = Result.bind in
  match (key, args) with
  | "scenario", [ name ] -> Ok { t with sc_name = name }
  | "scenario", _ -> Error "scenario: expected exactly one name"
  | "devices", [ n ] ->
    let* n = int_of ~what:"devices" n in
    if n < 1 then Error "devices: must be >= 1"
    else Ok { t with sc_devices = n }
  | "duration", [ n ] ->
    let* n = int_of ~what:"duration" n in
    if n < 1 then Error "duration: must be >= 1 ms"
    else Ok { t with sc_duration_ms = n }
  | "seed", [ n ] ->
    let* n = int_of ~what:"seed" n in
    Ok { t with sc_seed = n }
  | "modes", args ->
    let* mix = parse_modes args in
    Ok { t with sc_modes = mix }
  | "apps", [] -> Error "apps: expected at least one suite app"
  | "apps", args -> (
    match List.find_opt (fun a -> not (known_app a)) args with
    | Some a -> Error (Printf.sprintf "apps: unknown suite app %S" a)
    | None -> Ok { t with sc_apps = args })
  | "sensors", [ s ] ->
    let* sc = parse_sensors s in
    Ok { t with sc_sensors = sc }
  | "traffic", args ->
    let* tr = parse_traffic args in
    Ok { t with sc_traffic = t.sc_traffic @ [ tr ] }
  | "churn", [ n ] ->
    let* n = int_of ~what:"churn" n in
    if n < 1 then Error "churn: must be >= 1 ms"
    else Ok { t with sc_churn_ms = Some n }
  | key, _ -> Error (Printf.sprintf "unknown directive %S" key)

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go t lineno = function
    | [] -> Ok t
    | line :: tl -> (
      match tokens (strip_comment line) with
      | [] -> go t (lineno + 1) tl
      | key :: args -> (
        match apply t key args with
        | Ok t -> go t (lineno + 1) tl
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)))
  in
  go default 1 lines

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error e -> Error e

let pp ppf t =
  Format.fprintf ppf
    "@[<v>scenario %s: %d devices x %d ms, seed %d@,modes: %s@,apps: %s@,\
     sensors: %s; %d traffic streams%s@]"
    t.sc_name t.sc_devices t.sc_duration_ms t.sc_seed
    (String.concat " "
       (List.map
          (fun (m, w) -> Printf.sprintf "%s=%d" (Iso.name m) w)
          t.sc_modes))
    (String.concat " " t.sc_apps)
    (match t.sc_sensors with
    | Sensors.Resting -> "resting"
    | Sensors.Walking -> "walking"
    | Sensors.Running -> "running"
    | Sensors.Daily_mix -> "daily_mix"
    | Sensors.Fall_at ms -> Printf.sprintf "fall@%d" ms)
    (List.length t.sc_traffic)
    (match t.sc_churn_ms with
    | Some c -> Printf.sprintf "; churn every %d ms" c
    | None -> "")
