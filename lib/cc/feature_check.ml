let errf = Srcloc.errf

let rec type_has_pointer = function
  | Ctype.Ptr _ | Ctype.Func _ -> true
  | Ctype.Array (t, _) -> type_has_pointer t
  | _ -> false

let check_type loc what ty =
  if type_has_pointer ty then
    errf loc
      "%s has a pointer type (%s): pointers are not available in \
       feature-limited (AmuletC) mode"
      what (Ctype.to_string ty)

let rec check_expr (e : Ast.expr) =
  let loc = e.Ast.eloc in
  match e.Ast.e with
  | Ast.Num _ | Ast.Str _ | Ast.Var _ -> ()
  | Ast.Bin (_, a, b) ->
    check_expr a;
    check_expr b
  | Ast.Un (_, a) -> check_expr a
  | Ast.Assign (a, b) | Ast.Op_assign (_, a, b) ->
    check_expr a;
    check_expr b
  | Ast.Cond (a, b, c) ->
    check_expr a;
    check_expr b;
    check_expr c
  | Ast.Call (f, args) ->
    (match f.Ast.e with
    | Ast.Var _ -> ()
    | _ -> errf loc "indirect calls are not available in feature-limited mode");
    List.iter check_expr args
  | Ast.Index (a, i) ->
    check_expr a;
    check_expr i
  | Ast.Deref _ ->
    errf loc "pointer dereference ('*') is not available in feature-limited mode"
  | Ast.Addr _ ->
    errf loc "address-of ('&') is not available in feature-limited mode"
  | Ast.Member (a, _) -> check_expr a
  | Ast.Arrow _ ->
    errf loc "'->' is not available in feature-limited mode"
  | Ast.Pre_incr a | Ast.Pre_decr a | Ast.Post_incr a | Ast.Post_decr a ->
    check_expr a
  | Ast.Sizeof_type ty -> check_type loc "sizeof operand" ty
  | Ast.Sizeof_expr a -> check_expr a
  | Ast.Cast (ty, a) ->
    check_type loc "cast target" ty;
    check_expr a

let rec check_stmt (s : Ast.stmt) =
  let loc = s.Ast.sloc in
  match s.Ast.s with
  | Ast.Sexpr e -> check_expr e
  | Ast.Sdecl (ty, name, init) ->
    check_type loc ("variable '" ^ name ^ "'") ty;
    (match init with
    | Some (Ast.Iexpr e) -> check_expr e
    | Some (Ast.Ilist es) -> List.iter check_expr es
    | Some (Ast.Istr _) | None -> ())
  | Ast.Sif (c, a, b) ->
    check_expr c;
    List.iter check_stmt a;
    List.iter check_stmt b
  | Ast.Swhile (c, b) ->
    check_expr c;
    List.iter check_stmt b
  | Ast.Sdo_while (b, c) ->
    List.iter check_stmt b;
    check_expr c
  | Ast.Sfor (init, cond, step, body) ->
    Option.iter check_stmt init;
    Option.iter check_expr cond;
    Option.iter check_expr step;
    List.iter check_stmt body
  | Ast.Sreturn e -> Option.iter check_expr e
  | Ast.Sbreak | Ast.Scontinue -> ()
  | Ast.Sswitch (e, cases, default) ->
    check_expr e;
    List.iter (fun (_, b) -> List.iter check_stmt b) cases;
    Option.iter (List.iter check_stmt) default
  | Ast.Sblock b -> List.iter check_stmt b

(* ------------------------------------------------------------------ *)
(* Call graph from the untyped AST *)

let rec expr_calls acc (e : Ast.expr) =
  let acc =
    match e.Ast.e with
    | Ast.Call ({ Ast.e = Ast.Var f; _ }, _) -> f :: acc
    | _ -> acc
  in
  match e.Ast.e with
  | Ast.Num _ | Ast.Str _ | Ast.Var _ | Ast.Sizeof_type _ -> acc
  | Ast.Bin (_, a, b) | Ast.Assign (a, b) | Ast.Op_assign (_, a, b)
  | Ast.Index (a, b) ->
    expr_calls (expr_calls acc a) b
  | Ast.Un (_, a) | Ast.Deref a | Ast.Addr a | Ast.Member (a, _)
  | Ast.Arrow (a, _) | Ast.Pre_incr a | Ast.Pre_decr a | Ast.Post_incr a
  | Ast.Post_decr a | Ast.Sizeof_expr a | Ast.Cast (_, a) ->
    expr_calls acc a
  | Ast.Cond (a, b, c) -> expr_calls (expr_calls (expr_calls acc a) b) c
  | Ast.Call (f, args) ->
    List.fold_left expr_calls (expr_calls acc f) args

let rec stmt_calls acc (s : Ast.stmt) =
  match s.Ast.s with
  | Ast.Sexpr e -> expr_calls acc e
  | Ast.Sdecl (_, _, Some (Ast.Iexpr e)) -> expr_calls acc e
  | Ast.Sdecl (_, _, Some (Ast.Ilist es)) -> List.fold_left expr_calls acc es
  | Ast.Sdecl _ -> acc
  | Ast.Sif (c, a, b) ->
    List.fold_left stmt_calls
      (List.fold_left stmt_calls (expr_calls acc c) a)
      b
  | Ast.Swhile (c, b) -> List.fold_left stmt_calls (expr_calls acc c) b
  | Ast.Sdo_while (b, c) -> expr_calls (List.fold_left stmt_calls acc b) c
  | Ast.Sfor (init, cond, step, body) ->
    let acc = match init with Some s -> stmt_calls acc s | None -> acc in
    let acc = match cond with Some e -> expr_calls acc e | None -> acc in
    let acc = match step with Some e -> expr_calls acc e | None -> acc in
    List.fold_left stmt_calls acc body
  | Ast.Sreturn (Some e) -> expr_calls acc e
  | Ast.Sreturn None | Ast.Sbreak | Ast.Scontinue -> acc
  | Ast.Sswitch (e, cases, default) ->
    let acc = expr_calls acc e in
    let acc =
      List.fold_left (fun acc (_, b) -> List.fold_left stmt_calls acc b) acc cases
    in
    (match default with
    | Some b -> List.fold_left stmt_calls acc b
    | None -> acc)
  | Ast.Sblock b -> List.fold_left stmt_calls acc b

let call_edges (prog : Ast.program) =
  let defined =
    List.filter_map
      (function Ast.Dfunc f -> Some f.Ast.fname | _ -> None)
      prog
  in
  List.filter_map
    (function
      | Ast.Dfunc f ->
        let calls = List.fold_left stmt_calls [] f.Ast.fbody in
        let in_unit = List.filter (fun g -> List.mem g defined) calls in
        Some (f.Ast.fname, List.sort_uniq compare in_unit)
      | _ -> None)
    prog

let find_recursion edges =
  (* DFS with colors; returns the members of the first cycle found,
     sorted so the diagnostic is independent of traversal order. *)
  let color = Hashtbl.create 16 in
  let cycle = ref None in
  let rec visit path f =
    match Hashtbl.find_opt color f with
    | Some `Done -> ()
    | Some `Active ->
      if !cycle = None then begin
        (* [path] carries the revisited node at its head; the cycle is
           everything from there back to its earlier occurrence *)
        let rec cut = function
          | [] -> [ f ]
          | x :: rest -> if x = f then [ x ] else x :: cut rest
        in
        cycle := Some (List.sort_uniq compare (cut (List.tl path)))
      end
    | None ->
      Hashtbl.replace color f `Active;
      List.iter
        (fun g -> if !cycle = None then visit (g :: path) g)
        (try List.assoc f edges with Not_found -> []);
      Hashtbl.replace color f `Done
  in
  List.iter (fun (f, _) -> if !cycle = None then visit [ f ] f) edges;
  !cycle

let check ~mode (prog : Ast.program) =
  if not (Isolation.allows_pointers mode) then
    List.iter
      (function
        | Ast.Dglobal g ->
          check_type g.Ast.gloc ("global '" ^ g.Ast.gname ^ "'") g.Ast.gtype
        | Ast.Dstruct (sname, fields, loc) ->
          List.iter
            (fun (fname, ty) ->
              check_type loc
                (Printf.sprintf "field '%s.%s'" sname fname)
                ty)
            fields
        | Ast.Dfunc f ->
          List.iter
            (fun (pname, ty) ->
              check_type f.Ast.floc ("parameter '" ^ pname ^ "'") ty)
            f.Ast.fparams;
          List.iter check_stmt f.Ast.fbody)
      prog;
  if not (Isolation.allows_recursion mode) then
    match find_recursion (call_edges prog) with
    | Some cycle ->
      errf Srcloc.dummy
        "recursion is not available in feature-limited mode (cycle: %s)"
        (String.concat " -> " cycle)
    | None -> ()
