(** Fault forensics: a post-mortem dump for a stopped machine.

    Combines the last trace-ring events (disassembled), the register
    file, the current MPU segment configuration, and — when the
    firmware is supplied — which app region owns the faulting address
    and which symbol owns the faulting PC. *)

val sw_fault_name : int -> string
(** Human name of a compiler-inserted check's fault reason code. *)

val report :
  ?fw:Amulet_aft.Aft.firmware ->
  ring:Amulet_mcu.Trace.ring ->
  stop:Amulet_mcu.Machine.stop_reason ->
  Amulet_mcu.Machine.t ->
  string
(** Build the dump.  Capture it {e before} any MPU reset or machine
    re-use: it reads live machine state. *)
