lib/mcu/encode.ml: List Opcode Option Word
