lib/cc/stack_depth.ml: Codegen Hashtbl List
