(** Flat 64 KiB backing store for the simulated address space.

    This module is a raw byte store: permission checks, MMIO dispatch
    and region semantics live in {!Machine}.  Word accesses are
    little-endian; an odd word address is aligned down, as on the real
    MSP430 CPU. *)

type t

val create : unit -> t
(** A zero-filled 64 KiB memory. *)

val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit

val read_word : t -> int -> int
val write_word : t -> int -> int -> unit

val read : t -> Word.width -> int -> int
val write : t -> Word.width -> int -> int -> unit

val blit : t -> addr:int -> bytes -> unit
(** Copy a byte string into memory starting at [addr]. *)

val blit_words : t -> addr:int -> int list -> unit
(** Store a list of 16-bit words starting at [addr]. *)

val fill : t -> addr:int -> len:int -> value:int -> unit

val copy : t -> t
(** Deep copy (for snapshot/restore in tests). *)
