(** Instruction timing.

    Cycle costs follow the classic MSP430 CPU tables (format I cost is
    a function of source and destination addressing modes; constant
    generators cost the same as register sources).  Emulated
    instructions (RET, POP, BR, ...) are assembled as real format I/II
    instructions, so their costs fall out of these tables. *)

val cycles : Opcode.t -> int
(** Execution cycles for one instruction. *)

val interrupt_latency : int
(** Cycles from interrupt acceptance to the first handler instruction. *)
