(** 16-bit and 8-bit machine arithmetic for the MSP430-like core.

    Values are plain OCaml [int]s constrained to the range of the
    operation width; every operation re-normalizes its result.  The
    module also computes the MSP430 status flags (carry, zero,
    negative, signed overflow) for arithmetic results. *)

type width = W8 | W16

val bits : width -> int
(** [bits w] is 8 or 16. *)

val mask : width -> int
(** [mask w] is [0xFF] or [0xFFFF]. *)

val sign_bit : width -> int
(** Most-significant-bit mask for the width. *)

val norm : width -> int -> int
(** Truncate to the width (two's-complement wrap-around). *)

val is_negative : width -> int -> bool
(** True if the sign bit of the normalized value is set. *)

val to_signed : width -> int -> int
(** Interpret the value as a signed two's-complement integer. *)

val of_signed : width -> int -> int
(** Inverse of {!to_signed}: wrap a signed integer into the width. *)

(** Result of an arithmetic operation together with flag outcomes. *)
type flags = { value : int; carry : bool; overflow : bool }

val add : width -> ?carry_in:bool -> int -> int -> flags
(** [add w a b] computes [a + b (+1 if carry_in)] with carry-out and
    signed-overflow detection. *)

val sub : width -> ?borrow_in:bool -> int -> int -> flags
(** [sub w dst src] computes [dst - src] the MSP430 way
    ([dst + lnot src + 1]); [carry] is the NOT-borrow convention.
    [borrow_in] subtracts one more (for SUBC with carry clear). *)

val dadd : width -> ?carry_in:bool -> int -> int -> flags
(** Decimal (BCD) addition, digit by digit, as the DADD instruction. *)

val swap_bytes : int -> int
(** Exchange high and low byte of a 16-bit value. *)

val sign_extend_byte : int -> int
(** Sign-extend bits 7..0 into a 16-bit value (SXT). *)

val low_byte : int -> int
val high_byte : int -> int
