module I = Amulet_link.Image
module O = Amulet_mcu.Opcode
module D = Amulet_mcu.Decode
module M = Amulet_mcu.Machine
module Cyc = Amulet_mcu.Cycles

type verdict =
  | Bounded of int
  | Unbounded of { reason : string; chain : string list }

type func_bound = {
  fb_name : string;
  fb_verdict : verdict;
  fb_loops : int;
  fb_bounded_loops : int;
}

type handler_bound = {
  hb_handler : string;
  hb_fn : verdict;
  hb_dispatch : verdict;
  hb_total : verdict;
}

type t = {
  w_prefix : string;
  w_mode : Amulet_cc.Isolation.mode;
  w_funcs : func_bound list;
  w_handlers : handler_bound list;
  w_loops : int;
  w_bounded_loops : int;
}

(* carried reason plus the call chain (root first) accumulated as the
   exception unwinds through the per-function analyses *)
exception Unb of string * string list

let is_ret = function
  | O.Fmt1 (O.MOV, _, O.S_indirect_inc 1, O.D_reg 0) -> true
  | _ -> false

let br_target = function
  | O.Fmt1 (O.MOV, _, O.S_immediate k, O.D_reg 0) -> Some k
  | _ -> None

let is_computed_pc_write op =
  match op with
  | O.Fmt1 (o, _, _, O.D_reg 0) ->
    O.writes_back o && Option.is_none (br_target op) && not (is_ret op)
  | O.Fmt2 ((O.RRC | O.SWPB | O.RRA | O.SXT), _, O.S_reg 0) -> true
  | _ -> false

let jump_target a off = a + 2 + (2 * off)

(* iteration bounds stamped on the image: [wcet.loop.<label>] notes,
   keyed here by the header label's resolved address *)
let loop_bounds image =
  let tbl = Hashtbl.create 32 in
  let prefix = "wcet.loop." in
  let plen = String.length prefix in
  List.iter
    (fun (k, v) ->
      if String.length k > plen && String.sub k 0 plen = prefix then begin
        let label = String.sub k plen (String.length k - plen) in
        if I.has_symbol image label then
          match int_of_string_opt v with
          | Some b when b >= 0 -> Hashtbl.replace tbl (I.symbol image label) b
          | _ -> ()
      end)
    image.I.notes

  ;
  tbl

(* ------------------------------------------------------------------ *)
(* Bounded longest path: collapse natural loops innermost-first, then
   take the maximum-cost path from the entry over the resulting DAG.
   [nodes] is [(addr, cost, succs)]; successors outside the node set
   are span exits and contribute nothing. *)

let solve ~bounds ~what ~entry nodes =
  let cost = Hashtbl.create 64 in
  let succ = Hashtbl.create 64 in
  List.iter
    (fun (a, c, ss) ->
      Hashtbl.replace cost a c;
      Hashtbl.replace succ a ss)
    nodes;
  let rep = Hashtbl.create 8 in
  let rec find a =
    match Hashtbl.find_opt rep a with
    | None -> a
    | Some p ->
      let r = find p in
      Hashtbl.replace rep a r;
      r
  in
  let succs_of a =
    List.filter_map
      (fun s -> if Hashtbl.mem cost s || Hashtbl.mem rep s then Some (find s) else None)
      (Option.value ~default:[] (Hashtbl.find_opt succ a))
    |> List.sort_uniq compare
  in
  (* longest path from [start] restricted to [inside] nodes, never
     following an edge back to [stop] (the loop header, when
     collapsing a body); memoized DFS with an in-stack cycle guard *)
  let longest ?(inside = fun _ -> true) ?(stop = fun _ -> false) start =
    let memo = Hashtbl.create 64 in
    let active = Hashtbl.create 16 in
    let rec go a =
      match Hashtbl.find_opt memo a with
      | Some v -> v
      | None ->
        if Hashtbl.mem active a then
          raise
            (Unb
               ( Printf.sprintf "cycle through 0x%04X survived loop collapse in %s"
                   a what,
                 [] ));
        Hashtbl.replace active a ();
        let best =
          List.fold_left
            (fun acc s ->
              if inside s && not (stop s) then max acc (go s) else acc)
            0 (succs_of a)
        in
        Hashtbl.remove active a;
        let v = Hashtbl.find cost a + best in
        Hashtbl.replace memo a v;
        v
    in
    go start
  in
  let g =
    {
      Loopbound.g_entry = entry;
      g_nodes =
        List.map
          (fun (a, _, ss) -> { Loopbound.n_id = a; n_succs = ss })
          nodes;
    }
  in
  (match Loopbound.analyze g with
  | Loopbound.Irreducible { edge_src; edge_dst } ->
    raise
      (Unb
         ( Printf.sprintf
             "irreducible control flow in %s (retreating edge 0x%04X -> 0x%04X)"
             what edge_src edge_dst,
           [] ))
  | Loopbound.Reducible loops ->
    (* innermost first: Loopbound sorts by body size, and a nested
       loop's body is a strict subset of its outer loop's *)
    List.iter
      (fun (l : Loopbound.loop) ->
        let h = l.Loopbound.l_header in
        let body =
          List.sort_uniq compare (List.map find l.Loopbound.l_body)
        in
        let iters =
          match Hashtbl.find_opt bounds h with
          | Some b -> b
          | None ->
            raise
              (Unb
                 ( Printf.sprintf
                     "loop at 0x%04X in %s has no stamped iteration bound \
                      (back edge from 0x%04X)"
                     h what
                     (fst (List.hd l.Loopbound.l_back_edges)),
                   [] ))
        in
        let inside s = List.mem s body in
        (* one iteration = longest body path from the header; charged
           B + 1 times so the final failing header test is covered *)
        let path = longest ~inside ~stop:(fun s -> s = h) h in
        let exits =
          List.concat_map
            (fun u -> List.filter (fun s -> not (inside s)) (succs_of u))
            body
          |> List.sort_uniq compare
        in
        Hashtbl.replace cost h ((iters + 1) * path);
        Hashtbl.replace succ h exits;
        List.iter (fun u -> if u <> h then Hashtbl.replace rep u h) body)
      loops);
  longest (find entry)

(* ------------------------------------------------------------------ *)

let analyze ~image ~(cfg : Cfi.t) =
  let prefix = cfg.Cfi.cf_prefix in
  let bounds = loop_bounds image in
  let fetch = Verifier.make_fetch image in
  let certified =
    match I.note image ("cert.gates." ^ prefix) with
    | Some s -> String.split_on_char ',' s
    | None -> []
  in
  let helper_entries =
    List.filter_map
      (fun n ->
        if I.has_symbol image n then Some (I.symbol image n, n) else None)
      Verifier.helper_names
  in
  (* ---- OS-side spans: stubs, gates, runtime helpers ----
     Instruction-level exploration from an entry address; terminals
     are RET, RETI, computed PC writes (the trampoline's dispatch into
     app code) and writes to the halt or fault port.  [BR #imm] is
     followed (exit stub -> __osreturn); [CALL #imm] charges the
     callee span and falls through. *)
  let span_memo = Hashtbl.create 16 in
  let span_active = Hashtbl.create 16 in
  let rec span_wcet ~what entry =
    match Hashtbl.find_opt span_memo entry with
    | Some v -> v
    | None ->
      if Hashtbl.mem span_active entry then
        raise (Unb ("recursive OS span", [ what ]));
      Hashtbl.replace span_active entry ();
      let v =
        Fun.protect
          ~finally:(fun () -> Hashtbl.remove span_active entry)
          (fun () ->
            try compute_span ~what entry
            with Unb (r, c) -> raise (Unb (r, what :: c)))
      in
      Hashtbl.replace span_memo entry v;
      v
  and compute_span ~what entry =
    let nodes = Hashtbl.create 64 in
    let count = ref 0 in
    let rec visit a =
      if not (Hashtbl.mem nodes a) then begin
        incr count;
        if !count > 4096 then
          raise (Unb ("OS span exploration exceeded 4096 instructions", []));
        let op, size =
          try D.decode ~fetch ~addr:a
          with D.Illegal w ->
            raise
              (Unb (Printf.sprintf "undecodable word 0x%04X at 0x%04X" w a, []))
        in
        let base = Cyc.cycles op in
        let writes_port p =
          match op with
          | O.Fmt1 (o, _, _, O.D_absolute d) -> O.writes_back o && d = p
          | _ -> false
        in
        let cost, succs =
          if writes_port M.halt_port || writes_port M.sw_fault_port then
            (base, [])
          else
            match op with
            | O.Jump (O.JMP, off) -> (base, [ jump_target a off ])
            | O.Jump (_, off) -> (base, [ jump_target a off; a + size ])
            | O.Reti -> (base, [])
            | _ when is_ret op -> (base, [])
            | _ when Option.is_some (br_target op) ->
              (base, [ Option.get (br_target op) ])
            | _ when is_computed_pc_write op -> (base, [])
            | O.Fmt2 (O.CALL, _, O.S_immediate k) ->
              let callee =
                match List.assoc_opt k helper_entries with
                | Some n -> span_wcet ~what:n k
                | None -> span_wcet ~what:(Printf.sprintf "0x%04X" k) k
              in
              (base + callee, [ a + size ])
            | O.Fmt2 (O.CALL, _, _) ->
              raise
                (Unb
                   ( Printf.sprintf "indirect call at 0x%04X in OS span" a,
                     [] ))
            | _ -> (base, [ a + size ])
        in
        Hashtbl.replace nodes a (cost, succs);
        List.iter visit succs
      end
    in
    visit entry;
    solve ~bounds ~what ~entry
      (Hashtbl.fold (fun a (c, ss) acc -> (a, c, ss) :: acc) nodes [])
  in
  let gate_cost svc =
    let lbl = Amulet_cc.Apis.gate_label svc in
    if not (I.has_symbol image lbl) then
      raise (Unb ("missing gate stub " ^ lbl, []))
    else
      span_wcet ~what:lbl (I.symbol image lbl)
      + Amulet_cc.Apis.worst_case_charge
          ~certified:(List.mem svc certified)
          svc
  in
  (* a block that branches out of its function hits a fault stub whose
     port write still executes before the machine stops *)
  let stub_extra (b : Cfi.block) =
    match List.rev b.Cfi.b_insns with
    | last :: _ when b.Cfi.b_succs = [] -> (
      match br_target last.Cfi.i_op with
      | Some k when Hashtbl.mem cfg.Cfi.cf_stub_of k ->
        span_wcet ~what:(Hashtbl.find cfg.Cfi.cf_stub_of k) k
      | _ -> 0)
    | _ -> 0
  in
  (* ---- app functions ---- *)
  let fn_memo : (string, verdict) Hashtbl.t = Hashtbl.create 16 in
  let rec fn_wcet stack name =
    match Hashtbl.find_opt fn_memo name with
    | Some (Bounded c) -> c
    | Some (Unbounded { reason; chain }) -> raise (Unb (reason, chain))
    | None ->
      if List.mem name stack then
        raise (Unb ("recursive call cycle", [ name ]));
      let v =
        try Bounded (compute_fn (name :: stack) name)
        with Unb (r, c) -> Unbounded { reason = r; chain = name :: c }
      in
      Hashtbl.replace fn_memo name v;
      (match v with
      | Bounded c -> c
      | Unbounded { reason; chain } -> raise (Unb (reason, chain)))
  and compute_fn stack name =
    let f =
      match Cfi.find_function cfg name with
      | Some f -> f
      | None -> raise (Unb ("unknown function " ^ name, []))
    in
    let nodes =
      List.map
        (fun (b : Cfi.block) ->
          let extra =
            List.fold_left
              (fun acc (i : Cfi.insn) ->
                acc
                +
                match Cfi.call_target cfg i.Cfi.i_op with
                | None -> 0
                | Some (Cfi.C_local n) -> fn_wcet stack n
                | Some (Cfi.C_helper n) ->
                  if I.has_symbol image n then
                    span_wcet ~what:n (I.symbol image n)
                  else raise (Unb ("missing helper " ^ n, []))
                | Some (Cfi.C_gate svc) -> gate_cost svc
                | Some Cfi.C_indirect -> (
                  match cfg.Cfi.cf_addr_taken with
                  | [] ->
                    raise
                      (Unb
                         ( "indirect call with no address-taken candidates",
                           [] ))
                  | cands ->
                    List.fold_left
                      (fun acc n -> max acc (fn_wcet stack n))
                      0 cands))
              0 b.Cfi.b_insns
          in
          ( b.Cfi.b_addr,
            b.Cfi.b_cycles + extra + stub_extra b,
            List.map fst b.Cfi.b_succs ))
        f.Cfi.f_blocks
    in
    solve ~bounds ~what:name ~entry:f.Cfi.f_entry nodes
  in
  let verdict_of name =
    match fn_wcet [] name with
    | c -> Bounded c
    | exception Unb (reason, chain) -> Unbounded { reason; chain }
  in
  let funcs =
    List.map
      (fun (f : Cfi.func) ->
        let nloops, nbounded =
          match Loopbound.analyze (Loopbound.of_func f) with
          | Loopbound.Reducible ls ->
            ( List.length ls,
              List.length
                (List.filter
                   (fun (l : Loopbound.loop) ->
                     Hashtbl.mem bounds l.Loopbound.l_header)
                   ls) )
          | Loopbound.Irreducible _ -> (0, 0)
        in
        {
          fb_name = f.Cfi.f_name;
          fb_verdict = verdict_of f.Cfi.f_name;
          fb_loops = nloops;
          fb_bounded_loops = nbounded;
        })
      (Cfi.functions cfg)
  in
  (* ---- handlers: trampoline + function + exit/__osreturn ---- *)
  let dispatch_overhead () =
    let tramp = "__tramp_" ^ prefix and exitl = "__exit_" ^ prefix in
    List.fold_left
      (fun acc lbl ->
        if I.has_symbol image lbl then
          acc + span_wcet ~what:lbl (I.symbol image lbl)
        else raise (Unb ("missing dispatch stub " ^ lbl, [])))
      0 [ tramp; exitl ]
  in
  let handler_prefix = prefix ^ "$handle_" in
  let hplen = String.length handler_prefix in
  let handlers =
    List.filter_map
      (fun fb ->
        if
          String.length fb.fb_name > hplen
          && String.sub fb.fb_name 0 hplen = handler_prefix
        then begin
          let short =
            String.sub fb.fb_name
              (String.length prefix + 1)
              (String.length fb.fb_name - String.length prefix - 1)
          in
          let dispatch =
            match dispatch_overhead () with
            | c -> Bounded c
            | exception Unb (reason, chain) -> Unbounded { reason; chain }
          in
          let total =
            match (fb.fb_verdict, dispatch) with
            | Bounded f, Bounded d -> Bounded (f + d)
            | (Unbounded _ as u), _ | _, (Unbounded _ as u) -> u
          in
          Some
            {
              hb_handler = short;
              hb_fn = fb.fb_verdict;
              hb_dispatch = dispatch;
              hb_total = total;
            }
        end
        else None)
      funcs
  in
  {
    w_prefix = prefix;
    w_mode = cfg.Cfi.cf_mode;
    w_funcs = funcs;
    w_handlers = handlers;
    w_loops = List.fold_left (fun a f -> a + f.fb_loops) 0 funcs;
    w_bounded_loops =
      List.fold_left (fun a f -> a + f.fb_bounded_loops) 0 funcs;
  }

let handler_bound t name =
  List.find_map
    (fun h -> if h.hb_handler = name then Some h.hb_total else None)
    t.w_handlers

let pp_verdict ppf = function
  | Bounded c -> Format.fprintf ppf "bounded: %d cycles" c
  | Unbounded { reason; chain } ->
    Format.fprintf ppf "unbounded: %s%s" reason
      (match chain with
      | [] -> ""
      | c -> " [" ^ String.concat " -> " c ^ "]")
