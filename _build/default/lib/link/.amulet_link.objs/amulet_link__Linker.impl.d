lib/link/linker.ml: Asm Assembler Bytes Format Hashtbl Image List
