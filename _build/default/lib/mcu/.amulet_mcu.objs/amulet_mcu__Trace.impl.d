lib/mcu/trace.ml: Array Format List Opcode Word
