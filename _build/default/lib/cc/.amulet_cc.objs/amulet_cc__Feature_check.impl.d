lib/cc/feature_check.ml: Ast Ctype Hashtbl Isolation List Option Printf Srcloc String
