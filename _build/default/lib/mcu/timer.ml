type t = {
  mutable ctl : int;
  mutable ex0 : int;
  mutable base : int; (* machine cycle count at last clear/start *)
}

let ctl_addr = 0x0340
let counter_addr = 0x0350
let ex0_addr = 0x0360

let create () = { ctl = 0; ex0 = 0; base = 0 }
let handles addr = addr = ctl_addr || addr = counter_addr || addr = ex0_addr
let running t = (t.ctl lsr 4) land 0x3 <> 0
let divider t = (1 lsl ((t.ctl lsr 6) land 0x3)) * ((t.ex0 land 0x7) + 1)

let mmio_write t ~now addr v =
  if addr = ctl_addr then begin
    let clear = v land 0x4 <> 0 in
    t.ctl <- v land lnot 0x4;
    if clear then t.base <- now
  end
  else if addr = ex0_addr then t.ex0 <- v land 0x7

let mmio_read t ~now addr =
  if addr = counter_addr then
    if running t then ((now - t.base) / divider t) land 0xFFFF else 0
  else if addr = ctl_addr then t.ctl
  else if addr = ex0_addr then t.ex0
  else 0
