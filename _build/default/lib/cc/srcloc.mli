(** Source locations and compiler diagnostics for WearC. *)

type t = { line : int; col : int }

val dummy : t
val pp : Format.formatter -> t -> unit

exception Error of t * string
(** All compiler phases report user-facing errors through this. *)

val errf : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [errf loc fmt ...] raises {!Error}. *)
