(* Differential testing: random WearC programs are evaluated by an
   OCaml reference interpreter and executed by the compiled code on
   the simulated MCU, under every isolation mode.  Any divergence is a
   compiler, ISA or simulator bug.

   The generated programs are pointer-free straight-line code over int
   globals (so all four modes accept them and short-circuit evaluation
   has no observable side effects), but they exercise the whole
   arithmetic surface: wrapping add/sub/mul, signed division and
   modulo, shifts by constant and by variable, bitwise operators,
   comparisons, ternaries and logical connectives. *)

module H = Test_support.Harness
module Iso = Amulet_cc.Isolation
module M = Amulet_mcu.Machine
module An = Amulet_analysis

(* ------------------------------------------------------------------ *)
(* Expression language shared by generator, printer and evaluator *)

type expr =
  | Const of int
  | Global of int  (* g0..g3 *)
  | Bin of string * expr * expr
  | Un of string * expr
  | Ternary of expr * expr * expr

(* 16-bit reference semantics *)
let wrap v = v land 0xFFFF
let signed v = if v land 0x8000 <> 0 then v - 0x10000 else v
let bool01 b = if b then 1 else 0

let rec eval env = function
  | Const n -> wrap n
  | Global i -> wrap env.(i)
  | Un ("-", a) -> wrap (-eval env a)
  | Un ("~", a) -> wrap (lnot (eval env a))
  | Un ("!", a) -> bool01 (eval env a = 0)
  | Un (op, _) -> failwith ("bad unop " ^ op)
  | Ternary (c, a, b) -> if eval env c <> 0 then eval env a else eval env b
  | Bin (op, a, b) -> (
    let va = eval env a and vb = eval env b in
    let sa = signed va and sb = signed vb in
    match op with
    | "+" -> wrap (va + vb)
    | "-" -> wrap (va - vb)
    | "*" -> wrap (va * vb)
    | "/" -> if sb = 0 then 0 (* avoided by construction *) else wrap (sa / sb)
    | "%" -> if sb = 0 then 0 else wrap (sa mod sb)
    | "&" -> va land vb
    | "|" -> va lor vb
    | "^" -> va lxor vb
    | "<<" -> wrap (va lsl (vb land 15))
    | ">>" -> wrap (sa asr (vb land 15))
    | "<" -> bool01 (sa < sb)
    | ">" -> bool01 (sa > sb)
    | "<=" -> bool01 (sa <= sb)
    | ">=" -> bool01 (sa >= sb)
    | "==" -> bool01 (va = vb)
    | "!=" -> bool01 (va <> vb)
    | "&&" -> bool01 (va <> 0 && vb <> 0)
    | "||" -> bool01 (va <> 0 || vb <> 0)
    | _ -> failwith ("bad binop " ^ op))

let rec print = function
  | Const n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
  | Global i -> Printf.sprintf "g%d" i
  | Un (op, a) -> Printf.sprintf "(%s%s)" op (print a)
  | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (print a) op (print b)
  | Ternary (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (print c) (print a) (print b)

(* ------------------------------------------------------------------ *)
(* Generator *)

let gen_expr : expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  (* cap the size: subtree fan-out of 3 per level is exponential, and
     the firmware must fit in 64 KiB under the check-heaviest mode *)
  sized @@ fun n ->
  (fix (fun self n ->
      let leaf =
        oneof
          [
            map (fun v -> Const v) (int_range 0 0xFFFF);
            map (fun v -> Const v) (int_range (-200) 200);
            map (fun i -> Global i) (int_range 0 3);
          ]
      in
      if n <= 0 then leaf
      else
        let sub = self (n / 2) in
        (* division/modulo get a non-zero constant divisor so the
           reference never sees a trap the hardware helper turns into
           garbage *)
        let divisor =
          oneof [ int_range 1 400; int_range (-400) (-1) ]
          |> map (fun v -> Const v)
        in
        oneof
          [
            leaf;
            map2 (fun a b -> Bin ("+", a, b)) sub sub;
            map2 (fun a b -> Bin ("-", a, b)) sub sub;
            map2 (fun a b -> Bin ("*", a, b)) sub sub;
            map2 (fun a d -> Bin ("/", a, d)) sub divisor;
            map2 (fun a d -> Bin ("%", a, d)) sub divisor;
            map2 (fun a b -> Bin ("&", a, b)) sub sub;
            map2 (fun a b -> Bin ("|", a, b)) sub sub;
            map2 (fun a b -> Bin ("^", a, b)) sub sub;
            map2 (fun a k -> Bin ("<<", a, Const k)) sub (int_range 0 15);
            map2 (fun a k -> Bin (">>", a, Const k)) sub (int_range 0 15);
            map2 (fun a b -> Bin ("<<", a, Bin ("&", b, Const 7))) sub sub;
            (let cmp = oneofl [ "<"; ">"; "<="; ">="; "=="; "!=" ] in
             map3 (fun op a b -> Bin (op, a, b)) cmp sub sub);
            (let con = oneofl [ "&&"; "||" ] in
             map3 (fun op a b -> Bin (op, a, b)) con sub sub);
            map (fun a -> Un ("-", a)) sub;
            map (fun a -> Un ("~", a)) sub;
            map (fun a -> Un ("!", a)) sub;
            map3 (fun c a b -> Ternary (c, a, b)) sub sub sub;
          ]))
    (min n 20)

type program = { inits : int array; stmts : (int * expr) list; result : expr }

let gen_program : program QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* inits = array_size (return 4) (int_range 0 0xFFFF) in
  let* stmts =
    list_size (int_range 0 5)
      (pair (int_range 0 3) (gen_expr |> map (fun e -> e)))
  in
  let* result = gen_expr in
  return { inits; stmts; result }

let to_source p =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i v -> Buffer.add_string buf (Printf.sprintf "int g%d = %d;\n" i v))
    p.inits;
  Buffer.add_string buf "int main() {\n";
  List.iter
    (fun (i, e) -> Buffer.add_string buf (Printf.sprintf "  g%d = %s;\n" i (print e)))
    p.stmts;
  Buffer.add_string buf (Printf.sprintf "  return %s;\n}\n" (print p.result));
  Buffer.contents buf

let reference_result p =
  let env = Array.map wrap p.inits in
  List.iter (fun (i, e) -> env.(i) <- eval env e) p.stmts;
  eval env p.result

(* ------------------------------------------------------------------ *)
(* Properties *)

(* Every property draws from a per-test RNG seeded from [master_seed],
   so a failure reproduces exactly by re-running with the printed
   [QCHECK_SEED] — independent of how many cases other tests drew. *)
let master_seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> (
    try int_of_string s
    with _ -> failwith ("QCHECK_SEED is not an integer: " ^ s))
  | None -> 0x5EED

let fresh_rand () = Random.State.make [| master_seed |]

(* Wrap a property so a failing case prints the reproducing seed and
   the generated source to stderr — alcotest swallows qcheck's own
   counterexample output unless run verbose. *)
let reporting name prop p =
  let dump ~reason =
    Printf.eprintf
      "\n\
       [test_diff] %s: %s\n\
       [test_diff] reproduce with: QCHECK_SEED=%d dune exec \
       test/test_diff.exe\n\
       [test_diff] generated program:\n\
       %s%!"
      name reason master_seed (to_source p)
  in
  match prop p with
  | true -> true
  | false ->
    dump ~reason:"property is false";
    false
  | exception e ->
    dump ~reason:("raised " ^ Printexc.to_string e);
    raise e

let run_mode mode src =
  let r = H.run ~mode src in
  match r.H.stop with
  | M.Halted -> H.return_value r
  | other ->
    failwith (Format.asprintf "did not halt: %a" M.pp_stop_reason other)

let diff_property mode =
  QCheck2.Test.make ~count:120
    ~name:("compiled = reference (" ^ Iso.name mode ^ ")")
    ~print:(fun p ->
      Printf.sprintf "%s\n(* reference: %d *)" (to_source p)
        (reference_result p))
    gen_program
    (reporting
       ("compiled = reference (" ^ Iso.name mode ^ ")")
       (fun p ->
         let src = to_source p in
         let got = run_mode mode src and want = reference_result p in
         if got <> want then
           Printf.eprintf "[test_diff] compiled %d, reference %d\n%!" got want;
         got = want))

(* Every random program's binary must also pass both independent
   static checkers — the SFI verifier and the CFI reconstruction.  The
   emitter, the verifier and the CFI pass share no code, so a program
   the simulator runs correctly but a checker rejects means one of the
   three disagrees about the policy. *)
let static_certification mode =
  QCheck2.Test.make ~count:60
    ~name:("SFI and CFI accept (" ^ Iso.name mode ^ ")")
    ~print:to_source gen_program
    (reporting
       ("SFI and CFI accept (" ^ Iso.name mode ^ ")")
       (fun p ->
         let _cu, image = H.build ~mode (to_source p) in
         let sfi_ok =
           match An.Verifier.verify_app ~image ~mode ~prefix:"prog" with
           | Ok _ -> true
           | Error _ -> false
         in
         let cfi_ok =
           match An.Cfi.reconstruct ~image ~mode ~prefix:"prog" with
           | Ok _ -> true
           | Error _ -> false
         in
         sfi_ok && cfi_ok))

(* All modes agree with each other on the same program (a weaker but
   broader check run on fewer cases). *)
let mode_agreement =
  QCheck2.Test.make ~count:40 ~name:"all isolation modes agree"
    ~print:to_source gen_program
    (reporting "all isolation modes agree" (fun p ->
         let src = to_source p in
         let reference = run_mode Iso.No_isolation src in
         List.for_all (fun mode -> run_mode mode src = reference) Iso.all))

(* ------------------------------------------------------------------ *)
(* Differential lockstep: the predecoded block engine against the
   retained reference per-instruction stepper.

   The same linked image is loaded into two machines.  The second
   carries a no-op event watcher, which forces [Machine.run] onto the
   reference slow path; the first stays hooks-off and dispatches from
   the predecoded block cache.  Driving both with [run ~fuel:1] pins
   the comparison to every instruction boundary: stop reason,
   register file, cycle counter, retired-instruction count, access
   statistics, console and all 64 KiB of memory must be identical
   throughout. *)

module Mem = Amulet_mcu.Memory
module Regs = Amulet_mcu.Registers
module Cpu = Amulet_mcu.Cpu
module Trace = Amulet_mcu.Trace

let lockstep_pair image =
  let mk () =
    let m = M.create () in
    Amulet_link.Image.load image m;
    M.reset m;
    m
  in
  let fast = mk () in
  let slow = mk () in
  M.add_watch slow (fun _ -> ());
  (fast, slow)

let show_stop r = Format.asprintf "%a" M.pp_stop_reason r

let compare_machines ~insn fast slow =
  let fail fmt = Printf.ksprintf failwith fmt in
  for i = 0 to 15 do
    let a = Regs.get (M.regs fast) i and b = Regs.get (M.regs slow) i in
    if a <> b then fail "insn %d: r%d fast=%#06x slow=%#06x" insn i a b
  done;
  if M.cycles fast <> M.cycles slow then
    fail "insn %d: cycles fast=%d slow=%d" insn (M.cycles fast)
      (M.cycles slow);
  if fast.M.cpu.Cpu.insns <> slow.M.cpu.Cpu.insns then
    fail "insn %d: retired fast=%d slow=%d" insn fast.M.cpu.Cpu.insns
      slow.M.cpu.Cpu.insns;
  let sa = fast.M.stats and sb = slow.M.stats in
  if sa.Trace.fetch_words <> sb.Trace.fetch_words then
    fail "insn %d: fetch_words fast=%d slow=%d" insn sa.Trace.fetch_words
      sb.Trace.fetch_words;
  if sa.Trace.data_reads <> sb.Trace.data_reads then
    fail "insn %d: data_reads fast=%d slow=%d" insn sa.Trace.data_reads
      sb.Trace.data_reads;
  if sa.Trace.data_writes <> sb.Trace.data_writes then
    fail "insn %d: data_writes fast=%d slow=%d" insn sa.Trace.data_writes
      sb.Trace.data_writes;
  if M.console_contents fast <> M.console_contents slow then
    fail "insn %d: console diverged" insn;
  if not (Mem.equal fast.M.mem slow.M.mem) then
    fail "insn %d: memory diverged" insn

let lockstep_run ?(max_insns = 200_000) image =
  let fast, slow = lockstep_pair image in
  compare_machines ~insn:(-1) fast slow;
  let rec go insn =
    let ra = M.run ~fuel:1 fast in
    let rb = M.run ~fuel:1 slow in
    if ra <> rb then
      Printf.ksprintf failwith "insn %d: stop fast=%s slow=%s" insn
        (show_stop ra) (show_stop rb);
    compare_machines ~insn fast slow;
    match ra with
    | M.Out_of_fuel ->
      if insn >= max_insns then
        failwith "lockstep: program did not terminate"
      else go (insn + 1)
    | M.Halted | M.Faulted _ | M.Sw_fault _ -> ra
  in
  go 0

let lockstep_property mode =
  QCheck2.Test.make ~count:40
    ~name:("predecode lockstep (" ^ Iso.name mode ^ ")")
    ~print:to_source gen_program
    (reporting
       ("predecode lockstep (" ^ Iso.name mode ^ ")")
       (fun p ->
         let _cu, image = H.build ~mode (to_source p) in
         match lockstep_run image with
         | M.Halted -> true
         | r -> failwith ("lockstep stopped with " ^ show_stop r)))

(* Attack-corpus lockstep: every corpus attack that builds, under
   every isolation mode, dispatched on two kernels over the same
   firmware — one hooks-off (predecoded engine), one with a no-op
   watcher armed (reference stepper).  Virtual time, every dispatch
   record (cycles, access counts, outcome — fault identity included),
   console, register file and full memory must match after the run;
   per-instruction equality inside each dispatch is what the QCheck
   lockstep above establishes. *)

module Attacks = Amulet_sec.Attacks
module Kernel = Amulet_os.Kernel

let corpus_lockstep_mode mode () =
  List.iter
    (fun attack ->
      match Attacks.build_cell ~attack ~mode with
      | Attacks.Rejected _ -> ()
      | Attacks.Built { fw; _ } ->
        let name = attack.Attacks.atk_name in
        let fast = Kernel.create ~policy:Kernel.Disable fw in
        let slow = Kernel.create ~policy:Kernel.Disable fw in
        M.add_watch slow.Kernel.machine (fun _ -> ());
        let ra = Kernel.run_for_ms fast 60 in
        let rb = Kernel.run_for_ms slow 60 in
        Alcotest.(check int)
          (name ^ ": dispatch count")
          (List.length rb) (List.length ra);
        List.iter2
          (fun (a : Kernel.dispatch_record) (b : Kernel.dispatch_record) ->
            if a <> b then
              Alcotest.failf "%s: dispatch record diverged (%d vs %d cycles)"
                name a.Kernel.dr_cycles b.Kernel.dr_cycles)
          ra rb;
        Alcotest.(check int)
          (name ^ ": cycles")
          (M.cycles slow.Kernel.machine)
          (M.cycles fast.Kernel.machine);
        for i = 0 to 15 do
          Alcotest.(check int)
            (Printf.sprintf "%s: r%d" name i)
            (Regs.get (M.regs slow.Kernel.machine) i)
            (Regs.get (M.regs fast.Kernel.machine) i)
        done;
        Alcotest.(check string)
          (name ^ ": console")
          (M.console_contents slow.Kernel.machine)
          (M.console_contents fast.Kernel.machine);
        Alcotest.(check bool)
          (name ^ ": memory")
          true
          (Mem.equal fast.Kernel.machine.M.mem slow.Kernel.machine.M.mem))
    Attacks.corpus

let () =
  let to_alcotest t = QCheck_alcotest.to_alcotest ~rand:(fresh_rand ()) t in
  Alcotest.run "diff"
    [
      ( "reference-vs-simulator",
        List.map to_alcotest
          [
            diff_property Iso.No_isolation;
            diff_property Iso.Mpu_assisted;
            diff_property Iso.Software_only;
            diff_property Iso.Feature_limited;
            mode_agreement;
          ] );
      ( "static-certification",
        List.map to_alcotest
          [
            static_certification Iso.Mpu_assisted;
            static_certification Iso.Software_only;
          ] );
      ( "lockstep",
        List.map to_alcotest
          [
            lockstep_property Iso.No_isolation;
            lockstep_property Iso.Mpu_assisted;
            lockstep_property Iso.Software_only;
            lockstep_property Iso.Feature_limited;
          ]
        @ List.map
            (fun mode ->
              Alcotest.test_case
                ("attack corpus (" ^ Iso.name mode ^ ")")
                `Quick (corpus_lockstep_mode mode))
            Iso.all );
    ]
