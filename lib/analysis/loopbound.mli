(** Natural-loop detection on integer-labelled control-flow graphs.

    The WCET pass ({!Wcet}) and [amulet_objdump --cfg] both need the
    same structural facts about a reconstructed CFG: which edges are
    back edges, which blocks are loop headers, what each loop's body
    is, and whether the graph is reducible at all.  This module
    computes them with the textbook construction — iterative dominator
    sets, back edges as the edges whose target dominates their source,
    and natural-loop bodies by backwards reachability from the back
    edge's source — kept deliberately graph-generic so the same code
    serves block-level app CFGs ({!Cfi.func}) and the instruction-level
    graphs the WCET pass builds for OS stubs and runtime helpers. *)

type node = { n_id : int; n_succs : int list }
(** Node ids are addresses in practice but carry no meaning here.
    Successors pointing at ids absent from the graph are ignored
    (e.g. edges that leave the analysed span). *)

type graph = { g_entry : int; g_nodes : node list }

type loop = {
  l_header : int;  (** back-edge target; dominates every body node *)
  l_back_edges : (int * int) list;  (** [(src, header)], all into [l_header] *)
  l_body : int list;
      (** every node of the natural loop, header included, sorted;
          loops sharing a header are merged *)
}

type verdict =
  | Reducible of loop list
      (** loops sorted innermost-first (by body size), so a WCET pass
          can collapse them in order: a nested loop's body is a strict
          subset of its outer loop's body *)
  | Irreducible of { edge_src : int; edge_dst : int }
      (** a retreating edge whose target does not dominate its source:
          a loop with multiple entries, which no iteration bound
          expressed per-header can soundly summarise *)

val analyze : graph -> verdict
(** Only the part of the graph reachable from [g_entry] is considered. *)

val of_func : Cfi.func -> graph
(** Block-level graph of a reconstructed function: node ids are block
    addresses, edges are [b_succs] (edge kinds dropped). *)
