lib/cc/srcloc.ml: Format
