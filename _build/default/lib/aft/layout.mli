(** AFT phase 4: firmware memory layout (paper Fig. 1).

    {v
      SRAM                      OS stack (shared stack in the
                                no-isolation / feature-limited modes)
      0x4400  os_code           runtime helpers, gates, trampolines
              os_data           OS globals (1 KiB aligned: OS-mode MPU
                                boundary B1)
              app0_code         first app's code + exit stub
              app0_data         stack (grows down) below globals
                                [1 KiB aligned start and end: the
                                app-mode MPU boundaries B1/B2]
      ...     app<i>_code/data
    v}

    Each app's data segment starts and ends on a 1 KiB granule so the
    MPU boundary registers can describe it exactly; its code sits
    directly below its data, so segment 1 (execute-only) covers the
    OS, all lower apps and the running app's code, exactly as in the
    paper. *)

type app_layout = {
  index : int;
  name : string;
  code_base : int;
  code_size : int;  (** includes the injected exit stub *)
  data_base : int;  (** = MPU boundary B1 while this app runs *)
  data_limit : int;  (** = MPU boundary B2 while this app runs *)
  stack_top : int;  (** initial SP: globals sit above this address *)
  globals_size : int;
  stack_bytes : int;
}

type t = {
  os_code_base : int;
  os_code_size : int;
  os_data_base : int;  (** 1 KiB aligned: OS-mode B1 *)
  os_data_size : int;
  apps_base : int;  (** 1 KiB aligned: OS-mode B2 *)
  apps : app_layout list;
}

exception Does_not_fit of string

val granule : int

val compute :
  os_code_size:int ->
  os_data_size:int ->
  apps:(string * int * int * int) list ->
  t
(** [compute ~os_code_size ~os_data_size ~apps] with
    [apps = (name, code_size, globals_size, stack_bytes) list].
    @raise Does_not_fit when the firmware exceeds FRAM. *)

val pp : Format.formatter -> t -> unit
