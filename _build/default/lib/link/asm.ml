module O = Amulet_mcu.Opcode
module W = Amulet_mcu.Word

type expr = Num of int | Sym of string | Off of string * int

type src =
  | Sreg of int
  | Sidx of int * expr
  | Sabs of expr
  | Sind of int
  | Sinc of int
  | Simm of expr

type dst = Dreg of int | Didx of int * expr | Dabs of expr

type insn =
  | I1 of O.op2 * W.width * src * dst
  | I2 of O.op1 * W.width * src
  | Ijmp of O.cond * string
  | Ireti

type item =
  | Ins of insn
  | Label of string
  | Dword of expr
  | Dbytes of string
  | Space of int
  | Align2
  | Comment of string

let r_pc = 0
let r_sp = 1
let r_sr = 2
let r_ret = 12
let r_arg2 = 13
let r_arg3 = 14
let r_arg4 = 15
let r_fp = 4

let mov s d = Ins (I1 (O.MOV, W.W16, s, d))
let movb s d = Ins (I1 (O.MOV, W.W8, s, d))
let add s d = Ins (I1 (O.ADD, W.W16, s, d))
let sub s d = Ins (I1 (O.SUB, W.W16, s, d))
let cmp s d = Ins (I1 (O.CMP, W.W16, s, d))
let and_ s d = Ins (I1 (O.AND, W.W16, s, d))
let bis s d = Ins (I1 (O.BIS, W.W16, s, d))
let bic s d = Ins (I1 (O.BIC, W.W16, s, d))
let xor s d = Ins (I1 (O.XOR, W.W16, s, d))
let bit s d = Ins (I1 (O.BIT, W.W16, s, d))
let push s = Ins (I2 (O.PUSH, W.W16, s))
let call f = Ins (I2 (O.CALL, W.W16, Simm (Sym f)))
let call_reg r = Ins (I2 (O.CALL, W.W16, Sreg r))
let jmp l = Ins (Ijmp (O.JMP, l))
let jcc c l = Ins (Ijmp (c, l))
let ret = Ins (I1 (O.MOV, W.W16, Sinc r_sp, Dreg r_pc))
let pop r = Ins (I1 (O.MOV, W.W16, Sinc r_sp, Dreg r))
let br e = Ins (I1 (O.MOV, W.W16, Simm e, Dreg r_pc))
let clr d = Ins (I1 (O.MOV, W.W16, Simm (Num 0), d))
let inc d = Ins (I1 (O.ADD, W.W16, Simm (Num 1), d))
let dec d = Ins (I1 (O.SUB, W.W16, Simm (Num 1), d))
let tst d = Ins (I1 (O.CMP, W.W16, Simm (Num 0), d))
let nop = Ins (I1 (O.MOV, W.W16, Simm (Num 0), Dreg 3)) (* 0x4303 *)
let imm n = Simm (Num n)
let sym s = Simm (Sym s)
let label l = Label l

let pp_expr ppf = function
  | Num n -> Format.fprintf ppf "%d" n
  | Sym s -> Format.fprintf ppf "%s" s
  | Off (s, n) -> Format.fprintf ppf "%s%+d" s n

let pp_src ppf = function
  | Sreg r -> Format.fprintf ppf "R%d" r
  | Sidx (r, e) -> Format.fprintf ppf "%a(R%d)" pp_expr e r
  | Sabs e -> Format.fprintf ppf "&%a" pp_expr e
  | Sind r -> Format.fprintf ppf "@R%d" r
  | Sinc r -> Format.fprintf ppf "@R%d+" r
  | Simm e -> Format.fprintf ppf "#%a" pp_expr e

let pp_dst ppf = function
  | Dreg r -> Format.fprintf ppf "R%d" r
  | Didx (r, e) -> Format.fprintf ppf "%a(R%d)" pp_expr e r
  | Dabs e -> Format.fprintf ppf "&%a" pp_expr e

let suffix = function W.W8 -> ".B" | W.W16 -> ""

let pp_insn ppf = function
  | I1 (op, w, s, d) ->
    Format.fprintf ppf "%s%s %a, %a" (O.op2_name op) (suffix w) pp_src s
      pp_dst d
  | I2 (op, w, s) ->
    Format.fprintf ppf "%s%s %a" (O.op1_name op) (suffix w) pp_src s
  | Ijmp (c, l) -> Format.fprintf ppf "%s %s" (O.cond_name c) l
  | Ireti -> Format.fprintf ppf "RETI"

let pp_item ppf = function
  | Ins i -> Format.fprintf ppf "        %a" pp_insn i
  | Label l -> Format.fprintf ppf "%s:" l
  | Dword e -> Format.fprintf ppf "        .word %a" pp_expr e
  | Dbytes s -> Format.fprintf ppf "        .bytes (%d)" (String.length s)
  | Space n -> Format.fprintf ppf "        .space %d" n
  | Align2 -> Format.fprintf ppf "        .align 2"
  | Comment c -> Format.fprintf ppf "; %s" c
