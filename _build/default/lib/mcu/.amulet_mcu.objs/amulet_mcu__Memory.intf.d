lib/mcu/memory.mli: Word
