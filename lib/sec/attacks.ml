module Iso = Amulet_cc.Isolation
module Aft = Amulet_aft.Aft
module Layout = Amulet_aft.Layout
module Image = Amulet_link.Image
module Mpu = Amulet_mcu.Mpu
module Map = Amulet_mcu.Memory_map
module O = Amulet_mcu.Opcode
module Suite = Amulet_apps.Suite

type level = Source | Binary
type position = First | Last

type layer =
  | L_build
  | L_guard
  | L_mpu
  | L_gate
  | L_kernel
  | L_none
  | L_harmless

let layer_name = function
  | L_build -> "build"
  | L_guard -> "guard"
  | L_mpu -> "mpu"
  | L_gate -> "gate"
  | L_kernel -> "kernel"
  | L_none -> "none"
  | L_harmless -> "harmless"

type lint_expect = Must_reject | Must_accept | Either

type targets = {
  t_os_slot : int;
  t_os_entry : int;
  t_victim_canary : int;
  t_victim_entry : int;
  t_victim_limit : int;
  t_sram : int;
  t_self_below : int;
  t_self_slack : int;
}

(* 0xABCD never hits a constant generator, so phase-A instruction
   sizes match the phase-B rebuild with real addresses. *)
let placeholder_targets =
  {
    t_os_slot = 0xABCD;
    t_os_entry = 0xABCD;
    t_victim_canary = 0xABCD;
    t_victim_entry = 0xABCD;
    t_victim_limit = 0xAC00;
    t_sram = 0xABCD;
    t_self_below = 0xABCD;
    t_self_slack = 0xABCD;
  }

let attack_value = 12345

(* An unused interrupt-vector slot: inside [0xFF80, 0x10000), which the
   MPU never covers and the Mpu_assisted lower-bound-only guard never
   checks — the vector-page hole the proof layer states as the
   [mpu-compiled-vectors] refutable obligation.  Kept away from the
   reset and MPU-fault vectors so the running cell is not disturbed. *)
let vector_slot = Map.vectors_start + 0x40

type t = {
  atk_name : string;
  atk_level : level;
  atk_descr : string;
  atk_position : position;
  atk_source : (targets -> string) option;
  atk_payload : (targets -> O.t list) option;
  atk_target : targets -> int option;
  atk_expect : Iso.mode -> layer;
  atk_lint : Iso.mode -> lint_expect;
}

(* ------------------------------------------------------------------ *)
(* Source-level attack templates                                       *)

(* Every source attacker arms a 50 ms one-shot timer in init and
   strikes in [handle_timer], so the victim's init (which seeds its
   canary) has already run whatever the link order. *)

let src_wild_write addr =
  Printf.sprintf
    {|
void handle_init(int arg) { api_set_timer(50); }
void handle_timer(int arg) {
  int *p = (int*)0x%04X;
  *p = %d;
}
|}
    addr attack_value

let src_wild_read addr =
  Printf.sprintf
    {|
int leak = 0;
void handle_init(int arg) { api_set_timer(50); }
void handle_timer(int arg) {
  int *p = (int*)0x%04X;
  leak = *p;
}
|}
    addr

(* Like [src_wild_write], but with a declared global so the attacker's
   data segment is non-empty even in the shared-stack modes (where the
   segment holds globals only and would otherwise collapse to zero
   bytes, putting [data_limit - 2] in inter-app padding). *)
let src_probe_slack_src addr =
  Printf.sprintf
    {|
int owned[4];
void handle_init(int arg) { api_set_timer(50); owned[0] = 1; }
void handle_timer(int arg) {
  int *p = (int*)0x%04X;
  *p = %d;
}
|}
    addr attack_value

let src_stack_smash _ =
  {|
int depth = 0;
int grow(int n) {
  int pad[8];
  pad[0] = n + depth;
  depth += 1;
  return grow(n + 1) + pad[0];
}
void handle_init(int arg) { api_set_timer(50); }
void handle_timer(int arg) { depth = grow(arg); }
|}

let src_gate_deputy_write t =
  Printf.sprintf
    {|
void handle_init(int arg) { api_set_timer(50); }
void handle_timer(int arg) {
  int *p = (int*)0x%04X;
  api_read_accel(p, 1);
}
|}
    t.t_os_slot

let src_gate_deputy_read t =
  Printf.sprintf
    {|
void handle_init(int arg) { api_set_timer(50); }
void handle_timer(int arg) {
  char *p = (char*)0x%04X;
  api_log_append(p, 8);
}
|}
    t.t_victim_canary

let src_jump_os t =
  Printf.sprintf
    {|
void handle_init(int arg) { api_set_timer(50); }
void handle_timer(int arg) {
  int (*f)(int) = (int (*)(int))0x%04X;
  f(arg);
}
|}
    t.t_os_entry

let src_mpu_tamper _ =
  Printf.sprintf
    {|
void handle_init(int arg) { api_set_timer(50); }
void handle_timer(int arg) {
  int *p = (int*)0x%04X;
  *p = 0xA500;
}
|}
    Mpu.ctl0_addr

(* ------------------------------------------------------------------ *)
(* Binary payload building blocks                                      *)

let mov_imm_abs v a = O.Fmt1 (O.MOV, Amulet_mcu.Word.W16, O.S_immediate v, O.D_absolute a)
let mov_abs_reg a r = O.Fmt1 (O.MOV, Amulet_mcu.Word.W16, O.S_absolute a, O.D_reg r)
let br_imm a = O.Fmt1 (O.MOV, Amulet_mcu.Word.W16, O.S_immediate a, O.D_reg 0)
let ret = O.Fmt1 (O.MOV, Amulet_mcu.Word.W16, O.S_indirect_inc 1, O.D_reg 0)

(* ------------------------------------------------------------------ *)
(* Expectation helpers                                                 *)

(* Pointer attacks written in WearC: Feature-Limited refuses the
   source; the checked modes differ in which layer fires. *)
let src_expect ~none ~sw ~mpu = function
  | Iso.No_isolation -> none
  | Iso.Feature_limited -> L_build
  | Iso.Software_only -> sw
  | Iso.Mpu_assisted -> mpu

(* Binary attacks bypass the compiler entirely: only the MPU (at run
   time) or the SFI verifier (statically) can stop them. *)
let bin_expect ~none ~fl ~sw ~mpu = function
  | Iso.No_isolation -> none
  | Iso.Feature_limited -> fl
  | Iso.Software_only -> sw
  | Iso.Mpu_assisted -> mpu

let lint_any _ = Either

(* Unguarded accesses outside the app's own sections must fail the
   binary verifier in every mode that promises isolation. *)
let lint_bin_reject = function
  | Iso.No_isolation -> Either
  | Iso.Feature_limited | Iso.Software_only | Iso.Mpu_assisted -> Must_reject

let source ~name ~descr ?(position = First) ~source ~target ~expect
    ?(lint = lint_any) () =
  {
    atk_name = name;
    atk_level = Source;
    atk_descr = descr;
    atk_position = position;
    atk_source = Some source;
    atk_payload = None;
    atk_target = target;
    atk_expect = expect;
    atk_lint = lint;
  }

let binary ~name ~descr ~payload ~target ~expect ?(lint = lint_bin_reject) ()
    =
  {
    atk_name = name;
    atk_level = Binary;
    atk_descr = descr;
    atk_position = First;
    atk_source = None;
    atk_payload = Some payload;
    atk_target = target;
    atk_expect = expect;
    atk_lint = lint;
  }

let no_target _ = None

(* ------------------------------------------------------------------ *)
(* The corpus                                                          *)

let corpus =
  [
    (* --- source-level data-pointer attacks ------------------------- *)
    source ~name:"src_wild_write_os"
      ~descr:"wild data pointer write into an OS kernel slot"
      ~source:(fun t -> src_wild_write t.t_os_slot)
      ~target:(fun t -> Some t.t_os_slot)
      ~expect:(src_expect ~none:L_none ~sw:L_guard ~mpu:L_guard)
      ();
    source ~name:"src_wild_read_os"
      ~descr:"wild data pointer read of an OS kernel slot"
      ~source:(fun t -> src_wild_read t.t_os_slot)
      ~target:no_target
      ~expect:(src_expect ~none:L_none ~sw:L_guard ~mpu:L_guard)
      ();
    source ~name:"src_wild_write_victim"
      ~descr:"wild write into the next app's data (above the attacker)"
      ~position:First
      ~source:(fun t -> src_wild_write t.t_victim_canary)
      ~target:(fun t -> Some t.t_victim_canary)
      ~expect:(src_expect ~none:L_none ~sw:L_guard ~mpu:L_mpu)
      ();
    source ~name:"src_wild_read_victim"
      ~descr:"wild read of the next app's data (above the attacker)"
      ~position:First
      ~source:(fun t -> src_wild_read t.t_victim_canary)
      ~target:no_target
      ~expect:(src_expect ~none:L_none ~sw:L_guard ~mpu:L_mpu)
      ();
    source ~name:"src_wild_write_lower"
      ~descr:"wild write into a lower app's data (below the attacker)"
      ~position:Last
      ~source:(fun t -> src_wild_write t.t_victim_canary)
      ~target:(fun t -> Some t.t_victim_canary)
      ~expect:(src_expect ~none:L_none ~sw:L_guard ~mpu:L_guard)
      ();
    source ~name:"src_stack_smash"
      ~descr:"unbounded recursion overflowing into the neighbour below"
      ~position:Last ~source:src_stack_smash ~target:no_target
      ~expect:(src_expect ~none:L_kernel ~sw:L_none ~mpu:L_mpu)
      ();
    (* --- confused-deputy gate attacks ------------------------------ *)
    source ~name:"src_gate_deputy_write"
      ~descr:"OS address passed as a gate out-pointer (api_read_accel)"
      ~source:src_gate_deputy_write ~target:no_target
      ~expect:(src_expect ~none:L_gate ~sw:L_gate ~mpu:L_gate)
      ();
    source ~name:"src_gate_deputy_read"
      ~descr:"victim address passed as a gate in-pointer (api_log_append)"
      ~source:src_gate_deputy_read ~target:no_target
      ~expect:(src_expect ~none:L_gate ~sw:L_gate ~mpu:L_gate)
      ();
    (* --- control-flow attacks -------------------------------------- *)
    source ~name:"src_jump_os"
      ~descr:"function-pointer call into OS code"
      ~source:src_jump_os ~target:no_target
      ~expect:(src_expect ~none:L_none ~sw:L_guard ~mpu:L_guard)
      ();
    (* --- MPU tampering and boundary probing ------------------------ *)
    source ~name:"src_mpu_tamper"
      ~descr:"data pointer write to MPUCTL0 (disable with password)"
      ~source:src_mpu_tamper ~target:no_target
      ~expect:(src_expect ~none:L_none ~sw:L_guard ~mpu:L_guard)
      ();
    source ~name:"src_wild_write_vectors"
      ~descr:"wild write into the interrupt-vector page (above MPU coverage)"
      ~source:(fun _ -> src_wild_write vector_slot)
      ~target:(fun _ -> Some vector_slot)
      ~expect:(src_expect ~none:L_none ~sw:L_guard ~mpu:L_none)
      ();
    source ~name:"src_probe_slack"
      ~descr:"write to the last word below the app's own data_limit"
      ~source:(fun t -> src_probe_slack_src t.t_self_slack)
      ~target:(fun t -> Some t.t_self_slack)
      ~expect:(src_expect ~none:L_harmless ~sw:L_harmless ~mpu:L_harmless)
      ();
    (* --- binary-level attacks (post-AFT patched payloads) ---------- *)
    binary ~name:"bin_wild_write_os"
      ~descr:"unguarded store into an OS kernel slot"
      ~payload:(fun t -> [ mov_imm_abs attack_value t.t_os_slot; ret ])
      ~target:(fun t -> Some t.t_os_slot)
      ~expect:(bin_expect ~none:L_none ~fl:L_none ~sw:L_none ~mpu:L_mpu)
      ();
    binary ~name:"bin_wild_read_os"
      ~descr:"unguarded load of an OS kernel slot"
      ~payload:(fun t -> [ mov_abs_reg t.t_os_slot 12; ret ])
      ~target:no_target
      ~expect:(bin_expect ~none:L_none ~fl:L_none ~sw:L_none ~mpu:L_mpu)
      ();
    binary ~name:"bin_wild_write_victim"
      ~descr:"unguarded store into the next app's canary"
      ~payload:(fun t -> [ mov_imm_abs attack_value t.t_victim_canary; ret ])
      ~target:(fun t -> Some t.t_victim_canary)
      ~expect:(bin_expect ~none:L_none ~fl:L_none ~sw:L_none ~mpu:L_mpu)
      ();
    binary ~name:"bin_wild_write_sram"
      ~descr:"store into the SRAM OS stack (never MPU-protected)"
      ~payload:(fun t -> [ mov_imm_abs attack_value t.t_sram; ret ])
      ~target:(fun t -> Some t.t_sram)
      ~expect:
        (bin_expect ~none:L_harmless ~fl:L_harmless ~sw:L_none ~mpu:L_none)
      ();
    binary ~name:"bin_mpu_disable"
      ~descr:"disable the MPU with the known password, then hit the OS"
      ~payload:(fun t ->
        [
          mov_imm_abs 0xA500 Mpu.ctl0_addr;
          mov_imm_abs attack_value t.t_os_slot;
          ret;
        ])
      ~target:(fun t -> Some t.t_os_slot)
      ~expect:(bin_expect ~none:L_none ~fl:L_none ~sw:L_none ~mpu:L_none)
      ();
    binary ~name:"bin_mpu_rebound"
      ~descr:"widen MPUSEGB2 over the victim, then write its canary"
      ~payload:(fun t ->
        [
          mov_imm_abs (t.t_victim_limit lsr 4) Mpu.segb2_addr;
          mov_imm_abs attack_value t.t_victim_canary;
          ret;
        ])
      ~target:(fun t -> Some t.t_victim_canary)
      ~expect:(bin_expect ~none:L_none ~fl:L_none ~sw:L_none ~mpu:L_none)
      ();
    binary ~name:"bin_jump_os_entry"
      ~descr:"branch straight into OS code (execute-only under the MPU)"
      ~payload:(fun t -> [ br_imm t.t_os_entry ])
      ~target:no_target
      ~expect:(bin_expect ~none:L_none ~fl:L_none ~sw:L_none ~mpu:L_none)
      ();
    binary ~name:"bin_jump_victim_code"
      ~descr:"branch into the victim's handler code"
      ~payload:(fun t -> [ br_imm t.t_victim_entry ])
      ~target:no_target
      ~expect:(bin_expect ~none:L_none ~fl:L_none ~sw:L_none ~mpu:L_mpu)
      ();
    binary ~name:"bin_probe_below"
      ~descr:"store 2 bytes below the data segment base (own code)"
      ~payload:(fun t -> [ mov_imm_abs attack_value t.t_self_below; ret ])
      ~target:(fun t -> Some t.t_self_below)
      ~expect:(bin_expect ~none:L_none ~fl:L_none ~sw:L_none ~mpu:L_mpu)
      ();
    binary ~name:"bin_probe_slack"
      ~descr:"store into the app's own slack bytes (inside B2)"
      ~payload:(fun t -> [ mov_imm_abs attack_value t.t_self_slack; ret ])
      ~target:(fun t -> Some t.t_self_slack)
      ~expect:
        (bin_expect ~none:L_harmless ~fl:L_harmless ~sw:L_harmless
           ~mpu:L_harmless)
      ~lint:lint_any ();
  ]

let find name = List.find (fun a -> a.atk_name = name) corpus

(* ------------------------------------------------------------------ *)
(* Target resolution                                                   *)

let app_layout fw name = (Aft.find_app fw name).Aft.ab_layout

let resolve_targets fw ~attacker =
  let image = fw.Aft.fw_image in
  let vic = app_layout fw "victim" in
  let atk = app_layout fw attacker in
  {
    t_os_slot = Image.symbol image "__os_sp_save";
    t_os_entry = Image.symbol image "__os_start";
    t_victim_canary = Image.symbol image (Iso.mangle ~prefix:"victim" "canary");
    t_victim_entry =
      (match Aft.handler_addr (Aft.find_app fw "victim") "handle_button" with
      | Some a -> a
      | None -> failwith "victim lacks handle_button");
    t_victim_limit = vic.Layout.data_limit;
    t_sram = Map.sram_start + 0x200;
    t_self_below = atk.Layout.data_base - 2;
    t_self_slack = atk.Layout.data_limit - 2;
  }

(* ------------------------------------------------------------------ *)
(* Cell construction                                                   *)

type built =
  | Rejected of string
  | Built of {
      fw : Aft.firmware;
      attacker : string;
      victim : string;
      targets : targets;
    }

let victim_spec mode = Suite.spec_for mode Suite.security_victim
let carrier_spec mode = Suite.spec_for mode Suite.security_carrier

let specs_for ~position ~attacker_spec mode =
  match position with
  | First -> [ attacker_spec; victim_spec mode ]
  | Last -> [ victim_spec mode; attacker_spec ]

let build_source ~attack ~mode gen =
  let attacker = "attacker" in
  let build targets =
    let spec = { Aft.name = attacker; source = gen targets } in
    Aft.build ~mode (specs_for ~position:attack.atk_position ~attacker_spec:spec mode)
  in
  match build placeholder_targets with
  | exception Amulet_cc.Srcloc.Error (_, msg) -> Rejected msg
  | exception Aft.Build_error msg -> Rejected msg
  | fw_a ->
    let targets = resolve_targets fw_a ~attacker in
    let fw = build targets in
    let la = app_layout fw_a attacker and lb = app_layout fw attacker in
    if
      la.Layout.code_base <> lb.Layout.code_base
      || la.Layout.data_base <> lb.Layout.data_base
      || la.Layout.data_limit <> lb.Layout.data_limit
    then
      failwith
        (Printf.sprintf "%s: layout shifted between build phases"
           attack.atk_name);
    Built { fw; attacker; victim = "victim"; targets }

let patch_words image ~addr words =
  let patched = ref false in
  let chunks =
    List.map
      (fun (base, b) ->
        if addr >= base && addr + (2 * List.length words) <= base + Bytes.length b
        then begin
          patched := true;
          let b = Bytes.copy b in
          List.iteri
            (fun i w ->
              let off = addr - base + (2 * i) in
              Bytes.set b off (Char.chr (w land 0xFF));
              Bytes.set b (off + 1) (Char.chr ((w lsr 8) land 0xFF)))
            words;
          (base, b)
        end
        else (base, b))
      image.Image.chunks
  in
  if not !patched then failwith "patch_words: address outside image chunks";
  { image with Image.chunks }

let build_binary ~attack ~mode payload =
  let attacker = "carrier" in
  let fw =
    Aft.build ~mode [ carrier_spec mode; victim_spec mode ]
  in
  let targets = resolve_targets fw ~attacker in
  let haddr =
    match Aft.handler_addr (Aft.find_app fw attacker) "handle_timer" with
    | Some a -> a
    | None -> failwith "carrier lacks handle_timer"
  in
  let words =
    List.concat_map (fun op -> Amulet_mcu.Encode.encode op) (payload targets)
  in
  (* the payload must stay inside the carrier's handler body *)
  (match Image.span fw.Aft.fw_image (Iso.mangle ~prefix:attacker "handle_timer") with
  | Some (lo, hi) when haddr = lo && haddr + (2 * List.length words) <= hi ->
    ()
  | Some _ | None ->
    failwith
      (Printf.sprintf "%s: payload does not fit the carrier handler"
         attack.atk_name));
  let image = patch_words fw.Aft.fw_image ~addr:haddr words in
  Built
    {
      fw = { fw with Aft.fw_image = image };
      attacker;
      victim = "victim";
      targets;
    }

let build_cell ~attack ~mode =
  match (attack.atk_source, attack.atk_payload) with
  | Some gen, _ -> build_source ~attack ~mode gen
  | None, Some payload -> build_binary ~attack ~mode payload
  | None, None -> assert false
