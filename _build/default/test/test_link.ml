(* Assembler/linker unit tests plus AFT layout invariants. *)

module A = Amulet_link.Asm
module Assembler = Amulet_link.Assembler
module Linker = Amulet_link.Linker
module Image = Amulet_link.Image
module Layout = Amulet_aft.Layout
module Aft = Amulet_aft.Aft
module O = Amulet_mcu.Opcode
module Iso = Amulet_cc.Isolation

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Assembler *)

let test_sizes () =
  check_int "reg-reg insn" 2 (Assembler.size [ A.mov (A.Sreg 5) (A.Dreg 6) ]);
  check_int "cg immediate" 2 (Assembler.size [ A.mov (A.imm 1) (A.Dreg 6) ]);
  check_int "big immediate" 4 (Assembler.size [ A.mov (A.imm 300) (A.Dreg 6) ]);
  (* symbolic immediates always take an extension word *)
  check_int "symbolic immediate" 4
    (Assembler.size [ A.mov (A.sym "x") (A.Dreg 6) ]);
  check_int "abs-abs" 6
    (Assembler.size [ A.mov (A.Sabs (A.Num 0x1C00)) (A.Dabs (A.Num 0x1C02)) ]);
  check_int "jump" 2 (Assembler.size [ A.jmp "l"; A.label "l" ] - 0);
  check_int "dword" 2 (Assembler.size [ A.Dword (A.Num 5) ]);
  check_int "bytes + align" 4
    (Assembler.size [ A.Dbytes "abc"; A.Align2; A.Dword (A.Num 1) ] - 2)

let test_labels () =
  let items =
    [ A.label "a"; A.mov (A.Sreg 5) (A.Dreg 6); A.label "b"; A.Dword (A.Num 0) ]
  in
  Alcotest.(check (list (pair string int)))
    "offsets"
    [ ("a", 0); ("b", 2) ]
    (Assembler.local_labels items)

let test_duplicate_label () =
  match Assembler.local_labels [ A.label "x"; A.label "x" ] with
  | exception Assembler.Error _ -> ()
  | _ -> Alcotest.fail "expected duplicate-label error"

(* A jump beyond the +/-512-word format-III range must be relaxed to a
   long branch — and still execute correctly. *)
let test_jump_relaxation () =
  let halt = A.mov (A.imm 1) (A.Dabs (A.Num Amulet_mcu.Machine.halt_port)) in
  let items =
    [ A.label "entry"; A.jcc Amulet_mcu.Opcode.JEQ "far"; A.jmp "far" ]
    @ List.init 600 (fun _ -> A.nop)
    @ [ A.label "far"; A.mov (A.imm 0xCAFE) (A.Dreg 10); halt ]
  in
  let image =
    Linker.link ~entry:"entry" [ { Linker.name = "s"; base = 0x4400; items } ]
  in
  let m = Amulet_mcu.Machine.create () in
  Image.load image m;
  Amulet_mcu.Machine.reset m;
  (match Amulet_mcu.Machine.run m with
  | Amulet_mcu.Machine.Halted -> ()
  | other ->
    Alcotest.failf "run: %a" Amulet_mcu.Machine.pp_stop_reason other);
  check_int "landed at far" 0xCAFE
    (Amulet_mcu.Registers.get (Amulet_mcu.Machine.regs m) 10)

(* Emitted bytes must agree with the size computation for symbolic
   immediates resolving to CG-encodable values. *)
let test_symbolic_cg_size_agreement () =
  let items = [ A.mov (A.sym "tiny") (A.Dreg 6); A.label "end" ] in
  let image =
    Linker.link ~extra_symbols:[ ("tiny", 8) ] ~entry:"end"
      [ { Linker.name = "s"; base = 0x4400; items } ]
  in
  (* "tiny" = 8 is CG-encodable, but the symbolic operand must still
     occupy an extension word so label offsets stay correct *)
  check_int "end offset" (0x4400 + 4) (Image.symbol image "end")

(* ------------------------------------------------------------------ *)
(* Linker *)

let test_undefined_symbol () =
  let items = [ A.label "e"; A.call "missing" ] in
  match
    Linker.link ~entry:"e" [ { Linker.name = "s"; base = 0x4400; items } ]
  with
  | exception Linker.Error msg ->
    let contains s sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    check_bool "mentions symbol" true (contains msg "missing")
  | _ -> Alcotest.fail "expected undefined-symbol error"

let test_duplicate_symbol_across_sections () =
  let s1 = { Linker.name = "a"; base = 0x4400; items = [ A.label "x" ] } in
  let s2 = { Linker.name = "b"; base = 0x5000; items = [ A.label "x" ] } in
  match Linker.link ~entry:"x" [ s1; s2 ] with
  | exception Linker.Error _ -> ()
  | _ -> Alcotest.fail "expected duplicate-symbol error"

let test_overlap_detection () =
  let body = List.init 20 (fun _ -> A.nop) in
  let s1 = { Linker.name = "a"; base = 0x4400; items = A.label "e" :: body } in
  let s2 = { Linker.name = "b"; base = 0x4410; items = body } in
  match Linker.link ~entry:"e" [ s1; s2 ] with
  | exception Linker.Error _ -> ()
  | _ -> Alcotest.fail "expected overlap error"

let test_start_end_symbols () =
  let items = [ A.label "e"; A.Dword (A.Num 1); A.Dword (A.Num 2) ] in
  let image =
    Linker.link ~entry:"e" [ { Linker.name = "sec"; base = 0x4400; items } ]
  in
  check_int "start" 0x4400 (Image.symbol image "sec__start");
  check_int "end" 0x4404 (Image.symbol image "sec__end")

let test_image_load () =
  let items = [ A.label "e"; A.Dword (A.Num 0xBEEF) ] in
  let image =
    Linker.link ~entry:"e" [ { Linker.name = "sec"; base = 0x4400; items } ]
  in
  let m = Amulet_mcu.Machine.create () in
  Image.load image m;
  check_int "datum" 0xBEEF
    (Amulet_mcu.Machine.mem_checked_read m Amulet_mcu.Word.W16 0x4400);
  check_int "reset vector" 0x4400
    (Amulet_mcu.Machine.mem_checked_read m Amulet_mcu.Word.W16 0xFFFE)

(* ------------------------------------------------------------------ *)
(* Layout invariants *)

let test_layout_alignment () =
  let lay =
    Layout.compute ~os_code_size:0x123 ~os_data_size:0x10
      ~apps:
        [ ("a", 0x111, 0x23, 0x100); ("b", 0x777, 0x51, 0x200);
          ("c", 0x39, 0x400, 0x80) ]
  in
  check_int "os data 1KiB aligned" 0 (lay.Layout.os_data_base land 0x3FF);
  check_int "apps base aligned" 0 (lay.Layout.apps_base land 0x3FF);
  List.iter
    (fun (a : Layout.app_layout) ->
      check_int (a.Layout.name ^ " data 1KiB aligned") 0
        (a.Layout.data_base land 0x3FF);
      check_int (a.Layout.name ^ " limit aligned") 0
        (a.Layout.data_limit land 0x3FF);
      check_bool (a.Layout.name ^ " code below data") true
        (a.Layout.code_base + a.Layout.code_size <= a.Layout.data_base);
      check_bool (a.Layout.name ^ " stack below globals") true
        (a.Layout.stack_top <= a.Layout.data_limit - a.Layout.globals_size);
      check_bool (a.Layout.name ^ " stack above base") true
        (a.Layout.stack_top > a.Layout.data_base))
    lay.Layout.apps;
  (* apps are contiguous: code of app n+1 starts at data_limit of n *)
  let rec contiguous = function
    | (a : Layout.app_layout) :: (b : Layout.app_layout) :: rest ->
      check_int "contiguous" a.Layout.data_limit b.Layout.code_base;
      contiguous (b :: rest)
    | _ -> ()
  in
  contiguous lay.Layout.apps

let test_layout_overflow () =
  match
    Layout.compute ~os_code_size:0x1000 ~os_data_size:0x100
      ~apps:[ ("big", 0x8000, 0x8000, 0x8000) ]
  with
  | exception Layout.Does_not_fit _ -> ()
  | _ -> Alcotest.fail "expected does-not-fit"

(* ------------------------------------------------------------------ *)
(* AFT end-to-end invariants *)

let tiny_app = "int x; void handle_init(int a) { x = 1; }"

let test_aft_bounds_symbols () =
  let fw =
    Aft.build ~mode:Iso.Mpu_assisted [ { Aft.name = "tiny"; source = tiny_app } ]
  in
  let img = fw.Aft.fw_image in
  let lay = List.hd fw.Aft.fw_layout.Layout.apps in
  check_int "data lo symbol = layout" lay.Layout.data_base
    (Image.symbol img "tiny_data__start");
  check_int "code lo symbol = layout" lay.Layout.code_base
    (Image.symbol img "tiny_code__start");
  check_bool "tramp exists" true (Image.has_symbol img "__tramp_tiny");
  check_bool "exit stub inside app code" true
    (let e = Image.symbol img "__exit_tiny" in
     e >= lay.Layout.code_base && e < lay.Layout.code_base + lay.Layout.code_size)

let test_aft_duplicate_names () =
  match
    Aft.build ~mode:Iso.No_isolation
      [
        { Aft.name = "a"; source = tiny_app };
        { Aft.name = "a"; source = tiny_app };
      ]
  with
  | exception Aft.Build_error _ -> ()
  | _ -> Alcotest.fail "expected duplicate-name error"

let test_aft_bad_name () =
  match Aft.build ~mode:Iso.No_isolation [ { Aft.name = "Bad App"; source = tiny_app } ] with
  | exception Aft.Build_error _ -> ()
  | _ -> Alcotest.fail "expected invalid-name error"

let test_stack_depth_analysis () =
  let src =
    "int leaf(int x) { int a[4]; a[0] = x; return a[0]; }\n\
     int mid(int x) { return leaf(x) + leaf(x + 1); }\n\
     void handle_init(int a) { mid(a); }"
  in
  let cu = Amulet_cc.Driver.compile ~prefix:"t" ~mode:Iso.Software_only src in
  check_bool "not recursive" false cu.Amulet_cc.Driver.recursive;
  (* three frames deep: init -> mid -> leaf, each bounded *)
  check_bool "bounded estimate" true
    (cu.Amulet_cc.Driver.stack_bytes > 24
    && cu.Amulet_cc.Driver.stack_bytes < 400)

let test_stack_depth_recursion_flag () =
  let src =
    "int f(int x) { if (x) return f(x - 1); return 0; }\n\
     void handle_init(int a) { f(a); }"
  in
  let cu = Amulet_cc.Driver.compile ~prefix:"t" ~mode:Iso.Software_only src in
  check_bool "flagged recursive" true cu.Amulet_cc.Driver.recursive;
  check_int "default reservation" Amulet_cc.Driver.default_stack_bytes
    cu.Amulet_cc.Driver.stack_bytes

let quick name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "link"
    [
      ( "assembler",
        [
          quick "sizes" test_sizes;
          quick "labels" test_labels;
          quick "duplicate label" test_duplicate_label;
          quick "jump relaxation" test_jump_relaxation;
          quick "symbolic CG sizing" test_symbolic_cg_size_agreement;
        ] );
      ( "linker",
        [
          quick "undefined symbol" test_undefined_symbol;
          quick "duplicate symbol" test_duplicate_symbol_across_sections;
          quick "overlap" test_overlap_detection;
          quick "start/end symbols" test_start_end_symbols;
          quick "image load" test_image_load;
        ] );
      ( "layout",
        [
          quick "alignment invariants" test_layout_alignment;
          quick "overflow" test_layout_overflow;
        ] );
      ( "aft",
        [
          quick "bounds symbols" test_aft_bounds_symbols;
          quick "duplicate names" test_aft_duplicate_names;
          quick "bad name" test_aft_bad_name;
          quick "stack depth" test_stack_depth_analysis;
          quick "recursion flag" test_stack_depth_recursion_flag;
        ] );
    ]
