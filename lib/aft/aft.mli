(** The Amulet Firmware Toolchain: compile a set of applications with
    one isolation mode and link them with the OS support code into a
    bootable firmware image.

    The four phases of the paper map onto this pipeline as follows:
    phase 1 (feature checks, access/API enumeration, call-graph
    stack-depth analysis) and phase 2 (check insertion with
    placeholder bounds) run inside {!Amulet_cc.Driver.compile}; phase
    3 (section attributes, stack-manipulation stubs) is the section
    assignment plus {!Stubs} generation here; phase 4 (final layout
    and bound patching) is {!Layout.compute} plus link-time resolution
    of the section start/end symbols the checks refer to. *)

type app_spec = { name : string; source : string }

type app_build = {
  ab_name : string;
  ab_compiled : Amulet_cc.Driver.compiled;
  ab_layout : Layout.app_layout;
  ab_handlers : (string * int) list;
      (** [handle_*] function name -> linked address *)
  ab_tramp : int;  (** trampoline address *)
}

type firmware = {
  fw_mode : Amulet_cc.Isolation.mode;
  fw_image : Amulet_link.Image.t;
  fw_layout : Layout.t;
  fw_apps : app_build list;
}

exception Build_error of string

val stack_margin : int
(** Extra stack bytes reserved per app on top of the compiler's
    source-level worst-case estimate (gate register saves, trampoline
    pushes). *)

val build :
  mode:Amulet_cc.Isolation.mode ->
  ?shadow:bool ->
  ?elide:bool ->
  ?certify:bool ->
  app_spec list ->
  firmware
(** [shadow] additionally arms the shadow return-address stack in
    InfoMem (the paper's future-work hardening; works with any mode).
    [elide] (default true) runs the range analysis so codegen can drop
    guards at proven-safe dereference sites; pass [false] to measure
    the unoptimized check cost.
    [certify] (default true) runs the static certifier post-link and
    stamps [cert.gates.<app>] notes into the image so the kernel can
    elide the dynamic gate-pointer validation for the certified
    services; pass [false] to measure the uncertified gate cost.
    @raise Build_error on name clashes or layout overflow;
    @raise Amulet_cc.Srcloc.Error on source-level errors. *)

val find_app : firmware -> string -> app_build
(** @raise Not_found *)

val handler_addr : app_build -> string -> int option
