lib/cc/ctype.ml: Format Hashtbl List Printf String
