lib/mcu/timer.ml:
