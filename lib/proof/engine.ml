(* A small explicit-state bounded model checker with k-induction.

   BDD-free and SMT-free on purpose: the abstract systems this repo
   proves things about have a few hundred states, so the engine
   enumerates.  What it keeps from the big-tool playbook is the proof
   *rule*: a property is reported [Proved] only when it is k-inductive
   (base case: no violation within k steps of an initial state; step
   case: every length-k path of property states, starting anywhere in
   the universe, only steps to property states).  Plain reachability
   would give the same boolean answer here, but the inductive form is
   what transfers to the unbounded concrete system — and it honestly
   exposes when an invariant needs strengthening (see the MPU window
   obligations: the bare containment property is *not* inductive at
   any k, because stuttering on unreachable disabled-MPU states can
   precede a violation; the [aux] predicate closes it).

   Counterexamples come out of a breadth-first search, so they are
   shortest traces — directly replayable on the concrete [Machine]
   (see [Replay]). *)

type ('s, 'a) system = {
  universe : 's list;  (** finite superset of every reachable state *)
  inits : 's list;
  actions : 'a list;
  step : 's -> 'a -> 's option;  (** [None]: action disabled *)
  prop : 's -> bool;
  equal : 's -> 's -> bool;
  pp_state : Format.formatter -> 's -> unit;
  pp_action : Format.formatter -> 'a -> unit;
}

type ('s, 'a) verdict =
  | Proved of { k : int; reachable : int; strengthened : bool }
  | Refuted of { trace : ('s * 'a) list; final : 's }
  | Unknown of { k_max : int; reason : string }

let mem_eq eq x l = List.exists (fun y -> eq x y) l

let successors sys s =
  List.filter_map
    (fun a -> match sys.step s a with None -> None | Some t -> Some (a, t))
    sys.actions

(* Breadth-first reachability with parent edges; stops early at the
   first state violating [prop] (shortest counterexample). *)
let explore sys =
  (* visited: (state, parent) with parent = None for inits *)
  let visited = ref [] in
  let parent_of s =
    List.find_map
      (fun (t, p) -> if sys.equal s t then Some p else None)
      !visited
  in
  let seen s = List.exists (fun (t, _) -> sys.equal s t) !visited in
  let rec trace_to s =
    match parent_of s with
    | Some (Some (p, a)) -> trace_to p @ [ (p, a) ]
    | _ -> []
  in
  let bad = ref None in
  List.iter
    (fun s -> if not (seen s) then visited := (s, None) :: !visited)
    sys.inits;
  (match List.find_opt (fun s -> not (sys.prop s)) sys.inits with
  | Some s -> bad := Some s
  | None ->
    let frontier = ref sys.inits in
    while !bad = None && !frontier <> [] do
      let next = ref [] in
      List.iter
        (fun s ->
          if !bad = None then
            List.iter
              (fun (a, t) ->
                if !bad = None && not (seen t) then begin
                  visited := (t, Some (s, a)) :: !visited;
                  if not (sys.prop t) then bad := Some t
                  else next := t :: !next
                end)
              (successors sys s))
        !frontier;
      frontier := !next
    done);
  let reachable = List.map fst !visited in
  match !bad with
  | Some s -> (reachable, Some (trace_to s, s))
  | None -> (reachable, None)

let bmc sys =
  match explore sys with
  | _, Some (trace, final) -> Some (trace, final)
  | _, None -> None

(* Step case of k-induction for property [q]: with
   F_0 = { s in universe | q s } and F_{i+1} = post(F_i) ∩ q,
   every successor of every state in F_{k-1} must satisfy [q].
   (F_i is the set of states ending some q-path of i+1 states, so
   k = 1 is ordinary induction over the whole universe; larger k
   restricts the start states to ends of longer q-paths.) *)
let inductive_at sys q k =
  let f0 = List.filter q sys.universe in
  let post set =
    List.fold_left
      (fun acc s ->
        List.fold_left
          (fun acc (_, t) ->
            if q t && not (mem_eq sys.equal t acc) then t :: acc else acc)
          acc (successors sys s))
      [] set
  in
  let rec iterate i set = if i = 0 then set else iterate (i - 1) (post set) in
  let fk = iterate (k - 1) f0 in
  List.for_all (fun s -> List.for_all (fun (_, t) -> q t) (successors sys s)) fk

let k_induction ?(k_max = 8) ?aux sys =
  let reachable, cex = explore sys in
  match cex with
  | Some (trace, final) -> Refuted { trace; final }
  | None -> (
    let q =
      match aux with None -> sys.prop | Some f -> fun s -> sys.prop s && f s
    in
    (* the strengthening must itself be an invariant of the reachable
       system, or the "proof" would be of a different property *)
    match List.find_opt (fun s -> not (q s)) reachable with
    | Some _ ->
      Unknown { k_max; reason = "auxiliary invariant fails on a reachable state" }
    | None -> (
      let rec search k =
        if k > k_max then
          Unknown { k_max; reason = "property not k-inductive up to k_max" }
        else if inductive_at sys q k then
          Proved
            { k; reachable = List.length reachable; strengthened = aux <> None }
        else search (k + 1)
      in
      search 1))

let pp_trace ~pp_state ~pp_action ppf (trace, final) =
  List.iter
    (fun (s, a) ->
      Format.fprintf ppf "  %a --%a-->@." pp_state s pp_action a)
    trace;
  Format.fprintf ppf "  %a" pp_state final

let pp_verdict sys ppf = function
  | Proved { k; reachable; strengthened } ->
    Format.fprintf ppf "proved (k=%d induction%s, %d reachable states)" k
      (if strengthened then " with invariant strengthening" else "")
      reachable
  | Refuted { trace; final } ->
    Format.fprintf ppf "refuted:@.%a"
      (pp_trace ~pp_state:sys.pp_state ~pp_action:sys.pp_action)
      (trace, final)
  | Unknown { k_max; reason } ->
    Format.fprintf ppf "unknown (k_max=%d: %s)" k_max reason
