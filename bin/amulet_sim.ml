(* amulet_sim: build a firmware from WearC sources (or named suite
   apps) and run it under the kernel model for a stretch of virtual
   time, reporting dispatches, faults, display and log state. *)

module Iso = Amulet_cc.Isolation
module Aft = Amulet_aft.Aft
module Os = Amulet_os
module Apps = Amulet_apps.Suite
module Obs = Amulet_obs.Obs

let mode_conv =
  let parse s =
    match Iso.of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg "expected one of: none, amuletc, software, mpu")
  in
  Cmdliner.Arg.conv (parse, fun ppf m -> Format.fprintf ppf "%s" (Iso.name m))

let scenario_conv =
  let parse = function
    | "resting" -> Ok Os.Sensors.Resting
    | "walking" -> Ok Os.Sensors.Walking
    | "running" -> Ok Os.Sensors.Running
    | "daily" -> Ok Os.Sensors.Daily_mix
    | "fall" -> Ok (Os.Sensors.Fall_at 5_000)
    | _ -> Error (`Msg "expected resting|walking|running|daily|fall")
  in
  Cmdliner.Arg.conv
    ( parse,
      fun ppf s ->
        Format.fprintf ppf "%s"
          (match s with
          | Os.Sensors.Resting -> "resting"
          | Os.Sensors.Walking -> "walking"
          | Os.Sensors.Running -> "running"
          | Os.Sensors.Daily_mix -> "daily"
          | Os.Sensors.Fall_at _ -> "fall") )

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let spec_of mode arg =
  match List.find_opt (fun (a : Apps.app) -> a.Apps.name = arg) Apps.all with
  | Some app -> Apps.spec_for mode app
  | None ->
    {
      Aft.name = Filename.remove_extension (Filename.basename arg);
      source = read_file arg;
    }

let run_cmd mode scenario seconds trace trace_format profile expect_fault apps
    =
  try
    let specs = List.map (spec_of mode) apps in
    let fw = Aft.build ~mode specs in
    let obs =
      if trace <> None || profile then begin
        let obs = Obs.create () in
        (match trace with
        | Some path ->
          let oc = open_out path in
          Obs.add_sink obs
            (match trace_format with
            | `Chrome -> Obs.chrome_sink oc
            | `Jsonl -> Obs.jsonl_sink oc)
        | None -> ());
        if profile then Amulet_obs.Obs.enable_profile obs fw;
        Some obs
      end
      else None
    in
    let k = Os.Kernel.create ~scenario ?obs fw in
    let records = Os.Kernel.run_for_ms k (seconds * 1000) in
    Format.printf "mode %s, scenario driven for %d virtual seconds@."
      (Iso.name mode) seconds;
    Format.printf "%d events dispatched, %d total cycles@."
      (List.length records)
      (Amulet_mcu.Machine.cycles k.Os.Kernel.machine);
    Array.iter
      (fun (st : Os.Kernel.app_state) ->
        Format.printf "@.app %-16s %s@." st.Os.Kernel.build.Aft.ab_name
          (if st.Os.Kernel.enabled then "running" else "DISABLED");
        (match st.Os.Kernel.last_fault with
        | Some f -> Format.printf "  last fault: %s@." f
        | None -> ());
        List.iter
          (fun (handler, (s : Os.Kernel.handler_stats)) ->
            Format.printf "  %-18s %6d events, avg %5d cycles@." handler
              s.Os.Kernel.hs_count
              (s.Os.Kernel.hs_cycles / max 1 s.Os.Kernel.hs_count))
          (Os.Kernel.handler_profiles st);
        match st.Os.Kernel.last_forensics with
        | Some dump -> Format.printf "%s" dump
        | None -> ())
      k.Os.Kernel.apps;
    Format.printf "@.display:@.";
    for i = 0 to 3 do
      Format.printf "  |%-32s|@." (Os.Kernel.display_line k i)
    done;
    let log = Os.Kernel.log_contents k in
    Format.printf "log: %d bytes@." (String.length log);
    (match obs with
    | Some obs ->
      (match Obs.profile obs with
      | Some p ->
        Format.printf "@.%a"
          Amulet_obs.Profile.pp_report
          (Amulet_obs.Profile.report p ~machine:k.Os.Kernel.machine)
      | None -> ());
      Obs.close obs;
      (match trace with
      | Some path -> Format.printf "trace written to %s@." path
      | None -> ())
    | None -> ());
    let unrecovered = Os.Kernel.unrecovered_faults k in
    List.iter
      (fun (app, fault) ->
        Format.eprintf "unrecovered fault: app %s disabled (%s)@." app fault)
      unrecovered;
    (match (unrecovered, expect_fault) with
    | [], false -> 0
    | _ :: _, true -> 0
    | _ :: _, false -> 2
    | [], true ->
      Format.eprintf "--expect-fault: no app ended disabled by a fault@.";
      2)
  with
  | Amulet_cc.Srcloc.Error (loc, msg) ->
    Format.eprintf "error at %a: %s@." Amulet_cc.Srcloc.pp loc msg;
    1
  | Aft.Build_error msg ->
    Format.eprintf "build error: %s@." msg;
    1
  | Sys_error msg ->
    Format.eprintf "%s@." msg;
    1

open Cmdliner

let mode_arg =
  Arg.(
    value
    & opt mode_conv Iso.Mpu_assisted
    & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"Isolation mode.")

let scenario_arg =
  Arg.(
    value
    & opt scenario_conv Os.Sensors.Walking
    & info [ "w"; "scenario" ] ~docv:"SCENARIO"
        ~doc:"Sensor scenario: resting, walking, running, daily, fall.")

let seconds_arg =
  Arg.(
    value & opt int 60
    & info [ "t"; "seconds" ] ~docv:"SECONDS"
        ~doc:"Virtual seconds to simulate.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write an execution trace to $(docv).")

let trace_format_arg =
  Arg.(
    value
    & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Chrome
    & info [ "trace-format" ] ~docv:"FORMAT"
        ~doc:
          "Trace format: $(b,chrome) (trace_event JSON, loadable in \
           Perfetto) or $(b,jsonl) (one record per line).")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Classify every executed cycle into app code / bounds guards / OS \
           gate / MPU reconfig / kernel and print the breakdown.")

let expect_fault_arg =
  Arg.(
    value & flag
    & info [ "expect-fault" ]
        ~doc:
          "Invert the fault exit logic: succeed only if at least one app \
           ends the run disabled by an unrecovered fault.  For negative \
           tests that drive deliberately faulty apps.")

let apps_arg =
  Arg.(
    non_empty & pos_all string []
    & info [] ~docv:"APP"
        ~doc:
          "Suite app name (e.g. $(b,pedometer)) or path to a WearC source \
           file.")

let cmd =
  let doc = "run applications on the simulated Amulet platform" in
  Cmd.v
    (Cmd.info "amulet_sim" ~doc)
    Term.(
      const run_cmd $ mode_arg $ scenario_arg $ seconds_arg $ trace_arg
      $ trace_format_arg $ profile_arg $ expect_fault_arg $ apps_arg)

let () = exit (Cmd.eval' cmd)
