(* Fixture applications for the adversarial campaign (lib/sec).

   These are *benign* apps: the victim exposes well-known state the
   attack oracle can inspect, and the carrier reserves a large, easily
   located handler body that binary-level attacks overwrite with
   hand-encoded payloads.  The malicious sources themselves are
   generated in [Amulet_sec.Attacks], parameterized by the concrete
   firmware layout. *)

(* The victim fills an 8-word canary array with 0xC0DE during init and
   never touches it again; any later change to those words is evidence
   of a cross-app breach.  [handle_button] bumps a counter so the
   kernel's liveness probe has a handler to land on. *)
let victim =
  {|
int canary[8];
int presses = 0;
int beats = 0;

void handle_init(int arg) {
  int i;
  for (i = 0; i < 8; i++) canary[i] = 49374;
  api_set_timer(1000);
}

void handle_timer(int arg) {
  beats += 1;
}

void handle_button(int arg) {
  presses += 1;
}
|}

(* The carrier's [handle_timer] is a long run of independent increments
   — plenty of room (and a trivially recognizable shape) for a binary
   payload patched over its first words.  It is scheduled exactly like
   the source-level attackers (init arms a 50 ms timer), so patched
   payloads run after every app's init. *)
let carrier =
  {|
int pad0 = 0;
int pad1 = 0;
int pad2 = 0;
int pad3 = 0;

void handle_init(int arg) {
  api_set_timer(50);
}

void handle_timer(int arg) {
  pad0 += 1; pad1 += 1; pad2 += 1; pad3 += 1;
  pad0 += 1; pad1 += 1; pad2 += 1; pad3 += 1;
  pad0 += 1; pad1 += 1; pad2 += 1; pad3 += 1;
  pad0 += 1; pad1 += 1; pad2 += 1; pad3 += 1;
  pad0 += 1; pad1 += 1; pad2 += 1; pad3 += 1;
  pad0 += 1; pad1 += 1; pad2 += 1; pad3 += 1;
  pad0 += 1; pad1 += 1; pad2 += 1; pad3 += 1;
  pad0 += 1; pad1 += 1; pad2 += 1; pad3 += 1;
}
|}
