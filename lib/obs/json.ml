type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%g" f)
  | Str s -> escape_to buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* Recursive-descent parser over an index into the string. *)

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected '%c' at offset %d, got '%c'" c !pos c'
    | None -> fail "expected '%c' at offset %d, got end of input" c !pos
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let code =
             try int_of_string ("0x" ^ hex)
             with _ -> fail "bad \\u escape %s" hex
           in
           (* traces are ASCII; encode the low byte only *)
           Buffer.add_char buf (Char.chr (code land 0xFF))
         | c -> fail "bad escape '\\%c'" c);
        go ()
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      try Float (float_of_string text)
      with _ -> fail "bad number %S" text
    else
      try Int (int_of_string text) with _ -> fail "bad number %S" text
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}' at offset %d" !pos
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']' at offset %d" !pos
        in
        Arr (elems [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character '%c' at offset %d" c !pos
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage at offset %d" !pos;
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
