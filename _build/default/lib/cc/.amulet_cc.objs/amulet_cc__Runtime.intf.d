lib/cc/runtime.mli: Amulet_link Ctype
