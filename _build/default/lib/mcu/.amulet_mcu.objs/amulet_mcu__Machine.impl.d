lib/mcu/machine.ml: Buffer Char Cpu Decode Format Memory Memory_map Mpu Registers Timer Trace Word
