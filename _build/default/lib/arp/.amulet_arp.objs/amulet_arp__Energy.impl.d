lib/arp/energy.ml:
