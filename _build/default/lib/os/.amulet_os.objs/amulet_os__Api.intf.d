lib/os/api.mli: Amulet_mcu Buffer Event Sensors
