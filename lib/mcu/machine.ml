type fault =
  | Mpu_violation of {
      access : Mpu.access;
      addr : int;
      pc : int;
      segment : Mpu.segment;
    }
  | Mpu_bad_password of { addr : int; pc : int }
  | Unmapped of { addr : int; pc : int; write : bool }
  | Illegal_instruction of { pc : int; word : int }

exception Fault of fault

let access_name = function
  | Mpu.Exec -> "execute"
  | Mpu.Dread -> "read"
  | Mpu.Dwrite -> "write"

let segment_name = function
  | Mpu.Seg_info -> "info"
  | Mpu.Seg1 -> "seg1"
  | Mpu.Seg2 -> "seg2"
  | Mpu.Seg3 -> "seg3"

let pp_fault ppf = function
  | Mpu_violation { access; addr; pc; segment } ->
    Format.fprintf ppf "MPU violation: %s of %04X (%s) at pc=%04X"
      (access_name access) addr (segment_name segment) pc
  | Mpu_bad_password { addr; pc } ->
    Format.fprintf ppf "MPU password violation on %04X at pc=%04X" addr pc
  | Unmapped { addr; pc; write } ->
    Format.fprintf ppf "unmapped %s of %04X at pc=%04X"
      (if write then "write" else "read")
      addr pc
  | Illegal_instruction { pc; word } ->
    Format.fprintf ppf "illegal instruction %04X at pc=%04X" word pc

type stop_reason =
  | Halted
  | Faulted of fault
  | Sw_fault of int
  | Out_of_fuel

let pp_stop_reason ppf = function
  | Halted -> Format.fprintf ppf "halted"
  | Faulted f -> Format.fprintf ppf "fault (%a)" pp_fault f
  | Sw_fault c -> Format.fprintf ppf "software fault %d" c
  | Out_of_fuel -> Format.fprintf ppf "out of fuel"

type t = {
  mem : Memory.t;
  mpu : Mpu.t;
  timer : Timer.t;
  cpu : Cpu.t;
  stats : Trace.stats;
  console : Buffer.t;
  mutable halted : bool;
  mutable sw_fault : int option;
  mutable host_call : t -> int -> unit;
  mutable on_event : (Trace.event -> unit) option;
  mutable on_step : (t -> unit) option;
  mutable emit_hook : (Trace.event -> unit) option;
  mutable in_step : bool;
  mutable extra_cycles : int;
  blocks : (int, Predecode.block) Hashtbl.t;
  mutable code_drained : int;
}

let host_call_port = 0x01F0
let console_port = 0x01F4
let halt_port = 0x01F6
let sw_fault_port = 0x01F8

let cycles t = t.cpu.Cpu.cycles + t.extra_cycles
let add_cycles t n = t.extra_cycles <- t.extra_cycles + n
let regs t = t.cpu.Cpu.regs

(* During an instruction, events go to the watcher chain snapshotted
   at step entry: a watcher armed mid-step (from an event callback)
   must observe whole instructions starting at the next boundary,
   never a suffix of the one in flight. *)
let emit t e =
  match if t.in_step then t.emit_hook else t.on_event with
  | None -> ()
  | Some f -> f e

let add_watch t f =
  match t.on_event with
  | None -> t.on_event <- Some f
  | Some g ->
    t.on_event <-
      Some
        (fun e ->
          g e;
          f e)

let add_step_hook t f =
  match t.on_step with
  | None -> t.on_step <- Some f
  | Some g ->
    t.on_step <-
      Some
        (fun m ->
          g m;
          f m)

let pc_of t = Registers.get_pc t.cpu.Cpu.regs

let peripheral_read t width addr =
  let v =
    if Mpu.handles addr then Mpu.mmio_read t.mpu addr
    else if Timer.handles addr then
      Timer.mmio_read t.timer ~now:(cycles t) addr
    else 0
  in
  Word.norm width v

let peripheral_write t width addr v =
  let v = Word.norm width v in
  if Mpu.handles addr then begin
    (* The MPU's password check comes first: a rejected or ignored
       write must not appear in traces as if it happened. *)
    match Mpu.mmio_write t.mpu addr v with
    | Mpu.Write_ok -> emit t (Trace.Io_write { addr; value = v })
    | Mpu.Locked_ignored -> ()
    | Mpu.Bad_password ->
      raise (Fault (Mpu_bad_password { addr; pc = pc_of t }))
  end
  else begin
    emit t (Trace.Io_write { addr; value = v });
    if Timer.handles addr then Timer.mmio_write t.timer ~now:(cycles t) addr v
    else if addr = host_call_port then t.host_call t v
    else if addr = console_port then
      Buffer.add_char t.console (Char.chr (v land 0xFF))
    else if addr = halt_port then t.halted <- true
    else if addr = sw_fault_port then t.sw_fault <- Some v
  end

let mpu_check t access addr =
  match Mpu.check t.mpu access addr with
  | Mpu.Allowed -> ()
  | Mpu.Violation segment ->
    raise (Fault (Mpu_violation { access; addr; pc = pc_of t; segment }))

let bus_read t (kind : Cpu.access) width addr =
  let addr = addr land 0xFFFF in
  match Memory_map.region_of_addr addr with
  | Memory_map.Peripherals -> peripheral_read t width addr
  | Memory_map.Unmapped ->
    raise (Fault (Unmapped { addr; pc = pc_of t; write = false }))
  | Memory_map.Fram | Memory_map.Info_mem | Memory_map.Sram
  | Memory_map.Vectors | Memory_map.Bootstrap ->
    let access =
      match kind with Cpu.Afetch -> Mpu.Exec | Cpu.Aread -> Mpu.Dread
    in
    mpu_check t access addr;
    let value = Memory.read t.mem width addr in
    (match kind with
    | Cpu.Afetch -> t.stats.Trace.fetch_words <- t.stats.Trace.fetch_words + 1
    | Cpu.Aread ->
      t.stats.Trace.data_reads <- t.stats.Trace.data_reads + 1;
      emit t (Trace.Mem_read { addr; width; value; pc = pc_of t }));
    value

let bus_write t width addr v =
  let addr = addr land 0xFFFF in
  match Memory_map.region_of_addr addr with
  | Memory_map.Peripherals -> peripheral_write t width addr v
  | Memory_map.Unmapped ->
    raise (Fault (Unmapped { addr; pc = pc_of t; write = true }))
  | Memory_map.Fram | Memory_map.Info_mem | Memory_map.Sram
  | Memory_map.Vectors | Memory_map.Bootstrap ->
    mpu_check t Mpu.Dwrite addr;
    Memory.write t.mem width addr v;
    t.stats.Trace.data_writes <- t.stats.Trace.data_writes + 1;
    emit t (Trace.Mem_write { addr; width; value = Word.norm width v; pc = pc_of t })

let create () =
  let self = ref None in
  let me () = match !self with Some t -> t | None -> assert false in
  let bus =
    {
      Cpu.read = (fun k w a -> bus_read (me ()) k w a);
      Cpu.write = (fun w a v -> bus_write (me ()) w a v);
    }
  in
  let t =
    {
      mem = Memory.create ();
      mpu = Mpu.create ();
      timer = Timer.create ();
      cpu = Cpu.create bus;
      stats = Trace.create_stats ();
      console = Buffer.create 64;
      halted = false;
      sw_fault = None;
      host_call = (fun _ _ -> ());
      on_event = None;
      on_step = None;
      emit_hook = None;
      in_step = false;
      extra_cycles = 0;
      blocks = Hashtbl.create 256;
      code_drained = 0;
    }
  in
  self := Some t;
  t

let load_words t ~addr words = Memory.blit_words t.mem ~addr words
let load_bytes t ~addr b = Memory.blit t.mem ~addr b

let set_reset_vector t entry =
  Memory.write_word t.mem Memory_map.reset_vector entry

let reset t =
  t.halted <- false;
  t.sw_fault <- None;
  Trace.reset_stats t.stats;
  t.extra_cycles <- 0;
  Buffer.clear t.console;
  Hashtbl.reset t.blocks;
  Memory.clear_code_watches t.mem;
  t.code_drained <- Memory.code_gen t.mem;
  Registers.set_pc (regs t) (Memory.read_word t.mem Memory_map.reset_vector);
  Registers.set_sp (regs t) Memory_map.sram_limit

let step t =
  (* Pre-instruction hook: the fault injector's entry point.  A plain
     [None] match when no hook is installed, so simulated cycle counts
     are identical with and without the facility armed (asserted by
     the bench suite). *)
  (match t.on_step with None -> () | Some f -> f t);
  (* Snapshot the watcher chain AFTER the step hook, so a watchpoint
     armed pre-instruction observes this instruction from its first
     event, and one armed mid-instruction starts at the next boundary
     — deterministic either way. *)
  t.emit_hook <- t.on_event;
  t.in_step <- true;
  let pc0 = pc_of t in
  let faulted f =
    emit t (Trace.Fault_event (Format.asprintf "%a" pp_fault f));
    Error f
  in
  let result =
    try
      let i = Cpu.step t.cpu in
      emit t (Trace.Exec { pc = pc0; instr = i });
      Ok i
    with
    | Fault f -> faulted f
    | Decode.Illegal word -> faulted (Illegal_instruction { pc = pc0; word })
  in
  t.in_step <- false;
  result

(* ------------------------------------------------------------------ *)
(* Tier 2: predecoded basic-block execution.                          *)
(*                                                                    *)
(* [run] dispatches through a cache of predecoded blocks whenever no  *)
(* hook is armed.  The moment any step hook or event watcher is       *)
(* installed — profiler, fault injector, campaign oracle — it falls   *)
(* back to [step], the reference per-instruction path, so armed runs  *)
(* observe the exact semantics they always did.  Both paths execute   *)
(* instructions through the same [Cpu] code and charge the same       *)
(* [Cycles.cycles], so simulated state is byte-identical either way.  *)
(* ------------------------------------------------------------------ *)

let hooks_armed t =
  (match t.on_step with Some _ -> true | None -> false)
  || match t.on_event with Some _ -> true | None -> false

(* Drop cached blocks overlapping spans written since the last drain.
   One integer compare when nothing changed. *)
let sync_code_cache t =
  if Memory.code_gen t.mem <> t.code_drained then begin
    let spans = Memory.take_dirty_code t.mem in
    t.code_drained <- Memory.code_gen t.mem;
    let stale =
      Hashtbl.fold
        (fun pc (b : Predecode.block) acc ->
          if
            List.exists
              (fun (a, l) -> a < b.Predecode.b_hi && a + l > b.Predecode.b_lo)
              spans
          then pc :: acc
          else acc)
        t.blocks []
    in
    List.iter (Hashtbl.remove t.blocks) stale
  end

let block_at t pc =
  match Hashtbl.find_opt t.blocks pc with
  | Some b -> b
  | None ->
    let b = Predecode.build ~read_word:(Memory.read_word t.mem) ~pc in
    Memory.watch_code_span t.mem ~lo:b.Predecode.b_lo ~hi:b.Predecode.b_hi;
    Hashtbl.replace t.blocks pc b;
    b

(* Mirror of [Cpu.step] minus fetch/decode: PC advances past the
   instruction first, then the shared executors run, then cost is
   charged — so a fault mid-execution leaves registers, statistics and
   cycle counts exactly as the slow path would. *)
let exec_uop t (u : Predecode.uop) =
  let cpu = t.cpu in
  Registers.set_pc cpu.Cpu.regs (u.Predecode.u_pc + u.Predecode.u_len);
  (match u.Predecode.u_instr with
  | Opcode.Fmt1 (op, width, src, dst) ->
    Cpu.exec_fmt1 cpu op width src dst ~src_ext_addr:u.Predecode.u_src_ext
      ~dst_ext_addr:u.Predecode.u_dst_ext
  | Opcode.Fmt2 (op, width, src) ->
    Cpu.exec_fmt2 cpu op width src ~src_ext_addr:u.Predecode.u_src_ext
  | Opcode.Jump (c, _) ->
    if Cpu.cond_true cpu.Cpu.regs c then
      Registers.set_pc cpu.Cpu.regs u.Predecode.u_target
  | Opcode.Reti -> Cpu.exec_reti cpu);
  cpu.Cpu.cycles <- cpu.Cpu.cycles + u.Predecode.u_cost;
  cpu.Cpu.insns <- cpu.Cpu.insns + 1

(* Run uops from a block until it ends or something demands the
   per-instruction path.  Returns the fault, if one was raised.

   Exec-permission handling: while [b_mpu_gen] matches the live MPU
   generation, every instruction word is known Allowed and fetch words
   are bulk-counted; otherwise each word is re-checked in fetch order,
   counting words only after their check passes — the slow path's
   exact fault/statistics ordering.  The generation is re-read per
   uop, so an instruction that reconfigures the MPU demotes the rest
   of its own block to careful mode. *)
let run_block t (b : Predecode.block) budget =
  t.emit_hook <- None;
  t.in_step <- true;
  let entry_gen = Mpu.gen t.mpu in
  let unvalidated = b.Predecode.b_mpu_gen <> entry_gen in
  let mem_gen0 = Memory.code_gen t.mem in
  let uops = b.Predecode.b_uops in
  let n = Array.length uops in
  let stats = t.stats in
  let fault = ref None in
  let i = ref 0 in
  (try
     let continue = ref true in
     while !continue && !i < n do
       let u = Array.unsafe_get uops !i in
       if b.Predecode.b_mpu_gen = Mpu.gen t.mpu then
         stats.Trace.fetch_words <-
           stats.Trace.fetch_words + u.Predecode.u_words
       else
         for w = 0 to u.Predecode.u_words - 1 do
           mpu_check t Mpu.Exec ((u.Predecode.u_pc + (2 * w)) land 0xFFFF);
           stats.Trace.fetch_words <- stats.Trace.fetch_words + 1
         done;
       exec_uop t u;
       decr budget;
       incr i;
       (* Instruction boundary: leave the fast loop the moment state
          demands attention — halt/fault ports, a hook armed by a host
          call, a write into predecoded code (even this block's own
          bytes), or exhausted fuel. *)
       if
         t.halted
         || t.sw_fault <> None
         || hooks_armed t
         || Memory.code_gen t.mem <> mem_gen0
         || !budget = 0
       then continue := false
     done;
     if unvalidated && !i = n && Mpu.gen t.mpu = entry_gen then
       b.Predecode.b_mpu_gen <- entry_gen
   with Fault f -> fault := Some f);
  t.in_step <- false;
  !fault

let run ?(fuel = 10_000_000) t =
  let budget = ref fuel in
  let rec loop () =
    if t.halted then Halted
    else
      match t.sw_fault with
      | Some code -> Sw_fault code
      | None ->
        if !budget = 0 then Out_of_fuel
        else if hooks_armed t then begin
          match step t with
          | Ok _ ->
            decr budget;
            loop ()
          | Error f -> Faulted f
        end
        else begin
          sync_code_cache t;
          let b = block_at t (pc_of t) in
          if Array.length b.Predecode.b_uops = 0 then begin
            (* Not predecodable here (MMIO fetch, illegal word, wrap):
               one reference step does exactly what decode would. *)
            match step t with
            | Ok _ ->
              decr budget;
              loop ()
            | Error f -> Faulted f
          end
          else
            match run_block t b budget with
            | None -> loop ()
            | Some f -> Faulted f
        end
  in
  loop ()

let mem_checked_read t width addr = Memory.read t.mem width addr
let mem_checked_write t width addr v = Memory.write t.mem width addr v
let console_contents t = Buffer.contents t.console
