(** Flat 64 KiB backing store for the simulated address space.

    This module is a raw byte store: permission checks, MMIO dispatch
    and region semantics live in {!Machine}.  Word accesses are
    little-endian; an odd word address is aligned down, as on the real
    MSP430 CPU. *)

type t

val create : unit -> t
(** A zero-filled 64 KiB memory. *)

val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit

val read_word : t -> int -> int
val write_word : t -> int -> int -> unit

val read : t -> Word.width -> int -> int
val write : t -> Word.width -> int -> int -> unit

val blit : t -> addr:int -> bytes -> unit
(** Copy a byte string into memory starting at [addr]. *)

val blit_words : t -> addr:int -> int list -> unit
(** Store a list of 16-bit words starting at [addr]. *)

val fill : t -> addr:int -> len:int -> value:int -> unit

val copy : t -> t
(** Deep copy (for snapshot/restore in tests).  The copy starts with
    fresh code-write tracking: no watched pages, no pending spans. *)

val equal : t -> t -> bool
(** Byte-for-byte content equality (tracking state is ignored). *)

(** {2 Code-write tracking}

    Support for the machine's predecoded-block cache.  The machine
    watches every byte span it predecodes; writes landing in a watched
    256 B page bump {!code_gen} and queue a dirty span.  The dispatch
    loop compares generations (one integer) per block, and only walks
    {!take_dirty_code} when something actually changed. *)

val code_gen : t -> int
(** Monotonic counter, bumped by every write into a watched page. *)

val watch_code_span : t -> lo:int -> hi:int -> unit
(** Mark the pages covering byte range [\[lo, hi)] as containing
    predecoded code. *)

val take_dirty_code : t -> (int * int) list
(** Return and clear the queued [(addr, len)] spans written into
    watched pages since the last call. *)

val clear_code_watches : t -> unit
(** Drop all watched pages and pending spans (machine reset). *)
