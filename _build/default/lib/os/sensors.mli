(** Synthetic sensor and power models.

    The real Amulet reads an accelerometer, a PPG heart-rate sensor, a
    thermometer, a light sensor and a battery gauge.  These generators
    produce deterministic, physiologically-plausible series as pure
    functions of (seed, scenario, time) so experiment runs are exactly
    reproducible. *)

type scenario =
  | Resting  (** sitting still: low-amplitude accelerometer noise *)
  | Walking  (** ~2 Hz step oscillation on the vertical axis *)
  | Running  (** ~3 Hz, higher amplitude, elevated heart rate *)
  | Fall_at of int  (** resting, then a high-g spike at the given ms *)
  | Daily_mix  (** alternating segments of rest and walking *)

type t

val create : ?seed:int -> scenario -> t
val scenario : t -> scenario

val accel_sample : t -> time_ms:int -> int * int * int
(** (x, y, z) in milli-g; gravity on z. *)

val accel_magnitude : t -> time_ms:int -> int
(** |(x,y,z)| approximation in milli-g. *)

val ppg_sample : t -> time_ms:int -> int
(** Raw photoplethysmogram sample (arbitrary units around 2048). *)

val heart_rate : t -> time_ms:int -> int
(** Beats per minute implied by the scenario. *)

val temperature : t -> time_ms:int -> int
(** Tenths of a degree Celsius (skin temperature). *)

val light : t -> time_ms:int -> int
(** Ambient light in lux-ish units with a day/night cycle. *)

val battery_percent : t -> time_ms:int -> int
(** Linear discharge from 100, scaled for a two-week lifetime. *)

val button_state : t -> time_ms:int -> int
