let records_of_json j =
  let arr =
    match Json.member "traceEvents" j with
    | Some (Json.Arr xs) -> xs
    | _ -> ( match j with Json.Arr xs -> xs | _ -> [ j ])
  in
  List.filter_map Obs.record_of_json arr

let of_string text =
  let trimmed = String.trim text in
  let jsonl () =
    (* JSONL: one record per non-empty line *)
    String.split_on_char '\n' text
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" then None
           else Obs.record_of_json (Json.parse line))
  in
  if trimmed = "" then []
  else if trimmed.[0] = '{' then
    (* either one Chrome trace document or a JSONL stream (which also
       starts with '{' but fails to parse as a single value) *)
    match Json.parse trimmed with
    | j -> records_of_json j
    | exception Json.Parse_error _ -> jsonl ()
  else if trimmed.[0] = '[' then records_of_json (Json.parse trimmed)
  else jsonl ()

(* ------------------------------------------------------------------ *)
(* Aggregation: everything flows through Agg/Hist, so the only state
   proportional to trace length is the histogram buckets. *)

let aggregate records =
  let agg = Agg.create () in
  List.iter (Agg.add agg) records;
  agg

(* Streaming reader.  A JSONL trace is folded record by record; only
   when the first line is not a self-contained record (Chrome format:
   one document, possibly pretty-printed over many lines) is the whole
   input slurped and parsed as a single value. *)
let agg_of_channel ic =
  let agg = Agg.create () in
  let leftover = Buffer.create 256 in
  let streamed = ref 0 in
  (try
     while true do
       let line = input_line ic in
       let trimmed = String.trim line in
       if trimmed <> "" then begin
         match Json.parse trimmed with
         | j -> (
           match Obs.record_of_json j with
           | Some r ->
             incr streamed;
             Agg.add agg r
           | None ->
             (* a parseable line that is not a record: part of a
                Chrome document — stop streaming and slurp the rest *)
             Buffer.add_string leftover line;
             Buffer.add_char leftover '\n';
             raise Exit)
         | exception Json.Parse_error _ ->
           Buffer.add_string leftover line;
           Buffer.add_char leftover '\n';
           raise Exit
       end
     done
   with
  | End_of_file -> ()
  | Exit -> (
    try
      while true do
        Buffer.add_channel leftover ic 4096
      done
    with End_of_file -> ()));
  if Buffer.length leftover > 0 then begin
    if !streamed > 0 then
      (* mixed input: JSONL records followed by garbage *)
      raise (Json.Parse_error "trailing non-record data in JSONL trace");
    List.iter (Agg.add agg) (of_string (Buffer.contents leftover))
  end;
  agg

(* ------------------------------------------------------------------ *)
(* Reporting *)

let pp_agg ppf agg =
  Format.fprintf ppf "%d records" (Agg.records agg);
  (match Agg.time_range agg with
  | Some (lo, hi) ->
    Format.fprintf ppf ", cycles %d..%d (%d elapsed)" lo hi (hi - lo)
  | None -> ());
  Format.fprintf ppf "@.";
  let spans =
    Agg.spans agg
    |> List.sort (fun (_, a) (_, b) -> compare (Hist.sum b) (Hist.sum a))
  in
  if spans <> [] then begin
    Format.fprintf ppf "@.spans (by total cycles):@.";
    Format.fprintf ppf "  %-12s %-24s %8s %12s %10s %8s %8s %10s@." "category"
      "name" "count" "total" "avg" "p50" "p99" "max";
    List.iter
      (fun ((cat, name), h) ->
        Format.fprintf ppf "  %-12s %-24s %8d %12d %10.1f %8d %8d %10d@." cat
          name (Hist.count h) (Hist.sum h) (Hist.mean h) (Hist.quantile h 0.5)
          (Hist.quantile h 0.99) (Hist.max_value h))
      spans
  end;
  let counters = Agg.counters agg in
  if counters <> [] then begin
    Format.fprintf ppf "@.counters:@.";
    List.iter
      (fun (name, c) ->
        Format.fprintf ppf "  %-24s max %d, final %d, p50 %d, p99 %d@." name
          c.Agg.c_max c.Agg.c_last
          (Hist.quantile c.Agg.c_hist 0.5)
          (Hist.quantile c.Agg.c_hist 0.99))
      counters
  end;
  let instants = Agg.instants agg in
  if instants <> [] then begin
    Format.fprintf ppf "@.instants:@.";
    List.iter
      (fun ((cat, name), count) ->
        Format.fprintf ppf "  %-12s %-24s %8d@." cat name count)
      instants
  end;
  List.iter
    (fun (ts, msg) -> Format.fprintf ppf "@.FAULT at cycle %d: %s@." ts msg)
    (Agg.faults agg);
  if Agg.fault_count agg > Agg.fault_cap then
    Format.fprintf ppf "@.(%d further faults beyond the %d retained)@."
      (Agg.fault_count agg - Agg.fault_cap)
      Agg.fault_cap

let pp_report ppf records = pp_agg ppf (aggregate records)
