(** Code generator: typed AST to MSP430-like assembly, inserting the
    memory-isolation checks demanded by the selected mode.

    Check placement follows the paper exactly:

    - every dereference of a {e computed} address (pointer deref,
      dynamically-indexed array, [->], function-pointer call) is
      guarded; named variables, struct fields of named variables and
      constant-index array accesses are verified statically and get no
      run-time check;
    - [Software_only]: lower and upper bound compare-against-constant;
    - [Mpu_assisted]: lower bound only (the MPU catches the rest);
    - [Feature_limited]: array-index check via the [__bounds_check]
      runtime helper (the original Amulet scheme);
    - [Software_only] and [Mpu_assisted] also bounds-check the return
      address before every RET.

    The bound "constants" are the linker's section start/end symbols,
    resolved in AFT phase 4. *)

(** Per-function facts for the call-graph, stack-depth analysis and
    the resource profiler. *)
type fn_info = {
  fi_name : string;  (** unmangled *)
  fi_frame_bytes : int;  (** locals area *)
  fi_saved_regs : int;  (** callee-saved registers pushed *)
  fi_calls : string list;  (** direct in-unit callees *)
  fi_api_calls : string list;  (** OS API gates invoked *)
  fi_checked_sites : int;  (** dereference sites given run-time checks *)
  fi_static_sites : int;  (** accesses discharged at compile time *)
  fi_fnptr_calls : int;
}

type output = {
  code : Amulet_link.Asm.item list;
  data : Amulet_link.Asm.item list;
  infos : fn_info list;
  handlers : string list;  (** functions named [handle_*] (event entry points) *)
}

val gen_program :
  prefix:string ->
  mode:Isolation.mode ->
  ?shadow:bool ->
  Tast.program ->
  output
(** [shadow] enables the shadow return-address stack (an optional
    hardening on top of any mode): prologues copy the return address
    into the InfoMem shadow stack, epilogues compare and fault on
    mismatch, replacing the plain bounds check on the return slot.
    @raise Srcloc.Error on constructs the backend cannot compile
    (non-constant global initializers, struct assignment, ...). *)
