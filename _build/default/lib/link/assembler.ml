module O = Amulet_mcu.Opcode
module W = Amulet_mcu.Word
module E = Amulet_mcu.Encode

exception Error of string

let errf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let expr_is_symbolic = function
  | Asm.Num _ -> false
  | Asm.Sym _ | Asm.Off _ -> true

(* Size computation: a placeholder value is used for symbolic
   expressions; `no_cg_imm` guarantees the size does not depend on the
   placeholder. *)
let lower_src_for_size = function
  | Asm.Sreg r -> (O.S_reg r, false)
  | Asm.Sidx (r, _) -> (O.S_indexed (r, 0x7EAD), false)
  | Asm.Sabs _ -> (O.S_absolute 0x7EAD, false)
  | Asm.Sind r -> (O.S_indirect r, false)
  | Asm.Sinc r -> (O.S_indirect_inc r, false)
  | Asm.Simm (Asm.Num n) -> (O.S_immediate n, false)
  | Asm.Simm _ -> (O.S_immediate 0x7EAD, true)

let lower_dst_for_size = function
  | Asm.Dreg r -> O.D_reg r
  | Asm.Didx (r, _) -> O.D_indexed (r, 0x7EAD)
  | Asm.Dabs _ -> O.D_absolute 0x7EAD

let insn_size = function
  | Asm.I1 (op, w, s, d) ->
    let s', no_cg = lower_src_for_size s in
    E.length_bytes ~no_cg_imm:no_cg (O.Fmt1 (op, w, s', lower_dst_for_size d))
  | Asm.I2 (op, w, s) ->
    let s', no_cg = lower_src_for_size s in
    E.length_bytes ~no_cg_imm:no_cg (O.Fmt2 (op, w, s'))
  | Asm.Ijmp _ -> 2
  | Asm.Ireti -> 2

let item_size offset = function
  | Asm.Ins i -> insn_size i
  | Asm.Label _ | Asm.Comment _ -> 0
  | Asm.Dword _ -> 2
  | Asm.Dbytes s -> String.length s
  | Asm.Space n -> n
  | Asm.Align2 -> offset land 1

let fold_offsets f init items =
  let _, acc =
    List.fold_left
      (fun (offset, acc) item ->
        let acc = f offset acc item in
        (offset + item_size offset item, acc))
      (0, init) items
  in
  acc

(* ------------------------------------------------------------------ *)
(* Jump relaxation.

   Format-III jumps reach only +/-512 words.  Compiler-generated
   branches target labels in the same section; when one is out of
   range we rewrite it:

     JMP l                          BR #l
     Jcc l     becomes     Jcc m; JMP s; m: BR #l; s:

   (the generic pattern needs no condition inversion, so it also
   covers JN, which has no complement).  Sizing iterates to a fixpoint
   since lengthening one jump can push another out of range.  The
   rewrite is deterministic, so [size], [local_labels] and [emit] stay
   consistent by each relaxing first. *)

let long_jmp_bytes = 4 (* MOV #addr, PC *)
let long_jcc_bytes = 8 (* Jcc m; JMP s; m: BR #l *)

let relax items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let is_long = Array.make n false in
  let size_of i offset =
    match arr.(i) with
    | Asm.Ins (Asm.Ijmp (cond, _)) when is_long.(i) ->
      if cond = Amulet_mcu.Opcode.JMP then long_jmp_bytes else long_jcc_bytes
    | item -> item_size offset item
  in
  let changed = ref true in
  while !changed do
    changed := false;
    (* offsets and label table under the current long set *)
    let offsets = Array.make (n + 1) 0 in
    let labels = Hashtbl.create 64 in
    for i = 0 to n - 1 do
      (match arr.(i) with
      | Asm.Label l -> Hashtbl.replace labels l offsets.(i)
      | _ -> ());
      offsets.(i + 1) <- offsets.(i) + size_of i offsets.(i)
    done;
    for i = 0 to n - 1 do
      match arr.(i) with
      | Asm.Ins (Asm.Ijmp (_, l)) when not is_long.(i) -> (
        match Hashtbl.find_opt labels l with
        | None ->
          (* target in another section: must use the long form *)
          is_long.(i) <- true;
          changed := true
        | Some target ->
          let delta = target - (offsets.(i) + 2) in
          if delta < -1024 || delta > 1022 then begin
            is_long.(i) <- true;
            changed := true
          end)
      | _ -> ()
    done
  done;
  if Array.exists (fun b -> b) is_long then
    List.concat
      (List.mapi
         (fun i item ->
           match item with
           | Asm.Ins (Asm.Ijmp (cond, l)) when is_long.(i) ->
             if cond = Amulet_mcu.Opcode.JMP then [ Asm.br (Asm.Sym l) ]
             else
               let mid = Printf.sprintf "%s$$rx%dm" l i in
               let skip = Printf.sprintf "%s$$rx%ds" l i in
               [
                 Asm.Ins (Asm.Ijmp (cond, mid));
                 Asm.Ins (Asm.Ijmp (Amulet_mcu.Opcode.JMP, skip));
                 Asm.Label mid;
                 Asm.br (Asm.Sym l);
                 Asm.Label skip;
               ]
           | item -> [ item ])
         items)
  else items

let size items =
  let items = relax items in
  List.fold_left (fun offset item -> offset + item_size offset item) 0 items

let local_labels items =
  let items = relax items in
  let labels =
    fold_offsets
      (fun offset acc item ->
        match item with
        | Asm.Label l ->
          if List.mem_assoc l acc then errf "duplicate label %s" l
          else (l, offset) :: acc
        | _ -> acc)
      [] items
  in
  List.rev labels

let eval resolve = function
  | Asm.Num n -> n
  | Asm.Sym s -> resolve s
  | Asm.Off (s, n) -> resolve s + n

let lower_src resolve = function
  | Asm.Sreg r -> (O.S_reg r, false)
  | Asm.Sidx (r, e) -> (O.S_indexed (r, eval resolve e), false)
  | Asm.Sabs e -> (O.S_absolute (eval resolve e land 0xFFFF), false)
  | Asm.Sind r -> (O.S_indirect r, false)
  | Asm.Sinc r -> (O.S_indirect_inc r, false)
  | Asm.Simm e -> (O.S_immediate (eval resolve e land 0xFFFF), expr_is_symbolic e)

let lower_dst resolve = function
  | Asm.Dreg r -> O.D_reg r
  | Asm.Didx (r, e) -> O.D_indexed (r, eval resolve e)
  | Asm.Dabs e -> O.D_absolute (eval resolve e land 0xFFFF)

let emit ~base ~resolve items =
  let items = relax items in
  let buf = Bytes.make (size items) '\000' in
  let put_word offset w =
    Bytes.set buf offset (Char.chr (w land 0xFF));
    Bytes.set buf (offset + 1) (Char.chr ((w lsr 8) land 0xFF))
  in
  let put_words offset ws = List.iteri (fun i w -> put_word (offset + (2 * i)) w) ws in
  let emit_insn offset = function
    | Asm.I1 (op, w, s, d) ->
      let s', no_cg = lower_src resolve s in
      put_words offset (E.encode ~no_cg_imm:no_cg (O.Fmt1 (op, w, s', lower_dst resolve d)))
    | Asm.I2 (op, w, s) ->
      let s', no_cg = lower_src resolve s in
      put_words offset (E.encode ~no_cg_imm:no_cg (O.Fmt2 (op, w, s')))
    | Asm.Ijmp (c, l) ->
      let target = resolve l in
      let here = base + offset in
      let delta = target - (here + 2) in
      if delta land 1 <> 0 then errf "odd jump displacement to %s" l;
      let words = delta asr 1 in
      if words < -512 || words > 511 then
        errf "jump to %s out of range (%d words)" l words;
      put_words offset (E.encode (O.Jump (c, words)))
    | Asm.Ireti -> put_words offset (E.encode O.Reti)
  in
  let emit_item offset = function
    | Asm.Ins i -> emit_insn offset i
    | Asm.Label _ | Asm.Comment _ | Asm.Align2 | Asm.Space _ -> ()
    | Asm.Dword e -> put_word offset (eval resolve e land 0xFFFF)
    | Asm.Dbytes s -> Bytes.blit_string s 0 buf offset (String.length s)
  in
  fold_offsets (fun offset () item -> emit_item offset item) () items;
  buf
