lib/cc/ast.ml: Ctype Srcloc
