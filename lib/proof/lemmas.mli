(** Per-opcode abstraction lemmas, checked by differential execution.

    For every opcode in [lib/mcu/decode.ml]/[alu.ml], the memory
    footprint (loaded addresses, stored addresses, next PC) is
    predicted from the pre-instruction register file, then one real
    {!Amulet_mcu.Machine} step runs and the observed trace events are
    compared.  Data values and arithmetic flags are deliberately out
    of scope — the isolation proof depends only on where accesses
    land, not on what they carry. *)

type footprint = {
  fp_loads : (int * Amulet_mcu.Word.width) list;
  fp_stores : (int * Amulet_mcu.Word.width) list;
  fp_next_pc : int;
}

type failure = { f_case : string; f_reason : string }
type outcome = { lv_cases : int; lv_failures : failure list }

val run_case : ?flags:bool -> Amulet_mcu.Opcode.t -> failure option
(** Differentially check one opcode instance ([flags] preloads the
    status-register condition bits, for conditional jumps).  [None]
    when the lemma holds. *)

val validate : unit -> outcome
(** The full corpus: every two-operand op × width × addressing shape,
    the branch idioms (BR/RET), every single-operand op, taken and
    untaken forms of every jump condition, and RETI. *)
