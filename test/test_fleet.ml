(* Fleet service tests: scenario-DSL parsing (including the two
   shipped example files), the work-stealing scheduler's ordering and
   partition invariants, QCheck properties that shard merging over
   Obs.Hist / Obs.Agg is partition- and order-independent, and the
   end-to-end determinism contract — same scenario + seed twice, and
   jobs=1 vs jobs=2, produce bit-identical aggregate JSON. *)

module Iso = Amulet_cc.Isolation
module Hist = Amulet_obs.Hist
module Agg = Amulet_obs.Agg
module Obs = Amulet_obs.Obs
module Json = Amulet_obs.Json
module Sched = Amulet_fleet_core.Sched
module Scenario = Amulet_fleet_core.Scenario
module Device = Amulet_fleet_core.Device
module Fleet = Amulet_fleet_core.Fleet

let locate candidates =
  try List.find Sys.file_exists candidates with Not_found -> List.hd candidates

let parse_ok text =
  match Scenario.parse text with
  | Ok s -> s
  | Error e -> Alcotest.failf "unexpected parse error: %s" e

let parse_err text =
  match Scenario.parse text with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> e

(* --- scenario DSL ------------------------------------------------- *)

let test_parse_steady_day () =
  let path =
    locate
      [
        "../examples/scenarios/steady_day.fleet";
        "examples/scenarios/steady_day.fleet";
      ]
  in
  match Scenario.of_file path with
  | Error e -> Alcotest.failf "steady_day.fleet: %s" e
  | Ok s ->
    Alcotest.(check string) "name" "steady_day" s.Scenario.sc_name;
    Alcotest.(check int) "devices" 1000 s.Scenario.sc_devices;
    Alcotest.(check int) "duration" 1000 s.Scenario.sc_duration_ms;
    Alcotest.(check int) "seed" 42 s.Scenario.sc_seed;
    Alcotest.(check int) "modes" 4 (List.length s.Scenario.sc_modes);
    Alcotest.(check (list string))
      "apps" [ "pedometer"; "clock" ] s.Scenario.sc_apps;
    Alcotest.(check int) "traffic streams" 3
      (List.length s.Scenario.sc_traffic);
    Alcotest.(check (option int)) "churn" (Some 400) s.Scenario.sc_churn_ms

let test_parse_sensor_storm () =
  let path =
    locate
      [
        "../examples/scenarios/sensor_storm.fleet";
        "examples/scenarios/sensor_storm.fleet";
      ]
  in
  match Scenario.of_file path with
  | Error e -> Alcotest.failf "sensor_storm.fleet: %s" e
  | Ok s ->
    Alcotest.(check string) "name" "sensor_storm" s.Scenario.sc_name;
    Alcotest.(check int) "devices" 500 s.Scenario.sc_devices;
    Alcotest.(check int) "duration" 600 s.Scenario.sc_duration_ms;
    (match s.Scenario.sc_modes with
    | [ (m1, w1); (m2, w2) ] ->
      Alcotest.(check string) "mode 1" "software-only" (Iso.name m1);
      Alcotest.(check int) "weight 1" 1 w1;
      Alcotest.(check string) "mode 2" "mpu" (Iso.name m2);
      Alcotest.(check int) "weight 2" 3 w2
    | _ -> Alcotest.fail "expected exactly two modes");
    Alcotest.(check int) "traffic streams" 2
      (List.length s.Scenario.sc_traffic);
    Alcotest.(check (option int)) "no churn" None s.Scenario.sc_churn_ms

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let check_err ~line text =
  let e = parse_err text in
  Alcotest.(check bool)
    (Printf.sprintf "error %S names line %d" e line)
    true
    (contains e (Printf.sprintf "line %d" line))

let test_parse_errors () =
  check_err ~line:1 "wibble 3";
  check_err ~line:2 "devices 10\nmodes frobnicate=1";
  check_err ~line:1 "modes mpu=0";
  check_err ~line:1 "modes mpu=1 mpu=2";
  check_err ~line:1 "apps not_a_suite_app";
  check_err ~line:1 "traffic ble rate=0";
  check_err ~line:1 "traffic ble rate=1 burst=0";
  check_err ~line:1 "devices zero";
  check_err ~line:1 "sensors flying";
  check_err ~line:3 "devices 4\nduration 100ms\nchurn -5ms"

let test_parse_defaults_and_comments () =
  let s = parse_ok "# only a comment\n\nscenario tiny\n" in
  Alcotest.(check string) "name" "tiny" s.Scenario.sc_name;
  Alcotest.(check int) "default devices" 1 s.Scenario.sc_devices;
  Alcotest.(check int) "default modes" 4 (List.length s.Scenario.sc_modes);
  Alcotest.(check (list string))
    "default apps" [ "pedometer" ] s.Scenario.sc_apps

let test_device_seed () =
  let s1 = Scenario.device_seed ~seed:42 ~index:0 in
  let s1' = Scenario.device_seed ~seed:42 ~index:0 in
  Alcotest.(check int) "deterministic" s1 s1';
  Alcotest.(check bool) "non-negative" true (s1 >= 0);
  let seeds =
    List.init 256 (fun i -> Scenario.device_seed ~seed:42 ~index:i)
  in
  let distinct = List.sort_uniq compare seeds in
  Alcotest.(check int) "distinct across indices" 256 (List.length distinct);
  Alcotest.(check bool) "distinct across base seeds" true
    (Scenario.device_seed ~seed:1 ~index:0
    <> Scenario.device_seed ~seed:2 ~index:0)

let test_device_mode_round_robin () =
  let s = parse_ok "devices 500\nmodes software=1 mpu=3" in
  let counts = Scenario.mode_devices s in
  let find name =
    List.assoc_opt name
      (List.map (fun (m, n) -> (Iso.name m, n)) counts)
  in
  Alcotest.(check (option int)) "software share" (Some 125) (find "software-only");
  Alcotest.(check (option int)) "mpu share" (Some 375) (find "mpu");
  let total = List.fold_left (fun a (_, n) -> a + n) 0 counts in
  Alcotest.(check int) "shares cover the fleet" 500 total;
  (* weighted round-robin: slot 0 -> software, slots 1..3 -> mpu *)
  Alcotest.(check string) "slot 0" "software-only"
    (Iso.name (Scenario.device_mode s ~index:0));
  Alcotest.(check string) "slot 1" "mpu"
    (Iso.name (Scenario.device_mode s ~index:1));
  Alcotest.(check string) "slot 4 wraps" "software-only"
    (Iso.name (Scenario.device_mode s ~index:4))

(* --- scheduler ---------------------------------------------------- *)

let test_sched_map_order () =
  let items = List.init 101 Fun.id in
  let expect = List.map (fun x -> (x * 7) + 1) items in
  List.iter
    (fun jobs ->
      let got = Sched.map ~jobs (fun x -> (x * 7) + 1) items in
      Alcotest.(check (list int))
        (Printf.sprintf "map order at jobs=%d" jobs)
        expect got)
    [ 1; 2; 8; 200 (* more jobs than items *) ];
  Alcotest.(check (list int)) "empty input" [] (Sched.map ~jobs:4 Fun.id []);
  Alcotest.(check bool) "default_jobs positive" true (Sched.default_jobs () >= 1)

let test_sched_fold_shards_partition () =
  let items = List.init 97 (fun i -> i * 3) in
  let expect = List.sort compare items in
  List.iter
    (fun jobs ->
      let shards =
        Sched.fold_shards ~jobs
          ~init:(fun () -> [])
          ~fold:(fun acc x -> x :: acc)
          items
      in
      Alcotest.(check bool)
        (Printf.sprintf "shard count bounded at jobs=%d" jobs)
        true
        (List.length shards <= max 1 jobs);
      let merged = List.sort compare (List.concat shards) in
      Alcotest.(check (list int))
        (Printf.sprintf "shards partition the input at jobs=%d" jobs)
        expect merged)
    [ 1; 3; 8 ]

let test_sched_progress () =
  let seen = ref 0 and final = ref (-1) in
  let progress ~done_ ~total =
    incr seen;
    Alcotest.(check bool) "monotone" true (done_ <= total);
    if done_ = total then final := total
  in
  let _ = Sched.map ~jobs:2 ~batch:4 ~progress Fun.id (List.init 37 Fun.id) in
  Alcotest.(check bool) "progress called" true (!seen > 0);
  Alcotest.(check int) "progress reaches total" 37 !final

(* --- shard merge properties --------------------------------------- *)

let hist_of xs =
  let h = Hist.create () in
  List.iter (Hist.record h) xs;
  h

(* Synthetic device results with randomized counters, histogram
   samples and oracle verdicts — the QCheck generator for the
   partition/order property. *)
let gen_result =
  QCheck.Gen.(
    let* idx = int_bound 10_000 in
    let* mode_ix = int_bound (List.length Iso.all - 1) in
    let* dispatches = int_bound 50 in
    let* no_handler = int_bound 5 in
    let* faults = int_bound 5 in
    let* api_calls = int_bound 200 in
    let* cycles = int_bound 100_000 in
    let* dispatch_samples = list_size (0 -- 30) (int_bound 5_000) in
    let* latency_samples = list_size (0 -- 30) (int_bound 2_000) in
    let* os_intact = bool in
    let* alive = bool in
    return
      {
        Device.r_index = idx;
        r_mode = List.nth Iso.all mode_ix;
        r_dispatches = dispatches;
        r_no_handler = no_handler;
        r_faults = faults;
        r_unrecovered = 0;
        r_api_calls = api_calls;
        r_cycles = cycles;
        r_dispatch = hist_of dispatch_samples;
        r_latency = hist_of latency_samples;
        r_os_intact = os_intact;
        r_alive = alive;
      })

let arb_results =
  QCheck.make
    ~print:(fun rs ->
      String.concat ";"
        (List.map (fun r -> string_of_int r.Device.r_index) rs))
    QCheck.Gen.(list_size (0 -- 40) gen_result)

(* Deterministic pseudo-random partition/permutation derived from a
   generated salt — QCheck supplies the randomness, the split itself
   is a pure function of (salt, list). *)
let partition_by salt parts rs =
  let buckets = Array.make (max 1 parts) [] in
  List.iteri
    (fun i r ->
      let k = (i * 2654435761) lxor salt in
      let b = abs k mod max 1 parts in
      buckets.(b) <- r :: buckets.(b))
    rs;
  Array.to_list buckets

let shard_of rs =
  let s = Fleet.shard_empty () in
  List.iter (Fleet.shard_record s) rs;
  s

let prop_shard_partition_order =
  QCheck.Test.make ~count:200
    ~name:"shard merge is partition- and order-independent"
    (QCheck.triple arb_results QCheck.small_nat QCheck.small_nat)
    (fun (rs, salt, parts) ->
      let parts = 1 + (parts mod 5) in
      let sequential = shard_of rs in
      let pieces = List.map shard_of (partition_by salt parts rs) in
      let forward =
        List.fold_left Fleet.shard_merge (Fleet.shard_empty ()) pieces
      in
      let reverse =
        List.fold_left Fleet.shard_merge (Fleet.shard_empty ())
          (List.rev pieces)
      in
      Fleet.shard_equal sequential forward
      && Fleet.shard_equal sequential reverse)

let prop_shard_merge_assoc =
  QCheck.Test.make ~count:100 ~name:"shard merge is associative"
    (QCheck.triple arb_results arb_results arb_results)
    (fun (xs, ys, zs) ->
      let a = shard_of xs and b = shard_of ys and c = shard_of zs in
      Fleet.shard_equal
        (Fleet.shard_merge (Fleet.shard_merge a b) c)
        (Fleet.shard_merge a (Fleet.shard_merge b c)))

(* --- Obs.Agg partition property ----------------------------------- *)

let gen_record =
  QCheck.Gen.(
    let* ts = int_bound 100_000 in
    let* v = int_bound 10_000 in
    let* kind = int_bound 2 in
    return
      (match kind with
      | 0 ->
        Obs.Span
          { name = "dispatch"; cat = "os"; ts; dur = v; tid = 0; args = [] }
      | 1 -> Obs.Counter { name = "queue_depth"; ts; value = v }
      | _ ->
        Obs.Instant
          { name = "fault"; cat = "os"; ts; tid = 0; args = [] }))

let arb_records =
  QCheck.make
    ~print:(fun rs -> string_of_int (List.length rs))
    QCheck.Gen.(list_size (0 -- 60) gen_record)

let agg_of rs =
  let a = Agg.create () in
  List.iter (Agg.add a) rs;
  a

let agg_equal a b =
  Agg.records a = Agg.records b
  && List.for_all2
       (fun ((k1 : string * string), h1) (k2, h2) ->
         k1 = k2 && Hist.equal h1 h2)
       (Agg.spans a) (Agg.spans b)
  && List.for_all2
       (fun ((n1 : string), c1) (n2, c2) ->
         n1 = n2
         && Hist.equal c1.Agg.c_hist c2.Agg.c_hist
         && c1.Agg.c_max = c2.Agg.c_max)
       (Agg.counters a) (Agg.counters b)
  && Agg.instants a = Agg.instants b
  && Agg.fault_count a = Agg.fault_count b

let prop_agg_partition =
  QCheck.Test.make ~count:200
    ~name:"Agg merge of any partition equals the sequential fold"
    (QCheck.triple arb_records QCheck.small_nat QCheck.small_nat)
    (fun (rs, salt, parts) ->
      let parts = 1 + (parts mod 5) in
      let buckets = Array.make parts [] in
      List.iteri
        (fun i r ->
          let b = abs ((i * 40503) lxor salt) mod parts in
          buckets.(b) <- r :: buckets.(b))
        rs;
      let pieces =
        Array.to_list (Array.map (fun l -> agg_of (List.rev l)) buckets)
      in
      let merged =
        List.fold_left Agg.merge (Agg.create ()) pieces
      in
      let merged_rev =
        List.fold_left Agg.merge (Agg.create ()) (List.rev pieces)
      in
      agg_equal (agg_of rs) merged && agg_equal merged merged_rev)

(* --- end-to-end determinism --------------------------------------- *)

let small_scenario =
  parse_ok
    "scenario unit_fleet\n\
     devices 12\n\
     duration 120ms\n\
     seed 7\n\
     modes none=1 amuletc=1 software=1 mpu=1\n\
     apps pedometer\n\
     sensors walking\n\
     traffic button rate=8\n\
     traffic tick rate=8\n\
     churn 50ms\n"

let summary_string s = Json.to_string (Fleet.summary_json s)

let test_fleet_determinism () =
  let a = Fleet.run ~jobs:1 small_scenario in
  let b = Fleet.run ~jobs:1 small_scenario in
  Alcotest.(check string)
    "same scenario+seed twice => identical aggregate JSON"
    (summary_string a) (summary_string b);
  Alcotest.(check int) "all devices ran" 12 a.Fleet.fs_devices;
  Alcotest.(check bool) "devices dispatched" true (a.Fleet.fs_dispatches > 0);
  Alcotest.(check int) "zero oracle failures" 0 a.Fleet.fs_oracle_failures;
  Alcotest.(check bool) "run is ok" true (Fleet.ok a)

let test_fleet_jobs_invariant () =
  let a = Fleet.run ~jobs:1 small_scenario in
  let b = Fleet.run ~jobs:2 small_scenario in
  Alcotest.(check string) "jobs=1 and jobs=2 aggregate identically"
    (summary_string a) (summary_string b)

let test_fleet_seed_sensitivity () =
  let a = Fleet.run ~jobs:1 small_scenario in
  let b = Fleet.run ~jobs:1 ~seed:8 small_scenario in
  Alcotest.(check bool) "different seed changes the aggregate" true
    (summary_string a <> summary_string b)

let test_fleet_mode_coverage () =
  let s = Fleet.run ~jobs:2 small_scenario in
  let names = List.map (fun m -> Iso.name m.Fleet.ma_mode) s.Fleet.fs_modes in
  Alcotest.(check (list string))
    "all four modes aggregated, Iso.all order"
    (List.map Iso.name Iso.all) names;
  List.iter
    (fun m ->
      Alcotest.(check int)
        (Printf.sprintf "%s device share" (Iso.name m.Fleet.ma_mode))
        3 m.Fleet.ma_devices)
    s.Fleet.fs_modes

let test_device_violations () =
  let fw_mode = Scenario.device_mode small_scenario ~index:0 in
  let fw =
    Amulet_aft.Aft.build ~mode:fw_mode
      (List.map
         (fun n -> Amulet_apps.Suite.spec_for fw_mode (Amulet_apps.Suite.find n))
         small_scenario.Scenario.sc_apps)
  in
  let r =
    Device.run ~fw ~scenario:small_scenario
      ~seed:small_scenario.Scenario.sc_seed ~index:0
  in
  Alcotest.(check (list string)) "healthy device has no violations" []
    (Device.violations r);
  let sick = { r with Device.r_os_intact = false; r_alive = false } in
  Alcotest.(check int) "corrupt device reports both probes" 2
    (List.length (Device.violations sick))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "fleet"
    [
      ( "scenario",
        [
          Alcotest.test_case "parse steady_day example" `Quick
            test_parse_steady_day;
          Alcotest.test_case "parse sensor_storm example" `Quick
            test_parse_sensor_storm;
          Alcotest.test_case "parse errors carry line numbers" `Quick
            test_parse_errors;
          Alcotest.test_case "defaults and comments" `Quick
            test_parse_defaults_and_comments;
          Alcotest.test_case "device seed derivation" `Quick test_device_seed;
          Alcotest.test_case "weighted round-robin modes" `Quick
            test_device_mode_round_robin;
        ] );
      ( "sched",
        [
          Alcotest.test_case "map preserves order" `Quick test_sched_map_order;
          Alcotest.test_case "fold_shards partitions the input" `Quick
            test_sched_fold_shards_partition;
          Alcotest.test_case "progress reporting" `Quick test_sched_progress;
        ] );
      ( "shards",
        [
          q prop_shard_partition_order;
          q prop_shard_merge_assoc;
          q prop_agg_partition;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "determinism across runs" `Quick
            test_fleet_determinism;
          Alcotest.test_case "determinism across job counts" `Quick
            test_fleet_jobs_invariant;
          Alcotest.test_case "seed sensitivity" `Quick
            test_fleet_seed_sensitivity;
          Alcotest.test_case "per-mode coverage" `Quick test_fleet_mode_coverage;
          Alcotest.test_case "device oracle verdicts" `Quick
            test_device_violations;
        ] );
    ]
