(* Whole-image static certifier.

   Runs every analysis this library offers — the SFI verifier, CFI
   reconstruction, the binary stack bound and gate-argument provenance
   — over each app code section of a linked firmware image and folds
   the outcomes into one diagnostic report (rendered human-readable or
   as JSON by [bin/amulet_lint]).

   [certified_gates] distills the report into the list of services
   whose dynamic gate-pointer validation the kernel may elide for an
   app: that elision is sound only when the code the analyses looked
   at is the code that runs, so it additionally requires the CFI proof
   and a mode that keeps app code immutable (everything except
   No_isolation, where an unchecked wild store could rewrite the
   certified instructions). *)

module I = Amulet_link.Image
module Iso = Amulet_cc.Isolation
module Ob = Amulet_proof.Obligations
module Engine = Amulet_proof.Engine

type severity = Note | Warn | Error

type diag = {
  d_app : string;  (** "" for image-level diagnostics *)
  d_pass : string;
      (** "image" | "sfi" | "cfi" | "stackcert" | "gates" | "proof" *)
  d_severity : severity;
  d_addr : int option;
  d_message : string;
}

type app_report = {
  r_app : string;
  r_sfi : (Verifier.stats, Verifier.violation list) result;
  r_cfi : (Cfi.t, Cfi.violation list) result;
  r_stack : Stackcert.verdict option;  (** None when CFI failed *)
  r_gates : Gate_taint.t option;
  r_certified : string list;  (** services safe to elide (see above) *)
  r_wcet : Wcet.t option;  (** None when CFI failed *)
}

type report = {
  l_mode : Iso.mode;
  l_apps : app_report list;
  l_diags : diag list;
  l_errors : int;
  l_warnings : int;
}

let code_start_suffix = "_code__start"

(* App prefixes present in the image, in address order, discovered
   from the linker's section-bound symbols. *)
let apps_of (image : I.t) =
  List.filter_map
    (fun (name, addr) ->
      let n = String.length name and sn = String.length code_start_suffix in
      if n > sn && String.sub name (n - sn) sn = code_start_suffix then
        let prefix = String.sub name 0 (n - sn) in
        if prefix = "os" then None else Some (addr, prefix)
      else None)
    image.I.symbols
  |> List.sort compare |> List.map snd

let severity_name = function Note -> "note" | Warn -> "warning" | Error -> "error"

let lint_app ~image ~mode prefix =
  let sfi = Verifier.verify_app ~image ~mode ~prefix in
  let cfi = Cfi.reconstruct ~image ~mode ~prefix in
  let stack, gates =
    match cfi with
    | Error _ -> (None, None)
    | Ok cfg ->
      let st = Stackcert.analyze ~cfg ~image in
      (Some st.Stackcert.sc_verdict, Some (Gate_taint.analyze ~cfg ~stack:st ~image))
  in
  let wcet =
    match cfi with
    | Error _ -> None
    | Ok cfg -> Some (Wcet.analyze ~image ~cfg)
  in
  let certified =
    match (gates, cfi) with
    | Some gt, Ok _ when mode <> Iso.No_isolation -> gt.Gate_taint.gt_certified
    | _ -> []
  in
  let diags = ref [] in
  let diag ?addr pass severity message =
    diags :=
      { d_app = prefix; d_pass = pass; d_severity = severity; d_addr = addr;
        d_message = message }
      :: !diags
  in
  (match sfi with
  | Ok st ->
    diag "sfi" Note
      (Format.asprintf "verified: %a" Verifier.pp_stats st)
  | Error vs ->
    List.iter
      (fun (v : Verifier.violation) ->
        diag ~addr:v.Verifier.vaddr "sfi" Error
          (Printf.sprintf "%s: %s" v.Verifier.vtext v.Verifier.vreason))
      vs);
  (match cfi with
  | Ok cfg ->
    diag "cfi" Note
      (Printf.sprintf "control flow certified: %d functions, %d instructions"
         (List.length (Cfi.functions cfg))
         cfg.Cfi.cf_insns)
  | Error vs ->
    List.iter
      (fun (v : Cfi.violation) ->
        diag ~addr:v.Cfi.cv_addr "cfi" Error
          (Printf.sprintf "%s: %s" v.Cfi.cv_text v.Cfi.cv_reason))
      vs);
  (match stack with
  | None -> ()
  | Some v ->
    let text = Format.asprintf "%a" Stackcert.pp_verdict v in
    let sev =
      match v with
      | Stackcert.Certified _ | Stackcert.Not_applicable -> Note
      | Stackcert.Unbounded { fenced = true; _ } -> Warn
      | Stackcert.Unbounded { fenced = false; _ }
      | Stackcert.Rejected _ -> Error
      | Stackcert.Unanalyzable { addr = _; _ } -> Error
    in
    let addr = match v with Stackcert.Unanalyzable { addr; _ } -> Some addr | _ -> None in
    diag ?addr "stackcert" sev ("stack " ^ text));
  (match gates with
  | None -> ()
  | Some gt ->
    List.iter
      (fun (s : Gate_taint.site) ->
        if not s.Gate_taint.gs_certified then
          diag ~addr:s.Gate_taint.gs_addr "gates" Note
            (Printf.sprintf "%s in %s keeps its dynamic check: %s"
               s.Gate_taint.gs_service s.Gate_taint.gs_fn
               s.Gate_taint.gs_reason))
      gt.Gate_taint.gt_sites;
    if certified <> [] then
      diag "gates" Note
        ("validation elidable for: " ^ String.concat ", " certified));
  (match wcet with
  | None -> ()
  | Some w ->
    (* a handler the bound analysis cannot certify is a warning, not
       an error: an unbounded handler is a quality-of-service problem,
       while the isolation guarantees above do not depend on it *)
    List.iter
      (fun (h : Wcet.handler_bound) ->
        match h.Wcet.hb_total with
        | Wcet.Bounded c ->
          diag "wcet" Note
            (Printf.sprintf "%s worst case %d cycles per dispatch"
               h.Wcet.hb_handler c)
        | Wcet.Unbounded _ ->
          diag "wcet" Warn
            (Format.asprintf "%s %a" h.Wcet.hb_handler Wcet.pp_verdict
               h.Wcet.hb_total))
      w.Wcet.w_handlers;
    if w.Wcet.w_loops > 0 then
      diag "wcet" Note
        (Printf.sprintf "%d of %d loops carry a static iteration bound"
           w.Wcet.w_bounded_loops w.Wcet.w_loops));
  ( { r_app = prefix; r_sfi = sfi; r_cfi = cfi; r_stack = stack;
      r_gates = gates; r_certified = certified; r_wcet = wcet },
    List.rev !diags )

(* The mode-level write-containment obligations ([lib/proof]): each is
   expected to prove by k-induction or refute with a replayable
   counterexample; any obligation off its documented expectation is a
   certification error.  Image-independent, so reported at image
   level. *)
let proof_diags mode =
  List.map
    (fun (r : Ob.result) ->
      let status =
        match r.Ob.res_verdict with
        | Engine.Proved { k; reachable; strengthened } ->
          Printf.sprintf "proved by %d-induction over %d reachable states%s" k
            reachable
            (if strengthened then " (window-integrity strengthened)" else "")
        | Engine.Refuted { trace; _ } ->
          Printf.sprintf "refuted by a %d-step counterexample%s"
            (List.length trace)
            (if r.Ob.res_ok then ", as documented" else "")
        | Engine.Unknown { k_max; reason } ->
          Printf.sprintf "undecided at k_max=%d: %s" k_max reason
      in
      { d_app = ""; d_pass = "proof";
        d_severity = (if r.Ob.res_ok then Note else Error); d_addr = None;
        d_message = r.Ob.res_ob.Ob.ob_name ^ " " ^ status })
    (Ob.run_mode mode)

let run ~(image : I.t) ~mode ~apps =
  let per_app = List.map (lint_app ~image ~mode) apps in
  let diags =
    if apps = [] then
      [ { d_app = ""; d_pass = "image"; d_severity = Error; d_addr = None;
          d_message = "image has no app code sections: nothing was certified" } ]
    else List.concat_map snd per_app @ proof_diags mode
  in
  let count s = List.length (List.filter (fun d -> d.d_severity = s) diags) in
  {
    l_mode = mode;
    l_apps = List.map fst per_app;
    l_diags = diags;
    l_errors = count Error;
    l_warnings = count Warn;
  }

(* Services whose gate-pointer validation the kernel may skip for
   [prefix] — empty whenever any piece of the static evidence is
   missing. *)
let certified_gates ~image ~mode ~prefix =
  match lint_app ~image ~mode prefix with
  | { r_certified; _ }, _ -> r_certified

let pp_diag ppf d =
  Format.fprintf ppf "%s%s: [%s/%s] %s"
    (match d.d_addr with Some a -> Printf.sprintf "%04X " a | None -> "")
    (severity_name d.d_severity)
    (if d.d_app = "" then "image" else d.d_app)
    d.d_pass d.d_message
