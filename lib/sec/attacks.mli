(** Adversarial corpus: parameterized malicious applications at source
    level (WearC the toolchain compiles, guards and all) and at binary
    level (hand-encoded payloads patched over a benign app's handler
    after the AFT has produced the image — modelling a compromised or
    bypassed toolchain).

    Every attack carries its expected containment layer per isolation
    mode; the campaign driver runs each attack under all four modes
    and checks the observed outcome cell-by-cell.  Expectations are
    honest about the negative results the paper leans on: binary-level
    attacks defeat software-only isolation, MPU granularity
    over-permits the slack bytes of a 1 KiB-rounded segment, and the
    primitive MPU cannot protect its own configuration registers from
    code that knows the password. *)

type level = Source | Binary

type position = First | Last
(** Attacker's link order relative to the victim: [First] places the
    attacker's segments below the victim's (so wild writes upward hit
    MPU segment 3), [Last] places it above (wild writes downward are
    caught by the lower-bound check in both checked modes). *)

(** The layer expected to contain (or fail to contain) the attack. *)
type layer =
  | L_build  (** rejected at compile time (feature checks) *)
  | L_guard  (** a compiler-inserted check faults *)
  | L_mpu  (** the MPU raises a hardware violation *)
  | L_gate  (** the kernel's gate pointer validation rejects it *)
  | L_kernel  (** contained by the machine/kernel (unmapped, runaway) *)
  | L_none  (** breach expected — the mode does not stop this attack *)
  | L_harmless
      (** tolerated leak: the write lands in memory the mode's policy
          over-permits (1 KiB slack, shared SRAM stack) *)

val layer_name : layer -> string

(** Expected static-certifier verdict ([amulet_lint]) for the built
    attack image, per mode. *)
type lint_expect = Must_reject | Must_accept | Either

(** Concrete addresses an attack aims at, resolved from a linked
    firmware.  Source-level attacks build twice: once with
    {!placeholder_targets} to fix the layout, then with the resolved
    addresses (all placeholder and real values encode as extension
    words, so the layout cannot shift between phases). *)
type targets = {
  t_os_slot : int;  (** an OS kernel data word ([__os_sp_save]) *)
  t_os_entry : int;  (** OS code entry ([__os_start]) *)
  t_victim_canary : int;  (** first word of the victim's canary array *)
  t_victim_entry : int;  (** victim's [handle_button] *)
  t_victim_limit : int;  (** victim's [data_limit] (MPU B2 rebound) *)
  t_sram : int;  (** a word inside the SRAM OS stack *)
  t_self_below : int;  (** attacker's [data_base - 2] (own code) *)
  t_self_slack : int;  (** attacker's [data_limit - 2] (slack bytes) *)
}

val placeholder_targets : targets

val attack_value : int
(** The 16-bit value every write attack stores, checked on readback. *)

type t = {
  atk_name : string;
  atk_level : level;
  atk_descr : string;
  atk_position : position;
  atk_source : (targets -> string) option;  (** [Source] attacks *)
  atk_payload : (targets -> Amulet_mcu.Opcode.t list) option;
      (** [Binary] attacks: instructions patched over the carrier's
          [handle_timer]; must end by returning or branching away *)
  atk_target : targets -> int option;
      (** address whose readback ([= attack_value]) marks success *)
  atk_expect : Amulet_cc.Isolation.mode -> layer;
  atk_lint : Amulet_cc.Isolation.mode -> lint_expect;
}

val corpus : t list
val find : string -> t
(** @raise Not_found *)

val resolve_targets :
  Amulet_aft.Aft.firmware -> attacker:string -> targets

(** Outcome of constructing one campaign cell's firmware. *)
type built =
  | Rejected of string
      (** the toolchain refused the attacker at compile time *)
  | Built of {
      fw : Amulet_aft.Aft.firmware;
      attacker : string;  (** attacker app prefix in the image *)
      victim : string;
      targets : targets;
    }

val build_cell : attack:t -> mode:Amulet_cc.Isolation.mode -> built
(** Build the two-app firmware for one (attack, mode) cell: compile
    (two-phase for source attacks) or compile-and-patch (binary
    attacks).  @raise Failure if a binary payload does not fit in the
    carrier's handler or the two source phases disagree on layout. *)
