lib/core/experiments.mli: Amulet_apps Amulet_cc Amulet_os
