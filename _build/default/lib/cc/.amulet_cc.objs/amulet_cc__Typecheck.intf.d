lib/cc/typecheck.mli: Ast Ctype Tast
