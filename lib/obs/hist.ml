(* Log-linear (HDR-style) histogram.  Bucket layout:
     [0, 64)                unit-width buckets, index = value
     [2^k, 2^(k+1)), k >= 6 32 sub-buckets of width 2^(k-5)
   so bucket widths never exceed 1/32 of the bucket's lower bound and
   quantiles carry at most that relative error.  Counts live in a
   growable int array indexed by bucket; merge is bucket-wise sum. *)

let sub_bits = 5
let subbuckets = 1 lsl sub_bits (* 32 *)
let linear_limit = 2 * subbuckets (* 64 *)

type t = {
  mutable buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { buckets = [||]; count = 0; sum = 0; min_v = max_int; max_v = min_int }

let msb v =
  let rec go v k = if v <= 1 then k else go (v lsr 1) (k + 1) in
  go v 0

let index_of v =
  if v < linear_limit then v
  else
    let k = msb v in
    linear_limit + ((k - 6) * subbuckets) + ((v lsr (k - sub_bits)) - subbuckets)

(* [lo, hi) covered by bucket [i], and the midpoint used for quantiles *)
let bucket_bounds i =
  if i < linear_limit then (i, i + 1)
  else
    let c = (i - linear_limit) / subbuckets in
    let s = (i - linear_limit) mod subbuckets in
    let k = c + 6 in
    let w = 1 lsl (k - sub_bits) in
    let lo = (1 lsl k) + (s * w) in
    (lo, lo + w)

let bucket_mid i =
  let lo, hi = bucket_bounds i in
  lo + ((hi - 1 - lo) / 2)

let ensure t i =
  let n = Array.length t.buckets in
  if i >= n then begin
    let n' = max (i + 1) (max 64 (2 * n)) in
    let b = Array.make n' 0 in
    Array.blit t.buckets 0 b 0 n;
    t.buckets <- b
  end

let record_n t v ~n =
  if n > 0 then begin
    let v = max 0 v in
    let i = index_of v in
    ensure t i;
    t.buckets.(i) <- t.buckets.(i) + n;
    t.count <- t.count + n;
    t.sum <- t.sum + (n * v);
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let record t v = record_n t v ~n:1

let is_empty t = t.count = 0
let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = if t.count = 0 then 0 else t.max_v

let mean t =
  if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let quantile t q =
  if t.count = 0 then 0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    (* the endpoints are tracked exactly; a bucket midpoint can land
       below the true maximum (or above the true minimum), so answer
       from the exact fields rather than the lossy buckets *)
    if q = 0.0 then t.min_v
    else if q = 1.0 then t.max_v
    else
    let rank = max 1 (int_of_float (ceil (q *. float_of_int t.count))) in
    let i = ref 0 and cum = ref 0 in
    let n = Array.length t.buckets in
    while !cum < rank && !i < n do
      cum := !cum + t.buckets.(!i);
      incr i
    done;
    (* !i - 1 is the bucket where the rank-th sample falls *)
    let v = bucket_mid (max 0 (!i - 1)) in
    min t.max_v (max t.min_v v)
  end

let merge a b =
  let n = max (Array.length a.buckets) (Array.length b.buckets) in
  let get arr i = if i < Array.length arr then arr.(i) else 0 in
  {
    buckets = Array.init n (fun i -> get a.buckets i + get b.buckets i);
    count = a.count + b.count;
    sum = a.sum + b.sum;
    min_v = min a.min_v b.min_v;
    max_v = max a.max_v b.max_v;
  }

let equal a b =
  let n = max (Array.length a.buckets) (Array.length b.buckets) in
  let get arr i = if i < Array.length arr then arr.(i) else 0 in
  let rec same i = i >= n || (get a.buckets i = get b.buckets i && same (i + 1)) in
  a.count = b.count && a.sum = b.sum
  && (a.count = 0 || (a.min_v = b.min_v && a.max_v = b.max_v))
  && same 0

(* ------------------------------------------------------------------ *)
(* JSON *)

let to_json t =
  let pairs = ref [] in
  Array.iteri
    (fun i n -> if n > 0 then pairs := Json.Arr [ Json.Int i; Json.Int n ] :: !pairs)
    t.buckets;
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("sum", Json.Int t.sum);
      ("min", Json.Int (min_value t));
      ("max", Json.Int (max_value t));
      ("buckets", Json.Arr (List.rev !pairs));
    ]

let of_json j =
  let int key = Option.bind (Json.member key j) Json.to_int in
  match (int "count", int "sum", int "min", int "max", Json.member "buckets" j)
  with
  | Some count, Some sum, Some min_v, Some max_v, Some (Json.Arr pairs) ->
    let t = create () in
    let ok =
      List.for_all
        (function
          | Json.Arr [ i; n ] -> (
            match (Json.to_int i, Json.to_int n) with
            | Some i, Some n when i >= 0 && n >= 0 ->
              ensure t i;
              t.buckets.(i) <- t.buckets.(i) + n;
              true
            | _ -> false)
          | _ -> false)
        pairs
    in
    if not ok then None
    else begin
      t.count <- count;
      t.sum <- sum;
      if count > 0 then begin
        t.min_v <- min_v;
        t.max_v <- max_v
      end;
      Some t
    end
  | _ -> None

let summary_json t =
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("sum", Json.Int t.sum);
      ("min", Json.Int (min_value t));
      ("max", Json.Int (max_value t));
      ("mean", Json.Float (mean t));
      ("p50", Json.Int (quantile t 0.5));
      ("p90", Json.Int (quantile t 0.9));
      ("p99", Json.Int (quantile t 0.99));
    ]

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf "n=%d mean=%.1f p50=%d p99=%d max=%d" t.count (mean t)
      (quantile t 0.5) (quantile t 0.99) (max_value t)
