(* Application-suite tests: every app builds under every applicable
   isolation mode, runs without faulting under the kernel, and
   actually does its job on the synthetic sensor traces. *)

module Aft = Amulet_aft.Aft
module Os = Amulet_os
module Apps = Amulet_apps.Suite
module Iso = Amulet_cc.Isolation
module M = Amulet_mcu.Machine
module W = Amulet_mcu.Word

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let build_app ?(mode = Iso.Mpu_assisted) app =
  Aft.build ~mode [ Apps.spec_for mode app ]

let kernel ?(scenario = Os.Sensors.Walking) ?seed fw =
  Os.Kernel.create ~scenario ?seed fw

let global k app sym =
  let addr =
    Amulet_link.Image.symbol k.Os.Kernel.fw.Aft.fw_image (app ^ "$" ^ sym)
  in
  W.to_signed W.W16 (M.mem_checked_read k.Os.Kernel.machine W.W16 addr)

let assert_no_faults k name =
  let app = Os.Kernel.app_by_name k name in
  (match app.Os.Kernel.last_fault with
  | Some f -> Alcotest.failf "%s faulted: %s" name f
  | None -> ());
  check_bool (name ^ " enabled") true app.Os.Kernel.enabled

(* Every app compiles and survives a minute of its workload in every
   isolation mode. *)
let test_matrix () =
  List.iter
    (fun (app : Apps.app) ->
      List.iter
        (fun mode ->
          let fw = build_app ~mode app in
          let k = kernel fw in
          let _ = Os.Kernel.run_for_ms k 15_000 in
          assert_no_faults k app.Apps.name)
        Iso.all)
    Apps.platform_apps

let test_clock_counts_seconds () =
  let fw = build_app (Apps.find "clock") in
  let k = kernel fw in
  let _ = Os.Kernel.run_for_ms k 61_500 in
  check_int "minute rolled over" 1 (global k "clock" "minutes");
  Alcotest.(check string) "display face" "00:01" (Os.Kernel.display_line k 0)

let test_pedometer_counts_steps () =
  let fw = build_app (Apps.find "pedometer") in
  let k = kernel ~scenario:Os.Sensors.Walking fw in
  let _ = Os.Kernel.run_for_ms k 30_000 in
  let steps = global k "pedometer" "steps" in
  (* ~1.9 Hz step frequency for 30 s: expect roughly 30-60 detections *)
  check_bool
    (Printf.sprintf "step count plausible (%d)" steps)
    true
    (steps > 15 && steps < 80)

let test_pedometer_idle_when_resting () =
  let fw = build_app (Apps.find "pedometer") in
  let k = kernel ~scenario:Os.Sensors.Resting fw in
  let _ = Os.Kernel.run_for_ms k 30_000 in
  let steps = global k "pedometer" "steps" in
  check_bool (Printf.sprintf "few rest steps (%d)" steps) true (steps < 5)

let test_fall_detection_fires () =
  let fw = build_app (Apps.find "fall_detection") in
  let k = kernel ~scenario:(Os.Sensors.Fall_at 5_000) fw in
  let _ = Os.Kernel.run_for_ms k 10_000 in
  check_bool "fall detected" true (global k "fall_detection" "falls" >= 1);
  Alcotest.(check string) "alert shown" "FALL" (Os.Kernel.display_line k 0)

let test_fall_detection_quiet_on_walk () =
  let fw = build_app (Apps.find "fall_detection") in
  let k = kernel ~scenario:Os.Sensors.Walking fw in
  let _ = Os.Kernel.run_for_ms k 20_000 in
  check_int "no false alarm" 0 (global k "fall_detection" "falls")

let test_heart_rate_reports () =
  let fw = build_app (Apps.find "heart_rate") in
  let k = kernel ~scenario:Os.Sensors.Resting fw in
  let _ = Os.Kernel.run_for_ms k 11_000 in
  let bpm = global k "heart_rate" "bpm" in
  check_bool (Printf.sprintf "bpm plausible (%d)" bpm) true
    (bpm > 30 && bpm < 220)

let test_hr_log_appends () =
  let fw = build_app (Apps.find "hr_log") in
  let k = kernel fw in
  let _ = Os.Kernel.run_for_ms k 35_000 in
  check_int "three records" 3 (global k "hr_log" "logged");
  check_int "4 bytes each" 12 (String.length (Os.Kernel.log_contents k))

let test_rest_classifier () =
  let fw = build_app (Apps.find "rest") in
  let k = kernel ~scenario:Os.Sensors.Resting fw in
  let _ = Os.Kernel.run_for_ms k 185_000 in
  let minutes = global k "rest" "rest_minutes" in
  check_bool
    (Printf.sprintf "rest minutes counted (%d)" minutes)
    true (minutes >= 2)

let test_temperature_average () =
  let fw = build_app (Apps.find "temperature") in
  let k = kernel fw in
  let _ = Os.Kernel.run_for_ms k 40_000 in
  let tmax = global k "temperature" "tmax" in
  let tmin = global k "temperature" "tmin" in
  check_bool "sane skin temperature range" true
    (tmin > 250 && tmax < 420 && tmin <= tmax)

let test_battery_meter_display () =
  let fw = build_app (Apps.find "battery_meter") in
  let k = kernel fw in
  let _ = Os.Kernel.run_for_ms k 61_000 in
  let line = Os.Kernel.display_line k 1 in
  check_bool
    (Printf.sprintf "battery line %S" line)
    true
    (String.length line = 7 && String.sub line 0 4 = "Bat ")

(* Benchmark apps: a button event triggers a measured run. *)
let post_button k ~app ~arg =
  Os.Kernel.post k ~delay_ms:1 ~app Os.Event.(Button arg) ~arg;
  let _ = Os.Kernel.run_for_ms k 10 in
  ()

let test_quicksort_sorts_all_modes () =
  List.iter
    (fun mode ->
      let app = Apps.find "quicksort" in
      let fw = build_app ~mode app in
      let k = kernel fw in
      let _ = Os.Kernel.run_for_ms k 5 in
      post_button k ~app:0 ~arg:1;
      assert_no_faults k "quicksort";
      check_int (Iso.name mode ^ " sorted") 1 (global k "quicksort" "sorted_ok"))
    Iso.all

let test_quicksort_deterministic_across_modes () =
  (* the sorted array must be identical across modes (same PRNG) *)
  let snapshot mode =
    let app = Apps.find "quicksort" in
    let fw = build_app ~mode app in
    let k = kernel fw in
    let _ = Os.Kernel.run_for_ms k 5 in
    post_button k ~app:0 ~arg:1;
    let base =
      Amulet_link.Image.symbol k.Os.Kernel.fw.Aft.fw_image "quicksort$data"
    in
    List.init Amulet_apps.Bench_sources.quicksort_elems (fun i ->
        M.mem_checked_read k.Os.Kernel.machine W.W16 (base + (2 * i)))
  in
  let reference = snapshot Iso.No_isolation in
  List.iter
    (fun mode ->
      Alcotest.(check (list int))
        (Iso.name mode ^ " same result")
        reference (snapshot mode))
    [ Iso.Feature_limited; Iso.Software_only; Iso.Mpu_assisted ]

let test_activity_cases_run () =
  List.iter
    (fun mode ->
      let app = Apps.find "activity" in
      let fw = build_app ~mode app in
      let k = kernel ~scenario:Os.Sensors.Walking fw in
      let _ = Os.Kernel.run_for_ms k 5 in
      post_button k ~app:0 ~arg:1;
      post_button k ~app:0 ~arg:2;
      assert_no_faults k "activity")
    Iso.all

let test_synthetic_runs () =
  List.iter
    (fun mode ->
      let app = Apps.find "synthetic" in
      let fw = build_app ~mode app in
      let k = kernel fw in
      let _ = Os.Kernel.run_for_ms k 5 in
      post_button k ~app:0 ~arg:1;
      post_button k ~app:0 ~arg:2;
      assert_no_faults k "synthetic")
    Iso.all

(* The whole nine-app suite coexists in one firmware image. *)
let test_full_suite_one_image () =
  List.iter
    (fun mode ->
      let specs = List.map (Apps.spec_for mode) Apps.platform_apps in
      let fw = Aft.build ~mode specs in
      let k = kernel ~scenario:Os.Sensors.Daily_mix fw in
      let _ = Os.Kernel.run_for_ms k 10_000 in
      List.iter
        (fun (a : Apps.app) -> assert_no_faults k a.Apps.name)
        Apps.platform_apps)
    [ Iso.Feature_limited; Iso.Software_only; Iso.Mpu_assisted ]

let quick name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "apps"
    [
      ( "matrix",
        [
          quick "all apps x all modes" test_matrix;
          quick "nine apps, one image" test_full_suite_one_image;
        ] );
      ( "behaviour",
        [
          quick "clock" test_clock_counts_seconds;
          quick "pedometer walking" test_pedometer_counts_steps;
          quick "pedometer resting" test_pedometer_idle_when_resting;
          quick "fall detection fires" test_fall_detection_fires;
          quick "fall detection quiet" test_fall_detection_quiet_on_walk;
          quick "heart rate" test_heart_rate_reports;
          quick "hr log" test_hr_log_appends;
          quick "rest classifier" test_rest_classifier;
          quick "temperature" test_temperature_average;
          quick "battery meter" test_battery_meter_display;
        ] );
      ( "benchmarks",
        [
          quick "quicksort all modes" test_quicksort_sorts_all_modes;
          quick "quicksort deterministic" test_quicksort_deterministic_across_modes;
          quick "activity cases" test_activity_cases_run;
          quick "synthetic" test_synthetic_runs;
        ] );
    ]
