test/support/harness.ml: Alcotest Amulet_cc Amulet_link Amulet_mcu Printf
