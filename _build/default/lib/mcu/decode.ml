open Opcode

exception Illegal of int

let op2_of_code = function
  | 0x4 -> MOV | 0x5 -> ADD | 0x6 -> ADDC | 0x7 -> SUBC | 0x8 -> SUB
  | 0x9 -> CMP | 0xA -> DADD | 0xB -> BIT | 0xC -> BIC | 0xD -> BIS
  | 0xE -> XOR | 0xF -> AND
  | c -> raise (Illegal c)

let op1_of_code = function
  | 0 -> RRC | 1 -> SWPB | 2 -> RRA | 3 -> SXT | 4 -> PUSH | 5 -> CALL
  | c -> raise (Illegal c)

let cond_of_code = function
  | 0 -> JNE | 1 -> JEQ | 2 -> JNC | 3 -> JC | 4 -> JN | 5 -> JGE
  | 6 -> JL | _ -> JMP

let signed16 w = if w land 0x8000 <> 0 then w - 0x10000 else w

(* Decode the source field.  Returns the operand and whether an
   extension word was consumed. *)
let decode_src width ~reg ~abits ~ext =
  match (reg, abits) with
  | 3, 0 -> (S_immediate 0, false)
  | 3, 1 -> (S_immediate 1, false)
  | 3, 2 -> (S_immediate 2, false)
  | 3, 3 -> (S_immediate (Word.mask width), false)
  | 2, 2 -> (S_immediate 4, false)
  | 2, 3 -> (S_immediate 8, false)
  | 2, 1 -> (S_absolute (ext ()), true)
  | 0, 3 -> (S_immediate (ext ()), true)
  | r, 0 -> (S_reg r, false)
  | r, 1 -> (S_indexed (r, signed16 (ext ())), true)
  | r, 2 -> (S_indirect r, false)
  | r, _ -> (S_indirect_inc r, false)

let decode_dst ~reg ~adbit ~ext =
  match (reg, adbit) with
  | r, 0 -> (D_reg r, false)
  | 2, _ -> (D_absolute (ext ()), true)
  | r, _ -> (D_indexed (r, signed16 (ext ())), true)

let decode ~fetch ~addr =
  let word0 = fetch addr in
  let next = ref (addr + 2) in
  let ext () =
    let w = fetch !next in
    next := !next + 2;
    w
  in
  let instr =
    if word0 land 0xE000 = 0x2000 then
      (* Format III: jump *)
      let cond = cond_of_code ((word0 lsr 10) land 0x7) in
      let off = word0 land 0x3FF in
      let off = if off land 0x200 <> 0 then off - 0x400 else off in
      Jump (cond, off)
    else if word0 land 0xFC00 = 0x1000 then
      (* Format II: single operand *)
      if word0 land 0xFFC0 = 0x1300 then Reti
      else
        let op = op1_of_code ((word0 lsr 7) land 0x7) in
        let width = if word0 land 0x40 <> 0 then Word.W8 else Word.W16 in
        let reg = word0 land 0xF and abits = (word0 lsr 4) land 0x3 in
        let src, _ = decode_src width ~reg ~abits ~ext in
        Fmt2 (op, width, src)
    else if word0 lsr 12 >= 0x4 then
      (* Format I: two operands *)
      let op = op2_of_code (word0 lsr 12) in
      let width = if word0 land 0x40 <> 0 then Word.W8 else Word.W16 in
      let sreg = (word0 lsr 8) land 0xF in
      let abits = (word0 lsr 4) land 0x3 in
      let dreg = word0 land 0xF in
      let adbit = (word0 lsr 7) land 0x1 in
      let src, _ = decode_src width ~reg:sreg ~abits ~ext in
      let dst, _ = decode_dst ~reg:dreg ~adbit ~ext in
      Fmt1 (op, width, src, dst)
    else raise (Illegal word0)
  in
  (instr, !next - addr)

let decode_words words =
  let arr = Array.of_list words in
  let fetch a = arr.(a / 2) in
  decode ~fetch ~addr:0
