lib/link/asm.ml: Amulet_mcu Format String
