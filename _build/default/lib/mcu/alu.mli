(** Arithmetic/logic core with MSP430 flag semantics. *)

type flags = { c : bool; z : bool; n : bool; v : bool }

val fmt1 :
  Opcode.op2 ->
  Word.width ->
  carry_in:bool ->
  src:int ->
  dst:int ->
  int * flags option
(** [fmt1 op w ~carry_in ~src ~dst] computes the result value and, for
    flag-setting operations, the new C/Z/N/V flags.  [None] for MOV,
    BIC and BIS.  The result must still be written back by the caller
    unless {!Opcode.writes_back} is false. *)

val rrc : Word.width -> carry_in:bool -> int -> int * flags
val rra : Word.width -> int -> int * flags
val sxt : int -> int * flags
(** SXT is word-only: sign-extends bits 7..0 into 16 bits. *)
