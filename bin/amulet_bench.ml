(* amulet_bench — statistical gateheavy benchmark runner.

   Runs the per-mode benchmark with warmup + N trials, prints the
   median/MAD table with dispatch-latency percentiles and energy per
   dispatch, optionally writes a schema-v2 BENCH_*.json snapshot, and
   optionally compares against a baseline snapshot (schema 1 or 2)
   with noise-aware thresholds, exiting non-zero on regression. *)

module Iso = Amulet_cc.Isolation
module Schema = Amulet_bench_core.Schema
module Stats = Amulet_bench_core.Stats
module Runner = Amulet_bench_core.Runner
open Cmdliner

let read_baseline path =
  match Schema.read_file path with
  | Ok doc -> doc
  | Error msg ->
      Format.eprintf "amulet_bench: cannot read %s: %s@." path msg;
      if not (Sys.file_exists path) then
        Format.eprintf
          "hint: record a baseline first with: amulet_bench run --quick -o %s@."
          path;
      exit 2

let compare_and_report ~path ~current ~baseline ~threshold ~rate_threshold =
  let verdicts =
    Schema.compare_docs ~current ~baseline ~det_threshold_pct:threshold
      ~rate_threshold_pct:rate_threshold
  in
  let skipped = Schema.missing_in_baseline ~current ~baseline in
  if verdicts = [] then begin
    Format.eprintf
      "amulet_bench: %s (schema %d) has no metric in common with the current \
       run — nothing was compared.@."
      path baseline.Schema.d_schema;
    List.iter (Format.eprintf "  not in baseline: %s@.") skipped;
    if baseline.Schema.d_schema = 1 then
      Format.eprintf
        "hint: schema-1 baselines carry only per-mode throughput and whole-run \
         cycles; re-record with the current amulet_bench to gate histograms \
         and energy.@.";
    exit 2
  end;
  Format.printf "%a" Schema.pp_verdicts verdicts;
  if skipped <> [] then begin
    Format.printf "not gated (absent from baseline): %s@."
      (String.concat ", " skipped);
    if baseline.Schema.d_schema = 1 then
      Format.printf
        "note: baseline is schema 1 (no histograms or energy); re-record it \
         to gate those metrics.@."
  end;
  if Schema.regressed verdicts then begin
    Format.printf "REGRESSION: at least one gated metric exceeded %.1f%%@."
      threshold;
    true
  end
  else begin
    Format.printf "no regression (deterministic threshold %.1f%%%s)@."
      threshold
      (match rate_threshold with
      | Some r -> Format.asprintf ", rate threshold %.1f%%" r
      | None -> ", throughput informational");
    false
  end

let parse_modes = function
  | [] -> Ok Iso.all
  | names ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | n :: rest -> (
            match Iso.of_string n with
            | Some m -> go (m :: acc) rest
            | None -> Error n)
      in
      go [] names

let run_cmd quick trials dispatches warmup modes out compare threshold
    rate_threshold =
  match parse_modes modes with
  | Error bad ->
      Format.eprintf "amulet_bench: unknown mode %S (known: %s)@." bad
        (String.concat ", " (List.map Iso.name Iso.all));
      exit 2
  | Ok modes ->
      let doc, _runs =
        Runner.run ~modes ?trials ?dispatches ?warmup ~quick ()
      in
      Format.printf "%a" Runner.pp_doc doc;
      (match out with
      | Some path ->
          Schema.write_file path doc;
          Format.printf "wrote %s (schema %d)@." path doc.Schema.d_schema
      | None -> ());
      let regressed =
        match compare with
        | None -> false
        | Some path ->
            let baseline = read_baseline path in
            Format.printf "@.compare vs %s (schema %d):@." path
              baseline.Schema.d_schema;
            compare_and_report ~path ~current:doc ~baseline ~threshold
              ~rate_threshold
      in
      if regressed then exit 1

(* speedup: gate the hooks-off (predecoded fast path) throughput
   against a committed baseline snapshot.  The floor is a ratio, not a
   noise threshold: the fast path must stay at least MIN_RATIO times
   faster than the baseline's throughput for the same mode.  A
   pre-predecode baseline carries only armed rows, so the baseline row
   is the mode's hooks-off row when present and the armed row
   otherwise. *)

let find_row doc name =
  List.find_opt
    (fun r -> String.equal r.Schema.m_mode name)
    doc.Schema.d_modes

let row_median r = r.Schema.m_rate.Schema.r_summary.Stats.median

let speedup_cmd baseline_path min_ratio quick trials dispatches warmup modes
    out =
  let modes =
    match modes with
    | [] -> [ Iso.No_isolation ]
    | names -> (
        match parse_modes names with
        | Ok ms -> ms
        | Error bad ->
            Format.eprintf "amulet_bench: unknown mode %S (known: %s)@." bad
              (String.concat ", " (List.map Iso.name Iso.all));
            exit 2)
  in
  let baseline = read_baseline baseline_path in
  let doc, _runs =
    Runner.run_speedup ~modes ?trials ?dispatches ?warmup ~quick ()
  in
  Format.printf "%a" Runner.pp_doc doc;
  (match out with
  | Some path ->
      Schema.write_file path doc;
      Format.printf "wrote %s (schema %d)@." path doc.Schema.d_schema
  | None -> ());
  let ok_mode mode =
    let name = Iso.name mode in
    let fast_name = name ^ Runner.hooks_off_suffix in
    let current =
      match find_row doc fast_name with
      | Some r -> row_median r
      | None ->
          Format.eprintf "amulet_bench: run produced no %S row@." fast_name;
          exit 2
    in
    let base_row =
      match find_row baseline fast_name with
      | Some r -> r
      | None -> (
          match find_row baseline name with
          | Some r -> r
          | None ->
              Format.eprintf "amulet_bench: baseline %s has no %S or %S row@."
                baseline_path fast_name name;
              exit 2)
    in
    let base = row_median base_row in
    let ratio = if base > 0.0 then current /. base else infinity in
    Format.printf
      "%-28s %12.4e cyc/s  vs baseline %-24s %12.4e  ->  %6.1fx (floor %.1fx)@."
      fast_name current base_row.Schema.m_mode base ratio min_ratio;
    ratio >= min_ratio
  in
  let verdicts = List.map ok_mode modes in
  if List.exists not verdicts then begin
    Format.printf
      "SPEEDUP FLOOR VIOLATED: hooks-off throughput under %.1fx the baseline@."
      min_ratio;
    exit 1
  end
  else Format.printf "speedup floor holds (>= %.1fx baseline)@." min_ratio

let diff_cmd new_path base_path threshold rate_threshold =
  let current = read_baseline new_path in
  let baseline = read_baseline base_path in
  if
    compare_and_report ~path:base_path ~current ~baseline ~threshold
      ~rate_threshold
  then exit 1

(* options *)

let quick =
  Arg.(
    value & flag
    & info [ "quick" ] ~doc:"Quick run: 3 trials x 300 dispatches per mode.")

let trials =
  Arg.(
    value
    & opt (some int) None
    & info [ "trials" ] ~docv:"N" ~doc:"Trials per mode (override).")

let dispatches =
  Arg.(
    value
    & opt (some int) None
    & info [ "dispatches" ] ~docv:"N" ~doc:"Dispatches per trial (override).")

let warmup =
  Arg.(
    value
    & opt (some int) None
    & info [ "warmup" ] ~docv:"N" ~doc:"Warmup dispatches before measuring.")

let modes =
  Arg.(
    value & opt_all string []
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:"Isolation mode to benchmark (repeatable; default all).")

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Write the schema-v2 snapshot JSON to $(docv).")

let compare_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "compare" ] ~docv:"BASELINE"
        ~doc:
          "Compare against a baseline BENCH_*.json (schema 1 or 2); exit 1 \
           on regression.")

let threshold =
  Arg.(
    value & opt float 10.0
    & info [ "threshold" ] ~docv:"PCT"
        ~doc:
          "Gating threshold for deterministic simulated metrics \
           (cycles/dispatch, latency p99, energy, gate costs).")

let rate_threshold =
  Arg.(
    value
    & opt (some float) None
    & info [ "rate-threshold" ] ~docv:"PCT"
        ~doc:
          "Also gate host throughput at $(docv) percent; a drop must \
           additionally exceed 3 robust sigmas of trial noise to count. \
           Without this flag throughput rows are informational.")

let run_term =
  Term.(
    const run_cmd $ quick $ trials $ dispatches $ warmup $ modes $ out
    $ compare_opt $ threshold $ rate_threshold)

let run_info =
  Cmd.info "run"
    ~doc:"Run the statistical gateheavy benchmark (default command)."

let diff_term =
  let new_path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NEW" ~doc:"Current snapshot JSON.")
  in
  let base_path =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline snapshot JSON (schema 1 or 2).")
  in
  Term.(const diff_cmd $ new_path $ base_path $ threshold $ rate_threshold)

let diff_info =
  Cmd.info "diff"
    ~doc:"Compare two existing snapshots without running the benchmark."

let speedup_term =
  let baseline_pos =
    Arg.(
      required
      & opt (some string) None
      & info [ "baseline" ] ~docv:"BASELINE"
          ~doc:
            "Committed baseline BENCH_*.json; the hooks-off run must beat \
             its per-mode throughput by the floor ratio.")
  in
  let min_ratio =
    Arg.(
      value & opt float 5.0
      & info [ "min-ratio" ] ~docv:"X"
          ~doc:"Fail (exit 1) if hooks-off throughput < $(docv) times the \
                baseline's.")
  in
  Term.(
    const speedup_cmd $ baseline_pos $ min_ratio $ quick $ trials $ dispatches
    $ warmup $ modes $ out)

let speedup_info =
  Cmd.info "speedup"
    ~doc:
      "Run the hooks-off (predecoded fast path) benchmark and enforce the \
       speedup floor against a committed baseline."

let () =
  let default = run_term in
  let info =
    Cmd.info "amulet_bench" ~version:"%%VERSION%%"
      ~doc:
        "Statistical benchmark runner with schema-v2 snapshots and \
         noise-aware regression gating."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            Cmd.v run_info run_term;
            Cmd.v diff_info diff_term;
            Cmd.v speedup_info speedup_term;
          ]))
