module M = Amulet_mcu.Machine
module R = Amulet_mcu.Registers
module Map = Amulet_mcu.Memory_map
module Aft = Amulet_aft.Aft
module Iso = Amulet_cc.Isolation
module Obs = Amulet_obs.Obs
module Forensics = Amulet_obs.Forensics
module Profile = Amulet_obs.Profile

type fault_policy = Disable | Restart of int

type outcome = Ok | No_handler | App_fault of string

type dispatch_record = {
  dr_app : int;
  dr_kind : Event.kind;
  dr_cycles : int;
  dr_latency : int;
  dr_reads : int;
  dr_writes : int;
  dr_api_calls : int;
  dr_outcome : outcome;
}

type handler_stats = {
  hs_count : int;
  hs_cycles : int;
  hs_reads : int;
  hs_writes : int;
  hs_api_calls : int;
}

type app_state = {
  build : Aft.app_build;
  mutable enabled : bool;
  mutable fault_count : int;
  mutable restarts : int;
  mutable last_fault : string option;
  mutable last_forensics : string option;
  mutable subscriptions : (Event.sensor * int) list;
  mutable timers : (int * int) list;
  certified_gates : string list;
      (* services whose gate-pointer validation the static certifier
         proved redundant (the image's [cert.gates.<app>] note) *)
  metrics : Obs.Metrics.t;
      (* keys: ["handler"; h] and ["state"; state; h] (ARP view) *)
  state_addr : int option;
      (* address of the app's "state" global, when it declares one *)
}

type t = {
  fw : Aft.firmware;
  machine : M.t;
  api : Api.t;
  queue : Event_queue.t;
  apps : app_state array;
  policy : fault_policy;
  obs : Obs.t option;
  mutable now : int;
  mutable vbase : int;
  mutable dispatches : int;
  mutable current_app : int;
  os_code_sum : int;
      (* checksum of the OS code region taken right after boot; the
         campaign oracle's kernel-integrity reference *)
}

let handler_fuel = 20_000_000

(* FNV-1a over the OS code bytes: cheap, order-sensitive, and good
   enough to catch any stray write into the kernel. *)
let region_checksum machine ~base ~size =
  let h = ref 0x811C9DC5 in
  for a = base to base + size - 1 do
    let b = M.mem_checked_read machine Amulet_mcu.Word.W8 a in
    h := (!h lxor b) * 0x01000193 land 0x3FFFFFFF
  done;
  !h

let now_ms t = t.now / Event.cycles_per_ms

(* Virtual-time position of the machine's cycle counter: trace records
   all share the virtual timeline (idle gaps between dispatches show
   up as gaps in Perfetto, not as overlapping spans). *)
let vnow t = t.vbase + M.cycles t.machine

let with_profile t f =
  match t.obs with
  | Some obs -> ( match Obs.profile obs with Some p -> f p | None -> ())
  | None -> ()

let queue_gauge t =
  match t.obs with
  | Some obs ->
    Obs.counter obs ~name:"queue_depth" ~ts:t.now (Event_queue.size t.queue)
  | None -> ()

let post t ~delay_ms ~app kind ~arg =
  Event_queue.push t.queue
    ~at:(t.now + Event.ms_to_cycles delay_ms)
    ~app kind ~arg;
  queue_gauge t

(* Validation bounds the OS applies to app-supplied pointers: in the
   separate-stack modes an app may only hand out addresses inside its
   own data segment; in the shared-stack modes its locals live on the
   SRAM stack, so that region is acceptable too. *)
let valid_ranges t (app : app_state) =
  let lay = app.build.Aft.ab_layout in
  let data = (lay.Amulet_aft.Layout.data_base, lay.Amulet_aft.Layout.data_limit) in
  if Iso.separate_stacks t.fw.Aft.fw_mode then [ data ]
  else (* shared stack: the app's locals live in SRAM *)
    [ (Map.sram_start, Map.sram_limit); data ]

let apply_effects t app effects =
  List.iter
    (fun e ->
      match e with
      | Api.Set_timer { id; period_ms } ->
        app.timers <- (id, period_ms) :: app.timers;
        post t ~delay_ms:period_ms ~app:app.build.Aft.ab_layout.Amulet_aft.Layout.index
          (Event.Timer_fired id) ~arg:id
      | Api.Cancel_timer id ->
        app.timers <- List.remove_assoc id app.timers
      | Api.Subscribe { sensor; rate_hz } ->
        if not (List.mem_assoc sensor app.subscriptions) then begin
          app.subscriptions <- (sensor, rate_hz) :: app.subscriptions;
          post t ~delay_ms:(1000 / rate_hz)
            ~app:app.build.Aft.ab_layout.Amulet_aft.Layout.index
            (Event.Sensor_sample sensor)
            ~arg:(Event.sensor_to_int sensor)
        end
      | Api.Unsubscribe sensor ->
        app.subscriptions <- List.remove_assoc sensor app.subscriptions
      | Api.Pointer_fault { service; addr; len } ->
        app.last_fault <-
          Some
            (Printf.sprintf "pointer %04X+%d rejected by %s" addr len service))
    effects

let create ?(policy = Disable) ?(scenario = Sensors.Daily_mix) ?seed ?obs fw =
  let machine = M.create () in
  (* attach before boot so the profiler sees every executed cycle and
     its totals equal [Machine.cycles] exactly *)
  (match obs with Some o -> Obs.attach o machine | None -> ());
  Amulet_link.Image.load fw.Aft.fw_image machine;
  M.reset machine;
  (match M.run ~fuel:100 machine with
  | M.Halted -> ()
  | other ->
    failwith
      (Format.asprintf "kernel boot failed: %a" M.pp_stop_reason other));
  let api = Api.create (Sensors.create ?seed scenario) in
  let apps =
    Array.of_list
      (List.map
         (fun build ->
           let state_sym =
             Amulet_cc.Isolation.mangle ~prefix:build.Aft.ab_name "state"
           in
           {
             build;
             enabled = true;
             fault_count = 0;
             restarts = 0;
             last_fault = None;
             last_forensics = None;
             subscriptions = [];
             timers = [];
             certified_gates =
               (match
                  Amulet_link.Image.note fw.Aft.fw_image
                    ("cert.gates." ^ build.Aft.ab_name)
                with
               | Some s -> String.split_on_char ',' s
               | None -> []);
             metrics = Obs.Metrics.create ();
             state_addr =
               (if Amulet_link.Image.has_symbol fw.Aft.fw_image state_sym then
                  Some (Amulet_link.Image.symbol fw.Aft.fw_image state_sym)
                else None);
           })
         fw.Aft.fw_apps)
  in
  let t =
    {
      fw; machine; api;
      queue = Event_queue.create ();
      apps; policy; obs;
      now = M.cycles machine;
      vbase = 0;
      dispatches = 0;
      current_app = -1;
      os_code_sum =
        region_checksum machine ~base:fw.Aft.fw_layout.Amulet_aft.Layout.os_code_base
          ~size:fw.Aft.fw_layout.Amulet_aft.Layout.os_code_size;
    }
  in
  machine.M.host_call <-
    (fun m svc ->
      if t.current_app >= 0 then begin
        let app = t.apps.(t.current_app) in
        (match t.obs with
        | Some obs ->
          let name =
            Option.value ~default:(Printf.sprintf "svc%d" svc)
              (Api.service_name svc)
          in
          Obs.instant obs ~cat:"api" ~tid:t.current_app ~name ~ts:(vnow t) ()
        | None -> ());
        let effects =
          Api.dispatch t.api m
            ~certified:(fun name -> List.mem name app.certified_gates)
            ~valid:(valid_ranges t app) ~now_ms:(now_ms t) ~svc
        in
        apply_effects t app effects
      end);
  (* every app starts with an init event *)
  Array.iteri
    (fun i _ -> post t ~delay_ms:0 ~app:i Event.Init ~arg:0)
    apps;
  t

let handle_fault t (app : app_state) msg =
  app.fault_count <- app.fault_count + 1;
  app.last_fault <- Some msg;
  (* An MPU violation raises a PUC on real silicon, which clears the
     MPU configuration; the next dispatch reprograms it. *)
  Amulet_mcu.Mpu.reset t.machine.M.mpu;
  let index = app.build.Aft.ab_layout.Amulet_aft.Layout.index in
  match t.policy with
  | Disable ->
    app.enabled <- false;
    Event_queue.clear_app t.queue index
  | Restart limit ->
    if app.restarts >= limit then begin
      app.enabled <- false;
      Event_queue.clear_app t.queue index
    end
    else begin
      app.restarts <- app.restarts + 1;
      app.subscriptions <- [];
      app.timers <- [];
      Event_queue.clear_app t.queue index;
      post t ~delay_ms:1 ~app:index Event.Init ~arg:0
    end

let dispatch_event t (e : Event.t) =
  let app = t.apps.(e.Event.app) in
  let handler = Event.handler_name e.Event.kind in
  let no_handler =
    {
      dr_app = e.Event.app; dr_kind = e.Event.kind; dr_cycles = 0;
      dr_latency = 0; dr_reads = 0; dr_writes = 0; dr_api_calls = 0;
      dr_outcome = No_handler;
    }
  in
  if not app.enabled then no_handler
  else
    match Aft.handler_addr app.build handler with
    | None -> no_handler
    | Some haddr ->
      let m = t.machine in
      let regs = M.regs m in
      let state_before =
        Option.map (fun a -> M.mem_checked_read m Amulet_mcu.Word.W16 a)
          app.state_addr
      in
      let cycles0 = M.cycles m in
      let reads0 = m.M.stats.Amulet_mcu.Trace.data_reads in
      let writes0 = m.M.stats.Amulet_mcu.Trace.data_writes in
      let api0 = t.api.Api.calls in
      m.M.halted <- false;
      m.M.sw_fault <- None;
      R.set regs 12 e.Event.arg;
      R.set regs 15 haddr;
      R.set_pc regs app.build.Aft.ab_tramp;
      t.current_app <- e.Event.app;
      with_profile t (fun p ->
          Profile.set_context p ~app:app.build.Aft.ab_name ~handler);
      let stop = M.run ~fuel:handler_fuel m in
      with_profile t Profile.clear_context;
      t.current_app <- -1;
      let outcome =
        match stop with
        | M.Halted -> Ok
        | M.Sw_fault code ->
          App_fault (Printf.sprintf "software check fault %d" code)
        | M.Faulted f -> App_fault (Format.asprintf "%a" M.pp_fault f)
        | M.Out_of_fuel -> App_fault "runaway handler"
      in
      (match outcome with
      | App_fault msg ->
        (* forensics first: [handle_fault] resets the MPU, destroying
           the very configuration the dump must show *)
        (match t.obs with
        | Some obs ->
          let forensics =
            Forensics.report ~fw:t.fw ~ring:(Obs.ring obs) ~stop m
          in
          app.last_forensics <- Some forensics;
          Obs.instant obs ~cat:"kernel" ~tid:e.Event.app ~name:"fault"
            ~ts:(vnow t)
            ~args:
              [ ("message", Obs.Vstr msg); ("forensics", Obs.Vstr forensics) ]
            ()
        | None -> ());
        handle_fault t app msg
      | Ok | No_handler -> ());
      let record =
        {
          dr_app = e.Event.app;
          dr_kind = e.Event.kind;
          dr_cycles = M.cycles m - cycles0;
          dr_latency = 0;  (* queue wait is known at the pop site only *)
          dr_reads = m.M.stats.Amulet_mcu.Trace.data_reads - reads0;
          dr_writes = m.M.stats.Amulet_mcu.Trace.data_writes - writes0;
          dr_api_calls = t.api.Api.calls - api0;
          dr_outcome = outcome;
        }
      in
      let bump key =
        Obs.Metrics.bump app.metrics key ~count:1 ~cycles:record.dr_cycles
          ~reads:record.dr_reads ~writes:record.dr_writes
          ~api_calls:record.dr_api_calls
      in
      bump [ "handler"; handler ];
      (* ARP-view accounting: attribute the dispatch to the state the
         app's machine was in when the event arrived *)
      (match state_before with
      | Some st -> bump [ "state"; string_of_int st; handler ]
      | None -> ());
      (match t.obs with
      | Some obs ->
        let outcome_str =
          match outcome with
          | Ok -> "ok"
          | No_handler -> "no_handler"
          | App_fault msg -> "fault: " ^ msg
        in
        let args =
          [
            ("app", Obs.Vstr app.build.Aft.ab_name);
            ("kind", Obs.Vstr (Event.kind_name e.Event.kind));
            ("outcome", Obs.Vstr outcome_str);
            ("reads", Obs.Vint record.dr_reads);
            ("writes", Obs.Vint record.dr_writes);
            ("api_calls", Obs.Vint record.dr_api_calls);
          ]
          @
          match state_before with
          | Some st -> [ ("state", Obs.Vint st) ]
          | None -> []
        in
        Obs.span obs ~cat:"dispatch" ~tid:e.Event.app ~args ~name:handler
          ~ts:t.now ~dur:record.dr_cycles ()
      | None -> ());
      t.dispatches <- t.dispatches + 1;
      record

(* Re-arm periodic sources after delivering one of their events. *)
let rearm t (e : Event.t) =
  let app = t.apps.(e.Event.app) in
  if app.enabled then
    match e.Event.kind with
    | Event.Sensor_sample sensor -> (
      match List.assoc_opt sensor app.subscriptions with
      | Some rate_hz ->
        post t ~delay_ms:(max 1 (1000 / rate_hz)) ~app:e.Event.app
          e.Event.kind ~arg:e.Event.arg
      | None -> ())
    | Event.Timer_fired id -> (
      match List.assoc_opt id app.timers with
      | Some period_ms ->
        post t ~delay_ms:period_ms ~app:e.Event.app e.Event.kind ~arg:id
      | None -> ())
    | Event.Init | Event.Button _ | Event.Tick -> ()

let dispatch_next t =
  match Event_queue.pop t.queue with
  | None -> None
  | Some e ->
    (* how late the event runs relative to its scheduled time *)
    let latency = max 0 (t.now - e.Event.at) in
    (match t.obs with
    | Some obs ->
      Obs.counter obs ~name:"dispatch_latency_cycles" ~ts:t.now latency
    | None -> ());
    queue_gauge t;
    t.now <- max t.now e.Event.at;
    t.vbase <- t.now - M.cycles t.machine;
    let before = M.cycles t.machine in
    let record = dispatch_event t e in
    let elapsed = M.cycles t.machine - before in
    t.now <- t.now + elapsed;
    rearm t e;
    (* publish cumulative per-category cycle totals at every dispatch
       boundary: energy attribution becomes recoverable from the trace
       alone (no-op unless a profiler and a sink are armed) *)
    (match t.obs with
    | Some obs -> Obs.emit_profile_counters obs ~ts:t.now
    | None -> ());
    Some { record with dr_latency = latency }

let run_for_ms t ms =
  let deadline = t.now + Event.ms_to_cycles ms in
  let rec go acc =
    match Event_queue.peek t.queue with
    | Some e when e.Event.at <= deadline -> (
      match dispatch_next t with
      | Some r -> go (r :: acc)
      | None -> List.rev acc)
    | _ ->
      t.now <- deadline;
      List.rev acc
  in
  go []

let app_by_name t name =
  match
    Array.to_list t.apps
    |> List.find_opt (fun a -> a.build.Aft.ab_name = name)
  with
  | Some a -> a
  | None -> raise Not_found

let snapshot (c : Obs.Metrics.cell) =
  {
    hs_count = c.count;
    hs_cycles = c.cycles;
    hs_reads = c.reads;
    hs_writes = c.writes;
    hs_api_calls = c.api_calls;
  }

let handler_profile app handler =
  Option.map snapshot (Obs.Metrics.find app.metrics [ "handler"; handler ])

let handler_profiles app =
  Obs.Metrics.fold
    (fun key cell acc ->
      match key with
      | [ "handler"; h ] -> (h, snapshot cell) :: acc
      | _ -> acc)
    app.metrics []
  |> List.sort compare

let state_profile app =
  Obs.Metrics.fold
    (fun key cell acc ->
      match key with
      | [ "state"; st; h ] -> ((int_of_string st, h), snapshot cell) :: acc
      | _ -> acc)
    app.metrics []
  |> List.sort compare
let display_line t n = t.api.Api.display.(n land 3)
let log_contents t = Buffer.contents t.api.Api.log

let os_intact t =
  region_checksum t.machine
    ~base:t.fw.Aft.fw_layout.Amulet_aft.Layout.os_code_base
    ~size:t.fw.Aft.fw_layout.Amulet_aft.Layout.os_code_size
  = t.os_code_sum

(* Post-fault kernel-liveness probe: deliver one Button event to the
   app and confirm the kernel can still dispatch it cleanly.  Other
   queued events may be delivered on the way; the probe caps the
   number of dispatches so a runaway queue cannot hang it. *)
let liveness_probe ?(max_dispatches = 64) t ~app =
  if app < 0 || app >= Array.length t.apps then false
  else begin
    post t ~delay_ms:0 ~app (Event.Button 1) ~arg:1;
    let rec go budget =
      if budget = 0 then false
      else
        match dispatch_next t with
        | None -> false
        | Some r ->
          if r.dr_app = app && r.dr_kind = Event.Button 1 then (
            match r.dr_outcome with
            | Ok | No_handler -> t.apps.(app).enabled
            | App_fault _ -> false)
          else go (budget - 1)
    in
    go max_dispatches
  end

let unrecovered_faults t =
  Array.to_list t.apps
  |> List.filter_map (fun a ->
         if (not a.enabled) && a.fault_count > 0 then
           Some (a.build.Aft.ab_name, Option.value ~default:"" a.last_fault)
         else None)
