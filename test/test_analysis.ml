(* Range-analysis tests: which guards get elided, that elision never
   changes program results, and that provably-out-of-bounds accesses
   become compile errors instead of run-time faults. *)

module Cc = Amulet_cc
module H = Test_support.Harness

let compile ?analyze mode src = Cc.Driver.compile ~prefix:"prog" ~mode ?analyze src

let totals (cu : Cc.Driver.compiled) =
  List.fold_left
    (fun (c, e) (fi : Cc.Codegen.fn_info) ->
      ( c + fi.Cc.Codegen.fi_sites.Cc.Codegen.checked,
        e + fi.Cc.Codegen.fi_sites.Cc.Codegen.elided ))
    (0, 0) cu.Cc.Driver.infos

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

(* Both dereference sites use a masked index, so the analysis can
   bound the address without any help from the guards. *)
let masked_src =
  "int a[8];\n\
   int main() { int i; int s = 0;\n\
   for (i = 0; i < 20; i++) a[i & 7] = i;\n\
   for (i = 0; i < 20; i++) s += a[i & 7];\n\
   return s; }"

let masked_result = 318

let test_masked_sites_elided () =
  let cu =
    compile ~analyze:Amulet_analysis.Range.analyze Cc.Isolation.Software_only
      masked_src
  in
  let checked, elided = totals cu in
  Alcotest.(check int) "checked" 0 checked;
  Alcotest.(check int) "elided" 2 elided

let test_no_analyze_keeps_guards () =
  let cu = compile Cc.Isolation.Software_only masked_src in
  let checked, elided = totals cu in
  Alcotest.(check int) "elided" 0 elided;
  Alcotest.(check bool) "checked" true (checked >= 2)

(* Elision must not change what the program computes, in any mode. *)
let test_semantics_preserved () =
  List.iter
    (fun mode -> H.check_main ~mode ~expect:masked_result masked_src)
    Cc.Isolation.all

let test_proven_unsafe () =
  match
    H.build ~mode:Cc.Isolation.Software_only
      "int a[4];\nint main() { int i = 6; a[i] = 1; return 0; }"
  with
  | exception Cc.Srcloc.Error (_, msg) ->
    Alcotest.(check bool)
      ("diagnostic mentions provably out of bounds: " ^ msg)
      true
      (contains msg "provably out of bounds")
  | _ -> Alcotest.fail "expected a proven-unsafe compile error"

(* An index arriving through a parameter is unbounded: the analysis
   must keep the guard. *)
let test_param_index_still_checked () =
  let cu =
    compile ~analyze:Amulet_analysis.Range.analyze Cc.Isolation.Software_only
      "int a[8];\nint get(int i) { return a[i]; }\nint main() { return get(3); }"
  in
  let get =
    List.find
      (fun (fi : Cc.Codegen.fn_info) -> fi.Cc.Codegen.fi_name = "get")
      cu.Cc.Driver.infos
  in
  Alcotest.(check int) "checked" 1 get.Cc.Codegen.fi_sites.Cc.Codegen.checked;
  Alcotest.(check int) "elided" 0 get.Cc.Codegen.fi_sites.Cc.Codegen.elided

let () =
  Alcotest.run "analysis"
    [
      ( "elision",
        [
          Alcotest.test_case "masked sites elided" `Quick
            test_masked_sites_elided;
          Alcotest.test_case "no analysis keeps guards" `Quick
            test_no_analyze_keeps_guards;
          Alcotest.test_case "parameter index still checked" `Quick
            test_param_index_still_checked;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "semantics preserved" `Quick
            test_semantics_preserved;
          Alcotest.test_case "proven unsafe is a compile error" `Quick
            test_proven_unsafe;
        ] );
    ]
