lib/mcu/decode.mli: Opcode
