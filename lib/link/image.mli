(** Linked firmware image: binary chunks, symbol table, entry point. *)

type t = {
  chunks : (int * Bytes.t) list;  (** (base address, contents) *)
  symbols : (string * int) list;
  entry : int;
  notes : (string * string) list;
      (** free-form certification metadata attached after linking,
          e.g. ["cert.gates.<app>"] -> comma-separated service names *)
}

val symbol : t -> string -> int
(** @raise Not_found when the symbol is undefined. *)

val has_symbol : t -> string -> bool

val note : t -> string -> string option
(** Look up a metadata note by key. *)

val with_notes : t -> (string * string) list -> t

val load : t -> Amulet_mcu.Machine.t -> unit
(** Blit all chunks into machine memory and point the reset vector at
    the entry symbol.  Does not reset the machine. *)

val total_bytes : t -> int

val span : t -> string -> (int * int) option
(** [span t name] is the half-open address range [\[addr, next)] from
    the symbol to the next strictly-greater symbol in the same chunk
    (or the chunk end).  [None] when the symbol is undefined. *)

val nearest_symbol : t -> int -> (string * int) option
(** Greatest symbol at or below an address (skipping [..__end]
    markers) — used to name the code that owns a PC. *)

val pp_symbols : Format.formatter -> t -> unit
