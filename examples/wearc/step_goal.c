/* Step-goal tracker: counts steps from the accelerometer and buzzes
 * when the goal is reached.  Uses pointers freely -- which is exactly
 * what the paper's isolation methods make safe to allow. */

int goal = 200;
int steps = 0;
int reached = 0;
int window[4];
int above = 0;
int t = 0;
int last_step = 0;

/* Fixed trip count so the loop carries a static iteration bound --
 * a parameterised `n` would defeat the WCET certifier (the range
 * analysis is per-function and cannot see the call sites). */
int magnitude_peak(int *buf) {
  int i;
  int best = 0;
  for (i = 0; i < 4; i++)
    if (buf[i] > best) best = buf[i];
  return best;
}

void handle_init(int arg) { api_subscribe(0, 25); }

void handle_accel(int arg) {
  api_read_accel(window, 4);
  t += 1;
  int peak = magnitude_peak(window);
  if (!above && peak > 1250 && t - last_step > 8) {
    steps += 1;
    last_step = t;
    above = 1;
    if (!reached && steps >= goal) {
      reached = 1;
      api_buzz(500);
      api_display_write("goal!", 0);
    }
  }
  if (peak < 1100) above = 0;
}
