(** Work-stealing batch executor over OCaml domains.

    The fleet service, the attack campaign and the bench ablations all
    need the same thing: run thousands of independent jobs on a few
    domains, with dynamic load balancing (cells and devices vary by an
    order of magnitude in cost) and results that do not depend on how
    the work was scheduled.  Items are handed out in fixed-size
    batches from a shared atomic cursor — an idle worker steals the
    next unclaimed batch, so a domain stuck on an expensive item never
    leaves the others idle the way static round-robin partitioning
    (the campaign's previous scheme) did.

    Both entry points guarantee schedule-independence: {!map} writes
    each result into its item's slot, and {!fold_shards} returns one
    accumulator per worker for the caller to merge with an
    order-independent operation. *)

val default_jobs : unit -> int
(** The single jobs policy for every parallel driver in the tree:
    [min 8 (Domain.recommended_domain_count ())].  CLI [--jobs 0]
    means this. *)

type progress = done_:int -> total:int -> unit
(** Called under an internal mutex after each finished batch, from
    whichever worker finished it; [done_] counts completed items. *)

val map :
  ?jobs:int ->
  ?batch:int ->
  ?progress:progress ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [map f items] applies [f] to every item on [jobs] domains
    (including the calling one) and returns the results in item order
    — equal to [List.map f items] whenever [f] is pure, whatever the
    schedule.  [jobs <= 0] means {!default_jobs}, clamped to the item
    count; [jobs = 1] runs inline without spawning.  [batch] (default
    1) is the steal granularity.  An exception raised by [f] is
    re-raised in the caller. *)

val fold_shards :
  ?jobs:int ->
  ?batch:int ->
  ?progress:progress ->
  init:(unit -> 'acc) ->
  fold:('acc -> 'a -> 'acc) ->
  'a list ->
  'acc list
(** [fold_shards ~init ~fold items] gives each worker domain a fresh
    accumulator from [init ()] and folds the batches it steals into
    it; returns the per-worker shards (at least one, workers that
    stole nothing return [init ()]).  Which items land in which shard
    is schedule-dependent — the caller must combine shards with an
    associative {e and} commutative merge for the result to be
    deterministic ({!Amulet_obs.Hist.merge} is the model citizen). *)
