(** Cycle-exact isolation-cost profiler.

    Classifies every executed PC against the firmware's linker symbol
    ranges, splitting cycles into the paper's cost categories: app
    code, compiler-inserted bounds guards, OS gate crossings, MPU
    reconfiguration, and kernel/startup.  Fed from the machine's
    per-instruction event hook, its totals are exact: the sum over
    all categories equals the CPU's own cycle counter, and adding the
    host-charged service cycles reproduces [Machine.cycles] to the
    cycle. *)

type category = App_code | Guard | Os_gate | Mpu_config | Kernel

val categories : category list
val category_name : category -> string

val category_slug : category -> string
(** Stable machine-readable name ([app_code], [guard], [os_gate],
    [mpu_config], [kernel]) used in counter names and JSON schemas. *)

val category_of_slug : string -> category option

val counter_name : category -> string
(** [profile.<slug>.cycles] — the counter {!Obs.emit_profile_counters}
    publishes the category's cumulative cycle total under. *)

type t

val create : Amulet_aft.Aft.firmware -> t
(** Build the PC-classification table from the firmware's layout and
    marker symbols ([..$gs]/[..$ge] guard brackets, [__mpu$..] MPU
    write brackets, [__rt$b]/[__bc$b] runtime-helper ranges). *)

val step : t -> pc:int -> cycles:int -> unit
(** Attribute one executed instruction. *)

val set_context : t -> app:string -> handler:string -> unit
(** Attribute subsequent cycles to an app/handler (kernel dispatch
    scope); cleared with {!clear_context}. *)

val clear_context : t -> unit

val totals : t -> (category * int) list
(** Cumulative attributed cycles per category so far. *)

type app_report = {
  ar_app : string;
  ar_cats : (category * int) list;
  ar_handlers : (string * int) list;  (** cycles per handler *)
}

type report = {
  r_cats : (category * int) list;  (** global breakdown *)
  r_insns : int;
  r_exec_cycles : int;  (** sum of attributed instruction cycles *)
  r_host_cycles : int;  (** host-charged API service cycles *)
  r_total : int;  (** exec + host *)
  r_machine : int;  (** [Machine.cycles] — must equal [r_total] *)
  r_apps : app_report list;
}

val report : t -> machine:Amulet_mcu.Machine.t -> report
val pp_report : Format.formatter -> report -> unit
