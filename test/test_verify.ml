(* Binary-verifier tests: every firmware the toolchain produces must
   pass the independent SFI check, and a tampered image — a guard
   whose bound immediate has been zeroed — must be rejected.  The
   verifier shares no code with the guard *emitter*, so these tests
   cross-check the compiler and the verifier against each other. *)

module Iso = Amulet_cc.Isolation
module Aft = Amulet_aft.Aft
module Apps = Amulet_apps.Suite
module I = Amulet_link.Image
module O = Amulet_mcu.Opcode
module V = Amulet_analysis.Verifier

let app_named name =
  List.find (fun (a : Apps.app) -> a.Apps.name = name) Apps.all

let build ?shadow ?elide mode (app : Apps.app) =
  Aft.build ~mode ?shadow ?elide [ Apps.spec_for mode app ]

let verify fw name mode = V.verify_app ~image:fw.Aft.fw_image ~mode ~prefix:name

let check_ok what fw name mode =
  match verify fw name mode with
  | Ok _ -> ()
  | Error [] -> Alcotest.failf "%s: %s rejected with no violations" what name
  | Error (v :: _ as vs) ->
    Alcotest.failf "%s: %s rejected (%d violations, first: %s)" what name
      (List.length vs)
      (Format.asprintf "%a" V.pp_violation v)

(* ------------------------------------------------------------------ *)
(* Accept matrix: every suite app, every mode *)

let test_accepts mode () =
  List.iter
    (fun (app : Apps.app) ->
      let fw = build mode app in
      check_ok (Iso.name mode) fw app.Apps.name mode)
    Apps.all

(* Shadow stack and elision-off variants change the emitted patterns
   (shadow prologue/epilogue; full guard population) — spot-check a
   recursion-heavy, a call-heavy and a platform app. *)
let variant_apps = [ "quicksort"; "callheavy"; "pedometer" ]

let test_accepts_shadow mode () =
  List.iter
    (fun name ->
      let fw = build ~shadow:true mode (app_named name) in
      check_ok (Iso.name mode ^ "+shadow") fw name mode)
    variant_apps

let test_accepts_no_elide mode () =
  List.iter
    (fun name ->
      let fw = build ~elide:false mode (app_named name) in
      check_ok (Iso.name mode ^ "+no-elide") fw name mode)
    variant_apps

(* ------------------------------------------------------------------ *)
(* Rejection of a tampered image *)

let fetch_of (image : I.t) a =
  let rec go = function
    | [] -> 0
    | (base, b) :: rest ->
      if a >= base && a + 1 < base + Bytes.length b then
        Char.code (Bytes.get b (a - base))
        lor (Char.code (Bytes.get b (a - base + 1)) lsl 8)
      else go rest
  in
  go image.I.chunks

let poke (image : I.t) a v =
  List.iter
    (fun (base, b) ->
      if a >= base && a + 1 < base + Bytes.length b then begin
        Bytes.set b (a - base) (Char.chr (v land 0xFF));
        Bytes.set b (a - base + 1) (Char.chr ((v lsr 8) land 0xFF))
      end)
    image.I.chunks

(* Zero the immediate of the first lower-bound guard comparison in the
   app's code section: the guard still executes but now compares the
   pointer against 0, so the verifier can no longer derive the lower
   bound the store needs. *)
let corrupt_guard (image : I.t) ~prefix =
  let code_lo = I.symbol image (Iso.code_lo_sym ~prefix) in
  let code_hi = I.symbol image (Iso.code_hi_sym ~prefix) in
  let data_lo = I.symbol image (Iso.data_lo_sym ~prefix) in
  let fetch = fetch_of image in
  let rec scan a =
    if a >= code_hi then None
    else
      match Amulet_mcu.Decode.decode ~fetch ~addr:a with
      | exception Amulet_mcu.Decode.Illegal _ -> scan (a + 2)
      | O.Fmt1 (O.CMP, _, O.S_immediate k, O.D_reg r), _
        when k land 0xFFFF = data_lo && r >= 4 ->
        poke image (a + 2) 0;
        Some a
      | _, size -> scan (a + size)
  in
  scan code_lo

let test_rejects_corrupt mode () =
  let fw = build mode (app_named "quicksort") in
  check_ok "pre-corruption" fw "quicksort" mode;
  match corrupt_guard fw.Aft.fw_image ~prefix:"quicksort" with
  | None -> Alcotest.fail "no lower-bound guard found to corrupt"
  | Some _ -> (
    match verify fw "quicksort" mode with
    | Ok _ -> Alcotest.fail "verifier accepted a tampered image"
    | Error vs ->
      Alcotest.(check bool) "at least one violation" true (vs <> []))

(* ------------------------------------------------------------------ *)
(* Stats and error handling *)

let test_stats () =
  let fw = build Iso.Software_only (app_named "quicksort") in
  match verify fw "quicksort" Iso.Software_only with
  | Error _ -> Alcotest.fail "quicksort rejected"
  | Ok st ->
    Alcotest.(check bool) "instructions seen" true (st.V.v_insns > 0);
    Alcotest.(check bool) "blocks seen" true (st.V.v_blocks > 0);
    Alcotest.(check bool) "stores proved" true (st.V.v_stores >= 1);
    Alcotest.(check bool) "returns proved" true (st.V.v_rets >= 1)

let test_unknown_prefix () =
  let fw = build Iso.Software_only (app_named "quicksort") in
  match
    V.verify_app ~image:fw.Aft.fw_image ~mode:Iso.Software_only ~prefix:"nope"
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for an unknown prefix"

(* ------------------------------------------------------------------ *)
(* CLI: a firmware with zero app sections must fail, not pass
   vacuously — regression for the empty-positional-args case. *)

(* resolve relative to the runtest cwd (the test directory) or the
   project root, whichever exists, so [dune exec] also works *)
let verify_exe =
  let candidates =
    [ "../bin/amulet_verify.exe"; "_build/default/bin/amulet_verify.exe" ]
  in
  try List.find Sys.file_exists candidates with Not_found -> List.hd candidates

let run_cli args =
  Sys.command (Filename.quote_command verify_exe args ^ " >/dev/null 2>&1")

let test_cli_zero_apps () =
  Alcotest.(check bool) "no apps: non-zero exit" true (run_cli [] <> 0);
  Alcotest.(check int) "one app: zero exit" 0 (run_cli [ "pedometer" ])

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "verify"
    [
      ( "accept",
        List.map
          (fun mode ->
            Alcotest.test_case
              ("all suite apps under " ^ Iso.name mode)
              `Quick (test_accepts mode))
          Iso.all
        @ [
            Alcotest.test_case "shadow stack (software)" `Quick
              (test_accepts_shadow Iso.Software_only);
            Alcotest.test_case "shadow stack (mpu)" `Quick
              (test_accepts_shadow Iso.Mpu_assisted);
            Alcotest.test_case "elision off (software)" `Quick
              (test_accepts_no_elide Iso.Software_only);
            Alcotest.test_case "elision off (mpu)" `Quick
              (test_accepts_no_elide Iso.Mpu_assisted);
          ] );
      ( "reject",
        [
          Alcotest.test_case "corrupted guard (software)" `Quick
            (test_rejects_corrupt Iso.Software_only);
          Alcotest.test_case "corrupted guard (mpu)" `Quick
            (test_rejects_corrupt Iso.Mpu_assisted);
        ] );
      ( "stats",
        [
          Alcotest.test_case "stats sanity" `Quick test_stats;
          Alcotest.test_case "unknown prefix" `Quick test_unknown_prefix;
        ] );
      ( "cli",
        [ Alcotest.test_case "zero apps rejected" `Quick test_cli_zero_apps ] );
    ]
