(** Binary-level CFI certification.

    Reconstructs the per-function control-flow graph of an app's
    linked code section from the instruction stream (the symbol table
    is used only to delimit function spans) and proves every control
    transfer stays inside the app:

    - relative jumps land on instruction boundaries of their own
      function; [BR #imm] may additionally target another span entry
      (fault stubs) or a sanctioned external;
    - [CALL #imm] targets a function entry or a sanctioned external;
    - [CALL Rn] is structurally dominated by the mode's code-bounds
      guard on [Rn]; [RET] by the return-address guard (or shadow
      compare) in modes that check returns;
    - every other PC-writing instruction is a computed jump and is
      rejected with the offending instruction as witness.

    The resulting CFG carries per-block cycle counts (for
    [amulet_objdump --cfg]) and is the substrate for the binary
    stack-bound ({!Stackcert}) and gate-provenance ({!Gate_taint})
    passes. *)

type violation = {
  cv_addr : int;  (** address of the offending instruction *)
  cv_text : string;  (** disassembled instruction (witness) *)
  cv_reason : string;
}

type insn = { i_addr : int; i_op : Amulet_mcu.Opcode.t; i_size : int }

type edge =
  | E_fall  (** conditional fall-through *)
  | E_taken  (** conditional taken — the edge a guard proves facts on *)
  | E_jump  (** unconditional *)

type block = {
  b_addr : int;
  b_insns : insn list;
  b_cycles : int;  (** sum of the block's instruction cycle costs *)
  mutable b_succs : (int * edge) list;
}

type func = {
  f_name : string;
  f_entry : int;
  f_limit : int;
  f_stub : bool;  (** fault/exit stub, not a compiled function *)
  f_blocks : block list;
}

type callee =
  | C_local of string
  | C_helper of string
  | C_gate of string  (** service name, ["__gate_"] stripped *)
  | C_indirect

type t = {
  cf_prefix : string;
  cf_mode : Amulet_cc.Isolation.mode;
  cf_code_lo : int;
  cf_code_hi : int;
  cf_funcs : func list;
  cf_insns : int;
  cf_entry_of : (int, string) Hashtbl.t;
  cf_stub_of : (int, string) Hashtbl.t;
  cf_extern : (int, string) Hashtbl.t;
  cf_addr_taken : string list;
      (** functions whose entry address escapes into a register or the
          data section — the possible targets of any indirect call *)
}

val reconstruct :
  image:Amulet_link.Image.t ->
  mode:Amulet_cc.Isolation.mode ->
  prefix:string ->
  (t, violation list) result
(** @raise Invalid_argument when the image lacks the section-bound
    symbols or any function symbol for [prefix]. *)

val call_target : t -> Amulet_mcu.Opcode.t -> callee option
(** Classify a [CALL] instruction's target ([None] for non-calls). *)

val functions : t -> func list
(** Compiled functions only (stubs filtered out). *)

val find_function : t -> string -> func option
val pp_violation : Format.formatter -> violation -> unit
val pp_cfg : Format.formatter -> t -> unit
