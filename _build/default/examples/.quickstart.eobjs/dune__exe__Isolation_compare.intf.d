examples/isolation_compare.mli:
