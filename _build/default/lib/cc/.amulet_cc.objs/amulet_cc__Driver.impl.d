lib/cc/driver.ml: Amulet_link Apis Codegen Feature_check Isolation List Parser Runtime Stack_depth Typecheck
