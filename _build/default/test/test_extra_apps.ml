(* Behaviour of the extension applications (StressAware,
   ActivityAware, MedReminder) across scenarios and isolation modes. *)

module Aft = Amulet_aft.Aft
module Os = Amulet_os
module Apps = Amulet_apps.Suite
module Iso = Amulet_cc.Isolation
module M = Amulet_mcu.Machine
module W = Amulet_mcu.Word

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let boot ?(mode = Iso.Mpu_assisted) ~scenario name =
  let app = Apps.find name in
  let fw = Aft.build ~mode [ Apps.spec_for mode app ] in
  Os.Kernel.create ~scenario fw

let global k app sym =
  W.to_signed W.W16
    (M.mem_checked_read k.Os.Kernel.machine W.W16
       (Amulet_link.Image.symbol k.Os.Kernel.fw.Aft.fw_image (app ^ "$" ^ sym)))

let assert_alive k name =
  let st = Os.Kernel.app_by_name k name in
  match st.Os.Kernel.last_fault with
  | Some f -> Alcotest.failf "%s faulted: %s" name f
  | None -> check_bool "enabled" true st.Os.Kernel.enabled

let test_all_modes () =
  List.iter
    (fun (app : Apps.app) ->
      List.iter
        (fun mode ->
          let k = boot ~mode ~scenario:Os.Sensors.Walking app.Apps.name in
          let _ = Os.Kernel.run_for_ms k 40_000 in
          assert_alive k app.Apps.name)
        Iso.all)
    Apps.extension_apps

let stress_level scenario =
  let k = boot ~scenario "stress_aware" in
  let _ = Os.Kernel.run_for_ms k 40_000 in
  assert_alive k "stress_aware";
  global k "stress_aware" "stress"

let test_stress_tracks_exertion () =
  let resting = stress_level Os.Sensors.Resting in
  let running = stress_level Os.Sensors.Running in
  check_bool
    (Printf.sprintf "running stress (%d) > resting (%d)" running resting)
    true
    (running > resting);
  check_bool "levels in range" true
    (resting >= 0 && resting <= 100 && running >= 0 && running <= 100)

let classify scenario =
  let k = boot ~scenario "activity_aware" in
  let _ = Os.Kernel.run_for_ms k 30_000 in
  assert_alive k "activity_aware";
  (global k "activity_aware" "cls", Os.Kernel.display_line k 3)

let test_activity_classifier () =
  let rest_cls, rest_lbl = classify Os.Sensors.Resting in
  check_int "rest class" 0 rest_cls;
  Alcotest.(check string) "rest label" "rest" rest_lbl;
  let walk_cls, walk_lbl = classify Os.Sensors.Walking in
  check_int "walk class" 1 walk_cls;
  Alcotest.(check string) "walk label" "walk" walk_lbl;
  let run_cls, run_lbl = classify Os.Sensors.Running in
  check_int "run class" 2 run_cls;
  Alcotest.(check string) "run label" "run" run_lbl

let test_med_reminder_acknowledged () =
  let k = boot ~scenario:Os.Sensors.Resting "med_reminder" in
  (* first reminder fires at 30 s; acknowledge right after *)
  let _ = Os.Kernel.run_for_ms k 31_000 in
  Os.Kernel.post k ~delay_ms:1 ~app:0 (Os.Event.Button 1) ~arg:1;
  let _ = Os.Kernel.run_for_ms k 5_000 in
  check_int "taken" 1 (global k "med_reminder" "taken");
  check_int "no misses yet" 0 (global k "med_reminder" "missed");
  Alcotest.(check string) "thanked" "thanks" (Os.Kernel.display_line k 0)

let test_med_reminder_missed () =
  let k = boot ~scenario:Os.Sensors.Resting "med_reminder" in
  (* never acknowledge: reminder at 30 s, missed after 2 more periods *)
  let _ = Os.Kernel.run_for_ms k 125_000 in
  check_int "nothing taken" 0 (global k "med_reminder" "taken");
  check_bool "missed doses logged" true
    (global k "med_reminder" "missed" >= 1);
  check_bool "log has M records" true
    (String.length (Os.Kernel.log_contents k) >= 1)

let quick name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "extra-apps"
    [
      ( "extensions",
        [
          quick "all apps x all modes" test_all_modes;
          quick "stress tracks exertion" test_stress_tracks_exertion;
          quick "activity classifier" test_activity_classifier;
          quick "med reminder ack" test_med_reminder_acknowledged;
          quick "med reminder missed" test_med_reminder_missed;
        ] );
    ]
