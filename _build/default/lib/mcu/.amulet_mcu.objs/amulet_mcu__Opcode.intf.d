lib/mcu/opcode.mli: Format Word
