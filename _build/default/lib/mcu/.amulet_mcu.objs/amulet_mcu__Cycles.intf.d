lib/mcu/cycles.mli: Opcode
