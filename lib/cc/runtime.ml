module A = Amulet_link.Asm
module O = Amulet_mcu.Opcode
module M = Amulet_mcu.Machine

let l = A.label
let rra r = A.Ins (A.I2 (O.RRA, Amulet_mcu.Word.W16, A.Sreg r))
let rrc r = A.Ins (A.I2 (O.RRC, Amulet_mcu.Word.W16, A.Sreg r))
let clrc = A.bic (A.imm 1) (A.Dreg A.r_sr)

let neg r = [ A.xor (A.imm 0xFFFF) (A.Dreg r); A.inc (A.Dreg r) ]

(* 16x16 -> low 16 multiply: R12 * R13 -> R12. *)
let mulhi =
  [
    l "__mulhi";
    A.mov (A.Sreg 12) (A.Dreg 14);
    A.clr (A.Dreg 12);
    l "mul$loop";
    A.bit (A.imm 1) (A.Dreg 13);
    A.jcc O.JEQ "mul$skip";
    A.add (A.Sreg 14) (A.Dreg 12);
    l "mul$skip";
    A.add (A.Sreg 14) (A.Dreg 14);
    clrc;
    rrc 13;
    A.tst (A.Dreg 13);
    A.jcc O.JNE "mul$loop";
    A.ret;
  ]

(* Unsigned division core: R12 / R13 -> quotient R12, remainder R14. *)
let udivmod =
  [
    l "__udivhi";
    l "__udivmod";
    A.clr (A.Dreg 14);
    A.mov (A.imm 16) (A.Dreg 15);
    l "udm$loop";
    A.add (A.Sreg 12) (A.Dreg 12);
    A.Ins (A.I1 (O.ADDC, Amulet_mcu.Word.W16, A.Sreg 14, A.Dreg 14));
    A.jcc O.JC "udm$sub";
    A.cmp (A.Sreg 13) (A.Dreg 14);
    A.jcc O.JNC "udm$skip";
    l "udm$sub";
    A.sub (A.Sreg 13) (A.Dreg 14);
    A.bis (A.imm 1) (A.Dreg 12);
    l "udm$skip";
    A.dec (A.Dreg 15);
    A.jcc O.JNE "udm$loop";
    A.ret;
  ]

let umodhi =
  [ l "__umodhi"; A.call "__udivmod"; A.mov (A.Sreg 14) (A.Dreg 12); A.ret ]

(* Signed division: quotient sign = sign(a) xor sign(b). *)
let divhi =
  [
    l "__divhi";
    A.mov (A.Sreg 12) (A.Dreg 14);
    A.xor (A.Sreg 13) (A.Dreg 14);
    A.push (A.Sreg 14);
    A.tst (A.Dreg 12);
    A.jcc O.JGE "div$a";
  ]
  @ neg 12
  @ [ l "div$a"; A.tst (A.Dreg 13); A.jcc O.JGE "div$b" ]
  @ neg 13
  @ [
      l "div$b";
      A.call "__udivmod";
      A.pop 14;
      A.tst (A.Dreg 14);
      A.jcc O.JGE "div$done";
    ]
  @ neg 12
  @ [ l "div$done"; A.ret ]

(* Signed modulo: remainder takes the dividend's sign. *)
let modhi =
  [
    l "__modhi";
    A.push (A.Sreg 12);
    A.tst (A.Dreg 12);
    A.jcc O.JGE "mod$a";
  ]
  @ neg 12
  @ [ l "mod$a"; A.tst (A.Dreg 13); A.jcc O.JGE "mod$b" ]
  @ neg 13
  @ [
      l "mod$b";
      A.call "__udivmod";
      A.mov (A.Sreg 14) (A.Dreg 12);
      A.pop 14;
      A.tst (A.Dreg 14);
      A.jcc O.JGE "mod$done";
    ]
  @ neg 12
  @ [ l "mod$done"; A.ret ]

(* Dynamic shifts: value R12, count R13 (masked to 0..15). *)
let shifts =
  [
    l "__shlhi";
    A.and_ (A.imm 15) (A.Dreg 13);
    l "shl$loop";
    A.tst (A.Dreg 13);
    A.jcc O.JEQ "shl$done";
    A.add (A.Sreg 12) (A.Dreg 12);
    A.dec (A.Dreg 13);
    A.jmp "shl$loop";
    l "shl$done";
    A.ret;
    l "__shrhi";
    A.and_ (A.imm 15) (A.Dreg 13);
    l "shr$loop";
    A.tst (A.Dreg 13);
    A.jcc O.JEQ "shr$done";
    clrc;
    rrc 12;
    A.dec (A.Dreg 13);
    A.jmp "shr$loop";
    l "shr$done";
    A.ret;
    l "__sarhi";
    A.and_ (A.imm 15) (A.Dreg 13);
    l "sar$loop";
    A.tst (A.Dreg 13);
    A.jcc O.JEQ "sar$done";
    rra 12;
    A.dec (A.Dreg 13);
    A.jmp "sar$loop";
    l "sar$done";
    A.ret;
  ]

(* Feature-Limited array-index check: index R14, limit R15; faults on
   index >= limit (negative indexes wrap to large unsigned values). *)
let bounds_check =
  [
    l "__bounds_check";
    A.cmp (A.Sreg 15) (A.Dreg 14);
    A.jcc O.JC "bc$fail";
    A.ret;
    l "bc$fail";
    A.mov (A.imm Isolation.fault_array_bounds) (A.Dabs (A.Num M.sw_fault_port));
    A.jmp "bc$fail";
  ]

(* Zero-size marker symbols bracketing the helper ranges, so profilers
   can attribute helper cycles: the arithmetic helpers count as app
   work, [__bounds_check] as guard work. *)
let rt_begin = "__rt$b"
let rt_end = "__rt$e"
let bc_begin = "__bc$b"
let bc_end = "__bc$e"

let items =
  (l rt_begin :: (mulhi @ udivmod @ umodhi @ divhi @ modhi @ shifts))
  @ (l bc_begin :: bounds_check)
  @ [ l bc_end; l rt_end ]

(* Iteration bounds of the helper loops, keyed by the loop's header
   label (the back-edge target).  A bound B means the loop body runs
   at most B times per entry; the WCET analysis charges (B+1) header
   executions to cover while-style exit tests.  [bc$fail] needs no
   bound: its first instruction writes the software-fault port, which
   stops the machine, so the spin never executes a second time.

   - mul$loop shifts the multiplier right once per iteration, so it
     exits after at most 16 iterations;
   - udm$loop counts R15 down from exactly 16;
   - the shift loops mask their count with [and #15] first. *)
let loop_bounds =
  [
    ("mul$loop", 16);
    ("udm$loop", 16);
    ("shl$loop", 15);
    ("shr$loop", 15);
    ("sar$loop", 15);
  ]

let builtin_externals =
  [
    ("__halt", Ctype.Func (Ctype.Void, []));
    ("__putc", Ctype.Func (Ctype.Void, [ Ctype.Int ]));
    ("__timer_start", Ctype.Func (Ctype.Void, []));
    ("__timer_read", Ctype.Func (Ctype.Uint, []));
  ]
