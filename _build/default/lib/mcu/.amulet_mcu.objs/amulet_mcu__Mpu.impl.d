lib/mcu/mpu.ml: Format Memory_map String
