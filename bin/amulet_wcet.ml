(* amulet_wcet: static WCET and worst-case-energy certifier.

   Builds a firmware from WearC sources (or suite app names), runs the
   binary WCET analysis (lib/analysis/wcet.ml) over every app section
   and converts each handler's cycle bound into worst-case weekly
   battery impact at an assumed dispatch rate, checked against the
   paper's 0.5 % overhead budget.  Handlers the analysis cannot bound
   are reported with their call-chain witness instead of a number.

   Exit status: 0 when every handler is bounded and every app is
   within budget, 1 otherwise (unless --allow-unbounded), 2 on build
   errors. *)

module Iso = Amulet_cc.Isolation
module Aft = Amulet_aft.Aft
module Apps = Amulet_apps.Suite
module Lint = Amulet_analysis.Lint
module Cfi = Amulet_analysis.Cfi
module Wcet = Amulet_analysis.Wcet
module Energy = Amulet_arp.Energy
module J = Amulet_obs.Json

let mode_conv =
  let parse s =
    match Iso.of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg "expected one of: none, amuletc, software, mpu")
  in
  Cmdliner.Arg.conv (parse, fun ppf m -> Format.fprintf ppf "%s" (Iso.name m))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let spec_of mode arg =
  match List.find_opt (fun (a : Apps.app) -> a.Apps.name = arg) Apps.all with
  | Some app -> Apps.spec_for mode app
  | None ->
    {
      Aft.name = Filename.remove_extension (Filename.basename arg);
      source = read_file arg;
    }

let seconds_per_week = 7.0 *. 24.0 *. 3600.0

(* budget comparison for one handler dispatched [rate] times a second,
   all week *)
let weekly_impact ~rate cycles =
  Energy.battery_impact_percent
    ~overhead_cycles_per_week:(float_of_int cycles *. rate *. seconds_per_week)

type handler_row = {
  row : Wcet.handler_bound;
  impact : float option;  (** None when unbounded *)
}

type app_row = {
  app : string;
  wcet : Wcet.t option;  (** None when CFI reconstruction failed *)
  rows : handler_row list;
  total_impact : float;  (** sum over bounded handlers *)
  all_bounded : bool;
}

let analyze_app ~image ~mode ~rate prefix =
  match Cfi.reconstruct ~image ~mode ~prefix with
  | Error _ ->
    { app = prefix; wcet = None; rows = []; total_impact = 0.0;
      all_bounded = false }
  | Ok cfg ->
    let w = Wcet.analyze ~image ~cfg in
    let rows =
      List.map
        (fun (h : Wcet.handler_bound) ->
          match h.Wcet.hb_total with
          | Wcet.Bounded c -> { row = h; impact = Some (weekly_impact ~rate c) }
          | Wcet.Unbounded _ -> { row = h; impact = None })
        w.Wcet.w_handlers
    in
    {
      app = prefix;
      wcet = Some w;
      rows;
      total_impact =
        List.fold_left
          (fun acc r -> acc +. Option.value ~default:0.0 r.impact)
          0.0 rows;
      all_bounded = List.for_all (fun r -> r.impact <> None) rows;
    }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let json_of_verdict = function
  | Wcet.Bounded c -> [ ("bounded", J.Bool true); ("cycles", J.Int c) ]
  | Wcet.Unbounded { reason; chain } ->
    [
      ("bounded", J.Bool false);
      ("reason", J.Str reason);
      ("chain", J.Arr (List.map (fun s -> J.Str s) chain));
    ]

let json_of_row budget (r : handler_row) =
  J.Obj
    ([ ("handler", J.Str r.row.Wcet.hb_handler) ]
    @ json_of_verdict r.row.Wcet.hb_total
    @ (match r.row.Wcet.hb_fn with
      | Wcet.Bounded c -> [ ("fn_cycles", J.Int c) ]
      | Wcet.Unbounded _ -> [])
    @ (match r.row.Wcet.hb_dispatch with
      | Wcet.Bounded c -> [ ("dispatch_cycles", J.Int c) ]
      | Wcet.Unbounded _ -> [])
    @
    match r.impact with
    | Some pct ->
      [
        ("weekly_impact_percent", J.Float pct);
        ("within_budget", J.Bool (pct <= budget));
      ]
    | None -> [])

let json_of_app budget (a : app_row) =
  J.Obj
    ([ ("name", J.Str a.app) ]
    @ (match a.wcet with
      | None -> [ ("error", J.Str "CFI reconstruction failed") ]
      | Some w ->
        [
          ("loops", J.Int w.Wcet.w_loops);
          ("bounded_loops", J.Int w.Wcet.w_bounded_loops);
        ])
    @ [
        ("handlers", J.Arr (List.map (json_of_row budget) a.rows));
        ("all_bounded", J.Bool a.all_bounded);
        ("weekly_impact_percent", J.Float a.total_impact);
        ("within_budget", J.Bool (a.total_impact <= budget));
      ])

let print_human ~mode ~rate ~budget apps =
  Format.printf "isolation mode: %s, dispatch rate %g Hz, budget %g%%@."
    (Iso.name mode) rate budget;
  List.iter
    (fun a ->
      (match a.wcet with
      | None ->
        Format.printf "%s: CFI reconstruction failed — nothing certified@."
          a.app
      | Some w ->
        Format.printf "%s: %d/%d loops bounded@." a.app
          w.Wcet.w_bounded_loops w.Wcet.w_loops);
      List.iter
        (fun r ->
          match (r.row.Wcet.hb_total, r.impact) with
          | Wcet.Bounded c, Some pct ->
            Format.printf
              "  %-16s %7d cycles  (fn %s + dispatch %s)  %.4f%% of weekly \
               battery%s@."
              r.row.Wcet.hb_handler c
              (match r.row.Wcet.hb_fn with
              | Wcet.Bounded c -> string_of_int c
              | Wcet.Unbounded _ -> "?")
              (match r.row.Wcet.hb_dispatch with
              | Wcet.Bounded c -> string_of_int c
              | Wcet.Unbounded _ -> "?")
              pct
              (if pct <= budget then "" else "  OVER BUDGET")
          | v, _ ->
            Format.printf "  %-16s %a@." r.row.Wcet.hb_handler Wcet.pp_verdict
              v)
        a.rows;
      if a.rows <> [] then
        Format.printf "  app worst case: %.4f%% of weekly battery (%s the \
                       %g%% budget)@."
          a.total_impact
          (if a.total_impact <= budget then "within" else "OVER")
          budget)
    apps

(* ------------------------------------------------------------------ *)

let wcet_cmd mode no_elide shadow rate budget format allow_unbounded apps =
  try
    let specs = List.map (spec_of mode) apps in
    let fw = Aft.build ~mode ~shadow ~elide:(not no_elide) specs in
    let image = fw.Aft.fw_image in
    let rows =
      List.map (analyze_app ~image ~mode ~rate) (Lint.apps_of image)
    in
    let ok =
      List.for_all
        (fun a ->
          a.wcet <> None
          && (allow_unbounded || a.all_bounded)
          && a.total_impact <= budget)
        rows
    in
    (match format with
    | `Human -> print_human ~mode ~rate ~budget rows
    | `Json ->
      print_string
        (J.to_string
           (J.Obj
              [
                ("mode", J.Str (Iso.name mode));
                ("rate_hz", J.Float rate);
                ("budget_percent", J.Float budget);
                ("apps", J.Arr (List.map (json_of_app budget) rows));
                ("ok", J.Bool ok);
              ])
        ^ "\n"));
    if ok then 0 else 1
  with
  | Amulet_cc.Srcloc.Error (loc, msg) ->
    Format.eprintf "error at %a: %s@." Amulet_cc.Srcloc.pp loc msg;
    2
  | Aft.Build_error msg ->
    Format.eprintf "build error: %s@." msg;
    2
  | Sys_error msg ->
    Format.eprintf "%s@." msg;
    2

open Cmdliner

let mode_arg =
  Arg.(
    value
    & opt mode_conv Iso.Mpu_assisted
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:
          "Isolation mode: $(b,none), $(b,amuletc) (feature-limited), \
           $(b,software), or $(b,mpu).")

let no_elide_arg =
  Arg.(
    value & flag
    & info [ "no-elide" ]
        ~doc:"Compile with every guard emitted (skip the range analysis).")

let shadow_arg =
  Arg.(
    value & flag
    & info [ "shadow" ] ~doc:"Arm the InfoMem shadow return-address stack.")

let rate_arg =
  Arg.(
    value & opt float 1.0
    & info [ "rate" ] ~docv:"HZ"
        ~doc:
          "Assumed worst-case dispatch rate per handler in events per \
           second, for the battery-impact projection.")

let budget_arg =
  Arg.(
    value & opt float 0.5
    & info [ "budget" ] ~docv:"PCT"
        ~doc:
          "Weekly battery budget in percent an app's handlers may consume \
           (the paper bounds isolation overhead by 0.5%).")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("human", `Human); ("json", `Json) ]) `Human
    & info [ "format" ] ~docv:"FMT" ~doc:"Output format: $(b,human) or $(b,json).")

let allow_unbounded_arg =
  Arg.(
    value & flag
    & info [ "allow-unbounded" ]
        ~doc:
          "Exit 0 even when some handler has no static bound (it is still \
           reported).")

let apps_arg =
  Arg.(
    non_empty & pos_all string []
    & info [] ~docv:"APP" ~doc:"Suite app name or WearC source path.")

let cmd =
  let doc = "statically bound handler WCET and worst-case battery impact" in
  Cmd.v
    (Cmd.info "amulet_wcet" ~doc)
    Term.(
      const wcet_cmd $ mode_arg $ no_elide_arg $ shadow_arg $ rate_arg
      $ budget_arg $ format_arg $ allow_unbounded_arg $ apps_arg)

let () = exit (Cmd.eval' cmd)
