examples/wearable_suite.mli:
