(* Value-range analysis over the typed AST.  See range.mli for the
   contract and DESIGN.md for the soundness argument.

   Two interpretations run side by side:

   - [walk]/[stmt]: a flow-sensitive abstract interpreter over the
     scalar locals of one function.  Loops and switches are handled by
     killing every variable assigned inside them, so a single pass is
     a sound over-approximation of all executions.  Its only job is to
     prove sites *unsafe* (every execution out of bounds), which is
     reported eagerly as a compile error.

   - [robust_val]/[robust_addr]: a flow-insensitive evaluator that
     accepts exactly the derivations the binary verifier replays from
     the instruction stream (constants, byte loads, AND masks,
     interval ADD/SUB, power-of-two scaling, OR/XOR ceilings, global
     bases).  Only it may prove a site *safe*: an elided guard must
     survive independent re-verification of the linked image. *)

open Amulet_cc
module C = Ctype

let errf = Srcloc.errf

(* ------------------------------------------------------------------ *)
(* Abstract values *)

type iv = { lo : int; hi : int }

(* [oname] is prefixed with the object kind ("g:", "l:", "s:") so
   same-named locals and globals never unify. *)
type obj = { oname : string; osize : int; oglobal : bool }

(* [Num] ranges hold the signed-16-bit representative of the machine
   word, exactly as Codegen.fold_const normalizes constants; [Ptr]
   offsets are exact byte counts from the object base. *)
type aval = Top | Num of iv | Ptr of obj * iv

let smin = -32768
let smax = 32767
let off_cap = 1 lsl 20

let s16 v =
  let v = v land 0xFFFF in
  if v >= 0x8000 then v - 0x10000 else v

(* Constructors bail to Top when the machine result could wrap: the
   16-bit result is s16 (x mod 2^16), which equals our exact integer
   only while it stays inside the signed range. *)
let num lo hi =
  if lo <= hi && lo >= smin && hi <= smax then Num { lo; hi } else Top

let ptr o lo hi =
  if lo <= hi && abs lo <= off_cap && abs hi <= off_cap then Ptr (o, { lo; hi })
  else Top

let join_iv a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let join a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Num x, Num y -> Num (join_iv x y)
  | Ptr (o1, x), Ptr (o2, y) when o1 = o2 -> Ptr (o1, join_iv x y)
  | _ -> Top

(* smallest 2^k - 1 >= h *)
let mask_up h =
  let rec go m = if m >= h then m else go ((2 * m) + 1) in
  if h <= 0 then 0 else go 1

let safe_sizeof env ty =
  try Some (C.sizeof env ty) with Invalid_argument _ -> None

let gobj name osize = { oname = "g:" ^ name; osize; oglobal = true }
let lobj name osize = { oname = "l:" ^ name; osize; oglobal = false }

let sobj s =
  { oname = "s:" ^ s; osize = String.length s + 1; oglobal = true }

let obj_descr o =
  match o.oname.[0] with
  | 's' -> "a string literal"
  | _ -> Printf.sprintf "'%s'" (String.sub o.oname 2 (String.length o.oname - 2))

(* ------------------------------------------------------------------ *)
(* Analysis state *)

type ctx = {
  env : C.env;
  sites : (Srcloc.t, Codegen.site_class) Hashtbl.t;
  loops : (Srcloc.t, int) Hashtbl.t;
      (* loop condition location -> max body executions (WCET) *)
}

type fctx = {
  p : ctx;
  tracked : (string, C.t) Hashtbl.t;  (* scalar locals, address never taken *)
  vals : (string, aval) Hashtbl.t;  (* absent = type default *)
}

(* Byte loads zero-extend, so a char cell always reads as 0..255. *)
let default_of = function
  | C.Char -> Num { lo = 0; hi = 255 }
  | _ -> Top

let get_local f name ty =
  if Hashtbl.mem f.tracked name then
    match Hashtbl.find_opt f.vals name with
    | Some v -> v
    | None -> default_of ty
  else default_of ty

(* What a later load of the cell will see (stores to char truncate). *)
let clamp_store ty v =
  match ty with
  | C.Char -> (
    match v with
    | Num r when r.lo >= 0 && r.hi <= 255 -> v
    | _ -> Num { lo = 0; hi = 255 })
  | _ -> v

let set_local f name ty v =
  if Hashtbl.mem f.tracked name then
    match clamp_store ty v with
    | Top -> Hashtbl.remove f.vals name
    | v -> Hashtbl.replace f.vals name v

let snapshot f = Hashtbl.copy f.vals

let restore f snap =
  Hashtbl.reset f.vals;
  Hashtbl.iter (Hashtbl.replace f.vals) snap

(* Keep only facts valid in both the live environment and [other]; a
   name missing on either side already means "type default". *)
let merge_into f other =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) f.vals [] in
  List.iter
    (fun k ->
      match Hashtbl.find_opt other k with
      | Some v2 -> (
        match join (Hashtbl.find f.vals k) v2 with
        | Top -> Hashtbl.remove f.vals k
        | v -> Hashtbl.replace f.vals k v)
      | None -> Hashtbl.remove f.vals k)
    keys

(* Variables assigned (or ++/--'d, or declared) anywhere inside. *)
let assigned_in stmts exprs =
  let set = Hashtbl.create 8 in
  let add n = Hashtbl.replace set n () in
  let rec root l =
    match l.Tast.te with
    | Tast.Tlocal n -> add n
    | Tast.Tcast (_, i) -> root i
    | _ -> ()
  in
  let scan e =
    Tast.iter_expr
      (fun x ->
        match x.Tast.te with
        | Tast.Tassign (l, _) | Tast.Top_assign (_, l, _) -> root l
        | Tast.Tpre_incr l
        | Tast.Tpre_decr l
        | Tast.Tpost_incr l
        | Tast.Tpost_decr l ->
          root l
        | _ -> ())
      e
  in
  List.iter
    (Tast.iter_stmt ~decl:(fun n _ -> add n) ~expr:scan)
    stmts;
  List.iter scan exprs;
  set

let kill f set = Hashtbl.iter (fun n () -> Hashtbl.remove f.vals n) set

let record f loc cls =
  match Hashtbl.find_opt f.p.sites loc with
  | None -> Hashtbl.replace f.p.sites loc cls
  | Some prev when prev = cls -> ()
  | Some _ -> Hashtbl.replace f.p.sites loc Codegen.Needs_check

let psize env ty =
  (* codegen's pointee_size: void* steps by 1 *)
  match ty with
  | C.Ptr t when t <> C.Void -> safe_sizeof env t
  | C.Ptr C.Void -> Some 1
  | _ -> None

let shift_av v k =
  match v with
  | Top -> Top
  | Num r -> num (r.lo + k) (r.hi + k)
  | Ptr (o, r) -> ptr o (r.lo + k) (r.hi + k)

let add_scaled base idx es =
  match (base, idx, es) with
  | Top, _, _ | _, Top, _ | _, _, None -> Top
  | Ptr (o, r), Num i, Some s -> ptr o (r.lo + (i.lo * s)) (r.hi + (i.hi * s))
  | Num a, Num b, Some s -> num (a.lo + (b.lo * s)) (a.hi + (b.hi * s))
  | _ -> Top

(* ------------------------------------------------------------------ *)
(* Robust evaluation: only derivations the binary verifier replays *)

type rv = Rnum of iv | Rptr of obj * iv

(* Robust numbers are unsigned machine intervals: the verifier's
   register domain has no signed values. *)
let rnum lo hi =
  if 0 <= lo && lo <= hi && hi <= 0xFFFF then Some (Rnum { lo; hi }) else None

let rshift r k = { lo = r.lo + k; hi = r.hi + k }

let pow2ish = function 1 -> true | n -> Codegen.log2_exact n <> None

let rec robust_val ctx (e : Tast.texpr) : rv option =
  match e.Tast.te with
  (* char-typed memory reads compile to zero-extending byte loads *)
  | Tast.Tlocal _ | Tast.Tglobal _ | Tast.Tderef _ | Tast.Tindex _
  | Tast.Tmember _ | Tast.Tarrow _
    when e.Tast.ty = C.Char ->
    Some (Rnum { lo = 0; hi = 255 })
  | Tast.Tnum n ->
    let v = s16 n in
    if v >= 0 then Some (Rnum { lo = v; hi = v }) else None
  | Tast.Tstr s -> Some (Rptr (sobj s, { lo = 0; hi = 0 }))
  | Tast.Taddr inner -> robust_addr ctx inner
  | Tast.Tassign (_, r) -> robust_val ctx r
  (* a cast to char emits AND #0xFF *)
  | Tast.Tcast (C.Char, _) -> Some (Rnum { lo = 0; hi = 255 })
  | Tast.Tcast (_, a) -> robust_val ctx a
  | Tast.Tbin (op, a, b) -> robust_bin ctx op a b
  | _ -> None

and robust_bin ctx op a b =
  match op with
  | Ast.Band -> (
    (* AND bounds the result by either operand's nonnegative range,
       whatever the other side holds *)
    let bound x =
      match robust_val ctx x with Some (Rnum r) -> Some r.hi | _ -> None
    in
    match (bound a, bound b) with
    | Some x, Some y -> rnum 0 (min x y)
    | Some x, None | None, Some x -> rnum 0 x
    | None, None -> None)
  | Ast.Add -> (
    match (robust_val ctx a, robust_val ctx b) with
    | Some (Rnum x), Some (Rnum y) -> rnum (x.lo + y.lo) (x.hi + y.hi)
    | Some (Rptr (o, r)), Some (Rnum i) when C.is_pointer a.Tast.ty -> (
      (* pointer + int scales the index; only power-of-two scaling
         compiles to ADD doubling the verifier can follow *)
      match psize ctx.env a.Tast.ty with
      | Some s when pow2ish s ->
        Some (Rptr (o, { lo = r.lo + (i.lo * s); hi = r.hi + (i.hi * s) }))
      | _ -> None)
    | _ -> None)
  | Ast.Sub -> (
    match (robust_val ctx a, robust_val ctx b) with
    | Some (Rnum x), Some (Rnum y) -> rnum (x.lo - y.hi) (x.hi - y.lo)
    | _ -> None)
  | Ast.Mul -> (
    (* only [expr * 2^k] compiles to ADD doubling *)
    match Codegen.fold_const b with
    | Some k when k > 0 && pow2ish k -> (
      match robust_val ctx a with
      | Some (Rnum x) -> rnum (x.lo * k) (x.hi * k)
      | _ -> None)
    | _ -> None)
  | Ast.Shl -> (
    match Codegen.fold_const b with
    | Some k -> (
      let k = k land 15 in
      match robust_val ctx a with
      | Some (Rnum x) -> rnum (x.lo lsl k) (x.hi lsl k)
      | _ -> None)
    | None -> None)
  | Ast.Bor | Ast.Bxor -> (
    match (robust_val ctx a, robust_val ctx b) with
    | Some (Rnum x), Some (Rnum y) -> rnum 0 (mask_up (max x.hi y.hi))
    | _ -> None)
  | _ -> None

and robust_addr ctx (e : Tast.texpr) : rv option =
  match e.Tast.te with
  | Tast.Tglobal g -> (
    match safe_sizeof ctx.env e.Tast.ty with
    | Some sz -> Some (Rptr (gobj g sz, { lo = 0; hi = 0 }))
    | None -> None)
  | Tast.Tstr s -> Some (Rptr (sobj s, { lo = 0; hi = 0 }))
  | Tast.Tderef p -> robust_val ctx p
  | Tast.Tarrow (p, fld) -> (
    match robust_val ctx p with
    | Some (Rptr (o, r)) -> Some (Rptr (o, rshift r fld.C.foffset))
    | _ -> None)
  | Tast.Tmember (b, fld) -> (
    match robust_addr ctx b with
    | Some (Rptr (o, r)) -> Some (Rptr (o, rshift r fld.C.foffset))
    | _ -> None)
  | Tast.Tindex (base, idx) -> (
    match safe_sizeof ctx.env e.Tast.ty with
    | None -> None
    | Some es -> (
      let scaled o r i =
        if pow2ish es then
          Some (Rptr (o, { lo = r.lo + (i.lo * es); hi = r.hi + (i.hi * es) }))
        else None
      in
      match (base.Tast.ty, Codegen.fold_const idx) with
      | C.Array _, Some k -> (
        match robust_addr ctx base with
        | Some (Rptr (o, r)) -> Some (Rptr (o, rshift r (k * es)))
        | _ -> None)
      | C.Array _, None -> (
        match (robust_val ctx idx, robust_addr ctx base) with
        | Some (Rnum i), Some (Rptr (o, r)) -> scaled o r i
        | _ -> None)
      | _ -> (
        (* pointer indexing: p[i] *)
        match (robust_val ctx base, robust_val ctx idx) with
        | Some (Rptr (o, r)), Some (Rnum i) -> scaled o r i
        | _ -> None)))
  | Tast.Tcast (_, inner) -> robust_addr ctx inner
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Site judgment *)

(* [pav]: flow-sensitive final address; [e]: the whole place
   expression for the robust re-derivation.  The guard (and therefore
   its elision) covers the final address after all member/index
   offsets, which is why judgment happens at the outermost place even
   though [loc] names the innermost computed-address node (where
   codegen creates the Pdyn and consults the classifier). *)
let judge f loc ty pav (e : Tast.texpr) =
  match safe_sizeof f.p.env ty with
  | None -> record f loc Codegen.Needs_check
  | Some w ->
    (match pav with
    | Ptr (o, r) ->
      let vhi = o.osize - w in
      if vhi < 0 || r.hi < 0 || r.lo > vhi then
        errf loc "access is provably out of bounds: byte offset %s of %d-byte object %s"
          (if r.lo = r.hi then string_of_int r.lo
           else Printf.sprintf "%d..%d" r.lo r.hi)
          o.osize (obj_descr o)
    | _ -> ());
    let cls =
      (* elide only accesses into *global* objects: their section
         placement is what the guard checks and what the verifier can
         re-establish from the image symbols *)
      match robust_addr f.p e with
      | Some (Rptr (o, r))
        when o.oglobal && r.lo >= 0 && r.hi <= o.osize - w ->
        Codegen.Proven_safe
      | _ -> Codegen.Needs_check
    in
    record f loc cls

(* ------------------------------------------------------------------ *)
(* Flow-sensitive walk (mirrors codegen's evaluation order) *)

type paddr = { pav : aval; psite : (Srcloc.t * C.t) option }

let rec walk f (e : Tast.texpr) : aval =
  match e.Tast.te with
  | Tast.Tnum n ->
    let v = s16 n in
    Num { lo = v; hi = v }
  | Tast.Tstr s -> Ptr (sobj s, { lo = 0; hi = 0 })
  | Tast.Tlocal name -> get_local f name e.Tast.ty
  | Tast.Tglobal _ | Tast.Tfunc_name _ -> default_of e.Tast.ty
  | Tast.Tbin (op, a, b) -> walk_bin f op a b
  | Tast.Tun (op, a) -> (
    let v = walk f a in
    match op with
    | Ast.Lnot -> Num { lo = 0; hi = 1 }
    | Ast.Neg -> ( match v with Num r -> num (-r.hi) (-r.lo) | _ -> Top)
    | Ast.Bnot -> (
      match v with Num r -> num (-1 - r.hi) (-1 - r.lo) | _ -> Top))
  | Tast.Tassign (lhs, rhs) ->
    (* codegen: rhs first, then the place; result is the rhs register
       (untruncated even for char stores) *)
    let v = walk f rhs in
    assign_to f lhs v;
    v
  | Tast.Top_assign (op, lhs, rhs) ->
    (* codegen: place (guard discharged), load, then rhs *)
    let old = read_place f lhs in
    let v = walk f rhs in
    let nv = transfer f.p.env op lhs.Tast.ty rhs.Tast.ty old v in
    set_root f lhs nv;
    nv
  | Tast.Tcond (cnd, t, fb) ->
    let _ = walk f cnd in
    let pre = snapshot f in
    let vt = walk f t in
    let post_t = snapshot f in
    restore f pre;
    let vf = walk f fb in
    merge_into f post_t;
    join vt vf
  | Tast.Tcall (name, args) ->
    let ordered =
      (* API calls load R12-R14 left to right; plain calls push
         right to left *)
      if String.length name >= 4 && String.sub name 0 4 = "api_" then args
      else List.rev args
    in
    List.iter (fun a -> ignore (walk f a)) ordered;
    default_of e.Tast.ty
  | Tast.Tcall_ptr (callee, args) ->
    let _ = walk f callee in
    List.iter (fun a -> ignore (walk f a)) (List.rev args);
    default_of e.Tast.ty
  | Tast.Tindex _ | Tast.Tderef _ | Tast.Tmember _ | Tast.Tarrow _ ->
    let _ = consume f e ~addr_of:false in
    default_of e.Tast.ty
  | Tast.Taddr inner ->
    (* address is computed but nothing is dereferenced: no site *)
    consume f inner ~addr_of:true
  | Tast.Tpre_incr a | Tast.Tpre_decr a | Tast.Tpost_incr a | Tast.Tpost_decr a
    ->
    let post =
      match e.Tast.te with
      | Tast.Tpost_incr _ | Tast.Tpost_decr _ -> true
      | _ -> false
    in
    let sign =
      match e.Tast.te with
      | Tast.Tpre_decr _ | Tast.Tpost_decr _ -> -1
      | _ -> 1
    in
    let old = read_place f a in
    let step =
      if C.is_pointer a.Tast.ty then psize f.p.env a.Tast.ty else Some 1
    in
    let nv =
      match (old, step) with
      | Num r, Some s -> num (r.lo + (s * sign)) (r.hi + (s * sign))
      | Ptr (o, r), Some s -> ptr o (r.lo + (s * sign)) (r.hi + (s * sign))
      | _ -> Top
    in
    set_root f a nv;
    if post then old else nv
  | Tast.Tcast (ty, a) -> (
    let v = walk f a in
    match ty with
    | C.Char ->
      if a.Tast.ty = C.Char then v
      else (
        (* AND #0xFF *)
        match v with
        | Num r when r.lo >= 0 && r.hi <= 255 -> v
        | _ -> Num { lo = 0; hi = 255 })
    | _ -> v)

and walk_bin f op a b =
  match op with
  | Ast.Land | Ast.Lor ->
    let _ = walk f a in
    let pre = snapshot f in
    let _ = walk f b in
    (* b may be skipped *)
    merge_into f pre;
    Num { lo = 0; hi = 1 }
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge ->
    let _ = walk f a in
    let _ = walk f b in
    Num { lo = 0; hi = 1 }
  | _ ->
    let va = walk f a in
    let vb = walk f b in
    transfer f.p.env op a.Tast.ty b.Tast.ty va vb

and transfer env op tyl tyr va vb =
  let signed = tyl = C.Int && tyr = C.Int in
  match (op, va, vb) with
  | Ast.Add, Ptr (o, r), Num i when C.is_pointer tyl ->
    add_scaled (Ptr (o, r)) (Num i) (psize env tyl)
  | Ast.Sub, Ptr (o, r), Num i when C.is_pointer tyl && C.is_integer tyr -> (
    match psize env tyl with
    | Some s -> ptr o (r.lo - (i.hi * s)) (r.hi - (i.lo * s))
    | None -> Top)
  | Ast.Add, Num x, Num y -> num (x.lo + y.lo) (x.hi + y.hi)
  | Ast.Sub, Num x, Num y -> num (x.lo - y.hi) (x.hi - y.lo)
  | Ast.Mul, Num x, Num y ->
    let ps = [ x.lo * y.lo; x.lo * y.hi; x.hi * y.lo; x.hi * y.hi ] in
    num (List.fold_left min max_int ps) (List.fold_left max min_int ps)
  | Ast.Div, Num x, Num y when y.lo = y.hi && y.lo > 0 && x.lo >= 0 ->
    num (x.lo / y.lo) (x.hi / y.lo)
  | Ast.Mod, Num x, Num y when y.lo = y.hi && y.lo > 0 ->
    let d = y.lo in
    if x.lo >= 0 then num 0 (min (d - 1) x.hi)
    else if signed then num (-(d - 1)) (d - 1)
    else num 0 (d - 1)
  | Ast.Band, Num x, Num y ->
    if x.lo >= 0 && y.lo >= 0 then num 0 (min x.hi y.hi)
    else if x.lo >= 0 then num 0 x.hi
    else if y.lo >= 0 then num 0 y.hi
    else Top
  | (Ast.Bor | Ast.Bxor), Num x, Num y when x.lo >= 0 && y.lo >= 0 ->
    num 0 (mask_up (max x.hi y.hi))
  | Ast.Shl, Num x, Num y when y.lo = y.hi ->
    let k = y.lo land 15 in
    num (x.lo lsl k) (x.hi lsl k)
  | Ast.Shr, Num x, Num y when y.lo = y.hi && x.lo >= 0 ->
    let k = y.lo land 15 in
    num (x.lo asr k) (x.hi asr k)
  | _ -> Top

and consume f (e : Tast.texpr) ~addr_of : aval =
  let pa = walk_place f e in
  (match pa.psite with
  | Some (loc, ty) when not addr_of -> judge f loc ty pa.pav e
  | _ -> ());
  pa.pav

and read_place f (lhs : Tast.texpr) : aval =
  match lhs.Tast.te with
  | Tast.Tlocal name -> get_local f name lhs.Tast.ty
  | Tast.Tcast (_, inner) -> read_place f inner
  | _ ->
    let _ = consume f lhs ~addr_of:false in
    default_of lhs.Tast.ty

and assign_to f (lhs : Tast.texpr) v =
  match lhs.Tast.te with
  | Tast.Tlocal name -> set_local f name lhs.Tast.ty v
  | Tast.Tcast (_, inner) -> assign_to f inner v
  | _ -> ignore (consume f lhs ~addr_of:false)

(* Update after Top_assign/++/-- where the place was already walked. *)
and set_root f (lhs : Tast.texpr) v =
  match lhs.Tast.te with
  | Tast.Tlocal name -> set_local f name lhs.Tast.ty v
  | Tast.Tcast (_, inner) -> set_root f inner v
  | _ -> ()

and walk_place f (e : Tast.texpr) : paddr =
  match e.Tast.te with
  | Tast.Tlocal name ->
    let pav =
      match safe_sizeof f.p.env e.Tast.ty with
      | Some sz -> Ptr (lobj name sz, { lo = 0; hi = 0 })
      | None -> Top
    in
    { pav; psite = None }
  | Tast.Tglobal name ->
    let pav =
      match safe_sizeof f.p.env e.Tast.ty with
      | Some sz -> Ptr (gobj name sz, { lo = 0; hi = 0 })
      | None -> Top
    in
    { pav; psite = None }
  | Tast.Tstr s -> { pav = Ptr (sobj s, { lo = 0; hi = 0 }); psite = None }
  | Tast.Tderef p ->
    { pav = walk f p; psite = Some (e.Tast.tloc, e.Tast.ty) }
  | Tast.Tarrow (p, fld) ->
    let v = walk f p in
    { pav = shift_av v fld.C.foffset; psite = Some (e.Tast.tloc, fld.C.ftype) }
  | Tast.Tmember (b, fld) ->
    (* codegen propagates the base's pending check through the member
       offset, so a site inherited from the base keeps its location
       but now covers the shifted address *)
    let pb = walk_place f b in
    {
      pav = shift_av pb.pav fld.C.foffset;
      psite =
        (match pb.psite with
        | Some (l, _) -> Some (l, fld.C.ftype)
        | None -> None);
    }
  | Tast.Tindex (base, idx) -> walk_index_place f e base idx
  | Tast.Tcast (_, inner) -> walk_place f inner
  | _ ->
    (* not an lvalue: codegen rejects this; walk for effects only *)
    let _ = walk f e in
    { pav = Top; psite = None }

and walk_index_place f e base idx =
  let elem_ty = e.Tast.ty in
  let es = safe_sizeof f.p.env elem_ty in
  match (base.Tast.ty, Codegen.fold_const idx) with
  | C.Array _, Some k ->
    (* codegen verifies constant indexes into arrays statically and
       reports its own error when one is out of range: no site here *)
    let pb = walk_place f base in
    let pav =
      match es with Some s -> shift_av pb.pav (k * s) | None -> Top
    in
    {
      pav;
      psite =
        (match pb.psite with
        | Some (l, _) -> Some (l, elem_ty)
        | None -> None);
    }
  | C.Array _, None ->
    (* codegen: index value first, then the base place *)
    let vi = walk f idx in
    let pb = walk_place f base in
    let pav = add_scaled pb.pav vi es in
    let psite =
      match pb.psite with
      | Some (l, _) -> Some (l, elem_ty)
      | None -> Some (e.Tast.tloc, elem_ty)
    in
    { pav; psite }
  | _ ->
    (* pointer indexing: base value first, then the index *)
    let vb = walk f base in
    let vi = walk f idx in
    { pav = add_scaled vb vi es; psite = Some (e.Tast.tloc, elem_ty) }

(* ------------------------------------------------------------------ *)
(* Statements *)

let rec stmt f (s : Tast.tstmt) : unit =
  match s with
  | Tast.Tsexpr e -> ignore (walk f e)
  | Tast.Tsdecl (name, ty, init) -> (
    match init with
    | Some (Tast.Ti_expr e) ->
      let v = walk f e in
      set_local f name ty v
    | Some (Tast.Ti_list es) ->
      List.iter (fun e -> ignore (walk f e)) es;
      Hashtbl.remove f.vals name
    | Some (Tast.Ti_str _) | None -> Hashtbl.remove f.vals name)
  | Tast.Tsif (c, a, b) ->
    ignore (walk f c);
    let pre = snapshot f in
    List.iter (stmt f) a;
    let post_a = snapshot f in
    restore f pre;
    List.iter (stmt f) b;
    merge_into f post_a
  | Tast.Tswhile (c, body) -> loop f ~cond:(Some c) ~pre_cond:true ~body ~step:None
  | Tast.Tsdo_while (body, c) ->
    loop f ~cond:(Some c) ~pre_cond:false ~body ~step:None
  | Tast.Tsfor (init, c, st, body) ->
    Option.iter (stmt f) init;
    loop f ~cond:c ~pre_cond:true ~body ~step:st
  | Tast.Tsreturn e -> Option.iter (fun e -> ignore (walk f e)) e
  | Tast.Tsbreak | Tast.Tscontinue -> ()
  | Tast.Tsswitch (e, cases, default) ->
    ignore (walk f e);
    let bodies = List.map snd cases @ Option.to_list default in
    let ks = assigned_in (List.concat bodies) [] in
    kill f ks;
    (* every case (and fallthrough) starts from the killed entry
       state, which over-approximates all paths into it *)
    let entry = snapshot f in
    List.iter
      (fun b ->
        restore f entry;
        List.iter (stmt f) b)
      bodies;
    restore f entry
  | Tast.Tsblock body -> List.iter (stmt f) body

(* ------------------------------------------------------------------ *)
(* Loop iteration bounds (for the WCET certifier).

   A loop gets a bound only when it is a plain counted loop the
   abstract state can decide from the entry environment:

   - the condition compares a tracked scalar local [i] against a
     constant ([i < K], [K > i], ...);
   - [i] is modified at exactly one site in the whole loop (body,
     step and condition together), that site is a top-level statement
     of the body or the [for] step — so it executes on every
     iteration — and it adds or subtracts a nonzero constant;
   - the body contains no [continue] binding to this loop (it could
     skip a body-level update);
   - the iteration sequence provably cannot wrap around 16 bits
     before the exit test fails (signedness follows codegen's rule:
     both operands [int] compares signed, anything else unsigned).

   The recorded value B is the maximum number of *body executions*
   per loop entry; the binary-side analysis charges B+1 executions of
   the header block to also cover the final failing test of
   while-style loops.  Everything else simply records no bound and
   the handler degrades to [Unbounded]. *)

and count_writes name e =
  let n = ref 0 in
  let rec root l =
    match l.Tast.te with
    | Tast.Tlocal m -> if m = name then incr n
    | Tast.Tcast (_, i) -> root i
    | _ -> ()
  in
  Tast.iter_expr
    (fun x ->
      match x.Tast.te with
      | Tast.Tassign (l, _) | Tast.Top_assign (_, l, _) -> root l
      | Tast.Tpre_incr l
      | Tast.Tpre_decr l
      | Tast.Tpost_incr l
      | Tast.Tpost_decr l ->
        root l
      | _ -> ())
    e;
  !n

(* [continue] statements binding to the current loop: recurse through
   if/block/switch but not into nested loops (their [continue]s bind
   there). *)
and has_own_continue stmts =
  List.exists
    (fun s ->
      match s with
      | Tast.Tscontinue -> true
      | Tast.Tsif (_, a, b) -> has_own_continue a || has_own_continue b
      | Tast.Tsblock b -> has_own_continue b
      | Tast.Tsswitch (_, cases, default) ->
        List.exists (fun (_, b) -> has_own_continue b) cases
        || (match default with Some b -> has_own_continue b | None -> false)
      | _ -> false)
    stmts

(* Recognize [e] as the canonical update of [name]: returns the signed
   step added per execution. *)
and update_step name (e : Tast.texpr) =
  let is_i x = match x.Tast.te with Tast.Tlocal m -> m = name | _ -> false in
  match e.Tast.te with
  | Tast.Tassign (l, r) when is_i l -> (
    match r.Tast.te with
    | Tast.Tbin (Ast.Add, a, b) when is_i a -> Codegen.fold_const b
    | Tast.Tbin (Ast.Add, a, b) when is_i b -> Codegen.fold_const a
    | Tast.Tbin (Ast.Sub, a, b) when is_i a ->
      Option.map (fun k -> -k) (Codegen.fold_const b)
    | _ -> None)
  | Tast.Top_assign (Ast.Add, l, r) when is_i l -> Codegen.fold_const r
  | Tast.Top_assign (Ast.Sub, l, r) when is_i l ->
    Option.map (fun k -> -k) (Codegen.fold_const r)
  | (Tast.Tpre_incr l | Tast.Tpost_incr l) when is_i l -> Some 1
  | (Tast.Tpre_decr l | Tast.Tpost_decr l) when is_i l -> Some (-1)
  | _ -> None

(* Max body executions for entry value in [elo, ehi], condition
   [i op K] tested before ([pre]) or after each body execution, [i]
   stepped by [s] per execution.  [None] when the sequence could wrap
   16 bits before the test fails or the shape is out of scope. *)
and iter_bound ~signed ~pre op k s (elo, ehi) =
  let ceil_div a b = (a + b - 1) / b in
  let lo_rep, hi_rep = if signed then (smin, smax) else (0, 0xFFFF) in
  (* unsigned compares see the 16-bit value, not the signed
     representative *)
  let k = if signed then k else k land 0xFFFF in
  if (not signed) && elo < 0 then None
  else if elo < lo_rep || ehi > hi_rep then None
  else
    let pre_bound () =
      match op with
      | Ast.Lt when s > 0 ->
        if k <= elo then Some 0
        else if k - 1 + s <= hi_rep then Some (ceil_div (k - elo) s)
        else None
      | Ast.Le when s > 0 ->
        if elo > k then Some 0
        else if k + s <= hi_rep then Some (((k - elo) / s) + 1)
        else None
      | Ast.Gt when s < 0 ->
        let d = -s in
        if ehi <= k then Some 0
        else if k + 1 - d >= lo_rep then Some (ceil_div (ehi - k) d)
        else None
      | Ast.Ge when s < 0 ->
        let d = -s in
        if ehi < k then Some 0
        else if k - d >= lo_rep then Some (((ehi - k) / d) + 1)
        else None
      | Ast.Ne when s = 1 && elo = ehi && elo <= k -> Some (k - elo)
      | Ast.Ne when s = -1 && elo = ehi && elo >= k -> Some (elo - k)
      | _ -> None
    in
    if pre then pre_bound ()
    else
      (* post-test (do-while): the body runs once before the first
         test, and the first update must itself not wrap *)
      let first_ok =
        if s > 0 then ehi + s <= hi_rep else elo + s >= lo_rep
      in
      if not first_ok then None
      else
        match op with
        | Ast.Ne ->
          (* the exit test must actually be reachable after >= 1 body
             execution: require strict inequality at entry *)
          if s = 1 && elo = ehi && elo < k then Some (k - elo)
          else if s = -1 && elo = ehi && elo > k then Some (elo - k)
          else None
        | _ -> Option.map (fun b -> b + 1) (pre_bound ())

and infer_loop_bound f ~cond ~pre_cond ~body ~step =
  match cond with
  | None -> ()
  | Some c -> (
    let mirror = function
      | Ast.Lt -> Ast.Gt
      | Ast.Le -> Ast.Ge
      | Ast.Gt -> Ast.Lt
      | Ast.Ge -> Ast.Le
      | op -> op
    in
    let shape =
      match c.Tast.te with
      | Tast.Tbin (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Ne) as op), a, b)
        -> (
        let signed = a.Tast.ty = C.Int && b.Tast.ty = C.Int in
        match (a.Tast.te, Codegen.fold_const b) with
        | Tast.Tlocal i, Some k -> Some (i, a.Tast.ty, op, k, signed)
        | _ -> (
          match (Codegen.fold_const a, b.Tast.te) with
          | Some k, Tast.Tlocal i -> Some (i, b.Tast.ty, mirror op, k, signed)
          | _ -> None))
      | _ -> None
    in
    match shape with
    | None -> ()
    | Some (i, ity, op, k, signed) ->
      if Hashtbl.mem f.tracked i && not (has_own_continue body) then begin
        (* exactly one modification of [i], guaranteed every iteration *)
        let in_cond = count_writes i c in
        let in_step =
          match step with Some st -> count_writes i st | None -> 0
        in
        let in_body =
          let n = ref 0 in
          List.iter
            (Tast.iter_stmt
               ~decl:(fun _ _ -> ())
               ~expr:(fun e -> n := !n + count_writes i e))
            body;
          !n
        in
        let shadowed =
          let sh = ref false in
          List.iter
            (Tast.iter_stmt
               ~decl:(fun n _ -> if n = i then sh := true)
               ~expr:(fun _ -> ()))
            body;
          !sh
        in
        let site_step =
          if shadowed || in_cond > 0 || in_body + in_step <> 1 then None
          else if in_step = 1 then Option.bind step (update_step i)
          else
            (* the single body write must be a whole top-level
               statement, so it executes on every iteration *)
            List.find_map
              (function
                | Tast.Tsexpr e when count_writes i e = 1 -> update_step i e
                | _ -> None)
              body
        in
        match site_step with
        | Some s when s <> 0 -> (
          match get_local f i ity with
          | Num r -> (
            match iter_bound ~signed ~pre:pre_cond op k s (r.lo, r.hi) with
            | Some b ->
              let prev = Hashtbl.find_opt f.p.loops c.Tast.tloc in
              if match prev with Some p -> b > p | None -> true then
                Hashtbl.replace f.p.loops c.Tast.tloc b
            | None -> ())
          | _ -> ())
        | _ -> ()
      end)

(* One pass is sound because everything assigned inside the loop is
   first killed to its type default: the entry state is then an
   invariant of every iteration. *)
and loop f ~cond ~pre_cond ~body ~step =
  (* bound inference reads the entry value of the induction variable,
     so it must run before the kill *)
  infer_loop_bound f ~cond ~pre_cond ~body ~step;
  let ks = assigned_in body (Option.to_list cond @ Option.to_list step) in
  kill f ks;
  let entry = snapshot f in
  if pre_cond then Option.iter (fun c -> ignore (walk f c)) cond;
  List.iter (stmt f) body;
  Option.iter (fun st -> ignore (walk f st)) step;
  if not pre_cond then Option.iter (fun c -> ignore (walk f c)) cond;
  restore f entry

(* ------------------------------------------------------------------ *)
(* Entry point *)

let do_func ctx (fn : Tast.tfunc) =
  let tracked = Hashtbl.create 16 in
  let add_decl name ty = if C.is_scalar ty then Hashtbl.replace tracked name ty in
  List.iter (fun (n, t) -> add_decl n t) fn.Tast.tfparams;
  List.iter
    (Tast.iter_stmt ~decl:add_decl ~expr:(fun _ -> ()))
    fn.Tast.tfbody;
  (* an address-taken local can change through any store: untrack it *)
  let untrack e =
    match e.Tast.te with
    | Tast.Taddr inner ->
      let rec root l =
        match l.Tast.te with
        | Tast.Tlocal n -> Hashtbl.remove tracked n
        | Tast.Tindex (b, _) | Tast.Tmember (b, _) -> root b
        | Tast.Tcast (_, i) -> root i
        | _ -> ()
      in
      root inner
    | _ -> ()
  in
  List.iter
    (Tast.iter_stmt ~decl:(fun _ _ -> ()) ~expr:(Tast.iter_expr untrack))
    fn.Tast.tfbody;
  let f = { p = ctx; tracked; vals = Hashtbl.create 16 } in
  List.iter (stmt f) fn.Tast.tfbody

let run_pass (prog : Tast.program) =
  let ctx =
    {
      env = prog.Tast.struct_env;
      sites = Hashtbl.create 64;
      loops = Hashtbl.create 16;
    }
  in
  List.iter (do_func ctx) prog.Tast.funcs;
  ctx

let analyze (prog : Tast.program) : Codegen.classifier =
  let ctx = run_pass prog in
  fun loc ->
    match Hashtbl.find_opt ctx.sites loc with
    | Some cls -> cls
    | None -> Codegen.Needs_check

let loop_bounds (prog : Tast.program) : Srcloc.t -> int option =
  let ctx = run_pass prog in
  fun loc -> Hashtbl.find_opt ctx.loops loc
