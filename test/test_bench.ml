(* Benchmark-harness tests: robust statistics, BENCH_*.json schema v2
   round-trip, the legacy schema-1 reader, and the noise-aware
   regression comparator (must flag a synthetic 20% regression and
   pass a self-compare). *)

module Stats = Amulet_bench_core.Stats
module Schema = Amulet_bench_core.Schema
module Hist = Amulet_obs.Hist
module Json = Amulet_obs.Json

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_median () =
  check_float "odd length" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |]);
  check_float "even length" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  check_float "empty" 0.0 (Stats.median [||])

let test_mad () =
  (* median 3, deviations [2;1;0;1;2] -> mad 1 *)
  check_float "mad" 1.0 (Stats.mad [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  check_float "constant data" 0.0 (Stats.mad [| 7.0; 7.0; 7.0 |])

let test_summarize () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_int "n" 5 s.Stats.n;
  check_float "median" 3.0 s.Stats.median;
  check_float "mean" 3.0 s.Stats.mean;
  check_bool "ci brackets the median" true
    (s.Stats.ci_lo <= s.Stats.median && s.Stats.median <= s.Stats.ci_hi);
  let one = Stats.summarize [| 42.0 |] in
  check_float "single trial has zero-width ci" 42.0 one.Stats.ci_lo;
  check_float "single trial has zero-width ci (hi)" 42.0 one.Stats.ci_hi

(* ------------------------------------------------------------------ *)
(* Schema *)

let hist_of values =
  let h = Hist.create () in
  List.iter (Hist.record h) values;
  h

let mk_mode ?(cpd = 2000.0) ?(energy = Some 6.5e-7) name rates =
  {
    Schema.m_mode = name;
    m_rate =
      {
        Schema.r_summary = Stats.summarize (Array.of_list rates);
        r_trials = rates;
      };
    m_cycles_per_dispatch = cpd;
    m_latency = Some (hist_of [ 8000; 8100; 8200; 9000 ]);
    m_handler = Some (hist_of [ 2000; 2000; 2010 ]);
    m_class_cycles =
      [ ("app_code", 90_000); ("os_gate", 150_000); ("mpu_config", 12_000) ];
    m_energy_per_dispatch_j = energy;
  }

let sample_doc () =
  {
    Schema.d_schema = 2;
    d_bench = "gateheavy";
    d_quick = true;
    d_trials = 3;
    d_dispatches = 300;
    d_warmup = 50;
    d_host = [ ("ocaml", "5.1.1"); ("os", "Unix") ];
    d_modes =
      [
        mk_mode "no-isolation" [ 1.5e6; 1.52e6; 1.49e6 ];
        mk_mode ~cpd:3150.0 "mpu" [ 2.0e6; 2.05e6; 1.98e6 ];
      ];
    d_gate =
      {
        Schema.g_ctx_switch = [ ("no-isolation", 36.3); ("mpu", 67.8) ];
        g_cert =
          [
            {
              Schema.c_mode = "mpu";
              c_dynamic = 3278.0;
              c_certified = 3150.0;
              c_per_gate = 8.0;
              c_services = [ "api_log_append"; "api_read_accel" ];
            };
          ];
      };
  }

let test_v2_roundtrip () =
  let d = sample_doc () in
  match Schema.of_json (Schema.to_json d) with
  | Error e -> Alcotest.failf "v2 re-read failed: %s" e
  | Ok d' ->
    check_int "schema" 2 d'.Schema.d_schema;
    check_int "trials" d.Schema.d_trials d'.Schema.d_trials;
    Alcotest.(check (list (pair string string)))
      "host metadata" d.Schema.d_host d'.Schema.d_host;
    List.iter2
      (fun (m : Schema.mode_row) (m' : Schema.mode_row) ->
        Alcotest.(check string) "mode" m.Schema.m_mode m'.Schema.m_mode;
        check_float "cycles/dispatch" m.Schema.m_cycles_per_dispatch
          m'.Schema.m_cycles_per_dispatch;
        check_bool "latency hist survives" true
          (match (m.Schema.m_latency, m'.Schema.m_latency) with
          | Some a, Some b -> Hist.equal a b
          | _ -> false);
        check_bool "handler hist survives" true
          (match (m.Schema.m_handler, m'.Schema.m_handler) with
          | Some a, Some b -> Hist.equal a b
          | _ -> false);
        Alcotest.(check (list (pair string int)))
          "class cycles" m.Schema.m_class_cycles m'.Schema.m_class_cycles;
        check_bool "energy survives" true
          (match (m.Schema.m_energy_per_dispatch_j, m'.Schema.m_energy_per_dispatch_j) with
          | Some a, Some b -> Float.abs (a -. b) < 1e-12
          | _ -> false))
      d.Schema.d_modes d'.Schema.d_modes;
    check_int "gate cert rows" 1 (List.length d'.Schema.d_gate.Schema.g_cert)

(* A trimmed copy of the schema the repo's earlier PRs committed. *)
let v1_text =
  {|{"bench":"gateheavy","schema":1,"quick":false,"dispatches":5000,
"simulator":[
 {"mode":"no-isolation","sim_cycles":10945000,"host_seconds":6.77,"cycles_per_sec":1615910.0},
 {"mode":"mpu","sim_cycles":15750000,"host_seconds":7.23,"cycles_per_sec":2176700.0}],
"gate_costs":{"context_switch_cycles":{"no-isolation":36.34,"mpu":67.84},
"gate_cert":[{"mode":"mpu","dynamic_cycles":3278.0,"certified_cycles":3150.0,
"per_gate_cycles":8.0,"services":["api_log_append","api_read_accel"]}]}}|}

let test_v1_reader () =
  match Schema.of_json (Json.parse v1_text) with
  | Error e -> Alcotest.failf "v1 read failed: %s" e
  | Ok d ->
    check_int "schema detected" 1 d.Schema.d_schema;
    check_int "one implicit trial" 1 d.Schema.d_trials;
    let no_iso = List.hd d.Schema.d_modes in
    check_float "cycles/dispatch derived from sim_cycles" 2189.0
      no_iso.Schema.m_cycles_per_dispatch;
    check_float "single-trial rate" 1615910.0
      no_iso.Schema.m_rate.Schema.r_summary.Stats.median;
    check_bool "no histograms in v1" true (no_iso.Schema.m_latency = None);
    check_float "ctx switch carried over" 67.84
      (List.assoc "mpu" d.Schema.d_gate.Schema.g_ctx_switch)

(* ------------------------------------------------------------------ *)
(* Comparator *)

let compare_default ~current ~baseline =
  Schema.compare_docs ~current ~baseline ~det_threshold_pct:10.0
    ~rate_threshold_pct:None

let test_self_compare_passes () =
  let d = sample_doc () in
  let vs = compare_default ~current:d ~baseline:d in
  check_bool "verdicts produced" true (vs <> []);
  check_bool "no regression against self" false (Schema.regressed vs)

let test_synthetic_regression_detected () =
  let baseline = sample_doc () in
  (* 20% more simulated cycles per dispatch in every mode *)
  let current =
    {
      baseline with
      Schema.d_modes =
        List.map
          (fun (m : Schema.mode_row) ->
            {
              m with
              Schema.m_cycles_per_dispatch = m.Schema.m_cycles_per_dispatch *. 1.2;
            })
          baseline.Schema.d_modes;
    }
  in
  let vs = compare_default ~current ~baseline in
  check_bool "20% regression detected" true (Schema.regressed vs);
  let offenders =
    List.filter (fun v -> v.Schema.v_regressed) vs
  in
  check_bool "every mode flagged" true (List.length offenders >= 2);
  List.iter
    (fun v ->
      Alcotest.(check string) "metric" "cycles/dispatch" v.Schema.v_metric;
      check_bool "~20% change reported" true
        (Float.abs (v.Schema.v_change_pct -. 20.0) < 0.5))
    offenders

let test_improvement_not_flagged () =
  let baseline = sample_doc () in
  let current =
    {
      baseline with
      Schema.d_modes =
        List.map
          (fun (m : Schema.mode_row) ->
            {
              m with
              Schema.m_cycles_per_dispatch = m.Schema.m_cycles_per_dispatch *. 0.8;
            })
          baseline.Schema.d_modes;
    }
  in
  check_bool "improvement passes" false
    (Schema.regressed (compare_default ~current ~baseline))

let test_rate_noise_gate () =
  let mk rates = { (sample_doc ()) with Schema.d_modes = [ mk_mode "mpu" rates ] } in
  let baseline = mk [ 2.00e6; 2.01e6; 1.99e6 ] in
  (* 15% slower but trials so noisy that 3 sigma swallows the drop *)
  let noisy = mk [ 1.7e6; 2.4e6; 1.1e6 ] in
  let vs =
    Schema.compare_docs ~current:noisy ~baseline ~det_threshold_pct:10.0
      ~rate_threshold_pct:(Some 10.0)
  in
  let rate_v =
    List.find (fun v -> v.Schema.v_metric = "cycles/sec") vs
  in
  check_bool "noisy drop does not gate" false rate_v.Schema.v_regressed;
  (* same 15% drop with tight trials must gate *)
  let tight = mk [ 1.70e6; 1.71e6; 1.69e6 ] in
  let vs =
    Schema.compare_docs ~current:tight ~baseline ~det_threshold_pct:10.0
      ~rate_threshold_pct:(Some 10.0)
  in
  let rate_v =
    List.find (fun v -> v.Schema.v_metric = "cycles/sec") vs
  in
  check_bool "clean drop gates" true rate_v.Schema.v_regressed

let test_latency_regression_detected () =
  let baseline = sample_doc () in
  let current =
    {
      baseline with
      Schema.d_modes =
        List.map
          (fun (m : Schema.mode_row) ->
            { m with Schema.m_latency = Some (hist_of [ 11000; 11500; 12000 ]) })
          baseline.Schema.d_modes;
    }
  in
  let vs = compare_default ~current ~baseline in
  check_bool "latency p99 blowup flagged" true
    (List.exists
       (fun v -> v.Schema.v_metric = "latency p99" && v.Schema.v_regressed)
       vs)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "bench"
    [
      ( "stats",
        [
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "mad" `Quick test_mad;
          Alcotest.test_case "summarize" `Quick test_summarize;
        ] );
      ( "schema",
        [
          Alcotest.test_case "v2 round-trip" `Quick test_v2_roundtrip;
          Alcotest.test_case "v1 reader" `Quick test_v1_reader;
        ] );
      ( "compare",
        [
          Alcotest.test_case "self-compare passes" `Quick
            test_self_compare_passes;
          Alcotest.test_case "synthetic 20% regression" `Quick
            test_synthetic_regression_detected;
          Alcotest.test_case "improvement passes" `Quick
            test_improvement_not_flagged;
          Alcotest.test_case "rate noise gate" `Quick test_rate_noise_gate;
          Alcotest.test_case "latency regression" `Quick
            test_latency_regression_detected;
        ] );
    ]
