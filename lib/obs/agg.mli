(** Streaming aggregation of {!Obs} records into mergeable
    per-key statistics.

    An [Agg.t] folds spans, counters and instants into {!Hist}
    histograms as they are emitted — attach it as a sink with {!sink}
    or feed parsed records with {!add} — so percentile queries never
    require retaining samples: memory is O(distinct keys × buckets)
    regardless of run length.  Two aggregates built from disjoint
    record streams {!merge} into exactly the aggregate of the
    combined stream (per-domain fleet/campaign shards combine
    losslessly). *)

type t

val create : unit -> t

val add : t -> Obs.record -> unit

val sink : t -> Obs.sink
(** Feed every emitted record into the aggregate.  [close] is a
    no-op: the aggregate stays queryable after the context closes. *)

val merge : t -> t -> t
(** Pure; associative and commutative. *)

val records : t -> int
(** Total records folded in. *)

val time_range : t -> (int * int) option
(** [Some (first, last)] timestamp covered (span ends included). *)

(** {1 Spans} — duration histogram per [(cat, name)] *)

val span_hist : t -> cat:string -> name:string -> Hist.t option
val spans : t -> ((string * string) * Hist.t) list
(** Sorted by [(cat, name)]. *)

(** {1 Counters} — value histogram plus last/max per name *)

type counter = {
  c_hist : Hist.t;  (** distribution of every recorded value *)
  c_last : int;  (** value with the latest timestamp *)
  c_last_ts : int;
  c_max : int;
}

val counter : t -> string -> counter option
val counters : t -> (string * counter) list
(** Sorted by name. *)

(** {1 Instants} — occurrence count per [(cat, name)] *)

val instants : t -> ((string * string) * int) list
(** Sorted by [(cat, name)]. *)

val fault_cap : int

val faults : t -> (int * string) list
(** The first {!fault_cap} fault instants (timestamp, message),
    chronological; retention is bounded even if the run faults
    forever. *)

val fault_count : t -> int
(** Total fault instants seen, including those beyond the cap. *)
