type line = { addr : int; words : int list; text : string }

let name_at symbols addr =
  List.fold_left
    (fun acc (name, a) ->
      if a = addr && String.length name > 0 && name.[0] <> '_' then Some name
      else
        match acc with
        | Some _ -> acc
        | None -> if a = addr then Some name else None)
    None symbols

let annotate symbols instr ~addr =
  let target =
    match instr with
    | Opcode.Jump (_, off) -> Some (addr + 2 + (2 * off))
    | Opcode.Fmt2 (Opcode.CALL, _, Opcode.S_immediate t) -> Some t
    | Opcode.Fmt1 (Opcode.MOV, _, Opcode.S_immediate t, Opcode.D_reg 0) ->
      Some t
    | _ -> None
  in
  match target with
  | None -> ""
  | Some t -> (
    match name_at symbols t with
    | Some n -> Printf.sprintf " ; -> %s" n
    | None -> Printf.sprintf " ; -> %04X" (t land 0xFFFF))

let range ?(symbols = []) ~fetch ~lo ~hi () =
  let lines = ref [] in
  let addr = ref (lo land lnot 1) in
  while !addr < hi do
    let a = !addr in
    (match name_at symbols a with
    | Some n -> lines := { addr = a; words = []; text = n ^ ":" } :: !lines
    | None -> ());
    (match Decode.decode ~fetch ~addr:a with
    | instr, len when a + len <= hi ->
      let words = List.init (len / 2) (fun i -> fetch (a + (2 * i))) in
      let text =
        Printf.sprintf "        %s%s" (Opcode.to_string instr)
          (annotate symbols instr ~addr:a)
      in
      lines := { addr = a; words; text } :: !lines;
      addr := a + len
    | _, _ ->
      let w = fetch a in
      lines :=
        { addr = a; words = [ w ]; text = Printf.sprintf "        .word 0x%04X" w }
        :: !lines;
      addr := a + 2
    | exception Decode.Illegal w ->
      lines :=
        { addr = a; words = [ w ]; text = Printf.sprintf "        .word 0x%04X" w }
        :: !lines;
      addr := a + 2)
  done;
  List.rev !lines

let pp_line ppf l =
  if l.words = [] then Format.fprintf ppf "%s" l.text
  else
    Format.fprintf ppf "%04X: %-14s %s" l.addr
      (String.concat " " (List.map (Printf.sprintf "%04X") l.words))
      l.text

let pp_listing ppf lines =
  List.iter (fun l -> Format.fprintf ppf "%a@." pp_line l) lines
