lib/core/paper.mli: Amulet_cc
