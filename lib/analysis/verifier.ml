(* Independent SFI verifier: abstract interpretation of a linked app
   code section over unsigned 16-bit intervals.  See verifier.mli for
   the policy and DESIGN.md for the soundness/TCB discussion.

   The verifier shares no code with the compiler's check insertion: it
   reuses only the instruction decoder, the linker's symbol table and
   the section-naming convention, so a bug in codegen or in the range
   analysis cannot silently produce an accepted-but-unsafe image. *)

module I = Amulet_link.Image
module O = Amulet_mcu.Opcode
module W = Amulet_mcu.Word
module M = Amulet_mcu.Machine
module T = Amulet_mcu.Timer
module D = Amulet_mcu.Decode
module Iso = Amulet_cc.Isolation

type violation = { vaddr : int; vtext : string; vreason : string }

type stats = {
  v_insns : int;
  v_blocks : int;
  v_stores : int;
  v_loads : int;
  v_branches : int;
  v_rets : int;
}

let pp_violation ppf v =
  Format.fprintf ppf "%04X: %-28s %s" v.vaddr v.vtext v.vreason

let pp_stats ppf s =
  Format.fprintf ppf
    "%d instructions in %d blocks; proved %d stores, %d loads, %d indirect \
     branches, %d returns"
    s.v_insns s.v_blocks s.v_stores s.v_loads s.v_branches s.v_rets

(* ------------------------------------------------------------------ *)
(* Abstract values *)

(* [Iv] is an unsigned interval; [Shadow] marks a register holding the
   InfoMem shadow-stack pointer (only obtainable by loading
   &shadow_sp_addr); [Frame] marks R4 holding the function's own frame
   pointer (only obtainable as MOV SP->R4 or POP R4). *)
type av = Any | Iv of int * int | Shadow | Frame

let av_join a b =
  match (a, b) with
  | Iv (l1, h1), Iv (l2, h2) -> Iv (min l1 l2, max h1 h2)
  | Shadow, Shadow -> Shadow
  | Frame, Frame -> Frame
  | _ -> if a = b then a else Any

(* Arithmetic stays in the unsigned 16-bit range; anything that could
   wrap collapses to Any (the concrete machine wraps mod 2^16, so an
   interval that stays in range is exact). *)
let av_add a b =
  match (a, b) with
  | Iv (l1, h1), Iv (l2, h2) when h1 + h2 <= 0xFFFF -> Iv (l1 + l2, h1 + h2)
  | Shadow, Iv (2, 2) | Iv (2, 2), Shadow -> Shadow
  | _ -> Any

let av_sub a b =
  match (a, b) with
  | Iv (l1, h1), Iv (l2, h2) when l1 - h2 >= 0 -> Iv (l1 - h2, h1 - l2)
  | Shadow, Iv (2, 2) -> Shadow
  | _ -> Any

let av_and a b =
  match (a, b) with
  | Iv (_, h1), Iv (_, h2) -> Iv (0, min h1 h2)
  | Iv (_, h), _ | _, Iv (_, h) -> Iv (0, h)
  | _ -> Any

(* dst AND NOT src: only clears bits *)
let av_bic dst src =
  ignore src;
  match dst with Iv (_, h) -> Iv (0, h) | _ -> Any

(* OR/XOR of values below 2^k stay below 2^k *)
let pow2_mask h =
  let m = ref 1 in
  while !m <= h do
    m := !m * 2
  done;
  !m - 1

let av_bis a b =
  match (a, b) with
  | Iv (l1, h1), Iv (l2, h2) -> Iv (max l1 l2, pow2_mask (max h1 h2))
  | _ -> Any

let av_xor a b =
  match (a, b) with
  | Iv (_, h1), Iv (_, h2) -> Iv (0, pow2_mask (max h1 h2))
  | _ -> Any

(* value written to a register by a byte-width operation *)
let byte_clamp w v =
  match (w, v) with
  | W.W16, _ -> v
  | W.W8, Iv (l, h) when h <= 0xFF -> Iv (l, h)
  | W.W8, _ -> Iv (0, 0xFF)

(* low byte of a register read at byte width *)
let byte_read w v =
  match (w, v) with
  | W.W16, _ -> v
  | W.W8, Iv (l, h) when h <= 0xFF -> Iv (l, h)
  | W.W8, _ -> Iv (0, 0xFF)

(* ------------------------------------------------------------------ *)
(* Abstract machine state *)

(* [tos] abstracts the word at 0(SP) — the return-address slot the
   compiler's epilogue guard inspects; [tos_shadow] records that the
   shadow-stack comparison proved it untampered.  Both die on any
   store, SP write or call. *)
type state = { regs : av array; mutable tos : av; mutable tos_shadow : bool }

let top_state () =
  let s = { regs = Array.make 16 Any; tos = Any; tos_shadow = false } in
  s.regs.(4) <- Frame;
  (* callers (trampoline/other verified functions) maintain R4 *)
  s

let copy_state st = { st with regs = Array.copy st.regs }

let state_join a b =
  {
    regs = Array.init 16 (fun i -> av_join a.regs.(i) b.regs.(i));
    tos = av_join a.tos b.tos;
    tos_shadow = a.tos_shadow && b.tos_shadow;
  }

let state_equal a b =
  a.regs = b.regs && a.tos = b.tos && a.tos_shadow = b.tos_shadow

(* cells a CMP/Jcc pair can refine *)
type cell = Cell_reg of int | Cell_tos
type cmp_src = Cs_iv of int * int | Cs_shadow

(* ------------------------------------------------------------------ *)
(* Verification context *)

type ctx = {
  mode : Iso.mode;
  code_lo : int;
  code_hi : int;
  data_lo : int;
  data_hi : int;
  extern_ok : (int, string) Hashtbl.t;  (* whitelisted call/branch targets *)
  bc_addr : int option;  (* __bounds_check, when linked *)
  fetch : int -> int;
}

type recorder = {
  viols : (int * string, violation) Hashtbl.t;
  visited : (int, unit) Hashtbl.t;
  passed : (int * char, unit) Hashtbl.t;
}

let checked ctx = ctx.mode <> Iso.No_isolation

(* policy for a dynamic access whose start address is in [l, h] *)
let region_ok ctx (l, h) =
  match ctx.mode with
  | Iso.No_isolation -> true
  | Iso.Mpu_assisted -> l >= ctx.data_lo (* MPU enforces the upper bound *)
  | Iso.Software_only | Iso.Feature_limited ->
    l >= ctx.data_lo && h < ctx.data_hi

let code_ok ctx (l, h) =
  match ctx.mode with
  | Iso.No_isolation -> true
  | Iso.Mpu_assisted -> l >= ctx.code_lo
  | Iso.Software_only | Iso.Feature_limited ->
    l >= ctx.code_lo && h < ctx.code_hi

(* absolute addresses an app may always write / read *)
let abs_store_ok ctx a =
  (a >= ctx.data_lo && a < ctx.data_hi)
  || List.mem a
       [
         M.halt_port; M.console_port; M.sw_fault_port; T.ctl_addr;
         T.ex0_addr; Iso.shadow_sp_addr;
       ]

let abs_load_ok ctx a =
  (a >= ctx.data_lo && a < ctx.data_hi)
  || List.mem a [ T.counter_addr; Iso.shadow_sp_addr ]

let bounds_of = function Iv (l, h) -> (l, h) | _ -> (0, 0xFFFF)

let helper_names =
  [
    "__mulhi"; "__udivhi"; "__udivmod"; "__umodhi"; "__divhi"; "__modhi";
    "__shlhi"; "__shrhi"; "__sarhi"; "__bounds_check"; "__osreturn";
  ]

(* ------------------------------------------------------------------ *)
(* Single-trace interpreter.

   Simulates straight-line code from [addr0] with entry state [st0]
   until a control transfer, producing the successor edges (with
   conditional-branch refinement applied) and any in-section call
   targets.  With [recorder] set it also replays the policy checks and
   records violations — used for the final pass over the fixpoint. *)

let run ctx ?recorder st0 addr0 =
  let st = copy_state st0 in
  let last_cmp = ref None in
  let carry_clr = ref false in
  let prev1 = ref None and prev2 = ref None in
  let succs = ref [] and calls = ref [] in
  let addr = ref addr0 in
  let stop = ref false in
  let viol a insn reason =
    if checked ctx then
      match recorder with
      | None -> ()
      | Some r ->
        if not (Hashtbl.mem r.viols (a, reason)) then
          Hashtbl.replace r.viols (a, reason)
            {
              vaddr = a;
              vtext =
                (match insn with Some i -> O.to_string i | None -> "?");
              vreason = reason;
            }
  in
  let pass a kind =
    match recorder with
    | None -> ()
    | Some r -> Hashtbl.replace r.passed (a, kind) ()
  in
  let kill_tos () =
    st.tos <- Any;
    st.tos_shadow <- false;
    match !last_cmp with
    | Some (_, Cell_tos) -> last_cmp := None
    | _ -> ()
  in
  let set_reg r v =
    st.regs.(r) <- v;
    (match !last_cmp with
    | Some (_, Cell_reg r') when r' = r -> last_cmp := None
    | _ -> ());
    if r = 1 then kill_tos ()
  in
  let add_succ a insn t st' =
    if t >= ctx.code_lo && t < ctx.code_hi then succs := (t, st') :: !succs
    else viol a insn "jump target outside the app code section"
  in
  (* dynamic memory access through a computed address *)
  let check_dyn a insn ~store v =
    if region_ok ctx (bounds_of v) then
      pass a (if store then 's' else 'l')
    else
      viol a insn
        (Printf.sprintf "%s address not proven inside the app data section"
           (if store then "store" else "load"))
  in
  (* an x(Rn)/@Rn operand: structurally trusted bases, else dynamic *)
  let check_indexed a insn ~store r off =
    match st.regs.(r) with
    | _ when r = 1 -> () (* SP-relative: stack discipline (TCB) *)
    | Frame -> () (* FP-relative with proven frame pointer *)
    | Shadow -> () (* shadow-stack maintenance pattern *)
    | v ->
      let soff = if off land 0x8000 <> 0 then off - 0x10000 else off in
      let v =
        if soff = 0 then v
        else
          match v with
          | Iv (l, h) when l + soff >= 0 && h + soff <= 0xFFFF ->
            Iv (l + soff, h + soff)
          | _ -> Any
      in
      check_dyn a insn ~store v
  in
  let check_abs a insn ~store x =
    let ok = if store then abs_store_ok ctx x else abs_load_ok ctx x in
    if not ok then
      viol a insn
        (Printf.sprintf "%s to address 0x%04X outside the app data section"
           (if store then "store" else "load")
           x)
  in
  (* evaluate a source operand: side checks + post-increment + value *)
  let src_av a insn w s =
    match s with
    | O.S_immediate k ->
      let k = k land 0xFFFF in
      let k = if w = W.W8 then k land 0xFF else k in
      Iv (k, k)
    | O.S_reg r -> byte_read w st.regs.(r)
    | O.S_indexed (r, off) ->
      check_indexed a insn ~store:false r off;
      if w = W.W8 then Iv (0, 0xFF) else Any
    | O.S_absolute x ->
      check_abs a insn ~store:false x;
      if x = Iso.shadow_sp_addr && w = W.W16 then Shadow
      else if w = W.W8 then Iv (0, 0xFF)
      else Any
    | O.S_indirect r ->
      check_indexed a insn ~store:false r 0;
      if w = W.W8 then Iv (0, 0xFF) else Any
    | O.S_indirect_inc r ->
      check_indexed a insn ~store:false r 0;
      let step = if w = W.W8 then 1 else 2 in
      set_reg r (av_add st.regs.(r) (Iv (step, step)));
      if w = W.W8 then Iv (0, 0xFF) else Any
  in
  let transfer op cur sav =
    match op with
    | O.MOV -> sav
    | O.ADD -> av_add cur sav
    | O.SUB -> av_sub cur sav
    | O.AND -> av_and cur sav
    | O.BIC -> av_bic cur sav
    | O.BIS -> av_bis cur sav
    | O.XOR -> av_xor cur sav
    | O.ADDC | O.SUBC | O.DADD -> Any
    | O.CMP | O.BIT -> cur
  in
  (* conditional-edge refinement from the live CMP *)
  let get_cell = function Cell_reg r -> st.regs.(r) | Cell_tos -> st.tos in
  let refine cond taken =
    match !last_cmp with
    | None -> Some (copy_state st)
    | Some (Cs_shadow, Cell_tos) ->
      let stc = copy_state st in
      if cond = O.JEQ && taken then stc.tos_shadow <- true;
      Some stc
    | Some (Cs_shadow, _) -> Some (copy_state st)
    | Some (Cs_iv (k1, k2), c) -> (
      match get_cell c with
      | Shadow | Frame -> Some (copy_state st)
      | v -> (
        let l, h = bounds_of v in
        let nb =
          (* CMP computes cell - src: JC taken means cell >= src *)
          match (cond, taken) with
          | O.JC, true | O.JNC, false -> Some (max l k1, h)
          | O.JC, false | O.JNC, true -> Some (l, min h (k2 - 1))
          | O.JEQ, true -> Some (max l k1, min h k2)
          | _ -> None
        in
        match nb with
        | None -> Some (copy_state st)
        | Some (l', h') ->
          if l' > h' then None (* infeasible edge *)
          else
            let stc = copy_state st in
            (match c with
            | Cell_reg r -> stc.regs.(r) <- Iv (l', h')
            | Cell_tos -> stc.tos <- Iv (l', h'));
            Some stc))
  in
  while not !stop do
    let a = !addr in
    if a < ctx.code_lo || a >= ctx.code_hi then begin
      viol a None "control runs past the end of the code section";
      stop := true
    end
    else
      match D.decode ~fetch:ctx.fetch ~addr:a with
      | exception D.Illegal w ->
        viol a None (Printf.sprintf "undecodable word 0x%04X" w);
        stop := true
      | insn, size ->
        (match recorder with
        | Some r -> Hashtbl.replace r.visited a ()
        | None -> ());
        let ii = Some insn in
        let next_cmp = ref None in
        (match insn with
        (* ---- control transfers ---- *)
        | O.Jump (O.JMP, off) ->
          add_succ a ii (a + 2 + (2 * off)) (copy_state st);
          stop := true
        | O.Jump (cond, off) ->
          (match refine cond true with
          | Some st' -> add_succ a ii (a + 2 + (2 * off)) st'
          | None -> ());
          (match refine cond false with
          | Some st' -> add_succ a ii (a + size) st'
          | None -> ());
          stop := true
        | O.Reti ->
          viol a ii "RETI in application code";
          stop := true
        | O.Fmt1 (O.MOV, _, O.S_indirect_inc 1, O.D_reg 0) ->
          (* RET: the return address must be proven by the epilogue
             guard (or the shadow-stack comparison) in the modes whose
             compiler inserts one *)
          (if Iso.checks_lower_bound ctx.mode then
             if st.tos_shadow then pass a 'r'
             else if code_ok ctx (bounds_of st.tos) then pass a 'r'
             else
               viol a ii
                 "return address not proven inside the app code section");
          stop := true
        | O.Fmt1 (O.MOV, _, O.S_immediate k, O.D_reg 0) ->
          (* BR #addr *)
          let k = k land 0xFFFF in
          if k >= ctx.code_lo && k < ctx.code_hi then
            add_succ a ii k (copy_state st)
          else if not (Hashtbl.mem ctx.extern_ok k) then
            viol a ii
              (Printf.sprintf
                 "branch to 0x%04X, outside the section and not a runtime \
                  entry"
                 k);
          stop := true
        | O.Fmt1 (_, _, _, O.D_reg 0) ->
          (* any other PC write: the compiler never emits computed
             branches (indirect control flow goes through CALL after a
             code-bounds check), so reject them outright *)
          viol a ii "computed branch in application code";
          stop := true
        (* ---- calls ---- *)
        | O.Fmt2 (O.CALL, _, s) ->
          (match s with
          | O.S_immediate k ->
            let k = k land 0xFFFF in
            if k >= ctx.code_lo && k < ctx.code_hi then
              calls := k :: !calls
            else if not (Hashtbl.mem ctx.extern_ok k) then
              viol a ii
                (Printf.sprintf
                   "call to 0x%04X, outside the section and not a runtime \
                    entry"
                   k)
          | O.S_reg r ->
            if ctx.mode = Iso.Feature_limited then
              viol a ii "indirect call in a feature-limited image"
            else if code_ok ctx (bounds_of st.regs.(r)) then pass a 'b'
            else
              viol a ii
                "indirect call target not proven inside the app code section"
          | _ -> viol a ii "indirect call through a memory operand");
          (* refine the Feature-Limited array index certified by
             __bounds_check: MOV Ri,R14; MOV #len,R15; CALL *)
          let bc_refine =
            match (s, ctx.bc_addr, !prev1, !prev2) with
            | ( O.S_immediate k,
                Some bc,
                Some (O.Fmt1 (O.MOV, W.W16, O.S_immediate n, O.D_reg 15)),
                Some (O.Fmt1 (O.MOV, W.W16, O.S_reg rs, O.D_reg 14)) )
              when k land 0xFFFF = bc && n > 0 ->
              Some (rs, n)
            | _ -> None
          in
          (* caller-saved registers and the flags die across any call *)
          for r = 12 to 15 do
            set_reg r Any
          done;
          kill_tos ();
          (match bc_refine with
          | Some (rs, n) ->
            set_reg rs (Iv (0, n - 1));
            set_reg 14 (Iv (0, n - 1))
          | None -> ());
          carry_clr := false
        (* ---- other single-operand ---- *)
        | O.Fmt2 (O.PUSH, w, s) ->
          ignore (src_av a ii w s);
          kill_tos () (* SP moved *)
        | O.Fmt2 ((O.RRA | O.RRC | O.SWPB | O.SXT) as op1, w, s) ->
          (match s with
          | O.S_reg r ->
            let v =
              match (op1, st.regs.(r)) with
              | O.RRA, Iv (l, h) when h <= 0x7FFF -> Iv (l lsr 1, h lsr 1)
              | O.RRC, Iv (l, h) when !carry_clr -> Iv (l lsr 1, h lsr 1)
              | _ -> Any
            in
            set_reg r (byte_clamp w v)
          | O.S_indexed (r, off) -> check_indexed a ii ~store:true r off
          | O.S_indirect r | O.S_indirect_inc r ->
            check_indexed a ii ~store:true r 0
          | O.S_absolute x -> check_abs a ii ~store:true x
          | O.S_immediate _ -> viol a ii "single-operand op on an immediate");
          carry_clr := false
        (* ---- two-operand ---- *)
        | O.Fmt1 (op, w, s, d) ->
          let sav = src_av a ii w s in
          (match d with
          | O.D_reg rd ->
            if O.writes_back op then begin
              let v =
                match (op, w, s, rd) with
                (* frame-pointer discipline: only MOV SP->R4 / POP R4
                   re-establish a trusted frame pointer *)
                | O.MOV, W.W16, O.S_reg 1, 4 -> Frame
                | O.MOV, W.W16, O.S_indirect_inc 1, 4 -> Frame
                | _ -> byte_clamp w (transfer op st.regs.(rd) sav)
              in
              set_reg rd v
            end
          | O.D_indexed (rd, off) ->
            check_indexed a ii ~store:(O.writes_back op) rd off;
            if O.writes_back op then kill_tos ()
          | O.D_absolute x ->
            check_abs a ii ~store:(O.writes_back op) x;
            if O.writes_back op then kill_tos ());
          (* comparison bookkeeping for the following Jcc *)
          (if op = O.CMP && w = W.W16 then
             let ccell =
               match d with
               | O.D_reg r -> Some (Cell_reg r)
               | O.D_indexed (1, 0) -> Some Cell_tos
               | _ -> None
             in
             let csrc =
               match s with
               | O.S_immediate k -> Some (Cs_iv (k land 0xFFFF, k land 0xFFFF))
               | O.S_reg rs -> (
                 match st.regs.(rs) with
                 | Iv (l, h) -> Some (Cs_iv (l, h))
                 | _ -> None)
               | O.S_indirect rs when st.regs.(rs) = Shadow -> Some Cs_shadow
               | _ -> None
             in
             match (ccell, csrc) with
             | Some c, Some cs -> next_cmp := Some (cs, c)
             | _ -> ());
          if op = O.BIC && s = O.S_immediate 1 && d = O.D_reg 2 then
            (* BIC #1,SR: the carry-clearing idiom before RRC *)
            carry_clr := true
          else if O.sets_flags op then begin
            last_cmp := !next_cmp;
            carry_clr := false
          end);
        prev2 := !prev1;
        prev1 := Some insn;
        if not !stop then addr := a + size
  done;
  (!succs, !calls)

(* ------------------------------------------------------------------ *)
(* Whole-section verification *)

let make_fetch (image : I.t) =
  let chunks = image.I.chunks in
  fun a ->
    let rec go = function
      | [] -> 0
      | (base, b) :: rest ->
        if a >= base && a + 1 < base + Bytes.length b then
          Char.code (Bytes.get b (a - base))
          lor (Char.code (Bytes.get b (a - base + 1)) lsl 8)
        else go rest
    in
    go chunks

(* External control can only enter an app at its function symbols
   (<prefix>$name with no further '$' — compiler-internal labels use
   "$$") or at its exit stub; everything else is reached by edges. *)
let entry_points (image : I.t) ~prefix ~code_lo ~code_hi =
  let pl = String.length prefix in
  List.filter_map
    (fun (name, a) ->
      if a < code_lo || a >= code_hi then None
      else
        let is_fn =
          String.length name > pl + 1
          && String.sub name 0 pl = prefix
          && name.[pl] = '$'
          &&
          let rest = String.sub name (pl + 1) (String.length name - pl - 1) in
          not (String.contains rest '$')
        in
        if is_fn || name = prefix ^ "$$exit" || name = "__exit_" ^ prefix
        then Some a
        else None)
    image.I.symbols

let widen_limit = 8

let verify_app ~(image : I.t) ~mode ~prefix =
  let sym name =
    try I.symbol image name
    with Not_found ->
      invalid_arg
        (Printf.sprintf "verifier: image has no symbol %s (prefix %S)" name
           prefix)
  in
  let code_lo = sym (Iso.code_lo_sym ~prefix) in
  let code_hi = sym (Iso.code_hi_sym ~prefix) in
  let data_lo = sym (Iso.data_lo_sym ~prefix) in
  let data_hi = sym (Iso.data_hi_sym ~prefix) in
  let extern_ok = Hashtbl.create 16 in
  List.iter
    (fun (name, a) ->
      let is_helper =
        List.mem name helper_names
        || String.length name >= 7
           && String.sub name 0 7 = "__gate_"
      in
      if is_helper then Hashtbl.replace extern_ok a name)
    image.I.symbols;
  let ctx =
    {
      mode;
      code_lo;
      code_hi;
      data_lo;
      data_hi;
      extern_ok;
      bc_addr =
        (try Some (I.symbol image "__bounds_check") with Not_found -> None);
      fetch = make_fetch image;
    }
  in
  (* fixpoint over block-entry states *)
  let states : (int, state) Hashtbl.t = Hashtbl.create 64 in
  let counts : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let work = Queue.create () in
  let schedule a st =
    match Hashtbl.find_opt states a with
    | None ->
      Hashtbl.replace states a st;
      Queue.push a work
    | Some old ->
      let j = state_join old st in
      if not (state_equal j old) then begin
        let c = (Option.value ~default:0 (Hashtbl.find_opt counts a)) + 1 in
        Hashtbl.replace counts a c;
        Hashtbl.replace states a (if c > widen_limit then top_state () else j);
        Queue.push a work
      end
  in
  List.iter
    (fun a -> schedule a (top_state ()))
    (entry_points image ~prefix ~code_lo ~code_hi);
  while not (Queue.is_empty work) do
    let a = Queue.pop work in
    let succs, calls = run ctx (Hashtbl.find states a) a in
    List.iter (fun (t, st') -> schedule t st') succs;
    List.iter (fun t -> schedule t (top_state ())) calls
  done;
  (* final pass: replay every reached block and record the verdicts *)
  let r =
    {
      viols = Hashtbl.create 8;
      visited = Hashtbl.create 256;
      passed = Hashtbl.create 64;
    }
  in
  Hashtbl.iter
    (fun a st -> ignore (run ctx ~recorder:r st a))
    states;
  if Hashtbl.length r.viols = 0 then begin
    let count k =
      Hashtbl.fold (fun (_, k') () n -> if k' = k then n + 1 else n) r.passed 0
    in
    Ok
      {
        v_insns = Hashtbl.length r.visited;
        v_blocks = Hashtbl.length states;
        v_stores = count 's';
        v_loads = count 'l';
        v_branches = count 'b';
        v_rets = count 'r';
      }
  end
  else
    Error
      (Hashtbl.fold (fun _ v acc -> v :: acc) r.viols []
      |> List.sort (fun a b -> compare (a.vaddr, a.vreason) (b.vaddr, b.vreason)))
