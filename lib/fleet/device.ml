module M = Amulet_mcu.Machine
module Iso = Amulet_cc.Isolation
module Kernel = Amulet_os.Kernel
module Event = Amulet_os.Event
module Hist = Amulet_obs.Hist
module Rng = Scenario.Rng

type result = {
  r_index : int;
  r_mode : Iso.mode;
  r_dispatches : int;
  r_no_handler : int;
  r_faults : int;
  r_unrecovered : int;
  r_api_calls : int;
  r_cycles : int;
  r_dispatch : Hist.t;
  r_latency : Hist.t;
  r_os_intact : bool;
  r_alive : bool;
}

(* Post one traffic stream's arrivals for the whole run.  Inter-arrival
   gaps are uniform on [1, 2*mean] ms (mean = 1000/rate), drawn from a
   stream-private rng so adding a traffic line never perturbs the
   schedule of another. *)
let post_traffic k ~napps ~duration_ms ~dseed ti (tr : Scenario.traffic) =
  let rng = Rng.create (dseed lxor ((ti + 1) * 0x9E3779B9)) in
  let mean_ms = max 1 (int_of_float (1000.0 /. tr.Scenario.tr_rate)) in
  let rec go t =
    let t = t + 1 + Rng.draw rng (2 * mean_ms) in
    if t < duration_ms then begin
      for _ = 1 to tr.Scenario.tr_burst do
        let app = Rng.draw rng napps in
        let kind, arg =
          match tr.Scenario.tr_kind with
          | Scenario.Button -> (Event.Button 1, 1)
          | Scenario.Ble -> (Event.Button 2, Rng.draw rng 256)
          | Scenario.Tick -> (Event.Tick, 0)
        in
        Kernel.post k ~delay_ms:t ~app kind ~arg
      done;
      go t
    end
  in
  go 0

let run ~fw ~scenario ~seed ~index =
  let duration_ms = scenario.Scenario.sc_duration_ms in
  let dseed = Scenario.device_seed ~seed ~index in
  let k =
    Kernel.create ~policy:Kernel.Disable
      ~scenario:scenario.Scenario.sc_sensors ~seed:dseed fw
  in
  let napps = Array.length k.Kernel.apps in
  List.iteri
    (post_traffic k ~napps ~duration_ms ~dseed)
    scenario.Scenario.sc_traffic;
  (match scenario.Scenario.sc_churn_ms with
  | Some churn ->
    (* app churn: periodically re-deliver handle_init to every app *)
    let rec go t =
      if t < duration_ms then begin
        for a = 0 to napps - 1 do
          Kernel.post k ~delay_ms:t ~app:a Event.Init ~arg:0
        done;
        go (t + churn)
      end
    in
    go churn
  | None -> ());
  let records = Kernel.run_for_ms k duration_ms in
  let dispatch = Hist.create () and latency = Hist.create () in
  let dispatches = ref 0 and no_handler = ref 0 in
  let faults = ref 0 and api_calls = ref 0 in
  List.iter
    (fun (r : Kernel.dispatch_record) ->
      match r.Kernel.dr_outcome with
      | Kernel.No_handler -> incr no_handler
      | Kernel.Ok | Kernel.App_fault _ ->
        incr dispatches;
        Hist.record dispatch r.Kernel.dr_cycles;
        Hist.record latency r.Kernel.dr_latency;
        api_calls := !api_calls + r.Kernel.dr_api_calls;
        (match r.Kernel.dr_outcome with
        | Kernel.App_fault _ -> incr faults
        | Kernel.Ok | Kernel.No_handler -> ()))
    records;
  (* cycle total before the probes: the oracle's extra dispatches must
     not pollute the device's throughput/energy accounting *)
  let cycles = M.cycles k.Kernel.machine in
  let os_intact = Kernel.os_intact k in
  let alive = Kernel.liveness_probe k ~app:0 in
  {
    r_index = index;
    r_mode = fw.Amulet_aft.Aft.fw_mode;
    r_dispatches = !dispatches;
    r_no_handler = !no_handler;
    r_faults = !faults;
    r_unrecovered = List.length (Kernel.unrecovered_faults k);
    r_api_calls = !api_calls;
    r_cycles = cycles;
    r_dispatch = dispatch;
    r_latency = latency;
    r_os_intact = os_intact;
    r_alive = alive;
  }

let violations r =
  let v = [] in
  let v =
    if r.r_alive then v
    else
      Printf.sprintf "device %d (%s): liveness probe failed" r.r_index
        (Iso.name r.r_mode)
      :: v
  in
  if r.r_os_intact then v
  else
    Printf.sprintf "device %d (%s): OS code checksum changed" r.r_index
      (Iso.name r.r_mode)
    :: v
