module Iso = Amulet_cc.Isolation

type op = Memory_access | Context_switch

let table1 mode op =
  match (op, mode) with
  | Memory_access, Iso.No_isolation -> 23
  | Memory_access, Iso.Feature_limited -> 41
  | Memory_access, Iso.Mpu_assisted -> 29
  | Memory_access, Iso.Software_only -> 32
  | Context_switch, Iso.No_isolation -> 90
  | Context_switch, Iso.Feature_limited -> 90
  | Context_switch, Iso.Mpu_assisted -> 142
  | Context_switch, Iso.Software_only -> 98

let figure2_battery_bound_percent = 0.5
let figure3_cases = [ "Activity Case 1"; "Activity Case 2"; "Quicksort" ]

let expected_order_memory_access =
  [ Iso.No_isolation; Iso.Mpu_assisted; Iso.Software_only; Iso.Feature_limited ]

let expected_order_context_switch =
  [ Iso.No_isolation; Iso.Feature_limited; Iso.Software_only; Iso.Mpu_assisted ]
