(* Corpus ⇔ proof crosscheck.

   Every attack in [Attacks.corpus] is restated as a deterministic
   program of the abstract machine ([Amulet_proof.Absmachine]); the
   scenario runner then derives which layer contains it under each
   mode, and the derived layer must equal the attack's hand-written
   [atk_expect] — the campaign's expectations fall out of the model
   instead of being a parallel folklore table.

   Cells the model says breach carry an abstract counterexample trace;
   those are additionally replayed on the concrete [Machine]
   ([Amulet_proof.Replay]) so that every negative expectation is
   backed by a real run, not just an abstract one. *)

module A = Amulet_proof.Absmachine
module Replay = Amulet_proof.Replay
module Iso = Amulet_cc.Isolation

type scenario = { sc_attacker : A.attacker; sc_actions : A.action list }

(* The abstract restatement of each attack.  Region names follow the
   canonical single-attacker geometry: [R_os] is everything below the
   attacker's code (OS and lower apps — so the [Last]-positioned
   attacks aim there), [R_victim] the app above. *)
let scenario_of (atk : Attacks.t) =
  let compiled = A.Compiled { stack_bounded = true } in
  let s attacker actions = Some { sc_attacker = attacker; sc_actions = actions } in
  match atk.Attacks.atk_name with
  | "src_wild_write_os" -> s compiled [ A.A_guarded_store A.R_os ]
  | "src_wild_read_os" -> s compiled [ A.A_guarded_load A.R_os ]
  | "src_wild_write_victim" -> s compiled [ A.A_guarded_store A.R_victim ]
  | "src_wild_read_victim" -> s compiled [ A.A_guarded_load A.R_victim ]
  | "src_wild_write_lower" -> s compiled [ A.A_guarded_store A.R_os ]
  | "src_stack_smash" ->
    s (A.Compiled { stack_bounded = false }) [ A.A_push_wild ]
  | "src_gate_deputy_write" -> s compiled [ A.A_gate_ptr A.R_os ]
  | "src_gate_deputy_read" -> s compiled [ A.A_gate_ptr A.R_victim ]
  | "src_jump_os" -> s compiled [ A.A_guarded_call A.R_os ]
  | "src_mpu_tamper" -> s compiled [ A.A_guarded_store A.R_mpu_regs ]
  | "src_wild_write_vectors" -> s compiled [ A.A_guarded_store A.R_vectors ]
  | "src_probe_slack" -> s compiled [ A.A_guarded_store A.R_own_slack ]
  | "bin_wild_write_os" -> s A.Binary [ A.A_store A.R_os ]
  | "bin_wild_read_os" -> s A.Binary [ A.A_load A.R_os ]
  | "bin_wild_write_victim" -> s A.Binary [ A.A_store A.R_victim ]
  | "bin_wild_write_sram" -> s A.Binary [ A.A_store A.R_sram ]
  | "bin_mpu_disable" ->
    s A.Binary [ A.A_mpu_store A.M_disable; A.A_store A.R_os ]
  | "bin_mpu_rebound" ->
    s A.Binary [ A.A_mpu_store A.M_widen; A.A_store A.R_victim ]
  | "bin_jump_os_entry" -> s A.Binary [ A.A_jump A.R_os ]
  | "bin_jump_victim_code" -> s A.Binary [ A.A_jump A.R_victim ]
  | "bin_probe_below" -> s A.Binary [ A.A_store A.R_own_code ]
  | "bin_probe_slack" -> s A.Binary [ A.A_store A.R_own_slack ]
  | _ -> None

let layer_of_containment = function
  | A.C_build -> Attacks.L_build
  | A.C_guard -> Attacks.L_guard
  | A.C_mpu -> Attacks.L_mpu
  | A.C_gate -> Attacks.L_gate
  | A.C_kernel -> Attacks.L_kernel
  | A.C_breach _ -> Attacks.L_none
  | A.C_harmless -> Attacks.L_harmless

type verdict =
  | V_theorem  (** derived layer = expected layer, no breach involved *)
  | V_counterexample  (** expected breach, derived and replayed concretely *)
  | V_mismatch of { derived : Attacks.layer; replay : string option }
  | V_unmodelled  (** attack has no abstract restatement *)

type row = {
  cc_attack : string;
  cc_mode : Iso.mode;
  cc_expected : Attacks.layer;
  cc_verdict : verdict;
}

let row_ok r =
  match r.cc_verdict with
  | V_theorem | V_counterexample -> true
  | V_mismatch _ | V_unmodelled -> false

let check_cell (atk : Attacks.t) mode =
  let expected = atk.Attacks.atk_expect mode in
  let verdict =
    match scenario_of atk with
    | None -> V_unmodelled
    | Some sc -> (
      let containment, trace =
        A.run_scenario ~mode ~attacker:sc.sc_attacker sc.sc_actions
      in
      let derived = layer_of_containment containment in
      if derived <> expected then V_mismatch { derived; replay = None }
      else
        match containment with
        | A.C_breach _ -> (
          (* a negative expectation: back the abstract counterexample
             with a concrete run *)
          let final =
            match List.rev trace with
            | (s, a) :: _ -> (
              match A.step ~mode s a with
              | Some f -> f
              | None -> A.init ~mode)
            | [] -> A.init ~mode
          in
          match Replay.replay ~mode ~trace ~final () with
          | Ok rep when rep.Replay.rp_ok -> V_counterexample
          | Ok rep ->
            V_mismatch { derived; replay = Some rep.Replay.rp_detail }
          | Error e -> V_mismatch { derived; replay = Some e })
        | _ -> V_theorem)
  in
  { cc_attack = atk.Attacks.atk_name; cc_mode = mode; cc_expected = expected;
    cc_verdict = verdict }

let run ?(modes = Iso.all) () =
  List.concat_map
    (fun atk -> List.map (check_cell atk) modes)
    Attacks.corpus

let ok rows = List.for_all row_ok rows

let pp_row ppf r =
  let verdict_str =
    match r.cc_verdict with
    | V_theorem -> "theorem"
    | V_counterexample -> "counterexample(replayed)"
    | V_unmodelled -> "UNMODELLED"
    | V_mismatch { derived; replay } ->
      Printf.sprintf "MISMATCH derived=%s%s"
        (Attacks.layer_name derived)
        (match replay with None -> "" | Some d -> " replay: " ^ d)
  in
  Format.fprintf ppf "%-24s %-14s expect=%-8s %s" r.cc_attack
    (Iso.name r.cc_mode)
    (Attacks.layer_name r.cc_expected)
    verdict_str
