lib/cc/tast.ml: Ast Ctype Srcloc
