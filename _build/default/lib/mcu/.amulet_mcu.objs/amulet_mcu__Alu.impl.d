lib/mcu/alu.ml: Opcode Word
