(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation, printing measured values next to the paper's,
   then runs Bechamel microbenchmarks of the underlying simulator.

   Usage: main.exe [quick] [snapshot]
     quick     — cut iteration counts for CI
     snapshot  — only emit the BENCH_gateheavy.json perf snapshot *)

module Iso = Amulet_cc.Isolation
module Ex = Amulet_iso.Experiments
module Paper = Amulet_iso.Paper

let quick = Array.exists (fun a -> a = "quick") Sys.argv
let snapshot_only = Array.exists (fun a -> a = "snapshot") Sys.argv

let line = String.make 72 '-'

let section title =
  Printf.printf "\n%s\n%s\n%s\n" line title line

(* ------------------------------------------------------------------ *)
(* Table 1 *)

let mode_label mode = Iso.name mode

let run_table1 () =
  section
    "Table 1: average cycle count for basic memory isolation operations";
  let runs = if quick then 20 else 200 in
  let rows = Ex.table1 ~runs () in
  Printf.printf "%-18s %22s %22s\n" "" "Memory access" "Context switch";
  Printf.printf "%-18s %10s %10s  %10s %10s\n" "Method" "measured" "paper"
    "measured" "paper";
  List.iter
    (fun r ->
      Printf.printf "%-18s %10.1f %10d  %10.1f %10d\n"
        (mode_label r.Ex.t1_mode) r.Ex.t1_mem_access
        (Paper.table1 r.Ex.t1_mode Paper.Memory_access)
        r.Ex.t1_ctx_switch
        (Paper.table1 r.Ex.t1_mode Paper.Context_switch))
    rows;
  (* shape check: orderings match the paper *)
  let value_of sel mode = sel (List.find (fun r -> r.Ex.t1_mode = mode) rows) in
  let sorted_by sel =
    List.sort (fun a b -> compare (value_of sel a) (value_of sel b)) Iso.all
  in
  let mem_order = sorted_by (fun r -> r.Ex.t1_mem_access) in
  Printf.printf "\nmemory-access ordering: %s (paper: %s)\n"
    (if mem_order = Paper.expected_order_memory_access then "MATCHES paper"
     else "differs: " ^ String.concat " < " (List.map mode_label mem_order))
    (String.concat " < "
       (List.map mode_label Paper.expected_order_memory_access));
  let ctx_order = sorted_by (fun r -> r.Ex.t1_ctx_switch) in
  Printf.printf "context-switch ordering: %s (paper: %s)\n"
    (if ctx_order = Paper.expected_order_context_switch then "MATCHES paper"
     else "differs: " ^ String.concat " < " (List.map mode_label ctx_order))
    (String.concat " < "
       (List.map mode_label Paper.expected_order_context_switch))

(* ------------------------------------------------------------------ *)
(* Figure 2 *)

let run_figure2 () =
  section "Figure 2: isolation overhead (cycles/week) and battery impact";
  let warmup_ms = if quick then 61_000 else 120_000 in
  let rows = Ex.figure2 ~warmup_ms () in
  Printf.printf "%-14s %-18s %16s %14s\n" "Application" "Method"
    "Gcycles/week" "battery %";
  List.iter
    (fun r ->
      Printf.printf "%-14s %-18s %16.3f %14.4f\n" r.Ex.f2_app
        (mode_label r.Ex.f2_mode)
        (r.Ex.f2_overhead_cycles /. 1e9)
        r.Ex.f2_battery_percent)
    rows;
  let worst =
    List.fold_left (fun acc r -> max acc r.Ex.f2_battery_percent) 0.0 rows
  in
  Printf.printf
    "\nworst battery impact: %.4f %% — paper claims every app < %.1f %%: %s\n"
    worst Paper.figure2_battery_bound_percent
    (if worst < Paper.figure2_battery_bound_percent then "HOLDS"
     else "VIOLATED")

(* ------------------------------------------------------------------ *)
(* Figure 3 *)

let run_figure3 () =
  section "Figure 3: percentage slowdown vs no isolation";
  let runs = if quick then 20 else 200 in
  let rows = Ex.figure3 ~runs () in
  Printf.printf "%-18s %-18s %14s %12s\n" "Benchmark" "Method" "cycles/run"
    "slowdown %";
  List.iter
    (fun r ->
      Printf.printf "%-18s %-18s %14.0f %12.1f\n" r.Ex.f3_case
        (mode_label r.Ex.f3_mode) r.Ex.f3_cycles r.Ex.f3_slowdown_percent)
    rows;
  List.iter
    (fun case ->
      let get mode =
        (List.find (fun r -> r.Ex.f3_case = case && r.Ex.f3_mode = mode) rows)
          .Ex.f3_slowdown_percent
      in
      Printf.printf "%-18s MPU %s software-only (paper: MPU wins)\n" case
        (if get Iso.Mpu_assisted < get Iso.Software_only then "beats"
         else "does NOT beat"))
    [ "Activity Case 1"; "Activity Case 2"; "Quicksort" ]

(* ------------------------------------------------------------------ *)
(* Ablations beyond the paper *)

let run_ablations () =
  section "Ablation: shadow return-address stack (paper sec. 5 proposal)";
  let runs = if quick then 20 else 100 in
  let rows = Ex.ablation_shadow ~runs () in
  Printf.printf "%-18s %14s %14s %14s\n" "Method" "plain cyc" "shadow cyc"
    "cyc/call";
  List.iter
    (fun r ->
      Printf.printf "%-18s %14.0f %14.0f %14.1f\n" (mode_label r.Ex.sh_mode)
        r.Ex.sh_plain r.Ex.sh_hardened r.Ex.sh_per_call)
    rows;
  section "Ablation: projected advanced MPU (all-memory, 4+ regions)";
  let adv = Ex.ablation_advanced_mpu ~runs () in
  Printf.printf
    "memory access %.1f cycles (the no-isolation figure: all checks\n\
     removed), context switch %.1f cycles (MPU reconfiguration remains).\n\
     Removing the residual lower-bound checks saves %.0f %% of the MPU\n\
     method's per-access cost — the paper's 'negate the need for our\n\
     compiler-inserted bounds checks'.\n"
    adv.Ex.am_mem_access adv.Ex.am_ctx_switch adv.Ex.am_mem_saving_percent;
  section "Ablation: bounds-check elision by value-range analysis";
  let rows = Ex.ablation_elision ~runs () in
  Printf.printf "%-18s %14s %14s %10s %10s\n" "Method" "all guards"
    "elided cyc" "sites" "saving %";
  List.iter
    (fun r ->
      Printf.printf "%-18s %14.0f %14.0f %10d %10.1f\n"
        (mode_label r.Ex.el_mode) r.Ex.el_full r.Ex.el_elided r.Ex.el_sites
        r.Ex.el_saving_percent)
    rows;
  Printf.printf
    "(guards whose address the analysis proves in-bounds are dropped;\n\
     the independent binary verifier re-checks the resulting images)\n";
  section "Ablation: gate-pointer validation elision by static certification";
  let rows = Ex.ablation_gate_cert ~runs () in
  Printf.printf "%-18s %14s %14s %10s  %s\n" "Method" "dynamic cyc"
    "certified cyc" "cyc/gate" "services";
  List.iter
    (fun r ->
      Printf.printf "%-18s %14.0f %14.0f %10.1f  %s\n"
        (mode_label r.Ex.gc_mode) r.Ex.gc_dynamic r.Ex.gc_certified
        r.Ex.gc_per_gate
        (String.concat ", " r.Ex.gc_services))
    rows;
  Printf.printf
    "(the gate-provenance pass proves every pointer the app hands the\n\
     OS in-region, so the kernel skips its per-call range validation)\n"

(* ------------------------------------------------------------------ *)
(* Observability: zero-cycle overhead + profiler exactness *)

let run_observability () =
  section "Observability: tracing overhead and profiler exactness";
  let module Aft = Amulet_aft.Aft in
  let module Os = Amulet_os in
  let module Obs = Amulet_obs.Obs in
  let module Apps = Amulet_apps.Suite in
  let app = List.find (fun a -> a.Apps.name = "pedometer") Apps.all in
  let seconds = 5 in
  let run ?obs () =
    let fw = Aft.build ~mode:Iso.Mpu_assisted [ Apps.spec_for Iso.Mpu_assisted app ] in
    let k = Os.Kernel.create ~scenario:Os.Sensors.Walking ?obs fw in
    let _ = Os.Kernel.run_for_ms k (seconds * 1000) in
    (Amulet_mcu.Machine.cycles k.Os.Kernel.machine, k)
  in
  (* 1. no observability at all *)
  let bare, _ = run () in
  (* 2. context attached, no sinks, no profiler *)
  let plain_obs = Obs.create () in
  let attached, _ = run ~obs:plain_obs () in
  Obs.close plain_obs;
  (* 3. full tracing: JSONL sink + cycle profiler *)
  let obs = Obs.create () in
  let buf = Buffer.create 65536 in
  Obs.add_sink obs (Obs.jsonl_buffer_sink buf);
  let fw = Aft.build ~mode:Iso.Mpu_assisted [ Apps.spec_for Iso.Mpu_assisted app ] in
  Obs.enable_profile obs fw;
  let k = Os.Kernel.create ~scenario:Os.Sensors.Walking ~obs fw in
  let _ = Os.Kernel.run_for_ms k (seconds * 1000) in
  let traced = Amulet_mcu.Machine.cycles k.Os.Kernel.machine in
  Obs.close obs;
  Printf.printf
    "pedometer, mpu mode, %d virtual s: %d cycles bare, %d attached, %d fully traced\n"
    seconds bare attached traced;
  if bare <> attached || bare <> traced then
    failwith
      (Printf.sprintf
         "tracing is not free: %d cycles bare vs %d attached vs %d traced"
         bare attached traced);
  Printf.printf "tracing overhead: 0 cycles (asserted)\n";
  let p =
    match Obs.profile obs with Some p -> p | None -> failwith "no profiler"
  in
  let r = Amulet_obs.Profile.report p ~machine:k.Os.Kernel.machine in
  if r.Amulet_obs.Profile.r_total <> r.Amulet_obs.Profile.r_machine then
    failwith
      (Printf.sprintf "profiler total %d <> machine cycles %d"
         r.Amulet_obs.Profile.r_total r.Amulet_obs.Profile.r_machine);
  Printf.printf
    "profiler accounts for every cycle: %d classified = %d machine (exact)\n"
    r.Amulet_obs.Profile.r_total r.Amulet_obs.Profile.r_machine;
  Printf.printf "\nmeasured isolation-cost breakdown (single run):\n";
  List.iter
    (fun (cat, cycles) ->
      Printf.printf "  %-16s %8d cycles  (%5.1f %%)\n"
        (Amulet_obs.Profile.category_name cat)
        cycles
        (100.0 *. float_of_int cycles /. float_of_int (max 1 traced)))
    r.Amulet_obs.Profile.r_cats;
  Printf.printf "  %-16s %8d cycles\n" "host services"
    r.Amulet_obs.Profile.r_host_cycles;
  Printf.printf "trace: %d JSONL records captured\n"
    (List.length (Amulet_obs.Summary.of_string (Buffer.contents buf)));
  (* 4. statistical telemetry: Agg sink + profiler, which also arms the
     per-dispatch profile-counter emission (energy attribution).  All
     of it is host-side: same cycle count, byte-identical profiler
     report. *)
  let module Agg = Amulet_obs.Agg in
  let module Profile = Amulet_obs.Profile in
  let obs4 = Obs.create () in
  let agg = Agg.create () in
  Obs.add_sink obs4 (Agg.sink agg);
  let fw4 =
    Aft.build ~mode:Iso.Mpu_assisted [ Apps.spec_for Iso.Mpu_assisted app ]
  in
  Obs.enable_profile obs4 fw4;
  let k4 = Os.Kernel.create ~scenario:Os.Sensors.Walking ~obs:obs4 fw4 in
  let _ = Os.Kernel.run_for_ms k4 (seconds * 1000) in
  let telemetry = Amulet_mcu.Machine.cycles k4.Os.Kernel.machine in
  Obs.close obs4;
  if telemetry <> bare then
    failwith
      (Printf.sprintf "telemetry is not free: %d cycles bare vs %d aggregated"
         bare telemetry);
  let report_of obs k =
    match Obs.profile obs with
    | Some p ->
      Format.asprintf "%a" Profile.pp_report
        (Profile.report p ~machine:k.Os.Kernel.machine)
    | None -> failwith "no profiler"
  in
  if not (String.equal (report_of obs k) (report_of obs4 k4)) then
    failwith "agg sink perturbed the profiler report";
  if Agg.spans agg = [] then failwith "agg sink saw no dispatch spans";
  (match Agg.counter agg (Profile.counter_name Profile.App_code) with
  | Some c ->
    let p4 =
      match Obs.profile obs4 with Some p -> p | None -> assert false
    in
    let total = List.assoc Profile.App_code (Profile.totals p4) in
    if c.Agg.c_last <> total then
      failwith
        (Printf.sprintf "energy counter drifted: last %d <> profiler %d"
           c.Agg.c_last total)
  | None -> failwith "no per-class energy counters in the trace");
  Printf.printf
    "agg sink + energy counters armed: %d cycles (identical), profiler\n\
     report byte-identical, %d records aggregated (asserted)\n"
    telemetry (Agg.records agg)

(* ------------------------------------------------------------------ *)
(* Fault injector: zero cost when armed with an empty schedule *)

let run_injector_zero_cost () =
  section "Fault injector: armed-but-idle runs are byte-identical";
  let module Aft = Amulet_aft.Aft in
  let module Os = Amulet_os in
  let module Obs = Amulet_obs.Obs in
  let module Apps = Amulet_apps.Suite in
  let app = List.find (fun a -> a.Apps.name = "pedometer") Apps.all in
  let seconds = 5 in
  let run ~armed =
    let fw =
      Aft.build ~mode:Iso.Mpu_assisted [ Apps.spec_for Iso.Mpu_assisted app ]
    in
    let obs = Obs.create () in
    Obs.enable_profile obs fw;
    let k = Os.Kernel.create ~scenario:Os.Sensors.Walking ~obs fw in
    let inj =
      if armed then
        Some
          (Amulet_sec.Inject.arm
             (Amulet_sec.Inject.plan ~seed:7 ~flips:0 ~window:(0, 1)
                Amulet_sec.Inject.Regs)
             k.Os.Kernel.machine)
      else None
    in
    let _ = Os.Kernel.run_for_ms k (seconds * 1000) in
    let cycles = Amulet_mcu.Machine.cycles k.Os.Kernel.machine in
    let report =
      match Obs.profile obs with
      | Some p ->
        Format.asprintf "%a" Amulet_obs.Profile.pp_report
          (Amulet_obs.Profile.report p ~machine:k.Os.Kernel.machine)
      | None -> failwith "no profiler"
    in
    Obs.close obs;
    (match inj with
    | Some inj ->
      if Amulet_sec.Inject.flips_done inj <> 0 then
        failwith "idle injector applied a flip";
      if Amulet_sec.Inject.steps inj = 0 then
        failwith "armed injector observed no instructions"
    | None -> ());
    (cycles, report)
  in
  let bare_cycles, bare_report = run ~armed:false in
  let armed_cycles, armed_report = run ~armed:true in
  Printf.printf "pedometer, mpu mode, %d virtual s: %d cycles bare, %d armed\n"
    seconds bare_cycles armed_cycles;
  if bare_cycles <> armed_cycles then
    failwith
      (Printf.sprintf "idle injector is not free: %d vs %d cycles" bare_cycles
         armed_cycles);
  if not (String.equal bare_report armed_report) then
    failwith "idle injector perturbed the profiler report";
  Printf.printf
    "injector armed with an empty schedule: cycle totals equal and\n\
     profiler reports byte-identical (asserted)\n"

(* ------------------------------------------------------------------ *)
(* Predecode engine: the block cache must be invisible to simulated
   state.  Three runs of the same workload: hooks-off (block engine,
   warm cache), a no-op watcher (the reference per-instruction
   stepper), and hooks-off with the cache dropped every 100 virtual ms
   (every block decodes cold, so a decoder that charged cycles or
   perturbed state would show up).  Cycles, every dispatch record and
   the console must be byte-identical across all three. *)

let run_predecode_identity () =
  section "Predecode: fast path, reference path, cold and warm caches agree";
  let module Aft = Amulet_aft.Aft in
  let module Os = Amulet_os in
  let module Apps = Amulet_apps.Suite in
  let module M = Amulet_mcu.Machine in
  let app = List.find (fun a -> a.Apps.name = "pedometer") Apps.all in
  let seconds = 5 in
  let mk () =
    let fw =
      Aft.build ~mode:Iso.Mpu_assisted [ Apps.spec_for Iso.Mpu_assisted app ]
    in
    Os.Kernel.create ~scenario:Os.Sensors.Walking fw
  in
  (* run in 100 ms slices ([run_for_ms] composes exactly: the deadline
     accumulates), calling [between] at every slice boundary *)
  let run ~between k =
    let records = ref [] in
    for _ = 1 to seconds * 10 do
      between k;
      records := List.rev_append (Os.Kernel.run_for_ms k 100) !records
    done;
    ( Amulet_mcu.Machine.cycles k.Os.Kernel.machine,
      List.rev !records,
      Amulet_mcu.Machine.console_contents k.Os.Kernel.machine )
  in
  let nothing _ = () in
  let warm = run ~between:nothing (mk ()) in
  let slow_k = mk () in
  M.add_watch slow_k.Os.Kernel.machine (fun _ -> ());
  let slow = run ~between:nothing slow_k in
  let cold =
    run ~between:(fun k -> Hashtbl.reset k.Os.Kernel.machine.M.blocks) (mk ())
  in
  let wc, wr, wcon = warm in
  let check label (c, r, con) =
    if c <> wc then
      failwith
        (Printf.sprintf "predecode %s run diverged: %d cycles vs %d warm"
           label c wc);
    if r <> wr then
      failwith (Printf.sprintf "predecode %s run: dispatch records diverged"
                  label);
    if not (String.equal con wcon) then
      failwith (Printf.sprintf "predecode %s run: console diverged" label)
  in
  check "reference-stepper" slow;
  check "cold-cache" cold;
  Printf.printf
    "pedometer, mpu mode, %d virtual s: %d cycles warm-cache, identical\n\
     under the reference stepper and with the cache dropped every 100 ms\n\
     (%d dispatch records byte-identical, asserted)\n"
    seconds wc (List.length wr)

let run_fleet_shard_identity () =
  section "Fleet: sharded aggregates are schedule-independent";
  let module Scenario = Amulet_fleet_core.Scenario in
  let module Fleet = Amulet_fleet_core.Fleet in
  let module Json = Amulet_obs.Json in
  let devices = if quick then 24 else 96 in
  let scenario =
    match
      Scenario.parse
        (Printf.sprintf
           "scenario bench_fleet\n\
            devices %d\n\
            duration 200ms\n\
            seed 42\n\
            modes none=1 amuletc=1 software=1 mpu=1\n\
            apps pedometer\n\
            sensors daily_mix\n\
            traffic button rate=5\n\
            traffic tick rate=5\n"
           devices)
    with
    | Ok s -> s
    | Error e -> failwith ("fleet bench scenario: " ^ e)
  in
  let serial = Fleet.run ~jobs:1 scenario in
  let parallel = Fleet.run ~jobs:4 scenario in
  let a = Json.to_string (Fleet.summary_json serial) in
  let b = Json.to_string (Fleet.summary_json parallel) in
  if a <> b then
    failwith "fleet aggregate diverged between jobs=1 and jobs=4";
  if not (Fleet.ok serial) then
    failwith "fleet bench run reported oracle violations";
  Printf.printf
    "%d devices, 200 virtual ms, 4 isolation modes: aggregate JSON\n\
     byte-identical at jobs=1 and jobs=4 (asserted); %d dispatches,\n\
     0 oracle violations; jobs=4 wall %.2fs (%.0f devices/sec)\n"
    devices serial.Fleet.fs_dispatches parallel.Fleet.fs_elapsed_s
    (float_of_int devices /. max 1e-9 parallel.Fleet.fs_elapsed_s)

(* ------------------------------------------------------------------ *)
(* Perf-trajectory snapshot: BENCH_gateheavy.json.

   One machine-readable record per PR so the simulator-speed and
   gate-cost trajectories are diffable run-over-run (the ROADMAP's
   "≥10x cycles/sec" predecode target needs a baseline to beat).
   Simulator throughput is host-dependent; the gate-cost cycle counts
   are deterministic simulated values and must only improve. *)

let snapshot_path = "BENCH_gateheavy.json"

let run_gateheavy_snapshot () =
  section ("Perf snapshot: gateheavy microbench -> " ^ snapshot_path);
  let module Runner = Amulet_bench_core.Runner in
  let module Schema = Amulet_bench_core.Schema in
  let doc, _runs = Runner.run ~quick () in
  Format.printf "%a@?" Runner.pp_doc doc;
  Schema.write_file snapshot_path doc;
  Printf.printf "snapshot written to %s (schema %d)\n" snapshot_path
    doc.Schema.d_schema

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the simulator substrate *)

let loop_machine () =
  let open Amulet_mcu in
  let m = Machine.create () in
  let words =
    List.concat_map Encode.encode
      [
        Opcode.Fmt1
          (Opcode.MOV, Word.W16, Opcode.S_immediate 500, Opcode.D_reg 5);
        Opcode.Fmt1 (Opcode.SUB, Word.W16, Opcode.S_immediate 1, Opcode.D_reg 5);
        Opcode.Jump (Opcode.JNE, -2);
        Opcode.Fmt1
          (Opcode.MOV, Word.W16, Opcode.S_immediate 1,
           Opcode.D_absolute Machine.halt_port);
      ]
  in
  Machine.load_words m ~addr:0x4400 words;
  Machine.set_reset_vector m 0x4400;
  m

let bechamel_benches () =
  let open Bechamel in
  let bench_step =
    Test.make ~name:"simulator: 1000-instruction loop"
      (Staged.stage (fun () ->
           let m = loop_machine () in
           Amulet_mcu.Machine.reset m;
           ignore (Amulet_mcu.Machine.run m)))
  in
  let bench_encode =
    let i =
      Amulet_mcu.Opcode.Fmt1
        ( Amulet_mcu.Opcode.ADD,
          Amulet_mcu.Word.W16,
          Amulet_mcu.Opcode.S_indexed (5, 12),
          Amulet_mcu.Opcode.D_reg 6 )
    in
    Test.make ~name:"isa: encode+decode round-trip"
      (Staged.stage (fun () ->
           let ws = Amulet_mcu.Encode.encode i in
           ignore (Amulet_mcu.Decode.decode_words ws)))
  in
  let bench_compile =
    Test.make ~name:"compiler: pedometer end-to-end"
      (Staged.stage (fun () ->
           ignore
             (Amulet_cc.Driver.compile ~prefix:"pedometer"
                ~mode:Iso.Mpu_assisted Amulet_apps.App_sources.pedometer)))
  in
  let bench_firmware =
    Test.make ~name:"aft: single-app firmware build"
      (Staged.stage (fun () ->
           ignore
             (Amulet_aft.Aft.build ~mode:Iso.Mpu_assisted
                [
                  {
                    Amulet_aft.Aft.name = "pedometer";
                    source = Amulet_apps.App_sources.pedometer;
                  };
                ])))
  in
  let tests = [ bench_step; bench_encode; bench_compile; bench_firmware ] in
  let cfg =
    Benchmark.cfg ~limit:200
      ~quota:(Time.second (if quick then 0.2 else 1.0))
      ()
  in
  section "Simulator microbenchmarks (Bechamel, monotonic clock)";
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test
      in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true
             ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ t ] -> Printf.printf "%-42s %14.0f ns/run\n" name t
          | _ -> Printf.printf "%-42s (no estimate)\n" name)
        ols)
    tests

let () =
  Printf.printf
    "Reproduction harness: Hardin et al., \"Application Memory Isolation on \
     Ultra-Low-Power MCUs\" (USENIX ATC 2018)\n";
  if quick then Printf.printf "(quick mode: reduced iteration counts)\n";
  if not snapshot_only then begin
    run_table1 ();
    run_figure3 ();
    run_figure2 ();
    run_ablations ();
    run_observability ();
    run_injector_zero_cost ();
    run_predecode_identity ();
    run_fleet_shard_identity ()
  end;
  run_gateheavy_snapshot ();
  if not snapshot_only then bechamel_benches ();
  Printf.printf "\ndone.\n"
