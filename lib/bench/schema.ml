module Hist = Amulet_obs.Hist
module Json = Amulet_obs.Json

type rate = { r_summary : Stats.summary; r_trials : float list }

type mode_row = {
  m_mode : string;
  m_rate : rate;
  m_cycles_per_dispatch : float;
  m_latency : Hist.t option;
  m_handler : Hist.t option;
  m_class_cycles : (string * int) list;
  m_energy_per_dispatch_j : float option;
}

type cert_row = {
  c_mode : string;
  c_dynamic : float;
  c_certified : float;
  c_per_gate : float;
  c_services : string list;
}

type gate_costs = {
  g_ctx_switch : (string * float) list;
  g_cert : cert_row list;
}

type doc = {
  d_schema : int;
  d_bench : string;
  d_quick : bool;
  d_trials : int;
  d_dispatches : int;
  d_warmup : int;
  d_host : (string * string) list;
  d_modes : mode_row list;
  d_gate : gate_costs;
}

(* ------------------------------------------------------------------ *)
(* Writer (always v2) *)

let json_of_rate r =
  Json.Obj
    [
      ("median", Json.Float r.r_summary.Stats.median);
      ("mad", Json.Float r.r_summary.Stats.mad);
      ("mean", Json.Float r.r_summary.Stats.mean);
      ("ci_lo", Json.Float r.r_summary.Stats.ci_lo);
      ("ci_hi", Json.Float r.r_summary.Stats.ci_hi);
      ("trials", Json.Arr (List.map (fun x -> Json.Float x) r.r_trials));
    ]

let json_of_mode m =
  Json.Obj
    (List.concat
       [
         [
           ("mode", Json.Str m.m_mode);
           ("cycles_per_sec", json_of_rate m.m_rate);
           ("cycles_per_dispatch", Json.Float m.m_cycles_per_dispatch);
         ];
         (match m.m_latency with
         | Some h ->
           [
             ("dispatch_latency", Hist.to_json h);
             ("dispatch_latency_summary", Hist.summary_json h);
           ]
         | None -> []);
         (match m.m_handler with
         | Some h ->
           [
             ("handler_cycles", Hist.to_json h);
             ("handler_cycles_summary", Hist.summary_json h);
           ]
         | None -> []);
         [
           ( "class_cycles",
             Json.Obj
               (List.map (fun (slug, c) -> (slug, Json.Int c)) m.m_class_cycles)
           );
         ];
         (match m.m_energy_per_dispatch_j with
         | Some j -> [ ("energy_per_dispatch_j", Json.Float j) ]
         | None -> []);
       ])

let json_of_gate g =
  Json.Obj
    [
      ( "context_switch_cycles",
        Json.Obj (List.map (fun (m, c) -> (m, Json.Float c)) g.g_ctx_switch) );
      ( "gate_cert",
        Json.Arr
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("mode", Json.Str c.c_mode);
                   ("dynamic_cycles", Json.Float c.c_dynamic);
                   ("certified_cycles", Json.Float c.c_certified);
                   ("per_gate_cycles", Json.Float c.c_per_gate);
                   ( "services",
                     Json.Arr (List.map (fun s -> Json.Str s) c.c_services) );
                 ])
             g.g_cert) );
    ]

let to_json d =
  Json.Obj
    [
      ("bench", Json.Str d.d_bench);
      ("schema", Json.Int 2);
      ("quick", Json.Bool d.d_quick);
      ("trials", Json.Int d.d_trials);
      ("dispatches", Json.Int d.d_dispatches);
      ("warmup", Json.Int d.d_warmup);
      ("host", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) d.d_host));
      ("modes", Json.Arr (List.map json_of_mode d.d_modes));
      ("gate_costs", json_of_gate d.d_gate);
    ]

(* ------------------------------------------------------------------ *)
(* Reader *)

let num = function
  | Some (Json.Int n) -> Some (float_of_int n)
  | Some (Json.Float f) -> Some f
  | _ -> None

let fnum j key = num (Json.member key j)
let inum j key = Option.bind (Json.member key j) Json.to_int
let str j key = Option.bind (Json.member key j) Json.to_str

let require what = function Some x -> Ok x | None -> Error ("missing " ^ what)

let ( let* ) r f = Result.bind r f

let map_result f xs =
  List.fold_right
    (fun x acc ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    xs (Ok [])

let gate_of_json j =
  let ctx =
    match Json.member "context_switch_cycles" j with
    | Some (Json.Obj fields) ->
      List.filter_map
        (fun (m, v) -> Option.map (fun f -> (m, f)) (num (Some v)))
        fields
    | _ -> []
  in
  let cert =
    match Json.member "gate_cert" j with
    | Some (Json.Arr rows) ->
      List.filter_map
        (fun r ->
          match (str r "mode", fnum r "dynamic_cycles", fnum r "certified_cycles", fnum r "per_gate_cycles") with
          | Some m, Some dyn, Some cert, Some per ->
            let services =
              match Json.member "services" r with
              | Some (Json.Arr ss) -> List.filter_map Json.to_str ss
              | _ -> []
            in
            Some
              {
                c_mode = m;
                c_dynamic = dyn;
                c_certified = cert;
                c_per_gate = per;
                c_services = services;
              }
          | _ -> None)
        rows
    | _ -> []
  in
  { g_ctx_switch = ctx; g_cert = cert }

let rate_of_floats trials =
  { r_summary = Stats.summarize (Array.of_list trials); r_trials = trials }

let mode_of_json_v2 j =
  let* mode = require "mode" (str j "mode") in
  let* cpd = require "cycles_per_dispatch" (fnum j "cycles_per_dispatch") in
  let rate =
    match Json.member "cycles_per_sec" j with
    | Some r -> (
      match Json.member "trials" r with
      | Some (Json.Arr ts) ->
        rate_of_floats (List.filter_map (fun t -> num (Some t)) ts)
      | _ -> rate_of_floats (Option.to_list (fnum r "median")))
    | None -> rate_of_floats []
  in
  let hist key = Option.bind (Json.member key j) Hist.of_json in
  let classes =
    match Json.member "class_cycles" j with
    | Some (Json.Obj fields) ->
      List.filter_map
        (fun (slug, v) -> Option.map (fun c -> (slug, c)) (Json.to_int v))
        fields
    | _ -> []
  in
  Ok
    {
      m_mode = mode;
      m_rate = rate;
      m_cycles_per_dispatch = cpd;
      m_latency = hist "dispatch_latency";
      m_handler = hist "handler_cycles";
      m_class_cycles = classes;
      m_energy_per_dispatch_j = fnum j "energy_per_dispatch_j";
    }

let of_json_v2 j =
  let* bench = require "bench" (str j "bench") in
  let* modes =
    match Json.member "modes" j with
    | Some (Json.Arr ms) -> map_result mode_of_json_v2 ms
    | _ -> Error "missing modes"
  in
  Ok
    {
      d_schema = 2;
      d_bench = bench;
      d_quick = (match Json.member "quick" j with Some (Json.Bool b) -> b | _ -> false);
      d_trials = Option.value ~default:1 (inum j "trials");
      d_dispatches = Option.value ~default:0 (inum j "dispatches");
      d_warmup = Option.value ~default:0 (inum j "warmup");
      d_host =
        (match Json.member "host" j with
        | Some (Json.Obj fields) ->
          List.filter_map
            (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
            fields
        | _ -> []);
      d_modes = modes;
      d_gate =
        (match Json.member "gate_costs" j with
        | Some g -> gate_of_json g
        | None -> { g_ctx_switch = []; g_cert = [] });
    }

(* Schema 1: one trial per mode, throughput and whole-run sim cycles
   under "simulator", no histograms or energy. *)
let of_json_v1 j =
  let* bench = require "bench" (str j "bench") in
  let dispatches = Option.value ~default:0 (inum j "dispatches") in
  let* modes =
    match Json.member "simulator" j with
    | Some (Json.Arr ms) ->
      map_result
        (fun m ->
          let* mode = require "simulator.mode" (str m "mode") in
          let* cycles = require "sim_cycles" (fnum m "sim_cycles") in
          let rate = Option.to_list (fnum m "cycles_per_sec") in
          Ok
            {
              m_mode = mode;
              m_rate = rate_of_floats rate;
              m_cycles_per_dispatch =
                (if dispatches = 0 then 0.0
                 else cycles /. float_of_int dispatches);
              m_latency = None;
              m_handler = None;
              m_class_cycles = [];
              m_energy_per_dispatch_j = None;
            })
        ms
    | _ -> Error "missing simulator"
  in
  Ok
    {
      d_schema = 1;
      d_bench = bench;
      d_quick = (match Json.member "quick" j with Some (Json.Bool b) -> b | _ -> false);
      d_trials = 1;
      d_dispatches = dispatches;
      d_warmup = 0;
      d_host = [];
      d_modes = modes;
      d_gate =
        (match Json.member "gate_costs" j with
        | Some g -> gate_of_json g
        | None -> { g_ctx_switch = []; g_cert = [] });
    }

let of_json j =
  match inum j "schema" with
  | Some 1 -> of_json_v1 j
  | Some 2 -> of_json_v2 j
  | Some n -> Error (Printf.sprintf "unknown schema %d" n)
  | None -> Error "missing schema"

let write_file path d =
  let oc = open_out path in
  output_string oc (Json.to_string (to_json d));
  output_char oc '\n';
  close_out oc

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic -> (
    match
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          really_input_string ic (in_channel_length ic))
    with
    | exception End_of_file -> Error "truncated file"
    | text -> (
      match Json.parse text with
      | j -> of_json j
      | exception Json.Parse_error msg -> Error msg))

(* ------------------------------------------------------------------ *)
(* Comparison *)

type verdict = {
  v_metric : string;
  v_mode : string;
  v_old : float;
  v_new : float;
  v_change_pct : float;
  v_gating : bool;
  v_regressed : bool;
}

(* positive change = worse; [higher_worse] flips the sign convention *)
let change_pct ~higher_worse ~old_v ~new_v =
  if old_v = 0.0 then 0.0
  else
    (if higher_worse then (new_v -. old_v) /. old_v
     else (old_v -. new_v) /. old_v)
    *. 100.0

let det_verdict ~threshold ~metric ~mode ~old_v ~new_v =
  let pct = change_pct ~higher_worse:true ~old_v ~new_v in
  {
    v_metric = metric;
    v_mode = mode;
    v_old = old_v;
    v_new = new_v;
    v_change_pct = pct;
    v_gating = true;
    v_regressed = pct > threshold;
  }

let rate_verdict ~threshold ~mode ~(old_r : rate) ~(new_r : rate) =
  let old_v = old_r.r_summary.Stats.median
  and new_v = new_r.r_summary.Stats.median in
  let pct = change_pct ~higher_worse:false ~old_v ~new_v in
  match threshold with
  | None ->
    {
      v_metric = "cycles/sec";
      v_mode = mode;
      v_old = old_v;
      v_new = new_v;
      v_change_pct = pct;
      v_gating = false;
      v_regressed = false;
    }
  | Some tol ->
    (* a drop gates only when it clears both the relative threshold
       and three robust sigmas of the combined trial noise *)
    let noise =
      3.0
      *. (Stats.robust_sigma (Array.of_list old_r.r_trials)
          +. Stats.robust_sigma (Array.of_list new_r.r_trials))
    in
    {
      v_metric = "cycles/sec";
      v_mode = mode;
      v_old = old_v;
      v_new = new_v;
      v_change_pct = pct;
      v_gating = true;
      v_regressed = pct > tol && old_v -. new_v > noise;
    }

let compare_docs ~current ~baseline ~det_threshold_pct ~rate_threshold_pct =
  let det = det_verdict ~threshold:det_threshold_pct in
  let verdicts = ref [] in
  let push v = verdicts := v :: !verdicts in
  List.iter
    (fun (m : mode_row) ->
      match
        List.find_opt (fun (b : mode_row) -> b.m_mode = m.m_mode)
          baseline.d_modes
      with
      | None -> ()
      | Some b ->
        if b.m_cycles_per_dispatch > 0.0 && m.m_cycles_per_dispatch > 0.0 then
          push
            (det ~metric:"cycles/dispatch" ~mode:m.m_mode
               ~old_v:b.m_cycles_per_dispatch ~new_v:m.m_cycles_per_dispatch);
        (match (b.m_latency, m.m_latency) with
        | Some bh, Some mh when not (Hist.is_empty bh || Hist.is_empty mh) ->
          push
            (det ~metric:"latency p99" ~mode:m.m_mode
               ~old_v:(float_of_int (Hist.quantile bh 0.99))
               ~new_v:(float_of_int (Hist.quantile mh 0.99)))
        | _ -> ());
        (match (b.m_energy_per_dispatch_j, m.m_energy_per_dispatch_j) with
        | Some bj, Some mj when bj > 0.0 ->
          push
            (det ~metric:"energy/dispatch" ~mode:m.m_mode ~old_v:bj ~new_v:mj)
        | _ -> ());
        if b.m_rate.r_trials <> [] && m.m_rate.r_trials <> [] then
          push
            (rate_verdict ~threshold:rate_threshold_pct ~mode:m.m_mode
               ~old_r:b.m_rate ~new_r:m.m_rate))
    current.d_modes;
  List.iter
    (fun (mode, new_v) ->
      match List.assoc_opt mode baseline.d_gate.g_ctx_switch with
      | Some old_v when old_v > 0.0 ->
        push (det ~metric:"ctx-switch cycles" ~mode ~old_v ~new_v)
      | _ -> ())
    current.d_gate.g_ctx_switch;
  List.iter
    (fun (c : cert_row) ->
      match
        List.find_opt (fun (b : cert_row) -> b.c_mode = c.c_mode)
          baseline.d_gate.g_cert
      with
      | None -> ()
      | Some b ->
        push
          (det ~metric:"gate dynamic cycles" ~mode:c.c_mode ~old_v:b.c_dynamic
             ~new_v:c.c_dynamic);
        push
          (det ~metric:"gate certified cycles" ~mode:c.c_mode
             ~old_v:b.c_certified ~new_v:c.c_certified);
        if b.c_per_gate > 0.0 then
          push
            (det ~metric:"cycles/gate" ~mode:c.c_mode ~old_v:b.c_per_gate
               ~new_v:c.c_per_gate))
    current.d_gate.g_cert;
  List.rev !verdicts

let regressed vs = List.exists (fun v -> v.v_regressed) vs

(* Metrics the current snapshot carries that the baseline cannot gate,
   using the same comparability conditions as [compare_docs] — each
   entry reads like "latency p99 (mpu)".  A schema-1 baseline has no
   histograms, no energy and a single throughput trial, so most rows
   of a schema-2 run land here; surfacing the list keeps a quiet
   comparison from being mistaken for a passing one. *)
let missing_in_baseline ~current ~baseline =
  let misses = ref [] in
  let push fmt = Printf.ksprintf (fun s -> misses := s :: !misses) fmt in
  List.iter
    (fun (m : mode_row) ->
      match
        List.find_opt (fun (b : mode_row) -> b.m_mode = m.m_mode)
          baseline.d_modes
      with
      | None -> push "mode %s (absent from baseline)" m.m_mode
      | Some b ->
        let nonempty = function
          | Some h -> not (Hist.is_empty h)
          | None -> false
        in
        if m.m_cycles_per_dispatch > 0.0 && b.m_cycles_per_dispatch <= 0.0
        then push "cycles/dispatch (%s)" m.m_mode;
        if nonempty m.m_latency && not (nonempty b.m_latency) then
          push "latency p99 (%s)" m.m_mode;
        if
          m.m_energy_per_dispatch_j <> None
          && (match b.m_energy_per_dispatch_j with
             | Some bj -> bj <= 0.0
             | None -> true)
        then push "energy/dispatch (%s)" m.m_mode;
        if m.m_rate.r_trials <> [] && b.m_rate.r_trials = [] then
          push "cycles/sec (%s)" m.m_mode)
    current.d_modes;
  List.iter
    (fun (mode, new_v) ->
      if new_v > 0.0 then
        match List.assoc_opt mode baseline.d_gate.g_ctx_switch with
        | Some old_v when old_v > 0.0 -> ()
        | _ -> push "ctx-switch cycles (%s)" mode)
    current.d_gate.g_ctx_switch;
  List.iter
    (fun (c : cert_row) ->
      if
        not
          (List.exists (fun (b : cert_row) -> b.c_mode = c.c_mode)
             baseline.d_gate.g_cert)
      then push "gate cert cycles (%s)" c.c_mode)
    current.d_gate.g_cert;
  List.rev !misses

let pp_verdicts ppf vs =
  (* values span cycles (10^6) down to joules/dispatch (10^-7) *)
  let fnum x =
    if x = 0.0 || Float.abs x >= 0.1 then Format.sprintf "%.1f" x
    else Format.sprintf "%.3g" x
  in
  Format.fprintf ppf "%-22s %-16s %14s %14s %9s  %s@." "metric" "mode" "old"
    "new" "change" "status";
  List.iter
    (fun v ->
      Format.fprintf ppf "%-22s %-16s %14s %14s %+8.1f%%  %s@." v.v_metric
        v.v_mode (fnum v.v_old) (fnum v.v_new) v.v_change_pct
        (if v.v_regressed then "REGRESSED"
         else if v.v_gating then "ok"
         else "info"))
    vs
