lib/core/experiments.ml: Amulet_aft Amulet_apps Amulet_arp Amulet_cc Amulet_os List
