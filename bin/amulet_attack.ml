(* amulet_attack: run the adversarial attack & fault-injection
   campaign — every corpus attack under every isolation mode, each
   cell checked against its documented expectation by the isolation
   oracle.  Exits non-zero on any expectation mismatch, oracle
   violation, static-lint surprise or non-reproducible injection. *)

module Iso = Amulet_cc.Isolation
module Sec = Amulet_sec

let mode_conv =
  let parse s =
    match Iso.of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg "expected one of: none, amuletc, software, mpu")
  in
  Cmdliner.Arg.conv (parse, fun ppf m -> Format.fprintf ppf "%s" (Iso.name m))

let run_cmd quick seed jobs out only modes list =
  if list then begin
    List.iter
      (fun (a : Sec.Attacks.t) ->
        Format.printf "%-24s %-6s %s@." a.Sec.Attacks.atk_name
          (match a.Sec.Attacks.atk_level with
          | Sec.Attacks.Source -> "source"
          | Sec.Attacks.Binary -> "binary")
          a.Sec.Attacks.atk_descr)
      Sec.Attacks.corpus;
    0
  end
  else begin
    let modes = if modes = [] then Iso.all else modes in
    let summary = Sec.Campaign.run ~quick ~jobs ~only ~modes ~seed () in
    Format.printf "%a" Sec.Campaign.pp_matrix summary;
    (match out with
    | Some path ->
      let oc = open_out path in
      Sec.Campaign.emit_jsonl summary oc;
      Format.printf "campaign records written to %s@." path
    | None -> ());
    if Sec.Campaign.ok summary then 0 else 1
  end

open Cmdliner

let quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:
          "CI smoke subset: one attack per defence class, no injection \
           rows.")

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Campaign seed (fault-injection schedules, sensor streams).")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains (0 = Fleet.Sched.default_jobs, the policy \
           shared with amulet_fleet).")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Write one JSONL campaign record per cell to $(docv).")

let only_arg =
  Arg.(
    value & opt_all string []
    & info [ "only" ] ~docv:"ATTACK"
        ~doc:"Restrict to the named attack (repeatable).")

let modes_arg =
  Arg.(
    value & opt_all mode_conv []
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:"Restrict to one isolation mode (repeatable; default all).")

let list_arg =
  Arg.(
    value & flag
    & info [ "list" ] ~doc:"List the attack corpus and exit.")

let cmd =
  let doc = "adversarial attack & fault-injection campaign" in
  Cmd.v
    (Cmd.info "amulet_attack" ~doc)
    Term.(
      const run_cmd $ quick_arg $ seed_arg $ jobs_arg $ out_arg $ only_arg
      $ modes_arg $ list_arg)

let () = exit (Cmd.eval' cmd)
