(** Trace-file reader and aggregator for [amulet_prof].

    Accepts both trace formats the sinks write: Chrome
    [{"traceEvents":[...]}] (or a bare JSON array) and JSONL (one
    record per line). *)

val of_string : string -> Obs.record list
(** Parse a trace; unknown records are skipped.
    @raise Json.Parse_error on malformed JSON input. *)

val pp_report : Format.formatter -> Obs.record list -> unit
(** Aggregate: span statistics per name, counter maxima, instant
    counts, and every fault instant with its message. *)
