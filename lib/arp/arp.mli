(** The Amulet Resource Profiler (ARP) and ARP-view pipeline.

    The paper's ARP counts memory accesses and context switches per
    state/transition, combines them with developer-declared event
    rates, and extrapolates weekly cycle counts and energy.  This
    implementation measures each handler by running it in the kernel
    on the simulated MCU (warm-up period, then per-event averages from
    the kernel's handler statistics) and reads the event rates
    directly from the app's own subscriptions and timers — the same
    extrapolation with measured rather than hand-annotated inputs.

    It also exposes the static enumeration of AFT phase 1 (checked and
    statically-verified access sites per function) for the report. *)

type handler_profile = {
  hp_handler : string;
  hp_events_per_week : float;
  hp_cycles_per_event : float;
  hp_accesses_per_event : float;
  hp_api_calls_per_event : float;
}

type app_profile = {
  ap_app : string;
  ap_mode : Amulet_cc.Isolation.mode;
  ap_handlers : handler_profile list;
  ap_cycles_per_week : float;  (** all handler cycles, extrapolated *)
}

val profile_app :
  ?scenario:Amulet_os.Sensors.scenario ->
  ?warmup_ms:int ->
  ?obs:Amulet_obs.Obs.t ->
  mode:Amulet_cc.Isolation.mode ->
  Amulet_apps.Suite.app ->
  app_profile
(** Build a single-app firmware, run the app for the warm-up window
    (default 90 virtual seconds, enough for every app
    timer to fire), and extrapolate to a week.  With [obs], the
    kernel run streams dispatch spans into the context, so callers
    can derive further views (e.g. per-state accounting) from the
    trace records instead of re-running the app.
    @raise Failure if the app faults while being profiled. *)

val overhead_cycles_per_week :
  baseline:app_profile -> app_profile -> float
(** Isolation overhead = profiled week minus the no-isolation week. *)

(** Static (phase-1) counts per function, from the compiler (with the
    range analysis enabled, so guards it elides are visible). *)
type static_sites = {
  ss_function : string;
  ss_checked : int;
  ss_elided : int;
  ss_static : int;
  ss_api_calls : int;
}

val static_view :
  mode:Amulet_cc.Isolation.mode ->
  Amulet_apps.Suite.app ->
  static_sites list
