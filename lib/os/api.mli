(** Host-side implementations of the OS API services.

    The simulated gate writes a service number to the host-call port;
    the machine invokes {!dispatch}, which reads arguments from
    R12-R14, validates any application-supplied pointer against the
    calling app's writable range, performs the service against the
    synthetic sensor models, writes the result to R12, and charges the
    service's modeled cycle cost (documented per service in the
    implementation; gate/context-switch cycles are {e executed}, not
    charged).

    Side effects that concern the scheduler (timers, subscriptions)
    are returned as {!effect}s for the kernel to apply. *)

type effect =
  | Set_timer of { id : int; period_ms : int }
  | Cancel_timer of int
  | Subscribe of { sensor : Event.sensor; rate_hz : int }
  | Unsubscribe of Event.sensor
  | Pointer_fault of { service : string; addr : int; len : int }
      (** an app handed the OS a pointer outside its own region *)

type t = {
  sensors : Sensors.t;
  display : string array;  (** 4-line display model *)
  log : Buffer.t;  (** flash log model *)
  ble : Buffer.t;  (** radio transmit model *)
  mutable rand_state : int;
  mutable next_timer : int;
  mutable calls : int;
  mutable charged_cycles : int;
}

val create : Sensors.t -> t

val service_count : int
val service_name : int -> string option

val validate_charge : int
(** Cycles charged for dynamically validating one app-supplied pointer
    range; elided for statically certified services. *)

val dispatch :
  t ->
  ?certified:(string -> bool) ->
  Amulet_mcu.Machine.t ->
  valid:(int * int) list ->
  now_ms:int ->
  svc:int ->
  effect list
(** [valid] lists the half-open address ranges the calling app may
    legitimately hand to the OS (its data segment, plus the shared
    SRAM stack in the shared-stack modes).  [certified] (default:
    nothing) says which services the static certifier proved safe to
    serve without the dynamic range validation
    ({!Amulet_analysis.Gate_taint} via the image's [cert.gates.*]
    notes). *)
