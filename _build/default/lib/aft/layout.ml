module Map = Amulet_mcu.Memory_map

type app_layout = {
  index : int;
  name : string;
  code_base : int;
  code_size : int;
  data_base : int;
  data_limit : int;
  stack_top : int;
  globals_size : int;
  stack_bytes : int;
}

type t = {
  os_code_base : int;
  os_code_size : int;
  os_data_base : int;
  os_data_size : int;
  apps_base : int;
  apps : app_layout list;
}

exception Does_not_fit of string

let granule = 0x400
let align_up a g = (a + g - 1) land lnot (g - 1)

let compute ~os_code_size ~os_data_size ~apps =
  let os_code_base = Map.fram_start in
  let os_data_base = align_up (os_code_base + os_code_size) granule in
  let apps_base = align_up (os_data_base + os_data_size) granule in
  let place (cursor, index, acc) (name, code_size, globals_size, stack_bytes) =
    let code_base = cursor in
    let data_base = align_up (code_base + code_size) granule in
    (* data segment: [stack][globals], rounded to a whole granule *)
    let data_limit = align_up (data_base + stack_bytes + globals_size) granule in
    (* give any rounding slack to the stack *)
    let globals_base = data_limit - globals_size in
    let app =
      {
        index; name; code_base; code_size; data_base; data_limit;
        stack_top = globals_base land lnot 1;
        globals_size; stack_bytes = globals_base - data_base;
      }
    in
    (data_limit, index + 1, app :: acc)
  in
  let cursor, _, apps_rev = List.fold_left place (apps_base, 0, []) apps in
  if cursor > Map.fram_limit then
    raise
      (Does_not_fit
         (Printf.sprintf "firmware needs 0x%04X but FRAM ends at 0x%04X" cursor
            Map.fram_limit));
  {
    os_code_base; os_code_size; os_data_base; os_data_size; apps_base;
    apps = List.rev apps_rev;
  }

let pp ppf t =
  Format.fprintf ppf "os_code  %04X..%04X@." t.os_code_base
    (t.os_code_base + t.os_code_size);
  Format.fprintf ppf "os_data  %04X..%04X@." t.os_data_base
    (t.os_data_base + t.os_data_size);
  List.iter
    (fun a ->
      Format.fprintf ppf "%-12s code %04X..%04X  data %04X..%04X (stack %d)@."
        a.name a.code_base (a.code_base + a.code_size) a.data_base a.data_limit
        a.stack_bytes)
    t.apps
