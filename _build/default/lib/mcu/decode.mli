(** Binary decoding of machine words back into {!Opcode.t}.

    Constant-generator encodings decode to canonical immediates
    ([S_immediate] normalized to the operation width), so
    [decode (encode i) = i] for canonically-formed instructions. *)

exception Illegal of int
(** Raised with the offending word when no instruction matches. *)

val decode : fetch:(int -> int) -> addr:int -> Opcode.t * int
(** [decode ~fetch ~addr] reads the instruction starting at [addr]
    ([fetch] returns the 16-bit word at a byte address) and returns it
    with its size in bytes. *)

val decode_words : int list -> Opcode.t * int
(** Decode from a word list (for tests). *)
