(* Typed abstract syntax, produced by Typecheck.  Locals are renamed
   to unique names; struct member accesses carry resolved fields;
   every expression carries its type. *)

type texpr = { te : texpr_node; ty : Ctype.t; tloc : Srcloc.t }

and texpr_node =
  | Tnum of int
  | Tstr of string  (* literal contents; codegen interns into rodata *)
  | Tlocal of string  (* unique local name (includes parameters) *)
  | Tglobal of string
  | Tfunc_name of string  (* function used as a value *)
  | Tbin of Ast.binop * texpr * texpr
  | Tun of Ast.unop * texpr
  | Tassign of texpr * texpr
  | Top_assign of Ast.binop * texpr * texpr
  | Tcond of texpr * texpr * texpr
  | Tcall of string * texpr list  (* direct call, may be external/API *)
  | Tcall_ptr of texpr * texpr list  (* through a function pointer *)
  | Tindex of texpr * texpr  (* base (array lvalue or pointer value) *)
  | Tderef of texpr
  | Taddr of texpr
  | Tmember of texpr * Ctype.field  (* e.f  (e is a struct lvalue) *)
  | Tarrow of texpr * Ctype.field  (* e->f (e is a struct pointer) *)
  | Tpre_incr of texpr
  | Tpre_decr of texpr
  | Tpost_incr of texpr
  | Tpost_decr of texpr
  | Tcast of Ctype.t * texpr

type tstmt =
  | Tsexpr of texpr
  | Tsdecl of string * Ctype.t * tinit option  (* unique name *)
  | Tsif of texpr * tstmt list * tstmt list
  | Tswhile of texpr * tstmt list
  | Tsdo_while of tstmt list * texpr
  | Tsfor of tstmt option * texpr option * texpr option * tstmt list
  | Tsreturn of texpr option
  | Tsbreak
  | Tscontinue
  | Tsswitch of texpr * (int * tstmt list) list * tstmt list option
  | Tsblock of tstmt list

and tinit = Ti_expr of texpr | Ti_list of texpr list | Ti_str of string

type tfunc = {
  tfname : string;
  tfret : Ctype.t;
  tfparams : (string * Ctype.t) list;  (* unique names *)
  tfbody : tstmt list;
  tfloc : Srcloc.t;
}

type tglobal = {
  tgname : string;
  tgtype : Ctype.t;
  tginit : tinit option;
  tgconst : bool;
}

type program = {
  struct_env : Ctype.env;
  globals : tglobal list;  (* in declaration order *)
  funcs : tfunc list;
}

(* Is this expression an lvalue (has an address)? *)
let rec is_lvalue e =
  match e.te with
  | Tlocal _ | Tglobal _ | Tderef _ -> true
  | Tindex _ -> true
  | Tmember (b, _) -> is_lvalue b
  | Tarrow _ -> true
  | Tcast (_, e) -> is_lvalue e
  | _ -> false

(* Apply [f] to [e] and every sub-expression, outermost first. *)
let rec iter_expr f e =
  f e;
  match e.te with
  | Tnum _ | Tstr _ | Tlocal _ | Tglobal _ | Tfunc_name _ -> ()
  | Tbin (_, a, b) | Tassign (a, b) | Top_assign (_, a, b) | Tindex (a, b) ->
    iter_expr f a;
    iter_expr f b
  | Tun (_, a)
  | Tderef a
  | Taddr a
  | Tmember (a, _)
  | Tarrow (a, _)
  | Tpre_incr a
  | Tpre_decr a
  | Tpost_incr a
  | Tpost_decr a
  | Tcast (_, a) ->
    iter_expr f a
  | Tcond (a, b, c) ->
    iter_expr f a;
    iter_expr f b;
    iter_expr f c
  | Tcall (_, args) -> List.iter (iter_expr f) args
  | Tcall_ptr (callee, args) ->
    iter_expr f callee;
    List.iter (iter_expr f) args

(* Apply [decl] to every local declaration and [expr] to every
   top-level expression of [s], recursing into nested statements. *)
let rec iter_stmt ~decl ~expr s =
  let stmts = List.iter (iter_stmt ~decl ~expr) in
  match s with
  | Tsexpr e -> expr e
  | Tsdecl (name, ty, init) -> (
    decl name ty;
    match init with
    | Some (Ti_expr e) -> expr e
    | Some (Ti_list es) -> List.iter expr es
    | Some (Ti_str _) | None -> ())
  | Tsif (c, a, b) ->
    expr c;
    stmts a;
    stmts b
  | Tswhile (c, body) ->
    expr c;
    stmts body
  | Tsdo_while (body, c) ->
    stmts body;
    expr c
  | Tsfor (init, c, step, body) ->
    Option.iter (iter_stmt ~decl ~expr) init;
    Option.iter expr c;
    Option.iter expr step;
    stmts body
  | Tsreturn e -> Option.iter expr e
  | Tsbreak | Tscontinue -> ()
  | Tsswitch (e, cases, default) ->
    expr e;
    List.iter (fun (_, b) -> stmts b) cases;
    Option.iter stmts default
  | Tsblock body -> stmts body
