(** Minimal JSON tree, printer and parser.

    Only what the trace sinks and the [amulet_prof] reader need — no
    external dependency.  Integers stay integers on a round-trip
    (cycle counts must not pass through floats). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on malformed input. *)

(* Accessors (total: [None] on shape mismatch). *)

val member : string -> t -> t option
val to_int : t -> int option
val to_str : t -> string option
