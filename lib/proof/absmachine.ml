(* The abstract transition system extracted from [lib/mcu].

   One app ("the attacker") runs under one of the four isolation
   modes.  Concrete machine state is collapsed to the pieces the
   isolation argument actually turns on:

   - the privilege side of the gate ([P_app] / [P_os]);
   - whether the MPU is enabled;
   - which MPU window is programmed (app window, OS window, or a
     widened window after a boundary-register tamper);
   - whether containment has already failed (a terminal [dead] marker
     carrying what happened).

   Memory is region-abstracted: addresses live in canonical intervals
   ([Geom]) chosen so that every guard comparison and every MPU
   boundary falls *between* intervals, never inside one.  A store to
   an interval therefore behaves uniformly for every concrete address
   it denotes — that is the abstraction the differential lemmas in
   [Lemmas] validate against the real decoder/ALU.

   Gate entry and exit are the only privilege/window transitions, as
   in the concrete AFT stubs ([lib/aft/stubs.ml]): the trampoline arms
   the app window before dispatch, a gate switches to the OS window
   for the service body and restores the app window on return.

   Deliberate abstractions (documented, load-bearing):

   - gate exit restores the app window from the OS-held slots
     unconditionally.  Corrupting the slots would itself require a
     containment breach (they live in OS data), so any execution that
     reaches a corrupted restore is already counted as refuted at the
     earlier store;
   - a successful app write to an MPU register is terminal: the write
     is a breach by itself (the oracle's rule), so the post-tamper
     state space does not need to be explored for the safety
     property.  The widened/disabled effect is still modelled for the
     window-integrity obligation via [W_wide];
   - the interrupt-vector page [0xFF80, 0x10000) is mapped, writable
     memory that the MPU never covers ([Mpu.segment_of_addr]) and the
     Mpu_assisted mode's lower-bound-only guard never checks (the
     guards are unsigned comparisons).  The abstract machine keeps the
     hole; [Obligations] states it as an explicit refutable claim
     rather than papering over it. *)

module Iso = Amulet_cc.Isolation
module Map = Amulet_mcu.Memory_map
module Mpu = Amulet_mcu.Mpu
module I = Interval

(* ------------------------------------------------------------------ *)
(* Regions: names for the canonical intervals of the partition.        *)

type region =
  | R_own_data  (** the attacker app's declared globals and stack *)
  | R_own_slack  (** 1 KiB-granule slack between globals and data_limit *)
  | R_own_code
  | R_os  (** OS code/data and any lower app: FRAM below own code *)
  | R_victim  (** the next app above the attacker *)
  | R_fram_high  (** unused FRAM above the victim, below fram_limit *)
  | R_vectors  (** interrupt vectors — never MPU-covered *)
  | R_sram  (** the shared SRAM call stack *)
  | R_info
  | R_mpu_regs
  | R_periph  (** non-MPU peripheral/debug ports *)

let all_regions =
  [
    R_own_data; R_own_slack; R_own_code; R_os; R_victim; R_fram_high;
    R_vectors; R_sram; R_info; R_mpu_regs; R_periph;
  ]

let region_name = function
  | R_own_data -> "own-data"
  | R_own_slack -> "own-slack"
  | R_own_code -> "own-code"
  | R_os -> "os"
  | R_victim -> "victim"
  | R_fram_high -> "fram-high"
  | R_vectors -> "vectors"
  | R_sram -> "sram"
  | R_info -> "info"
  | R_mpu_regs -> "mpu-regs"
  | R_periph -> "periph"

(* ------------------------------------------------------------------ *)
(* Canonical geometry                                                  *)

type geom = {
  g_os : I.t;
  g_own_code : I.t;
  g_own_data : I.t;  (** declared globals + private stack *)
  g_own_slack : I.t;  (** rest of the 1 KiB-granule window *)
  g_victim : I.t;
  g_fram_high : I.t;
  g_vectors : I.t;
  g_sram : I.t;
  g_info : I.t;
  g_mpu_regs : I.t;
  g_periph : I.t;
}

(* All FRAM cuts sit on 1 KiB granules, so the app MPU window is
   exactly [g_own_data ∪ g_own_slack] and boundary snapping is the
   identity — granularity slack is modelled by [g_own_slack] itself. *)
let default =
  {
    g_os = I.make Map.fram_start 0x5000;
    g_own_code = I.make 0x5000 0x5400;
    g_own_data = I.make 0x5400 0x5600;
    g_own_slack = I.make 0x5600 0x5800;
    g_victim = I.make 0x5800 0x6000;
    g_fram_high = I.make 0x6000 Map.fram_limit;
    g_vectors = I.make Map.vectors_start Map.vectors_limit;
    g_sram = I.make Map.sram_start Map.sram_limit;
    g_info = I.make Map.info_mem_start Map.info_mem_limit;
    g_mpu_regs = I.make Mpu.ctl0_addr (Mpu.sam_addr + 2);
    g_periph = I.make 0x01F0 0x01FA;
  }

let interval_of g = function
  | R_own_data -> g.g_own_data
  | R_own_slack -> g.g_own_slack
  | R_own_code -> g.g_own_code
  | R_os -> g.g_os
  | R_victim -> g.g_victim
  | R_fram_high -> g.g_fram_high
  | R_vectors -> g.g_vectors
  | R_sram -> g.g_sram
  | R_info -> g.g_info
  | R_mpu_regs -> g.g_mpu_regs
  | R_periph -> g.g_periph

(* Representative concrete address, for counterexample replay. *)
let rep g r = I.lo (interval_of g r)

let data_lo g = I.lo g.g_own_data
let data_hi g = I.hi g.g_own_slack (* data_limit: top of the granule window *)
let window g = I.make (data_lo g) (data_hi g)

(* ------------------------------------------------------------------ *)
(* State                                                               *)

type priv = P_app | P_os
type window_cfg = W_app | W_os | W_wide

type kind = K_write | K_read | K_exec | K_mpu

type breach = { br_region : region; br_kind : kind }

type stuck = S_guard | S_mpu | S_badpw | S_gate | S_kernel

type dead = D_breach of breach | D_stuck of stuck

type state = { priv : priv; mpu_en : bool; win : window_cfg; dead : dead option }

let kind_name = function
  | K_write -> "write"
  | K_read -> "read"
  | K_exec -> "exec"
  | K_mpu -> "mpu-reconfig"

let stuck_name = function
  | S_guard -> "guard-fault"
  | S_mpu -> "mpu-fault"
  | S_badpw -> "mpu-password-fault"
  | S_gate -> "gate-rejected"
  | S_kernel -> "kernel-contained"

let pp_dead ppf = function
  | D_breach b ->
    Format.fprintf ppf "BREACH(%s %s)" (kind_name b.br_kind)
      (region_name b.br_region)
  | D_stuck s -> Format.fprintf ppf "%s" (stuck_name s)

let pp_state ppf s =
  Format.fprintf ppf "{%s mpu=%s win=%s%a}"
    (match s.priv with P_app -> "app" | P_os -> "os")
    (if s.mpu_en then "on" else "off")
    (match s.win with W_app -> "app" | W_os -> "os" | W_wide -> "wide")
    (fun ppf -> function
      | None -> ()
      | Some d -> Format.fprintf ppf " %a" pp_dead d)
    s.dead

let state_equal (a : state) (b : state) = a = b

let init ~mode =
  { priv = P_app; mpu_en = Iso.uses_mpu mode; win = W_app; dead = None }

let universe =
  let deads =
    None
    :: List.map (fun s -> Some (D_stuck s)) [ S_guard; S_mpu; S_badpw; S_gate; S_kernel ]
    @ List.concat_map
        (fun r ->
          List.map
            (fun k -> Some (D_breach { br_region = r; br_kind = k }))
            [ K_write; K_read; K_exec; K_mpu ])
        all_regions
  in
  List.concat_map
    (fun priv ->
      List.concat_map
        (fun mpu_en ->
          List.concat_map
            (fun win -> List.map (fun dead -> { priv; mpu_en; win; dead }) deads)
            [ W_app; W_os; W_wide ])
        [ false; true ])
    [ P_app; P_os ]

(* ------------------------------------------------------------------ *)
(* Actions                                                             *)

type mpu_effect = M_disable | M_widen | M_badpw

type action =
  | A_compute
  | A_store of region  (** unguarded store (binary payload) *)
  | A_load of region
  | A_jump of region  (** raw branch (binary payload) *)
  | A_guarded_store of region  (** pointer store behind the mode's guards *)
  | A_guarded_load of region
  | A_guarded_call of region  (** call via a checked function pointer *)
  | A_push_bounded
  | A_push_wild  (** unbounded recursion walking the stack downwards *)
  | A_mpu_store of mpu_effect  (** store to an MPU register *)
  | A_gate_enter
  | A_gate_exit
  | A_gate_ptr of region  (** gate call passing a pointer into [region] *)

let mpu_effect_name = function
  | M_disable -> "disable"
  | M_widen -> "widen-segb2"
  | M_badpw -> "bad-password"

let pp_action ppf = function
  | A_compute -> Format.fprintf ppf "compute"
  | A_store r -> Format.fprintf ppf "store %s" (region_name r)
  | A_load r -> Format.fprintf ppf "load %s" (region_name r)
  | A_jump r -> Format.fprintf ppf "jump %s" (region_name r)
  | A_guarded_store r -> Format.fprintf ppf "guarded-store %s" (region_name r)
  | A_guarded_load r -> Format.fprintf ppf "guarded-load %s" (region_name r)
  | A_guarded_call r -> Format.fprintf ppf "guarded-call %s" (region_name r)
  | A_push_bounded -> Format.fprintf ppf "push"
  | A_push_wild -> Format.fprintf ppf "push-wild"
  | A_mpu_store e -> Format.fprintf ppf "mpu-store %s" (mpu_effect_name e)
  | A_gate_enter -> Format.fprintf ppf "gate-enter"
  | A_gate_exit -> Format.fprintf ppf "gate-exit"
  | A_gate_ptr r -> Format.fprintf ppf "gate-ptr %s" (region_name r)

let action_to_string a = Format.asprintf "%a" pp_action a

(* ------------------------------------------------------------------ *)
(* Attacker models                                                     *)

type attacker =
  | Benign  (** a well-behaved app: touches only its own memory *)
  | Compiled of { stack_bounded : bool }
      (** anything the mode's toolchain will emit for adversarial
          source (guards and checks included) *)
  | Binary  (** arbitrary machine code smuggled past the toolchain *)

let attacker_name = function
  | Benign -> "benign"
  | Compiled { stack_bounded = true } -> "compiled"
  | Compiled { stack_bounded = false } -> "compiled-unbounded-stack"
  | Binary -> "binary"

let gates = [ A_gate_enter; A_gate_exit; A_compute ]

let repertoire ~mode ~attacker =
  let shared = not (Iso.separate_stacks mode) in
  let own_traffic =
    [ A_store R_own_data; A_load R_own_data; A_gate_ptr R_own_data ]
    @ (if shared then [ A_store R_sram; A_load R_sram ] else [])
  in
  match attacker with
  | Benign -> gates @ own_traffic @ [ A_push_bounded ]
  | Compiled { stack_bounded } ->
    if not (Iso.allows_pointers mode) then
      (* Feature-Limited: no pointers, no recursion — direct accesses
         to declared globals and in-bounds arrays only. *)
      gates @ own_traffic @ [ A_push_bounded ]
    else
      gates
      @ List.concat_map
          (fun r ->
            [ A_guarded_store r; A_guarded_load r; A_guarded_call r; A_gate_ptr r ])
          all_regions
      @ [ A_push_bounded ]
      @ (if stack_bounded || not (Iso.allows_recursion mode) then []
         else [ A_push_wild ])
  | Binary ->
    gates
    @ List.concat_map
        (fun r -> [ A_store r; A_load r; A_jump r; A_gate_ptr r ])
        all_regions
    @ [
        A_push_bounded; A_push_wild;
        A_mpu_store M_disable; A_mpu_store M_widen; A_mpu_store M_badpw;
      ]

(* ------------------------------------------------------------------ *)
(* Step semantics                                                      *)

type access = Ax_read | Ax_write | Ax_exec

(* The mode's deref guards, acting on a whole interval.  The emitted
   comparisons are unsigned ([JC]/[JNC] in codegen), so "below" and
   "above" are plain address-order tests over the 16-bit space. *)
let guard_blocks ~mode g iv =
  (Iso.checks_lower_bound mode && I.below (data_lo g) iv)
  || (Iso.checks_upper_bound mode && I.above (data_hi g) iv)

(* MPU verdict for an access to [iv] under the current window.  Only
   InfoMem and main FRAM are covered — SRAM, peripherals and the
   vector page always pass, exactly as [Mpu.segment_of_addr] says. *)
let mpu_blocks g ~en ~win access iv =
  en
  &&
  if I.subset iv g.g_info then true (* both configs leave InfoMem no-access *)
  else if I.below Map.fram_start iv || I.above Map.fram_limit iv then false
  else
    let b1 = data_lo g in
    let b2 = match win with W_wide -> I.hi g.g_victim | _ -> data_hi g in
    if I.below b1 iv then
      (* segment 1: execute-only *)
      access <> Ax_exec
    else if I.above b1 iv && I.below b2 iv then
      (* segment 2: read/write, no execute *)
      access = Ax_exec
    else
      (* segment 3 *)
      match win with
      | W_os -> access = Ax_exec (* OS window: rw, no execute *)
      | W_app | W_wide -> true (* no access *)

(* The campaign oracle's sanction rule: an app may write its own data
   window, and the shared SRAM stack in the shared-stack modes. *)
let permitted_write ~mode g iv =
  I.subset iv (window g)
  || ((not (Iso.separate_stacks mode)) && I.subset iv g.g_sram)

let permitted_read ~mode g iv =
  permitted_write ~mode g iv || I.subset iv g.g_own_code

let region_of g iv =
  match List.find_opt (fun r -> I.subset iv (interval_of g r)) all_regions with
  | Some r -> r
  | None -> invalid_arg ("Absmachine: interval outside partition " ^ I.to_string iv)

let breached s b = Some { s with dead = Some (D_breach b) }
let stuck s k = Some { s with dead = Some (D_stuck k) }

let step ~mode ?(geom = default) (s : state) (a : action) : state option =
  let g = geom in
  match s.dead with
  | Some _ -> Some s (* dead states absorb: containment already decided *)
  | None -> (
    let store ~guarded r =
      let iv = interval_of g r in
      if r = R_mpu_regs then
        (* worst case: a correctly-passworded disable write.  The
           password check runs before any trace event (machine.ml), so
           a guarded pointer must survive its guard first. *)
        if guarded && guard_blocks ~mode g iv then stuck s S_guard
        else breached s { br_region = R_mpu_regs; br_kind = K_mpu }
      else if r = R_periph then
        (* debug/host ports: not sanctioned as a breach by the oracle *)
        if guarded && guard_blocks ~mode g iv then stuck s S_guard else Some s
      else if guarded && guard_blocks ~mode g iv then stuck s S_guard
      else if mpu_blocks g ~en:s.mpu_en ~win:s.win Ax_write iv then stuck s S_mpu
      else if permitted_write ~mode g iv then Some s
      else breached s { br_region = region_of g iv; br_kind = K_write }
    in
    let load ~guarded r =
      let iv = interval_of g r in
      if r = R_mpu_regs || r = R_periph then
        (* MMIO reads raise no events and leak no app/OS memory *)
        if guarded && guard_blocks ~mode g iv then stuck s S_guard else Some s
      else if guarded && guard_blocks ~mode g iv then stuck s S_guard
      else if mpu_blocks g ~en:s.mpu_en ~win:s.win Ax_read iv then stuck s S_mpu
      else if permitted_read ~mode g iv then Some s
      else breached s { br_region = region_of g iv; br_kind = K_read }
    in
    let jump ~checked r =
      let iv = interval_of g r in
      if I.subset iv g.g_own_code then Some s
      else if checked && Iso.checks_lower_bound mode then
        (* the code-pointer guard is a two-sided own-code bounds check *)
        stuck s S_guard
      else if r = R_mpu_regs || r = R_periph then
        (* fetching MMIO yields junk; the decoder faults, kernel recovers *)
        stuck s S_kernel
      else if mpu_blocks g ~en:s.mpu_en ~win:s.win Ax_exec iv then stuck s S_mpu
      else breached s { br_region = region_of g iv; br_kind = K_exec }
    in
    match a with
    | A_compute -> Some s
    | A_gate_exit -> (
      match s.priv with
      | P_app -> None
      | P_os ->
        Some
          {
            s with
            priv = P_app;
            win = (if s.mpu_en then W_app else s.win);
          })
    | _ when s.priv <> P_app -> None (* only the OS runs between gates *)
    | A_gate_enter ->
      Some { s with priv = P_os; win = (if s.mpu_en then W_os else s.win) }
    | A_gate_ptr r ->
      (* the kernel validates gate pointers against the app's data and
         stack ranges before the service touches them *)
      if permitted_write ~mode g (interval_of g r) then Some s
      else stuck s S_gate
    | A_store r -> store ~guarded:false r
    | A_guarded_store r -> store ~guarded:true r
    | A_load r -> load ~guarded:false r
    | A_guarded_load r -> load ~guarded:true r
    | A_jump r -> jump ~checked:false r
    | A_guarded_call r -> jump ~checked:true r
    | A_push_bounded -> Some s
    | A_push_wild ->
      if not (Iso.separate_stacks mode) then
        (* the shared SRAM stack walks off the bottom of SRAM into
           unmapped space: a bus fault the kernel recovers from *)
        stuck s S_kernel
      else
        (* the private stack walks below data_lo into own code: the
           pushes themselves are unguarded stores *)
        let iv = g.g_own_code in
        if mpu_blocks g ~en:s.mpu_en ~win:s.win Ax_write iv then stuck s S_mpu
        else breached s { br_region = R_own_code; br_kind = K_write }
    | A_mpu_store M_badpw -> stuck s S_badpw
    | A_mpu_store (M_disable | M_widen) ->
      breached s { br_region = R_mpu_regs; br_kind = K_mpu })

(* ------------------------------------------------------------------ *)
(* Scenario runner (deterministic attack programs, for the corpus
   crosscheck)                                                         *)

type containment =
  | C_build  (** the mode's toolchain cannot emit this program *)
  | C_guard
  | C_mpu
  | C_gate
  | C_kernel
  | C_breach of breach
  | C_harmless

let containment_name = function
  | C_build -> "build"
  | C_guard -> "guard"
  | C_mpu -> "mpu"
  | C_gate -> "gate"
  | C_kernel -> "kernel"
  | C_breach _ -> "breach"
  | C_harmless -> "harmless"

let run_scenario ~mode ~attacker actions =
  let rep = repertoire ~mode ~attacker in
  let rec go s trace = function
    | [] -> (C_harmless, List.rev trace)
    | a :: rest ->
      if not (List.mem a rep) then (C_build, List.rev trace)
      else (
        match step ~mode s a with
        | None -> invalid_arg ("scenario: disabled action " ^ action_to_string a)
        | Some s' -> (
          let trace = (s, a) :: trace in
          match s'.dead with
          | None -> go s' trace rest
          | Some (D_breach b) -> (C_breach b, List.rev trace)
          | Some (D_stuck S_guard) -> (C_guard, List.rev trace)
          | Some (D_stuck (S_mpu | S_badpw)) -> (C_mpu, List.rev trace)
          | Some (D_stuck S_gate) -> (C_gate, List.rev trace)
          | Some (D_stuck S_kernel) -> (C_kernel, List.rev trace)))
  in
  go (init ~mode) [] actions
