(** Compiler runtime support routines.

    These live in the OS code region (segment 1: executable by apps)
    and follow a scratch-register convention: arguments and results in
    R12/R13, R14/R15 clobbered, R4-R11 untouched — so the code
    generator may keep expression temporaries live across helper
    calls.

    Includes [__bounds_check] (index in R14, limit in R15), the
    Feature-Limited array check of the original Amulet toolchain: on
    violation it writes {!Isolation.fault_array_bounds} to the
    software-fault port. *)

val items : Amulet_link.Asm.item list
(** Assembly for all helpers: [__mulhi], [__udivhi], [__umodhi],
    [__divhi], [__modhi], [__shlhi], [__shrhi], [__sarhi],
    [__bounds_check]. *)

(** Marker symbols bracketing helper ranges for cycle attribution:
    [\[rt_begin, rt_end)] covers all helpers (app work), the nested
    [\[bc_begin, bc_end)] covers [__bounds_check] (guard work). *)

val rt_begin : string
val rt_end : string
val bc_begin : string
val bc_end : string

val loop_bounds : (string * int) list
(** [(header label, max body executions)] for every helper loop — the
    AFT stamps these into the image as [wcet.loop.<label>] notes so
    the binary WCET analysis can bound helper calls.  The
    [__bounds_check] failure spin is absent deliberately: its first
    instruction writes the software-fault port, which stops the
    machine. *)

val builtin_externals : (string * Ctype.t) list
(** Type signatures of the compiler builtins ([__halt], [__putc],
    [__timer_start], [__timer_read]) for the type checker. *)
