type scenario = Resting | Walking | Running | Fall_at of int | Daily_mix

type t = { seed : int; scenario : scenario }

let create ?(seed = 0x5EED) scenario = { seed; scenario }
let scenario t = t.scenario

(* Deterministic integer noise: a small hash of (seed, tag, t). *)
let noise t ~tag ~time ~amp =
  if amp = 0 then 0
  else begin
    let h = ref (t.seed lxor (tag * 0x9E3779B1) lxor (time * 0x85EBCA6B)) in
    h := !h lxor (!h lsr 13);
    h := !h * 0xC2B2AE35 land 0x3FFFFFFF;
    h := !h lxor (!h lsr 16);
    (!h mod (2 * amp)) - amp
  end

let pi = 4.0 *. atan 1.0

(* Integer sinusoid: amplitude * sin(2*pi*freq_mhz*t/1000). [freq_mhz]
   is in milli-hertz so slow rhythms stay representable. *)
let sinusoid ~amp ~freq_mhz ~time_ms =
  let phase = 2.0 *. pi *. float_of_int freq_mhz *. float_of_int time_ms /. 1.0e6 in
  int_of_float (float_of_int amp *. sin phase)

(* Which activity is in force at [time_ms] for the scenario. *)
type phase = P_rest | P_walk | P_run | P_fall

let phase_at t ~time_ms =
  match t.scenario with
  | Resting -> P_rest
  | Walking -> P_walk
  | Running -> P_run
  | Fall_at f ->
    if time_ms >= f && time_ms < f + 400 then P_fall else P_rest
  | Daily_mix ->
    (* 5-minute segments: rest, walk, rest, run, ... *)
    (match time_ms / 300_000 mod 4 with
    | 0 | 2 -> P_rest
    | 1 -> P_walk
    | _ -> P_run)

let accel_sample t ~time_ms =
  match phase_at t ~time_ms with
  | P_rest ->
    ( noise t ~tag:1 ~time:time_ms ~amp:30,
      noise t ~tag:2 ~time:time_ms ~amp:30,
      1000 + noise t ~tag:3 ~time:time_ms ~amp:20 )
  | P_walk ->
    ( sinusoid ~amp:180 ~freq_mhz:1_900 ~time_ms + noise t ~tag:1 ~time:time_ms ~amp:60,
      sinusoid ~amp:120 ~freq_mhz:950 ~time_ms + noise t ~tag:2 ~time:time_ms ~amp:60,
      1000
      + sinusoid ~amp:350 ~freq_mhz:1_900 ~time_ms
      + noise t ~tag:3 ~time:time_ms ~amp:80 )
  | P_run ->
    ( sinusoid ~amp:420 ~freq_mhz:2_800 ~time_ms + noise t ~tag:1 ~time:time_ms ~amp:120,
      sinusoid ~amp:300 ~freq_mhz:1_400 ~time_ms + noise t ~tag:2 ~time:time_ms ~amp:120,
      1000
      + sinusoid ~amp:800 ~freq_mhz:2_800 ~time_ms
      + noise t ~tag:3 ~time:time_ms ~amp:150 )
  | P_fall ->
    (* free-fall then impact *)
    let (dt : int) =
      match t.scenario with Fall_at f -> time_ms - f | _ -> 0
    in
    if dt < 200 then (noise t ~tag:1 ~time:time_ms ~amp:40, 0, 100)
    else (noise t ~tag:1 ~time:time_ms ~amp:300, 2600, 3200)

(* Exact floor square root, capped at the 16-bit sensor range.  The
   float seed is within one of the true root for any 62-bit input; the
   two correction loops run at most once each. *)
let isqrt n =
  if n <= 0 then 0
  else begin
    let x = ref (int_of_float (sqrt (float_of_int n))) in
    while !x > 0 && !x * !x > n do
      decr x
    done;
    while (!x + 1) * (!x + 1) <= n do
      incr x
    done;
    min !x 32767
  end

let accel_magnitude t ~time_ms =
  let x, y, z = accel_sample t ~time_ms in
  isqrt ((x * x) + (y * y) + (z * z))

let heart_rate t ~time_ms =
  let base =
    match phase_at t ~time_ms with
    | P_rest -> 62
    | P_walk -> 95
    | P_run -> 148
    | P_fall -> 110
  in
  base + sinusoid ~amp:4 ~freq_mhz:8 ~time_ms + noise t ~tag:7 ~time:(time_ms / 1000) ~amp:3

let ppg_sample t ~time_ms =
  (* pulse waveform at the current heart rate plus baseline wander *)
  let bpm = heart_rate t ~time_ms in
  let freq_mhz = bpm * 1000 / 60 in
  2048
  + sinusoid ~amp:300 ~freq_mhz ~time_ms
  + sinusoid ~amp:40 ~freq_mhz:120 ~time_ms
  + noise t ~tag:9 ~time:time_ms ~amp:25

let temperature t ~time_ms =
  330 + sinusoid ~amp:8 ~freq_mhz:1 ~time_ms
  + noise t ~tag:11 ~time:(time_ms / 10_000) ~amp:3

let light t ~time_ms =
  (* 24-hour cycle: night is dark, daylight peaks triangularly at 1pm *)
  let ms_day = 86_400_000 in
  let hour = time_ms mod ms_day / 3_600_000 in
  let base =
    if hour < 6 || hour >= 20 then 2
    else 800 - (60 * abs (hour - 13))
  in
  max 0 (base + noise t ~tag:13 ~time:(time_ms / 5_000) ~amp:30)

(* Two-week battery life: 100 % over 14 * 86400e3 ms. *)
let battery_percent _ ~time_ms =
  let life_ms = 14 * 86_400_000 in
  max 0 (100 - (time_ms * 100 / life_ms))

let button_state t ~time_ms =
  (* a press roughly every 97 seconds of active use *)
  if noise t ~tag:17 ~time:(time_ms / 97_000) ~amp:100 > 96 then 1 else 0
