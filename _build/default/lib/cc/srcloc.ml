type t = { line : int; col : int }

let dummy = { line = 0; col = 0 }
let pp ppf t = Format.fprintf ppf "line %d, col %d" t.line t.col

exception Error of t * string

let errf loc fmt = Format.kasprintf (fun s -> raise (Error (loc, s))) fmt
