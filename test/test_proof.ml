(* The proof layer: k-induction engine, obligation matrix, opcode
   abstraction lemmas and counterexample replay. *)

module A = Amulet_proof.Absmachine
module Engine = Amulet_proof.Engine
module Ob = Amulet_proof.Obligations
module Lemmas = Amulet_proof.Lemmas

(* ------------------------------------------------------------------ *)
(* Engine on crafted toy systems                                       *)

(* 0 -> 1 -> 0 and an island 3 -> 4 with ¬P(4): P = "not 4" holds on
   everything reachable, is NOT 1-inductive (3 satisfies P and steps
   to 4), and IS 2-inductive (no P-path of length 2 ends at 3).  This
   pins down that the engine really checks paths, not just single
   steps. *)
let toy =
  {
    Engine.universe = [ 0; 1; 3; 4 ];
    inits = [ 0 ];
    actions = [ () ];
    step =
      (fun s () ->
        match s with 0 -> Some 1 | 1 -> Some 0 | 3 -> Some 4 | _ -> None);
    prop = (fun s -> s <> 4);
    equal = Int.equal;
    pp_state = (fun ppf s -> Format.fprintf ppf "%d" s);
    pp_action = (fun ppf () -> Format.fprintf ppf "t");
  }

let test_engine_k2 () =
  (match Engine.k_induction ~k_max:1 toy with
  | Engine.Unknown _ -> ()
  | v ->
    Alcotest.failf "expected Unknown at k_max=1, got %a"
      (Engine.pp_verdict toy) v);
  match Engine.k_induction ~k_max:4 toy with
  | Engine.Proved { k = 2; _ } -> ()
  | v -> Alcotest.failf "expected k=2 proof, got %a" (Engine.pp_verdict toy) v

let test_engine_refutes () =
  let sys = { toy with Engine.inits = [ 3 ] } in
  match Engine.k_induction sys with
  | Engine.Refuted { trace = [ (3, ()) ]; final = 4 } -> ()
  | v -> Alcotest.failf "expected 3->4 trace, got %a" (Engine.pp_verdict sys) v

(* ------------------------------------------------------------------ *)
(* The obligation matrix                                               *)

let test_obligations () =
  List.iter
    (fun (r : Ob.result) ->
      if not r.Ob.res_ok then
        Alcotest.failf "%s: %a" r.Ob.res_ob.Ob.ob_name
          (Engine.pp_verdict (Ob.system r.Ob.res_ob))
          r.Ob.res_verdict)
    (Ob.run ())

(* The covered MPU theorem must *need* its strengthening: without the
   window-integrity predicate the property is not k-inductive at any
   small k (stuttering on unreachable MPU-off states precedes a
   violation).  If this ever starts proving, the state space got
   weaker and the obligation is vacuous. *)
let test_strengthening_required () =
  let o = Ob.find "mpu-compiled-covered" in
  let sys = Ob.system o in
  (match Engine.k_induction ~k_max:6 sys with
  | Engine.Unknown _ -> ()
  | v ->
    Alcotest.failf "unstrengthened covered claim should be Unknown, got %a"
      (Engine.pp_verdict sys) v);
  match Engine.k_induction ~k_max:6 ~aux:Ob.window_ok sys with
  | Engine.Proved { strengthened = true; _ } -> ()
  | v ->
    Alcotest.failf "strengthened covered claim should prove, got %a"
      (Engine.pp_verdict sys) v

(* The refuted Mpu_assisted obligation must blame the vector page —
   the documented hole — not some modelling accident. *)
let test_vector_hole_trace () =
  let r = Ob.check (Ob.find "mpu-compiled-vectors") in
  match Ob.refuted_trace r with
  | Some (trace, final) ->
    let hits_vectors =
      match final.A.dead with
      | Some (A.D_breach b) -> b.A.br_region = A.R_vectors
      | _ -> false
    in
    if not hits_vectors then
      Alcotest.failf "counterexample does not breach the vector page: %a"
        A.pp_state final;
    Alcotest.(check bool) "shortest trace" true (List.length trace <= 2)
  | None -> Alcotest.fail "mpu-compiled-vectors did not refute"

(* ------------------------------------------------------------------ *)
(* Counterexample replay                                               *)

(* Every refutable obligation's shortest counterexample must reproduce
   on the concrete machine — the "replayable on Machine" half of the
   tentpole.  A refutation that cannot be replayed would mean the
   abstract model invents attacks the hardware does not admit. *)
let test_refutations_replay () =
  List.iter
    (fun (r : Ob.result) ->
      match Ob.refuted_trace r with
      | None -> ()
      | Some (trace, final) -> (
        match
          Amulet_proof.Replay.replay ~mode:r.Ob.res_ob.Ob.ob_mode ~trace ~final
            ()
        with
        | Error e -> Alcotest.failf "%s: replay error: %s" r.Ob.res_ob.Ob.ob_name e
        | Ok rep ->
          if not rep.Amulet_proof.Replay.rp_ok then
            Alcotest.failf "%s: %s (stop %s)" r.Ob.res_ob.Ob.ob_name
              rep.Amulet_proof.Replay.rp_detail rep.Amulet_proof.Replay.rp_stop))
    (Ob.run ())

(* And a theorem-side spot check: a clean benign trace replays with no
   sanction violations. *)
let test_clean_replay () =
  let mode = Amulet_cc.Isolation.Mpu_assisted in
  let s0 = A.init ~mode in
  let trace = [ (s0, A.A_store A.R_own_data); (s0, A.A_load A.R_own_data) ] in
  match Amulet_proof.Replay.replay ~mode ~trace ~final:s0 () with
  | Error e -> Alcotest.fail e
  | Ok rep ->
    if not rep.Amulet_proof.Replay.rp_ok then
      Alcotest.failf "clean replay: %s (stop %s)"
        rep.Amulet_proof.Replay.rp_detail rep.Amulet_proof.Replay.rp_stop

(* ------------------------------------------------------------------ *)
(* Opcode abstraction lemmas                                           *)

let test_lemmas () =
  let o = Lemmas.validate () in
  if o.Lemmas.lv_failures <> [] then
    Alcotest.failf "%d/%d lemmas failed; first: %s — %s"
      (List.length o.Lemmas.lv_failures)
      o.Lemmas.lv_cases
      (List.hd o.Lemmas.lv_failures).Lemmas.f_case
      (List.hd o.Lemmas.lv_failures).Lemmas.f_reason;
  (* the corpus must stay exhaustive over the opcode grammar *)
  Alcotest.(check bool) "corpus size" true (o.Lemmas.lv_cases > 600)

(* A deliberately wrong lemma must be caught: run a case whose
   prediction we falsify by pointing a register elsewhere after
   prediction... simplest adversarial check: an instruction the
   harness predicts exactly (store via @R6) really is compared
   address-by-address, so a differential failure is reportable. *)
let test_lemma_sensitivity () =
  (* PUSH with a byte width stores one byte at SP-2: if the harness
     ever stopped observing widths this case would still pass loads
     but the width comparison keeps it honest. *)
  match
    Lemmas.run_case
      (Amulet_mcu.Opcode.Fmt2 (Amulet_mcu.Opcode.PUSH, Amulet_mcu.Word.W8,
                               Amulet_mcu.Opcode.S_reg 9))
  with
  | None -> ()
  | Some f -> Alcotest.failf "%s: %s" f.Lemmas.f_case f.Lemmas.f_reason

let () =
  Alcotest.run "proof"
    [
      ( "engine",
        [
          Alcotest.test_case "k=2 induction" `Quick test_engine_k2;
          Alcotest.test_case "shortest refutation" `Quick test_engine_refutes;
        ] );
      ( "obligations",
        [
          Alcotest.test_case "matrix matches expectations" `Quick
            test_obligations;
          Alcotest.test_case "strengthening required" `Quick
            test_strengthening_required;
          Alcotest.test_case "vector hole blamed" `Quick test_vector_hole_trace;
        ] );
      ( "replay",
        [
          Alcotest.test_case "refutations reproduce" `Quick
            test_refutations_replay;
          Alcotest.test_case "clean trace stays clean" `Quick test_clean_replay;
        ] );
      ( "lemmas",
        [
          Alcotest.test_case "differential corpus" `Quick test_lemmas;
          Alcotest.test_case "width sensitivity" `Quick test_lemma_sensitivity;
        ] );
    ]
