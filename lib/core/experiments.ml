module Iso = Amulet_cc.Isolation
module Aft = Amulet_aft.Aft
module Os = Amulet_os
module Apps = Amulet_apps.Suite
module Arp = Amulet_arp.Arp
module Energy = Amulet_arp.Energy

(* ------------------------------------------------------------------ *)
(* Measurement helper *)

let measure_in_kernel k ~app_index ~arg ~runs =
  let total = ref 0 and count = ref 0 in
  for _ = 1 to runs do
    Os.Kernel.post k ~delay_ms:0 ~app:app_index (Os.Event.Button arg) ~arg;
    match Os.Kernel.dispatch_next k with
    | Some r -> (
      match r.Os.Kernel.dr_outcome with
      | Os.Kernel.Ok ->
        total := !total + r.Os.Kernel.dr_cycles;
        incr count
      | Os.Kernel.No_handler -> failwith "benchmark app has no handle_button"
      | Os.Kernel.App_fault m -> failwith ("benchmark faulted: " ^ m))
    | None -> failwith "no event to dispatch"
  done;
  float_of_int !total /. float_of_int (max 1 !count)

let measure_handler ?(shadow = false) ?(elide = true) ?(certify = true) ~mode
    ~app ~arg ~runs () =
  let fw = Aft.build ~mode ~shadow ~elide ~certify [ Apps.spec_for mode app ] in
  let k = Os.Kernel.create ~scenario:Os.Sensors.Walking fw in
  let _ = Os.Kernel.run_for_ms k 5 in
  measure_in_kernel k ~app_index:0 ~arg ~runs

(* ------------------------------------------------------------------ *)
(* Table 1 *)

type table1_row = {
  t1_mode : Iso.mode;
  t1_mem_access : float;
  t1_ctx_switch : float;
}

(* The paper's compiler has no check elision, and the synthetic
   benchmark's mask-indexed accesses are exactly the kind the range
   analysis proves safe — so Table 1 measures with elision off to
   reproduce the paper's per-guard cost.  [ablation_elision] below
   shows what the analysis recovers. *)
let table1 ?(runs = 200) ?(elide = false) () =
  List.map
    (fun mode ->
      let app = Apps.synthetic in
      let fw = Aft.build ~mode ~elide [ Apps.spec_for mode app ] in
      let k = Os.Kernel.create fw in
      let _ = Os.Kernel.run_for_ms k 5 in
      let c0 = measure_in_kernel k ~app_index:0 ~arg:0 ~runs in
      let c1 = measure_in_kernel k ~app_index:0 ~arg:1 ~runs in
      let c2 = measure_in_kernel k ~app_index:0 ~arg:2 ~runs in
      let accesses = float_of_int Amulet_apps.Bench_sources.synthetic_mem_accesses in
      let calls = float_of_int Amulet_apps.Bench_sources.synthetic_api_calls in
      {
        t1_mode = mode;
        t1_mem_access = (c1 -. c0) /. accesses;
        (* one API call = two context switches (app->OS and back) *)
        t1_ctx_switch = (c2 -. c0) /. calls /. 2.0;
      })
    Iso.all

(* ------------------------------------------------------------------ *)
(* Figure 2 *)

type figure2_row = {
  f2_app : string;
  f2_mode : Iso.mode;
  f2_overhead_cycles : float;
  f2_battery_percent : float;
}

let figure2 ?(scenario = Os.Sensors.Walking) ?(warmup_ms = 90_000) () =
  List.concat_map
    (fun (app : Apps.app) ->
      let baseline =
        Arp.profile_app ~scenario ~warmup_ms ~mode:Iso.No_isolation app
      in
      List.map
        (fun mode ->
          let p = Arp.profile_app ~scenario ~warmup_ms ~mode app in
          let overhead = Arp.overhead_cycles_per_week ~baseline p in
          {
            f2_app = app.Apps.display_name;
            f2_mode = mode;
            f2_overhead_cycles = overhead;
            f2_battery_percent =
              Energy.battery_impact_percent ~overhead_cycles_per_week:overhead;
          })
        [ Iso.Feature_limited; Iso.Mpu_assisted; Iso.Software_only ])
    Apps.platform_apps

(* ------------------------------------------------------------------ *)
(* Figure 3 *)

type figure3_row = {
  f3_case : string;
  f3_mode : Iso.mode;
  f3_cycles : float;
  f3_slowdown_percent : float;
}

let figure3_specs =
  [
    ("Activity Case 1", Apps.activity, 1);
    ("Activity Case 2", Apps.activity, 2);
    ("Quicksort", Apps.quicksort, 1);
  ]

let figure3 ?(runs = 200) () =
  List.concat_map
    (fun (case, app, arg) ->
      let baseline =
        measure_handler ~mode:Iso.No_isolation ~app ~arg ~runs ()
      in
      List.map
        (fun mode ->
          let cycles = measure_handler ~mode ~app ~arg ~runs () in
          {
            f3_case = case;
            f3_mode = mode;
            f3_cycles = cycles;
            f3_slowdown_percent = (cycles /. baseline -. 1.0) *. 100.0;
          })
        [ Iso.Feature_limited; Iso.Mpu_assisted; Iso.Software_only ])
    figure3_specs


(* ------------------------------------------------------------------ *)
(* Ablations beyond the paper's evaluation *)

(* Shadow return-address stack (paper section 5, "a shadow
   return-address stack to prevent applications from jumping outside
   their code bounds"): fixed per-call cost, measured with a
   call-dense handler. *)

type shadow_row = {
  sh_mode : Iso.mode;
  sh_plain : float;  (* cycles per run, shadow off *)
  sh_hardened : float;  (* cycles per run, shadow on *)
  sh_per_call : float;  (* marginal cycles per function call *)
}

let ablation_shadow ?(runs = 100) () =
  let app = Apps.callheavy in
  (* leaf calls plus the handler's own activation *)
  let calls = float_of_int (Amulet_apps.Bench_sources.call_count + 1) in
  List.map
    (fun mode ->
      let plain = measure_handler ~mode ~app ~arg:1 ~runs () in
      let hardened = measure_handler ~shadow:true ~mode ~app ~arg:1 ~runs () in
      {
        sh_mode = mode;
        sh_plain = plain;
        sh_hardened = hardened;
        sh_per_call = (hardened -. plain) /. calls;
      })
    Iso.all

(* The paper's closing projection: an MPU that could protect all of
   memory with four or more regions "would negate the need for our
   compiler-inserted bounds checks".  On such a part, per-access cost
   falls to the no-isolation figure while the context switch keeps the
   MPU reconfiguration price.  Synthesized from the measured Table 1. *)

type advanced_mpu_row = {
  am_mem_access : float;
  am_ctx_switch : float;
  am_mem_saving_percent : float;  (* vs the real MPU method *)
}

let ablation_advanced_mpu ?(runs = 100) () =
  let rows = table1 ~runs () in
  let find mode = List.find (fun r -> r.t1_mode = mode) rows in
  let mpu = find Iso.Mpu_assisted and none = find Iso.No_isolation in
  {
    am_mem_access = none.t1_mem_access;
    am_ctx_switch = mpu.t1_ctx_switch;
    am_mem_saving_percent =
      (mpu.t1_mem_access -. none.t1_mem_access) /. mpu.t1_mem_access *. 100.0;
  }

(* Bounds-check elision: the range analysis proves the synthetic
   benchmark's masked accesses in bounds, so its guards disappear in
   the modes that insert them (Software-Only and MPU). *)

type elision_row = {
  el_mode : Iso.mode;
  el_full : float;  (* cycles per run, every guard emitted *)
  el_elided : float;  (* cycles per run, proven guards dropped *)
  el_sites : int;  (* dereference sites whose guard was elided *)
  el_saving_percent : float;
}

let ablation_elision ?(runs = 100) () =
  let app = Apps.synthetic in
  List.map
    (fun mode ->
      let full = measure_handler ~mode ~app ~elide:false ~arg:1 ~runs () in
      let elided = measure_handler ~mode ~app ~elide:true ~arg:1 ~runs () in
      let fw = Aft.build ~mode [ Apps.spec_for mode app ] in
      let sites =
        List.fold_left
          (fun acc ab ->
            List.fold_left
              (fun acc fi ->
                acc + fi.Amulet_cc.Codegen.fi_sites.Amulet_cc.Codegen.elided)
              acc ab.Aft.ab_compiled.Amulet_cc.Driver.infos)
          0 fw.Aft.fw_apps
      in
      {
        el_mode = mode;
        el_full = full;
        el_elided = elided;
        el_sites = sites;
        el_saving_percent = (full -. elided) /. full *. 100.0;
      })
    [ Iso.Software_only; Iso.Mpu_assisted ]

(* Gate-pointer certification: the static certifier proves every
   pointer the gate-dense benchmark hands the OS in-region, so the
   kernel's dynamic range validation disappears for its services. *)

type gate_cert_row = {
  gc_mode : Iso.mode;
  gc_dynamic : float;  (* cycles per run, every gate pointer validated *)
  gc_certified : float;  (* cycles per run, certified services elided *)
  gc_per_gate : float;  (* marginal cycles per pointer-carrying call *)
  gc_services : string list;  (* services certified for the app *)
}

let ablation_gate_cert ?(runs = 100) () =
  let app = Apps.gateheavy in
  let gates = float_of_int Amulet_apps.Bench_sources.gate_ptr_calls in
  List.map
    (fun mode ->
      let dynamic = measure_handler ~mode ~app ~certify:false ~arg:1 ~runs () in
      let certified = measure_handler ~mode ~app ~certify:true ~arg:1 ~runs () in
      let fw = Aft.build ~mode [ Apps.spec_for mode app ] in
      let services =
        match
          Amulet_link.Image.note fw.Aft.fw_image ("cert.gates." ^ app.Apps.name)
        with
        | Some s -> String.split_on_char ',' s
        | None -> []
      in
      {
        gc_mode = mode;
        gc_dynamic = dynamic;
        gc_certified = certified;
        gc_per_gate = (dynamic -. certified) /. gates;
        gc_services = services;
      })
    [ Iso.Software_only; Iso.Mpu_assisted ]
