lib/aft/aft.ml: Amulet_cc Amulet_link Format Layout List String Stubs
