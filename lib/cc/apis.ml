open Ctype

let fn ret args = Func (ret, args)

let signatures =
  [
    (* benchmarking no-op: measures pure context-switch cost *)
    ("api_null", fn Void []);
    (* time and power *)
    ("api_get_time", fn Uint []);
    ("api_get_battery", fn Int []);
    (* sensors *)
    ("api_read_accel", fn Int [ Ptr Int; Int ]);
    ("api_read_accel_xyz", fn Int [ Ptr Int ]);
    ("api_read_heart_rate", fn Int []);
    ("api_read_ppg", fn Int [ Ptr Int; Int ]);
    ("api_read_temperature", fn Int []);
    ("api_read_light", fn Int []);
    (* display and UI *)
    ("api_display_write", fn Void [ Ptr Char; Int ]);
    ("api_display_clear", fn Void []);
    ("api_button_state", fn Int []);
    ("api_led", fn Void [ Int ]);
    ("api_buzz", fn Void [ Int ]);
    (* storage and radio *)
    ("api_log_append", fn Int [ Ptr Char; Int ]);
    ("api_send_ble", fn Int [ Ptr Char; Int ]);
    (* timers and subscriptions *)
    ("api_set_timer", fn Int [ Int ]);
    ("api_cancel_timer", fn Void [ Int ]);
    ("api_subscribe", fn Int [ Int; Int ]);
    ("api_unsubscribe", fn Void [ Int ]);
    (* misc *)
    ("api_rand", fn Uint []);
  ]

let names = List.map fst signatures
let exists name = List.mem_assoc name signatures
let gate_label name = "__gate_" ^ name

let arg_count name =
  match List.assoc name signatures with
  | Func (_, args) -> List.length args
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Service cost model.

   The kernel charges every dispatched service a fixed base cost plus
   a data-dependent cost (per word copied, per byte logged, ...).
   The table lives here — in the leaf library both the OS model and
   the static analyses can see — so the dynamic charges in
   [Amulet_os.Api] and the static worst-case bounds in
   [Amulet_analysis.Wcet] are two views of the same constants and
   cannot drift apart. *)

(* Modeled service costs in cycles (datasheet-plausible orders of
   magnitude: sensor FIFO reads, FRAM writes, SPI display traffic).
   The context-switch cost itself is executed gate code, not charged
   here, so api_null measures the pure switch. *)
let base_charge = function
  | "api_null" -> 0
  | "api_get_time" -> 6
  | "api_get_battery" -> 10
  | "api_read_accel" -> 16
  | "api_read_accel_xyz" -> 22
  | "api_read_heart_rate" -> 18
  | "api_read_ppg" -> 16
  | "api_read_temperature" -> 14
  | "api_read_light" -> 12
  | "api_display_write" -> 52
  | "api_display_clear" -> 40
  | "api_button_state" -> 6
  | "api_led" -> 4
  | "api_buzz" -> 8
  | "api_log_append" -> 42
  | "api_send_ble" -> 72
  | "api_set_timer" -> 20
  | "api_cancel_timer" -> 12
  | "api_subscribe" -> 24
  | "api_unsubscribe" -> 16
  | "api_rand" -> 8
  | _ -> 10

let per_word_charge = 2

(* Cycles the kernel spends validating one app-supplied pointer range
   (two bound compares plus the range walk).  Charged once per call
   for the services that take an app pointer; statically certified
   call sites ({!Amulet_analysis.Gate_taint}) skip both the walk and
   the charge. *)
let validate_charge = 8

let range_services =
  [
    "api_read_accel"; "api_read_accel_xyz"; "api_read_ppg";
    "api_display_write"; "api_log_append"; "api_send_ble";
  ]

(* Worst case of the data-dependent part: the kernel clamps every
   app-supplied length, so each service's variable charge has a hard
   maximum regardless of the arguments.  Mirrors the clamp constants
   in [Amulet_os.Api.dispatch]. *)
let max_variable_charge = function
  | "api_read_accel" | "api_read_ppg" -> 64 * per_word_charge (* n <= 64 words *)
  | "api_read_accel_xyz" -> 3 * per_word_charge
  | "api_display_write" -> 32 (* 1 cycle/char, <= 32 chars *)
  | "api_log_append" -> 3 * 128 (* 3 cycles/byte, n <= 128 *)
  | "api_send_ble" -> 4 * 128 (* 4 cycles/byte, n <= 128 *)
  | _ -> 0

let worst_case_charge ~certified name =
  base_charge name
  + (if (not certified) && List.mem name range_services then validate_charge
     else 0)
  + max_variable_charge name
