type access = Afetch | Aread

type bus = {
  read : access -> Word.width -> int -> int;
  write : Word.width -> int -> int -> unit;
}

type t = {
  regs : Registers.t;
  bus : bus;
  mutable cycles : int;
  mutable insns : int;
}

let create bus = { regs = Registers.create (); bus; cycles = 0; insns = 0 }

(* A resolved operand: either a register or a memory address. *)
type place = P_reg of int | P_mem of int | P_imm of int

let read_place t width = function
  | P_reg r -> Word.norm width (Registers.get t.regs r)
  | P_mem a -> t.bus.read Aread width a
  | P_imm n -> Word.norm width n

let write_place t width value = function
  | P_reg r ->
    (* Byte writes to a register clear the upper byte (MSP430 rule). *)
    Registers.set t.regs r (Word.norm width value)
  | P_mem a -> t.bus.write width a value
  | P_imm _ -> invalid_arg "Cpu: write to immediate"

(* Resolve the source operand.  [ext_addr] is the address of this
   operand's extension word (for PC-relative indexed mode). *)
let resolve_src t width ~ext_addr = function
  | Opcode.S_reg r -> P_reg r
  | Opcode.S_indexed (r, x) ->
    (* x(PC) is symbolic mode: relative to the extension word. *)
    let base = if r = Registers.pc then ext_addr else Registers.get t.regs r in
    P_mem ((base + x) land 0xFFFF)
  | Opcode.S_absolute a -> P_mem a
  | Opcode.S_indirect r -> P_mem (Registers.get t.regs r)
  | Opcode.S_indirect_inc r ->
    let a = Registers.get t.regs r in
    let inc =
      (* SP stays word-aligned even for byte pops. *)
      if r = Registers.sp then 2
      else match width with Word.W8 -> 1 | Word.W16 -> 2
    in
    Registers.set t.regs r (a + inc);
    P_mem a
  | Opcode.S_immediate n -> P_imm n

let resolve_dst t ~ext_addr = function
  | Opcode.D_reg r -> P_reg r
  | Opcode.D_indexed (r, x) ->
    let base = if r = Registers.pc then ext_addr else Registers.get t.regs r in
    P_mem ((base + x) land 0xFFFF)
  | Opcode.D_absolute a -> P_mem a

let apply_flags t width (f : Alu.flags) =
  Registers.set_carry t.regs f.Alu.c;
  Registers.set_zero t.regs f.Alu.z;
  Registers.set_negative t.regs f.Alu.n;
  Registers.set_overflow t.regs f.Alu.v;
  ignore width

(* SP always moves down a full word, even for PUSH.B; the store itself
   is [width]-sized, leaving the high byte of the slot untouched. *)
let push t width v =
  let sp = Registers.get_sp t.regs - 2 in
  Registers.set_sp t.regs sp;
  t.bus.write width sp v

let push_word t v = push t Word.W16 v

let cond_true regs = function
  | Opcode.JNE -> not (Registers.zero regs)
  | Opcode.JEQ -> Registers.zero regs
  | Opcode.JNC -> not (Registers.carry regs)
  | Opcode.JC -> Registers.carry regs
  | Opcode.JN -> Registers.negative regs
  | Opcode.JGE ->
    Registers.negative regs = Registers.overflow regs
  | Opcode.JL -> Registers.negative regs <> Registers.overflow regs
  | Opcode.JMP -> true

let exec_fmt1 t op width src dst ~src_ext_addr ~dst_ext_addr =
  let splace = resolve_src t width ~ext_addr:src_ext_addr src in
  let sval = read_place t width splace in
  let dplace = resolve_dst t ~ext_addr:dst_ext_addr dst in
  let dval =
    if op = Opcode.MOV then 0 else read_place t width dplace
  in
  let carry_in = Registers.carry t.regs in
  let value, flags = Alu.fmt1 op width ~carry_in ~src:sval ~dst:dval in
  if Opcode.writes_back op then write_place t width value dplace;
  match flags with Some f -> apply_flags t width f | None -> ()

let exec_fmt2 t op width src ~src_ext_addr =
  let splace = resolve_src t width ~ext_addr:src_ext_addr src in
  match op with
  | Opcode.RRC ->
    let v = read_place t width splace in
    let value, f = Alu.rrc width ~carry_in:(Registers.carry t.regs) v in
    write_place t width value splace;
    apply_flags t width f
  | Opcode.RRA ->
    let v = read_place t width splace in
    let value, f = Alu.rra width v in
    write_place t width value splace;
    apply_flags t width f
  | Opcode.SWPB ->
    let v = read_place t Word.W16 splace in
    write_place t Word.W16 (Word.swap_bytes v) splace
  | Opcode.SXT ->
    let v = read_place t Word.W16 splace in
    let value, f = Alu.sxt v in
    write_place t Word.W16 value splace;
    apply_flags t Word.W16 f
  | Opcode.PUSH ->
    let v = read_place t width splace in
    push t width v
  | Opcode.CALL ->
    let target = read_place t Word.W16 splace in
    push_word t (Registers.get_pc t.regs);
    Registers.set_pc t.regs target

let exec_reti t =
  let sp = Registers.get_sp t.regs in
  let sr = t.bus.read Aread Word.W16 sp in
  let pc = t.bus.read Aread Word.W16 (sp + 2) in
  Registers.set_sp t.regs (sp + 4);
  Registers.set t.regs Registers.sr sr;
  Registers.set_pc t.regs pc

let step t =
  let pc0 = Registers.get_pc t.regs in
  let fetch a = t.bus.read Afetch Word.W16 a in
  let instr, len = Decode.decode ~fetch ~addr:pc0 in
  Registers.set_pc t.regs (pc0 + len);
  (match instr with
  | Opcode.Fmt1 (op, width, src, dst) ->
    let src_ext_addr = pc0 + 2 in
    let dst_ext_addr =
      pc0 + 2 + if Encode.src_needs_ext width src then 2 else 0
    in
    exec_fmt1 t op width src dst ~src_ext_addr ~dst_ext_addr
  | Opcode.Fmt2 (op, width, src) ->
    exec_fmt2 t op width src ~src_ext_addr:(pc0 + 2)
  | Opcode.Jump (c, off) ->
    if cond_true t.regs c then Registers.set_pc t.regs (pc0 + 2 + (2 * off))
  | Opcode.Reti -> exec_reti t);
  t.cycles <- t.cycles + Cycles.cycles instr;
  t.insns <- t.insns + 1;
  instr

let call_depth_hint t = Registers.get_sp t.regs
