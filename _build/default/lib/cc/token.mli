(** Lexical tokens of WearC. *)

type t =
  | INT_LIT of int
  | CHAR_LIT of int
  | STRING_LIT of string
  | IDENT of string
  (* keywords *)
  | KW_int | KW_uint | KW_char | KW_void | KW_struct | KW_const
  | KW_if | KW_else | KW_while | KW_do | KW_for | KW_return
  | KW_break | KW_continue | KW_switch | KW_case | KW_default
  | KW_sizeof | KW_goto | KW_asm
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT | ARROW | QUESTION | COLON
  (* operators *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | LSHIFT | RSHIFT
  | LT | GT | LE | GE | EQEQ | NEQ
  | ANDAND | OROR
  | ASSIGN
  | PLUS_ASSIGN | MINUS_ASSIGN | STAR_ASSIGN | SLASH_ASSIGN | PERCENT_ASSIGN
  | AMP_ASSIGN | PIPE_ASSIGN | CARET_ASSIGN | LSHIFT_ASSIGN | RSHIFT_ASSIGN
  | PLUSPLUS | MINUSMINUS
  | EOF

val to_string : t -> string

type spanned = { tok : t; loc : Srcloc.t }
