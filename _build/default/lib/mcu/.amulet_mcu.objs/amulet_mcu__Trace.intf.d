lib/mcu/trace.mli: Format Opcode Word
