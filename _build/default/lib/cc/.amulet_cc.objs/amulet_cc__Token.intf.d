lib/cc/token.mli: Srcloc
