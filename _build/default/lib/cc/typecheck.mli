(** Type checker: resolves names, checks every expression, renames
    locals to unique names, and produces the typed AST consumed by the
    code generator, the feature checker and the profiler.

    [externals] declares functions implemented outside the compilation
    unit — the OS API (e.g. [api_read_accel]) and the compiler runtime
    builtins ([__halt], [__putc], [__timer_read], ...).  Calls to
    anything else must target a function defined in the unit. *)

val check :
  externals:(string * Ctype.t) list -> Ast.program -> Tast.program
(** @raise Srcloc.Error on any type or name error. *)
