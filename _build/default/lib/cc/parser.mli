(** Recursive-descent parser for WearC.

    Full C expression grammar (assignment and compound assignment,
    [?:], short-circuit logic, casts, sizeof, pre/post inc/dec, C
    declarator syntax including function pointers).  [goto] and inline
    [asm] are recognized and rejected here with a clear diagnostic —
    the AFT's phase-1 "unsupported language feature" check. *)

val parse : string -> Ast.program
(** @raise Srcloc.Error on syntax errors or unsupported features. *)

val parse_expression : string -> Ast.expr
(** Parse a single expression (for tests). *)
