(** Reference results from the paper, for side-by-side reporting.

    Table 1: average cycle count for basic memory isolation operations
    on the MSP430FR5969.  Figure 2: < 0.5 % battery impact for every
    app and method.  Figure 3: percentage slowdowns up to ~50 %. *)

type op = Memory_access | Context_switch

val table1 : Amulet_cc.Isolation.mode -> op -> int
(** The paper's Table 1 entry. *)

val figure2_battery_bound_percent : float
(** "For all applications, isolation using either the MPU or Software
    Only methods has less than a 0.5% impact on battery lifetime." *)

val figure3_cases : string list
(** Activity Case 1, Activity Case 2, Quicksort. *)

val expected_order_memory_access : Amulet_cc.Isolation.mode list
(** Cheapest first: NoIsolation < MPU < SoftwareOnly < FeatureLimited. *)

val expected_order_context_switch : Amulet_cc.Isolation.mode list
(** Cheapest first: NoIsolation = FeatureLimited < SoftwareOnly < MPU. *)
