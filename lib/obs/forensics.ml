module M = Amulet_mcu.Machine
module Trace = Amulet_mcu.Trace
module Mpu = Amulet_mcu.Mpu
module Map = Amulet_mcu.Memory_map
module Registers = Amulet_mcu.Registers
module Iso = Amulet_cc.Isolation
module Layout = Amulet_aft.Layout
module Image = Amulet_link.Image

let sw_fault_name code =
  if code = Iso.fault_data_lo then "data lower-bound guard"
  else if code = Iso.fault_data_hi then "data upper-bound guard"
  else if code = Iso.fault_code_ptr then "code-pointer guard"
  else if code = Iso.fault_ret_addr then "return-address guard"
  else if code = Iso.fault_array_bounds then "array-index guard"
  else if code = Iso.fault_shadow_stack then "shadow-stack mismatch"
  else Printf.sprintf "unknown reason %d" code

let fault_addr = function
  | M.Mpu_violation { addr; _ }
  | M.Mpu_bad_password { addr; _ }
  | M.Unmapped { addr; _ } -> Some addr
  | M.Illegal_instruction _ -> None

(* Which firmware region owns an address. *)
let owner_of fw addr =
  let layout = fw.Amulet_aft.Aft.fw_layout in
  let app_owner =
    List.find_map
      (fun (a : Layout.app_layout) ->
        if addr >= a.Layout.code_base
           && addr < a.Layout.code_base + a.Layout.code_size
        then Some (Printf.sprintf "app '%s' code" a.Layout.name)
        else if addr >= a.Layout.data_base && addr < a.Layout.data_limit then
          Some (Printf.sprintf "app '%s' data/stack" a.Layout.name)
        else None)
      layout.Layout.apps
  in
  match app_owner with
  | Some o -> o
  | None ->
    if addr >= layout.Layout.os_code_base
       && addr < layout.Layout.os_code_base + layout.Layout.os_code_size
    then "OS code"
    else if addr >= layout.Layout.os_data_base
            && addr < layout.Layout.os_data_base + layout.Layout.os_data_size
    then "OS data"
    else Map.region_name (Map.region_of_addr addr)

let report ?fw ~ring ~stop machine =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "=== fault forensics ===@.";
  Format.fprintf ppf "stop: %a@." M.pp_stop_reason stop;
  (match stop with
  | M.Sw_fault code ->
    Format.fprintf ppf "check: %s (reason %d)@." (sw_fault_name code) code
  | M.Faulted f -> (
    (match fault_addr f with
    | Some addr -> (
      Format.fprintf ppf "faulting address: %04X" addr;
      (match fw with
      | Some fw -> Format.fprintf ppf " — owned by %s" (owner_of fw addr)
      | None -> ());
      Format.fprintf ppf "@.")
    | None -> ());
    let pc =
      match f with
      | M.Mpu_violation { pc; _ }
      | M.Mpu_bad_password { pc; _ }
      | M.Unmapped { pc; _ }
      | M.Illegal_instruction { pc; _ } -> pc
    in
    match fw with
    | Some fw -> (
      match Image.nearest_symbol fw.Amulet_aft.Aft.fw_image pc with
      | Some (sym, base) ->
        Format.fprintf ppf "faulting pc: %04X = %s+%d@." pc sym (pc - base)
      | None -> Format.fprintf ppf "faulting pc: %04X@." pc)
    | None -> Format.fprintf ppf "faulting pc: %04X@." pc)
  | _ -> ());
  let events = Trace.events ring in
  Format.fprintf ppf "last %d trace events (oldest first):@."
    (List.length events);
  List.iter (fun e -> Format.fprintf ppf "  %a@." Trace.pp_event e) events;
  let regs = M.regs machine in
  Format.fprintf ppf "registers:@.  %a@." Registers.pp regs;
  Format.fprintf ppf "  pc=%04X sp=%04X@." (Registers.get_pc regs)
    (Registers.get_sp regs);
  Format.fprintf ppf "mpu: %a@." Mpu.pp machine.M.mpu;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
