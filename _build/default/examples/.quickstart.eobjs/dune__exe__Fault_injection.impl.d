examples/fault_injection.ml: Amulet_aft Amulet_cc Amulet_os Format List String
