lib/link/assembler.mli: Asm Bytes
