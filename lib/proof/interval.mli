(** Half-open address intervals [lo, hi) — the abstract domain of the
    proof engine.  Guards and MPU boundaries partition the address
    space into ranges that behave uniformly; an interval entirely
    inside one partition class stands for every concrete address in
    it. *)

type t

val make : int -> int -> t
(** [make lo hi] is [[lo, hi)].  @raise Invalid_argument when empty or
    outside the 64 KiB address space. *)

val lo : t -> int
val hi : t -> int
val mem : int -> t -> bool
val subset : t -> t -> bool
val disjoint : t -> t -> bool
val inter : t -> t -> t option

val below : int -> t -> bool
(** [below cut t]: [t] lies entirely below address [cut] — the shape
    of the compiler's lower-bound deref guard. *)

val above : int -> t -> bool
(** [above cut t]: [t] lies entirely at or above [cut] — the shape of
    the upper-bound guard. *)

val width : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
