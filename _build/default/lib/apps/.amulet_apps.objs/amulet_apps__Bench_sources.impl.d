lib/apps/bench_sources.ml:
