lib/cc/lexer.ml: Buffer Char List Srcloc String Token
