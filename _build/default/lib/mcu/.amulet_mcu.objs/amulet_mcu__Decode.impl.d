lib/mcu/decode.ml: Array Opcode Word
