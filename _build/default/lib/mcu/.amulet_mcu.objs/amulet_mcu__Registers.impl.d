lib/mcu/registers.ml: Array Format Word
