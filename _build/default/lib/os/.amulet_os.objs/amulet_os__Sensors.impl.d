lib/os/sensors.ml:
