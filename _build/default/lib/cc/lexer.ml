let keywords =
  [
    ("int", Token.KW_int); ("uint", Token.KW_uint); ("char", Token.KW_char);
    ("void", Token.KW_void); ("struct", Token.KW_struct);
    ("const", Token.KW_const); ("if", Token.KW_if); ("else", Token.KW_else);
    ("while", Token.KW_while); ("do", Token.KW_do); ("for", Token.KW_for);
    ("return", Token.KW_return); ("break", Token.KW_break);
    ("continue", Token.KW_continue); ("switch", Token.KW_switch);
    ("case", Token.KW_case); ("default", Token.KW_default);
    ("sizeof", Token.KW_sizeof); ("goto", Token.KW_goto);
    ("asm", Token.KW_asm); ("__asm__", Token.KW_asm);
  ]

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let loc st = { Srcloc.line = st.line; col = st.col }
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws st
  | Some '/' when peek2 st = Some '/' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_ws st
  | Some '/' when peek2 st = Some '*' ->
    let start = loc st in
    advance st;
    advance st;
    let rec to_close () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | None, _ -> Srcloc.errf start "unterminated comment"
      | _ ->
        advance st;
        to_close ()
    in
    to_close ();
    skip_ws st
  | _ -> ()

let lex_number st =
  let l = loc st in
  let start = st.pos in
  let hex =
    peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X')
  in
  if hex then begin
    advance st;
    advance st;
    while (match peek st with Some c -> is_hex c | None -> false) do
      advance st
    done;
    let s = String.sub st.src (start + 2) (st.pos - start - 2) in
    if s = "" then Srcloc.errf l "malformed hex literal";
    Token.INT_LIT (int_of_string ("0x" ^ s))
  end
  else begin
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    Token.INT_LIT (int_of_string (String.sub st.src start (st.pos - start)))
  end

let lex_escape st l =
  match peek st with
  | Some 'n' -> advance st; Char.code '\n'
  | Some 't' -> advance st; Char.code '\t'
  | Some 'r' -> advance st; Char.code '\r'
  | Some '0' -> advance st; 0
  | Some '\\' -> advance st; Char.code '\\'
  | Some '\'' -> advance st; Char.code '\''
  | Some '"' -> advance st; Char.code '"'
  | _ -> Srcloc.errf l "unknown escape sequence"

let lex_char st =
  let l = loc st in
  advance st (* opening quote *);
  let code =
    match peek st with
    | Some '\\' ->
      advance st;
      lex_escape st l
    | Some c ->
      advance st;
      Char.code c
    | None -> Srcloc.errf l "unterminated char literal"
  in
  (match peek st with
  | Some '\'' -> advance st
  | _ -> Srcloc.errf l "unterminated char literal");
  Token.CHAR_LIT code

let lex_string st =
  let l = loc st in
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      Buffer.add_char buf (Char.chr (lex_escape st l));
      go ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
    | None -> Srcloc.errf l "unterminated string literal"
  in
  go ();
  Token.STRING_LIT (Buffer.contents buf)

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match List.assoc_opt s keywords with
  | Some kw -> kw
  | None -> Token.IDENT s

(* Multi-character operators, longest first. *)
let operators =
  [
    ("<<=", Token.LSHIFT_ASSIGN); (">>=", Token.RSHIFT_ASSIGN);
    ("->", Token.ARROW); ("++", Token.PLUSPLUS); ("--", Token.MINUSMINUS);
    ("<<", Token.LSHIFT); (">>", Token.RSHIFT); ("<=", Token.LE);
    (">=", Token.GE); ("==", Token.EQEQ); ("!=", Token.NEQ);
    ("&&", Token.ANDAND); ("||", Token.OROR); ("+=", Token.PLUS_ASSIGN);
    ("-=", Token.MINUS_ASSIGN); ("*=", Token.STAR_ASSIGN);
    ("/=", Token.SLASH_ASSIGN); ("%=", Token.PERCENT_ASSIGN);
    ("&=", Token.AMP_ASSIGN); ("|=", Token.PIPE_ASSIGN);
    ("^=", Token.CARET_ASSIGN);
    ("(", Token.LPAREN); (")", Token.RPAREN); ("{", Token.LBRACE);
    ("}", Token.RBRACE); ("[", Token.LBRACKET); ("]", Token.RBRACKET);
    (";", Token.SEMI); (",", Token.COMMA); (".", Token.DOT);
    ("?", Token.QUESTION); (":", Token.COLON); ("+", Token.PLUS);
    ("-", Token.MINUS); ("*", Token.STAR); ("/", Token.SLASH);
    ("%", Token.PERCENT); ("&", Token.AMP); ("|", Token.PIPE);
    ("^", Token.CARET); ("~", Token.TILDE); ("!", Token.BANG);
    ("<", Token.LT); (">", Token.GT); ("=", Token.ASSIGN);
  ]

let lex_operator st =
  let l = loc st in
  let matches op =
    let n = String.length op in
    st.pos + n <= String.length st.src && String.sub st.src st.pos n = op
  in
  match List.find_opt (fun (op, _) -> matches op) operators with
  | Some (op, tok) ->
    String.iter (fun _ -> advance st) op;
    tok
  | None -> Srcloc.errf l "unexpected character %C" st.src.[st.pos]

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    skip_ws st;
    let l = loc st in
    match peek st with
    | None -> List.rev ({ Token.tok = Token.EOF; loc = l } :: acc)
    | Some c ->
      let tok =
        if is_digit c then lex_number st
        else if is_ident_start c then lex_ident st
        else if c = '\'' then lex_char st
        else if c = '"' then lex_string st
        else lex_operator st
      in
      go ({ Token.tok; loc = l } :: acc)
  in
  go []
