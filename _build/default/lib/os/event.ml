type sensor = Accel | Ppg | Temperature | Light

let sensor_to_int = function Accel -> 0 | Ppg -> 1 | Temperature -> 2 | Light -> 3

let sensor_of_int = function
  | 0 -> Some Accel
  | 1 -> Some Ppg
  | 2 -> Some Temperature
  | 3 -> Some Light
  | _ -> None

let all_sensors = [ Accel; Ppg; Temperature; Light ]

type kind =
  | Init
  | Timer_fired of int
  | Sensor_sample of sensor
  | Button of int
  | Tick

type t = { at : int; seq : int; app : int; kind : kind; arg : int }

let handler_name = function
  | Init -> "handle_init"
  | Timer_fired _ -> "handle_timer"
  | Sensor_sample Accel -> "handle_accel"
  | Sensor_sample Ppg -> "handle_ppg"
  | Sensor_sample Temperature -> "handle_temperature"
  | Sensor_sample Light -> "handle_light"
  | Button _ -> "handle_button"
  | Tick -> "handle_tick"

let kind_name = function
  | Init -> "init"
  | Timer_fired id -> Printf.sprintf "timer(%d)" id
  | Sensor_sample Accel -> "accel"
  | Sensor_sample Ppg -> "ppg"
  | Sensor_sample Temperature -> "temperature"
  | Sensor_sample Light -> "light"
  | Button _ -> "button"
  | Tick -> "tick"

let pp ppf t =
  Format.fprintf ppf "event{at=%d app=%d %s arg=%d}" t.at t.app
    (kind_name t.kind) t.arg

let cycles_per_ms = 16_000
let ms_to_cycles ms = ms * cycles_per_ms
let cycles_to_ms cy = cy / cycles_per_ms
