(** Corpus ⇔ proof crosscheck.

    Restates every attack in {!Attacks.corpus} as a deterministic
    program of the abstract machine and checks, mode by mode, that the
    layer the model derives equals the attack's hand-written
    expectation.  Cells the model says breach are additionally
    replayed on the concrete machine, so every negative expectation is
    backed by a real run. *)

type scenario = {
  sc_attacker : Amulet_proof.Absmachine.attacker;
  sc_actions : Amulet_proof.Absmachine.action list;
}

val scenario_of : Attacks.t -> scenario option
(** The abstract restatement, [None] for attacks with no model (there
    are currently none — the crosscheck test enforces totality). *)

type verdict =
  | V_theorem  (** derived layer = expected layer, no breach involved *)
  | V_counterexample
      (** expected breach, derived abstractly and replayed concretely *)
  | V_mismatch of { derived : Attacks.layer; replay : string option }
  | V_unmodelled

type row = {
  cc_attack : string;
  cc_mode : Amulet_cc.Isolation.mode;
  cc_expected : Attacks.layer;
  cc_verdict : verdict;
}

val row_ok : row -> bool
val check_cell : Attacks.t -> Amulet_cc.Isolation.mode -> row
val run : ?modes:Amulet_cc.Isolation.mode list -> unit -> row list
val ok : row list -> bool
val pp_row : Format.formatter -> row -> unit
