lib/cc/token.ml: Char Printf Srcloc
