(* Fault injection: a rogue's gallery of memory-safety attacks, each
   run under all four isolation methods.  Prints which method stops
   which attack — the paper's security story in one table.

     dune exec examples/fault_injection.exe *)

module Aft = Amulet_aft.Aft
module Os = Amulet_os
module Iso = Amulet_cc.Isolation

(* Each attack is a WearC app whose handle_button performs the attack;
   [needs_pointers] excludes it from feature-limited mode (whose whole
   point is that such code cannot be written at all). *)
type attack = { title : string; source : string; needs_pointers : bool }

let attacks =
  [
    {
      title = "write above own segment (other apps)";
      needs_pointers = true;
      source =
        {|
void handle_button(int arg) { int *p = (int*)0xF400; *p = 1; }
|};
    };
    {
      title = "read below own segment (OS data)";
      needs_pointers = true;
      source =
        {|
int sink;
void handle_button(int arg) { int *p = (int*)0x5000; sink = *p; }
|};
    };
    {
      title = "overwrite MPU registers";
      needs_pointers = true;
      source =
        {|
void handle_button(int arg) { int *p = (int*)0x05A0; *p = 0xA500; }
|};
    };
    {
      title = "function pointer into OS code";
      needs_pointers = true;
      source =
        {|
void handle_button(int arg) {
  void (*f)(void) = (void(*)(void))0x4400;
  f();
}
|};
    };
    {
      title = "stack smash via array overflow";
      needs_pointers = false;
      source =
        {|
int n = 40;
void smash() {
  int a[2];
  int i;
  for (i = 0; i < n; i++) a[i] = 0x5400;
}
void handle_button(int arg) { smash(); }
|};
    };
    {
      title = "unbounded recursion (stack overflow)";
      needs_pointers = false;
      source =
        {|
int deep(int x) {
  int pad[16];
  pad[0] = x;
  if (x < 30000) return deep(x + 1) + pad[0];
  return 0;
}
void handle_button(int arg) { deep(0); }
|};
    };
  ]

let outcome_of mode attack =
  if
    attack.needs_pointers && not (Iso.allows_pointers mode)
    || (String.length attack.title >= 9
        && String.sub attack.title 0 9 = "unbounded"
        && not (Iso.allows_recursion mode))
  then `Rejected_at_compile_time
  else
    match
      Aft.build ~mode [ { Aft.name = "attacker"; source = attack.source } ]
    with
    | exception Amulet_cc.Srcloc.Error _ -> `Rejected_at_compile_time
    | fw -> (
      let k = Os.Kernel.create fw in
      let _ = Os.Kernel.run_for_ms k 2 in
      Os.Kernel.post k ~delay_ms:1 ~app:0 (Os.Event.Button 1) ~arg:1;
      let _ = Os.Kernel.run_for_ms k 100 in
      let app = Os.Kernel.app_by_name k "attacker" in
      match app.Os.Kernel.last_fault with
      | Some f -> `Caught f
      | None -> `Undetected)

let label = function
  | `Rejected_at_compile_time -> "compile-time reject"
  | `Caught f ->
    let f = if String.length f > 34 then String.sub f 0 34 else f in
    "caught: " ^ f
  | `Undetected -> "NOT DETECTED"

let () =
  Format.printf "Attack outcomes per isolation method@.@.";
  List.iter
    (fun attack ->
      Format.printf "%s@." attack.title;
      List.iter
        (fun mode ->
          Format.printf "  %-18s %s@." (Iso.name mode)
            (label (outcome_of mode attack)))
        Iso.all;
      Format.printf "@.")
    attacks;
  Format.printf
    "(no-isolation is the baseline: attacks are expected to land there)@."
