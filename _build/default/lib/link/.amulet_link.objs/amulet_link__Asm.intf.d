lib/link/asm.mli: Amulet_mcu Format
