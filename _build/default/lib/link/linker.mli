(** Linker: places sections, builds the global symbol table, resolves
    and emits the firmware image.

    Every section automatically defines [<name>__start] and
    [<name>__end] symbols — the AFT uses these as the app boundary
    constants that phase 4 patches into the compiler-inserted checks. *)

exception Error of string

type placed_section = { name : string; base : int; items : Asm.item list }

val link :
  ?extra_symbols:(string * int) list ->
  entry:string ->
  placed_section list ->
  Image.t
(** @raise Error on duplicate or undefined symbols, overlapping
    sections, or jump-range failures. *)
