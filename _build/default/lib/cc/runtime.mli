(** Compiler runtime support routines.

    These live in the OS code region (segment 1: executable by apps)
    and follow a scratch-register convention: arguments and results in
    R12/R13, R14/R15 clobbered, R4-R11 untouched — so the code
    generator may keep expression temporaries live across helper
    calls.

    Includes [__bounds_check] (index in R14, limit in R15), the
    Feature-Limited array check of the original Amulet toolchain: on
    violation it writes {!Isolation.fault_array_bounds} to the
    software-fault port. *)

val items : Amulet_link.Asm.item list
(** Assembly for all helpers: [__mulhi], [__udivhi], [__umodhi],
    [__divhi], [__modhi], [__shlhi], [__shrhi], [__sarhi],
    [__bounds_check]. *)

val builtin_externals : (string * Ctype.t) list
(** Type signatures of the compiler builtins ([__halt], [__putc],
    [__timer_start], [__timer_read]) for the type checker. *)
