(** The write-containment proof obligations: one claim per isolation
    mode and attacker model, each expected to be a k-induction theorem
    or refutable with a machine-replayable counterexample.  The matrix
    states each mode's honest contract — including the Mpu_assisted
    vector-page hole, which appears as an explicit refutable claim. *)

type prop = P_no_breach | P_no_breach_covered | P_window_integrity

val prop_name : prop -> string

type expect = Theorem | Refutable

type obligation = {
  ob_name : string;
  ob_mode : Amulet_cc.Isolation.mode;
  ob_attacker : Absmachine.attacker;
  ob_prop : prop;
  ob_aux : bool;  (** conjoin the window-integrity strengthening *)
  ob_expect : expect;
  ob_descr : string;
}

val all : obligation list
val find : string -> obligation

val window_ok : Absmachine.state -> bool
(** The strengthening predicate: MPU enabled, app window programmed
    whenever the app side runs.  Required for [mpu-compiled-covered] —
    the bare property is not k-inductive at any k. *)

val system :
  obligation -> (Absmachine.state, Absmachine.action) Engine.system

type result = {
  res_ob : obligation;
  res_verdict : (Absmachine.state, Absmachine.action) Engine.verdict;
  res_ok : bool;
}

val check : ?k_max:int -> obligation -> result
val run : ?k_max:int -> unit -> result list
val run_mode : ?k_max:int -> Amulet_cc.Isolation.mode -> result list

val refuted_trace :
  result ->
  ((Absmachine.state * Absmachine.action) list * Absmachine.state) option
