(** Hand-written lexer for WearC.

    Supports decimal, hex ([0x..]) and character literals, string
    literals with the usual escapes, [//] and [/* */] comments.
    [goto] and [asm] lex as keywords so that the feature checker can
    reject them with a useful message. *)

val tokenize : string -> Token.spanned list
(** @raise Srcloc.Error on malformed input. *)
