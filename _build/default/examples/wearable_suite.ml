(* Wearable suite: all nine Amulet applications in one firmware image,
   living a (compressed) day on the wrist — the multi-tenant scenario
   that motivates the paper.

     dune exec examples/wearable_suite.exe *)

module Aft = Amulet_aft.Aft
module Os = Amulet_os
module Apps = Amulet_apps.Suite
module Iso = Amulet_cc.Isolation
module M = Amulet_mcu.Machine
module W = Amulet_mcu.Word

let global k name sym =
  let addr =
    Amulet_link.Image.symbol k.Os.Kernel.fw.Aft.fw_image (name ^ "$" ^ sym)
  in
  W.to_signed W.W16 (M.mem_checked_read k.Os.Kernel.machine W.W16 addr)

let () =
  let mode = Iso.Mpu_assisted in
  let specs = List.map (Apps.spec_for mode) Apps.platform_apps in
  let fw = Aft.build ~mode specs in
  Format.printf "nine apps, one image: %d bytes of firmware@."
    (Amulet_link.Image.total_bytes fw.Aft.fw_image);
  Format.printf "%a@." Amulet_aft.Layout.pp fw.Aft.fw_layout;

  (* Daily_mix alternates rest / walk / run in 5-minute segments. *)
  let k = Os.Kernel.create ~scenario:Os.Sensors.Daily_mix fw in
  let minutes = 12 in
  Format.printf "simulating %d minutes of wear...@." minutes;
  let records = Os.Kernel.run_for_ms k (minutes * 60_000) in
  Format.printf "%d events dispatched@.@." (List.length records);

  Format.printf "%-16s %-9s %s@." "app" "state" "stats";
  Array.iter
    (fun (st : Os.Kernel.app_state) ->
      let name = st.Os.Kernel.build.Aft.ab_name in
      let extra =
        match name with
        | "pedometer" -> Printf.sprintf "steps = %d" (global k name "steps")
        | "clock" ->
          Printf.sprintf "time = %02d:%02d" (global k name "hours")
            (global k name "minutes")
        | "fall_detection" -> Printf.sprintf "falls = %d" (global k name "falls")
        | "heart_rate" -> Printf.sprintf "bpm = %d" (global k name "bpm")
        | "hr_log" -> Printf.sprintf "records = %d" (global k name "logged")
        | "rest" ->
          Printf.sprintf "rest minutes = %d" (global k name "rest_minutes")
        | "sun" ->
          Printf.sprintf "exposure = %d s" (global k name "exposure_sec")
        | "temperature" ->
          Printf.sprintf "range = %d..%d (tenths C)" (global k name "tmin")
            (global k name "tmax")
        | "battery_meter" -> Printf.sprintf "last = %d %%" (global k name "last_pct")
        | _ -> ""
      in
      Format.printf "%-16s %-9s %s@." name
        (if st.Os.Kernel.enabled then "running" else "DISABLED")
        extra)
    k.Os.Kernel.apps;

  Format.printf "@.display:@.";
  for i = 0 to 3 do
    Format.printf "  |%-32s|@." (Os.Kernel.display_line k i)
  done;
  Format.printf "@.flash log: %d bytes; BLE out: %d bytes@."
    (String.length (Os.Kernel.log_contents k))
    (Buffer.length k.Os.Kernel.api.Os.Api.ble)
