(** Gate-argument provenance: proves, per OS-gate call site, that a
    pointer argument can only point into the app's own D_i region, so
    the kernel may elide its dynamic [with_range] validation for the
    certified services.

    Pointers with link-time-constant values (globals, string literals)
    certify against the data-section bound symbols; frame-relative
    pointers (locals) additionally need {!Stackcert}'s entry-depth
    bound on the enclosing function's FP, which exists only in
    separate-stack modes.  Everything else stays uncertified and keeps
    the dynamic check. *)

type value = Top | Iv of int * int | Fp of int * int
(** Abstract register value: unknown; an unsigned 16-bit interval; or
    FP plus a signed displacement interval. *)

type site = {
  gs_fn : string;  (** mangled name of the enclosing function *)
  gs_addr : int;  (** address of the CALL #__gate_* instruction *)
  gs_service : string;
  gs_certified : bool;
  gs_reason : string;
}

type t = {
  gt_sites : site list;
      (** every gate call site whose service takes a pointer *)
  gt_certified : string list;
      (** services every one of whose pointer-carrying call sites is
          certified (and that have at least one such site) *)
}

val analyze :
  cfg:Cfi.t -> stack:Stackcert.t -> image:Amulet_link.Image.t -> t
(** @raise Invalid_argument when the image lacks the app's
    data-section bound symbols. *)

val pp_site : Format.formatter -> site -> unit
