(* The nine Amulet platform applications of the paper's Figure 2,
   re-written in WearC.  They are deliberately written in the common
   subset (arrays, no pointers, no recursion) so the same source
   compiles under every isolation mode, exactly like the original
   AmuletC apps; dynamic array indexing is what the modes then guard
   differently.

   Event rates (documented here, encoded in each app's subscriptions
   and timers; used by the profiler to extrapolate to a week):

     battery_meter   1-minute timer
     clock           1-second timer
     fall_detection  accelerometer at 25 Hz
     heart_rate      PPG at 25 Hz + 5-second analysis timer
     hr_log          10-second timer
     pedometer       accelerometer at 25 Hz + 1-minute display timer
     rest            accelerometer at 5 Hz + 1-minute classifier timer
     sun             light at 1 Hz + 1-minute display timer
     temperature     thermometer at 1 Hz + 30-second display timer *)

let battery_meter =
  {|
int last_pct = 100;
char msg[16];

void put2(int v, int pos) {
  msg[pos] = '0' + (v / 10) % 10;
  msg[pos + 1] = '0' + v % 10;
}

void handle_init(int arg) {
  api_set_timer(60000);
  api_display_write("battery", 0);
}

void handle_timer(int arg) {
  int pct = api_get_battery();
  msg[0] = 'B'; msg[1] = 'a'; msg[2] = 't'; msg[3] = ' ';
  put2(pct, 4);
  msg[6] = '%'; msg[7] = 0;
  api_display_write(msg, 1);
  if (pct + 5 <= last_pct) {
    api_log_append(msg, 8);
    last_pct = pct;
  }
}
|}

let clock =
  {|
int seconds = 0;
int minutes = 0;
int hours = 0;
char face[12];

void put2(int v, int pos) {
  face[pos] = '0' + v / 10;
  face[pos + 1] = '0' + v % 10;
}

void handle_init(int arg) { api_set_timer(1000); }

void handle_timer(int arg) {
  seconds += 1;
  if (seconds >= 60) {
    seconds = 0;
    minutes += 1;
    if (minutes >= 60) {
      minutes = 0;
      hours += 1;
      if (hours >= 24) hours = 0;
    }
    put2(hours, 0);
    face[2] = ':';
    put2(minutes, 3);
    face[5] = 0;
    api_display_write(face, 0);
  }
}
|}

let fall_detection =
  {|
int window[32];
int widx = 0;
int freefall_at = -1;
int falls = 0;
char alert[8];

void handle_init(int arg) {
  api_subscribe(0, 25);
  alert[0] = 'F'; alert[1] = 'A'; alert[2] = 'L'; alert[3] = 'L';
  alert[4] = 0;
}

void handle_accel(int arg) {
  int mag[1];
  api_read_accel(mag, 1);
  int m = mag[0];
  window[widx & 31] = m;
  widx += 1;
  if (m < 400) freefall_at = widx;
  if (freefall_at >= 0 && widx - freefall_at < 15 && m > 2500) {
    falls += 1;
    api_display_write(alert, 0);
    api_buzz(200);
    api_log_append(alert, 4);
    freefall_at = -1;
  }
}
|}

let heart_rate =
  {|
int buf[1];
int window[64];
int widx = 0;
int bpm = 0;
char disp[8];

void handle_init(int arg) {
  api_subscribe(1, 25);
  api_set_timer(5000);
}

void handle_ppg(int arg) {
  api_read_ppg(buf, 1);
  window[widx & 63] = buf[0];
  widx += 1;
}

void handle_timer(int arg) {
  int i;
  int mean = 0;
  int crossings = 0;
  int prev = 0;
  for (i = 0; i < 64; i++) mean += window[i] >> 6;
  for (i = 0; i < 64; i++) {
    int above = window[i] > mean;
    if (above && !prev) crossings += 1;
    prev = above;
  }
  /* 64 samples at 25 Hz = 2.56 s: crossings * 23.4 per minute */
  bpm = crossings * 23;
  disp[0] = 'H'; disp[1] = 'R'; disp[2] = ' ';
  disp[3] = '0' + (bpm / 100) % 10;
  disp[4] = '0' + (bpm / 10) % 10;
  disp[5] = '0' + bpm % 10;
  disp[6] = 0;
  api_display_write(disp, 1);
}
|}

let hr_log =
  {|
char rec[4];
int logged = 0;

void handle_init(int arg) { api_set_timer(10000); }

void handle_timer(int arg) {
  int hr = api_read_heart_rate();
  int tsec = api_get_time();
  rec[0] = tsec & 0xFF;
  rec[1] = (tsec >> 8) & 0xFF;
  rec[2] = hr & 0xFF;
  rec[3] = (hr >> 8) & 0xFF;
  api_log_append(rec, 4);
  logged += 1;
}
|}

let pedometer =
  {|
int steps = 0;
int above = 0;
int last_step = 0;
int t = 0;
char disp[8];

void handle_init(int arg) {
  api_subscribe(0, 25);
  api_set_timer(60000);
}

void handle_accel(int arg) {
  int m[1];
  api_read_accel(m, 1);
  t += 1;
  if (!above && m[0] > 1250 && t - last_step > 8) {
    steps += 1;
    last_step = t;
    above = 1;
  }
  if (m[0] < 1100) above = 0;
}

void handle_timer(int arg) {
  int s = steps;
  int i;
  for (i = 5; i >= 1; i--) {
    disp[i] = '0' + s % 10;
    s = s / 10;
  }
  disp[0] = 'S';
  disp[6] = 0;
  api_display_write(disp, 0);
}
|}

let rest =
  {|
int activity = 0;
int rest_minutes = 0;
int samples = 0;

void handle_init(int arg) {
  api_subscribe(0, 5);
  api_set_timer(60000);
}

void handle_accel(int arg) {
  int m[1];
  api_read_accel(m, 1);
  int d = m[0] - 1000;
  if (d < 0) d = -d;
  activity += d >> 4;
  samples += 1;
}

void handle_timer(int arg) {
  if (samples > 0 && activity / samples < 8) rest_minutes += 1;
  activity = 0;
  samples = 0;
}
|}

let sun =
  {|
int exposure_sec = 0;
char disp[10];

void handle_init(int arg) {
  api_subscribe(3, 1);
  api_set_timer(60000);
}

void handle_light(int arg) {
  int lux = api_read_light();
  if (lux > 500) exposure_sec += 1;
}

void handle_timer(int arg) {
  int minutes = exposure_sec / 60;
  disp[0] = 'S'; disp[1] = 'u'; disp[2] = 'n'; disp[3] = ' ';
  disp[4] = '0' + (minutes / 100) % 10;
  disp[5] = '0' + (minutes / 10) % 10;
  disp[6] = '0' + minutes % 10;
  disp[7] = 0;
  api_display_write(disp, 2);
}
|}

let temperature =
  {|
int hist[16];
int hidx = 0;
int tmin = 9999;
int tmax = -9999;
char disp[12];

void handle_init(int arg) {
  api_subscribe(2, 1);
  api_set_timer(30000);
}

void handle_temperature(int arg) {
  int tc = api_read_temperature();
  hist[hidx & 15] = tc;
  hidx += 1;
  if (tc < tmin) tmin = tc;
  if (tc > tmax) tmax = tc;
}

void handle_timer(int arg) {
  int i;
  int avg = 0;
  for (i = 0; i < 16; i++) avg += hist[i] >> 4;
  disp[0] = 'T'; disp[1] = ' ';
  disp[2] = '0' + (avg / 100) % 10;
  disp[3] = '0' + (avg / 10) % 10;
  disp[4] = '.';
  disp[5] = '0' + avg % 10;
  disp[6] = 0;
  api_display_write(disp, 3);
}
|}
