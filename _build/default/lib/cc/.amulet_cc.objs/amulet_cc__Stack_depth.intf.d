lib/cc/stack_depth.mli: Codegen
