lib/os/event.mli: Format
