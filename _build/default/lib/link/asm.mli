(** Assembly language with symbolic operands — what the compiler and
    the AFT stub generators emit, and what the assembler lowers to
    machine words once the linker has assigned addresses.

    Emulated MSP430 instructions (RET, POP, BR, CLR, ...) are provided
    as helper constructors that expand to real format I/II
    instructions, so their cycle costs follow the hardware tables. *)

(** Link-time constant expression. *)
type expr =
  | Num of int
  | Sym of string  (** value of a linker symbol *)
  | Off of string * int  (** symbol + constant offset *)

type src =
  | Sreg of int
  | Sidx of int * expr  (** x(Rn) *)
  | Sabs of expr  (** &ADDR *)
  | Sind of int  (** @Rn *)
  | Sinc of int  (** @Rn+ *)
  | Simm of expr  (** #N *)

type dst = Dreg of int | Didx of int * expr | Dabs of expr

type insn =
  | I1 of Amulet_mcu.Opcode.op2 * Amulet_mcu.Word.width * src * dst
  | I2 of Amulet_mcu.Opcode.op1 * Amulet_mcu.Word.width * src
  | Ijmp of Amulet_mcu.Opcode.cond * string  (** conditional jump to label *)
  | Ireti

(** One element of a section body. *)
type item =
  | Ins of insn
  | Label of string
  | Dword of expr  (** 16-bit datum *)
  | Dbytes of string  (** raw bytes *)
  | Space of int  (** zero-filled bytes *)
  | Align2  (** pad to even address *)
  | Comment of string

val pp_item : Format.formatter -> item -> unit

(* Registers by role. *)

val r_pc : int
val r_sp : int
val r_sr : int

(** R12: return value / first argument (TI convention) *)
val r_ret : int

(** R13 *)
val r_arg2 : int

(** R14 *)
val r_arg3 : int

(** R15 *)
val r_arg4 : int

(** R4: frame pointer *)
val r_fp : int

(* Convenience constructors (word width unless noted). *)

val mov : src -> dst -> item
val movb : src -> dst -> item
val add : src -> dst -> item
val sub : src -> dst -> item
val cmp : src -> dst -> item
val and_ : src -> dst -> item
val bis : src -> dst -> item
val bic : src -> dst -> item
val xor : src -> dst -> item
val bit : src -> dst -> item
val push : src -> item

(** CALL #label *)
val call : string -> item
val call_reg : int -> item
val jmp : string -> item
val jcc : Amulet_mcu.Opcode.cond -> string -> item

(** MOV @SP+, PC *)
val ret : item

(** MOV @SP+, Rn *)
val pop : int -> item

(** MOV #addr, PC *)
val br : expr -> item
val clr : dst -> item
val inc : dst -> item
val dec : dst -> item
val tst : dst -> item
val nop : item
val imm : int -> src
val sym : string -> src
val label : string -> item
