lib/mcu/memory_map.mli:
