lib/apps/suite.mli: Amulet_aft Amulet_cc
