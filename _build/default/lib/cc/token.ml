type t =
  | INT_LIT of int
  | CHAR_LIT of int
  | STRING_LIT of string
  | IDENT of string
  | KW_int | KW_uint | KW_char | KW_void | KW_struct | KW_const
  | KW_if | KW_else | KW_while | KW_do | KW_for | KW_return
  | KW_break | KW_continue | KW_switch | KW_case | KW_default
  | KW_sizeof | KW_goto | KW_asm
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT | ARROW | QUESTION | COLON
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | LSHIFT | RSHIFT
  | LT | GT | LE | GE | EQEQ | NEQ
  | ANDAND | OROR
  | ASSIGN
  | PLUS_ASSIGN | MINUS_ASSIGN | STAR_ASSIGN | SLASH_ASSIGN | PERCENT_ASSIGN
  | AMP_ASSIGN | PIPE_ASSIGN | CARET_ASSIGN | LSHIFT_ASSIGN | RSHIFT_ASSIGN
  | PLUSPLUS | MINUSMINUS
  | EOF

let to_string = function
  | INT_LIT n -> string_of_int n
  | CHAR_LIT c -> Printf.sprintf "'%c'" (Char.chr (c land 0xFF))
  | STRING_LIT s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_int -> "int" | KW_uint -> "uint" | KW_char -> "char"
  | KW_void -> "void" | KW_struct -> "struct" | KW_const -> "const"
  | KW_if -> "if" | KW_else -> "else" | KW_while -> "while"
  | KW_do -> "do" | KW_for -> "for" | KW_return -> "return"
  | KW_break -> "break" | KW_continue -> "continue"
  | KW_switch -> "switch" | KW_case -> "case" | KW_default -> "default"
  | KW_sizeof -> "sizeof" | KW_goto -> "goto" | KW_asm -> "asm"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COMMA -> "," | DOT -> "." | ARROW -> "->"
  | QUESTION -> "?" | COLON -> ":"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~" | BANG -> "!"
  | LSHIFT -> "<<" | RSHIFT -> ">>"
  | LT -> "<" | GT -> ">" | LE -> "<=" | GE -> ">="
  | EQEQ -> "==" | NEQ -> "!="
  | ANDAND -> "&&" | OROR -> "||"
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+=" | MINUS_ASSIGN -> "-=" | STAR_ASSIGN -> "*="
  | SLASH_ASSIGN -> "/=" | PERCENT_ASSIGN -> "%="
  | AMP_ASSIGN -> "&=" | PIPE_ASSIGN -> "|=" | CARET_ASSIGN -> "^="
  | LSHIFT_ASSIGN -> "<<=" | RSHIFT_ASSIGN -> ">>="
  | PLUSPLUS -> "++" | MINUSMINUS -> "--"
  | EOF -> "<eof>"

type spanned = { tok : t; loc : Srcloc.t }
