(** The abstract transition system extracted from [lib/mcu].

    State is collapsed to what the isolation argument turns on —
    privilege side of the gate, MPU enable, programmed window, and a
    terminal containment-failure marker.  Memory is region-abstracted
    into canonical intervals positioned so every guard comparison and
    MPU boundary falls between intervals; one abstract step therefore
    covers every concrete address an interval denotes (validated
    differentially by {!Lemmas}).  Gate entry/exit are the only
    privilege and window transitions, mirroring the AFT stubs. *)

type region =
  | R_own_data
  | R_own_slack  (** 1 KiB-granule slack between globals and data_limit *)
  | R_own_code
  | R_os  (** OS code/data and any lower app *)
  | R_victim  (** the next app above the attacker *)
  | R_fram_high
  | R_vectors  (** interrupt vectors — never MPU-covered *)
  | R_sram
  | R_info
  | R_mpu_regs
  | R_periph

val all_regions : region list
val region_name : region -> string

type geom = {
  g_os : Interval.t;
  g_own_code : Interval.t;
  g_own_data : Interval.t;
  g_own_slack : Interval.t;
  g_victim : Interval.t;
  g_fram_high : Interval.t;
  g_vectors : Interval.t;
  g_sram : Interval.t;
  g_info : Interval.t;
  g_mpu_regs : Interval.t;
  g_periph : Interval.t;
}

val default : geom
(** Canonical single-attacker layout on 1 KiB granules, derived from
    {!Amulet_mcu.Memory_map} and {!Amulet_mcu.Mpu} constants. *)

val interval_of : geom -> region -> Interval.t
val rep : geom -> region -> int
(** Representative concrete address, for counterexample replay. *)

val data_lo : geom -> int
val data_hi : geom -> int
val window : geom -> Interval.t

type priv = P_app | P_os
type window_cfg = W_app | W_os | W_wide

type kind = K_write | K_read | K_exec | K_mpu
type breach = { br_region : region; br_kind : kind }
type stuck = S_guard | S_mpu | S_badpw | S_gate | S_kernel
type dead = D_breach of breach | D_stuck of stuck

type state = {
  priv : priv;
  mpu_en : bool;
  win : window_cfg;
  dead : dead option;  (** terminal: breach or contained-stuck *)
}

val kind_name : kind -> string
val stuck_name : stuck -> string
val pp_dead : Format.formatter -> dead -> unit
val pp_state : Format.formatter -> state -> unit
val state_equal : state -> state -> bool

val init : mode:Amulet_cc.Isolation.mode -> state
val universe : state list
(** Finite superset of every reachable state (600 states). *)

type mpu_effect = M_disable | M_widen | M_badpw

type action =
  | A_compute
  | A_store of region
  | A_load of region
  | A_jump of region
  | A_guarded_store of region
  | A_guarded_load of region
  | A_guarded_call of region
  | A_push_bounded
  | A_push_wild
  | A_mpu_store of mpu_effect
  | A_gate_enter
  | A_gate_exit
  | A_gate_ptr of region

val pp_action : Format.formatter -> action -> unit
val action_to_string : action -> string

type attacker = Benign | Compiled of { stack_bounded : bool } | Binary

val attacker_name : attacker -> string

val repertoire :
  mode:Amulet_cc.Isolation.mode -> attacker:attacker -> action list
(** The actions the attacker model can reach under the mode's
    toolchain: Feature-Limited compiled code has no pointers or
    recursion; other compiled code derefs only behind the mode's
    guards; binary code is unrestricted. *)

val step :
  mode:Amulet_cc.Isolation.mode ->
  ?geom:geom ->
  state ->
  action ->
  state option
(** One abstract step.  [None] when the action is disabled in this
    state (wrong privilege side).  Dead states absorb. *)

type containment =
  | C_build
  | C_guard
  | C_mpu
  | C_gate
  | C_kernel
  | C_breach of breach
  | C_harmless

val containment_name : containment -> string

val run_scenario :
  mode:Amulet_cc.Isolation.mode ->
  attacker:attacker ->
  action list ->
  containment * (state * action) list
(** Run a deterministic attack program from {!init}, classifying which
    layer contains it (or that it breaches / is harmless), with the
    executed trace.  Actions outside the attacker's {!repertoire}
    classify as [C_build]. *)
