type width = W8 | W16

let bits = function W8 -> 8 | W16 -> 16
let mask = function W8 -> 0xFF | W16 -> 0xFFFF
let sign_bit = function W8 -> 0x80 | W16 -> 0x8000
let norm w v = v land mask w
let is_negative w v = norm w v land sign_bit w <> 0

let to_signed w v =
  let v = norm w v in
  if v land sign_bit w <> 0 then v - (mask w + 1) else v

let of_signed w v = norm w v

type flags = { value : int; carry : bool; overflow : bool }

let add w ?(carry_in = false) a b =
  let a = norm w a and b = norm w b in
  let raw = a + b + if carry_in then 1 else 0 in
  let value = norm w raw in
  let carry = raw > mask w in
  let sa = is_negative w a and sb = is_negative w b and sr = is_negative w value in
  let overflow = sa = sb && sr <> sa in
  { value; carry; overflow }

let sub w ?(borrow_in = false) dst src =
  (* dst - src == dst + (lnot src) + 1; SUBC with C=0 adds 0 instead. *)
  add w ~carry_in:(not borrow_in) dst (norm w (lnot src))

let dadd w ?(carry_in = false) a b =
  let digits = bits w / 4 in
  let rec loop i carry acc =
    if i >= digits then (acc, carry)
    else
      let da = (a lsr (4 * i)) land 0xF and db = (b lsr (4 * i)) land 0xF in
      let s = da + db + if carry then 1 else 0 in
      let s, carry = if s > 9 then (s - 10, true) else (s, false) in
      loop (i + 1) carry (acc lor (s lsl (4 * i)))
  in
  let value, carry = loop 0 carry_in 0 in
  { value; carry; overflow = false }

let swap_bytes v =
  let v = v land 0xFFFF in
  ((v land 0xFF) lsl 8) lor (v lsr 8)

let sign_extend_byte v =
  let b = v land 0xFF in
  if b land 0x80 <> 0 then b lor 0xFF00 else b

let low_byte v = v land 0xFF
let high_byte v = (v lsr 8) land 0xFF
