(** Two-pass assembler for one section.

    Pass 1 ({!size} / {!local_labels}) computes item offsets without
    resolving symbols: operand sizes depend only on addressing modes,
    and immediates holding symbols are always given an extension word.
    Pass 2 ({!emit}) lowers to machine words once every symbol has an
    address.

    Conditional and unconditional jumps whose in-section target is
    beyond the format-III +/-512-word range are relaxed automatically
    to long forms ([BR #addr], or a short hop over a [BR]); sizing
    iterates to a fixpoint, and all entry points observe the same
    relaxed layout. *)

exception Error of string

val size : Asm.item list -> int
(** Section size in bytes. *)

val local_labels : Asm.item list -> (string * int) list
(** Offsets of the labels defined in the section.
    @raise Error on duplicate labels within the section. *)

val emit :
  base:int -> resolve:(string -> int) -> Asm.item list -> Bytes.t
(** Binary for a section placed at [base].  [resolve] maps any symbol
    (local or global) to its absolute address.
    @raise Error on out-of-range jumps or undefined symbols
    (propagated as [Error] with the symbol name). *)
