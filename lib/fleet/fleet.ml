module Iso = Amulet_cc.Isolation
module Aft = Amulet_aft.Aft
module Suite = Amulet_apps.Suite
module Hist = Amulet_obs.Hist
module Json = Amulet_obs.Json
module Energy = Amulet_arp.Energy

type mode_agg = {
  ma_mode : Iso.mode;
  ma_devices : int;
  ma_dispatches : int;
  ma_no_handler : int;
  ma_faults : int;
  ma_unrecovered : int;
  ma_api_calls : int;
  ma_cycles : int;
  ma_dispatch : Hist.t;
  ma_latency : Hist.t;
  ma_oracle_failures : int;
}

let agg_empty mode =
  {
    ma_mode = mode;
    ma_devices = 0;
    ma_dispatches = 0;
    ma_no_handler = 0;
    ma_faults = 0;
    ma_unrecovered = 0;
    ma_api_calls = 0;
    ma_cycles = 0;
    ma_dispatch = Hist.create ();
    ma_latency = Hist.create ();
    ma_oracle_failures = 0;
  }

(* One slot per isolation mode (Iso.all order) plus the complete,
   sorted violation list.  The per-worker instance is mutated in
   place; merge is pure. *)
type shard = {
  slots : mode_agg option array;
  mutable violations : string list;  (* sorted ascending *)
}

let mode_index m =
  let rec go i = function
    | [] -> assert false
    | x :: tl -> if x = m then i else go (i + 1) tl
  in
  go 0 Iso.all

let shard_empty () =
  { slots = Array.make (List.length Iso.all) None; violations = [] }

let shard_record sh (r : Device.result) =
  let i = mode_index r.Device.r_mode in
  let a =
    match sh.slots.(i) with
    | Some a -> a
    | None -> agg_empty r.Device.r_mode
  in
  let v = Device.violations r in
  sh.slots.(i) <-
    Some
      {
        a with
        ma_devices = a.ma_devices + 1;
        ma_dispatches = a.ma_dispatches + r.Device.r_dispatches;
        ma_no_handler = a.ma_no_handler + r.Device.r_no_handler;
        ma_faults = a.ma_faults + r.Device.r_faults;
        ma_unrecovered = a.ma_unrecovered + r.Device.r_unrecovered;
        ma_api_calls = a.ma_api_calls + r.Device.r_api_calls;
        ma_cycles = a.ma_cycles + r.Device.r_cycles;
        ma_dispatch = Hist.merge a.ma_dispatch r.Device.r_dispatch;
        ma_latency = Hist.merge a.ma_latency r.Device.r_latency;
        ma_oracle_failures = a.ma_oracle_failures + (if v = [] then 0 else 1);
      };
  sh.violations <- List.merge compare (List.sort compare v) sh.violations

let agg_merge a b =
  assert (a.ma_mode = b.ma_mode);
  {
    ma_mode = a.ma_mode;
    ma_devices = a.ma_devices + b.ma_devices;
    ma_dispatches = a.ma_dispatches + b.ma_dispatches;
    ma_no_handler = a.ma_no_handler + b.ma_no_handler;
    ma_faults = a.ma_faults + b.ma_faults;
    ma_unrecovered = a.ma_unrecovered + b.ma_unrecovered;
    ma_api_calls = a.ma_api_calls + b.ma_api_calls;
    ma_cycles = a.ma_cycles + b.ma_cycles;
    ma_dispatch = Hist.merge a.ma_dispatch b.ma_dispatch;
    ma_latency = Hist.merge a.ma_latency b.ma_latency;
    ma_oracle_failures = a.ma_oracle_failures + b.ma_oracle_failures;
  }

let shard_merge x y =
  {
    slots =
      Array.init (Array.length x.slots) (fun i ->
          match (x.slots.(i), y.slots.(i)) with
          | None, a | a, None -> a
          | Some a, Some b -> Some (agg_merge a b));
    violations = List.merge compare x.violations y.violations;
  }

let agg_equal a b =
  a.ma_mode = b.ma_mode && a.ma_devices = b.ma_devices
  && a.ma_dispatches = b.ma_dispatches
  && a.ma_no_handler = b.ma_no_handler
  && a.ma_faults = b.ma_faults
  && a.ma_unrecovered = b.ma_unrecovered
  && a.ma_api_calls = b.ma_api_calls
  && a.ma_cycles = b.ma_cycles
  && Hist.equal a.ma_dispatch b.ma_dispatch
  && Hist.equal a.ma_latency b.ma_latency
  && a.ma_oracle_failures = b.ma_oracle_failures

let shard_equal x y =
  Array.length x.slots = Array.length y.slots
  && x.violations = y.violations
  && Array.for_all2
       (fun a b ->
         match (a, b) with
         | None, None -> true
         | Some a, Some b -> agg_equal a b
         | _ -> false)
       x.slots y.slots

let shard_modes sh =
  Array.to_list sh.slots |> List.filter_map (fun x -> x)

let shard_violations sh = sh.violations

type summary = {
  fs_scenario : Scenario.t;
  fs_seed : int;
  fs_jobs : int;
  fs_modes : mode_agg list;
  fs_devices : int;
  fs_dispatches : int;
  fs_oracle_failures : int;
  fs_violations : string list;
  fs_elapsed_s : float;
}

let run ?(jobs = 0) ?progress ?seed scenario =
  let seed = Option.value ~default:scenario.Scenario.sc_seed seed in
  let jobs =
    let j = if jobs > 0 then jobs else Sched.default_jobs () in
    max 1 (min j scenario.Scenario.sc_devices)
  in
  (* one firmware per mode of the mix, compiled once on this domain
     and shared read-only by every device on every worker *)
  let fws =
    List.map
      (fun (m, _) ->
        ( m,
          Aft.build ~mode:m
            (List.map
               (fun name -> Suite.spec_for m (Suite.find name))
               scenario.Scenario.sc_apps) ))
      (Scenario.mode_devices scenario)
  in
  let t0 = Unix.gettimeofday () in
  let shards =
    Sched.fold_shards ~jobs ~batch:4 ?progress
      ~init:shard_empty
      ~fold:(fun sh index ->
        let mode = Scenario.device_mode scenario ~index in
        let fw = List.assoc mode fws in
        shard_record sh (Device.run ~fw ~scenario ~seed ~index);
        sh)
      (List.init scenario.Scenario.sc_devices (fun i -> i))
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (* lossless-merge invariant: folding the shards in either direction
     must produce the same aggregate, or the merge is order-dependent
     and every number below is schedule-dependent garbage *)
  let merged = List.fold_left shard_merge (shard_empty ()) shards in
  let merged_rev =
    List.fold_left shard_merge (shard_empty ()) (List.rev shards)
  in
  if not (shard_equal merged merged_rev) then
    invalid_arg "Fleet.run: shard merge is not order-independent";
  let modes = shard_modes merged in
  {
    fs_scenario = scenario;
    fs_seed = seed;
    fs_jobs = jobs;
    fs_modes = modes;
    fs_devices = List.fold_left (fun a m -> a + m.ma_devices) 0 modes;
    fs_dispatches = List.fold_left (fun a m -> a + m.ma_dispatches) 0 modes;
    fs_oracle_failures =
      List.fold_left (fun a m -> a + m.ma_oracle_failures) 0 modes;
    fs_violations = shard_violations merged;
    fs_elapsed_s = elapsed;
  }

let ok s = s.fs_oracle_failures = 0

(* virtual seconds simulated per device *)
let device_seconds s =
  float s.fs_scenario.Scenario.sc_duration_ms /. 1000.0

let per_device_sec s total devices =
  if devices = 0 then 0.0
  else float total /. float devices /. device_seconds s

let mode_json s (a : mode_agg) =
  Json.Obj
    [
      ("mode", Json.Str (Iso.name a.ma_mode));
      ("devices", Json.Int a.ma_devices);
      ("dispatches", Json.Int a.ma_dispatches);
      ("no_handler", Json.Int a.ma_no_handler);
      ("faults", Json.Int a.ma_faults);
      ("unrecovered", Json.Int a.ma_unrecovered);
      ("api_calls", Json.Int a.ma_api_calls);
      ("cycles", Json.Int a.ma_cycles);
      ("dispatch_cycles", Hist.summary_json a.ma_dispatch);
      ("latency_cycles", Hist.summary_json a.ma_latency);
      ("faults_per_device_sec", Json.Float (per_device_sec s a.ma_faults a.ma_devices));
      ("cycles_per_device_sec", Json.Float (per_device_sec s a.ma_cycles a.ma_devices));
      ("energy_joules", Json.Float (Energy.joules_of_cycles a.ma_cycles));
      ( "battery_percent",
        Json.Float
          (Energy.battery_impact_of_run
             ~cycles:(a.ma_cycles / max 1 a.ma_devices)
             ~duration_ms:s.fs_scenario.Scenario.sc_duration_ms) );
      ("oracle_failures", Json.Int a.ma_oracle_failures);
    ]

let summary_json s =
  Json.Obj
    [
      ("scenario", Json.Str s.fs_scenario.Scenario.sc_name);
      ("seed", Json.Int s.fs_seed);
      ("devices", Json.Int s.fs_devices);
      ("duration_ms", Json.Int s.fs_scenario.Scenario.sc_duration_ms);
      ("dispatches", Json.Int s.fs_dispatches);
      ("oracle_failures", Json.Int s.fs_oracle_failures);
      ("violations", Json.Arr (List.map (fun v -> Json.Str v) s.fs_violations));
      ("modes", Json.Arr (List.map (mode_json s) s.fs_modes));
    ]

let pp ppf s =
  Format.fprintf ppf "fleet %s: %d devices x %d ms (seed %d, %d jobs)@."
    s.fs_scenario.Scenario.sc_name s.fs_devices
    s.fs_scenario.Scenario.sc_duration_ms s.fs_seed s.fs_jobs;
  Format.fprintf ppf "  %-14s %8s %10s %7s %7s %9s %9s %9s %11s %10s@."
    "mode" "devices" "dispatches" "p50" "p99" "lat-p50" "lat-p99" "faults/s"
    "Mcyc/dev-s" "uJ/device";
  List.iter
    (fun a ->
      Format.fprintf ppf
        "  %-14s %8d %10d %7d %7d %9d %9d %9.3f %11.2f %10.1f@."
        (Iso.name a.ma_mode) a.ma_devices a.ma_dispatches
        (Hist.quantile a.ma_dispatch 0.5)
        (Hist.quantile a.ma_dispatch 0.99)
        (Hist.quantile a.ma_latency 0.5)
        (Hist.quantile a.ma_latency 0.99)
        (per_device_sec s a.ma_faults a.ma_devices)
        (per_device_sec s a.ma_cycles a.ma_devices /. 1e6)
        (Energy.joules_of_cycles (a.ma_cycles / max 1 a.ma_devices) *. 1e6))
    s.fs_modes;
  let cycles = List.fold_left (fun a m -> a + m.ma_cycles) 0 s.fs_modes in
  Format.fprintf ppf
    "  host: %.2f s wall, %.1f devices/sec, %.1f M simulated cycles/sec@."
    s.fs_elapsed_s
    (float s.fs_devices /. max 1e-9 s.fs_elapsed_s)
    (float cycles /. max 1e-9 s.fs_elapsed_s /. 1e6);
  if s.fs_violations = [] then
    Format.fprintf ppf "  isolation oracle: clean (%d devices)@." s.fs_devices
  else begin
    Format.fprintf ppf "  ISOLATION ORACLE: %d device(s) violated@."
      s.fs_oracle_failures;
    List.iter (fun v -> Format.fprintf ppf "    %s@." v) s.fs_violations
  end
